(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§4) from the simulator, prints them next to the paper's
   measured values, and runs the recommendation experiments of §5.7.

   Usage:
     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- table1 figure3 ...
   Experiments: table1 table2 figure2 figure3 impact concurrency
                faster-tpm io-loss multicore micro analyzer serving
                degradation trace fleet cost *)

open Sea_sim
open Sea_hw
open Sea_core

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Serving benches: the hardware a mode needs. Only proposed mode equips
   the proposed variant; current and sfi serve on the commodity config. *)
let serving_config_for mode config =
  match mode with
  | Sea_serve.Server.Current | Sea_serve.Server.Sfi -> config
  | Sea_serve.Server.Proposed -> Machine.proposed_variant config


(* ------------------------------------------------------------------ *)
(* Table 1: SKINIT / SENTER latency vs PAL size                        *)
(* ------------------------------------------------------------------ *)

module Table1 = struct
  let sizes_kb = [ 0; 4; 8; 16; 32; 64 ]

  let paper =
    [
      ("HP dc5750", [ 0.00; 11.94; 22.98; 45.05; 89.21; 177.52 ]);
      ("Tyan n3600R", [ 0.01; 0.56; 1.11; 2.21; 4.41; 8.82 ]);
      ("Intel TEP", [ 26.39; 26.88; 27.38; 28.37; 30.46; 34.35 ]);
    ]

  let measure_one config size =
    let m = Machine.create config in
    let pages =
      Machine.alloc_pages m (max 1 ((size + Memory.page_size - 1) / Memory.page_size))
    in
    if size > 0 then begin
      let drbg = Sea_crypto.Drbg.create ~seed:"bench-table1" in
      Memory.write_span
        (Memctrl.memory m.Machine.memctrl)
        ~pages ~off:0
        (Sea_crypto.Drbg.generate_string drbg size)
    end;
    Machine.idle_other_cpus m ~except:0;
    let t0 = Machine.now m in
    (match Insn.late_launch m ~cpu:0 ~pages ~length:size with
    | Ok _ -> ()
    | Error e -> failwith ("late launch failed: " ^ e));
    Time.to_ms (Time.sub (Machine.now m) t0)

  let run () =
    section "Table 1: SKINIT / SENTER benchmarks (ms)";
    Printf.printf "%-28s %-9s" "System" "";
    List.iter (fun kb -> Printf.printf "%9dKB" kb) sizes_kb;
    print_newline ();
    List.iter
      (fun (config, (paper_name, paper_row)) ->
        Printf.printf "%-28s %-9s" paper_name "sim:";
        List.iter
          (fun kb -> Printf.printf "%11.2f" (measure_one config (kb * 1024)))
          sizes_kb;
        print_newline ();
        Printf.printf "%-28s %-9s" "" "paper:";
        List.iter (fun v -> Printf.printf "%11.2f" v) paper_row;
        print_newline ())
      (List.combine
         [ Machine.hp_dc5750; Machine.tyan_n3600r; Machine.intel_tep ]
         paper);
    Printf.printf
      "\nShape checks: AMD+TPM grows linearly with PAL size (LPC long\n\
       waits); AMD without TPM rides the wait-free bus; Intel starts high\n\
       (ACMod transfer + verify) and grows slowly (PAL hashed on-CPU).\n"
end

(* ------------------------------------------------------------------ *)
(* Table 2: VM entry / exit                                            *)
(* ------------------------------------------------------------------ *)

module Table2 = struct
  let paper =
    [
      ("AMD SVM (Tyan n3600R)", 0.5580, 0.0028, 0.5193, 0.0036);
      ("Intel TXT (MPC ClientPro)", 0.4457, 0.0029, 0.4491, 0.0015);
    ]

  let sample machine f =
    let s = Stats.create () in
    for _ = 1 to 1000 do
      let t0 = Machine.now machine in
      f ();
      Stats.add s (Time.to_us (Time.sub (Machine.now machine) t0))
    done;
    s

  let run () =
    section "Table 2: VM Entry / VM Exit (us)";
    Printf.printf "%-28s %12s %10s %12s %10s\n" "Platform" "Enter avg" "stdev"
      "Exit avg" "stdev";
    List.iter2
      (fun config (name, p_enter, p_se, p_exit, p_sx) ->
        let m = Machine.create config in
        let enter = sample m (fun () -> Insn.vm_enter m ~cpu:0) in
        let exit_ = sample m (fun () -> Insn.vm_exit m ~cpu:0) in
        Printf.printf "%-28s %12.4f %10.4f %12.4f %10.4f   (sim)\n" name
          (Stats.mean enter) (Stats.stdev enter) (Stats.mean exit_)
          (Stats.stdev exit_);
        Printf.printf "%-28s %12.4f %10.4f %12.4f %10.4f   (paper)\n" "" p_enter
          p_se p_exit p_sx)
      [ Machine.tyan_n3600r; Machine.intel_tep ]
      paper
end

(* ------------------------------------------------------------------ *)
(* Figure 2: end-to-end PAL Gen / PAL Use / Quote breakdown            *)
(* ------------------------------------------------------------------ *)

module Figure2 = struct
  let runs = 20 (* paper: 100 runs, negligible variance *)

  type segs = {
    skinit : Stats.t;
    seal : Stats.t;
    unseal : Stats.t;
    other : Stats.t;
    total : Stats.t;
  }

  let segs () =
    {
      skinit = Stats.create ();
      seal = Stats.create ();
      unseal = Stats.create ();
      other = Stats.create ();
      total = Stats.create ();
    }

  let record s (b : Session.breakdown) =
    Stats.add_time s.skinit b.Session.late_launch;
    Stats.add_time s.seal b.Session.seal;
    Stats.add_time s.unseal b.Session.unseal;
    Stats.add_time s.other b.Session.other;
    Stats.add_time s.total (Session.overhead b)

  let print_row name s =
    Printf.printf "%-10s skinit %8.2f | seal %7.2f | unseal %7.2f | other %6.2f | total %8.2f ms (±%.2f)\n"
      name (Stats.mean s.skinit) (Stats.mean s.seal) (Stats.mean s.unseal)
      (Stats.mean s.other) (Stats.mean s.total) (Stats.stdev s.total)

  let run () =
    section "Figure 2: generic SEA application overheads (HP dc5750)";
    let m = Machine.create Machine.hp_dc5750 in
    let gen_s = segs () and use_s = segs () and quote_s = Stats.create () in
    for _ = 1 to runs do
      let gen =
        match Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"" with
        | Ok o -> o
        | Error e -> failwith e
      in
      record gen_s gen.Session.breakdown;
      (match Session.execute m ~cpu:0 (Generic.pal_use ()) ~input:gen.Session.output with
      | Ok use -> record use_s use.Session.breakdown
      | Error e -> failwith e);
      match Session.quote m ~nonce:"bench" with
      | Ok (_, d) -> Stats.add_time quote_s d
      | Error e -> failwith e
    done;
    Printf.printf "(%d runs; PAL is the full 64 KB SKINIT allows)\n\n" runs;
    print_row "PAL Gen" gen_s;
    print_row "PAL Use" use_s;
    Printf.printf "%-10s %8.2f ms (±%.2f)\n" "Quote" (Stats.mean quote_s)
      (Stats.stdev quote_s);
    Printf.printf
      "\nPaper: PAL Gen ≈ 200 ms (177.5 SKINIT + 20.01 Seal); PAL Use > 1 s\n\
       (SKINIT + ~900 ms Unseal + optional re-Seal); Quote ≈ 950 ms.\n"
end

(* ------------------------------------------------------------------ *)
(* Figure 3: TPM microbenchmarks across four TPMs                      *)
(* ------------------------------------------------------------------ *)

module Figure3 = struct
  let trials = 20 (* as in the paper *)

  let machines =
    [
      (Sea_tpm.Vendor.Atmel_t60, Machine.lenovo_t60);
      (Sea_tpm.Vendor.Broadcom, Machine.hp_dc5750);
      (Sea_tpm.Vendor.Infineon, Machine.amd_infineon);
      (Sea_tpm.Vendor.Atmel_tep, Machine.intel_tep);
    ]

  let ops tpm =
    let caller = Sea_tpm.Tpm.Cpu 0 in
    let payload = String.make 256 's' in
    let blob = ref "" in
    [
      ("PCR Extend", fun () -> ignore (Sea_tpm.Tpm.pcr_extend tpm 16 "m"));
      ( "Seal",
        fun () ->
          blob :=
            Result.get_ok (Sea_tpm.Tpm.seal tpm ~caller ~pcr_policy:[] payload) );
      ( "Quote",
        fun () ->
          ignore
            (Result.get_ok
               (Sea_tpm.Tpm.quote tpm ~caller:Sea_tpm.Tpm.Software ~selection:[ 17 ]
                  ~nonce:"n" ())) );
      ( "Unseal",
        fun () -> ignore (Result.get_ok (Sea_tpm.Tpm.unseal tpm ~caller !blob)) );
      ("GetRand 128B", fun () -> ignore (Sea_tpm.Tpm.get_random tpm 128));
    ]

  let run () =
    section "Figure 3: TPM microbenchmarks, mean ± stdev over 20 trials (ms)";
    Printf.printf "%-14s" "Operation";
    List.iter
      (fun (v, _) -> Printf.printf "%22s" (Sea_tpm.Vendor.name v))
      machines;
    print_newline ();
    let results =
      List.map
        (fun (v, config) ->
          let m = Machine.create config in
          let tpm = Machine.tpm_exn m in
          ( v,
            List.map
              (fun (name, f) ->
                let s = Stats.create () in
                for _ = 1 to trials do
                  let t0 = Machine.now m in
                  f ();
                  Stats.add_time s (Time.sub (Machine.now m) t0)
                done;
                (name, s))
              (ops tpm) ))
        machines
    in
    let op_names = List.map fst (snd (List.hd results)) in
    List.iter
      (fun op ->
        Printf.printf "%-14s" op;
        List.iter
          (fun (_, rows) ->
            let s = List.assoc op rows in
            Printf.printf "%15.2f ±%4.1f" (Stats.mean s) (Stats.stdev s))
          results;
        print_newline ())
      op_names;
    Printf.printf
      "\nPaper anchors: Broadcom Seal 11.4–20 ms (fastest) but slowest Quote\n\
       and Unseal (~950/900 ms); Infineon Unseal 390.98 ms and best average;\n\
       Seal spans 20–500 ms and Unseal 290–900 ms across vendors (§5.7).\n"
end

(* ------------------------------------------------------------------ *)
(* §5.7 impact: context-switch cost, current vs proposed               *)
(* ------------------------------------------------------------------ *)

module Impact = struct
  let run () =
    section "§5.7 Expected impact: PAL context-switch cost";
    (* Current hardware: switching PAL state out and back in means
       TPM Seal, then later SKINIT + TPM Unseal. *)
    let m = Machine.create Machine.hp_dc5750 in
    let gen =
      match Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"" with
      | Ok o -> o
      | Error e -> failwith e
    in
    let switch_out = Time.to_ms gen.Session.breakdown.Session.seal in
    let use =
      match Session.execute m ~cpu:0 (Generic.pal_use ()) ~input:gen.Session.output with
      | Ok o -> o
      | Error e -> failwith e
    in
    let switch_in =
      Time.to_ms
        (Time.add use.Session.breakdown.Session.late_launch
           use.Session.breakdown.Session.unseal)
    in
    Printf.printf "Current hardware (HP dc5750, Broadcom TPM):\n";
    Printf.printf "  switch out (TPM Seal):            %8.2f ms\n" switch_out;
    Printf.printf "  switch in  (SKINIT + TPM Unseal): %8.2f ms\n" switch_in;
    let current_total = switch_out +. switch_in in
    Printf.printf "  full switch cycle:                %8.2f ms\n\n" current_total;
    (* Proposed hardware: SYIELD out, SLAUNCH(MF=1) back in. *)
    let mp = Machine.create (Machine.proposed_variant Machine.hp_dc5750) in
    let pal =
      Pal.create ~name:"impact" ~code_size:8192 ~compute_time:(Time.ms 100.)
        (fun _ _ -> Ok "")
    in
    let s =
      match
        Slaunch_session.start mp ~cpu:0 ~preemption_timer:(Time.ms 1.) pal ~input:""
      with
      | Ok s -> s
      | Error e -> failwith e
    in
    let out_s = Stats.create () and in_s = Stats.create () in
    for _ = 1 to 50 do
      let t0 = Machine.now mp in
      (match Slaunch_session.run_slice s ~cpu:0 () with
      | Ok `Yielded -> ()
      | _ -> failwith "expected yield");
      (* run_slice burns 1 ms of work then yields; subtract the work. *)
      Stats.add out_s (Time.to_us (Time.sub (Machine.now mp) t0) -. 1000.);
      let t1 = Machine.now mp in
      (match Slaunch_session.resume s ~cpu:0 with
      | Ok () -> ()
      | Error e -> failwith e);
      Stats.add in_s (Time.to_us (Time.sub (Machine.now mp) t1))
    done;
    Printf.printf "Proposed hardware (SLAUNCH/SYIELD):\n";
    Printf.printf "  switch out (SYIELD):              %8.3f us\n" (Stats.mean out_s);
    Printf.printf "  switch in  (SLAUNCH resume):      %8.3f us\n" (Stats.mean in_s);
    let proposed_total = (Stats.mean out_s +. Stats.mean in_s) /. 1000. in
    Printf.printf "  full switch cycle:                %8.5f ms\n\n" proposed_total;
    let ratio = current_total /. proposed_total in
    Printf.printf
      "Improvement: %.1fx ≈ 10^%.1f — the paper claims six orders of\n\
       magnitude (200–1000 ms down to ~0.6 us VM-transition scale).\n"
      ratio (log10 ratio)
end

(* ------------------------------------------------------------------ *)
(* Ablation A1: platform concurrency under PAL load                    *)
(* ------------------------------------------------------------------ *)

module Concurrency = struct
  let batch n =
    List.init n (fun i ->
        Sea_os.Scheduler.job
          ~label:(Printf.sprintf "job%d" i)
          ~arrival:(Time.ms (25. *. float_of_int i))
          ~chunks:8 ~chunk_work:(Time.ms 5.) ~code_size:(16 * 1024) ())

  let run () =
    section "Ablation: multiprogramming with PALs (§4.4 vs §5)";
    Printf.printf
      "%d jobs, 8 chunks × 5 ms protected work each, on a 2-core machine.\n\n" 6;
    let jobs = batch 6 in
    let window = Time.s 60. in
    let mc = Machine.create Machine.hp_dc5750 in
    let rc = Sea_os.Scheduler.run mc ~mode:Sea_os.Scheduler.Current ~jobs ~window in
    let mp = Machine.create (Machine.proposed_variant Machine.hp_dc5750) in
    let rp = Sea_os.Scheduler.run mp ~mode:Sea_os.Scheduler.Proposed ~jobs ~window in
    let print r =
      Printf.printf
        "  %-12s jobs %d/%d   mean latency %10.1f ms   legacy CPU %5.1f%%   full-platform stall %s\n"
        (match r.Sea_os.Scheduler.mode with
        | Sea_os.Scheduler.Current -> "current hw"
        | Sea_os.Scheduler.Proposed -> "proposed hw")
        r.Sea_os.Scheduler.completed
        (r.Sea_os.Scheduler.completed + r.Sea_os.Scheduler.failed)
        (Stats.mean r.Sea_os.Scheduler.pal_latency_ms)
        (100. *. r.Sea_os.Scheduler.legacy_utilization)
        (Time.to_string r.Sea_os.Scheduler.stalled)
    in
    print rc;
    print rp;
    let si = rc.Sea_os.Scheduler.stall_intervals_ms in
    if Stats.count si = 0 then
      Printf.printf
        "\nResponsiveness: current hardware recorded no full-platform\n\
         freezes in this window; the proposed hardware never freezes it\n\
         at all.\n"
    else begin
      Printf.printf
        "\nResponsiveness: current hardware freezes the whole platform %d times,\n\
         median %.0f ms, worst %.0f ms per freeze; the proposed hardware never\n\
         freezes it at all.\n"
        (Stats.count si)
        (Stats.percentile si 50.)
        (Stats.max si);
      Format.printf "Stall tail: %a ms@." Stats.pp_percentiles si
    end;
    Printf.printf
      "\nEvery chunk on current hardware = one full session (SKINIT + Unseal\n\
       + Seal) with the whole platform frozen; on proposed hardware the job\n\
       is one SLAUNCH session sliced by the preemption timer on one core.\n"
end

(* ------------------------------------------------------------------ *)
(* Ablation A2: "just make the TPM faster" (§5.7 last paragraph)       *)
(* ------------------------------------------------------------------ *)

module Faster_tpm = struct
  let factors = [ 1.; 0.1; 0.01; 1e-3; 1e-4; 1e-5; 1e-6 ]

  let run () =
    section "Ablation: speeding up the TPM instead of new instructions";
    Printf.printf "%-14s %20s\n" "TPM speedup" "PAL Use overhead";
    List.iter
      (fun factor ->
        let profile =
          Sea_tpm.Timing.scaled
            (Sea_tpm.Timing.profile Sea_tpm.Vendor.Broadcom)
            ~factor
        in
        let cfg = { Machine.hp_dc5750 with Machine.tpm_profile = Some profile } in
        let m = Machine.create cfg in
        let gen =
          match Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"" with
          | Ok o -> o
          | Error e -> failwith e
        in
        let use =
          match
            Session.execute m ~cpu:0 (Generic.pal_use ()) ~input:gen.Session.output
          with
          | Ok o -> o
          | Error e -> failwith e
        in
        Printf.printf "%11.0fx %20s\n" (1. /. factor)
          (Time.to_string (Session.overhead use.Session.breakdown)))
      factors;
    Printf.printf
      "\nEven a million-fold TPM leaves the per-switch suspend/launch\n\
       plumbing; and (the paper's point) RSA at that speed would need\n\
       significant engineering and power for what SLAUNCH gets from the\n\
       memory controller — with the proposed switch at ~0.6 us regardless.\n"
end

(* ------------------------------------------------------------------ *)
(* Ablation: network loss during platform stalls                       *)
(* ------------------------------------------------------------------ *)

module Io_loss = struct
  let rate_pps = 2000
  let ring_slots = 512
  let sessions = 8
  let period = Time.s 2.
  let duration = Time.s 16.

  let run () =
    section "Ablation: NIC packet loss while PALs run (§4.2's stall, made concrete)";
    Printf.printf
      "%d pps line rate, %d-slot RX ring, %d protected-state sessions over %s.\n\n"
      rate_pps ring_slots sessions (Time.to_string duration);
    (* Current hardware: each session freezes the platform; the ring
       overflows. Windows come from real session runs. *)
    let m = Machine.create Machine.hp_dc5750 in
    let windows =
      match
        Sea_os.Netload.collect_stall_windows m ~sessions ~period (Generic.pal_use ())
      with
      | Ok w -> w
      | Error e -> failwith e
    in
    let current =
      Sea_os.Netload.simulate ~rate_pps ~duration ~ring_slots ~stall_windows:windows
    in
    (* Proposed hardware: the only unavailability is the ~1.3 us context
       switch pair, ten per session — synthesize those windows from the
       measured switch cost. *)
    let switch = Time.us 1.4 in
    let proposed_windows =
      List.concat_map
        (fun s ->
          List.init 10 (fun k ->
              let at = Time.add (Time.scale period s) (Time.ms (float_of_int k)) in
              (at, Time.add at switch)))
        (List.init sessions Fun.id)
    in
    let proposed =
      Sea_os.Netload.simulate ~rate_pps ~duration ~ring_slots
        ~stall_windows:proposed_windows
    in
    let print label (r : Sea_os.Netload.stats) =
      Printf.printf "  %-12s offered %6d   delivered %6d   dropped %6d (%.1f%%)   ring peak %d\n"
        label r.Sea_os.Netload.offered r.Sea_os.Netload.delivered
        r.Sea_os.Netload.dropped
        (100. *. float_of_int r.Sea_os.Netload.dropped
        /. float_of_int (max 1 r.Sea_os.Netload.offered))
        r.Sea_os.Netload.peak_occupancy
    in
    print "current hw" current;
    print "proposed hw" proposed;
    Printf.printf
      "\nEach PAL Use session freezes the platform for ~1.1 s: at %d pps that\n\
       is ~%d arrivals against a %d-slot ring, so most of them drop. The\n\
       proposed hardware's microsecond switches never back the ring up.\n"
      rate_pps (11 * rate_pps / 10) ring_slots
end

(* ------------------------------------------------------------------ *)
(* Ablation A3: multicore PALs (§6)                                    *)
(* ------------------------------------------------------------------ *)

module Multicore = struct
  let work = Time.ms 48.
  let timer = Time.ms 4.

  let completion workers =
    let cfg = Machine.proposed_variant Machine.hp_dc5750 in
    let m = Machine.create { cfg with Machine.cpu_count = max 2 (workers + 1) } in
    let pal =
      Pal.create ~name:"mc-bench" ~code_size:8192 ~compute_time:work
        (fun _ _ -> Ok "")
    in
    let s =
      match Slaunch_session.start m ~cpu:0 ~preemption_timer:timer pal ~input:"" with
      | Ok s -> s
      | Error e -> failwith e
    in
    let join_helpers () =
      for c = 1 to workers - 1 do
        match Slaunch_session.join s ~cpu:c with
        | Ok () -> ()
        | Error e -> failwith e
      done
    in
    join_helpers ();
    let t0 = Machine.now m in
    let rec drive () =
      match Slaunch_session.run_slice s ~cpu:0 () with
      | Ok `Finished -> ()
      | Ok `Yielded -> (
          match Slaunch_session.resume s ~cpu:0 with
          | Ok () ->
              join_helpers ();
              drive ()
          | Error e -> failwith e)
      | Error e -> failwith e
    in
    drive ();
    let elapsed = Time.sub (Machine.now m) t0 in
    Slaunch_session.release s;
    elapsed

  let run () =
    section "Ablation: multicore PALs (§6) — SJOIN speedup";
    Printf.printf "48 ms of protected work, 4 ms preemption slices.\n\n";
    Printf.printf "%-10s %16s %10s\n" "workers" "completion" "speedup";
    let base = ref 0. in
    List.iter
      (fun w ->
        let t = Time.to_ms (completion w) in
        if w = 1 then base := t;
        Printf.printf "%-10d %13.2f ms %9.2fx\n" w t (!base /. t))
      [ 1; 2; 3; 4 ];
    Printf.printf
      "\nJoin/leave costs a VM transition per helper per slice, so the\n\
       speedup stays near-linear for slice lengths well above a\n\
       microsecond — the cheap alternative to splitting the function\n\
       into multiple single-CPU PALs that §6 discusses.\n"
end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: wall-clock cost of the simulator itself  *)
(* ------------------------------------------------------------------ *)

module Micro = struct
  open Bechamel
  open Toolkit
  module Stime = Sea_sim.Time

  (* One Test.make per experiment driver: what each of the table/figure
     generators above costs in host wall-clock, per simulated operation. *)
  let tests () =
    let skinit_machine = Machine.create Machine.hp_dc5750 in
    let skinit_pages = Machine.alloc_pages skinit_machine 16 in
    Memory.write_span
      (Memctrl.memory skinit_machine.Machine.memctrl)
      ~pages:skinit_pages ~off:0 (String.make (64 * 1024) 'c');
    Machine.idle_other_cpus skinit_machine ~except:0;
    let tpm_machine = Machine.create Machine.hp_dc5750 in
    let tpm = Machine.tpm_exn tpm_machine in
    let proposed = Machine.create (Machine.proposed_variant Machine.hp_dc5750) in
    let pal =
      Pal.create ~name:"micro" ~code_size:8192 ~compute_time:(Stime.s 9999.)
        (fun _ _ -> Ok "")
    in
    let session =
      Result.get_ok
        (Slaunch_session.start proposed ~cpu:0 ~preemption_timer:(Stime.us 1.) pal
           ~input:"")
    in
    (match Slaunch_session.run_slice session ~cpu:0 () with
    | Ok `Yielded -> ()
    | _ -> failwith "micro setup: expected yield");
    [
      Test.make ~name:"sha1-64KB"
        (Staged.stage (fun () -> Sea_crypto.Sha1.digest (String.make 65536 'x')));
      Test.make ~name:"simulate-skinit-64KB (table1)"
        (Staged.stage (fun () ->
             ignore
               (Insn.skinit skinit_machine ~cpu:0 ~pages:skinit_pages
                  ~length:(64 * 1024))));
      Test.make ~name:"simulate-vm-enter (table2)"
        (Staged.stage (fun () -> Insn.vm_enter skinit_machine ~cpu:0));
      Test.make ~name:"simulate-tpm-seal (fig2/fig3)"
        (Staged.stage (fun () ->
             ignore
               (Sea_tpm.Tpm.seal tpm ~caller:(Sea_tpm.Tpm.Cpu 0) ~pcr_policy:[]
                  "payload")));
      Test.make ~name:"simulate-context-switch (impact)"
        (Staged.stage (fun () ->
             (match Slaunch_session.resume session ~cpu:0 with
             | Ok () -> ()
             | Error e -> failwith e);
             match
               Slaunch_session.run_slice session ~cpu:0 ~budget:(Stime.us 1.) ()
             with
             | Ok `Yielded -> ()
             | Ok `Finished -> failwith "unexpected finish"
             | Error e -> failwith e));
    ]

  let run () =
    section "Bechamel micro-benchmarks: simulator wall-clock cost (host time)";
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instance = Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:1000 ~quota:(Bechamel.Time.second 0.4) ~stabilize:false
        ()
    in
    List.iter
      (fun test ->
        List.iter
          (fun elt ->
            let results = Benchmark.run cfg [ instance ] elt in
            let est = Analyze.one ols instance results in
            match Analyze.OLS.estimates est with
            | Some (ns :: _) ->
                Printf.printf "  %-36s %12.0f ns/run\n" (Test.Elt.name elt) ns
            | _ -> Printf.printf "  %-36s (no estimate)\n" (Test.Elt.name elt))
          (Test.elements test))
      (tests ())
end

(* ------------------------------------------------------------------ *)
(* Static-analyzer throughput: images/sec vs image size                *)
(* ------------------------------------------------------------------ *)

module Analyzer_throughput = struct
  (* Synthetic but fully decodable images: blocks of register shuffling
     with a forward branch each, so the CFG and the interval dataflow do
     real work. [loopy] adds one back-edge per block. *)
  let make_image ~insns ~loopy =
    let ops = ref [] in
    let block = 16 in
    for i = insns - 2 downto 0 do
      let pc = i * Sea_isa.Isa.insn_size in
      let op =
        match i mod block with
        | 0 -> Sea_isa.Isa.Loadi (i mod 8, (i * 37) land 0xFFFF)
        | 1 -> Sea_isa.Isa.Add (1, 2, 3)
        | 2 -> Sea_isa.Isa.Xor (4, 5, 6)
        | 3 ->
            (* Forward skip of one instruction. *)
            Sea_isa.Isa.Jz (2, pc + (2 * Sea_isa.Isa.insn_size))
        | 4 when loopy ->
            (* Back-edge to the head of this block. *)
            Sea_isa.Isa.Jnz (3, pc - (4 * Sea_isa.Isa.insn_size))
        | 5 -> Sea_isa.Isa.Or (5, 6, 7)
        | 6 -> Sea_isa.Isa.Mov (i mod 8, (i + 3) mod 8)
        | _ -> Sea_isa.Isa.Sub (2, 3, 4)
      in
      ops := op :: !ops
    done;
    Sea_isa.Isa.encode_program (!ops @ [ Sea_isa.Isa.Halt ])

  let time_analyses code =
    (* Host CPU time; repeat until the clock has something to measure. *)
    let reps = ref 0 in
    let t0 = Sys.time () in
    let elapsed () = Sys.time () -. t0 in
    while elapsed () < 0.25 do
      ignore (Sea_analysis.Analyzer.analyze code);
      incr reps
    done;
    float_of_int !reps /. elapsed ()

  let run () =
    section "Analyzer throughput: images/sec vs image size (host time)";
    Printf.printf "%-10s %-12s %12s %12s %14s\n" "size" "variant" "insns"
      "images/s" "MB/s";
    List.iter
      (fun kb ->
        List.iter
          (fun loopy ->
            let insns = kb * 1024 / Sea_isa.Isa.insn_size in
            let code = make_image ~insns ~loopy in
            let report = Sea_analysis.Analyzer.analyze code in
            if not (Sea_analysis.Report.is_clean report) then
              failwith
                ("bench image unexpectedly dirty:\n"
                ^ Sea_analysis.Report.render report);
            let ips = time_analyses code in
            Printf.printf "%-10s %-12s %12d %12.1f %14.2f\n"
              (Printf.sprintf "%dKB" kb)
              (if loopy then "loops" else "straight")
              insns ips
              (ips *. float_of_int (String.length code) /. 1e6))
          [ false; true ])
      [ 1; 4; 16; 64 ]
end

(* ------------------------------------------------------------------ *)
(* Serving capacity: max sustainable request rate per hardware mode    *)
(* ------------------------------------------------------------------ *)

module Serving = struct
  let duration = Time.s 5.
  let depth = 8

  let run_at mode rate =
    let config = Machine.low_fidelity Machine.hp_dc5750 in
    let config = serving_config_for mode config in
    let m =
      Machine.create ~engine:(Engine.create ~seed:7L ()) config
    in
    let cfg = Sea_serve.Server.config ~queue_depth:depth ~mode ~duration () in
    let tenants = Sea_serve.Workload.preset ~tenants:3 (`Open rate) in
    match Sea_serve.Server.run m cfg tenants with
    | Ok r -> r
    | Error e -> failwith ("serving sweep: " ^ e)

  (* Sustainable: nothing shed or dropped, and the backlog drained soon
     after arrivals stopped (a window stretching far past the arrival
     duration means the queue was only surviving on the depth bound). *)
  let sustainable (r : Sea_serve.Report.t) =
    let a = r.Sea_serve.Report.aggregate in
    a.Sea_serve.Report.shed = 0
    && a.Sea_serve.Report.timed_out = 0
    && a.Sea_serve.Report.failed = 0
    && Time.compare r.Sea_serve.Report.window (Time.scale_f duration 1.2) <= 0

  let sweep mode rates =
    let best = ref 0. in
    let unsustained = ref false in
    List.iter
      (fun rate ->
        if not !unsustained then begin
          let r = run_at mode rate in
          let a = r.Sea_serve.Report.aggregate in
          let ok = sustainable r in
          if ok then best := rate else unsustained := true;
          Printf.printf
            "  %8.1f req/s  offered %5d  goodput %7.2f/s  shed %4d  %s  %s\n"
            rate a.Sea_serve.Report.offered
            (Sea_serve.Report.goodput_per_s r a)
            a.Sea_serve.Report.shed
            (Format.asprintf "%a" Stats.pp_percentiles
               a.Sea_serve.Report.latency_ms)
            (if ok then "sustained" else "OVERLOAD")
        end)
      rates;
    !best

  let run () =
    section "Serving capacity: 3 tenants (ssh/ca/kv), HP dc5750, depth 8";
    Printf.printf "current hardware (one full session per request):\n";
    let c = sweep Sea_serve.Server.Current [ 0.25; 0.5; 1.; 2.; 4. ] in
    Printf.printf "proposed hardware (resident PALs, both cores):\n";
    let p =
      sweep Sea_serve.Server.Proposed [ 4.; 8.; 16.; 32.; 64.; 128.; 256. ]
    in
    Printf.printf
      "\nMax sustainable rate: %.2f req/s on today's hardware vs %.2f req/s\n\
       on the proposed hardware (%.0fx) — the difference between one stalled\n\
       platform doing TPM round-trips per request and resident PALs resumed\n\
       at context-switch cost.\n"
      c p
      (if c > 0. then p /. c else Float.infinity)
end

(* ------------------------------------------------------------------ *)
(* Robustness: goodput degradation under injected TPM/LPC faults       *)
(* ------------------------------------------------------------------ *)

module Degradation = struct
  let duration = Time.s 5.
  let depth = 8
  let fault_rates = [ 0.; 0.01; 0.02; 0.05; 0.1 ]

  let run_at mode rate fault_rate =
    let config = Machine.low_fidelity Machine.hp_dc5750 in
    let config = serving_config_for mode config in
    let m = Machine.create ~engine:(Engine.create ~seed:11L ()) config in
    let faults =
      if fault_rate > 0. then
        Some (Sea_fault.Fault.spec ~seed:11 ~rate:fault_rate ())
      else None
    in
    let cfg =
      Sea_serve.Server.config ~queue_depth:depth ~mode ~duration ?faults ()
    in
    let tenants = Sea_serve.Workload.preset ~tenants:3 (`Open rate) in
    match Sea_serve.Server.run m cfg tenants with
    | Ok r -> r
    | Error e -> failwith ("degradation sweep: " ^ e)

  let print_row fault_rate (r : Sea_serve.Report.t) =
    let a = r.Sea_serve.Report.aggregate in
    Printf.printf
      "  fault rate %5.2f%%  offered %5d  goodput %7.2f/s  failed %4d  \
       shed %4d  retries %4d  breaker shed %4d\n"
      (100. *. fault_rate) a.Sea_serve.Report.offered
      (Sea_serve.Report.goodput_per_s r a)
      a.Sea_serve.Report.failed a.Sea_serve.Report.shed
      r.Sea_serve.Report.retries r.Sea_serve.Report.breaker_shed

  let sweep mode rate =
    List.map
      (fun fr ->
        let r = run_at mode rate fr in
        print_row fr r;
        (fr, r))
      fault_rates

  let run () =
    section "Robustness: goodput vs injected TPM/LPC fault rate";
    Printf.printf
      "3 tenants (ssh/ca/kv), HP dc5750, depth 8, deterministic fault plan\n\
       (seed 11): transient TPM busy, LPC stalls, aborted hash sequences,\n\
       seal/NV write failures. Retry and per-tenant circuit breaking are\n\
       enabled whenever faults are injected.\n\n";
    Printf.printf "current hardware @ 1 req/s offered:\n";
    ignore (sweep Sea_serve.Server.Current 1.);
    Printf.printf "proposed hardware @ 16 req/s offered:\n";
    let rows = sweep Sea_serve.Server.Proposed 16. in
    let goodput fr =
      match List.assoc_opt fr rows with
      | Some r -> Sea_serve.Report.goodput_per_s r r.Sea_serve.Report.aggregate
      | None -> 0.
    in
    let g0 = goodput 0. and g10 = goodput 0.1 in
    Printf.printf
      "\nProposed goodput retains %.0f%% of its fault-free value at a 10%%\n\
       injected fault rate: bounded retries absorb transient TPM busy faults\n\
       and the per-(tenant, kind) breaker sheds (rather than fails) work\n\
       during fault bursts, so degradation is gradual instead of a cliff.\n"
      (if g0 > 0. then 100. *. g10 /. g0 else 0.)
end

(* ------------------------------------------------------------------ *)
(* Table 1's decomposition, recovered from traces: the same late        *)
(* launches as Table1, but the per-layer split (CPU init, LPC transfer, *)
(* TPM hashing) comes out of the trace sink's per-category self times   *)
(* rather than ad-hoc timers around each phase.                         *)
(* ------------------------------------------------------------------ *)

module Trace_decomp = struct
  let sizes_kb = [ 4; 16; 64 ]

  let measure config size =
    let sink = Sea_trace.Trace.create () in
    Sea_trace.Trace.with_sink sink (fun () ->
        let m = Machine.create config in
        let pages =
          Machine.alloc_pages m
            (max 1 ((size + Memory.page_size - 1) / Memory.page_size))
        in
        if size > 0 then begin
          let drbg = Sea_crypto.Drbg.create ~seed:"bench-trace" in
          Memory.write_span
            (Memctrl.memory m.Machine.memctrl)
            ~pages ~off:0
            (Sea_crypto.Drbg.generate_string drbg size)
        end;
        Machine.idle_other_cpus m ~except:0;
        match Insn.late_launch m ~cpu:0 ~pages ~length:size with
        | Ok _ -> ()
        | Error e -> failwith ("late launch failed: " ^ e));
    sink

  let run () =
    section "Late-launch decomposition from traces (ms of per-layer self time)";
    Printf.printf "%-24s %6s %10s %10s %10s %10s %10s\n" "System" "KB"
      "cpu" "lpc" "tpm" "other" "total";
    List.iter
      (fun (name, config) ->
        List.iter
          (fun kb ->
            let sink = measure config (kb * 1024) in
            let self c = Time.to_ms (Sea_trace.Trace.category_self sink c) in
            let total =
              List.fold_left
                (fun acc s ->
                  if s.Sea_trace.Trace.cat = "insn" then
                    Time.add acc s.Sea_trace.Trace.total
                  else acc)
                Time.zero
                (Sea_trace.Trace.span_stats sink)
            in
            let total_ms = Time.to_ms total in
            let cpu = self "cpu" and lpc = self "lpc" and tpm = self "tpm" in
            Printf.printf "%-24s %6d %10.3f %10.3f %10.3f %10.3f %10.3f\n"
              name kb cpu lpc tpm
              (Float.max 0. (total_ms -. cpu -. lpc -. tpm))
              total_ms)
          sizes_kb)
      [
        ("HP dc5750 (SKINIT)", Machine.hp_dc5750);
        ("Intel TEP (SENTER)", Machine.intel_tep);
      ];
    Printf.printf
      "\nThe split reproduces Table 1's story from the event stream alone:\n\
       on AMD the PAL's trip across the LPC bus dominates and scales with\n\
       size; on Intel the fixed ACMod transfer + signature check dominates\n\
       and the on-CPU PAL hash grows only slowly.\n"
end

(* ------------------------------------------------------------------ *)
(* Fleet capacity: sustainable fleet req/s at a p95 SLO, by machine     *)
(* count and hardware mode, via the cluster layer. Also emits the       *)
(* machine-readable BENCH_fleet.json consumed by the CI bench gate.     *)
(* ------------------------------------------------------------------ *)

module Fleet = struct
  (* Smoke mode (SEA_BENCH_SMOKE=1): shorter arrivals and a smaller
     sweep so the CI regression gate finishes in seconds. The emitted
     JSON is fully deterministic either way — the gate compares it
     against the checked-in smoke baseline within tolerance. *)
  let smoke = Sys.getenv_opt "SEA_BENCH_SMOKE" <> None
  let duration = Time.s (if smoke then 2. else 5.)
  let depth = 8
  let slo_ms = 250.
  let machine_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4 ]
  let seed = 7L

  (* Per-machine rate ladders; the fleet is offered rate * machines so
     capacity should scale linearly with the machine count. The current
     ladder starts high enough that even the short smoke window sees
     arrivals: a 0 capacity must mean a measured SLO violation, never an
     empty sample. *)
  let ladder = function
    | Sea_serve.Server.Current -> [ 1.; 2.; 4. ]
    | Sea_serve.Server.Proposed ->
        if smoke then [ 8.; 16.; 32.; 64. ]
        else [ 8.; 12.; 16.; 24.; 32.; 48.; 64.; 96.; 128. ]
    | Sea_serve.Server.Sfi ->
        (* Cheaper transitions than proposed, so the ladder reaches
           higher before the SLO breaks. (The fleet sweep itself stays a
           two-mode comparison; the three-way curve is the backend
           ablation's.) *)
        if smoke then [ 8.; 16.; 32.; 64.; 96. ]
        else [ 8.; 12.; 16.; 24.; 32.; 48.; 64.; 96.; 128.; 192. ]

  let run_at mode machines per_machine_rate =
    let cfg = Sea_cluster.Cluster.config ~machines () in
    let machine_config = Machine.low_fidelity Machine.hp_dc5750 in
    let machine_config = serving_config_for mode machine_config in
    let serve =
      Sea_serve.Server.config ~queue_depth:depth ~mode ~duration ()
    in
    let tenants =
      Sea_serve.Workload.preset ~tenants:(machines * 3)
        (`Open (per_machine_rate *. float_of_int machines))
    in
    match Sea_cluster.Cluster.run ~seed cfg ~machine_config ~serve tenants with
    | Ok fr -> fr
    | Error e -> failwith ("fleet sweep: " ^ e)

  (* Sustainable: nothing shed, timed out or failed anywhere in the
     fleet, fleet p95 within the SLO, and the slowest machine's window
     not stretching far past the arrival duration (a long tail means the
     backlog was only surviving on the depth bound). *)
  let sustainable (fr : Sea_cluster.Fleet_report.t) =
    let f = fr.Sea_cluster.Fleet_report.fleet in
    f.Sea_serve.Report.shed = 0
    && f.Sea_serve.Report.timed_out = 0
    && f.Sea_serve.Report.failed = 0
    && f.Sea_serve.Report.completed > 0
    && (match Stats.percentile_opt f.Sea_serve.Report.latency_ms 95. with
       | Some p -> p <= slo_ms
       | None -> false)
    && Time.compare fr.Sea_cluster.Fleet_report.window
         (Time.scale_f duration 1.2)
       <= 0

  (* Walk the ladder until the first unsustainable rung; capacity is the
     last sustained fleet rate, goodput the completions/s measured at
     it. *)
  let sweep mode machines =
    let best = ref None in
    let unsustained = ref false in
    List.iter
      (fun rate ->
        if not !unsustained then begin
          let fr = run_at mode machines rate in
          let f = fr.Sea_cluster.Fleet_report.fleet in
          let ok = sustainable fr in
          let fleet_rate = rate *. float_of_int machines in
          if ok then
            best := Some (fleet_rate, Sea_cluster.Fleet_report.goodput_per_s fr)
          else unsustained := true;
          Printf.printf
            "  %8.1f req/s fleet  offered %5d  goodput %7.2f/s  shed %4d  \
             %s  %s\n"
            fleet_rate f.Sea_serve.Report.offered
            (Sea_cluster.Fleet_report.goodput_per_s fr)
            f.Sea_serve.Report.shed
            (Format.asprintf "%a" Stats.pp_percentiles
               f.Sea_serve.Report.latency_ms)
            (if ok then "sustained" else "OVERLOAD")
        end)
      (ladder mode);
    match !best with Some (c, g) -> (c, g) | None -> (0., 0.)

  let mode_name = Backend.cli_name

  let json_file = "BENCH_fleet.json"

  let write_json results =
    let oc = open_out json_file in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"fleet-capacity\",\n\
      \  \"smoke\": %b,\n\
      \  \"slo_p95_ms\": %.1f,\n\
      \  \"seed\": %Ld,\n\
      \  \"results\": [\n"
      smoke slo_ms seed;
    let n = List.length results in
    List.iteri
      (fun i (mode, machines, capacity, goodput) ->
        Printf.fprintf oc
          "    { \"mode\": %S, \"machines\": %d, \"capacity_rps\": %.2f, \
           \"goodput_rps\": %.2f }%s\n"
          (mode_name mode) machines capacity goodput
          (if i = n - 1 then "" else ","))
      results;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc

  let run () =
    section
      (Printf.sprintf
         "Fleet capacity: req/s at a p95 <= %.0f ms SLO (3 tenants/machine, \
          HP dc5750, depth %d)%s"
         slo_ms depth
         (if smoke then " [smoke]" else ""));
    let results =
      List.concat_map
        (fun mode ->
          List.map
            (fun machines ->
              Printf.printf "%s hardware, %d machine%s:\n" (mode_name mode)
                machines
                (if machines = 1 then "" else "s");
              let capacity, goodput = sweep mode machines in
              (mode, machines, capacity, goodput))
            machine_counts)
        [ Sea_serve.Server.Current; Sea_serve.Server.Proposed ]
    in
    Printf.printf "\n%-10s %9s %14s %14s\n" "mode" "machines" "capacity r/s"
      "goodput r/s";
    List.iter
      (fun (mode, machines, capacity, goodput) ->
        Printf.printf "%-10s %9d %14.2f %14.2f\n" (mode_name mode) machines
          capacity goodput)
      results;
    write_json results;
    Printf.printf
      "\nToday's hardware cannot meet the %.0f ms p95 SLO at any offered\n\
       rate — every request is a multi-second full-SKINIT session — so its\n\
       capacity is 0 no matter how many machines the fleet adds. On the\n\
       proposed hardware capacity grows with machine count (machines are\n\
       independent; the router spreads tenants evenly; the steps are the\n\
       ladder's granularity): adding machines buys capacity, which no\n\
       amount of today's hardware can. JSON written to %s.\n"
      slo_ms json_file
end

(* ------------------------------------------------------------------ *)
(* Cost-aware admission: goodput under a mixed-cost workload, FIFO vs   *)
(* certificate-driven cost budgets. Emits BENCH_cost.json for the CI    *)
(* bench gate.                                                          *)
(* ------------------------------------------------------------------ *)

module Cost = struct
  let smoke = Sys.getenv_opt "SEA_BENCH_SMOKE" <> None
  let duration = Time.s (if smoke then 2. else 5.)
  let depth = 8
  let seed = 7L
  let budget = 4_000_000
  let rates = if smoke then [ 64.; 512. ] else [ 32.; 64.; 128.; 256.; 512. ]

  (* Mixed-cost tenant set: four cheap SSH tenants offering two thirds
     of the load next to a CA signer and a KV resealer, the
     certificate-expensive kinds. Under FIFO overload the expensive
     requests occupy queue slots and PAL time at the cheap tenants'
     expense; the cost budget caps each tenant's in-flight certificate
     cost instead. *)
  let tenants rate =
    let cheap = rate *. 2. /. 3. /. 4. and dear = rate /. 3. /. 2. in
    List.init 4 (fun i ->
        Sea_serve.Workload.tenant
          ~name:(Printf.sprintf "ssh%d" i)
          (Sea_serve.Workload.Open_loop { rate_per_s = cheap }))
    @ [
        Sea_serve.Workload.tenant ~name:"ca"
          ~mix:[ (Sea_serve.Workload.Ca_sign, 1) ]
          (Sea_serve.Workload.Open_loop { rate_per_s = dear });
        Sea_serve.Workload.tenant ~name:"kv"
          ~mix:[ (Sea_serve.Workload.Kv_update, 1) ]
          (Sea_serve.Workload.Open_loop { rate_per_s = dear });
      ]

  let run_at discipline rate =
    let config =
      Machine.proposed_variant (Machine.low_fidelity Machine.hp_dc5750)
    in
    let m = Machine.create ~engine:(Engine.create ~seed ()) config in
    let cfg =
      Sea_serve.Server.config ~queue_depth:depth ~discipline
        ~mode:Sea_serve.Server.Proposed ~duration ()
    in
    match Sea_serve.Server.run m cfg (tenants rate) with
    | Ok r -> r
    | Error e -> failwith ("cost sweep: " ^ e)

  let cheap_goodput (r : Sea_serve.Report.t) =
    List.fold_left
      (fun acc (row : Sea_serve.Report.row) ->
        if
          String.length row.Sea_serve.Report.tenant >= 3
          && String.sub row.Sea_serve.Report.tenant 0 3 = "ssh"
        then acc +. Sea_serve.Report.goodput_per_s r row
        else acc)
      0. r.Sea_serve.Report.rows

  let disciplines =
    [
      ("fifo", Sea_serve.Admission.Fifo);
      ("cost", Sea_serve.Admission.Cost budget);
    ]

  let json_file = "BENCH_cost.json"

  let write_json results =
    let oc = open_out json_file in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"cost-goodput\",\n\
      \  \"smoke\": %b,\n\
      \  \"budget_us\": %d,\n\
      \  \"seed\": %Ld,\n\
      \  \"results\": [\n"
      smoke budget seed;
    let n = List.length results in
    List.iteri
      (fun i (disc, rate, goodput, cheap, shed, cost_shed) ->
        Printf.fprintf oc
          "    { \"discipline\": %S, \"rate_rps\": %.1f, \"goodput_rps\": \
           %.2f, \"cheap_goodput_rps\": %.2f, \"shed\": %d, \"cost_shed\": \
           %d }%s\n"
          disc rate goodput cheap shed cost_shed
          (if i = n - 1 then "" else ","))
      results;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc

  let run () =
    section
      (Printf.sprintf
         "Cost-aware admission: goodput under a mixed-cost workload%s"
         (if smoke then " [smoke]" else ""));
    Printf.printf
      "4 SSH tenants (cheap, 2/3 of load) + CA + KV (certificate-expensive),\n\
       proposed hardware, depth %d: FIFO vs a %d us/tenant cost budget.\n\n"
      depth budget;
    let results =
      List.concat_map
        (fun rate ->
          List.map
            (fun (name, disc) ->
              let r = run_at disc rate in
              let a = r.Sea_serve.Report.aggregate in
              let g = Sea_serve.Report.goodput_per_s r a in
              let cg = cheap_goodput r in
              Printf.printf
                "  %-6s %8.1f req/s  goodput %7.2f/s  cheap %7.2f/s  shed \
                 %4d  cost shed %4d  %s\n"
                name rate g cg a.Sea_serve.Report.shed
                r.Sea_serve.Report.cost_shed
                (Format.asprintf "%a" Stats.pp_percentiles
                   a.Sea_serve.Report.latency_ms);
              (name, rate, g, cg, a.Sea_serve.Report.shed,
               r.Sea_serve.Report.cost_shed))
            disciplines)
        rates
    in
    let top = List.fold_left (fun acc r -> Float.max acc r) 0. rates in
    let cheap_at disc =
      List.fold_left
        (fun acc (name, rate, _, cg, _, _) ->
          if name = disc && rate = top then cg else acc)
        0. results
    in
    write_json results;
    Printf.printf
      "\nAt the top rate the cost budget keeps the cheap tenants at\n\
       %.2f completions/s vs %.2f under FIFO: expensive requests beyond\n\
       each tenant's certificate budget are shed at admission instead of\n\
       occupying queue slots and PAL time ahead of cheap work. JSON\n\
       written to %s.\n"
      (cheap_at "cost") (cheap_at "fifo") json_file
end

(* ------------------------------------------------------------------ *)
(* Tenant density: tenants-per-machine at a fixed latency SLO, with    *)
(* and without vTPM multiplexing, on both hardware modes. Emits        *)
(* BENCH_vtpm.json for the CI regression gate.                        *)
(* ------------------------------------------------------------------ *)

module Vtpm_density = struct
  let smoke = Sys.getenv_opt "SEA_BENCH_SMOKE" <> None
  let duration = Time.s (if smoke then 5. else 10.)
  let depth = 8
  let seed = 7L
  let slo_p95_ms = 250.

  (* Light per-tenant load: the question is how many tenants one machine
     holds at the SLO, not how hard one tenant can push. *)
  let per_tenant_rps = 0.25
  let ladder = [ 1; 2; 4; 8; 12; 16; 24; 32; 40; 48; 64 ]

  let configs =
    [
      ("current", Sea_serve.Server.Current, false);
      ("current+vtpm", Sea_serve.Server.Current, true);
      ("proposed", Sea_serve.Server.Proposed, false);
      ("proposed+vtpm", Sea_serve.Server.Proposed, true);
    ]

  let run_at mode ~vtpm n =
    let config = Machine.low_fidelity Machine.hp_dc5750 in
    let config = serving_config_for mode config in
    let m = Machine.create ~engine:(Engine.create ~seed ()) config in
    let cfg =
      Sea_serve.Server.config ~queue_depth:depth
        ?vtpm:(if vtpm then Some n else None)
        ~mode ~duration ()
    in
    let tenants =
      Sea_serve.Workload.preset ~tenants:n
        (`Open (per_tenant_rps *. float_of_int n))
    in
    match Sea_serve.Server.run m cfg tenants with
    | Ok r -> r
    | Error e -> failwith ("vtpm density sweep: " ^ e)

  let p95 (r : Sea_serve.Report.t) =
    (* An empty completion window (every request shed or failed) means
       the SLO is unmeetable, not a crash: report it as infinite. *)
    match
      Stats.percentile_opt
        r.Sea_serve.Report.aggregate.Sea_serve.Report.latency_ms 95.
    with
    | Some p -> p
    | None -> Float.infinity

  let meets_slo (r : Sea_serve.Report.t) =
    let a = r.Sea_serve.Report.aggregate in
    p95 r <= slo_p95_ms
    && a.Sea_serve.Report.shed = 0
    && a.Sea_serve.Report.timed_out = 0
    && a.Sea_serve.Report.failed = 0

  (* Walk the tenant ladder upward until the SLO first breaks; capacity
     is the last rung that held it (0 if even one tenant breaks). *)
  let sweep mode ~vtpm =
    let rec go best = function
      | [] -> best
      | n :: rest ->
          let r = run_at mode ~vtpm n in
          let a = r.Sea_serve.Report.aggregate in
          let ok = meets_slo r in
          Printf.printf
            "  %4d tenants  %7.2f req/s offered  goodput %7.2f/s  p95 \
             %8.2f ms  %s\n"
            n
            (per_tenant_rps *. float_of_int n)
            (Sea_serve.Report.goodput_per_s r a)
            (p95 r)
            (if ok then "within SLO" else "SLO MISS");
          if ok then
            go (Some (n, Sea_serve.Report.goodput_per_s r a, p95 r)) rest
          else best
    in
    go None ladder

  let json_file = "BENCH_vtpm.json"

  let write_json results =
    let oc = open_out json_file in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"vtpm-density\",\n\
      \  \"smoke\": %b,\n\
      \  \"slo_p95_ms\": %.1f,\n\
      \  \"per_tenant_rps\": %.2f,\n\
      \  \"seed\": %Ld,\n\
      \  \"results\": [\n"
      smoke slo_p95_ms per_tenant_rps seed;
    let n = List.length results in
    List.iteri
      (fun i (config, tenants, rps, p95) ->
        Printf.fprintf oc
          "    { \"config\": %S, \"slo_tenants\": %d, \"capacity_rps\": \
           %.2f, \"p95_ms\": %.2f }%s\n"
          config tenants rps p95
          (if i = n - 1 then "" else ","))
      results;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc

  let run () =
    section
      (Printf.sprintf
         "Tenant density: tenants per machine at a %.0f ms p95 SLO%s"
         slo_p95_ms
         (if smoke then " [smoke]" else ""));
    Printf.printf
      "HP dc5750, %.2f req/s per tenant, depth %d: how many tenants one\n\
       machine holds before p95 crosses the SLO, on each hardware mode\n\
       with and without virtual TPM multiplexing (--vtpm tenants).\n"
      per_tenant_rps depth;
    let results =
      List.map
        (fun (name, mode, vtpm) ->
          Printf.printf "\n%s:\n" name;
          match sweep mode ~vtpm with
          | Some (n, rps, p95) -> (name, n, rps, p95)
          | None -> (name, 0, 0., 0.))
        configs
    in
    write_json results;
    let capacity name =
      List.fold_left
        (fun acc (n, t, _, _) -> if n = name then t else acc)
        0 results
    in
    Printf.printf
      "\nTenants held at the SLO: current %d, current+vtpm %d, proposed %d,\n\
       proposed+vtpm %d. Today's hardware serves nobody at this SLO — every\n\
       request pays a multi-second hardware seal/unseal round-trip — until\n\
       the vTPM multiplexer absorbs the data-path TPM work in software and\n\
       batches its anchor extends into the hardware part. JSON written to\n\
       %s.\n"
      (capacity "current")
      (capacity "current+vtpm")
      (capacity "proposed")
      (capacity "proposed+vtpm")
      json_file
end

(* ------------------------------------------------------------------ *)
(* A10 — graceful degradation under machine churn: fleet goodput and    *)
(* p95 vs MTTF, current vs proposed hardware, sealed-state failover on  *)
(* vs off. Emits BENCH_churn.json for the CI bench gate, which also     *)
(* checks the headline: at the sweep's mid MTTF on proposed hardware,   *)
(* failover must recover at least 2x the goodput of failing in place.   *)
(* ------------------------------------------------------------------ *)

module Churn = struct
  let smoke = Sys.getenv_opt "SEA_BENCH_SMOKE" <> None
  let duration_s = if smoke then 6. else 8.
  let machines = 8
  let per_machine_rate = 8.
  let mttr_s = 4.
  let mttfs = if smoke then [ 1.5 ] else [ 0.75; 1.5; 3.0 ]
  let seed = 7L
  let churn_seed = 1

  let run_at mode ~mttf_s ~failover =
    let cfg = Sea_cluster.Cluster.config ~machines () in
    let machine_config = Machine.low_fidelity Machine.hp_dc5750 in
    let machine_config = serving_config_for mode machine_config in
    let serve =
      Sea_serve.Server.config ~queue_depth:16 ~mode
        ~duration:(Time.s duration_s) ()
    in
    let tenants =
      Sea_serve.Workload.preset ~tenants:(machines * 3)
        (`Open (per_machine_rate *. float_of_int machines))
    in
    let plan =
      Sea_fault.Machine_fault.spec ~mttf:(Time.s mttf_s)
        ~mttr:(Time.s mttr_s) ~seed:churn_seed ()
    in
    let churn = Sea_cluster.Cluster.churn ~failover plan () in
    match
      Sea_cluster.Cluster.run ~seed ~churn cfg ~machine_config ~serve tenants
    with
    | Ok fr -> fr
    | Error e -> failwith ("churn sweep: " ^ e)

  (* Goodput over the configured arrival window, not the report window:
     a failover-off fleet stops serving early (its machines' last epochs
     black-hole), so completions per configured second is the fair
     cross-mode comparison. *)
  let goodput (fr : Sea_cluster.Fleet_report.t) =
    float_of_int fr.Sea_cluster.Fleet_report.fleet.Sea_serve.Report.completed
    /. duration_s

  let p95 (fr : Sea_cluster.Fleet_report.t) =
    match
      Stats.percentile_opt
        fr.Sea_cluster.Fleet_report.fleet.Sea_serve.Report.latency_ms 95.
    with
    | Some p -> p
    | None -> Float.infinity

  let mode_name = Backend.cli_name

  let json_file = "BENCH_churn.json"

  let write_json results =
    let oc = open_out json_file in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"churn-degradation\",\n\
      \  \"smoke\": %b,\n\
      \  \"machines\": %d,\n\
      \  \"mttr_s\": %.2f,\n\
      \  \"seed\": %Ld,\n\
      \  \"results\": [\n"
      smoke machines mttr_s seed;
    let n = List.length results in
    List.iteri
      (fun i (mode, mttf_s, failover, fr) ->
        let c = Option.get fr.Sea_cluster.Fleet_report.churn in
        Printf.fprintf oc
          "    { \"mode\": %S, \"mttf_s\": %.2f, \"failover\": %b, \
           \"goodput_rps\": %.2f, \"p95_ms\": %s, \"lost\": %d, \
           \"migrations_warm\": %d, \"migrations_cold\": %d }%s\n"
          (mode_name mode) mttf_s failover (goodput fr)
          (let p = p95 fr in
           if Float.is_finite p then Printf.sprintf "%.2f" p else "null")
          c.Sea_cluster.Fleet_report.lost_requests
          c.Sea_cluster.Fleet_report.migrations
          c.Sea_cluster.Fleet_report.cold_restarts
          (if i = n - 1 then "" else ","))
      results;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc

  let run () =
    section
      (Printf.sprintf
         "A10 — degradation under machine churn: goodput vs MTTF (%d \
          machines, MTTR %.0f s, %.0f req/s fleet)%s"
         machines mttr_s
         (per_machine_rate *. float_of_int machines)
         (if smoke then " [smoke]" else ""));
    let results =
      List.concat_map
        (fun mode ->
          List.concat_map
            (fun mttf_s ->
              List.map
                (fun failover ->
                  let fr = run_at mode ~mttf_s ~failover in
                  (mode, mttf_s, failover, fr))
                [ true; false ])
            mttfs)
        [ Sea_serve.Server.Current; Sea_serve.Server.Proposed ]
    in
    Printf.printf "%-10s %8s %9s %12s %10s %6s %12s\n" "mode" "mttf s"
      "failover" "goodput r/s" "p95 ms" "lost" "warm/cold";
    List.iter
      (fun (mode, mttf_s, failover, fr) ->
        let c = Option.get fr.Sea_cluster.Fleet_report.churn in
        Printf.printf "%-10s %8.2f %9s %12.2f %10s %6d %8d/%d\n"
          (mode_name mode) mttf_s
          (if failover then "on" else "off")
          (goodput fr)
          (let p = p95 fr in
           if Float.is_finite p then Printf.sprintf "%.2f" p else "n/a")
          c.Sea_cluster.Fleet_report.lost_requests
          c.Sea_cluster.Fleet_report.migrations
          c.Sea_cluster.Fleet_report.cold_restarts)
      results;
    write_json results;
    (* The headline the CI gate re-checks from the JSON: failover vs
       fail-in-place at the sweep's middle MTTF on proposed hardware. *)
    let mid = List.nth mttfs (List.length mttfs / 2) in
    let at failover =
      List.fold_left
        (fun acc (mode, mttf_s, fo, fr) ->
          let on_proposed =
            match mode with
            | Sea_serve.Server.Proposed -> true
            | Sea_serve.Server.Current | Sea_serve.Server.Sfi -> false
          in
          if on_proposed && mttf_s = mid && fo = failover then goodput fr
          else acc)
        0. results
    in
    Printf.printf
      "\nAt MTTF %.2f s on the proposed hardware, sealed-state failover\n\
       holds %.2f req/s where failing in place holds %.2f (%.2fx): the\n\
       heartbeat detector reroutes a dead machine's tenants within its\n\
       detection lag and sePCR-bound seal/unseal moves their resident\n\
       PALs, so the fleet degrades by the detection window instead of\n\
       the repair time. JSON written to %s.\n"
      mid (at true) (at false)
      (at true /. Float.max (at false) 1e-9)
      json_file
end

(* ------------------------------------------------------------------ *)
(* A11 Backend ablation: capacity at the p95 SLO on ONE machine across *)
(* all three isolation backends, at two resident-identity counts: 4    *)
(* (within the proposed hardware's 8-sePCR bank) and 12 (past it, so   *)
(* every eviction pays a TPM seal). SFI's unbounded pool pays only its *)
(* VM-exit-class transitions either way, and today's hardware pays a   *)
(* full session per request. Emits BENCH_backend.json for the CI       *)
(* bench gate.                                                         *)
(* ------------------------------------------------------------------ *)

module Backend_ablation = struct
  let smoke = Sys.getenv_opt "SEA_BENCH_SMOKE" <> None
  let duration = Time.s (if smoke then 2. else 5.)
  let depth = 8
  let slo_ms = 250.

  (* Single-kind preset tenants: the tenant count IS the resident
     identity count. 4 fits the 8-sePCR bank; 12 overflows it. *)
  let tenant_counts = [ 4; 12 ]
  let seed = 7L

  let ladder = function
    | Sea_serve.Server.Current -> [ 1.; 2.; 4. ]
    | Sea_serve.Server.Proposed ->
        if smoke then [ 8.; 16.; 32.; 64. ]
        else [ 8.; 12.; 16.; 24.; 32.; 48.; 64.; 96.; 128. ]
    | Sea_serve.Server.Sfi ->
        if smoke then [ 8.; 16.; 32.; 64.; 96.; 128. ]
        else [ 8.; 12.; 16.; 24.; 32.; 48.; 64.; 96.; 128.; 192.; 256. ]

  let run_at mode tenants rate =
    let config = Machine.low_fidelity Machine.hp_dc5750 in
    let config = serving_config_for mode config in
    let m = Machine.create ~engine:(Engine.create ~seed ()) config in
    let cfg = Sea_serve.Server.config ~queue_depth:depth ~mode ~duration () in
    let ts = Sea_serve.Workload.preset ~tenants (`Open rate) in
    match Sea_serve.Server.run m cfg ts with
    | Ok r -> r
    | Error e -> failwith ("backend sweep: " ^ e)

  (* Sustainable: nothing shed, timed out or failed, aggregate p95
     within the SLO, and the backlog drained soon after arrivals
     stopped. *)
  let sustainable (r : Sea_serve.Report.t) =
    let a = r.Sea_serve.Report.aggregate in
    a.Sea_serve.Report.shed = 0
    && a.Sea_serve.Report.timed_out = 0
    && a.Sea_serve.Report.failed = 0
    && a.Sea_serve.Report.completed > 0
    && (match Stats.percentile_opt a.Sea_serve.Report.latency_ms 95. with
       | Some p -> p <= slo_ms
       | None -> false)
    && Time.compare r.Sea_serve.Report.window (Time.scale_f duration 1.2) <= 0

  (* Walk the ladder to the first unsustainable rung; remember the
     resident-pool counters measured at the capacity rung. *)
  let sweep mode tenants =
    let best = ref None in
    let unsustained = ref false in
    List.iter
      (fun rate ->
        if not !unsustained then begin
          let r = run_at mode tenants rate in
          let a = r.Sea_serve.Report.aggregate in
          let ok = sustainable r in
          if ok then
            best :=
              Some
                ( rate,
                  Sea_serve.Report.goodput_per_s r a,
                  r.Sea_serve.Report.evictions,
                  r.Sea_serve.Report.sepcr_waits )
          else unsustained := true;
          Printf.printf
            "  %8.1f req/s  offered %5d  goodput %7.2f/s  evict %4d  \
             waits %4d  %s  %s\n"
            rate a.Sea_serve.Report.offered
            (Sea_serve.Report.goodput_per_s r a)
            r.Sea_serve.Report.evictions r.Sea_serve.Report.sepcr_waits
            (Format.asprintf "%a" Stats.pp_percentiles
               a.Sea_serve.Report.latency_ms)
            (if ok then "sustained" else "OVERLOAD")
        end)
      (ladder mode);
    match !best with Some r -> r | None -> (0., 0., 0, 0)

  let mode_name = Backend.cli_name

  let json_file = "BENCH_backend.json"

  let write_json results =
    let oc = open_out json_file in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"backend-ablation\",\n\
      \  \"smoke\": %b,\n\
      \  \"slo_p95_ms\": %.1f,\n\
      \  \"seed\": %Ld,\n\
      \  \"results\": [\n"
      smoke slo_ms seed;
    let n = List.length results in
    List.iteri
      (fun i (mode, tenants, capacity, goodput, evictions, waits) ->
        Printf.fprintf oc
          "    { \"mode\": %S, \"tenants\": %d, \"capacity_rps\": %.2f, \
           \"goodput_rps\": %.2f, \"evictions\": %d, \"sepcr_waits\": %d \
           }%s\n"
          (mode_name mode) tenants capacity goodput evictions waits
          (if i = n - 1 then "" else ","))
      results;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc

  let run () =
    section
      (Printf.sprintf
         "Backend ablation: capacity at a p95 <= %.0f ms SLO (one HP \
          dc5750, depth %d)%s"
         slo_ms depth
         (if smoke then " [smoke]" else ""));
    let results =
      List.concat_map
        (fun tenants ->
          List.map
            (fun mode ->
              Printf.printf "%s backend, %d resident identities:\n"
                (Backend.kind_name mode) tenants;
              let capacity, goodput, evictions, waits = sweep mode tenants in
              (mode, tenants, capacity, goodput, evictions, waits))
            [ Sea_serve.Server.Current; Sea_serve.Server.Proposed;
              Sea_serve.Server.Sfi ])
        tenant_counts
    in
    Printf.printf "\n%-10s %8s %14s %14s %10s %12s\n" "mode" "tenants"
      "capacity r/s" "goodput r/s" "evictions" "sepcr waits";
    List.iter
      (fun (mode, tenants, capacity, goodput, evictions, waits) ->
        Printf.printf "%-10s %8d %14.2f %14.2f %10d %12d\n" (mode_name mode)
          tenants capacity goodput evictions waits)
      results;
    write_json results;
    let capacity_of k t =
      List.fold_left
        (fun acc (mode, tenants, c, _, _, _) ->
          if mode = k && tenants = t then c else acc)
        0. results
    in
    let lo = List.nth tenant_counts 0 and hi = List.nth tenant_counts 1 in
    Printf.printf
      "\nThree points on the isolation-cost curve, same workload, same SLO.\n\
       Within the sePCR bank (%d identities): today's hardware %.2f req/s\n\
       (a full SKINIT session per request), the proposed hardware %.2f\n\
       req/s, SFI %.2f req/s — the gap is transition cost alone. Past the\n\
       bank (%d identities vs 8 sePCRs): the proposed hardware falls to\n\
       %.2f req/s because every eviction seals state out through the TPM\n\
       at hundreds of ms, while SFI holds %.2f req/s — no sePCR scarcity\n\
       to pay. JSON written to %s.\n"
      lo
      (capacity_of Sea_serve.Server.Current lo)
      (capacity_of Sea_serve.Server.Proposed lo)
      (capacity_of Sea_serve.Server.Sfi lo)
      hi
      (capacity_of Sea_serve.Server.Proposed hi)
      (capacity_of Sea_serve.Server.Sfi hi)
      json_file
end

(* ------------------------------------------------------------------ *)
(* A12 — autoscaling under a flash crowd: fleet capacity at the p95     *)
(* SLO for static routing vs sealed-state migration vs kill-and-respawn *)
(* spreading. Emits BENCH_autoscale.json for the CI bench gate, which   *)
(* also asserts the headline: migrate-or-spread autoscaling sustains    *)
(* >= 1.5x the static fleet's rate.                                     *)
(* ------------------------------------------------------------------ *)

module Autoscale_bench = struct
  let smoke = Sys.getenv_opt "SEA_BENCH_SMOKE" <> None
  let duration = Time.s (if smoke then 4. else 10.)
  let slo_ms = 250.
  let machines = 4
  let depth = 8
  let seed = 11L
  let tenant_count = 12
  let spike = 6.

  (* The controller ticks 16 times per window: weight halving takes a
     few consecutive hot ticks to walk a machine down from full weight,
     so the tick period bounds how much of the crowd's lifetime is
     burned reacting rather than rebalanced — but every tick is also an
     epoch cut (cold PAL caches), so over-ticking taxes all policies.
     The crowd concentration puts the hot machine at ~3.2x the fleet
     mean while the mere 5-of-12-tenants steady imbalance is ~1.7x; a
     2x threshold fires on the former and sleeps through the latter,
     so the fleet only rebalances when the crowd is actually there. *)
  let interval = Time.scale_f duration (1. /. 16.)
  let hot_threshold = 1.8

  let tenant_name i = Printf.sprintf "t%d-ssh-auth" i

  let probe_tenant i =
    Sea_serve.Workload.tenant ~name:(tenant_name i)
      (Sea_serve.Workload.Open_loop { rate_per_s = 1. })

  (* The ablation needs a hot spot, not a uniformly hot fleet: the
     flash crowd hits exactly the tenants the initial ring co-locates
     on its most-loaded machine. A static fleet is then capped by that
     one machine melting while its three neighbours idle; the
     autoscaler's whole job is to notice and walk the crowd apart.
     (Pure function of the ring, so the choice is deterministic.) *)
  let flash_names =
    let ring = Sea_cluster.Router.make_ring (List.init machines Fun.id) in
    let probe = List.init tenant_count probe_tenant in
    let counts = Array.make machines 0 in
    List.iter
      (fun t ->
        let m = Sea_cluster.Router.lookup ring t in
        counts.(m) <- counts.(m) + 1)
      probe;
    let hot = ref 0 in
    Array.iteri (fun m c -> if c > counts.(!hot) then hot := m) counts;
    List.filter_map
      (fun t ->
        if Sea_cluster.Router.lookup ring t = !hot then
          Some t.Sea_serve.Workload.name
        else None)
      probe

  let flash_tenants = List.length flash_names

  (* From T/4 to 3T/4 the chosen tenants' rates step to [spike]x. *)
  let tenants total_rate =
    let flash =
      Sea_serve.Workload.Flash
        {
          at = Time.scale_f duration 0.25;
          width = Time.scale_f duration 0.5;
          spike;
        }
    in
    List.init tenant_count (fun i ->
        let name = tenant_name i in
        Sea_serve.Workload.tenant ~name
          ~shape:
            (if List.mem name flash_names then flash
             else Sea_serve.Workload.Steady)
          (Sea_serve.Workload.Open_loop
             { rate_per_s = total_rate /. float_of_int tenant_count }))

  let run_at policy total_rate =
    let cfg =
      Sea_cluster.Cluster.config ~machines ~policy:Sea_cluster.Router.Hash_tenant
        ()
    in
    let machine_config = Machine.low_fidelity Machine.hp_dc5750 in
    let machine_config =
      serving_config_for Sea_serve.Server.Proposed machine_config
    in
    let serve =
      Sea_serve.Server.config ~queue_depth:depth
        ~mode:Sea_serve.Server.Proposed ~duration ()
    in
    let autoscale =
      Sea_cluster.Autoscale.config ~policy ~interval ~hot_threshold ()
    in
    match
      Sea_cluster.Cluster.run ~seed ~autoscale cfg ~machine_config ~serve
        (tenants total_rate)
    with
    | Ok fr -> fr
    | Error e -> failwith ("autoscale sweep: " ^ e)

  (* Sustainable at a rung: nothing failed, fleet p95 within the SLO,
     the slowest machine's window not stretching far past the arrival
     window, and shed bounded by 5% of offered — the detection lag
     between a crowd's onset and the controller's next tick costs a
     burst of queue-overflow sheds even when the rebalanced fleet then
     absorbs the crowd easily, while a static fleet's hot machine sheds
     for the crowd's whole lifetime and blows far past 5%. *)
  let sustainable (fr : Sea_cluster.Fleet_report.t) =
    let f = fr.Sea_cluster.Fleet_report.fleet in
    f.Sea_serve.Report.failed = 0
    && f.Sea_serve.Report.completed > 0
    && f.Sea_serve.Report.shed + f.Sea_serve.Report.timed_out
       <= f.Sea_serve.Report.offered / 20
    && (match Stats.percentile_opt f.Sea_serve.Report.latency_ms 95. with
       | Some p -> p <= slo_ms
       | None -> false)
    && Time.compare fr.Sea_cluster.Fleet_report.window
         (Time.scale_f duration 1.2)
       <= 0

  let ladder =
    if smoke then [ 60.; 100.; 150.; 200.; 300.; 400.; 550. ]
    else [ 60.; 100.; 150.; 200.; 300.; 400.; 550.; 700.; 900. ]

  (* Walk the ladder to the first unsustainable rung; capacity is the
     last sustained total base rate. Keep the last report for the move
     counters. *)
  let sweep policy =
    let best = ref None in
    let unsustained = ref false in
    List.iter
      (fun rate ->
        if not !unsustained then begin
          let fr = run_at policy rate in
          let f = fr.Sea_cluster.Fleet_report.fleet in
          let ok = sustainable fr in
          if ok then
            best := Some (rate, Sea_cluster.Fleet_report.goodput_per_s fr, fr)
          else unsustained := true;
          let hot_events, moved =
            match fr.Sea_cluster.Fleet_report.autoscale with
            | Some a ->
                ( a.Sea_cluster.Fleet_report.hot_events,
                  a.Sea_cluster.Fleet_report.tenants_moved )
            | None -> (0, 0)
          in
          Printf.printf
            "  %8.1f req/s base  offered %5d  goodput %7.2f/s  shed %4d  \
             hot %2d  moved %2d  %s  %s\n"
            rate f.Sea_serve.Report.offered
            (Sea_cluster.Fleet_report.goodput_per_s fr)
            f.Sea_serve.Report.shed hot_events moved
            (Format.asprintf "%a" Stats.pp_percentiles
               f.Sea_serve.Report.latency_ms)
            (if ok then "sustained" else "OVERLOAD")
        end)
      ladder;
    !best

  let json_file = "BENCH_autoscale.json"

  let write_json results =
    let oc = open_out json_file in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"autoscale-flash\",\n\
      \  \"smoke\": %b,\n\
      \  \"slo_p95_ms\": %.1f,\n\
      \  \"seed\": %Ld,\n\
      \  \"machines\": %d,\n\
      \  \"flash_spike\": %.1f,\n\
      \  \"results\": [\n"
      smoke slo_ms seed machines spike;
    let n = List.length results in
    List.iteri
      (fun i (policy, capacity, goodput, moved, warm, respawns) ->
        Printf.fprintf oc
          "    { \"policy\": %S, \"capacity_rps\": %.2f, \"goodput_rps\": \
           %.2f, \"tenants_moved\": %d, \"warm_migrations\": %d, \
           \"respawns\": %d }%s\n"
          (Sea_cluster.Autoscale.policy_name policy)
          capacity goodput moved warm respawns
          (if i = n - 1 then "" else ","))
      results;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc

  let run () =
    section
      (Printf.sprintf
         "A12 — autoscaling a flash crowd: fleet base rate at a p95 <= %.0f \
          ms SLO (%d machines, %d tenants, %d of them spiking %.0fx, \
          proposed hw)%s"
         slo_ms machines tenant_count flash_tenants spike
         (if smoke then " [smoke]" else ""));
    let results =
      List.map
        (fun policy ->
          Printf.printf "%s policy:\n"
            (Sea_cluster.Autoscale.policy_name policy);
          match sweep policy with
          | Some (capacity, goodput, fr) ->
              let a =
                Option.get fr.Sea_cluster.Fleet_report.autoscale
              in
              ( policy, capacity, goodput,
                a.Sea_cluster.Fleet_report.tenants_moved,
                a.Sea_cluster.Fleet_report.warm_moves,
                a.Sea_cluster.Fleet_report.respawns )
          | None -> (policy, 0., 0., 0, 0, 0))
        [
          Sea_cluster.Autoscale.Static; Sea_cluster.Autoscale.Migrate;
          Sea_cluster.Autoscale.Spread;
        ]
    in
    Printf.printf "\n%-10s %14s %14s %7s %6s %9s\n" "policy" "capacity r/s"
      "goodput r/s" "moved" "warm" "respawns";
    List.iter
      (fun (policy, capacity, goodput, moved, warm, respawns) ->
        Printf.printf "%-10s %14.2f %14.2f %7d %6d %9d\n"
          (Sea_cluster.Autoscale.policy_name policy)
          capacity goodput moved warm respawns)
      results;
    write_json results;
    let cap p =
      List.fold_left
        (fun acc (q, c, _, _, _, _) -> if q = p then c else acc)
        0. results
    in
    Printf.printf
      "\nThe crowd hits exactly the tenants the ring co-located, so the\n\
       static fleet is capped by one machine melting while its neighbours\n\
       idle; the controller halves the hot machine's ring weight tick by\n\
       tick and walks the crowd apart. Static sustains %.0f req/s,\n\
       sealed-state migration %.0f req/s, kill-and-respawn spreading\n\
       %.0f req/s — the two rebalancing policies buy the same routing\n\
       freedom and differ only in what a move costs the target machine.\n\
       JSON written to %s.\n"
      (cap Sea_cluster.Autoscale.Static)
      (cap Sea_cluster.Autoscale.Migrate)
      (cap Sea_cluster.Autoscale.Spread)
      json_file
end

(* ------------------------------------------------------------------ *)

let all =
  [
    ("table1", Table1.run);
    ("table2", Table2.run);
    ("figure2", Figure2.run);
    ("figure3", Figure3.run);
    ("impact", Impact.run);
    ("concurrency", Concurrency.run);
    ("faster-tpm", Faster_tpm.run);
    ("io-loss", Io_loss.run);
    ("multicore", Multicore.run);
    ("micro", Micro.run);
    ("analyzer", Analyzer_throughput.run);
    ("serving", Serving.run);
    ("degradation", Degradation.run);
    ("trace", Trace_decomp.run);
    ("fleet", Fleet.run);
    ("cost", Cost.run);
    ("vtpm", Vtpm_density.run);
    ("churn", Churn.run);
    ("backend", Backend_ablation.run);
    ("autoscale", Autoscale_bench.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all
  in
  Printf.printf
    "SEA benchmark harness — reproducing McCune et al., ASPLOS 2008\n\
     (simulated platform; paper values shown for comparison)\n";
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat " " (List.map fst all));
          exit 1)
    requested
