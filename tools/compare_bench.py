#!/usr/bin/env python3
"""Compare a bench JSON against its checked-in baseline.

Invoked per manifest line by tools/check_bench.sh:

    compare_bench.py <bench> <current.json> <baseline.json> \
                     <key-fields> <metrics> <headline|->

Every result row (matched on the comma-separated key fields) must hold
each metric within +-10% of the baseline; rows missing from either side
fail. The headline argument names a check below that pins the result
the bench exists to show.
"""

import json
import sys

TOL = 0.10


def rows_by_key(doc, key_fields):
    return {tuple(r[k] for k in key_fields): r for r in doc["results"]}


def check_tolerance(bench, cur, base, key_fields, metrics):
    fail = False
    bases = rows_by_key(base, key_fields)
    for key, r in rows_by_key(cur, key_fields).items():
        b = bases.pop(key, None)
        if b is None:
            print(f"{bench} {key}: not in baseline — regenerate it")
            fail = True
            continue
        for m in metrics:
            want, got = b[m], r[m]
            lo, hi = want * (1 - TOL), want * (1 + TOL)
            ok = lo <= got <= hi
            print(
                f"{bench} {key} {m}: baseline {want} got {got} "
                f"[{'ok' if ok else 'REGRESSION'}]"
            )
            fail |= not ok
    if bases:
        print(f"{bench}: rows missing from bench output: {sorted(bases)}")
        fail = True
    return fail


def headline_backend_ordering(cur):
    """Isolation-cost curve stays ordered: sfi >= proposed >= current
    capacity at every tenant count, and past the sePCR bank SFI keeps a
    strict edge over the proposed hardware's TPM-seal evictions."""
    fail = False
    cap = {(r["mode"], r["tenants"]): r["capacity_rps"] for r in cur["results"]}
    for t in sorted({r["tenants"] for r in cur["results"]}):
        s, p, c = cap[("sfi", t)], cap[("proposed", t)], cap[("current", t)]
        print(f"ordering at {t} tenants: sfi {s} >= proposed {p} >= current {c}")
        if not s >= p >= c:
            print("headline regression: backend capacity ordering broken")
            fail = True
    hi = max(r["tenants"] for r in cur["results"])
    if cap[("sfi", hi)] <= cap[("proposed", hi)]:
        print("headline regression: sfi lost its past-the-bank edge")
        fail = True
    return fail


def headline_vtpm_nonzero(cur):
    """Today's hardware holds zero tenants at the SLO until the vTPM
    layer lifts it off zero."""
    vtpm = {r["config"]: r for r in cur["results"]}
    if vtpm["current+vtpm"]["capacity_rps"] <= 0:
        print("headline regression: current+vtpm capacity fell back to zero")
        return True
    return False


def headline_churn_failover_gain(cur):
    """At the mid MTTF on proposed hardware, sealed-state failover
    recovers at least 2x the goodput of failing in place."""
    rows = {(r["mode"], r["mttf_s"], r["failover"]): r for r in cur["results"]}
    mttfs = sorted({r["mttf_s"] for r in cur["results"]})
    mid = mttfs[len(mttfs) // 2]
    on = rows[("proposed", mid, True)]["goodput_rps"]
    off = rows[("proposed", mid, False)]["goodput_rps"]
    gain = on / max(off, 1e-9)
    print(f"failover gain at mttf {mid}: {gain:.2f}x (on {on}, off {off})")
    if gain < 2.0:
        print("headline regression: failover gain fell below 2x")
        return True
    return False


def headline_autoscale_gain(cur):
    """Under the flash crowd, the better of live migration and
    kill-and-respawn spreading sustains at least 1.5x the static
    fleet's capacity at the 250 ms p95 SLO."""
    cap = {r["policy"]: r["capacity_rps"] for r in cur["results"]}
    static = cap["static"]
    best = max(cap["migrate"], cap["spread"])
    gain = best / max(static, 1e-9)
    print(
        f"autoscale gain at SLO: {gain:.2f}x (static {static}, "
        f"migrate {cap['migrate']}, spread {cap['spread']})"
    )
    if gain < 1.5:
        print("headline regression: autoscaling gain fell below 1.5x")
        return True
    return False


HEADLINES = {
    "backend_ordering": headline_backend_ordering,
    "vtpm_nonzero": headline_vtpm_nonzero,
    "churn_failover_gain": headline_churn_failover_gain,
    "autoscale_gain": headline_autoscale_gain,
}


def main():
    bench, cur_path, base_path, keys, metrics, headline = sys.argv[1:7]
    with open(cur_path) as fh:
        cur = json.load(fh)
    with open(base_path) as fh:
        base = json.load(fh)
    fail = check_tolerance(
        bench, cur, base, keys.split(","), metrics.split(",")
    )
    if headline != "-":
        fail |= HEADLINES[headline](cur)
    sys.exit(1 if fail else 0)


if __name__ == "__main__":
    main()
