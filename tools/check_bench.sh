#!/usr/bin/env bash
# Consolidated bench regression gate, driven by tools/bench_manifest.tsv.
#
# For each manifest line this runs the bench subcommand (in smoke mode
# unless SEA_BENCH_SMOKE is already set), compares its JSON against the
# checked-in baseline at +-10% per metric, and then applies the named
# headline check — the single result each bench exists to demonstrate,
# which a drift that stays within 10% per-row could still break.
#
# Usage: tools/check_bench.sh [bench ...]   (default: every manifest line)
#
# Run it from anywhere; it cds to the repo root. In CI wrap it with
# `opam exec --`. All BENCH_*.json outputs are left in the repo root so
# the always-upload artifact step can collect them even on failure.
set -euo pipefail

cd "$(dirname "$0")/.."
dune build bench/main.exe
export SEA_BENCH_SMOKE="${SEA_BENCH_SMOKE:-1}"

selected=("$@")
want() {
  [ ${#selected[@]} -eq 0 ] && return 0
  local b
  for b in "${selected[@]}"; do [ "$b" = "$1" ] && return 0; done
  return 1
}

fail=0
while read -r bench out baseline keys metrics headline; do
  case "$bench" in ''|\#*) continue ;; esac
  want "$bench" || continue
  echo "=== bench: $bench ==="
  if ! dune exec bench/main.exe -- "$bench" >/dev/null; then
    echo "$bench: bench run failed"
    fail=1
    continue
  fi
  [ "$baseline" = "-" ] && { echo "$bench: run-only (no baseline)"; continue; }
  if ! python3 tools/compare_bench.py \
         "$bench" "$out" "$baseline" "$keys" "$metrics" "$headline"; then
    fail=1
  fi
done <tools/bench_manifest.tsv

if [ "$fail" -ne 0 ]; then
  echo "bench gate FAILED"
  exit 1
fi
echo "bench gate passed"
