#!/usr/bin/env bash
# Consolidated cluster-determinism gate.
#
# Every case runs the same fleet twice — once on 1 shard, once on 4 —
# and byte-diffs the merged reports: the virtual-time simulation must
# not let the domain count show anywhere in its output. The current-mode
# pair of the `shards` case doubles as the shard speedup measurement
# (its per-request TPM/LPC event storm gives the longest single-shard
# wall time), gated at SEA_MIN_SPEEDUP (default 2.0; set 0 to skip on
# oversubscribed machines).
#
# Usage: tools/check_determinism.sh [all|shards|cost|vtpm|churn|autoscale]
#
# Run it from anywhere; it cds to the repo root. In CI wrap it with
# `opam exec --`. Report files are left as fleet-*.txt in the repo root
# so the always-upload artifact step can collect them.
set -euo pipefail

cd "$(dirname "$0")/.."
dune build bin/sea_cli.exe
cli=_build/default/bin/sea_cli.exe

filter="${1:-all}"
case "$filter" in
  all|shards|cost|vtpm|churn|autoscale) ;;
  *)
    echo "usage: $0 [all|shards|cost|vtpm|churn|autoscale]" >&2
    exit 2
    ;;
esac
want() { [ "$filter" = all ] || [ "$filter" = "$1" ]; }

timed_run() { # timed_run <out-file> <ms-file> <cluster args...>
  out=$1; msf=$2; shift 2
  start=$(date +%s%N)
  "$cli" cluster "$@" >"$out" 2>/dev/null
  end=$(date +%s%N)
  echo $(( (end - start) / 1000000 )) >"$msf"
}

# Shard determinism on all three isolation backends, plus the shard
# speedup gate on the current-mode pair.
if want shards; then
  for mode in current proposed sfi; do
    case "$mode" in
      current)  flags="--rate 8 --duration 60" ;;
      proposed) flags="--rate 96 --duration 60" ;;
      sfi)      flags="--rate 96 --duration 60" ;;
    esac
    timed_run "fleet-$mode-s1.txt" "ms-$mode-s1" \
      --mode "$mode" --machines 8 --shards 1 --seed 11 $flags
    timed_run "fleet-$mode-s4.txt" "ms-$mode-s4" \
      --mode "$mode" --machines 8 --shards 4 --seed 11 $flags
    diff "fleet-$mode-s1.txt" "fleet-$mode-s4.txt"
    echo "$mode: fleet report byte-identical across shard counts" \
         "(shards=1 $(cat ms-$mode-s1) ms, shards=4 $(cat ms-$mode-s4) ms)"
  done
  python3 - "$(cat ms-current-s1)" "$(cat ms-current-s4)" \
    "${SEA_MIN_SPEEDUP:-2.0}" <<'EOF'
import sys
s1, s4, floor = (float(a) for a in sys.argv[1:4])
speedup = s1 / max(s4, 1e-9)
print(f"current-mode shard speedup: {speedup:.2f}x "
      f"(shards=1 {s1:.0f} ms, shards=4 {s4:.0f} ms, floor {floor:g}x)")
sys.exit(0 if speedup >= floor else 1)
EOF
fi

# The cost-aware pair — cost-weighted routing driven by the static
# certificates plus certificate-cost admission.
if want cost; then
  for shards in 1 4; do
    "$cli" cluster --mode proposed --machines 4 --shards "$shards" \
      --seed 5 --rate 120 --duration 2 \
      --policy cost-weighted --admission cost >"fleet-cost-s$shards.txt"
  done
  diff fleet-cost-s1.txt fleet-cost-s4.txt
  echo "cost-aware fleet report byte-identical across shard counts"
fi

# vTPM multiplexing on both hardware modes (batch pipelining is
# background-only, so neither the shard count nor the batch size may
# show in the render).
if want vtpm; then
  for mode in current proposed; do
    case "$mode" in
      current)  flags="--rate 8 --duration 5" ;;
      proposed) flags="--rate 48 --duration 5" ;;
    esac
    for shards in 1 4; do
      "$cli" cluster --mode "$mode" --machines 4 --shards "$shards" \
        --seed 13 --vtpm 4 $flags >"fleet-vtpm-$mode-s$shards.txt"
    done
    diff "fleet-vtpm-$mode-s1.txt" "fleet-vtpm-$mode-s4.txt"
    grep -q "vtpm: 16 instances" "fleet-vtpm-$mode-s1.txt"
    echo "$mode: vTPM fleet report byte-identical across shard counts"
  done
fi

# Machine churn: crashes, heartbeat detection and sealed-state failover
# all happen at epoch barriers on the main domain, so shards never see
# them. SFI takes the cold-restart failover path.
if want churn; then
  for mode in current proposed sfi; do
    case "$mode" in
      current)  flags="--rate 8 --duration 6" ;;
      proposed) flags="--rate 48 --duration 6" ;;
      sfi)      flags="--rate 48 --duration 6" ;;
    esac
    for shards in 1 4; do
      "$cli" cluster --mode "$mode" --machines 8 --shards "$shards" \
        --seed 11 --mttf 2 --mttr 3 --link-loss 0.2 $flags \
        >"fleet-churn-$mode-s$shards.txt" 2>/dev/null
    done
    diff "fleet-churn-$mode-s1.txt" "fleet-churn-$mode-s4.txt"
    grep -q "^churn:" "fleet-churn-$mode-s1.txt"
    echo "$mode: churn fleet report byte-identical across shard counts"
  done
fi

# Autoscaling: the controller samples loads, resizes the ring and
# migrates resident PALs at the same epoch barriers, so a flash crowd
# being actively rebalanced must still render byte-identically across
# shard counts — on the proposed hardware (live sealed-state migration)
# and under SFI (kill-and-respawn spreading).
if want autoscale; then
  for mode in proposed sfi; do
    case "$mode" in
      proposed) as="migrate" ;;
      sfi)      as="auto" ;;
    esac
    for shards in 1 4; do
      "$cli" cluster --mode "$mode" --machines 4 --shards "$shards" \
        --seed 11 --rate 96 --duration 4 --policy hash \
        --autoscale "$as" --shape flash \
        >"fleet-autoscale-$mode-s$shards.txt" 2>/dev/null
    done
    diff "fleet-autoscale-$mode-s1.txt" "fleet-autoscale-$mode-s4.txt"
    grep -q "^autoscale:" "fleet-autoscale-$mode-s1.txt"
    grep -q "^rebalance:" "fleet-autoscale-$mode-s1.txt"
    echo "$mode: autoscaling fleet report byte-identical across shard counts"
  done
fi

echo "determinism gate passed ($filter)"
