type reg = int

type op =
  | Halt
  | Loadi of reg * int
  | Mov of reg * reg
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Xor of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Shl of reg * reg * reg
  | Shr of reg * reg * reg
  | Ldb of reg * reg * int
  | Stb of reg * reg * int
  | Ldw of reg * reg * int
  | Stw of reg * reg * int
  | Jmp of int
  | Jz of reg * int
  | Jnz of reg * int
  | Svc of int
  | Lt of reg * reg * reg
  | Eq of reg * reg * reg

let insn_size = 8

let svc_input_len = 1
let svc_input_read = 2
let svc_output = 3
let svc_seal = 4
let svc_unseal = 5
let svc_random = 6
let svc_extend = 7
let svc_sha256 = 8

let check_reg r = if r < 0 || r > 7 then invalid_arg "Isa: register out of range"

let check_imm v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Isa: immediate out of range"

(* opcode, a, b, c, imm *)
let fields = function
  | Halt -> (0, 0, 0, 0, 0)
  | Loadi (a, imm) -> (1, a, 0, 0, imm)
  | Mov (a, b) -> (2, a, b, 0, 0)
  | Add (a, b, c) -> (3, a, b, c, 0)
  | Sub (a, b, c) -> (4, a, b, c, 0)
  | Mul (a, b, c) -> (5, a, b, c, 0)
  | Xor (a, b, c) -> (6, a, b, c, 0)
  | And (a, b, c) -> (7, a, b, c, 0)
  | Or (a, b, c) -> (8, a, b, c, 0)
  | Shl (a, b, c) -> (9, a, b, c, 0)
  | Shr (a, b, c) -> (10, a, b, c, 0)
  | Ldb (a, b, imm) -> (11, a, b, 0, imm)
  | Stb (a, b, imm) -> (12, a, b, 0, imm)
  | Ldw (a, b, imm) -> (13, a, b, 0, imm)
  | Stw (a, b, imm) -> (14, a, b, 0, imm)
  | Jmp imm -> (15, 0, 0, 0, imm)
  | Jz (a, imm) -> (16, a, 0, 0, imm)
  | Jnz (a, imm) -> (17, a, 0, 0, imm)
  | Svc imm -> (18, 0, 0, 0, imm)
  | Lt (a, b, c) -> (19, a, b, c, 0)
  | Eq (a, b, c) -> (20, a, b, c, 0)

let encode op =
  let code, a, b, c, imm = fields op in
  (match op with
  | Loadi (a, _) | Jz (a, _) | Jnz (a, _) -> check_reg a
  | Mov (a, b) | Ldb (a, b, _) | Stb (a, b, _) | Ldw (a, b, _) | Stw (a, b, _) ->
      check_reg a;
      check_reg b
  | Add (a, b, c) | Sub (a, b, c) | Mul (a, b, c) | Xor (a, b, c) | And (a, b, c)
  | Or (a, b, c) | Shl (a, b, c) | Shr (a, b, c) | Lt (a, b, c) | Eq (a, b, c) ->
      check_reg a;
      check_reg b;
      check_reg c
  | Halt | Jmp _ | Svc _ -> ());
  check_imm imm;
  let bytes = Bytes.create insn_size in
  Bytes.set bytes 0 (Char.chr code);
  Bytes.set bytes 1 (Char.chr a);
  Bytes.set bytes 2 (Char.chr b);
  Bytes.set bytes 3 (Char.chr c);
  for i = 0 to 3 do
    Bytes.set bytes (4 + i) (Char.chr ((imm lsr (8 * (3 - i))) land 0xff))
  done;
  Bytes.to_string bytes

let decode_bytes s ~pos =
  if pos < 0 || pos + insn_size > Bytes.length s then
    Error
      (Printf.sprintf "fetch out of bounds (pc=%d, memory=%d bytes)" pos
         (Bytes.length s))
  else begin
    let byte i = Char.code (Bytes.get s (pos + i)) in
    let a = byte 1 and b = byte 2 and c = byte 3 in
    let imm = (byte 4 lsl 24) lor (byte 5 lsl 16) lor (byte 6 lsl 8) lor byte 7 in
    if a > 7 || b > 7 || c > 7 then Error "invalid register in instruction"
    else
      match byte 0 with
      | 0 -> Ok Halt
      | 1 -> Ok (Loadi (a, imm))
      | 2 -> Ok (Mov (a, b))
      | 3 -> Ok (Add (a, b, c))
      | 4 -> Ok (Sub (a, b, c))
      | 5 -> Ok (Mul (a, b, c))
      | 6 -> Ok (Xor (a, b, c))
      | 7 -> Ok (And (a, b, c))
      | 8 -> Ok (Or (a, b, c))
      | 9 -> Ok (Shl (a, b, c))
      | 10 -> Ok (Shr (a, b, c))
      | 11 -> Ok (Ldb (a, b, imm))
      | 12 -> Ok (Stb (a, b, imm))
      | 13 -> Ok (Ldw (a, b, imm))
      | 14 -> Ok (Stw (a, b, imm))
      | 15 -> Ok (Jmp imm)
      | 16 -> Ok (Jz (a, imm))
      | 17 -> Ok (Jnz (a, imm))
      | 18 -> Ok (Svc imm)
      | 19 -> Ok (Lt (a, b, c))
      | 20 -> Ok (Eq (a, b, c))
      | n -> Error (Printf.sprintf "unknown opcode %d" n)
  end

(* [Bytes.unsafe_of_string] is safe here: [decode_bytes] only reads. *)
let decode s ~pos = decode_bytes (Bytes.unsafe_of_string s) ~pos

let default_fuel = 1_000_000
let default_mem_size = 64 * 1024

(* The one fuel cost table. The VM charges these per executed
   instruction and the static cost analysis folds the same numbers into
   its certificates, so the two can never drift apart. Every op costs 1
   today; the explicit match is the contract that a future non-uniform
   table updates both sides at once. *)
let fuel_cost = function
  | Halt -> 1
  | Loadi _ -> 1
  | Mov _ -> 1
  | Add _ -> 1
  | Sub _ -> 1
  | Mul _ -> 1
  | Xor _ -> 1
  | And _ -> 1
  | Or _ -> 1
  | Shl _ -> 1
  | Shr _ -> 1
  | Ldb _ -> 1
  | Stb _ -> 1
  | Ldw _ -> 1
  | Stw _ -> 1
  | Jmp _ -> 1
  | Jz _ -> 1
  | Jnz _ -> 1
  | Svc _ -> 1
  | Lt _ -> 1
  | Eq _ -> 1

let svc_name n =
  if n = svc_input_len then "input-len"
  else if n = svc_input_read then "input-read"
  else if n = svc_output then "output"
  else if n = svc_seal then "seal"
  else if n = svc_unseal then "unseal"
  else if n = svc_random then "random"
  else if n = svc_extend then "extend"
  else if n = svc_sha256 then "sha256"
  else Printf.sprintf "svc%d" n

let encode_program ops = String.concat "" (List.map encode ops)

let pp fmt op =
  let r i = Printf.sprintf "r%d" i in
  let s =
    match op with
    | Halt -> "halt"
    | Loadi (a, imm) -> Printf.sprintf "loadi %s, %d" (r a) imm
    | Mov (a, b) -> Printf.sprintf "mov %s, %s" (r a) (r b)
    | Add (a, b, c) -> Printf.sprintf "add %s, %s, %s" (r a) (r b) (r c)
    | Sub (a, b, c) -> Printf.sprintf "sub %s, %s, %s" (r a) (r b) (r c)
    | Mul (a, b, c) -> Printf.sprintf "mul %s, %s, %s" (r a) (r b) (r c)
    | Xor (a, b, c) -> Printf.sprintf "xor %s, %s, %s" (r a) (r b) (r c)
    | And (a, b, c) -> Printf.sprintf "and %s, %s, %s" (r a) (r b) (r c)
    | Or (a, b, c) -> Printf.sprintf "or %s, %s, %s" (r a) (r b) (r c)
    | Shl (a, b, c) -> Printf.sprintf "shl %s, %s, %s" (r a) (r b) (r c)
    | Shr (a, b, c) -> Printf.sprintf "shr %s, %s, %s" (r a) (r b) (r c)
    | Ldb (a, b, imm) -> Printf.sprintf "ldb %s, %s, %d" (r a) (r b) imm
    | Stb (a, b, imm) -> Printf.sprintf "stb %s, %s, %d" (r a) (r b) imm
    | Ldw (a, b, imm) -> Printf.sprintf "ldw %s, %s, %d" (r a) (r b) imm
    | Stw (a, b, imm) -> Printf.sprintf "stw %s, %s, %d" (r a) (r b) imm
    | Jmp imm -> Printf.sprintf "jmp %d" imm
    | Jz (a, imm) -> Printf.sprintf "jz %s, %d" (r a) imm
    | Jnz (a, imm) -> Printf.sprintf "jnz %s, %d" (r a) imm
    | Svc imm -> Printf.sprintf "svc %d" imm
    | Lt (a, b, c) -> Printf.sprintf "lt %s, %s, %s" (r a) (r b) (r c)
    | Eq (a, b, c) -> Printf.sprintf "eq %s, %s, %s" (r a) (r b) (r c)
  in
  Format.pp_print_string fmt s
