(** The PALVM instruction set.

    Most of this repository models PALs as measured-but-synthetic bytes
    whose semantics live in an OCaml closure. PALVM closes that gap for
    the cases where it matters: programs are real bytecode, the bytes
    that the TPM measures are the bytes the interpreter fetches and
    executes, and self-modification is possible — which is exactly what
    the paper's footnote 3 (load-time measurement TOCTOU) is about.

    A fixed-width 8-byte encoding: opcode, three register operands, and
    a 32-bit big-endian immediate. Eight 32-bit registers r0–r7; a flat
    byte-addressed memory with the program loaded at offset 0 (so code
    is data — deliberately); services reach the TPM-backed environment
    ({!Sea_core.Pal.services}). *)

type reg = int
(** 0–7. *)

type op =
  | Halt
  | Loadi of reg * int  (** r := imm *)
  | Mov of reg * reg
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Xor of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Shl of reg * reg * reg
  | Shr of reg * reg * reg
  | Ldb of reg * reg * int  (** r := mem\[rb + imm\] (byte) *)
  | Stb of reg * reg * int  (** mem\[rb + imm\] := r (byte) *)
  | Ldw of reg * reg * int  (** 32-bit big-endian load *)
  | Stw of reg * reg * int
  | Jmp of int  (** absolute byte offset *)
  | Jz of reg * int
  | Jnz of reg * int
  | Svc of int  (** service call, see {!Vm} *)
  | Lt of reg * reg * reg
  | Eq of reg * reg * reg

val insn_size : int
(** 8 bytes. *)

val encode : op -> string
(** Raises [Invalid_argument] on a bad register or out-of-range
    immediate. *)

val decode : string -> pos:int -> (op, string) result
(** Decode the instruction at byte [pos]; total function over arbitrary
    bytes (unknown opcodes and truncated fetches are errors — executing
    data crashes the PAL, it does not crash the simulator). *)

val decode_bytes : bytes -> pos:int -> (op, string) result
(** [decode], but straight out of a live memory image without copying —
    the interpreter's fetch path and the static analyzer share this
    decoder, so "the bytes analyzed" and "the bytes executed" can only
    disagree if the program rewrites itself (which the analyzer's
    self-modification rules are there to catch). *)

val default_fuel : int
(** The interpreter's default step budget ([Sea_palvm.Vm.run]'s
    [?fuel]); the static analyzer checks worst-case step estimates
    against it. *)

val default_mem_size : int
(** The interpreter's default memory size, 64 KB (SKINIT's limit). *)

val fuel_cost : op -> int
(** Fuel units one execution of [op] charges. This is the {e single}
    cost table: the interpreter decrements fuel by it and the static
    cost analysis ({!Sea_analysis}) folds the same numbers into its
    certificates, so dynamic accounting and static bounds cannot
    drift. Every op costs 1 today. *)

val encode_program : op list -> string
val pp : Format.formatter -> op -> unit

val svc_name : int -> string
(** Human-readable service name ("seal", "input-read", ...); falls back
    to ["svcN"] for unknown numbers. *)

(** Service numbers accepted by [Svc]. *)

val svc_input_len : int
val svc_input_read : int
val svc_output : int
val svc_seal : int
val svc_unseal : int
val svc_random : int
val svc_extend : int
val svc_sha256 : int
