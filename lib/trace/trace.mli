(** Zero-cost-when-off structured tracing and metrics, keyed to virtual time.

    A {!sink} collects spans (nested begin/end intervals with a category
    and arguments), instant events, counters and per-span-name latency
    histograms, all timestamped with the {!Sea_sim.Engine} virtual clock.
    Exactly one sink can be installed per domain (installation is
    domain-local state, so each shard of a multi-domain fleet simulation
    can trace its own machines independently); every instrumentation
    point in the platform first checks {!on} and does nothing — advances
    no time, draws no randomness, emits no event — when no sink is
    installed in the calling domain, so an untraced run is bit-identical
    to a build without this module.

    Spans nest: {!with_span} pushes onto a per-sink stack and pops on the
    way out (exception-safe), so the exported stream is always balanced
    even when a traced operation fails mid-way. Timestamps are virtual
    nanoseconds mapped to Chrome-trace microseconds, so a seeded run
    exports byte-identical JSON every time. *)

type value = Str of string | Int of int | Bool of bool
(** Argument values attached to events. *)

type args = (string * value) list

type sink

val create : unit -> sink
(** A fresh, empty sink. Creating one does not install it. *)

val install : sink -> unit
(** Make [sink] the calling domain's trace destination. Replaces any
    sink previously installed in this domain. *)

val uninstall : unit -> unit
(** Remove the calling domain's installed sink, if any; tracing reverts
    to free. *)

val installed : unit -> sink option

val on : unit -> bool
(** [true] iff a sink is installed. The fast check every instrumentation
    point guards on. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** [with_sink s f] installs [s] for the duration of [f] and restores the
    previous installation state afterwards, also on exception. *)

(** {1 Emitting events}

    Every emitter is a no-op when no sink is installed. [args] is a
    thunk so that argument lists are only built when tracing is on. *)

val with_span :
  Sea_sim.Engine.t ->
  cat:string ->
  ?args:(unit -> args) ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span engine ~cat name f] runs [f] inside a span named [name].
    The span closes when [f] returns or raises, so nesting stays
    balanced on every error path. The span's duration (with and without
    child-span time) is accumulated into the per-[(cat, name)] latency
    histogram. *)

val instant : Sea_sim.Engine.t -> cat:string -> ?args:(unit -> args) -> string -> unit
(** A zero-duration marker event at the current virtual instant. *)

val complete :
  Sea_sim.Engine.t ->
  cat:string ->
  ?args:(unit -> args) ->
  start:Sea_sim.Time.t ->
  stop:Sea_sim.Time.t ->
  string ->
  unit
(** A retroactive span covering [\[start, stop\]], emitted after the fact
    (Chrome ["X"] event): used for intervals only known at their end,
    such as a request's queue wait. Rendered on its own lane so it
    cannot unbalance the live span stack. *)

val count : Sea_sim.Engine.t -> string -> int -> unit
(** [count engine name n] adds [n] to the cumulative counter [name] and
    emits a Chrome counter sample of the new running total. *)

(** {1 Inspection (for summaries, benches and tests)} *)

val depth : sink -> int
(** Currently open spans; [0] after any balanced run. *)

val events : sink -> int
(** Total events emitted into the sink. *)

val counter : sink -> string -> int
(** Running total of a counter; [0] if never incremented. *)

type span_stat = {
  cat : string;
  name : string;
  count : int;
  total : Sea_sim.Time.t;  (** Summed span durations, children included. *)
  self : Sea_sim.Time.t;  (** Summed durations minus child-span time. *)
}

val span_stats : sink -> span_stat list
(** Per-[(cat, name)] aggregates, sorted by descending total time (ties
    by category then name, so the order is deterministic). *)

val category_self : sink -> string -> Sea_sim.Time.t
(** Summed self time of every span in one category: the exclusive cost
    of that layer, the unit of the paper's Table-1 decomposition. *)

(** {1 Export} *)

val export_json : sink -> string
(** The collected events as Chrome [trace_event] JSON (an object with a
    ["traceEvents"] array), loadable in Perfetto / chrome://tracing.
    Virtual nanoseconds are rendered as microsecond timestamps with
    three decimals, so the output is byte-deterministic. *)

val summary : sink -> string
(** A compact text report: top spans by total time, per-category self
    times, and counters. *)
