open Sea_sim

type value = Str of string | Int of int | Bool of bool

type args = (string * value) list

(* An open span on the stack: begun at [t0], with [child] accumulating
   the time covered by spans nested inside it, so that closing can
   attribute self (exclusive) time to the right layer. *)
type open_span = {
  s_cat : string;
  s_name : string;
  t0 : Time.t;
  mutable child : Time.t;
}

type agg = {
  mutable a_count : int;
  mutable a_total : Time.t;
  mutable a_self : Time.t;
}

type sink = {
  buf : Buffer.t; (* pre-rendered JSON event objects, comma-separated *)
  mutable stack : open_span list;
  aggs : (string * string, agg) Hashtbl.t;
  counters : (string, int) Hashtbl.t;
  mutable n_events : int;
}

let create () =
  {
    buf = Buffer.create 4096;
    stack = [];
    aggs = Hashtbl.create 32;
    counters = Hashtbl.create 8;
    n_events = 0;
  }

(* Domain-local, not a plain ref: a sink buffers unsynchronized mutable
   state (Buffer, span stack, aggregate tables), so sharing one across
   domains would race. Keying the installed sink per domain lets each
   shard of a fleet simulation trace its own machines into its own sink
   while other domains stay untraced (or trace elsewhere), with no
   change of behaviour for single-domain programs. *)
let current : sink option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let install s = Domain.DLS.set current (Some s)
let uninstall () = Domain.DLS.set current None
let installed () = Domain.DLS.get current
let on () = Option.is_some (Domain.DLS.get current)

let with_sink s f =
  let prev = Domain.DLS.get current in
  Domain.DLS.set current (Some s);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current prev) f

(* --- JSON rendering --- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Virtual ns -> trace us, exactly: "<us>.<ns remainder>" with three
   decimals. Integer arithmetic keeps the rendering byte-deterministic. *)
let add_ts b t =
  let ns = Time.to_ns t in
  Buffer.add_string b (Printf.sprintf "%d.%03d" (ns / 1000) (ns mod 1000))

let add_args b args =
  match args with
  | [] -> ()
  | args ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          match v with
          | Str s ->
              Buffer.add_char b '"';
              escape b s;
              Buffer.add_char b '"'
          | Int n -> Buffer.add_string b (string_of_int n)
          | Bool v -> Buffer.add_string b (if v then "true" else "false"))
        args;
      Buffer.add_char b '}'

let event_start s =
  if s.n_events > 0 then Buffer.add_string s.buf ",\n";
  s.n_events <- s.n_events + 1;
  Buffer.add_char s.buf '{'

(* One lane for the live span stream, another for retroactive completes
   (which may overlap the live stream and each other). *)
let tid_spans = 0
let tid_completes = 1

let emit_common s ~ph ~tid ~ts =
  event_start s;
  Buffer.add_string s.buf "\"ph\":\"";
  Buffer.add_string s.buf ph;
  Buffer.add_string s.buf "\",\"pid\":1,\"tid\":";
  Buffer.add_string s.buf (string_of_int tid);
  Buffer.add_string s.buf ",\"ts\":";
  add_ts s.buf ts

let emit_named s ~ph ~tid ~ts ~cat ~name args =
  emit_common s ~ph ~tid ~ts;
  Buffer.add_string s.buf ",\"cat\":\"";
  escape s.buf cat;
  Buffer.add_string s.buf "\",\"name\":\"";
  escape s.buf name;
  Buffer.add_char s.buf '"';
  add_args s.buf args;
  Buffer.add_char s.buf '}'

(* --- span machinery --- *)

let begin_span s engine ~cat ~args name =
  let now = Engine.now engine in
  s.stack <- { s_cat = cat; s_name = name; t0 = now; child = Time.zero } :: s.stack;
  emit_named s ~ph:"B" ~tid:tid_spans ~ts:now ~cat ~name args

let agg_for s cat name =
  match Hashtbl.find_opt s.aggs (cat, name) with
  | Some a -> a
  | None ->
      let a = { a_count = 0; a_total = Time.zero; a_self = Time.zero } in
      Hashtbl.add s.aggs (cat, name) a;
      a

let end_span s engine =
  match s.stack with
  | [] -> invalid_arg "Trace.end_span: no open span"
  | sp :: rest ->
      let now = Engine.now engine in
      s.stack <- rest;
      let dur = Time.sub now sp.t0 in
      (match rest with
      | parent :: _ -> parent.child <- Time.add parent.child dur
      | [] -> ());
      let a = agg_for s sp.s_cat sp.s_name in
      a.a_count <- a.a_count + 1;
      a.a_total <- Time.add a.a_total dur;
      a.a_self <- Time.add a.a_self (Time.sub dur sp.child);
      emit_common s ~ph:"E" ~tid:tid_spans ~ts:now;
      Buffer.add_char s.buf '}'

let no_args () = []

let with_span engine ~cat ?(args = no_args) name f =
  match Domain.DLS.get current with
  | None -> f ()
  | Some s ->
      begin_span s engine ~cat ~args:(args ()) name;
      Fun.protect ~finally:(fun () -> end_span s engine) f

let instant engine ~cat ?(args = no_args) name =
  match Domain.DLS.get current with
  | None -> ()
  | Some s ->
      emit_named s ~ph:"i" ~tid:tid_spans ~ts:(Engine.now engine) ~cat ~name
        (args ());
      (* Instant scope: "t" (thread) keeps the marker local to its lane. *)
      let b = s.buf in
      Buffer.truncate b (Buffer.length b - 1);
      Buffer.add_string b ",\"s\":\"t\"}"

let complete engine ~cat ?(args = no_args) ~start ~stop name =
  ignore engine;
  match Domain.DLS.get current with
  | None -> ()
  | Some s ->
      let dur = Time.max Time.zero (Time.sub stop start) in
      emit_named s ~ph:"X" ~tid:tid_completes ~ts:start ~cat ~name (args ());
      let b = s.buf in
      Buffer.truncate b (Buffer.length b - 1);
      Buffer.add_string b ",\"dur\":";
      add_ts b dur;
      Buffer.add_char b '}';
      let a = agg_for s cat name in
      a.a_count <- a.a_count + 1;
      a.a_total <- Time.add a.a_total dur;
      a.a_self <- Time.add a.a_self dur

let count engine name n =
  match Domain.DLS.get current with
  | None -> ()
  | Some s ->
      let total = (match Hashtbl.find_opt s.counters name with Some v -> v | None -> 0) + n in
      Hashtbl.replace s.counters name total;
      emit_common s ~ph:"C" ~tid:tid_spans ~ts:(Engine.now engine);
      let b = s.buf in
      Buffer.add_string b ",\"name\":\"";
      escape b name;
      Buffer.add_string b "\",\"args\":{\"value\":";
      Buffer.add_string b (string_of_int total);
      Buffer.add_string b "}}"

(* --- inspection --- *)

let depth s = List.length s.stack
let events s = s.n_events

let counter s name =
  match Hashtbl.find_opt s.counters name with Some v -> v | None -> 0

type span_stat = {
  cat : string;
  name : string;
  count : int;
  total : Time.t;
  self : Time.t;
}

let span_stats s =
  Hashtbl.fold
    (fun (cat, name) a acc ->
      { cat; name; count = a.a_count; total = a.a_total; self = a.a_self }
      :: acc)
    s.aggs []
  |> List.sort (fun a b ->
         match Time.compare b.total a.total with
         | 0 -> compare (a.cat, a.name) (b.cat, b.name)
         | c -> c)

let category_self s cat0 =
  Hashtbl.fold
    (fun (cat, _) a acc ->
      if String.equal cat cat0 then Time.add acc a.a_self else acc)
    s.aggs Time.zero

(* --- export --- *)

let export_json s =
  let b = Buffer.create (Buffer.length s.buf + 64) in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  Buffer.add_buffer b s.buf;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let summary s =
  let b = Buffer.create 1024 in
  let stats = span_stats s in
  Buffer.add_string b
    (Printf.sprintf "%-12s %-28s %8s %14s %14s\n" "category" "span" "count"
       "total" "self");
  List.iter
    (fun st ->
      Buffer.add_string b
        (Printf.sprintf "%-12s %-28s %8d %14s %14s\n" st.cat st.name st.count
           (Time.to_string st.total) (Time.to_string st.self)))
    stats;
  let cats =
    List.sort_uniq compare (List.map (fun st -> st.cat) stats)
  in
  if cats <> [] then begin
    Buffer.add_string b "\nby category (self time):\n";
    List.iter
      (fun cat ->
        Buffer.add_string b
          (Printf.sprintf "  %-12s %14s\n" cat
             (Time.to_string (category_self s cat))))
      cats
  end;
  let counters =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.counters []
    |> List.sort compare
  in
  if counters <> [] then begin
    Buffer.add_string b "\ncounters:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-28s %12d\n" k v))
      counters
  end;
  Buffer.contents b
