open Isa

(* Buffer layout shared by the samples: input high at 1024+, results in
   the 512..1023 scratch area — all comfortably clear of the code bytes
   at the bottom of memory, which is what keeps the analyzer's
   self-modification rules quiet. *)

let input_buf = 1024
let out_buf = 512

let seal_echo =
  encode_program
    [
      Loadi (0, input_buf);
      Loadi (1, 4096);
      Svc svc_input_read;
      (* r0 = bytes read *)
      Mov (1, 0);
      Loadi (0, input_buf);
      Loadi (2, 8192);
      Svc svc_seal;
      (* r0 = blob length *)
      Mov (1, 0);
      Loadi (0, 8192);
      Svc svc_output;
      Halt;
    ]

(* XOR-fold the input. Offsets are absolute byte addresses; each
   instruction is 8 bytes, so label arithmetic is [index * 8]. *)
let xor_checksum =
  let loop = 6 * insn_size (* the Eq test *) in
  let done_ = 13 * insn_size in
  encode_program
    [
      (* 0 *) Loadi (0, input_buf);
      (* 1 *) Loadi (1, 4096);
      (* 2 *) Svc svc_input_read;
      (* 3 *) Mov (2, 0) (* n = bytes read *);
      (* 4 *) Loadi (1, 0) (* i = 0 *);
      (* 5 *) Loadi (3, 0) (* acc = 0 *);
      (* 6 *) Eq (4, 1, 2);
      (* 7 *) Jnz (4, done_);
      (* 8 *) Ldb (5, 1, input_buf);
      (* 9 *) Xor (3, 3, 5);
      (* 10 *) Loadi (6, 1);
      (* 11 *) Add (1, 1, 6);
      (* 12 *) Jmp loop;
      (* 13 *) Stw (3, 7, out_buf) (* r7 is never written: 0 *);
      (* 14 *) Loadi (0, out_buf);
      (* 15 *) Loadi (1, 4);
      (* 16 *) Svc svc_output;
      (* 17 *) Halt;
    ]

let random_nonce =
  encode_program
    [
      Loadi (0, out_buf);
      Loadi (1, 16);
      Svc svc_random;
      Loadi (2, input_buf);
      Svc svc_seal;
      (* r0 = blob length; the raw nonce at out_buf is never output *)
      Mov (1, 0);
      Loadi (0, input_buf);
      Svc svc_output;
      Halt;
    ]

let hash_input =
  encode_program
    [
      Loadi (0, input_buf);
      Loadi (1, 4096);
      Svc svc_input_read;
      Mov (1, 0);
      Loadi (0, input_buf);
      Loadi (2, out_buf);
      Svc svc_sha256;
      Loadi (0, out_buf);
      Loadi (1, 32);
      Svc svc_output;
      Halt;
    ]

let all =
  [
    ("seal-echo", seal_echo);
    ("xor-checksum", xor_checksum);
    ("random-nonce", random_nonce);
    ("hash-input", hash_input);
  ]

let pal ~name ~code = Vm.to_pal ~name ~code ()
