open Sea_core

type outcome = { output : string; steps : int; registers : int array }

let mask32 = 0xFFFFFFFF

let run ?(mem_size = Isa.default_mem_size) ?(fuel = Isa.default_fuel) ~code
    ~services ~input () =
  if String.length code > mem_size then Error "program image exceeds memory"
  else begin
    let mem = Bytes.make mem_size '\000' in
    Bytes.blit_string code 0 mem 0 (String.length code);
    let regs = Array.make 8 0 in
    let output = Buffer.create 64 in
    let pc = ref 0 and steps = ref 0 in
    let range ptr len =
      if ptr < 0 || len < 0 || ptr + len > mem_size then Error "memory access out of bounds"
      else Ok ()
    in
    let read_mem ptr len = Bytes.sub_string mem ptr len in
    let write_mem ptr s = Bytes.blit_string s 0 mem ptr (String.length s) in
    let svc n =
      let ptr = regs.(0) and len = regs.(1) and dst = regs.(2) in
      if n = Isa.svc_input_len then begin
        regs.(0) <- String.length input land mask32;
        Ok ()
      end
      else if n = Isa.svc_input_read then begin
        let take = min len (String.length input) in
        match range ptr take with
        | Error e -> Error e
        | Ok () ->
            write_mem ptr (String.sub input 0 take);
            regs.(0) <- take;
            Ok ()
      end
      else if n = Isa.svc_output then begin
        match range ptr len with
        | Error e -> Error e
        | Ok () ->
            Buffer.add_string output (read_mem ptr len);
            Ok ()
      end
      else if n = Isa.svc_seal then begin
        match range ptr len with
        | Error e -> Error e
        | Ok () -> (
            match services.Pal.seal (read_mem ptr len) with
            | Error _ ->
                regs.(0) <- mask32;
                Ok ()
            | Ok blob -> (
                match range dst (String.length blob) with
                | Error e -> Error e
                | Ok () ->
                    write_mem dst blob;
                    regs.(0) <- String.length blob;
                    Ok ()))
      end
      else if n = Isa.svc_unseal then begin
        match range ptr len with
        | Error e -> Error e
        | Ok () -> (
            match services.Pal.unseal (read_mem ptr len) with
            | Error _ ->
                regs.(0) <- mask32;
                Ok ()
            | Ok payload -> (
                match range dst (String.length payload) with
                | Error e -> Error e
                | Ok () ->
                    write_mem dst payload;
                    regs.(0) <- String.length payload;
                    Ok ()))
      end
      else if n = Isa.svc_random then begin
        match range ptr len with
        | Error e -> Error e
        | Ok () ->
            write_mem ptr (services.Pal.get_random len);
            Ok ()
      end
      else if n = Isa.svc_extend then begin
        match range ptr len with
        | Error e -> Error e
        | Ok () ->
            services.Pal.extend_measurement (read_mem ptr len);
            Ok ()
      end
      else if n = Isa.svc_sha256 then begin
        match range ptr len with
        | Error e -> Error e
        | Ok () -> (
            let digest = Sea_crypto.Sha256.digest (read_mem ptr len) in
            match range dst 32 with
            | Error e -> Error e
            | Ok () ->
                write_mem dst digest;
                Ok ())
      end
      else Error (Printf.sprintf "unknown service %d" n)
    in
    let rec step () =
      if !steps >= fuel then Error "fuel exhausted (hung PAL)"
      else begin
        (* Fetch from live memory: the program can rewrite itself. The
           decoder reports its own bounds/operand errors — surface them
           verbatim rather than collapsing them to a generic fault. *)
        match Isa.decode_bytes mem ~pos:!pc with
        | Error e ->
            incr steps;
            Error e
        | Ok op -> (
            steps := !steps + Isa.fuel_cost op;
            let next = !pc + Isa.insn_size in
            let continue () =
              pc := next;
              step ()
            in
            let wrap v = v land mask32 in
            match op with
            | Isa.Halt -> Ok ()
            | Isa.Loadi (a, imm) ->
                regs.(a) <- wrap imm;
                continue ()
            | Isa.Mov (a, b) ->
                regs.(a) <- regs.(b);
                continue ()
            | Isa.Add (a, b, c) ->
                regs.(a) <- wrap (regs.(b) + regs.(c));
                continue ()
            | Isa.Sub (a, b, c) ->
                regs.(a) <- wrap (regs.(b) - regs.(c));
                continue ()
            | Isa.Mul (a, b, c) ->
                regs.(a) <- wrap (regs.(b) * regs.(c));
                continue ()
            | Isa.Xor (a, b, c) ->
                regs.(a) <- regs.(b) lxor regs.(c);
                continue ()
            | Isa.And (a, b, c) ->
                regs.(a) <- regs.(b) land regs.(c);
                continue ()
            | Isa.Or (a, b, c) ->
                regs.(a) <- regs.(b) lor regs.(c);
                continue ()
            | Isa.Shl (a, b, c) ->
                regs.(a) <- wrap (regs.(b) lsl (regs.(c) land 31));
                continue ()
            | Isa.Shr (a, b, c) ->
                regs.(a) <- regs.(b) lsr (regs.(c) land 31);
                continue ()
            | Isa.Ldb (a, b, imm) -> (
                let addr = regs.(b) + imm in
                match range addr 1 with
                | Error e -> Error e
                | Ok () ->
                    regs.(a) <- Char.code (Bytes.get mem addr);
                    continue ())
            | Isa.Stb (a, b, imm) -> (
                let addr = regs.(b) + imm in
                match range addr 1 with
                | Error e -> Error e
                | Ok () ->
                    Bytes.set mem addr (Char.chr (regs.(a) land 0xff));
                    continue ())
            | Isa.Ldw (a, b, imm) -> (
                let addr = regs.(b) + imm in
                match range addr 4 with
                | Error e -> Error e
                | Ok () ->
                    let v = ref 0 in
                    for i = 0 to 3 do
                      v := (!v lsl 8) lor Char.code (Bytes.get mem (addr + i))
                    done;
                    regs.(a) <- !v;
                    continue ())
            | Isa.Stw (a, b, imm) -> (
                let addr = regs.(b) + imm in
                match range addr 4 with
                | Error e -> Error e
                | Ok () ->
                    for i = 0 to 3 do
                      Bytes.set mem (addr + i)
                        (Char.chr ((regs.(a) lsr (8 * (3 - i))) land 0xff))
                    done;
                    continue ())
            | Isa.Jmp imm ->
                pc := imm;
                step ()
            | Isa.Jz (a, imm) ->
                if regs.(a) = 0 then pc := imm else pc := next;
                step ()
            | Isa.Jnz (a, imm) ->
                if regs.(a) <> 0 then pc := imm else pc := next;
                step ()
            | Isa.Svc n -> (
                match svc n with Error e -> Error e | Ok () -> continue ())
            | Isa.Lt (a, b, c) ->
                regs.(a) <- (if regs.(b) < regs.(c) then 1 else 0);
                continue ()
            | Isa.Eq (a, b, c) ->
                regs.(a) <- (if regs.(b) = regs.(c) then 1 else 0);
                continue ())
      end
    in
    match step () with
    | Error e -> Error (Printf.sprintf "PALVM fault at pc=%d: %s" !pc e)
    | Ok () -> Ok { output = Buffer.contents output; steps = !steps; registers = regs }
  end

let to_pal ~name ?mem_size ?fuel ?compute_time ~code () =
  Pal.of_code ~name ~code ?compute_time (fun services input ->
      match run ?mem_size ?fuel ~code ~services ~input () with
      | Error e -> Error e
      | Ok outcome -> Ok outcome.output)
