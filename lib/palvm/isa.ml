(* The ISA proper lives in [Sea_isa] so that the static analyzer
   ([Sea_analysis]) can share the decoder without depending on the
   interpreter (which depends on [Sea_core], which runs the analyzer at
   launch). Re-exported here so [Sea_palvm.Isa] keeps working. *)
include Sea_isa.Isa
