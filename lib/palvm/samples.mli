(** Shipped PALVM example programs.

    Small, honest PALs used by the examples, the CLI's [analyze]
    subcommand and the [@analyze] build alias: each must run correctly
    under {!Vm} {e and} come back clean (no error findings) from
    [Sea_analysis] — they are the regression corpus for "our own images
    pass our own linter". *)

val seal_echo : string
(** Reads the input, seals it, outputs the sealed blob. *)

val xor_checksum : string
(** Loops over the input bytes and outputs a 4-byte XOR checksum — the
    shipped example of a loop. Its trip count is provable by the
    analyzer's counter-pattern inference, so its certificate carries a
    finite WCET well under the fuel ceiling. *)

val random_nonce : string
(** Generates 16 random bytes, seals them, outputs only the sealed
    blob — the raw nonce never leaves the PAL. *)

val hash_input : string
(** Outputs SHA-256 of the input. *)

val all : (string * string) list
(** [(name, image)] for every sample above. *)

val pal : name:string -> code:string -> Sea_core.Pal.t
(** Wrap a sample as a launchable PAL ({!Vm.to_pal}). *)
