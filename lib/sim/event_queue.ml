type 'a entry = { time : Time.t; seq : int; payload : 'a }

(* Slots beyond [size] hold [None] so a popped entry's payload is
   unreachable the moment it leaves the heap: a drained queue retains
   nothing, however large the array grew while it was full. *)
type 'a t = {
  mutable heap : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get h i = match h.(i) with Some e -> e | None -> assert false

let grow t =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let bigger = Array.make (max 16 (2 * cap)) None in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end

let push t ~time payload =
  let e = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  let h = t.heap in
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  h.(!i) <- Some e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if entry_lt (get h !i) (get h parent) then begin
      let tmp = h.(parent) in
      h.(parent) <- h.(!i);
      h.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let sift_down h size i0 =
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < size && entry_lt (get h l) (get h !smallest) then smallest := l;
    if r < size && entry_lt (get h r) (get h !smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = h.(!smallest) in
      h.(!smallest) <- h.(!i);
      h.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let h = t.heap in
    let top = get h 0 in
    t.size <- t.size - 1;
    h.(0) <- h.(t.size);
    (* Blank the vacated slot: the heap must not keep the popped payload
       (or, transiently, a second reference to the moved one) alive. *)
    h.(t.size) <- None;
    sift_down h t.size 0;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some (get t.heap 0).time

let clear t =
  t.size <- 0;
  t.heap <- [||]
