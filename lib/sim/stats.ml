type t = {
  mutable values : float list; (* reverse insertion order *)
  mutable count : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable min : float;
  mutable max : float;
  mutable sorted : float array option; (* cache, invalidated by [add] *)
}

let create () =
  {
    values = [];
    count = 0;
    sum = 0.;
    sum_sq = 0.;
    min = infinity;
    max = neg_infinity;
    sorted = None;
  }

let add t x =
  t.values <- x :: t.values;
  t.sorted <- None;
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let add_time t d = add t (Time.to_ms d)
let count t = t.count
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

let stdev t =
  if t.count < 2 then 0.
  else
    let n = float_of_int t.count in
    let var = (t.sum_sq -. (t.sum *. t.sum /. n)) /. (n -. 1.) in
    sqrt (Float.max var 0.)

let min t =
  if t.count = 0 then invalid_arg "Stats.min: empty accumulator";
  t.min

let max t =
  if t.count = 0 then invalid_arg "Stats.max: empty accumulator";
  t.max

let sorted_samples t =
  match t.sorted with
  | Some arr -> arr
  | None ->
      let arr = Array.of_list t.values in
      Array.sort Float.compare arr;
      t.sorted <- Some arr;
      arr

let percentile t p =
  if t.count = 0 then invalid_arg "Stats.percentile: empty accumulator";
  let arr = sorted_samples t in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int t.count)) in
  let idx = Stdlib.max 0 (Stdlib.min (t.count - 1) (rank - 1)) in
  arr.(idx)

let percentile_opt t p = if t.count = 0 then None else Some (percentile t p)

let samples t = List.rev t.values

let merge ts =
  let m = create () in
  List.iter (fun t -> List.iter (fun x -> add m x) (samples t)) ts;
  m

let pp_summary fmt t =
  Format.fprintf fmt "%.2f ± %.2f (n=%d)" (mean t) (stdev t) t.count

let pp_percentiles fmt t =
  if t.count = 0 then Format.fprintf fmt "p50/p95/p99 -/-/-"
  else
    Format.fprintf fmt "p50/p95/p99 %.2f/%.2f/%.2f" (percentile t 50.)
      (percentile t 95.) (percentile t 99.)
