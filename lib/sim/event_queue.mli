(** Priority queue of timestamped events.

    A classic binary min-heap keyed by (time, sequence number). The sequence
    number makes the ordering of same-instant events deterministic: events
    scheduled earlier fire earlier. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:Time.t -> 'a -> unit
(** Schedule a payload at the given instant. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest event, or [None] if empty. The queue
    drops its reference to the popped payload: a drained queue retains
    nothing for the GC, however large its backing array grew. *)

val peek_time : 'a t -> Time.t option
(** Time of the earliest event without removing it. *)

val clear : 'a t -> unit
