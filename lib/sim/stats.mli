(** Sample accumulators for benchmark results.

    Collects individual observations (e.g. one simulated latency per trial)
    and reports summary statistics. Used by the benchmark harness to report
    the same mean/stdev columns as the paper's tables. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val add_time : t -> Time.t -> unit
(** Record one observation expressed as a simulated duration; stored in
    milliseconds, the unit used throughout the paper's tables. *)

val count : t -> int
val mean : t -> float
val stdev : t -> float
(** Sample standard deviation (n-1 denominator); [0.] for fewer than two
    observations. *)

val min : t -> float
val max : t -> float
(** Smallest / largest recorded observation. Like {!percentile}, both
    raise [Invalid_argument] on an empty accumulator — returning the
    [infinity] / [neg_infinity] identity elements would leak [inf] into
    reports and bench JSON. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]], by nearest-rank on the sorted
    samples. The sorted view is cached and invalidated by {!add}, so
    querying several percentiles between additions sorts once. Raises
    [Invalid_argument] if the accumulator is empty. *)

val percentile_opt : t -> float -> float option
(** Like {!percentile}, but [None] on an empty accumulator — for callers
    that must render an ["n/a"] (a crashed machine's empty completion
    window) rather than treat emptiness as a bug. *)

val samples : t -> float list
(** All recorded observations, in insertion order. *)

val merge : t list -> t
(** [merge ts] is a fresh accumulator holding every observation of every
    [ts] element, appended in list order (each element's own insertion
    order preserved). The inputs are not consumed. Percentiles of the
    merge are computed over the union of samples, so merging per-machine
    accumulators gives exact cross-machine tail latencies — and, the
    order being fixed by the list, a byte-identical render no matter how
    the inputs were produced. *)

val pp_summary : Format.formatter -> t -> unit
(** Renders ["mean ± stdev (n=count)"]. *)

val pp_percentiles : Format.formatter -> t -> unit
(** Renders ["p50/p95/p99 a/b/c"] (nearest-rank tail percentiles), or
    ["p50/p95/p99 -/-/-"] for an empty accumulator. *)
