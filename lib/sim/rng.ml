type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ?(seed = 0x5EAF00D_CAFEL) () = { state = seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  { state = seed }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  (* An explicit loop, not [Array.init]: the evaluation order of
     [Array.init]'s callback is unspecified, and each split advances
     [t], so the streams must be drawn in index order to be stable. *)
  let streams = Array.make n t in
  for i = 0 to n - 1 do
    streams.(i) <- split t
  done;
  streams

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec go () =
    let r = Int64.to_int (Int64.logand (int64 t) mask) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let float t bound =
  let r = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t ~mean ~stdev =
  let rec nonzero () =
    let u = float t 1.0 in
    if u = 0.0 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stdev *. r *. cos (2.0 *. Float.pi *. u2))

let exponential t ~mean =
  let rec nonzero () =
    let u = float t 1.0 in
    if u = 0.0 then nonzero () else u
  in
  -.mean *. log (nonzero ())

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b
