(** Deterministic pseudo-random number generator for the simulator.

    The engine and every stochastic model (timing jitter, workload
    generation) draw from an explicit [Rng.t] so that simulations are
    reproducible from a seed. The implementation is SplitMix64, which is
    fast, has good statistical quality for simulation purposes, and supports
    cheap splitting into independent streams.

    This generator is {b not} cryptographically secure; the TPM's random
    number generator is layered on a DRBG in [Sea_crypto]. *)

type t

val create : ?seed:int64 -> unit -> t
(** Fresh generator. The default seed is a fixed constant so that two runs
    of the same program see the same stream. *)

val split : t -> t
(** [split t] returns a new generator statistically independent of [t];
    both generators advance independently afterwards. *)

val split_n : t -> int -> t array
(** [split_n t n] draws [n] independent streams off [t], in index order,
    advancing [t] by exactly [n] draws. Stream [i] is a function of [t]'s
    state and [i] alone, so carving a fleet's per-machine streams this
    way yields the same stream for machine [i] no matter how the
    machines are later grouped or scheduled. Raises [Invalid_argument]
    on a negative count. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mean:float -> stdev:float -> float
(** Normally distributed sample (Box–Muller). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] pseudo-random bytes. *)
