let cache : (string * int, Rsa.private_key) Hashtbl.t = Hashtbl.create 7

(* The cache is process-wide while machines may be created or keys
   fetched from several domains (fleet simulations); a lock keeps the
   table consistent. Key material itself stays deterministic: a given
   (label, bits) always rebuilds the identical key, so whichever domain
   populates an entry first, every reader sees the same key. *)
let lock = Mutex.create ()

(* Rebuild a key from its stored prime pair (e is always 65537). *)
let of_primes p_hex q_hex =
  let open Bignum in
  let p = of_hex p_hex and q = of_hex q_hex in
  let n = mul p q in
  let e = of_int 65537 in
  let phi = mul (sub p one) (sub q one) in
  match mod_inverse e ~m:phi with
  | Some d -> { Rsa.pub = { Rsa.n; e }; d; p; q }
  | None -> invalid_arg "Keyvault: embedded primes do not admit e = 65537"

let embedded ~label ~bits =
  List.find_map
    (fun (l, b, (p, q)) -> if l = label && b = bits then Some (of_primes p q) else None)
    Embedded_keys.table

let get ~label ~bits =
  let cached =
    Mutex.protect lock (fun () -> Hashtbl.find_opt cache (label, bits))
  in
  match cached with
  | Some key -> key
  | None ->
      (* Generation happens outside the lock (it can be slow for large
         keys); a concurrent generator of the same label derives the
         identical key, so a double-add is harmless and the first entry
         wins. *)
      let key =
        match embedded ~label ~bits with
        | Some key -> key
        | None ->
            let drbg =
              Drbg.create ~seed:(Printf.sprintf "sea-keyvault:%s:%d" label bits)
            in
            Rsa.generate ~bits drbg
      in
      Mutex.protect lock (fun () ->
          match Hashtbl.find_opt cache (label, bits) with
          | Some key -> key
          | None ->
              Hashtbl.add cache (label, bits) key;
              key)

let clear () = Mutex.protect lock (fun () -> Hashtbl.reset cache)
