(** Deterministic fault injection at the hardware boundaries.

    Real v1.2 TPM parts fail transiently: the TCG spec gives commands a
    busy/[TPM_RETRY] outcome, LPC slaves may stall the bus with extra
    long-wait sync cycles, and an interrupted [TPM_HASH_START/DATA/END]
    sequence aborts the whole measurement. A {!t} is a seeded plan of
    such faults: every injection point asks {!fires}, which draws one
    Bernoulli trial from a stream split off the supplied [Sea_sim.Rng],
    so a given seed replays the exact same fault schedule bit-identically
    run after run.

    A model with no plan installed ([None] everywhere) draws nothing and
    charges nothing — behaviour is byte-for-byte what it was before this
    module existed. *)

type kind =
  | Tpm_busy  (** Transient busy/[TPM_RETRY] on a TPM command. *)
  | Lpc_stall
      (** The TPM holds the LPC bus in long-wait sync beyond its
          configured device wait: a latency fault, not an error. *)
  | Hash_abort
      (** The [TPM_HASH_DATA] / SLAUNCH measurement stream aborts
          mid-sequence; the open hash session is lost. *)
  | Seal_fail  (** Transient seal-blob write failure. *)
  | Nv_fail  (** Transient NV write failure. *)

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

(** {1 Transient vs. permanent errors}

    Transient failures are threaded through the existing
    [(_, string) result] surfaces with a recognizable [TPM_RETRY] prefix,
    so every layer can classify an error without a type change rippling
    through the tree. *)

val transient_prefix : string
val transient : string -> string
(** Tag a message as transient: ["TPM_RETRY: " ^ msg]. *)

val is_transient : string -> bool
(** Whether an error message denotes a transient (retryable) failure. *)

(** {1 Plans} *)

type t

val create :
  ?kinds:kind list -> ?max_injections:int -> rate:float -> Sea_sim.Rng.t -> t
(** A plan injecting each enabled [kind] with probability [rate] per
    injection point, drawing from a stream split off the given generator.
    [max_injections] caps the total number of faults injected (used to
    model a single glitch). Raises [Invalid_argument] unless
    [0 <= rate <= 1] and [kinds] is non-empty. *)

type spec = { rate : float; kinds : kind list; seed : int }
(** A serializable plan description (what the CLI flags carry). *)

val spec : ?kinds:kind list -> ?seed:int -> rate:float -> unit -> spec
(** Validated constructor; defaults: all kinds, seed 1. *)

val of_spec : spec -> t
(** Instantiate the plan on its own generator seeded from [spec.seed] —
    independent of the engine seed, so the fault schedule and the
    workload can be varied separately. *)

val rate : t -> float

val fires : t -> kind -> bool
(** One Bernoulli trial at an injection point. Draws from the plan's
    stream only when [kind] is enabled and the plan is live; a [true]
    is counted against [kind]. *)

val stall : t -> base:Sea_sim.Time.t -> Sea_sim.Time.t
(** Duration of an injected LPC long-wait stall: a multiplier of the
    transfer's base time, drawn from the plan's stream and accumulated
    into {!stall_injected}. *)

val injected : t -> kind -> int
(** Faults injected so far of one kind. *)

val total : t -> int
val counts : t -> (kind * int) list
(** Per-kind injection counts, in {!all_kinds} order. *)

val stall_injected : t -> Sea_sim.Time.t
(** Cumulative extra bus time injected by [Lpc_stall] faults. *)
