open Sea_sim

type kind = Tpm_busy | Lpc_stall | Hash_abort | Seal_fail | Nv_fail

let all_kinds = [ Tpm_busy; Lpc_stall; Hash_abort; Seal_fail; Nv_fail ]
let nkinds = List.length all_kinds

let kind_index = function
  | Tpm_busy -> 0
  | Lpc_stall -> 1
  | Hash_abort -> 2
  | Seal_fail -> 3
  | Nv_fail -> 4

let kind_name = function
  | Tpm_busy -> "tpm-busy"
  | Lpc_stall -> "lpc-stall"
  | Hash_abort -> "hash-abort"
  | Seal_fail -> "seal-fail"
  | Nv_fail -> "nv-fail"

let kind_of_name = function
  | "tpm-busy" -> Some Tpm_busy
  | "lpc-stall" -> Some Lpc_stall
  | "hash-abort" -> Some Hash_abort
  | "seal-fail" -> Some Seal_fail
  | "nv-fail" -> Some Nv_fail
  | _ -> None

let transient_prefix = "TPM_RETRY"
let transient msg = transient_prefix ^ ": " ^ msg

let is_transient msg =
  let p = transient_prefix in
  let lp = String.length p in
  String.length msg >= lp && String.sub msg 0 lp = p

type t = {
  rate : float;
  enabled : bool array; (* indexed by kind_index *)
  rng : Rng.t;
  max_injections : int option;
  counts : int array;
  mutable stall_injected : Time.t;
}

let validate_rate rate =
  if not (rate >= 0. && rate <= 1.) then
    invalid_arg "Fault.create: rate must be in [0, 1]"

let validate_kinds kinds =
  if kinds = [] then invalid_arg "Fault.create: kinds must be non-empty"

let create ?(kinds = all_kinds) ?max_injections ~rate rng =
  validate_rate rate;
  validate_kinds kinds;
  (match max_injections with
  | Some n when n < 0 ->
      invalid_arg "Fault.create: max_injections must be non-negative"
  | _ -> ());
  let enabled = Array.make nkinds false in
  List.iter (fun k -> enabled.(kind_index k) <- true) kinds;
  {
    rate;
    enabled;
    rng = Rng.split rng;
    max_injections;
    counts = Array.make nkinds 0;
    stall_injected = Time.zero;
  }

type spec = { rate : float; kinds : kind list; seed : int }

let spec ?(kinds = all_kinds) ?(seed = 1) ~rate () =
  validate_rate rate;
  validate_kinds kinds;
  { rate; kinds; seed }

let of_spec { rate; kinds; seed } =
  create ~kinds ~rate (Rng.create ~seed:(Int64.of_int seed) ())

let rate (t : t) = t.rate
let total (t : t) = Array.fold_left ( + ) 0 t.counts

let live (t : t) =
  match t.max_injections with None -> true | Some n -> total t < n

let fires (t : t) kind =
  t.rate > 0.
  && t.enabled.(kind_index kind)
  && live t
  &&
  let hit = Rng.float t.rng 1.0 < t.rate in
  if hit then t.counts.(kind_index kind) <- t.counts.(kind_index kind) + 1;
  hit

let stall t ~base =
  (* A long-wait stall holds the bus for a small multiple of the
     transfer's nominal time: 1x..16x extra. *)
  let mult = 1.0 +. Rng.float t.rng 15.0 in
  let extra = Time.scale_f base mult in
  t.stall_injected <- Time.add t.stall_injected extra;
  extra

let injected t kind = t.counts.(kind_index kind)
let counts t = List.map (fun k -> (k, injected t k)) all_kinds
let stall_injected t = t.stall_injected
