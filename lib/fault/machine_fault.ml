open Sea_sim

type kind = Crash | Partition

let kind_name = function Crash -> "machine-crash" | Partition -> "net-partition"

type outage = { kind : kind; start : Time.t; until : Time.t }

type spec = {
  mttf : Time.t;
  mttr : Time.t;
  partition : Time.t option;
  link_loss : float;
  seed : int;
}

let spec ?(mttr = Time.s 2.) ?partition ?(link_loss = 0.) ?(seed = 1) ~mttf () =
  if Time.compare mttf Time.zero <= 0 then
    invalid_arg "Machine_fault.spec: mttf must be positive";
  if Time.compare mttr Time.zero <= 0 then
    invalid_arg "Machine_fault.spec: mttr must be positive";
  (match partition with
  | Some p when Time.compare p Time.zero <= 0 ->
      invalid_arg "Machine_fault.spec: partition must be positive"
  | _ -> ());
  if not (link_loss >= 0. && link_loss <= 1.) then
    invalid_arg "Machine_fault.spec: link_loss must be in [0, 1]";
  { mttf; mttr; partition; link_loss; seed }

(* Exponential inter-arrival with the given mean, in whole nanoseconds,
   floored at 1 ns so a pathological draw cannot stall the walk. *)
let exp_draw rng mean =
  let u = 1.0 -. Rng.float rng 1.0 in
  let ns = -.float_of_int (Time.to_ns mean) *. log u in
  Time.ns (Stdlib.max 1 (int_of_float ns))

let plan_one spec ~duration rng =
  (* Crash walk: exponential(mttf) up-times separated by fixed mttr
     repairs, truncated at the horizon. *)
  let crashes = ref [] in
  let t = ref (exp_draw rng spec.mttf) in
  while Time.compare !t duration < 0 do
    let until = Time.add !t spec.mttr in
    crashes := { kind = Crash; start = !t; until } :: !crashes;
    t := Time.add until (exp_draw rng spec.mttf)
  done;
  let crashes = List.rev !crashes in
  (* At most one partition per machine per run, placed uniformly so it
     fits inside the horizon. The draw happens whether or not the window
     fits, keeping the crash schedule independent of the partition
     flag. *)
  let partition =
    match spec.partition with
    | None -> []
    | Some width ->
        let slack = Time.to_ns duration - Time.to_ns width in
        let start_ns = if slack <= 0 then 0 else Rng.int rng slack in
        let start = Time.ns start_ns in
        let until = Time.min duration (Time.add start width) in
        [ { kind = Partition; start; until } ]
  in
  (* Merge the two walks in start order and drop any outage that begins
     inside an earlier one: a machine that is already down cannot fail
     again until it is back. *)
  let all =
    List.sort
      (fun a b -> Time.compare a.start b.start)
      (crashes @ partition)
  in
  let rec dedup horizon = function
    | [] -> []
    | o :: rest ->
        if Time.compare o.start horizon < 0 then dedup horizon rest
        else o :: dedup o.until rest
  in
  dedup Time.zero all

let plans spec ~duration ~machines =
  if machines < 1 then
    invalid_arg "Machine_fault.plans: machines must be positive";
  if Time.compare duration Time.zero <= 0 then
    invalid_arg "Machine_fault.plans: duration must be positive";
  (* One stream per machine, carved in index order off the spec's own
     seed: machine [i]'s outage timeline depends on (spec.seed, i) alone,
     mirroring how [Cluster.run] carves engine and fault-plan seeds. *)
  let streams =
    Rng.split_n (Rng.create ~seed:(Int64.of_int spec.seed) ()) machines
  in
  Array.map (fun rng -> plan_one spec ~duration rng) streams

let down_at outages t =
  List.exists
    (fun o -> Time.compare o.start t <= 0 && Time.compare t o.until < 0)
    outages
