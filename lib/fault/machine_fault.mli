(** Machine-scoped fault plans: whole-machine crash and partition
    timelines for a fleet, precomputed deterministically in virtual
    time.

    Where {!Fault} injects transient faults {e inside} one machine (TPM
    busy, LPC stall), a machine plan takes the whole machine away:
    [Crash] is fail-stop — the machine loses its resident PALs and
    serves nothing until repaired — while [Partition] leaves it running
    but unreachable (heartbeats and requests are lost; sealed state
    survives). Plans are pure data computed up front from the spec's own
    seed, so the fleet's outage schedule is independent of workload
    execution and identical for every shard count. *)

open Sea_sim

type kind = Crash | Partition

val kind_name : kind -> string
(** ["machine-crash"] / ["net-partition"]. *)

type outage = { kind : kind; start : Time.t; until : Time.t }
(** One contiguous unavailability window: the machine is down for
    [start <= t < until] (instants relative to the serving window). *)

type spec = {
  mttf : Time.t;  (** Mean up-time between crashes (exponential). *)
  mttr : Time.t;  (** Repair time per crash (fixed). *)
  partition : Time.t option;
      (** When set, each machine additionally suffers one partition of
          this length at a uniformly drawn instant. *)
  link_loss : float;
      (** Per-message drop probability on the cluster's migration
          channel ([Sea_cluster.Link]), in [0, 1]. *)
  seed : int;
}

val spec :
  ?mttr:Time.t ->
  ?partition:Time.t ->
  ?link_loss:float ->
  ?seed:int ->
  mttf:Time.t ->
  unit ->
  spec
(** Validated constructor; defaults: 2 s repair, no partition, lossless
    link, seed 1. Raises [Invalid_argument] unless [mttf], [mttr] and
    any [partition] are positive and [link_loss] is in [0, 1]. *)

val plans : spec -> duration:Time.t -> machines:int -> outage list array
(** Per-machine outage timelines over [0, duration), sorted by start,
    non-overlapping, truncated at the horizon. Machine [i]'s timeline is
    a function of [(spec.seed, i)] alone — streams are carved with
    {!Sea_sim.Rng.split_n} in index order, exactly like the cluster's
    engine seeds — so the same spec replays the same fleet schedule
    bit-identically. *)

val down_at : outage list -> Time.t -> bool
(** Whether the machine is inside any outage at instant [t]. *)
