(** Bounded retry with virtual-time exponential backoff.

    Wraps an operation returning [(_, string) result]; an error tagged
    transient by {!Fault.is_transient} is retried up to a bounded number
    of attempts, sleeping (in simulated time, via [Engine.advance]) an
    exponentially growing, jittered backoff between attempts, within an
    optional per-operation deadline budget. Permanent errors and
    exhausted budgets are returned to the caller unchanged.

    Jitter is drawn from the engine's own generator, and only when a
    retry actually happens — a fault-free run consumes no randomness and
    replays bit-identically to a build without this module. *)

type policy

val policy :
  ?max_attempts:int ->
  ?base_backoff:Sea_sim.Time.t ->
  ?max_backoff:Sea_sim.Time.t ->
  ?jitter:float ->
  ?budget:Sea_sim.Time.t ->
  unit ->
  policy
(** Defaults: 4 attempts, 50us initial backoff doubling to a 5ms cap,
    25% multiplicative jitter, no deadline budget. Raises
    [Invalid_argument] on non-positive attempts/backoffs or a negative
    jitter. *)

val default : unit -> policy
(** [default ()] is [policy ()]: a fresh policy with private counters.
    (It used to be a single shared value, which aliased the mutable
    [retries]/[give_ups] counters across every user in the process.) *)

val max_attempts : policy -> int

val retries : policy -> int
(** Cumulative retries performed through this policy (attempt 2 and
    beyond each count one). *)

val give_ups : policy -> int
(** Operations that still failed transiently after the last allowed
    attempt or ran out of deadline budget. *)

val run :
  ?policy:policy ->
  engine:Sea_sim.Engine.t ->
  (unit -> ('a, string) result) ->
  ('a, string) result
(** [run ~engine f] evaluates [f ()], retrying transient errors per the
    policy. Without [?policy], [f] runs exactly once (no retry). *)
