open Sea_sim

type policy = {
  max_attempts : int;
  base_backoff : Time.t;
  max_backoff : Time.t;
  jitter : float;
  budget : Time.t option;
  mutable retries : int;
  mutable give_ups : int;
}

let policy ?(max_attempts = 4) ?(base_backoff = Time.us 50.)
    ?(max_backoff = Time.ms 5.) ?(jitter = 0.25) ?budget () =
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts must be >= 1";
  if Time.compare base_backoff Time.zero <= 0 then
    invalid_arg "Retry.policy: base_backoff must be positive";
  if Time.compare max_backoff base_backoff < 0 then
    invalid_arg "Retry.policy: max_backoff must be >= base_backoff";
  if jitter < 0. then invalid_arg "Retry.policy: jitter must be non-negative";
  (match budget with
  | Some b when Time.compare b Time.zero <= 0 ->
      invalid_arg "Retry.policy: budget must be positive"
  | _ -> ());
  { max_attempts; base_backoff; max_backoff; jitter; budget; retries = 0;
    give_ups = 0 }

(* A fresh policy per call: the [retries]/[give_ups] counters are
   mutable, so a shared module-level default would alias per-user retry
   statistics across every caller in the process. *)
let default () = policy ()
let max_attempts p = p.max_attempts
let retries p = p.retries
let give_ups p = p.give_ups

let backoff p engine ~attempt =
  (* attempt is the 1-based index of the attempt that just failed *)
  let exp = Time.scale p.base_backoff (1 lsl min (attempt - 1) 20) in
  let capped = Time.min exp p.max_backoff in
  let factor = 1.0 +. Rng.float (Engine.rng engine) p.jitter in
  Time.scale_f capped factor

let run ?policy ~engine f =
  match policy with
  | None -> f ()
  | Some p ->
      let deadline =
        Option.map (fun b -> Time.add (Engine.now engine) b) p.budget
      in
      let within_budget d =
        match deadline with
        | None -> true
        | Some dl -> Time.compare (Time.add (Engine.now engine) d) dl <= 0
      in
      let rec attempt n =
        match f () with
        | Ok _ as ok -> ok
        | Error e when Fault.is_transient e && n < p.max_attempts ->
            let d = backoff p engine ~attempt:n in
            if within_budget d then begin
              Sea_trace.Trace.instant engine ~cat:"fault"
                ~args:(fun () ->
                  [
                    ("attempt", Sea_trace.Trace.Int n);
                    ("backoff_ns", Sea_trace.Trace.Int (Time.to_ns d));
                  ])
                "retry";
              Engine.advance engine d;
              p.retries <- p.retries + 1;
              attempt (n + 1)
            end
            else begin
              p.give_ups <- p.give_ups + 1;
              Sea_trace.Trace.instant engine ~cat:"fault"
                ~args:(fun () -> [ ("attempt", Sea_trace.Trace.Int n) ])
                "retry-give-up";
              Error e
            end
        | Error e ->
            if Fault.is_transient e then begin
              p.give_ups <- p.give_ups + 1;
              Sea_trace.Trace.instant engine ~cat:"fault"
                ~args:(fun () -> [ ("attempt", Sea_trace.Trace.Int n) ])
                "retry-give-up"
            end;
            Error e
      in
      attempt 1
