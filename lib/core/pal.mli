(** Pieces of Application Logic.

    A PAL (§3.1) is a small block of security-sensitive code executed in
    isolation with the minimal TCB. In this model a PAL couples:

    - {b code bytes} — what gets loaded into protected memory and measured
      (deterministically derived from the PAL's name and version, so a
      PAL's measurement is stable across runs and machines);
    - {b application work} — a simulated compute duration, charged to the
      clock while the PAL executes;
    - {b behaviour} — an OCaml function giving the PAL's functional effect,
      run against the {!services} the execution environment hands it
      (sealed storage, randomness, measurement extension).

    The behaviour function is the "registry" that marries real measured
    bytes to executable semantics: sessions look the behaviour up from the
    PAL value they were asked to run, and verifiers check the measurement
    of exactly those bytes. *)

type services = {
  seal : string -> (string, string) result;
      (** Seal data so only this PAL (on this platform) can retrieve it.
          Bound to PCR 17/18 contents on today's hardware, to the sePCR
          measurement under the proposed hardware. *)
  unseal : string -> (string, string) result;
  get_random : int -> string;
  extend_measurement : string -> unit;
      (** Extend the PAL's measurement chain with input/output data so the
          attestation covers it (the paper's footnote 3 TOCTOU caveat is
          mitigated by measuring inputs). *)
  machine_name : string;
}

type t = {
  name : string;
  code : string;  (** The measured bytes. *)
  compute_time : Sea_sim.Time.t;
      (** Application-specific work, {e excluded} from the paper's overhead
          figures but needed for scheduling experiments. *)
  behavior : services -> string -> (string, string) result;
}

val create :
  name:string ->
  ?code_size:int ->
  ?version:int ->
  ?compute_time:Sea_sim.Time.t ->
  (services -> string -> (string, string) result) ->
  t
(** [create ~name behavior] builds a PAL whose code is [code_size] bytes
    (default 4 KB; up to 64 KB for SKINIT compatibility) derived
    deterministically from [name] and [version]. Bumping [version] models
    shipping different code: the measurement changes. *)

val of_code :
  name:string ->
  code:string ->
  ?compute_time:Sea_sim.Time.t ->
  (services -> string -> (string, string) result) ->
  t
(** A PAL whose measured bytes are exactly [code] — used when the code
    is a real program image (see [Sea_palvm]) rather than synthetic
    filler. Size limits as in {!create}. *)

val preflight :
  ?policy:Sea_analysis.Analyzer.policy ->
  ?analyze:Sea_analysis.Analyzer.gate ->
  ?on_report:(Sea_analysis.Report.t -> unit) ->
  t ->
  (unit, string) result
(** Run the PAL bytecode static analyzer over the measured bytes,
    {e before} launch. Under [~analyze:Enforce] an image whose report
    has error findings is refused (the returned [Error] summarizes the
    first one) without ever being measured; under [WarnOnly] the report
    is handed to [on_report] and the launch proceeds; under [Off] (the
    default) nothing runs. Only meaningful for PALs whose code is real
    PALVM bytecode ({!of_code} / [Sea_palvm]); the synthetic filler
    {!create} generates will not decode.

    Analysis results are cached process-wide, content-addressed by the
    PAL's {!measurement} (and policy): launching the same image a
    thousand times under [WarnOnly]/[Enforce] costs one analysis. *)

val certificate :
  ?policy:Sea_analysis.Analyzer.policy -> t -> Sea_analysis.Certificate.t
(** The static cost certificate for the measured bytes, through the
    same content-addressed cache as {!preflight}. *)

val analysis_runs : unit -> int
(** Process-wide count of actual analyzer invocations (cache misses) —
    lets tests assert each distinct image is analyzed exactly once. *)

val measurement : t -> string
(** SHA-1 of the code — what lands in PCR 17 / the sePCR. *)

val pages_needed : t -> int
(** Data pages required to hold the code (excluding the SECB page). *)

val code_size : t -> int
