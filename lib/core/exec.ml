let architecture (m : Sea_hw.Machine.t) : Backend.kind =
  if m.Sea_hw.Machine.config.Sea_hw.Machine.proposed then Backend.Proposed
  else Backend.Current

let run ?backend (m : Sea_hw.Machine.t) ~cpu ?preemption_timer pal ~input =
  let b =
    match backend with
    | Some b -> b
    | None -> Backend.of_kind (architecture m)
  in
  b.Backend.oneshot m ~cpu ?preemption_timer pal ~input
