open Sea_sim
open Sea_crypto
open Sea_hw

type breakdown = {
  late_launch : Time.t;
  seal : Time.t;
  unseal : Time.t;
  compute : Time.t;
  other : Time.t;
  total : Time.t;
}

let overhead b = Time.sub b.total b.compute

type outcome = {
  output : string;
  measurement : string;
  identity_pcr : int;
  identity_value : string;
  breakdown : breakdown;
}

let exit_marker = Sha1.digest "SEA-PAL-EXIT"

let identity_pcr_for (m : Machine.t) =
  match m.Machine.config.Machine.arch with Machine.Amd -> 17 | Machine.Intel -> 18

let zero_pcr = String.make Sea_tpm.Pcr.digest_size '\000'

let expected_identity (m : Machine.t) pal =
  ignore m;
  Sha1.digest (zero_pcr ^ Pal.measurement pal)

let expected_identity_after_exit m pal =
  Sha1.digest (expected_identity m pal ^ exit_marker)

(* The OS-side suspend/resume plumbing the kernel module performs: saving
   kernel state in place is cheap (§3.3); idling the sibling cores costs an
   IPI round-trip each. *)
let suspend_cost (m : Machine.t) =
  Time.scale (Time.us 15.) (max 0 (Array.length m.Machine.cpus - 1))

let resume_cost = Time.us 30.

let execute (m : Machine.t) ~cpu ?analyze ?analysis_policy ?on_report ?retry
    ?tpm_cap pal ~input =
  match
    (* Analyzed before the OS is suspended, pages claimed or the TPM
       touched: an image the gate refuses is never measured. *)
    ( Pal.preflight ?policy:analysis_policy ?analyze ?on_report pal,
      m.Machine.tpm )
  with
  | Error e, _ -> Error e
  | Ok (), None -> Error "SEA sessions require a TPM"
  | Ok (), Some tpm ->
      let engine = m.Machine.engine in
      Sea_trace.Trace.with_span engine ~cat:"session"
        ~args:(fun () -> [ ("pal", Sea_trace.Trace.Str pal.Pal.name) ])
        "execute"
      @@ fun () ->
      let t_start = Engine.now engine in
      (* 1. Suspend the untrusted OS. *)
      Sea_trace.Trace.with_span engine ~cat:"session" "suspend-os" (fun () ->
          Machine.idle_other_cpus m ~except:cpu;
          Engine.advance engine (suspend_cost m));
      let pages = Machine.alloc_pages m (Pal.pages_needed pal) in
      let cleanup () =
        Sea_trace.Trace.with_span engine ~cat:"session" "resume-os" (fun () ->
            Memctrl.dev_unprotect m.Machine.memctrl pages;
            (Machine.cpu m cpu).Cpu.interrupts_enabled <- true;
            (Machine.cpu m cpu).Cpu.status <- Cpu.Legacy;
            Machine.wake_cpus m;
            Machine.free_pages m pages;
            Engine.advance engine resume_cost)
      in
      let memory = Memctrl.memory m.Machine.memctrl in
      Memory.write_span memory ~pages ~off:0 pal.Pal.code;
      (* 2. Late launch. A transient TPM fault mid TPM_HASH_* aborts the
         whole launch; the retry re-runs SKINIT/SENTER from scratch, so
         the measurement is always rebuilt from a fresh TPM_HASH_START. *)
      let t0 = Engine.now engine in
      (match
         Sea_fault.Retry.run ?policy:retry ~engine (fun () ->
             Insn.late_launch m ~cpu ~pages ~length:(Pal.code_size pal))
       with
      | Error e ->
          cleanup ();
          Error e
      | Ok measurement ->
          (Machine.cpu m cpu).Cpu.status <- Cpu.In_pal (-1);
          let late_launch_time = Time.sub (Engine.now engine) t0 in
          let identity_pcr = identity_pcr_for m in
          let identity_value = expected_identity m pal in
          let cap =
            match tpm_cap with
            | Some c -> c
            | None -> Sea_tpm.Cap.of_tpm tpm
          in
          (* Mirror the launch into the capability's PCR bank (no-op for
             hardware, whose TPM_HASH_* sequence already extended it), so
             the identity-bound seal policy below holds against whichever
             bank the capability seals against. *)
          cap.Sea_tpm.Cap.launch_measured ~pcr:identity_pcr ~measurement;
          (* 3. Run the PAL behaviour with TPM-backed services. *)
          let seal_time = ref Time.zero
          and unseal_time = ref Time.zero
          and extend_time = ref Time.zero in
          let caller = Sea_tpm.Tpm.Cpu cpu in
          let policy = [ (identity_pcr, identity_value) ] in
          let timed acc f =
            let t0 = Engine.now engine in
            let r = f () in
            acc := Time.add !acc (Time.sub (Engine.now engine) t0);
            r
          in
          let services =
            {
              Pal.seal =
                (fun data ->
                  timed seal_time (fun () ->
                      Sea_fault.Retry.run ?policy:retry ~engine (fun () ->
                          cap.Sea_tpm.Cap.seal ~caller ~pcr_policy:policy data)));
              unseal =
                (fun blob ->
                  timed unseal_time (fun () ->
                      Sea_fault.Retry.run ?policy:retry ~engine (fun () ->
                          cap.Sea_tpm.Cap.unseal ~caller blob)));
              get_random = (fun n -> cap.Sea_tpm.Cap.get_random n);
              extend_measurement =
                (fun data ->
                  timed extend_time (fun () ->
                      ignore (cap.Sea_tpm.Cap.pcr_extend identity_pcr data)));
              machine_name = m.Machine.config.Machine.name;
            }
          in
          let t_behavior = Engine.now engine in
          let behavior_result =
            Sea_trace.Trace.with_span engine ~cat:"session" "behavior"
              (fun () ->
                let r = pal.Pal.behavior services input in
                Engine.advance engine pal.Pal.compute_time;
                r)
          in
          let behavior_span = Time.sub (Engine.now engine) t_behavior in
          (* 4. Extend the exit marker so post-PAL software cannot unseal.
             Goes through the capability: the marker must land in the bank
             the seal policy was checked against. *)
          ignore (cap.Sea_tpm.Cap.pcr_extend identity_pcr exit_marker);
          (* 5. Resume the untrusted OS. *)
          cleanup ();
          let total = Time.sub (Engine.now engine) t_start in
          (match behavior_result with
          | Error e -> Error ("PAL behaviour failed: " ^ e)
          | Ok output ->
              let tpm_in_behavior =
                Time.add (Time.add !seal_time !unseal_time) !extend_time
              in
              let compute = Time.sub behavior_span tpm_in_behavior in
              let accounted =
                Time.add late_launch_time
                  (Time.add (Time.add !seal_time !unseal_time) compute)
              in
              Ok
                {
                  output;
                  measurement;
                  identity_pcr;
                  identity_value;
                  breakdown =
                    {
                      late_launch = late_launch_time;
                      seal = !seal_time;
                      unseal = !unseal_time;
                      compute;
                      other = Time.sub total accounted;
                      total;
                    };
                }))

let quote (m : Machine.t) ~nonce =
  match m.Machine.tpm with
  | None -> Error "no TPM"
  | Some tpm -> (
      let engine = m.Machine.engine in
      let selection =
        match m.Machine.config.Machine.arch with
        | Machine.Amd -> [ 17 ]
        | Machine.Intel -> [ 17; 18 ]
      in
      let t0 = Engine.now engine in
      match
        Sea_tpm.Tpm.quote tpm ~caller:Sea_tpm.Tpm.Software ~selection ~nonce ()
      with
      | Error e -> Error e
      | Ok q -> Ok (q, Time.sub (Engine.now engine) t0))
