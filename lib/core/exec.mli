(** One entry point for "run this PAL, whatever the machine is".

    Applications written against {!Sea_core.Pal.services} are
    architecture-agnostic; what differs is how the platform hosts them.
    This facade resolves a {!Backend.t} — from the machine's
    configuration by default, or the one supplied — and runs the PAL to
    completion through it, so the same CA or SSH workflow runs on any
    backend with its sealed state correctly bound. *)

val run :
  ?backend:Backend.t ->
  Sea_hw.Machine.t ->
  cpu:int ->
  ?preemption_timer:Sea_sim.Time.t ->
  Pal.t ->
  input:string ->
  (string, string) result
(** Execute the PAL to completion and return its output. On resident
    backends the session is driven through the preemption loop — a
    [?preemption_timer] makes it yield and resume exactly as the serving
    layer would, rather than erroring on the first yield — and its pages
    are released afterwards; use {!Slaunch_session} or {!Sfi_session}
    directly for scheduling control. [?backend] overrides the dispatch
    (e.g. {!Backend.sfi} on a commodity machine). *)

val architecture : Sea_hw.Machine.t -> Backend.kind
(** What the machine's configuration implies: {!Backend.Proposed} with
    the recommended hardware present, {!Backend.Current} otherwise
    (never {!Backend.Sfi} — software isolation is an explicit choice,
    not a hardware property). *)
