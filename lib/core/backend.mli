(** The isolation backend: one value describing how a machine hosts PALs.

    The paper is a two-point comparison — full TPM-bound sessions on
    today's hardware vs resident SLAUNCH PALs on the proposed hardware —
    and for eight PRs the codebase dispatched on that two-constructor
    choice in a dozen places. This module makes the choice a first-class
    record so {!Exec}, [Sea_serve.Server] and [Sea_cluster.Cluster]
    dispatch through one backend value, and adds the third point the
    ROADMAP asks for: {!Sfi}, software-fault-isolated PALs with
    VM-exit-class transitions and no per-session hardware attestation
    (see {!Sfi_session}).

    A backend bundles:
    - machine validation ({!field-t.check_machine}) and the resident-pool
      bound ({!field-t.pool} — the sePCR count on proposed hardware,
      unbounded under SFI);
    - {!field-t.oneshot}: run a PAL to completion, the {!Session} shape;
    - {!field-t.launch}: host a PAL as a resident {!instance} whose
      uniform operations ([run_slice]/[resume]/[yield via run_slice]/
      [kill]/[release]/[save_state]/[load_state]/[quote]) close over the
      backend-specific session;
    - a per-operation virtual-time cost hook ({!field-t.extra_cost}):
      what the backend layer itself charges on top of the hardware
      simulation. Zero for both hardware backends — their costs come out
      of the simulated TPM, bus and instruction timings — and the SFI
      timing profile's values for {!Sfi}. *)

type kind = Current | Proposed | Sfi

val all : kind list

val kind_name : kind -> string
(** Report header name: ["current hw"], ["proposed hw"], ["sfi"]. *)

val cli_name : kind -> string
(** CLI spelling: ["current"], ["proposed"], ["sfi"]. *)

val of_cli_name : string -> kind option
(** Inverse of {!cli_name} (case-insensitive); [None] for unknown
    names — callers print the known list and exit rather than guessing. *)

type op =
  | Op_launch
  | Op_resume
  | Op_yield
  | Op_release
  | Op_quote
  | Op_seal
  | Op_unseal

(** A resident PAL, uniformly drivable whatever hosts it. *)
type instance = {
  kind : kind;
  run_slice :
    cpu:int ->
    ?budget:Sea_sim.Time.t ->
    unit ->
    ([ `Yielded | `Finished ], string) result;
  resume : cpu:int -> (unit, string) result;
  suspended : unit -> bool;
  output : unit -> string option;
  kill : unit -> (unit, string) result;
  release : unit -> unit;
  save_state : cpu:int -> tag:string -> (string option, string) result;
      (** Seal the resident's identity-bound state for durable storage
          (eviction, migration). [Ok None] when the backend has nothing
          to bind it to (a proposed-hw session whose sePCR was already
          freed). *)
  load_state : cpu:int -> string -> (unit, string) result;
      (** Hand a previously saved blob back to a fresh instance of the
          same PAL; unsealing checks the identity binding. *)
  quote :
    nonce:string -> (Sea_tpm.Tpm.quote * Sea_sim.Time.t, string) result;
      (** Attestation for this instance once it is done: the sePCR quote
          on proposed hardware, the boot-chain quote under SFI. *)
}

type t = {
  kind : kind;
  name : string;  (** = [kind_name kind]; what reports render. *)
  resident : bool;
      (** Whether PALs stay hosted between requests. [false] only for
          {!Current}: each request is a fresh full session. *)
  check_machine : Sea_hw.Machine.t -> (unit, string) result;
  pool : Sea_hw.Machine.t -> int;
      (** Max simultaneous residents: the machine's sePCR count on
          proposed hardware, [max_int] under SFI (no scarce hardware
          resource), [0] for the non-resident backend. *)
  extra_cost : op -> Sea_sim.Time.t;
  oneshot :
    Sea_hw.Machine.t ->
    cpu:int ->
    ?preemption_timer:Sea_sim.Time.t ->
    ?analyze:Sea_analysis.Analyzer.gate ->
    ?retry:Sea_fault.Retry.policy ->
    ?tpm_cap:Sea_tpm.Cap.t ->
    Pal.t ->
    input:string ->
    (string, string) result;
      (** Run [pal] to completion and return its output. Resident
          backends launch, drive [run_slice]/[resume] until [`Finished]
          (so a preemption timer is honoured, not an error) and release;
          {!Current} runs a full {!Session.execute}. *)
  launch :
    Sea_hw.Machine.t ->
    cpu:int ->
    ?preemption_timer:Sea_sim.Time.t ->
    ?analyze:Sea_analysis.Analyzer.gate ->
    ?retry:Sea_fault.Retry.policy ->
    ?tpm_cap:Sea_tpm.Cap.t ->
    Pal.t ->
    input:string ->
    (instance, string) result;
      (** Host [pal] as a resident, left executing on [cpu]. Errors for
          the non-resident backend. *)
}

val current : t
val proposed : t
val sfi : t
val of_kind : kind -> t
