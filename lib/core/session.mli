(** SEA sessions on {e today's} hardware — the architecture the paper
    measures in §4.

    A session implements the Flicker-style kernel-module flow (§4.1): the
    untrusted OS suspends itself (all other cores idled, interrupts off),
    the PAL is placed in protected memory and late launched (SKINIT /
    SENTER), runs with the TPM as its only peer, protects any persistent
    state with TPM Seal bound to the dynamic PCRs, extends a well-known
    exit marker into the identity PCR so later software cannot unseal the
    PAL's secrets, and finally the OS is resumed.

    Every overhead in Figure 2 is observable in the returned
    {!breakdown}. *)

type breakdown = {
  late_launch : Sea_sim.Time.t;  (** SKINIT/SENTER, including TPM traffic. *)
  seal : Sea_sim.Time.t;  (** Cumulative TPM_Seal time. *)
  unseal : Sea_sim.Time.t;  (** Cumulative TPM_Unseal time. *)
  compute : Sea_sim.Time.t;  (** Application-specific work. *)
  other : Sea_sim.Time.t;  (** Suspend/resume plumbing, extends, copies. *)
  total : Sea_sim.Time.t;
}

val overhead : breakdown -> Sea_sim.Time.t
(** [total - compute]: the pure overhead the paper reports. *)

type outcome = {
  output : string;
  measurement : string;  (** SHA-1 of the PAL code, as measured. *)
  identity_pcr : int;  (** 17 on AMD, 18 on Intel. *)
  identity_value : string;  (** That PCR's value {e before} the exit
                                marker — the unseal policy target. *)
  breakdown : breakdown;
}

val exit_marker : string
(** The constant extended into the identity PCR at PAL exit. *)

val execute :
  Sea_hw.Machine.t ->
  cpu:int ->
  ?analyze:Sea_analysis.Analyzer.gate ->
  ?analysis_policy:Sea_analysis.Analyzer.policy ->
  ?on_report:(Sea_analysis.Report.t -> unit) ->
  ?retry:Sea_fault.Retry.policy ->
  ?tpm_cap:Sea_tpm.Cap.t ->
  Pal.t ->
  input:string ->
  (outcome, string) result
(** Run one complete session. Fails on machines without a TPM, if the PAL
    does not fit the late-launch limit, or if the PAL's behaviour fails;
    the OS is resumed and pages freed on all paths.

    [?tpm_cap] is the TPM capability the PAL's data-path services (seal,
    unseal, randomness, extends) execute against — default the machine's
    hardware TPM via {!Sea_tpm.Cap.of_tpm}, byte-for-byte the historical
    behaviour. A vTPM capability ([Sea_vtpm.Vtpm.cap]) routes them to a
    per-tenant virtual TPM instead; the late launch and its measurement
    always stay on hardware, and the capability's [launch_measured] hook
    mirrors them into the virtual bank so the identity-bound seal policy
    (and the exit-marker hygiene) hold there too.

    [?analyze] (default [Off]) runs {!Pal.preflight} first: under
    [Enforce] a PALVM image with error findings is refused {e before}
    the OS is suspended or the TPM measures anything.

    [?retry] retries transient TPM faults (see [Sea_fault]) around the
    late launch and the PAL's seal/unseal services, with virtual-time
    backoff. A retried late launch restarts the whole
    SKINIT/SENTER measurement from TPM_HASH_START — a fault can delay
    the launch but never yields a PAL running with a partial or stale
    identity PCR. *)

val quote :
  Sea_hw.Machine.t ->
  nonce:string ->
  (Sea_tpm.Tpm.quote * Sea_sim.Time.t, string) result
(** Post-session attestation over the dynamic identity PCRs (the "Quote"
    bar of Figure 2). Returns the quote and the TPM time it took. *)

val identity_pcr_for : Sea_hw.Machine.t -> int
val expected_identity : Sea_hw.Machine.t -> Pal.t -> string
(** The identity-PCR value a correct launch of [pal] yields on this
    machine's architecture — what a verifier compares against. *)

val expected_identity_after_exit : Sea_hw.Machine.t -> Pal.t -> string
(** The same chain after the exit marker — what a post-session quote must
    contain. *)
