open Sea_crypto

type services = {
  seal : string -> (string, string) result;
  unseal : string -> (string, string) result;
  get_random : int -> string;
  extend_measurement : string -> unit;
  machine_name : string;
}

type t = {
  name : string;
  code : string;
  compute_time : Sea_sim.Time.t;
  behavior : services -> string -> (string, string) result;
}

let synth_code ~name ~version ~size =
  (* Deterministic pseudo-code: a header naming the PAL, then DRBG filler.
     Distinct names or versions give distinct measurements. *)
  let header = Printf.sprintf "PAL:%s:v%d\n" name version in
  if size < String.length header then
    invalid_arg "Pal.create: code_size smaller than the PAL header";
  let drbg = Drbg.create ~seed:("pal-code:" ^ header) in
  header ^ Drbg.generate_string drbg (size - String.length header)

let create ~name ?(code_size = 4096) ?(version = 1) ?(compute_time = Sea_sim.Time.zero)
    behavior =
  if code_size <= 0 || code_size > 64 * 1024 then
    invalid_arg "Pal.create: code size must be in (0, 64 KB]";
  { name; code = synth_code ~name ~version ~size:code_size; compute_time; behavior }

let of_code ~name ~code ?(compute_time = Sea_sim.Time.zero) behavior =
  if String.length code = 0 || String.length code > 64 * 1024 then
    invalid_arg "Pal.of_code: code size must be in (0, 64 KB]";
  { name; code; compute_time; behavior }

let measurement t = Sha1.digest t.code

(* Content-addressed analysis cache, keyed on the measurement digest
   (plus policy): the analyzer is a pure function of the measured
   bytes, so one process never analyzes the same image twice — what
   makes the preflight gate affordable on the serving hot path, where
   the same few images launch thousands of times. *)
let analysis_cache = Sea_analysis.Certificate.create_cache ()

let analyzed ?policy t =
  Sea_analysis.Certificate.cache_find_or analysis_cache ~digest:(measurement t)
    ~policy (fun () -> Sea_analysis.Analyzer.certify ?policy t.code)

let certificate ?policy t = snd (analyzed ?policy t)

let analysis_runs () =
  Sea_analysis.Certificate.cache_runs analysis_cache

(* Pre-launch static analysis. Shared by both launch paths (today's
   Session and the proposed Slaunch_session), and run strictly before
   pages are allocated or the TPM touched: an image that [Enforce]
   rejects is never measured. *)
let preflight ?policy ?(analyze = Sea_analysis.Analyzer.Off) ?on_report t =
  match analyze with
  | Sea_analysis.Analyzer.Off -> Ok ()
  | Sea_analysis.Analyzer.WarnOnly | Sea_analysis.Analyzer.Enforce -> (
      let report, _ = analyzed ?policy t in
      (match on_report with Some f -> f report | None -> ());
      match (analyze, Sea_analysis.Report.errors report) with
      | Sea_analysis.Analyzer.Enforce, f :: _ ->
          Error
            (Printf.sprintf "static analysis rejected PAL %S (%s): %s" t.name
               (Sea_analysis.Report.verdict report)
               (Sea_analysis.Finding.to_string f))
      | _ -> Ok ())
let code_size t = String.length t.code

let pages_needed t =
  (String.length t.code + Sea_hw.Memory.page_size - 1) / Sea_hw.Memory.page_size
