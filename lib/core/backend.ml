open Sea_sim
open Sea_hw

type kind = Current | Proposed | Sfi

let all = [ Current; Proposed; Sfi ]

let kind_name = function
  | Current -> "current hw"
  | Proposed -> "proposed hw"
  | Sfi -> "sfi"

let cli_name = function
  | Current -> "current"
  | Proposed -> "proposed"
  | Sfi -> "sfi"

let of_cli_name s =
  match String.lowercase_ascii (String.trim s) with
  | "current" -> Some Current
  | "proposed" -> Some Proposed
  | "sfi" -> Some Sfi
  | _ -> None

type op =
  | Op_launch
  | Op_resume
  | Op_yield
  | Op_release
  | Op_quote
  | Op_seal
  | Op_unseal

type instance = {
  kind : kind;
  run_slice :
    cpu:int ->
    ?budget:Time.t ->
    unit ->
    ([ `Yielded | `Finished ], string) result;
  resume : cpu:int -> (unit, string) result;
  suspended : unit -> bool;
  output : unit -> string option;
  kill : unit -> (unit, string) result;
  release : unit -> unit;
  save_state : cpu:int -> tag:string -> (string option, string) result;
  load_state : cpu:int -> string -> (unit, string) result;
  quote : nonce:string -> (Sea_tpm.Tpm.quote * Time.t, string) result;
}

type t = {
  kind : kind;
  name : string;
  resident : bool;
  check_machine : Machine.t -> (unit, string) result;
  pool : Machine.t -> int;
  extra_cost : op -> Time.t;
  oneshot :
    Machine.t ->
    cpu:int ->
    ?preemption_timer:Time.t ->
    ?analyze:Sea_analysis.Analyzer.gate ->
    ?retry:Sea_fault.Retry.policy ->
    ?tpm_cap:Sea_tpm.Cap.t ->
    Pal.t ->
    input:string ->
    (string, string) result;
  launch :
    Machine.t ->
    cpu:int ->
    ?preemption_timer:Time.t ->
    ?analyze:Sea_analysis.Analyzer.gate ->
    ?retry:Sea_fault.Retry.policy ->
    ?tpm_cap:Sea_tpm.Cap.t ->
    Pal.t ->
    input:string ->
    (instance, string) result;
}

(* Drive a resident instance to completion: the preemption loop one-shot
   execution shares with the serving layer, so a yielding image means
   "resume and keep going", not an error. *)
let drive_oneshot launch m ~cpu ?preemption_timer ?analyze ?retry ?tpm_cap
    pal ~input =
  match launch m ~cpu ?preemption_timer ?analyze ?retry ?tpm_cap pal ~input with
  | Error e -> Error e
  | Ok inst ->
      let rec go () =
        match inst.run_slice ~cpu () with
        | Error e -> Error e
        | Ok `Yielded -> (
            match inst.resume ~cpu with
            | Ok () -> go ()
            | Error e -> Error e)
        | Ok `Finished -> (
            match inst.output () with
            | Some out -> Ok out
            | None -> Error "PAL finished without output")
      in
      let result = go () in
      (* A failed resume leaves the PAL suspended; tear it down so its
         pages (and sePCR, on proposed hardware) are reclaimed. *)
      (match result with
      | Error _ when inst.suspended () -> ignore (inst.kill ())
      | _ -> ());
      inst.release ();
      result

let no_extra_cost (_ : op) = Time.zero

(* --- Today's hardware: a full Flicker-style session per execution --- *)

let current =
  {
    kind = Current;
    name = kind_name Current;
    resident = false;
    check_machine = (fun _ -> Ok ());
    pool = (fun _ -> 0);
    extra_cost = no_extra_cost;
    oneshot =
      (fun m ~cpu ?preemption_timer:_ ?analyze ?retry ?tpm_cap pal ~input ->
        match Session.execute m ~cpu ?analyze ?retry ?tpm_cap pal ~input with
        | Ok o -> Ok o.Session.output
        | Error e -> Error e);
    launch =
      (fun _ ~cpu:_ ?preemption_timer:_ ?analyze:_ ?retry:_ ?tpm_cap:_ _
           ~input:_ -> Error "current hw hosts no resident PALs");
  }

(* --- Proposed hardware: resident SLAUNCH sessions, sePCR-bound --- *)

let proposed_launch m ~cpu ?preemption_timer ?analyze ?retry ?tpm_cap pal
    ~input =
  match
    Slaunch_session.start m ~cpu ?preemption_timer ?analyze ?retry ?tpm_cap
      pal ~input
  with
  | Error e -> Error e
  | Ok s ->
      let engine = m.Machine.engine in
      Ok
        {
          kind = Proposed;
          run_slice =
            (fun ~cpu ?budget () -> Slaunch_session.run_slice s ~cpu ?budget ());
          resume = (fun ~cpu -> Slaunch_session.resume s ~cpu);
          suspended =
            (fun () -> Slaunch_session.state s = Lifecycle.Suspend);
          output = (fun () -> Slaunch_session.output s);
          kill = (fun () -> Slaunch_session.kill s);
          release = (fun () -> Slaunch_session.release s);
          save_state =
            (fun ~cpu ~tag ->
              (* The sealed hand-off an evicted or migrated resident
                 leaves behind, bound to its sePCR identity. *)
              match Slaunch_session.sepcr_handle s with
              | None -> Ok None
              | Some h -> (
                  let tpm = Machine.tpm_exn m in
                  match
                    Sea_fault.Retry.run ?policy:retry ~engine (fun () ->
                        Sea_tpm.Tpm.seal tpm ~caller:(Sea_tpm.Tpm.Cpu cpu)
                          ~sepcr:h ~pcr_policy:[] tag)
                  with
                  | Ok blob -> Ok (Some blob)
                  | Error e -> Error e));
          load_state =
            (fun ~cpu blob ->
              match Slaunch_session.sepcr_handle s with
              | None -> Ok ()
              | Some h -> (
                  let tpm = Machine.tpm_exn m in
                  match
                    Sea_fault.Retry.run ?policy:retry ~engine (fun () ->
                        Sea_tpm.Tpm.unseal tpm ~caller:(Sea_tpm.Tpm.Cpu cpu)
                          ~sepcr:h blob)
                  with
                  | Ok _ -> Ok ()
                  | Error e -> Error e));
          quote = (fun ~nonce -> Slaunch_session.quote_after_exit s ~nonce);
        }

let proposed =
  {
    kind = Proposed;
    name = kind_name Proposed;
    resident = true;
    check_machine =
      (fun m ->
        if not m.Machine.config.Machine.proposed then
          Error "proposed mode requires the proposed hardware variant"
        else if m.Machine.config.Machine.sepcr_count < 1 then
          Error "proposed mode requires at least one sePCR"
        else Ok ());
    pool = (fun m -> m.Machine.config.Machine.sepcr_count);
    extra_cost = no_extra_cost;
    oneshot =
      (fun m ~cpu ?preemption_timer ?analyze ?retry ?tpm_cap pal ~input ->
        drive_oneshot proposed_launch m ~cpu ?preemption_timer ?analyze
          ?retry ?tpm_cap pal ~input);
    launch = proposed_launch;
  }

(* --- Software fault isolation: no late launch, no sePCR scarcity --- *)

let sfi_launch m ~cpu ?preemption_timer ?analyze ?retry ?tpm_cap pal ~input =
  match
    Sfi_session.start m ~cpu ?preemption_timer ?analyze ?retry ?tpm_cap pal
      ~input
  with
  | Error e -> Error e
  | Ok s ->
      Ok
        {
          kind = Sfi;
          run_slice =
            (fun ~cpu ?budget () -> Sfi_session.run_slice s ~cpu ?budget ());
          resume = (fun ~cpu -> Sfi_session.resume s ~cpu);
          suspended = (fun () -> Sfi_session.state s = Lifecycle.Suspend);
          output = (fun () -> Sfi_session.output s);
          kill = (fun () -> Sfi_session.kill s);
          release = (fun () -> Sfi_session.release s);
          save_state =
            (fun ~cpu ~tag ->
              match Sfi_session.seal_blob s ~cpu tag with
              | Ok blob -> Ok (Some blob)
              | Error e -> Error e);
          load_state =
            (fun ~cpu blob ->
              match Sfi_session.unseal_blob s ~cpu blob with
              | Ok _ -> Ok ()
              | Error e -> Error e);
          quote = (fun ~nonce -> Sfi_session.quote s ~nonce);
        }

let sfi =
  let p = Sfi_session.default_profile in
  {
    kind = Sfi;
    name = kind_name Sfi;
    resident = true;
    (* Software isolation asks nothing of the platform: it runs on the
       commodity configs, proposed variants and TPM-less machines alike. *)
    check_machine = (fun _ -> Ok ());
    pool = (fun _ -> max_int);
    extra_cost =
      (function
      | Op_launch -> p.Sfi_session.launch_base
      | Op_resume | Op_yield -> p.Sfi_session.transition
      | Op_release | Op_quote -> Time.zero
      | Op_seal -> p.Sfi_session.seal_base
      | Op_unseal -> p.Sfi_session.unseal_base);
    oneshot =
      (fun m ~cpu ?preemption_timer ?analyze ?retry ?tpm_cap pal ~input ->
        drive_oneshot sfi_launch m ~cpu ?preemption_timer ?analyze ?retry
          ?tpm_cap pal ~input);
    launch = sfi_launch;
  }

let of_kind = function
  | Current -> current
  | Proposed -> proposed
  | Sfi -> sfi
