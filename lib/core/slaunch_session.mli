(** PAL execution on the {e proposed} hardware (§5): SLAUNCH lifecycle,
    hardware-isolated context switches, sePCR-based attestation.

    Where a {!Session} freezes the whole platform and pays TPM Seal/Unseal
    on every switch, a [Slaunch_session] runs a PAL concurrently with the
    untrusted OS and switches it in and out at roughly VM-entry/exit cost:
    its state is protected by the memory controller's access-control
    table, not by TPM sealed storage (§5.3.2).

    Execution model: the PAL's application work ([Pal.compute_time]) is
    consumed in slices under the OS's preemption-timer budget; its
    functional behaviour runs when the work completes, in the final slice,
    with sealed storage bound to the sePCR measurement (§5.4.4). *)

type t

val start :
  Sea_hw.Machine.t ->
  cpu:int ->
  ?preemption_timer:Sea_sim.Time.t ->
  ?analyze:Sea_analysis.Analyzer.gate ->
  ?analysis_policy:Sea_analysis.Analyzer.policy ->
  ?on_report:(Sea_analysis.Report.t -> unit) ->
  ?retry:Sea_fault.Retry.policy ->
  ?tpm_cap:Sea_tpm.Cap.t ->
  Pal.t ->
  input:string ->
  (t, string) result
(** Allocate pages + SECB, load the PAL, and SLAUNCH it for the first time
    (Protect → Measure → Execute). The PAL is left {e executing} on
    [cpu]; drive it with {!run_slice}.

    [?analyze] (default [Off]) runs {!Pal.preflight} first: under
    [Enforce] a PALVM image with error findings is refused before any
    SECB is allocated or the sePCR extended.

    [?retry] is remembered for the session's lifetime: transient TPM
    faults (see [Sea_fault]) around the first SLAUNCH, every {!resume},
    and the PAL's seal/unseal services are retried with virtual-time
    backoff. A retried first launch re-protects and re-measures the PAL
    from scratch (the failed attempt backs out its sePCR and page
    claim); a resume that still fails after retries leaves the session
    in [Suspend], so the caller can {!kill} it and cold-start a
    replacement.

    [?tpm_cap] routes the PAL's data-path TPM services (seal, unseal,
    randomness) — default the hardware TPM, unchanged. The SLAUNCH
    measurement and the sePCR chain always stay on hardware regardless
    of the capability. *)

val state : t -> Lifecycle.state
val secb : t -> Sea_hw.Secb.t
val measurement : t -> string
val output : t -> string option
(** Available once the lifecycle reaches [Done] via SFREE. *)

val sepcr_handle : t -> Sea_tpm.Sepcr.handle option
(** The handle the PAL outputs for untrusted code to quote (§5.4.1). *)

val run_slice :
  t -> cpu:int -> ?budget:Sea_sim.Time.t -> unit -> ([ `Yielded | `Finished ], string) result
(** Consume up to [budget] (default: the SECB's preemption timer, else all
    remaining work) of the PAL's work on [cpu]. If work remains
    afterwards the hardware preempts/yields ([`Yielded], lifecycle →
    Suspend). When the work completes within budget the behaviour runs,
    SFREE executes and the result is [`Finished] (lifecycle → Done). *)

val resume : t -> cpu:int -> (unit, string) result
(** SLAUNCH with the Measured Flag set; Suspend → Execute, possibly on a
    different CPU. *)

(** {1 Multicore PALs (§6)} *)

val join : t -> cpu:int -> (unit, string) result
(** SJOIN an additional core to the executing PAL: its remaining work is
    then consumed [worker_count] times faster per slice. *)

val leave : t -> cpu:int -> (unit, string) result
(** SLEAVE a joined core. The primary core cannot leave. *)

val worker_count : t -> int
(** CPUs currently executing this PAL (1 when running single-core, 0
    when suspended or done). Yielding automatically SLEAVEs any joined
    cores first — suspension requires a single owner (§5.2's page-state
    machine) — so after a resume the OS re-joins helpers as it sees
    fit. *)

val kill : t -> (unit, string) result
(** SKILL a suspended PAL from untrusted code (§5.5): pages erased and
    released, sePCR extended with the SKILL constant and freed. *)

val quote_after_exit :
  t -> nonce:string -> (Sea_tpm.Tpm.quote * Sea_sim.Time.t, string) result
(** Untrusted code generates the attestation once the PAL is [Done]:
    TPM_Quote over the PAL's sePCR (permitted exactly in the Quote state;
    the sePCR then becomes Free, §5.4.3). *)

val expected_sepcr : Pal.t -> string
(** The sePCR value a correct SLAUNCH of [pal] produces:
    SHA1(zeroes ∥ SHA1(code)). *)

val release : t -> unit
(** Return the session's pages to the OS allocator. Call after [Done]. *)
