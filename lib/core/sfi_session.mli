(** PAL execution under software fault isolation: no hardware late launch,
    no TPM round-trip on the transition path.

    The third point on the isolation-cost curve, after {!Session} (today's
    hardware, whole-platform freeze) and {!Slaunch_session} (the proposed
    hardware). An SFI PAL is sandboxed by inline bounds checks and a thin
    monitor on commodity virtualization hardware — the "isolation without
    taxation" design point: transitions cost a VM-exit round trip
    (microseconds) instead of a TPM suspend/resume (hundreds of
    milliseconds) or an SLAUNCH instruction.

    What is given up: per-session hardware attestation. Trust is rooted
    once, at boot, in the measured loader/monitor; each PAL's identity is
    a software measurement chain the monitor maintains
    (SHA1(zeroes ∥ SHA1(code)), the same shape as the sePCR chain), and
    sealed storage binds to that chain — through a {!Sea_tpm.Cap.t}
    binding when a capability (e.g. a vTPM) is supplied, through the
    monitor's own AEAD vault otherwise. There is no sePCR bank and hence
    no sePCR scarcity: any number of SFI PALs stay resident at once.

    All costs are charged in virtual time from a {!profile}; the machine's
    TPM, bus and late-launch hardware are never touched on the
    launch/yield/resume path, so this backend also runs on TPM-less
    machines (Tyan). *)

type profile = {
  transition : Sea_sim.Time.t;
      (** One crossing of the sandbox boundary (enter or exit): the
          VM-exit-class cost every yield, resume, kill and final exit
          pays. *)
  launch_base : Sea_sim.Time.t;
      (** Fixed launch cost: stub patching, page-table setup. *)
  hash_per_byte : Sea_sim.Time.t;
      (** Software SHA-1 over the code at launch (the loader
          measurement) and over data passed to [extend_measurement]. *)
  seal_base : Sea_sim.Time.t;
  seal_per_byte : Sea_sim.Time.t;
  unseal_base : Sea_sim.Time.t;
  unseal_per_byte : Sea_sim.Time.t;
      (** Software AEAD in the monitor's vault — used only when no
          capability routes seal/unseal elsewhere. *)
}

val default_profile : profile
(** 1.4 µs transitions (a VM exit + entry on post-2008 hardware), 25 µs
    launch base, ~1 ns/byte hashing, µs-class software seal/unseal. *)

type t

val start :
  Sea_hw.Machine.t ->
  cpu:int ->
  ?preemption_timer:Sea_sim.Time.t ->
  ?profile:profile ->
  ?analyze:Sea_analysis.Analyzer.gate ->
  ?analysis_policy:Sea_analysis.Analyzer.policy ->
  ?on_report:(Sea_analysis.Report.t -> unit) ->
  ?retry:Sea_fault.Retry.policy ->
  ?tpm_cap:Sea_tpm.Cap.t ->
  Pal.t ->
  input:string ->
  (t, string) result
(** Measure and load the PAL into the sandbox, leaving it executing on
    [cpu]. Same lifecycle as {!Slaunch_session}
    (Protect → Measure → Execute), same [?analyze] preflight gate.
    [?retry] wraps capability seal/unseal calls; the launch path itself
    has nothing to retry (no TPM). *)

val state : t -> Lifecycle.state
val measurement : t -> string
val output : t -> string option

val chain : t -> string
(** The PAL's software measurement chain: rooted at the loader
    measurement, extended by [extend_measurement]. *)

val expected_chain : Pal.t -> string
(** The chain a correct launch of [pal] roots:
    SHA1(zeroes ∥ SHA1(code)) — deliberately the same shape as
    {!Slaunch_session.expected_sepcr}. *)

val run_slice :
  t ->
  cpu:int ->
  ?budget:Sea_sim.Time.t ->
  unit ->
  ([ `Yielded | `Finished ], string) result
(** Consume up to [budget] (default: the preemption timer given at
    {!start}, else all remaining work) of the PAL's work. Yielding or
    finishing charges one {!profile.transition} for the sandbox exit. *)

val resume : t -> cpu:int -> (unit, string) result
(** Suspend → Execute at one transition cost — this is the whole point. *)

val kill : t -> (unit, string) result
(** Tear down a suspended PAL: the monitor scrubs its pages. *)

val seal_blob : t -> cpu:int -> string -> (string, string) result
(** Seal [data] bound to this PAL's loader-rooted identity (via the
    capability's binding, or the monitor vault). Used by the serving
    layer for durable resident state and by the PAL's own [seal]
    service. *)

val unseal_blob : t -> cpu:int -> string -> (string, string) result
(** Inverse of {!seal_blob}; fails on a blob sealed by a different code
    identity. Works across sessions of the same PAL (the binding is the
    identity, not the session). *)

val quote : t -> nonce:string -> (Sea_tpm.Tpm.quote * Sea_sim.Time.t, string) result
(** Attestation after [Done]: a hardware TPM quote over the {e boot}
    chain (PCR 0 — the measured loader/monitor), the once-per-boot root
    this backend substitutes for per-session late-launch evidence.
    Errors on a TPM-less machine. *)

val release : t -> unit
(** Return the sandbox pages to the OS allocator. Idempotent. *)
