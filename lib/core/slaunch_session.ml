open Sea_sim
open Sea_crypto
open Sea_hw

type t = {
  machine : Machine.t;
  pal : Pal.t;
  secb : Secb.t;
  input : string;
  mutable state : Lifecycle.state;
  mutable remaining : Time.t;
  mutable output : string option;
  mutable behavior_error : string option;
  mutable released : bool;
  mutable primary_cpu : int;
  mutable joined_cpus : int list;
  retry : Sea_fault.Retry.policy option;
  tpm_cap : Sea_tpm.Cap.t option;
}

let state t = t.state
let secb t = t.secb
let measurement t = Pal.measurement t.pal
let output t = t.output
let sepcr_handle t = t.secb.Secb.sepcr

let zero_pcr = String.make Sea_tpm.Pcr.digest_size '\000'
let expected_sepcr pal = Sha1.digest (zero_pcr ^ Pal.measurement pal)

let step t ev =
  match Lifecycle.step t.state ev with
  | Ok s -> t.state <- s
  | Error e -> invalid_arg ("Slaunch_session: " ^ e)

let start (m : Machine.t) ~cpu ?preemption_timer ?analyze ?analysis_policy
    ?on_report ?retry ?tpm_cap pal ~input =
  if not m.Machine.config.Machine.proposed then
    Error "this machine lacks the proposed hardware"
  else begin
    (* The static-analysis gate runs before SECB allocation and SLAUNCH:
       a refused image is never protected, measured or executed. *)
    match Pal.preflight ?policy:analysis_policy ?analyze ?on_report pal with
    | Error e -> Error e
    | Ok () ->
    let page_count = 1 + Pal.pages_needed pal in
    let pages = Machine.alloc_pages m page_count in
    let secb =
      Secb.create ~id:(Machine.fresh_secb_id m) ~pages
        ~entry_point:0 ~pal_length:(Pal.code_size pal) ?preemption_timer ()
    in
    let memory = Memctrl.memory m.Machine.memctrl in
    Memory.write_span memory ~pages:(Secb.data_pages secb) ~off:0 pal.Pal.code;
    let t =
      {
        machine = m;
        pal;
        secb;
        input;
        state = Lifecycle.Start;
        remaining = pal.Pal.compute_time;
        output = None;
        behavior_error = None;
        released = false;
        primary_cpu = cpu;
        joined_cpus = [];
        retry;
        tpm_cap;
      }
    in
    step t Lifecycle.Ev_slaunch_first;
    (* A transiently failed first SLAUNCH backed out its claim and sePCR,
       so the retry re-protects and re-measures from scratch. *)
    match
      Sea_trace.Trace.with_span m.Machine.engine ~cat:"session"
        ~args:(fun () -> [ ("pal", Sea_trace.Trace.Str pal.Pal.name) ])
        "slaunch-start"
        (fun () ->
          Sea_fault.Retry.run ?policy:retry ~engine:m.Machine.engine
            (fun () -> Insn.slaunch m ~cpu secb))
    with
    | Error e ->
        Machine.free_pages m pages;
        Error e
    | Ok Insn.Resumed ->
        Machine.free_pages m pages;
        Error "fresh SECB unexpectedly resumed"
    | Ok (Insn.Launched _measurement) ->
        step t Lifecycle.Ev_protected;
        step t Lifecycle.Ev_measured;
        Ok t
  end

let services t ~cpu =
  let m = t.machine in
  let tpm = Machine.tpm_exn m in
  let caller = Sea_tpm.Tpm.Cpu cpu in
  let sepcr =
    match t.secb.Secb.sepcr with
    | Some h -> h
    | None -> invalid_arg "Slaunch_session.services: no sePCR bound"
  in
  let retry_run f =
    Sea_fault.Retry.run ?policy:t.retry ~engine:m.Machine.engine f
  in
  let cap =
    match t.tpm_cap with Some c -> c | None -> Sea_tpm.Cap.of_tpm tpm
  in
  {
    Pal.seal =
      (fun data ->
        retry_run (fun () ->
            cap.Sea_tpm.Cap.seal ~caller ~sepcr ~pcr_policy:[] data));
    unseal =
      (fun blob ->
        retry_run (fun () -> cap.Sea_tpm.Cap.unseal ~caller ~sepcr blob));
    get_random = (fun n -> cap.Sea_tpm.Cap.get_random n);
    extend_measurement =
      (* The measurement chain is the hardware sePCR — a capability never
         virtualizes it (vTPM caps pass this straight through). *)
      (fun data -> ignore (cap.Sea_tpm.Cap.sepcr_extend ~caller sepcr data));
    machine_name = m.Machine.config.Machine.name;
  }

let worker_count t =
  if t.state = Lifecycle.Execute then 1 + List.length t.joined_cpus else 0

let join t ~cpu =
  if t.state <> Lifecycle.Execute then Error "PAL is not executing"
  else if cpu = t.primary_cpu || List.mem cpu t.joined_cpus then
    Error "CPU already in the PAL"
  else begin
    match Insn.sjoin t.machine ~cpu t.secb with
    | Error e -> Error e
    | Ok () ->
        t.joined_cpus <- cpu :: t.joined_cpus;
        Ok ()
  end

let leave t ~cpu =
  if not (List.mem cpu t.joined_cpus) then Error "CPU not joined"
  else begin
    match Insn.sleave t.machine ~cpu t.secb with
    | Error e -> Error e
    | Ok () ->
        t.joined_cpus <- List.filter (fun c -> c <> cpu) t.joined_cpus;
        Ok ()
  end

(* Suspension requires a single page owner: joined helpers SLEAVE first. *)
let shed_helpers t =
  let rec go = function
    | [] -> Ok ()
    | cpu :: rest -> (
        match leave t ~cpu with Error e -> Error e | Ok () -> go rest)
  in
  go t.joined_cpus

let run_slice t ~cpu ?budget () =
  if t.state <> Lifecycle.Execute then Error "PAL is not executing"
  else begin
    let m = t.machine in
    Sea_trace.Trace.with_span m.Machine.engine ~cat:"session"
      ~args:(fun () -> [ ("pal", Sea_trace.Trace.Str t.pal.Pal.name) ])
      "run-slice"
    @@ fun () ->
    let rate = 1 + List.length t.joined_cpus in
    let budget =
      match budget with
      | Some b -> b
      | None -> (
          match t.secb.Secb.preemption_timer with
          | Some timer -> timer
          | None -> t.remaining)
    in
    let progress = Time.scale budget rate in
    if progress < t.remaining then begin
      (* The preemption timer fires before the work completes. *)
      Engine.advance m.Machine.engine budget;
      t.remaining <- Time.sub t.remaining progress;
      match shed_helpers t with
      | Error e -> Error e
      | Ok () -> (
          match Insn.syield m ~cpu t.secb with
          | Error e -> Error e
          | Ok () ->
              step t Lifecycle.Ev_yield;
              Ok `Yielded)
    end
    else begin
      (* Wall-clock to finish = remaining work spread over the workers. *)
      Engine.advance m.Machine.engine
        (Time.scale_f t.remaining (1. /. float_of_int rate));
      t.remaining <- Time.zero;
      (* Work done: run the functional behaviour, then exit via SFREE. *)
      let result = t.pal.Pal.behavior (services t ~cpu) t.input in
      (match result with
      | Ok out -> t.output <- Some out
      | Error e -> t.behavior_error <- Some e);
      match shed_helpers t with
      | Error e -> Error e
      | Ok () -> (
      match Insn.sfree m ~cpu t.secb with
      | Error e -> Error e
      | Ok () -> (
          step t Lifecycle.Ev_sfree;
          match t.behavior_error with
          | Some e -> Error ("PAL behaviour failed: " ^ e)
          | None -> Ok `Finished))
    end
  end

let resume t ~cpu =
  if t.state <> Lifecycle.Suspend then Error "PAL is not suspended"
  else begin
    (* A failed resume leaves the pages suspended and the lifecycle in
       Suspend: the caller may retry again, SKILL the PAL, or fall back
       to a cold start. *)
    match
      Sea_trace.Trace.with_span t.machine.Machine.engine ~cat:"session"
        ~args:(fun () -> [ ("pal", Sea_trace.Trace.Str t.pal.Pal.name) ])
        "slaunch-resume"
        (fun () ->
          Sea_fault.Retry.run ?policy:t.retry ~engine:t.machine.Machine.engine
            (fun () -> Insn.slaunch t.machine ~cpu t.secb))
    with
    | Error e -> Error e
    | Ok (Insn.Launched _) -> Error "suspended SECB was re-measured"
    | Ok Insn.Resumed ->
        t.primary_cpu <- cpu;
        step t Lifecycle.Ev_slaunch_resume;
        Ok ()
  end

let kill t =
  if t.state <> Lifecycle.Suspend then Error "SKILL targets a suspended PAL"
  else begin
    Sea_trace.Trace.with_span t.machine.Machine.engine ~cat:"session"
      ~args:(fun () -> [ ("pal", Sea_trace.Trace.Str t.pal.Pal.name) ])
      "skill"
    @@ fun () ->
    match Insn.skill t.machine t.secb with
    | Error e -> Error e
    | Ok () ->
        step t Lifecycle.Ev_skill;
        Ok ()
  end

let quote_after_exit t ~nonce =
  if t.state <> Lifecycle.Done then Error "PAL has not exited"
  else begin
    match t.secb.Secb.sepcr with
    | None -> Error "no sePCR handle"
    | Some h -> (
        let tpm = Machine.tpm_exn t.machine in
        let engine = t.machine.Machine.engine in
        let t0 = Engine.now engine in
        match
          Sea_tpm.Tpm.quote tpm ~caller:Sea_tpm.Tpm.Software ~sepcr:h ~selection:[]
            ~nonce ()
        with
        | Error e -> Error e
        | Ok q -> Ok (q, Time.sub (Engine.now engine) t0))
  end

let release t =
  if not t.released then begin
    t.released <- true;
    Machine.free_pages t.machine t.secb.Secb.pages
  end
