open Sea_sim
open Sea_crypto
open Sea_hw

type profile = {
  transition : Time.t;
  launch_base : Time.t;
  hash_per_byte : Time.t;
  seal_base : Time.t;
  seal_per_byte : Time.t;
  unseal_base : Time.t;
  unseal_per_byte : Time.t;
}

let default_profile =
  {
    transition = Time.us 1.4;
    launch_base = Time.us 25.;
    hash_per_byte = Time.ns 1;
    seal_base = Time.us 3.;
    seal_per_byte = Time.ns 2;
    unseal_base = Time.us 3.;
    unseal_per_byte = Time.ns 2;
  }

type t = {
  machine : Machine.t;
  pal : Pal.t;
  input : string;
  profile : profile;
  pages : int list;
  preemption_timer : Time.t option;
  session_id : int;
  root : string;  (** Loader-rooted identity; seal binding and vault key. *)
  mutable chain : string;
  mutable state : Lifecycle.state;
  mutable remaining : Time.t;
  mutable output : string option;
  mutable behavior_error : string option;
  mutable released : bool;
  mutable rng_counter : int;
  mutable seal_counter : int;
  retry : Sea_fault.Retry.policy option;
  tpm_cap : Sea_tpm.Cap.t option;
}

let state t = t.state
let measurement t = Pal.measurement t.pal
let output t = t.output
let chain t = t.chain

let zero_pcr = String.make Sea_tpm.Pcr.digest_size '\000'
let expected_chain pal = Sha1.digest (zero_pcr ^ Pal.measurement pal)

let step t ev =
  match Lifecycle.step t.state ev with
  | Ok s -> t.state <- s
  | Error e -> invalid_arg ("Sfi_session: " ^ e)

let charge t d = Engine.advance t.machine.Machine.engine d

let charge_hash t n = charge t (Time.scale t.profile.hash_per_byte n)

let with_span t name f =
  Sea_trace.Trace.with_span t.machine.Machine.engine ~cat:"backend"
    ~args:(fun () -> [ ("pal", Sea_trace.Trace.Str t.pal.Pal.name) ])
    name f

let start (m : Machine.t) ~cpu:_ ?preemption_timer
    ?(profile = default_profile) ?analyze ?analysis_policy ?on_report ?retry
    ?tpm_cap pal ~input =
  (* Same contract as SLAUNCH: a refused image is never loaded or
     measured. *)
  match Pal.preflight ?policy:analysis_policy ?analyze ?on_report pal with
  | Error e -> Error e
  | Ok () ->
      let pages = Machine.alloc_pages m (Pal.pages_needed pal) in
      let memory = Memctrl.memory m.Machine.memctrl in
      Memory.write_span memory ~pages ~off:0 pal.Pal.code;
      let t =
        {
          machine = m;
          pal;
          input;
          profile;
          pages;
          preemption_timer;
          session_id = Machine.fresh_secb_id m;
          root = expected_chain pal;
          chain = expected_chain pal;
          state = Lifecycle.Start;
          remaining = pal.Pal.compute_time;
          output = None;
          behavior_error = None;
          released = false;
          rng_counter = 0;
          seal_counter = 0;
          retry;
          tpm_cap;
        }
      in
      step t Lifecycle.Ev_slaunch_first;
      with_span t "sfi-launch" (fun () ->
          (* Stub patching + page tables, then the software loader
             measurement over the code bytes. No bus, no TPM. *)
          charge t profile.launch_base;
          charge_hash t (Pal.code_size pal));
      step t Lifecycle.Ev_protected;
      step t Lifecycle.Ev_measured;
      Ok t

(* --- Sealed storage: bind to the loader-rooted identity --- *)

let binding t = "sfi:" ^ Sha1.hex t.root

let vault_key t =
  Hmac.sha256 ~key:("sfi-vault:" ^ t.machine.Machine.config.Machine.name)
    t.root

let seal_blob t ~cpu data =
  charge t
    (Time.add t.profile.seal_base
       (Time.scale t.profile.seal_per_byte (String.length data)));
  match t.tpm_cap with
  | Some cap ->
      Sea_fault.Retry.run ?policy:t.retry ~engine:t.machine.Machine.engine
        (fun () ->
          cap.Sea_tpm.Cap.seal ~caller:(Sea_tpm.Tpm.Cpu cpu)
            ~binding:(binding t) ~pcr_policy:[] data)
  | None ->
      let key = vault_key t in
      (* Fresh (key, nonce) per seal: the session id and a counter feed
         the nonce derivation; unsealing only needs the key. *)
      let nonce =
        String.sub
          (Hmac.sha256 ~key
             (Printf.sprintf "nonce:%d:%d" t.session_id t.seal_counter))
          0 Aead.nonce_size
      in
      t.seal_counter <- t.seal_counter + 1;
      Ok (nonce ^ Aead.encrypt ~key ~nonce data)

let unseal_blob t ~cpu blob =
  charge t
    (Time.add t.profile.unseal_base
       (Time.scale t.profile.unseal_per_byte (String.length blob)));
  match t.tpm_cap with
  | Some cap ->
      Sea_fault.Retry.run ?policy:t.retry ~engine:t.machine.Machine.engine
        (fun () ->
          cap.Sea_tpm.Cap.unseal ~caller:(Sea_tpm.Tpm.Cpu cpu)
            ~binding:(binding t) blob)
  | None ->
      if String.length blob < Aead.nonce_size then
        Error "sealed-blob binding mismatch"
      else begin
        let nonce = String.sub blob 0 Aead.nonce_size in
        let ct =
          String.sub blob Aead.nonce_size (String.length blob - Aead.nonce_size)
        in
        match Aead.decrypt ~key:(vault_key t) ~nonce ct with
        | Some p -> Ok p
        | None -> Error "sealed-blob binding mismatch"
      end

let services t ~cpu =
  {
    Pal.seal = (fun data -> seal_blob t ~cpu data);
    unseal = (fun blob -> unseal_blob t ~cpu blob);
    get_random =
      (fun n ->
        match t.tpm_cap with
        | Some cap -> cap.Sea_tpm.Cap.get_random n
        | None ->
            (* Monitor-local deterministic stream, same spirit as the
               TPM DRBG but with no bus round trip. *)
            let buf = Buffer.create n in
            while Buffer.length buf < n do
              Buffer.add_string buf
                (Hmac.sha256 ~key:(vault_key t)
                   (Printf.sprintf "rng:%d:%d" t.session_id t.rng_counter));
              t.rng_counter <- t.rng_counter + 1
            done;
            Buffer.sub buf 0 n);
    extend_measurement =
      (fun data ->
        charge_hash t (String.length data);
        t.chain <- Sha1.digest (t.chain ^ data));
    machine_name = t.machine.Machine.config.Machine.name;
  }

let run_slice t ~cpu ?budget () =
  if t.state <> Lifecycle.Execute then Error "PAL is not executing"
  else begin
    with_span t "sfi-slice" @@ fun () ->
    let budget =
      match budget with
      | Some b -> b
      | None -> (
          match t.preemption_timer with
          | Some timer -> timer
          | None -> t.remaining)
    in
    if budget < t.remaining then begin
      (* The slice expires first: run for the budget, then one sandbox
         exit back to the host — the entirety of the yield cost. *)
      charge t budget;
      t.remaining <- Time.sub t.remaining budget;
      charge t t.profile.transition;
      step t Lifecycle.Ev_yield;
      Ok `Yielded
    end
    else begin
      charge t t.remaining;
      t.remaining <- Time.zero;
      let result = t.pal.Pal.behavior (services t ~cpu) t.input in
      (match result with
      | Ok out -> t.output <- Some out
      | Error e -> t.behavior_error <- Some e);
      (* Final exit: the monitor scrubs nothing yet (pages are reused on
         release), it just crosses the boundary once. *)
      charge t t.profile.transition;
      step t Lifecycle.Ev_sfree;
      match t.behavior_error with
      | Some e -> Error ("PAL behaviour failed: " ^ e)
      | None -> Ok `Finished
    end
  end

let resume t ~cpu:_ =
  if t.state <> Lifecycle.Suspend then Error "PAL is not suspended"
  else begin
    with_span t "sfi-resume" @@ fun () ->
    charge t t.profile.transition;
    step t Lifecycle.Ev_slaunch_resume;
    Ok ()
  end

let kill t =
  if t.state <> Lifecycle.Suspend then Error "kill targets a suspended PAL"
  else begin
    with_span t "sfi-kill" @@ fun () ->
    charge t t.profile.transition;
    step t Lifecycle.Ev_skill;
    Ok ()
  end

let quote t ~nonce =
  if t.state <> Lifecycle.Done then Error "PAL has not exited"
  else begin
    match t.machine.Machine.tpm with
    | None -> Error "machine has no TPM to root the boot chain in"
    | Some tpm -> (
        let engine = t.machine.Machine.engine in
        let t0 = Engine.now engine in
        match
          Sea_tpm.Tpm.quote tpm ~caller:Sea_tpm.Tpm.Software ~selection:[ 0 ]
            ~nonce ()
        with
        | Error e -> Error e
        | Ok q -> Ok (q, Time.sub (Engine.now engine) t0))
  end

let release t =
  if not t.released then begin
    t.released <- true;
    Machine.free_pages t.machine t.pages
  end
