open Sea_sim

type arch = Amd | Intel

type config = {
  name : string;
  arch : arch;
  cpu_count : int;
  cpu_ghz : float;
  memory_pages : int;
  tpm_vendor : Sea_tpm.Vendor.t option;
  tpm_profile : Sea_tpm.Timing.profile option;
  tpm_key_bits : int;
  sepcr_count : int;
  proposed : bool;
}

let base ~name ~arch ~cpu_count ~cpu_ghz ~tpm_vendor =
  {
    name;
    arch;
    cpu_count;
    cpu_ghz;
    memory_pages = 16384 (* 64 MB — ample for the workloads modelled *);
    tpm_vendor;
    tpm_profile = None;
    tpm_key_bits = 2048;
    sepcr_count = 0;
    proposed = false;
  }

let hp_dc5750 =
  base ~name:"HP dc5750" ~arch:Amd ~cpu_count:2 ~cpu_ghz:2.2
    ~tpm_vendor:(Some Sea_tpm.Vendor.Broadcom)

let tyan_n3600r =
  base ~name:"Tyan n3600R" ~arch:Amd ~cpu_count:4 ~cpu_ghz:1.8 ~tpm_vendor:None

let intel_tep =
  base ~name:"Intel TEP" ~arch:Intel ~cpu_count:2 ~cpu_ghz:2.66
    ~tpm_vendor:(Some Sea_tpm.Vendor.Atmel_tep)

let lenovo_t60 =
  base ~name:"Lenovo T60" ~arch:Intel ~cpu_count:2 ~cpu_ghz:2.0
    ~tpm_vendor:(Some Sea_tpm.Vendor.Atmel_t60)

let amd_infineon =
  base ~name:"AMD workstation (Infineon)" ~arch:Amd ~cpu_count:2 ~cpu_ghz:2.2
    ~tpm_vendor:(Some Sea_tpm.Vendor.Infineon)

let presets = [ hp_dc5750; tyan_n3600r; intel_tep; lenovo_t60; amd_infineon ]

let proposed_variant ?(sepcr_count = 8) config =
  if sepcr_count < 1 then
    invalid_arg "Machine.proposed_variant: sepcr_count must be >= 1";
  {
    config with
    name = config.name ^ " (proposed hw)";
    tpm_vendor =
      (match config.tpm_vendor with
      | Some v -> Some v
      | None -> Some Sea_tpm.Vendor.Broadcom);
    sepcr_count;
    proposed = true;
  }

let low_fidelity config = { config with tpm_key_bits = 512 }

type t = {
  config : config;
  engine : Engine.t;
  memctrl : Memctrl.t;
  tpm : Sea_tpm.Tpm.t option;
  cpus : Cpu.t array;
  mutable next_secb_id : int;
  mutable free_list : int list;
  allocated : (int, unit) Hashtbl.t;
}

let create ?engine config =
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let memory = Memory.create ~pages:config.memory_pages in
  let memctrl = Memctrl.create ~memory ~proposed:config.proposed in
  let tpm =
    match config.tpm_vendor with
    | None -> None
    | Some vendor ->
        Some
          (Sea_tpm.Tpm.create ~vendor ?profile:config.tpm_profile
             ~key_bits:config.tpm_key_bits ~sepcr_count:config.sepcr_count engine)
  in
  let free_list =
    (* Page 0 is reserved (legacy low memory). *)
    List.init (config.memory_pages - 1) (fun i -> i + 1)
  in
  {
    config;
    engine;
    memctrl;
    tpm;
    cpus = Array.init config.cpu_count (fun id -> Cpu.create ~id);
    next_secb_id = 1;
    free_list;
    allocated = Hashtbl.create 64;
  }

let engine t = t.engine
let now t = Engine.now t.engine

let tpm_exn t =
  match t.tpm with
  | Some tpm -> tpm
  | None -> invalid_arg (t.config.name ^ " has no TPM")

let cpu t i =
  if i < 0 || i >= Array.length t.cpus then
    invalid_arg (Printf.sprintf "Machine.cpu: index %d out of range" i);
  t.cpus.(i)

let fresh_secb_id t =
  let id = t.next_secb_id in
  t.next_secb_id <- id + 1;
  id

let alloc_pages t n =
  let rec take acc k rest =
    if k = 0 then (List.rev acc, rest)
    else
      match rest with
      | [] -> failwith "Machine.alloc_pages: out of memory"
      | p :: rest -> take (p :: acc) (k - 1) rest
  in
  let pages, rest = take [] n t.free_list in
  t.free_list <- rest;
  List.iter (fun p -> Hashtbl.replace t.allocated p ()) pages;
  pages

let free_pages t pages =
  List.iter
    (fun p ->
      if not (Hashtbl.mem t.allocated p) then
        invalid_arg (Printf.sprintf "Machine.free_pages: page %d not allocated" p);
      Hashtbl.remove t.allocated p)
    pages;
  t.free_list <- pages @ t.free_list

let idle_other_cpus t ~except =
  Array.iter (fun c -> if c.Cpu.id <> except then c.Cpu.status <- Cpu.Idle) t.cpus

let wake_cpus t =
  Array.iter
    (fun c -> if c.Cpu.status = Cpu.Idle then c.Cpu.status <- Cpu.Legacy)
    t.cpus
