(** A complete simulated platform: CPUs, memory behind the controller, and
    (usually) a TPM on the LPC bus — Figure 1's topology.

    Configurations model the five machines the paper measures, plus
    "proposed" variants with the recommended hardware: the per-page
    access-control table in the memory controller, the
    SLAUNCH/SYIELD/SFREE/SKILL instructions, and a TPM with a sePCR
    bank. *)

type arch = Amd | Intel

type config = {
  name : string;
  arch : arch;
  cpu_count : int;
  cpu_ghz : float;
  memory_pages : int;
  tpm_vendor : Sea_tpm.Vendor.t option;  (** [None] = no TPM (Tyan). *)
  tpm_profile : Sea_tpm.Timing.profile option;  (** Override, for ablations. *)
  tpm_key_bits : int;
  sepcr_count : int;  (** > 0 only with [proposed]. *)
  proposed : bool;  (** Recommended hardware present. *)
}

(** {1 Presets — the paper's test machines (§4.2, §4.3)} *)

val hp_dc5750 : config
(** 2.2 GHz AMD Athlon64 X2 4200+, Broadcom v1.2 TPM — the primary
    end-to-end machine (Figure 2, Table 1 row 1). *)

val tyan_n3600r : config
(** Two 1.8 GHz dual-core Opterons, {e no TPM} — isolates SKINIT's LPC
    cost (Table 1 row 2). *)

val intel_tep : config
(** 2.66 GHz Core 2 Duo, Atmel v1.2 TPM — the SENTER machine (Table 1
    row 3, Table 2). *)

val lenovo_t60 : config
(** Laptop with the other Atmel TPM (Figure 3). *)

val amd_infineon : config
(** AMD workstation with the Infineon TPM (Figure 3). *)

val presets : config list

val proposed_variant : ?sepcr_count:int -> config -> config
(** The same machine with the paper's recommended hardware (default 8
    sePCRs). Raises [Invalid_argument] if [sepcr_count < 1]. *)

val low_fidelity : config -> config
(** Shrink key sizes for fast unit tests (512-bit TPM keys). Timing is
    unaffected — latency comes from the vendor profile, not the crypto. *)

(** {1 The assembled machine} *)

type t = {
  config : config;
  engine : Sea_sim.Engine.t;
  memctrl : Memctrl.t;
  tpm : Sea_tpm.Tpm.t option;
  cpus : Cpu.t array;
  mutable next_secb_id : int;
  mutable free_list : int list;  (** Page allocator state. *)
  allocated : (int, unit) Hashtbl.t;
}

val create : ?engine:Sea_sim.Engine.t -> config -> t

val engine : t -> Sea_sim.Engine.t
val now : t -> Sea_sim.Time.t
val tpm_exn : t -> Sea_tpm.Tpm.t
(** Raises [Invalid_argument] on a TPM-less machine. *)

val cpu : t -> int -> Cpu.t
val fresh_secb_id : t -> int

val alloc_pages : t -> int -> int list
(** Allocate distinct free pages (model-level convenience standing in for
    the untrusted OS's page allocator). Raises [Failure] when memory is
    exhausted. *)

val free_pages : t -> int list -> unit
(** Return pages to the allocator. Raises [Invalid_argument] on a
    double-free. *)

val idle_other_cpus : t -> except:int -> unit
(** Put every core but [except] into the idle state SKINIT demands. *)

val wake_cpus : t -> unit
(** Return all idle cores to legacy execution. *)
