(** Physical memory: a flat array of 4 KB pages.

    Raw storage only — access control lives in {!Memctrl}, which is the
    single gateway through which CPUs and devices reach these pages
    (Figure 1: the north bridge sits between everything and RAM).

    Pages are allocated lazily on first write; an untouched page reads
    as zeroes. Creating a machine therefore costs O(page count) words,
    not 64 MB of zeroed buffers — what keeps building a whole simulated
    fleet cheap. *)

val page_size : int
(** 4096 bytes. *)

type t

val create : pages:int -> t
val page_count : t -> int

val read : t -> page:int -> off:int -> len:int -> string
(** Raises [Invalid_argument] when the range leaves the page. *)

val write : t -> page:int -> off:int -> string -> unit

val read_span : t -> pages:int list -> off:int -> len:int -> string
(** Read across a list of (not necessarily contiguous) pages treated as one
    linear region — how PAL code that straddles pages is fetched for
    measurement. *)

val write_span : t -> pages:int list -> off:int -> string -> unit

val zero_page : t -> int -> unit
(** Clear a page to zeroes (SKILL's erase, §5.5). *)
