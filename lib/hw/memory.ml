let page_size = 4096

(* Pages are materialised on first touch: a fresh machine's 64 MB of
   RAM is one option array, not 16k zeroed buffers. An untouched page
   reads as zeroes, exactly as if it had been allocated eagerly — this
   is what makes constructing a whole fleet of machines cheap. *)
type t = { pages : Bytes.t option array }

let create ~pages =
  if pages <= 0 then invalid_arg "Memory.create: page count must be positive";
  { pages = Array.make pages None }

let page_count t = Array.length t.pages

let check t ~page ~off ~len =
  if page < 0 || page >= Array.length t.pages then
    invalid_arg (Printf.sprintf "Memory: page %d out of range" page);
  if off < 0 || len < 0 || off + len > page_size then
    invalid_arg "Memory: access crosses page boundary"

let materialise t page =
  match t.pages.(page) with
  | Some b -> b
  | None ->
      let b = Bytes.make page_size '\000' in
      t.pages.(page) <- Some b;
      b

let read t ~page ~off ~len =
  check t ~page ~off ~len;
  match t.pages.(page) with
  | Some b -> Bytes.sub_string b off len
  | None -> String.make len '\000'

let write t ~page ~off data =
  check t ~page ~off ~len:(String.length data);
  Bytes.blit_string data 0 (materialise t page) off (String.length data)

let span_iter pages off len f =
  (* Visit (page, page_off, chunk_len, span_off) for a linear range laid
     over the page list. *)
  let arr = Array.of_list pages in
  let pos = ref off and remaining = ref len and span_off = ref 0 in
  while !remaining > 0 do
    let idx = !pos / page_size in
    if idx >= Array.length arr then invalid_arg "Memory: span too short";
    let page_off = !pos mod page_size in
    let chunk = min !remaining (page_size - page_off) in
    f arr.(idx) page_off chunk !span_off;
    pos := !pos + chunk;
    remaining := !remaining - chunk;
    span_off := !span_off + chunk
  done

let read_span t ~pages ~off ~len =
  let buf = Bytes.create len in
  span_iter pages off len (fun page page_off chunk span_off ->
      Bytes.blit_string (read t ~page ~off:page_off ~len:chunk) 0 buf span_off chunk);
  Bytes.to_string buf

let write_span t ~pages ~off data =
  span_iter pages off (String.length data) (fun page page_off chunk span_off ->
      write t ~page ~off:page_off (String.sub data span_off chunk))

let zero_page t page =
  check t ~page ~off:0 ~len:page_size;
  match t.pages.(page) with
  | Some b -> Bytes.fill b 0 page_size '\000'
  | None -> () (* never touched: already all zeroes *)
