open Sea_sim
open Sea_crypto

module Costs = struct
  let cpu_init = Time.us 6.
  let vm_enter = function Machine.Amd -> Time.ns 558 | Machine.Intel -> Time.ns 446
  let vm_exit = function Machine.Amd -> Time.ns 519 | Machine.Intel -> Time.ns 449
  let vm_jitter = 0.005
  let senter_acmod_bytes = 10496
  let senter_sig_verify = Time.us 17200.
  let cpu_hash_per_byte = Time.ns 121
  let state_clear = Time.us 0.2
  let page_erase = Time.us 1.
end

let skinit_max_bytes = 64 * 1024
let senter_max_bytes = 512 * 1024

(* Top-level instruction spans live in the "insn" category; work done on
   the main CPU (init microcode, ACMod verification, hashing) is "cpu".
   Bus and TPM time appears as child spans from those layers, so a
   category self-time breakdown reproduces the Table 1 decomposition. *)
let insn_span (m : Machine.t) name f =
  Sea_trace.Trace.with_span m.engine ~cat:"insn" name f

let cpu_init_advance (m : Machine.t) =
  Sea_trace.Trace.with_span m.engine ~cat:"cpu" "cpu-init" (fun () ->
      Engine.advance m.engine Costs.cpu_init)

let advance_jittered (m : Machine.t) mean =
  let rng = Engine.rng m.engine in
  let f = float_of_int (Time.to_ns mean) in
  let sample = Rng.gaussian rng ~mean:f ~stdev:(Costs.vm_jitter *. f) in
  Engine.advance m.engine (Time.ns (int_of_float (Float.max 0. sample)))

let vm_enter (m : Machine.t) ~cpu:_ = advance_jittered m (Costs.vm_enter m.config.arch)
let vm_exit (m : Machine.t) ~cpu:_ = advance_jittered m (Costs.vm_exit m.config.arch)

let others_idle (m : Machine.t) ~cpu =
  Array.for_all
    (fun c -> c.Cpu.id = cpu || c.Cpu.status = Cpu.Idle)
    m.cpus

(* Fetch the measured region as one string, via the controller so that a
   protection mistake in the model surfaces as an error, not silent data. *)
let fetch_region (m : Machine.t) ~cpu ~pages ~length =
  Memctrl.read_span m.memctrl (Memctrl.Cpu cpu) ~pages ~off:0 ~len:length

let skinit (m : Machine.t) ~cpu ~pages ~length =
  if m.config.arch <> Machine.Amd then Error "SKINIT is an AMD instruction"
  else if length < 0 || length > skinit_max_bytes then Error "SLB length exceeds 64 KB"
  else if not (others_idle m ~cpu) then
    Error "late launch requires all other CPUs idle"
  else begin
    insn_span m "SKINIT" @@ fun () ->
    let core = Machine.cpu m cpu in
    cpu_init_advance m;
    core.Cpu.interrupts_enabled <- false;
    Memctrl.dev_protect m.memctrl pages;
    if length = 0 then Ok (Sha1.digest "")
    else begin
      match fetch_region m ~cpu ~pages ~length with
      | Error e -> Error e
      | Ok code -> (
          match m.tpm with
          | None ->
              (* The Tyan n3600R configuration: SKINIT runs and the SLB
                 crosses the LPC bus wait-free, but no TPM receives it
                 (Table 1's "No TPM" row isolates the instruction cost). *)
              let lpc = Sea_bus.Lpc.create m.engine in
              Sea_bus.Lpc.transfer lpc ~device_wait:Time.zero ~bytes:length;
              Ok (Sha1.digest code)
          | Some tpm -> (
              let caller = Sea_tpm.Tpm.Cpu cpu in
              match Sea_tpm.Tpm.hash_start tpm ~caller with
              | Error e -> Error e
              | Ok () -> (
                  match Sea_tpm.Tpm.hash_data tpm code with
                  | Error e -> Error e
                  | Ok () -> (
                      match Sea_tpm.Tpm.hash_end tpm with
                      | Error e -> Error e
                      | Ok _pcr17 -> Ok (Sha1.digest code)))))
    end
  end

(* Deterministic synthetic ACMod contents: the chipset would verify an
   Intel signature; we model the verification cost and measure real bytes. *)
let acmod_bytes =
  lazy
    (let base = "INTEL-ACMOD-SIMULATED" in
     let buf = Buffer.create Costs.senter_acmod_bytes in
     while Buffer.length buf < Costs.senter_acmod_bytes do
       Buffer.add_string buf base
     done;
     Buffer.sub buf 0 Costs.senter_acmod_bytes)

let senter (m : Machine.t) ~cpu ~pages ~length =
  match m.tpm with
  | None -> Error "SENTER requires a TPM"
  | Some tpm ->
      if m.config.arch <> Machine.Intel then Error "SENTER is an Intel instruction"
      else if length < 0 || length > senter_max_bytes then
        Error "PAL exceeds the MPT-protected region"
      else if not (others_idle m ~cpu) then
        Error "late launch requires all other CPUs idle"
      else begin
        insn_span m "SENTER" @@ fun () ->
        let core = Machine.cpu m cpu in
        cpu_init_advance m;
        core.Cpu.interrupts_enabled <- false;
        Memctrl.dev_protect m.memctrl pages;
        let caller = Sea_tpm.Tpm.Cpu cpu in
        (* Phase 1: the ACMod crosses the LPC bus and lands in PCR 17. *)
        match Sea_tpm.Tpm.hash_start tpm ~caller with
        | Error e -> Error e
        | Ok () -> (
            match Sea_tpm.Tpm.hash_data tpm (Lazy.force acmod_bytes) with
            | Error e -> Error e
            | Ok () -> (
                match Sea_tpm.Tpm.hash_end tpm with
                | Error e -> Error e
                | Ok _pcr17 -> (
                    Sea_trace.Trace.with_span m.engine ~cat:"cpu" "sig-verify"
                      (fun () ->
                        Engine.advance m.engine Costs.senter_sig_verify);
                    (* Phase 2: the ACMod hashes the PAL on the main CPU and
                       extends only the digest into PCR 18. *)
                    match fetch_region m ~cpu ~pages ~length with
                    | Error e -> Error e
                    | Ok code ->
                        Sea_trace.Trace.with_span m.engine ~cat:"cpu"
                          "cpu-hash"
                          ~args:(fun () ->
                            [ ("bytes", Sea_trace.Trace.Int length) ])
                          (fun () ->
                            Engine.advance m.engine
                              (Time.scale Costs.cpu_hash_per_byte length));
                        let digest = Sha1.digest code in
                        let _pcr18 = Sea_tpm.Tpm.pcr_extend tpm 18 digest in
                        Ok digest)))
      end

let late_launch (m : Machine.t) ~cpu ~pages ~length =
  match m.config.arch with
  | Machine.Amd -> skinit m ~cpu ~pages ~length
  | Machine.Intel -> senter m ~cpu ~pages ~length

(* --- Proposed hardware --- *)

type slaunch_outcome = Launched of string | Resumed

let require_proposed (m : Machine.t) =
  match (m.config.proposed, Memctrl.acl m.memctrl, m.tpm) with
  | true, Some acl, Some tpm -> Ok (acl, tpm)
  | _ -> Error "SLAUNCH requires the proposed hardware"

let slaunch (m : Machine.t) ~cpu (secb : Secb.t) =
  match require_proposed m with
  | Error e -> Error e
  | Ok (acl, tpm) ->
      let core = Machine.cpu m cpu in
      if secb.Secb.freed then Error "SECB already freed"
      else if core.Cpu.status <> Cpu.Legacy && core.Cpu.status <> Cpu.Idle then
        Error "CPU busy"
      else if not secb.Secb.measured then begin
        insn_span m "SLAUNCH" @@ fun () ->
        (* First launch: Protect, then Measure (Figure 7). *)
        match Access_control.claim acl ~secb_id:secb.Secb.id ~cpu secb.Secb.pages with
        | Error e -> Error e
        | Ok () -> (
            cpu_init_advance m;
            core.Cpu.interrupts_enabled <- false;
            let caller = Sea_tpm.Tpm.Cpu cpu in
            match Sea_tpm.Tpm.sepcr_allocate tpm ~caller with
            | Error e ->
                (* No sePCR: back out the protections and fail (§5.4.1). *)
                ignore (Access_control.release acl ~secb_id:secb.Secb.id secb.Secb.pages);
                core.Cpu.interrupts_enabled <- true;
                Error e
            | Ok handle -> (
                (* Any failure past this point must also back out the
                   sePCR binding, or a retried SLAUNCH finds the claim
                   and the handle still held by the dead attempt. *)
                let back_out e =
                  ignore (Sea_tpm.Tpm.sepcr_skill tpm ~caller handle);
                  ignore
                    (Access_control.release acl ~secb_id:secb.Secb.id
                       secb.Secb.pages);
                  core.Cpu.interrupts_enabled <- true;
                  Error e
                in
                match
                  fetch_region m ~cpu ~pages:(Secb.data_pages secb)
                    ~length:secb.Secb.pal_length
                with
                | Error e -> back_out e
                | Ok code -> (
                    match Sea_tpm.Tpm.sepcr_measure tpm ~caller handle ~code with
                    | Error e -> back_out e
                    | Ok _value ->
                        secb.Secb.sepcr <- Some handle;
                        secb.Secb.measured <- true;
                        core.Cpu.status <- Cpu.In_pal secb.Secb.id;
                        Ok (Launched (Sha1.digest code)))))
      end
      else begin
        insn_span m "SLAUNCH-resume" @@ fun () ->
        (* Resume: the Measured Flag is honored only if the pages are in the
           suspended state owned by this SECB (§5.3.1). *)
        match Access_control.resume acl ~secb_id:secb.Secb.id ~cpu secb.Secb.pages with
        | Error e -> Error e
        | Ok () -> (
            match secb.Secb.sepcr with
            | None ->
                ignore
                  (Access_control.suspend acl ~secb_id:secb.Secb.id ~cpu secb.Secb.pages);
                Error "measured SECB without a sePCR binding"
            | Some handle -> (
                match
                  Sea_tpm.Tpm.sepcr_rebind tpm ~caller:(Sea_tpm.Tpm.Cpu cpu) handle
                    ~new_owner:cpu
                with
                | Error e ->
                    ignore
                      (Access_control.suspend acl ~secb_id:secb.Secb.id ~cpu
                         secb.Secb.pages);
                    Error e
                | Ok () ->
                    core.Cpu.interrupts_enabled <- false;
                    core.Cpu.status <- Cpu.In_pal secb.Secb.id;
                    (* Routing the PAL's registered vectors to this CPU
                       costs reprogramming on every dispatch (§6). *)
                    Engine.advance m.engine
                      (Time.scale (Time.us 1.) (List.length secb.Secb.idt));
                    advance_jittered m (Costs.vm_enter m.config.arch);
                    Ok Resumed))
      end

let running_this_pal (m : Machine.t) ~cpu (secb : Secb.t) =
  (Machine.cpu m cpu).Cpu.status = Cpu.In_pal secb.Secb.id

let syield (m : Machine.t) ~cpu (secb : Secb.t) =
  match require_proposed m with
  | Error e -> Error e
  | Ok (acl, tpm) ->
      if not (running_this_pal m ~cpu secb) then
        Error "SYIELD outside the PAL's execution"
      else begin
        insn_span m "SYIELD" @@ fun () ->
        match Access_control.suspend acl ~secb_id:secb.Secb.id ~cpu secb.Secb.pages with
        | Error e -> Error e
        | Ok () ->
            (* Hardware snapshot of the architectural state into the SECB. *)
            secb.Secb.saved_state <-
              Some
                {
                  Secb.eip = secb.Secb.entry_point;
                  esp = Secb.region_bytes secb;
                  registers = "";
                };
            (match secb.Secb.sepcr with
            | Some handle ->
                (* The binding survives suspension; the CPU merely stops
                   holding the handle. Nothing to do at the TPM. *)
                ignore (handle, tpm)
            | None -> ());
            let core = Machine.cpu m cpu in
            core.Cpu.status <- Cpu.Legacy;
            core.Cpu.interrupts_enabled <- true;
            Engine.advance m.engine Costs.state_clear;
            advance_jittered m (Costs.vm_exit m.config.arch);
            Ok ()
      end

let sfree (m : Machine.t) ~cpu (secb : Secb.t) =
  match require_proposed m with
  | Error e -> Error e
  | Ok (acl, tpm) ->
      if not (running_this_pal m ~cpu secb) then
        Error "SFREE must execute from within the PAL"
      else begin
        insn_span m "SFREE" @@ fun () ->
        match Access_control.release acl ~secb_id:secb.Secb.id secb.Secb.pages with
        | Error e -> Error e
        | Ok () ->
            (match secb.Secb.sepcr with
            | Some handle ->
                ignore
                  (Sea_tpm.Tpm.sepcr_release_for_quote tpm
                     ~caller:(Sea_tpm.Tpm.Cpu cpu) handle)
            | None -> ());
            secb.Secb.freed <- true;
            let core = Machine.cpu m cpu in
            core.Cpu.status <- Cpu.Legacy;
            core.Cpu.interrupts_enabled <- true;
            Engine.advance m.engine Costs.state_clear;
            advance_jittered m (Costs.vm_exit m.config.arch);
            Ok ()
      end

let skill (m : Machine.t) (secb : Secb.t) =
  match require_proposed m with
  | Error e -> Error e
  | Ok (acl, tpm) ->
      if secb.Secb.freed then Error "SECB already freed"
      else begin
        (* Only a suspended PAL can be killed: if it is executing, its pages
           are CPU-exclusive and release below will fail for the running
           CPU's pages... but release accepts both owned states, so check
           explicitly that no CPU is executing it. *)
        let executing =
          Array.exists (fun c -> c.Cpu.status = Cpu.In_pal secb.Secb.id) m.cpus
        in
        if executing then Error "PAL is executing; preempt it first"
        else begin
          insn_span m "SKILL" @@ fun () ->
          match Access_control.release acl ~secb_id:secb.Secb.id secb.Secb.pages with
          | Error e -> Error e
          | Ok () ->
              let memory = Memctrl.memory m.memctrl in
              List.iter
                (fun p ->
                  Memory.zero_page memory p;
                  Engine.advance m.engine Costs.page_erase)
                secb.Secb.pages;
              (match secb.Secb.sepcr with
              | Some handle ->
                  ignore (Sea_tpm.Tpm.sepcr_skill tpm ~caller:(Sea_tpm.Tpm.Cpu 0) handle)
              | None -> ());
              secb.Secb.freed <- true;
              Ok ()
        end
      end

(* --- §6 extensions --- *)

let sjoin (m : Machine.t) ~cpu (secb : Secb.t) =
  match require_proposed m with
  | Error e -> Error e
  | Ok (acl, _tpm) ->
      let core = Machine.cpu m cpu in
      if secb.Secb.freed then Error "SECB already freed"
      else if not secb.Secb.measured then Error "PAL not launched"
      else if core.Cpu.status <> Cpu.Legacy && core.Cpu.status <> Cpu.Idle then
        Error "CPU busy"
      else begin
        insn_span m "SJOIN" @@ fun () ->
        match Access_control.join acl ~secb_id:secb.Secb.id ~cpu secb.Secb.pages with
        | Error e -> Error e
        | Ok () ->
            core.Cpu.status <- Cpu.In_pal secb.Secb.id;
            core.Cpu.interrupts_enabled <- false;
            advance_jittered m (Costs.vm_enter m.config.arch);
            Ok ()
      end

let sleave (m : Machine.t) ~cpu (secb : Secb.t) =
  match require_proposed m with
  | Error e -> Error e
  | Ok (acl, _tpm) ->
      if not (running_this_pal m ~cpu secb) then
        Error "SLEAVE outside the PAL's execution"
      else begin
        insn_span m "SLEAVE" @@ fun () ->
        match Access_control.leave acl ~secb_id:secb.Secb.id ~cpu secb.Secb.pages with
        | Error e -> Error e
        | Ok () ->
            let core = Machine.cpu m cpu in
            core.Cpu.status <- Cpu.Legacy;
            core.Cpu.interrupts_enabled <- true;
            Engine.advance m.engine Costs.state_clear;
            advance_jittered m (Costs.vm_exit m.config.arch);
            Ok ()
      end

(* Reprogramming the interrupt routing logic costs roughly a microsecond
   per registered vector — the overhead §6 warns about. *)
let interrupt_reprogram_cost (secb : Secb.t) =
  Time.scale (Time.us 1.) (List.length secb.Secb.idt)

type interrupt_destination = To_os | To_pal of int

let deliver_interrupt (m : Machine.t) ~secbs ~vector =
  let executing_pal_with_vector secb =
    List.mem vector secb.Secb.idt
    && Array.exists (fun c -> c.Cpu.status = Cpu.In_pal secb.Secb.id) m.cpus
  in
  match List.find_opt executing_pal_with_vector secbs with
  | Some secb -> To_pal secb.Secb.id
  | None -> To_os
