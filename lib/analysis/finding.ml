type severity = Error | Warn | Info

type t = { rule : string; severity : severity; offset : int; message : string }

let make ~rule ~severity ~offset message = { rule; severity; offset; message }

let severity_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warn -> 1 | Info -> 2

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
      match Int.compare a.offset b.offset with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
  | c -> c

let to_string f =
  Printf.sprintf "%-5s @%04d %s: %s"
    (severity_to_string f.severity)
    f.offset f.rule f.message

let pp fmt f = Format.pp_print_string fmt (to_string f)
