(** The PAL bytecode static analyzer (the paper's §3.2 observation made
    executable: a PAL is small enough to verify {e before} it is
    measured and launched).

    Four rule families run over the {!Cfg} and the {!Dataflow} fixpoint:

    - {b decode/structure} — [decode/invalid] (undecodable bytes on a
      reachable path, with the decoder's own message), [decode/truncated]
      (reachable instruction cut by the image end), [cfg/jump-out-of-image],
      [cfg/jump-off-grid] (target off the 8-byte instruction grid),
      [cfg/fall-through-off-image] (warn: execution runs into
      zero-filled memory, an implicit halt).
    - {b self-modification / TOCTOU} — [selfmod/store-overwrites-code]
      ([Stb]/[Stw] whose target range may intersect reachable code),
      [selfmod/service-writes-code] (a service writes its result over
      code), and the footnote-3 pair:
      [toctou/input-overwrites-code] (error — [SVC INPUT_READ] can
      rewrite measured code, so the load-time attestation lies about
      what ran) vs [toctou/input-overwrites-code-mitigated] (warn — the
      same overlap, but an [SVC EXTEND] covered the input on every path
      first, so a verifier sees the malicious input in the chain).
    - {b secret flow} — [taint/unsealed-secret-to-output] (error:
      [UNSEAL] output may reach [OUTPUT] raw, without an intervening
      [SEAL]) and [taint/random-to-output] (warn: [RANDOM] bytes
      likewise).
    - {b resource bounds / policy} — [bounds/straight-line] (info: loop-free
      worst case vs the fuel), [bounds/loop-bound] (info: every back-edge
      carries a provable trip count, with the resulting worst case),
      [bounds/back-edge] (a loop {e without} a provable trip count —
      info, or error under [require_bounded]), [bounds/fuel-exceeded],
      [svc/unknown], [policy/service-forbidden] (service whitelist).
      The step numbers come from the {!Cost} pass, which folds the
      {!Sea_isa.Isa.fuel_cost} table and {!Loop_bounds} trip counts, so
      findings and {!Certificate}s always agree.

    Registers are tracked with an interval domain seeded from the
    zeroed machine state, so buffer addresses and lengths built with
    [Loadi]/[Mov]/arithmetic resolve to concrete ranges. *)

type gate =
  | Off  (** Skip analysis entirely (the default at launch). *)
  | WarnOnly  (** Analyze and report, but never refuse a launch. *)
  | Enforce  (** Refuse to launch an image whose report has errors. *)

type policy = {
  fuel : int;  (** Step budget to check bounds against. *)
  mem_size : int;  (** VM memory the image will run in. *)
  allowed_services : int list option;
      (** [Some l]: any reachable [SVC] outside [l] is an error.
          [None]: every service the VM implements is allowed. *)
  require_bounded : bool;
      (** Escalate loop back-edges from info to error — for PALs that
          must provably terminate within fuel. *)
}

val default_policy : policy
(** VM defaults: fuel {!Sea_isa.Isa.default_fuel}, 64 KB memory, all
    services, loops allowed. *)

val analyze : ?policy:policy -> string -> Report.t
(** Analyze a raw PAL image (the exact bytes that would be measured). *)

val certify : ?policy:policy -> string -> Report.t * Certificate.t
(** [analyze] plus the static cost certificate priced from the same
    CFG and dataflow fixpoint. Degenerate images (empty, oversized)
    get an unbounded fuel-ceiling certificate. *)

val check : ?policy:policy -> gate:gate -> string -> (unit, string) result
(** The launch gate: [Ok] under [Off]/[WarnOnly] or when the report is
    clean; [Error] (with a one-line summary of the first error) when
    [gate = Enforce] and the report has errors. *)

val gate_to_string : gate -> string
