(** Abstract interpretation over the CFG: interval values for the eight
    registers, plus a may-taint map of memory regions and a
    must-"input-measured" flag.

    The taint kinds track the two secret sources the service interface
    exposes ([UNSEAL] payloads and [RANDOM] bytes) and where raw input
    has been copied; the [input_measured] flag records whether an
    [EXTEND] has folded that input into the measurement chain — the
    paper's footnote-3 mitigation — on {e every} path reaching a point
    (it joins with conjunction). *)

type taint =
  | Input  (** Written by [SVC INPUT_READ]. *)
  | Secret_unseal  (** Written by [SVC UNSEAL]. *)
  | Secret_random  (** Written by [SVC RANDOM]. *)

type region = { lo : int; hi : int; taint : taint }
(** Half-open byte range [\[lo, hi)]. *)

type state = {
  regs : Interval.t array;  (** Length 8. *)
  regions : region list;  (** Normalized: sorted, same-taint merged. *)
  input_measured : bool;
}

val initial : state
(** Registers all 0 (the interpreter zeroes them), no taint. *)

val run : Cfg.t -> mem_size:int -> (int, state) Hashtbl.t
(** Worklist fixpoint; returns the abstract state {e before} each
    reachable instruction. Widening after a bounded number of visits
    guarantees termination. *)

val transfer : mem_size:int -> state -> Sea_isa.Isa.op -> state
(** One instruction's abstract effect — exposed so {!Loop_bounds} can
    evaluate a loop entry edge's out-state without re-running the
    fixpoint. *)

val join : state -> state -> state

val write_range : mem_size:int -> ptr:Interval.t -> len:Interval.t -> (int * int) option
(** The half-open byte range a service write [\[ptr, ptr+len)] may
    touch, clamped to memory; [None] when the length is certainly 0. *)

val regions_overlapping : state -> lo:int -> hi:int -> region list
