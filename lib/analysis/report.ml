type t = {
  image_size : int;
  reachable_insns : int;
  loops : int;
  findings : Finding.t list;
}

let make ~image_size ~reachable_insns ~loops findings =
  let dedup =
    List.fold_left
      (fun acc f ->
        if
          List.exists
            (fun g -> g.Finding.rule = f.Finding.rule && g.Finding.offset = f.Finding.offset)
            acc
        then acc
        else f :: acc)
      [] findings
  in
  { image_size; reachable_insns; loops; findings = List.sort Finding.compare dedup }

let by_severity s t =
  List.filter (fun f -> f.Finding.severity = s) t.findings

let errors t = by_severity Finding.Error t
let warnings t = by_severity Finding.Warn t
let is_clean t = errors t = []

let verdict t =
  match (errors t, warnings t) with
  | [], [] -> "PASS"
  | [], ws -> Printf.sprintf "PASS (mitigated/warnings: %d)" (List.length ws)
  | es, _ -> Printf.sprintf "REJECT (%d error%s)" (List.length es)
               (if List.length es = 1 then "" else "s")

let render t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "image: %d bytes, %d reachable instructions, %d loop back-edge%s\n"
       t.image_size t.reachable_insns t.loops (if t.loops = 1 then "" else "s"));
  List.iter
    (fun f -> Buffer.add_string buf ("  " ^ Finding.to_string f ^ "\n"))
    t.findings;
  Buffer.add_string buf ("verdict: " ^ verdict t);
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (render t)
