(** One diagnostic produced by the PAL static analyzer.

    A finding names the rule that fired, where in the image it fired
    (byte offset of the responsible instruction), how bad it is, and a
    human-readable explanation. Rule ids are stable strings of the form
    [family/name] ([decode/invalid], [toctou/input-overwrites-code],
    [taint/unsealed-secret-to-output], …) so policies and tests can match
    on them without parsing messages. *)

type severity =
  | Error  (** The image must not be launched (an {!Analyzer.gate} of
               [Enforce] refuses it). *)
  | Warn  (** Suspicious but launchable — e.g. a TOCTOU overwrite whose
              input is covered by the measurement chain. *)
  | Info  (** Analysis facts worth surfacing (step bounds, loop notes). *)

type t = {
  rule : string;  (** Stable rule id, [family/name]. *)
  severity : severity;
  offset : int;  (** Byte offset of the flagged instruction. *)
  message : string;
}

val make : rule:string -> severity:severity -> offset:int -> string -> t

val severity_to_string : severity -> string

val compare : t -> t -> int
(** Orders by severity (errors first), then offset, then rule. *)

val to_string : t -> string
(** ["error @0064 toctou/...: message"]. *)

val pp : Format.formatter -> t -> unit
