open Sea_isa

type gate = Off | WarnOnly | Enforce

type policy = {
  fuel : int;
  mem_size : int;
  allowed_services : int list option;
  require_bounded : bool;
}

let default_policy =
  {
    fuel = Isa.default_fuel;
    mem_size = Isa.default_mem_size;
    allowed_services = None;
    require_bounded = false;
  }

let gate_to_string = function
  | Off -> "off"
  | WarnOnly -> "warn-only"
  | Enforce -> "enforce"

let all_services =
  [
    Isa.svc_input_len; Isa.svc_input_read; Isa.svc_output; Isa.svc_seal;
    Isa.svc_unseal; Isa.svc_random; Isa.svc_extend; Isa.svc_sha256;
  ]

let span_str (lo, hi) = Printf.sprintf "[%d,%d)" lo hi

(* --- structural rules: every reachable node and edge --- *)

let structure_findings (cfg : Cfg.t) =
  let fs = ref [] in
  let add ~rule ~severity ~offset msg =
    fs := Finding.make ~rule ~severity ~offset msg :: !fs
  in
  List.iter
    (fun pc ->
      let n = Cfg.node cfg pc in
      if n.Cfg.off_image then ()
      else begin
        (match n.Cfg.decoded with
        | Error e when n.Cfg.truncated ->
            add ~rule:"decode/truncated" ~severity:Finding.Error ~offset:pc
              (Printf.sprintf
                 "reachable instruction at %d is %s — the measured image ends \
                  mid-instruction"
                 pc e)
        | Error e ->
            add ~rule:"decode/invalid" ~severity:Finding.Error ~offset:pc
              (Printf.sprintf "reachable bytes do not decode: %s" e)
        | Ok _ -> ());
        if pc mod Isa.insn_size <> 0 then
          add ~rule:"cfg/off-grid" ~severity:Finding.Error ~offset:pc
            (Printf.sprintf
               "execution reaches offset %d, off the %d-byte instruction grid \
                — measured bytes are reinterpreted"
               pc Isa.insn_size);
        match n.Cfg.decoded with
        | Error _ -> ()
        | Ok op ->
            let flag_target t =
              if t >= cfg.Cfg.image_size then
                add ~rule:"cfg/jump-out-of-image" ~severity:Finding.Error
                  ~offset:pc
                  (Printf.sprintf
                     "jump target %d is outside the %d-byte measured image" t
                     cfg.Cfg.image_size)
              else if t mod Isa.insn_size <> 0 then
                add ~rule:"cfg/jump-off-grid" ~severity:Finding.Error ~offset:pc
                  (Printf.sprintf
                     "jump target %d is off the %d-byte instruction grid" t
                     Isa.insn_size)
            in
            (match op with
            | Isa.Jmp t | Isa.Jz (_, t) | Isa.Jnz (_, t) -> flag_target t
            | _ -> ());
            (* Fall-through past the image lands in zero-filled memory,
               which decodes as Halt — legal, but worth flagging. *)
            let falls_off =
              List.exists
                (fun s -> s = pc + Isa.insn_size && s >= cfg.Cfg.image_size)
                n.Cfg.succs
            in
            if falls_off then
              add ~rule:"cfg/fall-through-off-image" ~severity:Finding.Warn
                ~offset:pc
                "execution falls off the measured image into zero-initialized \
                 memory (implicit halt) — end the program with an explicit halt"
      end)
    cfg.Cfg.order;
  !fs

(* --- value-dependent rules: stores, services, taint --- *)

let dataflow_findings (cfg : Cfg.t) ~policy states =
  let fs = ref [] in
  let add ~rule ~severity ~offset msg =
    fs := Finding.make ~rule ~severity ~offset msg :: !fs
  in
  let mem_size = policy.mem_size in
  let check_store pc (st : Dataflow.state) ~base ~imm ~width ~what =
    let addr = Interval.add_const st.Dataflow.regs.(base) imm in
    let range =
      Dataflow.write_range ~mem_size ~ptr:addr ~len:(Interval.const width)
    in
    (match range with
    | Some (lo, hi) when Cfg.overlaps_code cfg ~lo ~hi ->
        add ~rule:"selfmod/store-overwrites-code" ~severity:Finding.Error
          ~offset:pc
          (Printf.sprintf
             "%s may write %s over measured code — the program can diverge \
              from its attested bytes"
             what
             (span_str (lo, hi)))
    | _ -> ());
    if addr.Interval.lo + width > mem_size then
      add ~rule:"mem/store-out-of-bounds" ~severity:Finding.Warn ~offset:pc
        (Printf.sprintf "%s always faults: address %s is past the %d-byte memory"
           what
           (Interval.to_string addr)
           mem_size)
  in
  let service_write_check pc ~rule ~what range =
    match range with
    | Some (lo, hi) when Cfg.overlaps_code cfg ~lo ~hi ->
        add ~rule ~severity:Finding.Error ~offset:pc
          (Printf.sprintf "%s may write %s over measured code" what
             (span_str (lo, hi)))
    | _ -> ()
  in
  List.iter
    (fun pc ->
      match (Cfg.node cfg pc).Cfg.decoded with
      | Error _ -> ()
      | Ok op -> (
          match Hashtbl.find_opt states pc with
          | None -> () (* unreachable through decodable paths *)
          | Some st -> (
              let reg i = st.Dataflow.regs.(i) in
              match op with
              | Isa.Stb (_, b, imm) ->
                  check_store pc st ~base:b ~imm ~width:1 ~what:"stb"
              | Isa.Stw (_, b, imm) ->
                  check_store pc st ~base:b ~imm ~width:4 ~what:"stw"
              | Isa.Svc n when not (List.mem n all_services) ->
                  add ~rule:"svc/unknown" ~severity:Finding.Error ~offset:pc
                    (Printf.sprintf
                       "service %d does not exist — the VM faults here" n)
              | Isa.Svc n
                when match policy.allowed_services with
                     | Some allowed -> not (List.mem n allowed)
                     | None -> false ->
                  add ~rule:"policy/service-forbidden" ~severity:Finding.Error
                    ~offset:pc
                    (Printf.sprintf
                       "service %d is outside this PAL's service whitelist" n)
              | Isa.Svc n when n = Isa.svc_input_read -> (
                  match
                    Dataflow.write_range ~mem_size ~ptr:(reg 0) ~len:(reg 1)
                  with
                  | Some (lo, hi) when Cfg.overlaps_code cfg ~lo ~hi ->
                      if st.Dataflow.input_measured then
                        add ~rule:"toctou/input-overwrites-code-mitigated"
                          ~severity:Finding.Warn ~offset:pc
                          (Printf.sprintf
                             "INPUT_READ may write %s over measured code, but \
                              the input was extended into the measurement \
                              chain first — a verifier sees the malicious \
                              input (mitigated TOCTOU)"
                             (span_str (lo, hi)))
                      else
                        add ~rule:"toctou/input-overwrites-code"
                          ~severity:Finding.Error ~offset:pc
                          (Printf.sprintf
                             "INPUT_READ may write %s over measured code: a \
                              crafted input rewrites the PAL after it was \
                              measured, and the load-time attestation cannot \
                              tell (footnote 3 TOCTOU)"
                             (span_str (lo, hi)))
                  | _ -> ())
              | Isa.Svc n when n = Isa.svc_output -> (
                  match
                    Dataflow.write_range ~mem_size ~ptr:(reg 0) ~len:(reg 1)
                  with
                  | None -> ()
                  | Some (lo, hi) ->
                      let secrets =
                        Dataflow.regions_overlapping st ~lo ~hi
                        |> List.filter (fun r ->
                               r.Dataflow.taint <> Dataflow.Input)
                      in
                      List.iter
                        (fun (r : Dataflow.region) ->
                          match r.Dataflow.taint with
                          | Dataflow.Secret_unseal ->
                              add ~rule:"taint/unsealed-secret-to-output"
                                ~severity:Finding.Error ~offset:pc
                                (Printf.sprintf
                                   "OUTPUT range %s may contain UNSEAL \
                                    payload bytes %s — sealed secrets leave \
                                    the PAL unencrypted (no intervening SEAL)"
                                   (span_str (lo, hi))
                                   (span_str (r.Dataflow.lo, r.Dataflow.hi)))
                          | Dataflow.Secret_random ->
                              add ~rule:"taint/random-to-output"
                                ~severity:Finding.Warn ~offset:pc
                                (Printf.sprintf
                                   "OUTPUT range %s may contain RANDOM bytes \
                                    %s — key material generated inside the \
                                    PAL leaves it unsealed"
                                   (span_str (lo, hi))
                                   (span_str (r.Dataflow.lo, r.Dataflow.hi)))
                          | Dataflow.Input -> ())
                        secrets)
              | Isa.Svc n when n = Isa.svc_random ->
                  service_write_check pc ~rule:"selfmod/service-writes-code"
                    ~what:"RANDOM"
                    (Dataflow.write_range ~mem_size ~ptr:(reg 0) ~len:(reg 1))
              | Isa.Svc n when n = Isa.svc_unseal || n = Isa.svc_seal ->
                  service_write_check pc ~rule:"selfmod/service-writes-code"
                    ~what:(if n = Isa.svc_seal then "SEAL" else "UNSEAL")
                    (Dataflow.write_range ~mem_size ~ptr:(reg 2) ~len:(reg 1))
              | Isa.Svc n when n = Isa.svc_sha256 ->
                  service_write_check pc ~rule:"selfmod/service-writes-code"
                    ~what:"SHA256"
                    (Dataflow.write_range ~mem_size ~ptr:(reg 2)
                       ~len:(Interval.const 32))
              | _ -> ())))
    cfg.Cfg.order;
  !fs

(* --- resource bounds --- *)

(* The numbers here come from {!Cost} — the same table the certificate
   prices and the VM charges — so fuel findings and certificates can
   never disagree. *)
let bounds_findings (cfg : Cfg.t) ~policy (cost : Cost.t) =
  let wcet = cost.Cost.wcet_steps in
  let fuel_check tail =
    if wcet > policy.fuel then
      Finding.make ~rule:"bounds/fuel-exceeded" ~severity:Finding.Error
        ~offset:0
        (Printf.sprintf
           "worst case is %d steps, over the %d-step fuel: the PAL cannot \
            finish"
           wcet policy.fuel)
      :: tail
    else tail
  in
  match cfg.Cfg.back_edges with
  | [] ->
      fuel_check
        [
          Finding.make ~rule:"bounds/straight-line" ~severity:Finding.Info
            ~offset:0
            (Printf.sprintf "loop-free: worst case %d steps <= fuel %d" wcet
               policy.fuel);
        ]
  | (src, _) :: _ as edges ->
      if cost.Cost.loops_bounded then
        fuel_check
          [
            Finding.make ~rule:"bounds/loop-bound" ~severity:Finding.Info
              ~offset:src
              (Printf.sprintf
                 "%d loop back-edge%s, every trip count provable (%s): worst \
                  case %d steps <= fuel %d"
                 (List.length edges)
                 (if List.length edges = 1 then "" else "s")
                 (String.concat ", "
                    (List.map
                       (fun (l : Loop_bounds.loop) ->
                         Printf.sprintf "head %d <=%d trips" l.Loop_bounds.head
                           l.Loop_bounds.trips)
                       cost.Cost.loops))
                 wcet policy.fuel);
          ]
      else
        let severity =
          if policy.require_bounded then Finding.Error else Finding.Info
        in
        [
          Finding.make ~rule:"bounds/back-edge" ~severity ~offset:src
            (Printf.sprintf
               "%d loop back-edge%s without a provable trip count: worst case \
                bounded only by the %d-step fuel%s"
               (List.length edges)
               (if List.length edges = 1 then "" else "s")
               policy.fuel
               (if policy.require_bounded then
                  " (policy requires provably bounded PALs)"
                else ""));
        ]

let degenerate_certificate ~policy ~image_size report =
  Certificate.make ~image_size ~report
    {
      Cost.wcet_steps = policy.fuel;
      loops_bounded = false;
      loops = [];
      svc = [];
    }

let certify ?(policy = default_policy) code =
  let image_size = String.length code in
  if image_size = 0 then
    let report =
      Report.make ~image_size:0 ~reachable_insns:0 ~loops:0
        [
          Finding.make ~rule:"image/empty" ~severity:Finding.Error ~offset:0
            "empty image: nothing to measure or run";
        ]
    in
    (report, degenerate_certificate ~policy ~image_size report)
  else if image_size > policy.mem_size then
    let report =
      Report.make ~image_size ~reachable_insns:0 ~loops:0
        [
          Finding.make ~rule:"image/too-large" ~severity:Finding.Error ~offset:0
            (Printf.sprintf "image is %d bytes; the VM memory holds %d"
               image_size policy.mem_size);
        ]
    in
    (report, degenerate_certificate ~policy ~image_size report)
  else begin
    let cfg = Cfg.build ~mem_size:policy.mem_size code in
    let states = Dataflow.run cfg ~mem_size:policy.mem_size in
    let cost = Cost.analyze cfg states ~fuel:policy.fuel ~mem_size:policy.mem_size in
    let findings =
      structure_findings cfg
      @ dataflow_findings cfg ~policy states
      @ bounds_findings cfg ~policy cost
    in
    let report =
      Report.make ~image_size ~reachable_insns:(Cfg.reachable_insns cfg)
        ~loops:(List.length cfg.Cfg.back_edges)
        findings
    in
    (report, Certificate.make ~image_size ~report cost)
  end

let analyze ?policy code = fst (certify ?policy code)

let check ?policy ~gate code =
  match gate with
  | Off -> Ok ()
  | WarnOnly | Enforce -> (
      let report = analyze ?policy code in
      match (gate, Report.errors report) with
      | Enforce, f :: _ ->
          Error
            (Printf.sprintf "static analysis rejected the PAL (%s): %s"
               (Report.verdict report) (Finding.to_string f))
      | _ -> Ok ())
