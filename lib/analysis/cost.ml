(* Static cost semantics over the CFG: fold the per-instruction fuel
   table ({!Sea_isa.Isa.fuel_cost}) and per-SVC payload bounds into a
   worst-case execution profile.

   Execution counts are propagated through the CFG in increasing-pc
   order. With back-edges removed the graph is a DAG ordered by pc
   (Cfg.build records an edge as a back-edge exactly when its target
   does not advance), so a single forward sweep sees every
   contribution before it reads a node's total. Loop heads multiply
   their inflow by (trips + 1) — the head runs once more than the back
   edge is taken — and an edge leaving a loop body contributes only the
   loop's entry count, because each entry exits at most once. Nodes
   that fail to decode cost one step: the VM charges the faulting (or
   implicit-Halt) fetch before stopping.

   Counts over-approximate: reconverging forward branches sum both
   sides. That is sound (a run takes one side) and cheap, and the
   corpus is branch-light enough that tightness does not suffer.

   When any back-edge lacks a provable trip bound the whole image is
   priced at the fuel ceiling: wcet = fuel, and every reachable service
   is assumed to be hit [fuel] times with the largest payload memory
   allows. Deliberately prohibitive — an unbounded image is
   "unaffordable" to cost-aware admission, which is the point. *)

open Sea_isa

type svc_use = { svc : int; calls : int; bytes : int }

type t = {
  wcet_steps : int;
  loops_bounded : bool;
  loops : Loop_bounds.loop list;  (* empty when [not loops_bounded] *)
  svc : svc_use list;  (* ascending svc number *)
}

(* Counts saturate well below max_int so downstream pricing arithmetic
   (microseconds x counts) cannot overflow. *)
let cap = 1 lsl 40

let sat_add a b = if a > cap - b then cap else a + b
let sat_mul a b = if a = 0 || b = 0 then 0 else if a > cap / b then cap else a * b

(* Worst-case payload bytes a service site can move per call: the
   length register's upper bound, clamped to memory (the VM faults on
   anything larger before the service runs). *)
let payload_hi ~mem_size (st : Dataflow.state) n =
  if n = Isa.svc_input_len then 0
  else min st.Dataflow.regs.(1).Interval.hi mem_size

let count_nodes cfg loops =
  let head_of = Hashtbl.create 4 in
  let member = Hashtbl.create 64 in
  List.iter
    (fun (l : Loop_bounds.loop) ->
      Hashtbl.replace head_of l.Loop_bounds.head l;
      List.iter (fun pc -> Hashtbl.replace member pc l) l.Loop_bounds.body)
    loops;
  let inflow = Hashtbl.create 64 in
  let entries = Hashtbl.create 4 in
  let counts = Hashtbl.create 64 in
  let add_in pc v =
    Hashtbl.replace inflow pc
      (sat_add v (Option.value ~default:0 (Hashtbl.find_opt inflow pc)))
  in
  List.iter
    (fun pc ->
      let base =
        (if pc = 0 then 1 else 0)
        + Option.value ~default:0 (Hashtbl.find_opt inflow pc)
      in
      let count =
        match Hashtbl.find_opt head_of pc with
        | Some l ->
            Hashtbl.replace entries l.Loop_bounds.head base;
            sat_mul base (l.Loop_bounds.trips + 1)
        | None -> base
      in
      Hashtbl.replace counts pc count;
      let n = Cfg.node cfg pc in
      List.iter
        (fun s ->
          (* Forward edges only: back-edges are modeled by the head's
             (trips + 1) multiplier. *)
          if s > pc && Hashtbl.mem cfg.Cfg.nodes s then
            let contribution =
              match Hashtbl.find_opt member pc with
              | Some l when not (Hashtbl.mem member s) ->
                  (* Leaving the loop: taken at most once per entry. *)
                  Option.value ~default:0
                    (Hashtbl.find_opt entries l.Loop_bounds.head)
              | _ -> count
            in
            add_in s contribution)
        n.Cfg.succs)
    cfg.Cfg.order;
  counts

let svc_merge uses =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (u : svc_use) ->
      let calls, bytes =
        Option.value ~default:(0, 0) (Hashtbl.find_opt tbl u.svc)
      in
      Hashtbl.replace tbl u.svc (sat_add calls u.calls, sat_add bytes u.bytes))
    uses;
  Hashtbl.fold (fun svc (calls, bytes) acc -> { svc; calls; bytes } :: acc) tbl []
  |> List.sort (fun (a : svc_use) (b : svc_use) -> compare a.svc b.svc)

let analyze (cfg : Cfg.t) states ~fuel ~mem_size =
  let svc_sites =
    List.filter_map
      (fun pc ->
        match (Cfg.node cfg pc).Cfg.decoded with
        | Ok (Isa.Svc n) -> Some (pc, n)
        | _ -> None)
      cfg.Cfg.order
  in
  match Loop_bounds.infer cfg states ~mem_size with
  | None ->
      (* Unprovable loop somewhere: price at the fuel ceiling. *)
      let svc =
        svc_merge
          (List.map
             (fun (pc, n) ->
               let bytes =
                 match Hashtbl.find_opt states pc with
                 | Some st -> payload_hi ~mem_size st n
                 | None -> mem_size
               in
               { svc = n; calls = fuel; bytes = sat_mul fuel bytes })
             svc_sites)
      in
      { wcet_steps = fuel; loops_bounded = false; loops = []; svc }
  | Some loops ->
      let counts = count_nodes cfg loops in
      let count pc = Option.value ~default:0 (Hashtbl.find_opt counts pc) in
      let wcet_steps =
        List.fold_left
          (fun acc pc ->
            let cost =
              match (Cfg.node cfg pc).Cfg.decoded with
              | Ok op -> Isa.fuel_cost op
              | Error _ -> 1
            in
            sat_add acc (sat_mul (count pc) cost))
          0 cfg.Cfg.order
      in
      let svc =
        svc_merge
          (List.map
             (fun (pc, n) ->
               let per_call =
                 match Hashtbl.find_opt states pc with
                 | Some st -> payload_hi ~mem_size st n
                 | None -> 0 (* unreachable by dataflow: never runs *)
               in
               { svc = n; calls = count pc; bytes = sat_mul (count pc) per_call })
             svc_sites)
      in
      { wcet_steps; loops_bounded = true; loops; svc }
