(** Rendered result of one analyzer run. *)

type t = {
  image_size : int;
  reachable_insns : int;
  loops : int;  (** Back-edges found in the CFG. *)
  findings : Finding.t list;  (** Sorted: errors first, then by offset. *)
}

val make :
  image_size:int -> reachable_insns:int -> loops:int -> Finding.t list -> t
(** Deduplicates (rule, offset) pairs and sorts. *)

val errors : t -> Finding.t list
val warnings : t -> Finding.t list

val is_clean : t -> bool
(** No [Error]-severity findings: the image may be launched. *)

val verdict : t -> string
(** ["PASS"], ["PASS (mitigated/warnings: n)"] or ["REJECT (n errors)"]. *)

val render : t -> string
(** Multi-line human-readable report, one finding per line, ending with
    the verdict. *)

val pp : Format.formatter -> t -> unit
