(** Control-flow graph of a PALVM image.

    The image is decoded exactly as the interpreter would fetch it: the
    program is loaded at offset 0 of a zero-filled memory, the entry
    point is 0, and every instruction is 8 bytes starting from wherever
    the program counter lands (the hardware imposes no alignment — an
    off-grid jump is legal for the VM and is flagged by the analyzer,
    not hidden by the CFG). Reachability is computed over the static
    image; what a self-modifying program executes {e after} rewriting
    itself is precisely what the analyzer's store/TOCTOU rules bound. *)

type node = {
  pc : int;
  decoded : (Sea_isa.Isa.op, string) result;
      (** The decoder's verdict at [pc] — the same {!Sea_isa.Isa.decode}
          the interpreter uses. *)
  truncated : bool;
      (** [pc] is inside the image but the instruction runs past its
          end: the measured bytes end mid-instruction. *)
  off_image : bool;
      (** [pc] is past the image: execution continues in zero-filled,
          unmeasured memory (opcode 0 = implicit Halt). Not decoded. *)
  succs : int list;
      (** Successor program counters, including out-of-image targets
          (recorded so the analyzer can flag the edge). *)
}

type t = {
  code : string;
  image_size : int;
  nodes : (int, node) Hashtbl.t;  (** Keyed by reachable [pc]. *)
  order : int list;  (** Reachable pcs, ascending. *)
  back_edges : (int * int) list;
      (** [(src, dst)] edges with [dst <= src] — loops. *)
  code_spans : (int * int) list;
      (** Merged half-open byte spans covered by reachable instructions
          — the "code bytes" that stores must not touch. *)
}

val build : ?mem_size:int -> string -> t
(** Explore from pc 0. [mem_size] bounds which jump targets are worth
    exploring (default {!Sea_isa.Isa.default_mem_size}). *)

val node : t -> int -> node
val reachable_insns : t -> int
(** Count of reachable, successfully decoded instructions. *)

val overlaps_code : t -> lo:int -> hi:int -> bool
(** Does the half-open byte range [\[lo, hi)] intersect any reachable
    instruction's bytes? *)
