(* Static cost certificates: the cost profile of an image priced into
   scheduler-consumable units, plus a content-addressed cache so each
   distinct image is analyzed once per process.

   [tpm_us] prices only the SVC-issued TPM commands (Seal, Unseal,
   GetRandom, Extend) against a fixed reference profile — the Broadcom
   part, the serving machine's TPM — using the same base + per-byte
   model the simulator draws from (minus its jitter, so the bound is
   the distribution's mean ceiling, compared against jitter-free
   replays by the soundness gate). SKINIT-time measurement hashing is
   not metered here; its traffic shows up in [lpc_bytes], which counts
   the measured image plus every payload byte a service can move across
   the LPC bus.

   [bounded] is deliberately strict: provable trip bounds on every
   back-edge AND a clean report AND no self-modification findings (a
   PAL that rewrites measured code invalidates any static text-derived
   bound, even when the rewrite is the sanctioned measured-input
   pattern). Unbounded certificates price at the fuel ceiling.

   All fields are ints and the renderer uses no floats, so a
   certificate's text is byte-deterministic across hosts. *)

open Sea_sim

type t = {
  wcet_steps : int;
  bounded : bool;
  svc_counts : Cost.svc_use list;
  tpm_us : int;
  lpc_bytes : int;
}

let reference_profile = Sea_tpm.Timing.profile Sea_tpm.Vendor.Broadcom

let self_modifying report =
  let prefixed p (f : Finding.t) =
    String.length f.Finding.rule >= String.length p
    && String.sub f.Finding.rule 0 (String.length p) = p
  in
  List.exists
    (fun f -> prefixed "selfmod/" f || prefixed "toctou/" f)
    report.Report.findings

let svc_time profile n ~calls ~bytes =
  let open Sea_isa in
  let scale base per =
    Time.add (Time.scale base calls) (Time.scale per bytes)
  in
  if n = Isa.svc_seal then
    scale profile.Sea_tpm.Timing.seal_base profile.Sea_tpm.Timing.seal_per_byte
  else if n = Isa.svc_unseal then
    scale profile.Sea_tpm.Timing.unseal_base
      profile.Sea_tpm.Timing.unseal_per_byte
  else if n = Isa.svc_random then
    scale profile.Sea_tpm.Timing.get_random_base
      profile.Sea_tpm.Timing.get_random_per_byte
  else if n = Isa.svc_extend then
    Time.scale profile.Sea_tpm.Timing.pcr_extend calls
  else Time.zero (* input/output/sha256 never cross to the TPM *)

(* Payload bytes that cross the LPC bus per service. input_len and
   sha256 stay on the platform side. *)
let lpc_svc n =
  let open Sea_isa in
  n = Isa.svc_input_read || n = Isa.svc_output || n = Isa.svc_seal
  || n = Isa.svc_unseal || n = Isa.svc_random || n = Isa.svc_extend

let make ?(profile = reference_profile) ~image_size ~report (cost : Cost.t) =
  let bounded =
    cost.Cost.loops_bounded
    && Report.is_clean report
    && not (self_modifying report)
  in
  let tpm_total =
    List.fold_left
      (fun acc (u : Cost.svc_use) ->
        Time.add acc
          (svc_time profile u.Cost.svc ~calls:u.Cost.calls ~bytes:u.Cost.bytes))
      Time.zero cost.Cost.svc
  in
  let lpc_bytes =
    List.fold_left
      (fun acc (u : Cost.svc_use) ->
        if lpc_svc u.Cost.svc then acc + u.Cost.bytes else acc)
      image_size cost.Cost.svc
  in
  {
    wcet_steps = cost.Cost.wcet_steps;
    bounded;
    svc_counts = cost.Cost.svc;
    tpm_us = Time.to_ns tpm_total / 1000;
    lpc_bytes;
  }

(* A scheduling weight in virtual microseconds: the TPM command bound
   plus CPU steps at a GHz-class step rate. Unbounded images inherit
   the fuel-ceiling pricing and come out effectively unaffordable. *)
let admission_cost t = t.tpm_us + ((t.wcet_steps + 999) / 1000)

let render t =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "certificate: %s  wcet %d steps  tpm %d us  lpc %d bytes\n"
       (if t.bounded then "bounded" else "unbounded")
       t.wcet_steps t.tpm_us t.lpc_bytes);
  List.iter
    (fun (u : Cost.svc_use) ->
      Buffer.add_string b
        (Printf.sprintf "  svc %-10s calls<=%d bytes<=%d\n"
           (Sea_isa.Isa.svc_name u.Cost.svc)
           u.Cost.calls u.Cost.bytes))
    t.svc_counts;
  Buffer.contents b

(* --- content-addressed cache -------------------------------------- *)

(* Keyed on a caller-supplied content digest (the PAL measurement)
   plus the analysis policy, so one process analyzes each distinct
   image once per policy. The lock is held across the analysis
   closure: concurrent first launches of one image on several domains
   must still count as a single analysis, and the analyzer is pure
   CPU with no lock-ordering partners. *)

type 'a cache = {
  table : (string * 'a, Report.t * t) Hashtbl.t;
  lock : Mutex.t;
  mutable runs : int;
}

let create_cache () =
  { table = Hashtbl.create 16; lock = Mutex.create (); runs = 0 }

let cache_find_or cache ~digest ~policy f =
  Mutex.lock cache.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache.lock)
    (fun () ->
      match Hashtbl.find_opt cache.table (digest, policy) with
      | Some hit -> hit
      | None ->
          let result = f () in
          cache.runs <- cache.runs + 1;
          Hashtbl.replace cache.table (digest, policy) result;
          result)

let cache_runs cache =
  Mutex.lock cache.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache.lock)
    (fun () -> cache.runs)
