open Sea_isa

type taint = Input | Secret_unseal | Secret_random

type region = { lo : int; hi : int; taint : taint }

type state = {
  regs : Interval.t array;
  regions : region list;
  input_measured : bool;
}

let initial =
  {
    regs = Array.make 8 (Interval.const 0);
    regions = [];
    input_measured = false;
  }

(* How many region entries a state may carry before same-taint entries
   collapse to their hull, and how many joins a node absorbs before its
   register intervals widen. Both bound the fixpoint. *)
let max_regions = 32
let widen_after = 8

let normalize_regions regions =
  let sorted =
    List.sort
      (fun a b ->
        match compare a.taint b.taint with 0 -> compare a.lo b.lo | c -> c)
      regions
  in
  let merged =
    List.fold_left
      (fun acc r ->
        match acc with
        | prev :: rest when prev.taint = r.taint && r.lo <= prev.hi ->
            { prev with hi = max prev.hi r.hi } :: rest
        | _ -> r :: acc)
      [] sorted
    |> List.rev
  in
  if List.length merged <= max_regions then merged
  else
    (* Too fragmented: keep one hull per taint kind. *)
    List.fold_left
      (fun acc r ->
        match List.partition (fun h -> h.taint = r.taint) acc with
        | [ h ], rest ->
            { taint = r.taint; lo = min h.lo r.lo; hi = max h.hi r.hi } :: rest
        | _ -> r :: acc)
      [] merged

let add_region st ~lo ~hi ~taint =
  if lo >= hi then st
  else { st with regions = normalize_regions ({ lo; hi; taint } :: st.regions) }

let regions_overlapping st ~lo ~hi =
  List.filter (fun r -> lo < r.hi && r.lo < hi) st.regions

let state_equal a b =
  Array.for_all2 Interval.equal a.regs b.regs
  && a.regions = b.regions
  && a.input_measured = b.input_measured

let join a b =
  {
    regs = Array.map2 Interval.join a.regs b.regs;
    regions = normalize_regions (a.regions @ b.regions);
    input_measured = a.input_measured && b.input_measured;
  }

let widen old next =
  { next with regs = Array.map2 Interval.widen old.regs next.regs }

let clamp ~mem_size v = min v mem_size

let write_range ~mem_size ~ptr ~len =
  let open Interval in
  if len.hi = 0 then None
  else
    let lo = clamp ~mem_size ptr.lo in
    let hi = clamp ~mem_size (ptr.hi + len.hi) in
    if lo >= hi then None else Some (lo, hi)

(* Transfer function: the abstract mirror of the interpreter's [step]. *)
let transfer ~mem_size st op =
  let regs = Array.copy st.regs in
  let st = { st with regs } in
  let set a v = regs.(a) <- v in
  let sr = st.regs in
  let binop a b c f = set a (f sr.(b) sr.(c)) in
  let top_binop a = set a Interval.top in
  let exact2 b c f =
    if Interval.is_const sr.(b) && Interval.is_const sr.(c) then
      Interval.const (f sr.(b).Interval.lo sr.(c).Interval.lo)
    else Interval.top
  in
  match op with
  | Isa.Halt -> st
  | Isa.Loadi (a, imm) ->
      set a (Interval.const imm);
      st
  | Isa.Mov (a, b) ->
      set a sr.(b);
      st
  | Isa.Add (a, b, c) ->
      binop a b c Interval.add;
      st
  | Isa.Sub (a, b, c) ->
      binop a b c Interval.sub;
      st
  | Isa.Mul (a, b, c) ->
      binop a b c Interval.mul;
      st
  | Isa.Xor (a, b, c) ->
      set a (exact2 b c (fun x y -> x lxor y));
      st
  | Isa.And (a, b, c) ->
      set a (exact2 b c (fun x y -> x land y));
      st
  | Isa.Or (a, b, c) ->
      set a (exact2 b c (fun x y -> x lor y));
      st
  | Isa.Shl (a, b, c) ->
      set a
        (exact2 b c (fun x y -> x lsl (y land 31) land Interval.max32));
      st
  | Isa.Shr (a, b, c) ->
      set a (exact2 b c (fun x y -> x lsr (y land 31)));
      st
  | Isa.Ldb (a, _, _) ->
      set a (Interval.make ~lo:0 ~hi:255);
      st
  | Isa.Ldw (a, _, _) ->
      top_binop a;
      st
  | Isa.Stb _ | Isa.Stw _ -> st
  | Isa.Jmp _ | Isa.Jz _ | Isa.Jnz _ -> st
  | Isa.Lt (a, _, _) | Isa.Eq (a, _, _) ->
      set a (Interval.make ~lo:0 ~hi:1);
      st
  | Isa.Svc n ->
      let ptr = sr.(0) and len = sr.(1) and dst = sr.(2) in
      if n = Isa.svc_input_len then begin
        set 0 Interval.top;
        st
      end
      else if n = Isa.svc_input_read then begin
        (* r0 := bytes copied, at most the requested length. *)
        set 0 (Interval.make ~lo:0 ~hi:len.Interval.hi);
        match write_range ~mem_size ~ptr ~len with
        | None -> st
        | Some (lo, hi) -> add_region st ~lo ~hi ~taint:Input
      end
      else if n = Isa.svc_seal then begin
        set 0 Interval.top;
        st
      end
      else if n = Isa.svc_unseal then begin
        set 0 Interval.top;
        (* Payload length is unknown statically but never exceeds the
           blob's ([len]): taint [dst, dst+len). *)
        match write_range ~mem_size ~ptr:dst ~len with
        | None -> st
        | Some (lo, hi) -> add_region st ~lo ~hi ~taint:Secret_unseal
      end
      else if n = Isa.svc_random then begin
        match write_range ~mem_size ~ptr ~len with
        | None -> st
        | Some (lo, hi) -> add_region st ~lo ~hi ~taint:Secret_random
      end
      else if n = Isa.svc_extend then begin
        (* Extending a range that holds raw input folds the input into
           the measurement chain — footnote 3's mitigation. *)
        match write_range ~mem_size ~ptr ~len with
        | None -> st
        | Some (lo, hi) ->
            if
              List.exists
                (fun r -> r.taint = Input)
                (regions_overlapping st ~lo ~hi)
            then { st with input_measured = true }
            else st
      end
      else (* svc_output, svc_sha256, unknown: no register effects we track *)
        st

let run (cfg : Cfg.t) ~mem_size =
  let states = Hashtbl.create 64 in
  let visits = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace states 0 initial;
  Queue.add 0 queue;
  while not (Queue.is_empty queue) do
    let pc = Queue.pop queue in
    let node = Cfg.node cfg pc in
    match node.Cfg.decoded with
    | Error _ -> ()
    | Ok op ->
        let post = transfer ~mem_size (Hashtbl.find states pc) op in
        List.iter
          (fun succ ->
            if Hashtbl.mem cfg.Cfg.nodes succ then begin
              let updated =
                match Hashtbl.find_opt states succ with
                | None -> Some post
                | Some cur ->
                    let visits_n =
                      Option.value ~default:0 (Hashtbl.find_opt visits succ)
                    in
                    let next = join cur post in
                    let next =
                      if visits_n >= widen_after then widen cur next else next
                    in
                    if state_equal cur next then None else Some next
              in
              match updated with
              | None -> ()
              | Some next ->
                  Hashtbl.replace states succ next;
                  Hashtbl.replace visits succ
                    (1 + Option.value ~default:0 (Hashtbl.find_opt visits succ));
                  Queue.add succ queue
            end)
          node.Cfg.succs
  done;
  states
