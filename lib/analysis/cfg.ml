open Sea_isa

type node = {
  pc : int;
  decoded : (Isa.op, string) result;
  truncated : bool;
  off_image : bool;
  succs : int list;
}

type t = {
  code : string;
  image_size : int;
  nodes : (int, node) Hashtbl.t;
  order : int list;
  back_edges : (int * int) list;
  code_spans : (int * int) list;
}

let successors_of op ~pc =
  let next = pc + Isa.insn_size in
  match op with
  | Isa.Halt -> []
  | Isa.Jmp t -> [ t ]
  | Isa.Jz (_, t) | Isa.Jnz (_, t) -> [ t; next ]
  | _ -> [ next ]

let merge_spans spans =
  let sorted = List.sort compare spans in
  List.fold_left
    (fun acc (lo, hi) ->
      match acc with
      | (alo, ahi) :: rest when lo <= ahi -> (alo, max ahi hi) :: rest
      | _ -> (lo, hi) :: acc)
    [] sorted
  |> List.rev

let build ?(mem_size = Isa.default_mem_size) code =
  let image_size = String.length code in
  let nodes = Hashtbl.create 64 in
  let back_edges = ref [] in
  let rec explore pc =
    if not (Hashtbl.mem nodes pc) then begin
      let node =
        if pc >= image_size then
          (* Zero-filled memory decodes as Halt; nothing to follow. *)
          {
            pc;
            decoded = Error "past the measured image";
            truncated = false;
            off_image = true;
            succs = [];
          }
        else if pc + Isa.insn_size > image_size then
          {
            pc;
            decoded = Error "instruction truncated by image end";
            truncated = true;
            off_image = false;
            succs = [];
          }
        else
          let decoded = Isa.decode code ~pos:pc in
          let succs =
            match decoded with Ok op -> successors_of op ~pc | Error _ -> []
          in
          { pc; decoded; truncated = false; off_image = false; succs }
      in
      Hashtbl.replace nodes pc node;
      List.iter
        (fun s ->
          if s <= pc then back_edges := (pc, s) :: !back_edges;
          (* Out-of-memory targets fault at fetch; record the edge but
             do not materialize a node for them. *)
          if s >= 0 && s < mem_size then explore s)
        node.succs
    end
  in
  if image_size > 0 then explore 0;
  let order =
    Hashtbl.fold (fun pc _ acc -> pc :: acc) nodes [] |> List.sort compare
  in
  let code_spans =
    List.filter_map
      (fun pc ->
        let n = Hashtbl.find nodes pc in
        if n.off_image then None
        else Some (pc, min (pc + Isa.insn_size) image_size))
      order
    |> merge_spans
  in
  { code; image_size; nodes; order; back_edges = List.rev !back_edges; code_spans }

let node t pc = Hashtbl.find t.nodes pc

let reachable_insns t =
  List.length
    (List.filter
       (fun pc -> Result.is_ok (Hashtbl.find t.nodes pc).decoded)
       t.order)

let overlaps_code t ~lo ~hi =
  lo < hi
  && List.exists (fun (slo, shi) -> lo < shi && slo < hi) t.code_spans
