(* Loop trip-bound inference over the CFG and the interval fixpoint.

   A back-edge (latch, head) gets a provable trip bound when its natural
   loop is simple enough to reason about syntactically:

   - the body is reducible (entered only through the head) and its
     internal structure is a single cycle head -> ... -> latch -> head,
     so every back-edge traversal executes every body instruction once;
   - bodies of distinct back-edges are pairwise disjoint (no nesting,
     no shared latches) — nesting multiplies trip counts in ways this
     pass does not model, so it refuses rather than guess;
   - a counter register is written exactly once in the body, by an ADD
     of a step whose interval at that site is a known positive constant
     range;
   - the loop exits through a guard: a compare (EQ or LT) of the
     counter against a bound register that is never written inside the
     body, feeding an adjacent conditional jump with a successor
     outside the body.

   Two guard shapes are recognised, both counting upward:

     EQ counter, bound ; JNZ -> stay   ("while counter <> bound")
       requires step = 1 and init.hi <= bound.lo, else the counter
       could step over the bound and wrap; trips <= bound.hi - init.lo.

     LT counter, bound ; exit when the compare is false
       ("while counter < bound"); requires bound.hi + step.hi to stay
       below 2^32 so the ADD cannot wrap past the guard;
       trips <= ceil((bound.hi - init.lo) / step.lo).

   The counter's initial value is joined over the out-states of the
   head's forward (entry) predecessors — NOT the head's own in-state,
   which has been widened around the loop. Anything that fails a check
   makes the whole image unbounded: soundness of the certificate rests
   on every back-edge being covered, so one unprovable loop poisons all
   of them. *)

open Sea_isa

type loop = {
  head : int;  (* back-edge destination: the loop's single entry *)
  latch : int;  (* back-edge source *)
  body : int list;  (* pcs in the natural loop, head included, sorted *)
  trips : int;  (* max traversals of the back edge per loop entry *)
}

(* Register written by an op, if any. Services clobber r0 (the
   read/seal/unseal return registers); treating every SVC as an r0
   write is conservative and keeps the counter check simple. *)
let writes = function
  | Isa.Halt | Isa.Jmp _ | Isa.Jz _ | Isa.Jnz _ | Isa.Stb _ | Isa.Stw _ -> None
  | Isa.Loadi (a, _)
  | Isa.Mov (a, _)
  | Isa.Add (a, _, _)
  | Isa.Sub (a, _, _)
  | Isa.Mul (a, _, _)
  | Isa.Xor (a, _, _)
  | Isa.And (a, _, _)
  | Isa.Or (a, _, _)
  | Isa.Shl (a, _, _)
  | Isa.Shr (a, _, _)
  | Isa.Ldb (a, _, _)
  | Isa.Ldw (a, _, _)
  | Isa.Lt (a, _, _)
  | Isa.Eq (a, _, _) -> Some a
  | Isa.Svc _ -> Some 0

let preds_of cfg =
  let preds = Hashtbl.create 64 in
  List.iter
    (fun pc ->
      let n = Cfg.node cfg pc in
      List.iter
        (fun s ->
          if Hashtbl.mem cfg.Cfg.nodes s then
            Hashtbl.replace preds s
              (pc :: Option.value ~default:[] (Hashtbl.find_opt preds s)))
        n.Cfg.succs)
    cfg.Cfg.order;
  preds

(* Natural loop of (latch, head): head plus every node that reaches
   the latch backwards without passing through the head. *)
let body_of preds ~head ~latch =
  let seen = Hashtbl.create 16 in
  Hashtbl.replace seen head ();
  let rec walk pc =
    if not (Hashtbl.mem seen pc) then begin
      Hashtbl.replace seen pc ();
      List.iter walk (Option.value ~default:[] (Hashtbl.find_opt preds pc))
    end
  in
  walk latch;
  List.sort compare (Hashtbl.fold (fun pc () acc -> pc :: acc) seen [])

let decoded_op cfg pc =
  match Cfg.node cfg pc with
  | exception Not_found -> None
  | n -> ( match n.Cfg.decoded with Ok op -> Some op | Error _ -> None)

(* ceil((hi - lo) / step), all non-negative. *)
let ceil_div a b = (a + b - 1) / b

let bound_one cfg states preds ~mem_size ~head ~latch =
  let body = body_of preds ~head ~latch in
  let member = Hashtbl.create 16 in
  List.iter (fun pc -> Hashtbl.replace member pc ()) body;
  let mem pc = Hashtbl.mem member pc in
  (* The head must be the loop's lowest pc (otherwise another back-edge
     is hiding inside, and disjointness below would have caught it —
     check anyway to keep this pass self-contained). *)
  let structure_ok =
    List.for_all (fun pc -> pc >= head) body
    (* Reducible: nobody jumps into the middle of the body. *)
    && List.for_all
         (fun pc ->
           pc = head
           || List.for_all mem
                (Option.value ~default:[] (Hashtbl.find_opt preds pc)))
         body
    (* Single internal cycle: exactly one in-body successor each, so
       every traversal of the back edge executes the whole body. *)
    && List.for_all
         (fun pc ->
           match Cfg.node cfg pc with
           | exception Not_found -> false
           | n ->
               Result.is_ok n.Cfg.decoded
               && List.length (List.filter mem n.Cfg.succs) = 1
               && List.for_all (fun s -> Hashtbl.mem cfg.Cfg.nodes s) n.Cfg.succs)
         body
  in
  if not structure_ok then None
  else
    (* Exactly one body instruction may write the counter; find the
       single ADD and make sure nothing else in the body writes it. *)
    let writers reg =
      List.filter
        (fun pc ->
          match decoded_op cfg pc with
          | Some op -> writes op = Some reg
          | None -> true (* undecodable body: give up via the caller *))
        body
    in
    (* Locate a guard: a conditional jump in the body with an exit
       successor, fed by an adjacent compare. *)
    let guards =
      List.filter_map
        (fun pc ->
          match decoded_op cfg pc with
          | Some (Isa.Jz (t, _)) | Some (Isa.Jnz (t, _)) -> (
              let cmp_pc = pc - Isa.insn_size in
              if not (mem cmp_pc) then None
              else
                match decoded_op cfg cmp_pc with
                | Some (Isa.Eq (t', i, n)) when t' = t ->
                    Some (pc, cmp_pc, `Eq, i, n)
                | Some (Isa.Lt (t', i, n)) when t' = t ->
                    Some (pc, cmp_pc, `Lt, i, n)
                | _ -> None)
          | _ -> None)
        body
    in
    let try_guard (jump_pc, cmp_pc, kind, counter, bound) =
      (* Which way does the jump exit? *)
      let jump = decoded_op cfg jump_pc in
      let exit_when_true =
        match jump with
        | Some (Isa.Jnz (_, target)) when not (mem target) -> Some true
        | Some (Isa.Jnz (_, target)) when mem target -> Some false
        | Some (Isa.Jz (_, target)) when not (mem target) -> Some false
        | Some (Isa.Jz (_, target)) when mem target -> Some true
        | _ -> None
      in
      match exit_when_true with
      | None -> None
      | Some exit_true -> (
          if counter = bound then None
          else if writers bound <> [] then None
          else
            match writers counter with
            | [ add_pc ] -> (
                let step_interval =
                  match
                    (decoded_op cfg add_pc, Hashtbl.find_opt states add_pc)
                  with
                  | Some (Isa.Add (a, b, c)), Some st when a = counter ->
                      if b = counter && c <> counter then
                        Some st.Dataflow.regs.(c)
                      else if c = counter && b <> counter then
                        Some st.Dataflow.regs.(b)
                      else None
                  | _ -> None
                in
                match (step_interval, Hashtbl.find_opt states cmp_pc) with
                | Some step, Some at_cmp -> (
                    let bnd = at_cmp.Dataflow.regs.(bound) in
                    (* Initial counter value: join of the entry
                       predecessors' out-states (pc 0 enters with all
                       registers zero). *)
                    let entry_preds =
                      List.filter
                        (fun p -> not (mem p))
                        (Option.value ~default:[]
                           (Hashtbl.find_opt preds head))
                    in
                    let init =
                      List.fold_left
                        (fun acc p ->
                          match
                            (decoded_op cfg p, Hashtbl.find_opt states p)
                          with
                          | Some op, Some st ->
                              let out = Dataflow.transfer ~mem_size st op in
                              let iv = out.Dataflow.regs.(counter) in
                              Some
                                (match acc with
                                | None -> iv
                                | Some a -> Interval.join a iv)
                          | _ -> acc)
                        (if head = 0 then Some (Interval.const 0) else None)
                        entry_preds
                    in
                    match init with
                    | None -> None
                    | Some init -> (
                        let lo_step = step.Interval.lo in
                        if lo_step < 1 then None
                        else
                          match (kind, exit_true) with
                          | `Eq, true ->
                              (* while counter <> bound: needs step 1 and
                                 a start at or below the bound. *)
                              if
                                Interval.is_const step
                                && lo_step = 1
                                && init.Interval.hi <= bnd.Interval.lo
                              then Some (bnd.Interval.hi - init.Interval.lo)
                              else None
                          | `Lt, false ->
                              (* while counter < bound: the ADD must not
                                 wrap past the guard. *)
                              if
                                bnd.Interval.hi + step.Interval.hi
                                <= Interval.max32
                              then
                                Some
                                  (max 0
                                     (ceil_div
                                        (max 0
                                           (bnd.Interval.hi
                                          - init.Interval.lo))
                                        lo_step))
                              else None
                          | _ -> None))
                | _ -> None)
            | _ -> None)
    in
    List.fold_left
      (fun acc g ->
        match acc with
        | Some _ -> acc
        | None -> (
            match try_guard g with
            | Some trips -> Some { head; latch; body; trips }
            | None -> None))
      None guards

(* Bound every back-edge or none: [Some loops] means each back-edge has
   a provable trip count and the loop bodies are pairwise disjoint, so
   the cost pass may multiply counts per-loop independently. *)
let infer cfg states ~mem_size =
  match cfg.Cfg.back_edges with
  | [] -> Some []
  | edges ->
      let preds = preds_of cfg in
      let rec go acc seen = function
        | [] -> Some (List.rev acc)
        | (latch, head) :: rest -> (
            match bound_one cfg states preds ~mem_size ~head ~latch with
            | None -> None
            | Some loop ->
                if List.exists (fun pc -> Hashtbl.mem seen pc) loop.body then
                  None
                else begin
                  List.iter (fun pc -> Hashtbl.replace seen pc ()) loop.body;
                  go (loop :: acc) seen rest
                end)
      in
      go [] (Hashtbl.create 32) edges
