type t = { lo : int; hi : int }

let max32 = 0xFFFFFFFF
let top = { lo = 0; hi = max32 }
let const v = { lo = v land max32; hi = v land max32 }

let make ~lo ~hi =
  let lo = max 0 (min lo max32) and hi = max 0 (min hi max32) in
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let is_const v = v.lo = v.hi
let is_top v = v.lo = 0 && v.hi = max32
let equal a b = a.lo = b.lo && a.hi = b.hi
let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let widen old next =
  {
    lo = (if next.lo < old.lo then 0 else old.lo);
    hi = (if next.hi > old.hi then max32 else old.hi);
  }

(* Exact when no bound escapes 32 bits; a possible wrap means the value
   could be anything. *)
let add a b =
  if a.hi + b.hi > max32 then top else { lo = a.lo + b.lo; hi = a.hi + b.hi }

let sub a b =
  if a.lo - b.hi < 0 then top else { lo = a.lo - b.hi; hi = a.hi - b.lo }

let mul a b =
  (* Division guard: [a.hi * b.hi] itself can overflow the host int. *)
  if a.hi <> 0 && b.hi > max32 / a.hi then top
  else { lo = a.lo * b.lo; hi = a.hi * b.hi }

let add_const v k = add v (const (k land max32))

let to_string v =
  if is_top v then "[0,2^32)"
  else if is_const v then string_of_int v.lo
  else Printf.sprintf "[%d,%d]" v.lo v.hi
