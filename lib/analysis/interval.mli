(** Interval abstract domain over the VM's 32-bit registers.

    A value is a closed range [\[lo, hi\]] with
    [0 <= lo <= hi <= 0xFFFFFFFF]. Arithmetic that may wrap modulo 2{^32}
    goes to {!top} rather than modelling the wrap — the analyzer only
    needs addresses, and a wrapped address is "could be anywhere". *)

type t = private { lo : int; hi : int }

val max32 : int
val top : t
val const : int -> t
(** Masked to 32 bits. *)

val make : lo:int -> hi:int -> t
(** Clamped to [\[0, max32\]]; [invalid_arg] if [lo > hi] after clamping. *)

val is_const : t -> bool
val is_top : t -> bool
val equal : t -> t -> bool

val join : t -> t -> t
(** Convex hull. *)

val widen : t -> t -> t
(** [widen old next]: any bound that grew jumps to its extreme, ensuring
    the dataflow fixpoint terminates. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val add_const : t -> int -> t
(** [add_const v k] — the addressing-mode case [reg + imm]. *)

val to_string : t -> string
