(** The threat model of §3.2, as executable attacks.

    The adversary controls all legacy software — it runs ring-0 code, can
    invoke SKINIT/SLAUNCH with arguments of its choosing, and owns
    DMA-capable peripherals. Each function below mounts one attack against
    a machine/PAL and reports what the hardware did. Tests assert
    [Blocked]; any [Succeeded] is a broken security property (DoS is out
    of scope, §3.2).

    Each attack returns the mechanism that stopped it, so the tests also
    document {e which} recommendation carries which property. *)

type verdict =
  | Blocked of string  (** Attack stopped; the string names the mechanism. *)
  | Succeeded of string  (** Security failure; description of the leak. *)

val dma_read_protected_page :
  Sea_hw.Machine.t -> device:string -> page:int -> verdict
(** A malicious DMA peripheral (e.g. compromised NIC, §3.2) reads a
    protected page: stopped by the DEV on today's hardware, by the
    access-control table on the proposed hardware. *)

val cpu_read_pal_page :
  Sea_hw.Machine.t -> cpu:int -> page:int -> verdict
(** Code on another core reads an executing/suspended PAL's page —
    possible on today's hardware (which is why SKINIT requires other cores
    idle), stopped by the access-control table on proposed hardware. *)

val forge_measured_flag :
  Sea_hw.Machine.t -> cpu:int -> Sea_core.Pal.t -> verdict
(** Build a fresh SECB with the Measured Flag pre-set and SLAUNCH it,
    hoping to run an unmeasured PAL: must fail because the flag is honored
    only when the SECB's pages are in the suspended (NONE) state
    (§5.3.1). *)

val double_resume :
  Sea_hw.Machine.t -> cpu:int -> Sea_hw.Secb.t -> verdict
(** SLAUNCH an already-executing PAL's SECB on a second CPU (§5.3.1: "any
    other CPU that tries to resume the same PAL will fail"). *)

val software_pcr17_reset : Sea_hw.Machine.t -> verdict
(** Invoke TPM_HASH_START from ring-0 software to reset PCR 17 and forge a
    late-launch measurement (§2.1.3: hardware-only). *)

val unseal_after_pal_exit : Sea_hw.Machine.t -> blob:string -> verdict
(** Replay a PAL's sealed blob from the untrusted OS after the session
    ended: the exit marker in the identity PCR makes the policy fail. *)

val tamper_quote :
  Sea_hw.Machine.t -> Sea_tpm.Tpm.quote -> nonce:string -> Sea_core.Pal.t -> verdict
(** Flip a bit in a quote's PCR values and present it to the verifier. *)

val extend_foreign_sepcr :
  Sea_hw.Machine.t -> cpu:int -> Sea_tpm.Sepcr.handle -> verdict
(** Extend (from software, and from a non-owner CPU) a sePCR bound to
    another PAL (§5.4.2). *)

val sfree_from_outside :
  Sea_hw.Machine.t -> cpu:int -> Sea_hw.Secb.t -> verdict
(** Execute SFREE from untrusted code while the PAL is suspended ("SFREE
    executed by other code must fail", §5.5). *)

val replay_stale_sealed_state :
  Sea_hw.Machine.t -> cpu:int -> stale_blob:string -> verdict
(** Present a PAL with an {e earlier} version of its rollback-protected
    sealed state (the gap the plain design leaves open; blocked by the
    monotonic-counter discipline of {!Sea_core.Rollback}). *)

val skinit_retry_skips_measurement :
  Sea_hw.Machine.t -> cpu:int -> Sea_core.Pal.t -> input:string -> verdict
(** Sever the [TPM_HASH_DATA] stream mid-SKINIT (one injected
    [Hash_abort] fault) and let the session's retry policy relaunch:
    the retried launch must restart measurement from [TPM_HASH_START],
    never leaving the PAL running with a partial or stale identity
    PCR. [Blocked] when the post-launch identity PCR matches the full
    expected measurement chain (or the launch fails closed). *)

val join_uninvited_cpu :
  Sea_hw.Machine.t -> cpu:int -> Sea_hw.Secb.t -> verdict
(** SJOIN a CPU to a suspended or foreign PAL from untrusted code: the
    access-control table only admits joins to an executing PAL's own
    page set (§6 "Multicore PALs"). Meaningful when [secb] is
    suspended — an executing PAL's owner may legitimately join. *)
