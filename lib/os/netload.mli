(** Network I/O under PAL load: what the whole-platform stall costs.

    §4.2 observes that during a PAL session "all other operations on the
    computer will be suspended for over a second". This module turns
    that into a concrete, measurable consequence: a NIC receiving at
    line rate DMAs packets into a ring buffer that only the (suspended)
    OS can drain. While a session stalls the platform the ring fills and
    overflows; every overflow is a dropped packet. On the proposed
    hardware the OS keeps running, the ring keeps draining, and loss
    stays at zero.

    The packet process is deterministic (fixed inter-arrival time); ring
    occupancy is simulated arrival-by-arrival against the stall windows
    the caller collected from real session runs. *)

type stats = {
  offered : int;  (** Packets that arrived during the experiment. *)
  delivered : int;
  dropped : int;
  peak_occupancy : int;  (** High-water mark of the ring. *)
}

val simulate :
  rate_pps:int ->
  duration:Sea_sim.Time.t ->
  ring_slots:int ->
  stall_windows:(Sea_sim.Time.t * Sea_sim.Time.t) list ->
  stats
(** Pure occupancy simulation: packets arrive every [1/rate_pps]; the
    OS drains the ring instantaneously outside stall windows and not at
    all inside them. Windows must be disjoint (order is not required)
    and each must end no earlier than it starts; both properties are
    checked. Raises [Invalid_argument] on a non-positive rate or ring
    size, on overlapping windows, or on a window of negative length. *)

val collect_stall_windows :
  Sea_hw.Machine.t ->
  sessions:int ->
  period:Sea_sim.Time.t ->
  Sea_core.Pal.t ->
  ((Sea_sim.Time.t * Sea_sim.Time.t) list, string) Stdlib.result
(** Run [sessions] full SEA sessions, one every [period], on the given
    machine (Gen first, then resealing Uses — state threads through) and
    return each session's [start, end) platform-stall window, measured
    off the machine clock. *)
