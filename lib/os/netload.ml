open Sea_sim
open Sea_core

type stats = {
  offered : int;
  delivered : int;
  dropped : int;
  peak_occupancy : int;
}

let simulate ~rate_pps ~duration ~ring_slots ~stall_windows =
  if rate_pps <= 0 then invalid_arg "Netload.simulate: rate must be positive";
  if ring_slots <= 0 then invalid_arg "Netload.simulate: ring must be positive";
  let windows =
    List.sort (fun (a, _) (b, _) -> Time.compare a b) stall_windows
  in
  (* Two stalls cannot overlap in wall-clock time: each one is the whole
     platform frozen. Catch malformed window lists instead of silently
     double-counting their intersection. *)
  let rec check = function
    | (s, e) :: _ when Time.compare e s < 0 ->
        invalid_arg "Netload.simulate: stall window ends before it starts"
    | (_, e1) :: (((s2, _) :: _) as rest) ->
        if Time.compare s2 e1 < 0 then
          invalid_arg "Netload.simulate: stall windows overlap"
        else check rest
    | [ _ ] | [] -> ()
  in
  check windows;
  let interval_ns = 1_000_000_000 / rate_pps in
  let total_ns = Time.to_ns duration in
  let offered = total_ns / interval_ns in
  let in_stall t = List.exists (fun (s, e) -> t >= s && t < e) windows in
  let occupancy = ref 0 and peak = ref 0 and dropped = ref 0 in
  for i = 0 to offered - 1 do
    let t = Time.ns (i * interval_ns) in
    if in_stall t then begin
      (* The OS cannot drain: the packet parks in the ring or overflows. *)
      if !occupancy >= ring_slots then incr dropped
      else begin
        incr occupancy;
        if !occupancy > !peak then peak := !occupancy
      end
    end
    else
      (* OS running: it drains the backlog (ring empties much faster than
         packets arrive at these rates) and consumes the packet. *)
      occupancy := 0
  done;
  {
    offered;
    delivered = offered - !dropped;
    dropped = !dropped;
    peak_occupancy = !peak;
  }

let collect_stall_windows (m : Sea_hw.Machine.t) ~sessions ~period pal =
  let engine = m.Sea_hw.Machine.engine in
  let rec go n blob acc =
    if n = 0 then Ok (List.rev acc)
    else begin
      let start = Engine.now engine in
      let input = match blob with None -> "" | Some b -> b in
      match Session.execute m ~cpu:0 pal ~input with
      | Error e -> Error e
      | Ok outcome ->
          let finish = Engine.now engine in
          (* Idle until the next session slot. *)
          Engine.elapse_to engine (Time.add start period);
          go (n - 1) (Some outcome.Session.output) ((start, finish) :: acc)
    end
  in
  go sessions None []
