open Sea_hw
open Sea_core

type verdict = Blocked of string | Succeeded of string

let dma_read_protected_page (m : Machine.t) ~device ~page =
  match
    Memctrl.read m.Machine.memctrl (Memctrl.Device device) ~page ~off:0 ~len:16
  with
  | Error _ ->
      let mech =
        if m.Machine.config.Machine.proposed then "access-control table"
        else "Device Exclusion Vector"
      in
      Blocked mech
  | Ok data -> Succeeded (Printf.sprintf "DMA read %d bytes" (String.length data))

let cpu_read_pal_page (m : Machine.t) ~cpu ~page =
  match Memctrl.read m.Machine.memctrl (Memctrl.Cpu cpu) ~page ~off:0 ~len:16 with
  | Error _ -> Blocked "access-control table"
  | Ok data ->
      Succeeded (Printf.sprintf "CPU %d read %d bytes" cpu (String.length data))

let forge_measured_flag (m : Machine.t) ~cpu pal =
  let pages = Machine.alloc_pages m (1 + Pal.pages_needed pal) in
  let secb =
    Secb.create ~id:(Machine.fresh_secb_id m) ~pages ~entry_point:0
      ~pal_length:(Pal.code_size pal) ()
  in
  let memory = Memctrl.memory m.Machine.memctrl in
  Memory.write_span memory ~pages:(Secb.data_pages secb) ~off:0 pal.Pal.code;
  secb.Secb.measured <- true (* the forgery *);
  let verdict =
    match Insn.slaunch m ~cpu secb with
    | Error e -> Blocked ("resume check: " ^ e)
    | Ok Insn.Resumed -> Succeeded "unmeasured PAL resumed"
    | Ok (Insn.Launched _) -> Succeeded "forged flag ignored but PAL launched anyway"
  in
  Machine.free_pages m pages;
  verdict

let double_resume (m : Machine.t) ~cpu secb =
  match Insn.slaunch m ~cpu secb with
  | Error e -> Blocked ("page-state check: " ^ e)
  | Ok _ -> Succeeded "PAL resumed on a second CPU"

let software_pcr17_reset (m : Machine.t) =
  let tpm = Machine.tpm_exn m in
  match Sea_tpm.Tpm.hash_start tpm ~caller:Sea_tpm.Tpm.Software with
  | Error e -> Blocked ("locality check: " ^ e)
  | Ok () -> Succeeded "software reset the dynamic PCRs"

let unseal_after_pal_exit (m : Machine.t) ~blob =
  let tpm = Machine.tpm_exn m in
  match Sea_tpm.Tpm.unseal tpm ~caller:Sea_tpm.Tpm.Software blob with
  | Error e -> Blocked ("seal policy: " ^ e)
  | Ok secret -> Succeeded (Printf.sprintf "unsealed %d bytes" (String.length secret))

let tamper_quote (m : Machine.t) q ~nonce pal =
  let flip s =
    if String.length s = 0 then s
    else
      String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) s
  in
  let tampered =
    {
      q with
      Sea_tpm.Tpm.selection =
        List.map (fun (i, v) -> (i, flip v)) q.Sea_tpm.Tpm.selection;
      sepcr_value = Option.map flip q.Sea_tpm.Tpm.sepcr_value;
    }
  in
  let evidence = Attestation.gather m tampered in
  let expectation =
    match tampered.Sea_tpm.Tpm.sepcr_value with
    | Some _ -> Attestation.expect_slaunch_exit pal
    | None -> Attestation.expect_session_exit m pal
  in
  match
    Attestation.verify ~ca:(Sea_tpm.Tpm.privacy_ca_public ()) ~nonce expectation
      evidence
  with
  | Error e -> Blocked ("verifier: " ^ e)
  | Ok () -> Succeeded "tampered quote accepted"

let extend_foreign_sepcr (m : Machine.t) ~cpu handle =
  let tpm = Machine.tpm_exn m in
  match Sea_tpm.Tpm.sepcr_extend tpm ~caller:Sea_tpm.Tpm.Software handle "evil" with
  | Ok _ -> Succeeded "software extended a foreign sePCR"
  | Error _ -> (
      (* Try again from a non-owner CPU's hardware path. *)
      match Sea_tpm.Tpm.sepcr_extend tpm ~caller:(Sea_tpm.Tpm.Cpu cpu) handle "evil" with
      | Ok _ -> Succeeded "non-owner CPU extended a foreign sePCR"
      | Error e -> Blocked ("sePCR binding: " ^ e))

let sfree_from_outside (m : Machine.t) ~cpu secb =
  match Insn.sfree m ~cpu secb with
  | Error e -> Blocked ("SFREE origin check: " ^ e)
  | Ok () -> Succeeded "untrusted code freed a PAL"

let replay_stale_sealed_state (m : Machine.t) ~cpu ~stale_blob =
  let tpm = Machine.tpm_exn m in
  match Rollback.unseal tpm ~caller:(Sea_tpm.Tpm.Cpu cpu) stale_blob with
  | Error e -> Blocked ("monotonic counter: " ^ e)
  | Ok payload ->
      Succeeded (Printf.sprintf "replayed %d bytes of stale state" (String.length payload))

let skinit_retry_skips_measurement (m : Machine.t) ~cpu pal ~input =
  let tpm = Machine.tpm_exn m in
  (* One severed TPM_HASH_DATA stream, then clean hardware — the glitch
     an adversary with physical access to the LPC wiring can cause. If
     the retry path resumed the severed hash sequence instead of
     restarting it, the PAL would run with a partial identity PCR and
     unseal secrets under a measurement the verifier never approved. *)
  let plan =
    Sea_fault.Fault.create
      ~kinds:[ Sea_fault.Fault.Hash_abort ]
      ~max_injections:1 ~rate:1.
      (Sea_sim.Rng.create ~seed:42L ())
  in
  Sea_tpm.Tpm.set_faults tpm (Some plan);
  let retry = Sea_fault.Retry.policy () in
  let result = Session.execute m ~cpu ~retry pal ~input in
  Sea_tpm.Tpm.set_faults tpm None;
  match result with
  | Error e -> Blocked ("launch failed closed: " ^ e)
  | Ok o ->
      if Sea_fault.Fault.total plan = 0 then
        Succeeded "fault never injected; the attack was not exercised"
      else if Sea_fault.Retry.retries retry = 0 then
        Succeeded "session succeeded without retrying an aborted launch"
      else if
        o.Session.identity_value <> Session.expected_identity m pal
      then Succeeded "PAL ran with a partial identity PCR after a retried SKINIT"
      else Blocked "retried SKINIT re-measured from TPM_HASH_START"

let join_uninvited_cpu (m : Machine.t) ~cpu secb =
  match Insn.sjoin m ~cpu secb with
  | Error e -> Blocked ("join check: " ^ e)
  | Ok () -> Succeeded "CPU joined a PAL it does not own"
