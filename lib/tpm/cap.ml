type t = {
  name : string;
  seal :
    caller:Tpm.caller ->
    ?sepcr:Sepcr.handle ->
    pcr_policy:(int * string) list ->
    string ->
    (string, string) result;
  unseal :
    caller:Tpm.caller ->
    ?sepcr:Sepcr.handle ->
    string ->
    (string, string) result;
  get_random : int -> string;
  pcr_extend : int -> string -> string;
  sepcr_extend :
    caller:Tpm.caller -> Sepcr.handle -> string -> (string, string) result;
  launch_measured : pcr:int -> measurement:string -> unit;
}

let of_tpm tpm =
  {
    name = "hw:" ^ Tpm.tag tpm;
    seal = (fun ~caller ?sepcr ~pcr_policy p -> Tpm.seal tpm ~caller ?sepcr ~pcr_policy p);
    unseal = (fun ~caller ?sepcr blob -> Tpm.unseal tpm ~caller ?sepcr blob);
    get_random = (fun n -> Tpm.get_random tpm n);
    pcr_extend = (fun i m -> Tpm.pcr_extend tpm i m);
    sepcr_extend = (fun ~caller h m -> Tpm.sepcr_extend tpm ~caller h m);
    (* The hardware already reset its dynamic bank and extended the
       measurement during TPM_HASH_*/SLAUNCH; nothing to mirror. *)
    launch_measured = (fun ~pcr:_ ~measurement:_ -> ());
  }
