type t = {
  name : string;
  seal :
    caller:Tpm.caller ->
    ?sepcr:Sepcr.handle ->
    ?binding:string ->
    pcr_policy:(int * string) list ->
    string ->
    (string, string) result;
  unseal :
    caller:Tpm.caller ->
    ?sepcr:Sepcr.handle ->
    ?binding:string ->
    string ->
    (string, string) result;
  get_random : int -> string;
  pcr_extend : int -> string -> string;
  sepcr_extend :
    caller:Tpm.caller -> Sepcr.handle -> string -> (string, string) result;
  launch_measured : pcr:int -> measurement:string -> unit;
}

(* The hardware TPM has no binding notion, so a bound payload is wrapped
   with a length-prefixed header checked at unseal time. Unbound payloads
   pass through untouched, keeping pre-existing blobs byte-identical. *)
let bind_wrap binding p =
  match binding with
  | None -> p
  | Some b -> Printf.sprintf "BIND%08x%s%s" (String.length b) b p

let bind_unwrap binding p =
  match binding with
  | None -> Ok p
  | Some b ->
      let hdr = Printf.sprintf "BIND%08x%s" (String.length b) b in
      let hl = String.length hdr in
      if String.length p >= hl && String.sub p 0 hl = hdr then
        Ok (String.sub p hl (String.length p - hl))
      else Error "sealed-blob binding mismatch"

let of_tpm tpm =
  {
    name = "hw:" ^ Tpm.tag tpm;
    seal =
      (fun ~caller ?sepcr ?binding ~pcr_policy p ->
        Tpm.seal tpm ~caller ?sepcr ~pcr_policy (bind_wrap binding p));
    unseal =
      (fun ~caller ?sepcr ?binding blob ->
        match Tpm.unseal tpm ~caller ?sepcr blob with
        | Error e -> Error e
        | Ok p -> bind_unwrap binding p);
    get_random = (fun n -> Tpm.get_random tpm n);
    pcr_extend = (fun i m -> Tpm.pcr_extend tpm i m);
    sepcr_extend = (fun ~caller h m -> Tpm.sepcr_extend tpm ~caller h m);
    (* The hardware already reset its dynamic bank and extended the
       measurement during TPM_HASH_*/SLAUNCH; nothing to mirror. *)
    launch_measured = (fun ~pcr:_ ~measurement:_ -> ());
  }
