open Sea_sim
open Sea_crypto

type caller = Cpu of int | Software

type t = {
  vendor : Vendor.t;
  profile : Timing.profile;
  engine : Engine.t;
  lpc : Sea_bus.Lpc.t;
  pcrs : Pcr.bank;
  sepcrs : Sepcr.bank option;
  srk : Rsa.private_key;
  aik : Rsa.private_key;
  aik_cert : string;
  drbg : Drbg.t;
  rng : Rng.t; (* timing jitter only *)
  mutable faults : Sea_fault.Fault.t option;
  mutable hash_session : Sha1.ctx option;
  mutable locked_by : int option;
  mutable lock_contentions : int;
  counters : (int, int) Hashtbl.t;
  mutable next_counter : int;
  nv : (int, string * string) Hashtbl.t; (* index -> (auth secret, data) *)
  instance_tag : string; (* distinguishes blobs across TPM instances *)
}

let privacy_ca () = Keyvault.get ~label:"privacy-ca" ~bits:2048
let privacy_ca_public () = (privacy_ca ()).Rsa.pub

let certify_aik (aik_pub : Rsa.public) =
  let enc = Wire.encoder () in
  Wire.add_string enc (Bignum.to_bytes_be aik_pub.Rsa.n);
  Wire.add_string enc (Bignum.to_bytes_be aik_pub.Rsa.e);
  Rsa.sign (privacy_ca ()) ("AIK-CERT" ^ Wire.contents enc)

let verify_aik_certificate ~ca ~(aik : Rsa.public) cert =
  let enc = Wire.encoder () in
  Wire.add_string enc (Bignum.to_bytes_be aik.Rsa.n);
  Wire.add_string enc (Bignum.to_bytes_be aik.Rsa.e);
  Rsa.verify ca ~msg:("AIK-CERT" ^ Wire.contents enc) ~signature:cert

(* Atomic so TPMs may be created from any domain; the tag only
   disambiguates blobs across instances, nothing rendered depends on
   its numeric value. *)
let instance_counter = Atomic.make 0

let create ?(vendor = Vendor.Broadcom) ?profile ?(key_bits = 2048) ?(sepcr_count = 0)
    engine =
  let profile = match profile with Some p -> p | None -> Timing.profile vendor in
  let instance = Atomic.fetch_and_add instance_counter 1 + 1 in
  let tag = Printf.sprintf "%s#%d" (Vendor.name vendor) instance in
  let srk = Keyvault.get ~label:("srk:" ^ Vendor.name vendor) ~bits:key_bits in
  let aik = Keyvault.get ~label:("aik:" ^ Vendor.name vendor) ~bits:key_bits in
  {
    vendor;
    profile;
    engine;
    lpc = Sea_bus.Lpc.create engine;
    pcrs = Pcr.create ();
    sepcrs = (if sepcr_count > 0 then Some (Sepcr.create ~size:sepcr_count) else None);
    srk;
    aik;
    aik_cert = certify_aik aik.Rsa.pub;
    drbg = Drbg.create ~seed:("tpm-drbg:" ^ tag);
    (* Jitter derives from the engine's deterministic stream so that two
       identically configured machines replay identical timelines. *)
    rng = Rng.split (Engine.rng engine);
    faults = None;
    hash_session = None;
    locked_by = None;
    lock_contentions = 0;
    counters = Hashtbl.create 4;
    next_counter = 0;
    nv = Hashtbl.create 4;
    instance_tag = tag;
  }

let vendor t = t.vendor
let tag t = t.instance_tag
let profile t = t.profile
let engine t = t.engine
let lpc t = t.lpc
let aik_public t = t.aik.Rsa.pub
let aik_certificate t = t.aik_cert

let charge t mean = Engine.advance t.engine (Timing.draw t.rng t.profile mean)

(* Every TPM command entry point runs inside one of these spans, so a
   trace sink sees per-command latency histograms keyed "tpm"/<command>
   for free; with no sink installed this is the [f ()] identity. *)
let traced t name f = Sea_trace.Trace.with_span t.engine ~cat:"tpm" name f

let set_faults t plan =
  t.faults <- plan;
  Sea_bus.Lpc.set_faults t.lpc plan

let faults t = t.faults

(* A fired fault yields a transient error; the injection sites below are
   placed before any state mutation, so a retried command observes the
   TPM exactly as if the failed attempt never ran (a busy part burns the
   command's latency but commits nothing). *)
let inject t kind msg =
  match t.faults with
  | Some plan when Sea_fault.Fault.fires plan kind ->
      Sea_trace.Trace.instant t.engine ~cat:"fault"
        ~args:(fun () -> [ ("msg", Sea_trace.Trace.Str msg) ])
        (Sea_fault.Fault.kind_name kind);
      Some (Sea_fault.Fault.transient msg)
  | _ -> None

let reboot t =
  Pcr.reboot t.pcrs;
  t.hash_session <- None;
  t.locked_by <- None;
  (match t.sepcrs with
  | None -> ()
  | Some bank ->
      for i = 0 to Sepcr.size bank - 1 do
        (* Power loss clears all bindings; ignore per-slot state errors. *)
        match Sepcr.handle_of_int bank i with
        | None -> ()
        | Some h -> (
            match Sepcr.state bank h with
            | Sepcr.Free -> ()
            | Sepcr.Exclusive -> ignore (Sepcr.skill bank h)
            | Sepcr.Quote -> ignore (Sepcr.finish_quote bank h))
      done);
  charge t (Time.ms 1.)

(* --- Lock (§5.4.5) --- *)

let try_lock t ~cpu =
  match t.locked_by with
  | None ->
      t.locked_by <- Some cpu;
      true
  | Some holder when holder = cpu -> true
  | Some _ ->
      t.lock_contentions <- t.lock_contentions + 1;
      false

let unlock t ~cpu =
  match t.locked_by with
  | Some holder when holder = cpu -> t.locked_by <- None
  | _ -> invalid_arg "Tpm.unlock: lock not held by this CPU"

let lock_contentions t = t.lock_contentions

(* --- PCR commands --- *)

let pcr_read t i =
  traced t "pcr-read" (fun () ->
      charge t t.profile.Timing.pcr_read;
      Pcr.read t.pcrs i)

let pcr_extend t i m =
  traced t "pcr-extend" (fun () ->
      charge t t.profile.Timing.pcr_extend;
      Pcr.extend t.pcrs i m)

let pcr_extend_deferred t i m =
  (* The pipelined path: commit the extend now, hand its hardware cost
     back for the caller to account on the device's own timeline. No
     jitter draw — a background timeline must not perturb the stream the
     foreground commands draw their jitter from. *)
  let v = Pcr.extend t.pcrs i m in
  (v, t.profile.Timing.pcr_extend)

(* --- TPM_HASH_* sequence --- *)

let hash_start t ~caller =
  match caller with
  | Software -> Error "TPM_HASH_START is a hardware-only command"
  | Cpu _ ->
      traced t "hash-start" (fun () ->
          match inject t Tpm_busy "TPM_HASH_START busy" with
          | Some e ->
              charge t t.profile.Timing.hash_start;
              Error e
          | None ->
              charge t t.profile.Timing.hash_start;
              Pcr.dynamic_reset t.pcrs;
              t.hash_session <- Some (Sha1.init ());
              Ok ())

let hash_data t chunk =
  match t.hash_session with
  | None -> Error "no open hash session"
  | Some ctx ->
      traced t "hash-data" (fun () ->
          match inject t Hash_abort "TPM_HASH_DATA aborted mid-sequence" with
          | Some e ->
              (* The sequence dies partway through the transfer: the bus time
                 for the bytes already sent is spent, and the open hash
                 session is lost — a retry must restart from TPM_HASH_START. *)
              Sea_bus.Lpc.transfer t.lpc
                ~device_wait:t.profile.Timing.hash_data_wait
                ~bytes:(String.length chunk / 2);
              t.hash_session <- None;
              Error e
          | None ->
              (* The bytes cross the LPC bus with the vendor's long-wait stall. *)
              Sea_bus.Lpc.transfer t.lpc
                ~device_wait:t.profile.Timing.hash_data_wait
                ~bytes:(String.length chunk);
              Sha1.update ctx chunk;
              Ok ())

let hash_end t =
  match t.hash_session with
  | None -> Error "no open hash session"
  | Some ctx ->
      traced t "hash-end" (fun () ->
          match inject t Tpm_busy "TPM_HASH_END busy" with
          | Some e ->
              (* Busy response: the session survives, the command can retry. *)
              charge t t.profile.Timing.hash_end;
              Error e
          | None ->
              charge t t.profile.Timing.hash_end;
              t.hash_session <- None;
              let digest = Sha1.finalize ctx in
              Ok (Pcr.extend t.pcrs 17 digest))

(* --- Randomness --- *)

let get_random t n =
  traced t "get-random" (fun () ->
      Engine.advance t.engine
        (Timing.draw t.rng t.profile (Timing.get_random_time t.profile ~bytes:n));
      Drbg.generate_string t.drbg n)

(* --- Monotonic counters --- *)

let max_counters = 16

let counter_create t =
  if t.next_counter >= max_counters then Error "no free monotonic counter"
  else begin
    charge t t.profile.Timing.pcr_extend;
    let id = t.next_counter in
    t.next_counter <- id + 1;
    Hashtbl.replace t.counters id 0;
    Ok id
  end

let counter_read t id =
  charge t t.profile.Timing.pcr_read;
  match Hashtbl.find_opt t.counters id with
  | Some v -> Ok v
  | None -> Error "unknown counter"

let counter_increment t id =
  charge t t.profile.Timing.pcr_extend;
  match Hashtbl.find_opt t.counters id with
  | Some v ->
      let v = v + 1 in
      Hashtbl.replace t.counters id v;
      Ok v
  | None -> Error "unknown counter"

(* --- Authorization sessions and NVRAM --- *)

let nv_max_size = 4096

let oiap_open t =
  charge t (Time.ms 1.);
  Auth.create ~nonce_even:(Drbg.generate_string t.drbg 20)

let nv_define t ~index ~size ~auth_secret =
  charge t t.profile.Timing.pcr_extend;
  if size <= 0 || size > nv_max_size then Error "invalid NV size"
  else if Hashtbl.mem t.nv index then Error "NV index already defined"
  else begin
    Hashtbl.replace t.nv index (auth_secret, String.make size '\000');
    Ok ()
  end

let nv_write_command ~index ~data =
  let enc = Wire.encoder () in
  Wire.add_string enc "TPM_NV_WRITE";
  Wire.add_int enc index;
  Wire.add_string enc data;
  Wire.contents enc

let nv_write t ~session ~index ~data ~nonce_odd ~auth =
  traced t "nv-write" @@ fun () ->
  charge t t.profile.Timing.pcr_extend;
  match inject t Nv_fail "TPM_NV_WRITE failed" with
  | Some e -> Error e
  | None -> (
  match Hashtbl.find_opt t.nv index with
  | None -> Error "NV index not defined"
  | Some (secret, existing) ->
      if String.length data > String.length existing then Error "data exceeds NV size"
      else if
        not
          (Auth.tpm_verify session ~secret
             ~command:(nv_write_command ~index ~data)
             ~nonce_odd ~auth)
      then Error "authorization failed"
      else begin
        let padded =
          data ^ String.make (String.length existing - String.length data) '\000'
        in
        Hashtbl.replace t.nv index (secret, padded);
        Ok ()
      end)

let nv_read t ~index =
  traced t "nv-read" @@ fun () ->
  charge t t.profile.Timing.pcr_read;
  match Hashtbl.find_opt t.nv index with
  | None -> Error "NV index not defined"
  | Some (_, data) -> Ok data

(* --- Sealed storage --- *)

let blob_magic = "SEALv1"

let sepcr_access t ~caller h =
  match (t.sepcrs, caller) with
  | None, _ -> Error "this TPM has no sePCR bank"
  | Some _, Software -> Error "sePCR access requires the hardware path"
  | Some bank, Cpu cpu -> (
      match Sepcr.read bank h ~owner:cpu with
      | Ok v -> Ok (bank, v)
      | Error e -> Error e)

let max_seal_payload _t = 64 * 1024

let seal t ~caller ?sepcr ~pcr_policy payload =
  traced t "seal" @@ fun () ->
  if String.length payload > max_seal_payload t then Error "payload too large"
  else begin
    let sepcr_binding =
      match sepcr with
      | None -> Ok None
      | Some h -> (
          match sepcr_access t ~caller h with
          | Ok (_, v) -> Ok (Some v)
          | Error e -> Error e)
    in
    match sepcr_binding with
    | Error e -> Error e
    | Ok binding -> (
      match inject t Seal_fail "TPM_Seal blob write failed" with
      | Some e ->
          charge t
            (Timing.seal_time t.profile ~payload_bytes:(String.length payload));
          Error e
      | None ->
        charge t
          (Timing.seal_time t.profile ~payload_bytes:(String.length payload));
        (* Serialize policy + payload, hybrid-encrypt under the SRK. *)
        let enc = Wire.encoder () in
        Wire.add_string enc blob_magic;
        Wire.add_list enc
          (fun (i, v) ->
            Wire.add_int enc i;
            Wire.add_string enc v)
          pcr_policy;
        Wire.add_string enc (match binding with None -> "" | Some v -> v);
        Wire.add_string enc payload;
        let plaintext = Wire.contents enc in
        let sym_key = Drbg.generate_string t.drbg Aead.key_size in
        let nonce = Drbg.generate_string t.drbg Aead.nonce_size in
        let wrapped = Rsa.encrypt t.srk.Rsa.pub t.drbg sym_key in
        let body = Aead.encrypt ~key:sym_key ~nonce plaintext in
        let out = Wire.encoder () in
        Wire.add_string out wrapped;
        Wire.add_string out nonce;
        Wire.add_string out body;
        Ok (Wire.contents out))
  end

let unseal t ~caller ?sepcr blob =
  traced t "unseal" @@ fun () ->
  let sepcr_value =
    match sepcr with
    | None -> Ok None
    | Some h -> (
        match sepcr_access t ~caller h with
        | Ok (_, v) -> Ok (Some v)
        | Error e -> Error e)
  in
  match sepcr_value with
  | Error e -> Error e
  | Ok current_sepcr -> (
      charge t (Timing.unseal_time t.profile ~payload_bytes:(String.length blob));
      match inject t Tpm_busy "TPM_Unseal busy" with
      | Some e -> Error e
      | None -> (
      let d = Wire.decoder blob in
      match (Wire.read_string d, Wire.read_string d, Wire.read_string d) with
      | Some wrapped, Some nonce, Some body -> (
          match Rsa.decrypt t.srk wrapped with
          | None -> Error "not sealed by this TPM"
          | Some sym_key when String.length sym_key <> Aead.key_size ->
              Error "corrupted blob"
          | Some sym_key -> (
              match Aead.decrypt ~key:sym_key ~nonce body with
              | None -> Error "blob integrity check failed"
              | Some plaintext -> (
                  let d = Wire.decoder plaintext in
                  match Wire.read_string d with
                  | Some magic when magic = blob_magic -> (
                      let policy =
                        Wire.read_list d (fun () ->
                            match (Wire.read_int d, Wire.read_string d) with
                            | Some i, Some v -> Some (i, v)
                            | _ -> None)
                      in
                      match (policy, Wire.read_string d, Wire.read_string d) with
                      | Some policy, Some bound_sepcr, Some payload ->
                          let pcr_ok =
                            List.for_all
                              (fun (i, v) ->
                                i >= 0 && i < Pcr.count && Pcr.read t.pcrs i = v)
                              policy
                          in
                          let sepcr_ok =
                            match (bound_sepcr, current_sepcr) with
                            | "", _ -> true
                            | required, Some current -> String.equal required current
                            | _, None -> false
                          in
                          if not pcr_ok then Error "PCR policy mismatch"
                          else if not sepcr_ok then Error "sePCR binding mismatch"
                          else Ok payload
                      | _ -> Error "corrupted blob")
                  | _ -> Error "corrupted blob")))
      | _ -> Error "corrupted blob"))

(* --- Attestation --- *)

type quote = {
  selection : (int * string) list;
  sepcr_value : string option;
  nonce : string;
  signature : string;
}

let quote_message ~selection ~sepcr_value ~nonce =
  let enc = Wire.encoder () in
  Wire.add_string enc "TPM_QUOTE";
  Wire.add_string enc (Pcr.composite_of_values selection);
  Wire.add_string enc (match sepcr_value with None -> "" | Some v -> v);
  Wire.add_string enc nonce;
  Wire.contents enc

let quote t ~caller ?sepcr ~selection ~nonce () =
  traced t "quote" @@ fun () ->
  match inject t Tpm_busy "TPM_Quote busy" with
  | Some e ->
      charge t t.profile.Timing.quote;
      Error e
  | None ->
  let sepcr_value =
    match (sepcr, t.sepcrs) with
    | None, _ -> Ok None
    | Some _, None -> Error "this TPM has no sePCR bank"
    | Some h, Some bank -> (
        (* Quote of a sePCR is the one operation untrusted code performs:
           permitted only in the Quote state (§5.4.3). The hardware path may
           quote its own Exclusive sePCR (e.g. for interactive protocols). *)
        match (Sepcr.state bank h, caller) with
        | Sepcr.Quote, _ ->
            let v = Sepcr.value_unchecked bank h in
            (match Sepcr.finish_quote bank h with
            | Ok () -> Ok (Some v)
            | Error e -> Error e)
        | Sepcr.Exclusive, Cpu cpu -> (
            match Sepcr.read bank h ~owner:cpu with
            | Ok v -> Ok (Some v)
            | Error e -> Error e)
        | Sepcr.Exclusive, Software -> Error "sePCR bound to an executing PAL"
        | Sepcr.Free, _ -> Error "sePCR is free")
  in
  match sepcr_value with
  | Error e -> Error e
  | Ok sepcr_value ->
      charge t t.profile.Timing.quote;
      let selection = List.map (fun i -> (i, Pcr.read t.pcrs i)) selection in
      let msg = quote_message ~selection ~sepcr_value ~nonce in
      let signature = Rsa.sign t.aik msg in
      Ok { selection; sepcr_value; nonce; signature }

let verify_quote ~aik q =
  match quote_message ~selection:q.selection ~sepcr_value:q.sepcr_value ~nonce:q.nonce with
  | msg -> Rsa.verify aik ~msg ~signature:q.signature
  | exception Invalid_argument _ -> false

(* --- sePCR bank --- *)

let sepcr_bank t = t.sepcrs

let require_hardware caller =
  match caller with Cpu cpu -> Ok cpu | Software -> Error "hardware path required"

let measurement_absorption_cost _t =
  (* SLAUNCH sends the PAL to the TPM like SKINIT does; callers charge the
     LPC traffic separately via hash_data. Allocation itself is cheap. *)
  Time.us 5.

let sepcr_allocate t ~caller =
  traced t "sepcr-allocate" @@ fun () ->
  match (t.sepcrs, require_hardware caller) with
  | None, _ -> Error "this TPM has no sePCR bank"
  | _, Error e -> Error e
  | Some bank, Ok cpu -> (
      Engine.advance t.engine (measurement_absorption_cost t);
      match Sepcr.allocate bank ~owner:cpu with
      | Some h -> Ok h
      | None -> Error "no free sePCR")

let sepcr_allocate_set t ~caller ~size =
  traced t "sepcr-allocate-set" @@ fun () ->
  if size <= 0 then Error "set size must be positive"
  else begin
    match (t.sepcrs, require_hardware caller) with
    | None, _ -> Error "this TPM has no sePCR bank"
    | _, Error e -> Error e
    | Some bank, Ok cpu ->
        Engine.advance t.engine (measurement_absorption_cost t);
        let rec take acc n =
          if n = 0 then Ok (List.rev acc)
          else
            match Sepcr.allocate bank ~owner:cpu with
            | Some h -> take (h :: acc) (n - 1)
            | None ->
                (* Atomic: roll back the partial allocation (§6). *)
                List.iter (fun h -> ignore (Sepcr.skill bank h)) acc;
                Error "not enough free sePCRs for the set"
        in
        take [] size
  end

let with_bank_cpu t ~caller f =
  match (t.sepcrs, require_hardware caller) with
  | None, _ -> Error "this TPM has no sePCR bank"
  | _, Error e -> Error e
  | Some bank, Ok cpu -> f bank cpu

let sepcr_extend t ~caller h m =
  traced t "sepcr-extend" @@ fun () ->
  with_bank_cpu t ~caller (fun bank cpu ->
      charge t (Time.us 5.);
      match inject t Tpm_busy "sePCR_Extend busy" with
      | Some e -> Error e
      | None -> Sepcr.extend bank h ~owner:cpu m)

let sepcr_measure t ~caller h ~code =
  traced t "sepcr-measure" @@ fun () ->
  with_bank_cpu t ~caller (fun bank cpu ->
      match inject t Hash_abort "SLAUNCH measurement aborted mid-sequence" with
      | Some e ->
          (* Abort partway through streaming the PAL to the TPM: the bus
             time is spent, no extend is committed. *)
          Sea_bus.Lpc.transfer t.lpc
            ~device_wait:t.profile.Timing.hash_data_wait
            ~bytes:(String.length code / 2);
          Error e
      | None ->
          Sea_bus.Lpc.transfer t.lpc
            ~device_wait:t.profile.Timing.hash_data_wait
            ~bytes:(String.length code);
          charge t t.profile.Timing.hash_end;
          Sepcr.extend bank h ~owner:cpu (Sha1.digest code))

let sepcr_read t ~caller h =
  traced t "sepcr-read" @@ fun () ->
  with_bank_cpu t ~caller (fun bank cpu ->
      charge t (Time.us 2.);
      Sepcr.read bank h ~owner:cpu)

let sepcr_rebind t ~caller h ~new_owner =
  traced t "sepcr-rebind" @@ fun () ->
  with_bank_cpu t ~caller (fun bank cpu ->
      (* The memory controller caches sePCR handles during SLAUNCH
         (§5.4.1), so re-binding on resume is a register check, not an LPC
         round-trip. *)
      charge t (Time.ns 50);
      match inject t Tpm_busy "sePCR_Rebind busy" with
      | Some e -> Error e
      | None -> Sepcr.rebind bank h ~owner:cpu ~new_owner)

let sepcr_release_for_quote t ~caller h =
  traced t "sepcr-release" @@ fun () ->
  with_bank_cpu t ~caller (fun bank cpu ->
      charge t (Time.us 2.);
      Sepcr.release_for_quote bank h ~owner:cpu)

let sepcr_skill t ~caller h =
  traced t "sepcr-skill" @@ fun () ->
  with_bank_cpu t ~caller (fun bank _cpu ->
      charge t (Time.us 5.);
      Sepcr.skill bank h)
