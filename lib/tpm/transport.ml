open Sea_crypto

type t = {
  tpm_tag : string; (* binds the session to one TPM instance *)
  key : string;
  mutable client_seq : int; (* next request number the client will send *)
  mutable tpm_seq : int; (* next request number the TPM will accept *)
  mutable resp_seq : int; (* next response number the client expects *)
}

type request = Get_random of int | Pcr_extend of int * string | Pcr_read of int
type response = Random_bytes of string | New_pcr_value of string | Pcr_value of string

(* The wrapped session key rides an ordinary Seal blob with an empty
   policy: only this TPM's SRK can recover it, which is exactly the
   property a transport-session key exchange needs. *)
let establish tpm ~client_entropy =
  let key = Sha256.digest ("transport-session" ^ client_entropy) in
  match Tpm.seal tpm ~caller:Tpm.Software ~pcr_policy:[] key with
  | Error e -> Error e
  | Ok wrapped -> (
      (* The TPM unwraps it on its side of the channel. *)
      match Tpm.unseal tpm ~caller:Tpm.Software wrapped with
      | Error e -> Error e
      | Ok key' ->
          if not (Hmac.equal_constant_time key key') then Error "key exchange failed"
          else
            Ok
              {
                tpm_tag = Bignum.to_hex (Tpm.aik_public tpm).Rsa.n;
                key;
                client_seq = 0;
                tpm_seq = 0;
                resp_seq = 0;
              })

let nonce_of ~dir ~seq =
  (* 16-byte deterministic nonce: direction byte + sequence number. *)
  let b = Bytes.make Aead.nonce_size '\000' in
  Bytes.set b 0 (if dir = `Req then 'R' else 'S');
  for i = 0 to 7 do
    Bytes.set b (8 + i) (Char.chr ((seq lsr (8 * (7 - i))) land 0xff))
  done;
  Bytes.to_string b

let encode_request = function
  | Get_random n ->
      let e = Wire.encoder () in
      Wire.add_string e "getrandom";
      Wire.add_int e n;
      Wire.contents e
  | Pcr_extend (idx, data) ->
      let e = Wire.encoder () in
      Wire.add_string e "extend";
      Wire.add_int e idx;
      Wire.add_string e data;
      Wire.contents e
  | Pcr_read idx ->
      let e = Wire.encoder () in
      Wire.add_string e "pcrread";
      Wire.add_int e idx;
      Wire.contents e

let decode_request s =
  let d = Wire.decoder s in
  match Wire.read_string d with
  | Some "getrandom" -> Option.map (fun n -> Get_random n) (Wire.read_int d)
  | Some "extend" -> (
      match (Wire.read_int d, Wire.read_string d) with
      | Some idx, Some data -> Some (Pcr_extend (idx, data))
      | _ -> None)
  | Some "pcrread" -> Option.map (fun idx -> Pcr_read idx) (Wire.read_int d)
  | _ -> None

let encode_response = function
  | Random_bytes s ->
      let e = Wire.encoder () in
      Wire.add_string e "random";
      Wire.add_string e s;
      Wire.contents e
  | New_pcr_value s ->
      let e = Wire.encoder () in
      Wire.add_string e "extended";
      Wire.add_string e s;
      Wire.contents e
  | Pcr_value s ->
      let e = Wire.encoder () in
      Wire.add_string e "pcr";
      Wire.add_string e s;
      Wire.contents e

let decode_response s =
  let d = Wire.decoder s in
  match (Wire.read_string d, Wire.read_string d) with
  | Some "random", Some s -> Some (Random_bytes s)
  | Some "extended", Some s -> Some (New_pcr_value s)
  | Some "pcr", Some s -> Some (Pcr_value s)
  | _ -> None

let seal_request t req =
  let seq = t.client_seq in
  t.client_seq <- seq + 1;
  Aead.encrypt ~key:t.key ~nonce:(nonce_of ~dir:`Req ~seq) (encode_request req)

let tpm_execute tpm t wire =
  (* The TPM only accepts the exact next sequence number: replays and
     reorderings of bus traffic fail authentication. *)
  let seq = t.tpm_seq in
  match Aead.decrypt ~key:t.key ~nonce:(nonce_of ~dir:`Req ~seq) wire with
  | None -> Error "transport authentication failed (tampered or replayed)"
  | Some plain -> (
      t.tpm_seq <- seq + 1;
      match Tpm.faults tpm with
      | Some plan when Sea_fault.Fault.fires plan Sea_fault.Fault.Tpm_busy ->
          (* The command reached the TPM (its sequence number is consumed)
             but the part answered busy; no response is produced. *)
          Error (Sea_fault.Fault.transient "transport command busy")
      | _ -> (
      match decode_request plain with
      | None -> Error "malformed transport request"
      | Some req ->
          let response =
            match req with
            | Get_random n -> Ok (Random_bytes (Tpm.get_random tpm n))
            | Pcr_extend (idx, data) -> (
                match Tpm.pcr_extend tpm idx data with
                | v -> Ok (New_pcr_value v)
                | exception Invalid_argument e -> Error e)
            | Pcr_read idx -> (
                match Tpm.pcr_read tpm idx with
                | v -> Ok (Pcr_value v)
                | exception Invalid_argument e -> Error e)
          in
          (match response with
          | Error e -> Error e
          | Ok resp ->
              let rseq = seq in
              Ok
                (Aead.encrypt ~key:t.key
                   ~nonce:(nonce_of ~dir:`Resp ~seq:rseq)
                   (encode_response resp)))))

let open_response t wire =
  let seq = t.resp_seq in
  match Aead.decrypt ~key:t.key ~nonce:(nonce_of ~dir:`Resp ~seq) wire with
  | None -> Error "transport authentication failed (tampered or replayed)"
  | Some plain -> (
      t.resp_seq <- seq + 1;
      match decode_response plain with
      | Some resp -> Ok resp
      | None -> Error "malformed transport response")

let request_name = function
  | Get_random _ -> "get-random"
  | Pcr_extend _ -> "pcr-extend"
  | Pcr_read _ -> "pcr-read"

let execute ?retry tpm t req =
  let engine = Tpm.engine tpm in
  Sea_trace.Trace.with_span engine ~cat:"transport" (request_name req)
  @@ fun () ->
  Sea_fault.Retry.run ?policy:retry ~engine (fun () ->
      let seq = t.client_seq in
      let wire = seal_request t req in
      match tpm_execute tpm t wire with
      | Error e -> Error e
      | Ok resp_wire ->
          (* Response nonces mirror the request's sequence number; a
             command whose response never arrived (busy TPM) must not
             leave the client expecting the dropped number forever. *)
          t.resp_seq <- seq;
          open_response t resp_wire)
