(** TPM secure transport sessions (§3.3, TCG main specification).

    The PAL talks to the TPM across the south bridge and the LPC bus —
    components outside the minimal TCB of Figure 1. The paper excludes
    the south bridge from the TCB because "the TPM is capable of
    creating a secure channel to the PAL (by engaging in secure
    transport sessions)": commands are encrypted and authenticated
    end-to-end between the PAL and the TPM, so a compromised bridge (or
    a bus analyzer within the §3.2 threat model's limits) sees only
    ciphertext and cannot tamper or replay.

    Model: the PAL draws a session key, wraps it to the TPM's storage
    key, and every subsequent command/response is AEAD-protected with a
    strictly increasing sequence number. {!execute} carries a small
    command language (GetRandom / PCR Extend / PCR Read) sufficient to
    demonstrate the property; the threat-model tests put an adversary on
    the bus. *)

type t
(** An established session (client-side state; the TPM's side is tracked
    within the same value in this single-process model — the two ends
    never share mutable state with the adversary). *)

val establish : Tpm.t -> client_entropy:string -> (t, string) result
(** Key exchange: charges the TPM's asymmetric-decrypt time. *)

(** The command language carried inside the encrypted channel. *)
type request =
  | Get_random of int
  | Pcr_extend of int * string
  | Pcr_read of int

type response = Random_bytes of string | New_pcr_value of string | Pcr_value of string

val seal_request : t -> request -> string
(** Client side: the wire form of the next command — what actually
    crosses the bus. Each call consumes one sequence number. *)

val tpm_execute : Tpm.t -> t -> string -> (string, string) result
(** TPM side: authenticate + decrypt a wire request, execute it (with
    the usual timing charges), and return the wire response. Errors on
    tampering, replay, or reordering. *)

val open_response : t -> string -> (response, string) result
(** Client side: authenticate + decrypt the TPM's wire response. *)

val execute :
  ?retry:Sea_fault.Retry.policy -> Tpm.t -> t -> request -> (response, string) result
(** [seal_request] → [tpm_execute] → [open_response] in one step, for
    callers that do not need to interpose an adversary. With [?retry],
    transient failures (an injected busy TPM) are retried under the
    policy: each retry re-seals the command under a fresh sequence
    number, so the channel's anti-replay guarantee is untouched. *)
