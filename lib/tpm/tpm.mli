(** Functional + timing model of a v1.2 TPM, with the paper's proposed
    sePCR extension.

    Every command both {e does} the operation (real SHA-1 PCR arithmetic,
    real RSA seal/quote over the [Sea_crypto] substrate) and {e costs} the
    simulated latency of the modelled vendor part (§4.3.3, Figure 3),
    advancing the simulation clock. Measurement code therefore reads
    latencies off the engine clock while correctness code checks actual
    digests, blobs and signatures.

    Trust boundary conventions: commands take a {!caller}. [Cpu n] means
    the command was issued by CPU hardware (the SKINIT/SLAUNCH microcode)
    or by the PAL currently executing on CPU [n]; [Software] means ordinary
    untrusted ring-0 code. Only the hardware path can reset dynamic PCRs or
    touch a PAL's sePCR — matching §2.1.3 and §5.4.2. *)

type t

type caller = Cpu of int | Software

val create :
  ?vendor:Vendor.t ->
  ?profile:Timing.profile ->
  ?key_bits:int ->
  ?sepcr_count:int ->
  Sea_sim.Engine.t ->
  t
(** A TPM on the given engine's clock. [vendor] selects the timing profile
    (default [Broadcom], the paper's primary test machine); [profile]
    overrides it entirely (used by the faster-TPM ablation). [key_bits]
    sizes the SRK/AIK (default 2048, as in the paper; tests use smaller
    keys for speed). [sepcr_count] of [0] (default) models a real v1.2
    part; a positive count enables the proposed sePCR bank. *)

val vendor : t -> Vendor.t

val tag : t -> string
(** A process-unique instance tag ("<vendor>#<n>"); seeds per-instance
    deterministic streams (e.g. the vTPM layer's DRBGs). Nothing rendered
    may depend on its numeric part. *)

val profile : t -> Timing.profile
val engine : t -> Sea_sim.Engine.t

val lpc : t -> Sea_bus.Lpc.t
(** The LPC link this TPM sits on (created with the TPM). *)

val set_faults : t -> Sea_fault.Fault.t option -> unit
(** Install (or remove, with [None]) a deterministic fault plan on this
    TPM {e and} its LPC bus. With a plan installed, commands may fail
    with transient errors (tagged per [Sea_fault.Fault.is_transient]):
    busy responses on [TPM_HASH_START]/[TPM_HASH_END], unseal, quote and
    the sePCR commands; aborted [TPM_HASH_DATA]/SLAUNCH measurement
    sequences (the open session is lost, bus time already spent);
    seal-blob and NV write failures; and injected LPC long-wait stalls.
    Every injection site sits before the command's state mutation, so a
    retried command sees the TPM as if the failed attempt never ran.
    Without a plan (the default) behaviour is exactly fault-free. *)

val faults : t -> Sea_fault.Fault.t option
(** The currently installed fault plan, if any. *)

val reboot : t -> unit
(** Platform reset: PCR semantics per {!Pcr.reboot}; open hash sessions and
    the command lock are cleared. Keys and sePCR bindings survive (sePCRs
    are cleared to Free). *)

(** {1 Hardware arbitration (§5.4.5)} *)

val try_lock : t -> cpu:int -> bool
val unlock : t -> cpu:int -> unit
(** Raises [Invalid_argument] if [cpu] does not hold the lock. *)

val lock_contentions : t -> int
(** Number of failed {!try_lock} attempts, for the concurrency analysis. *)

(** {1 PCR commands} *)

val pcr_read : t -> int -> string
val pcr_extend : t -> int -> string -> string

val pcr_extend_deferred : t -> int -> string -> string * Sea_sim.Time.t
(** The pipelined/batched accounting path used by the vTPM anchor
    scheduler: commits the extend to PCR state immediately and returns
    [(new value, hardware cost)] {e without} advancing the engine clock
    or drawing timing jitter. The caller accounts the returned cost (plus
    the batch's coalesced LPC time, {!Sea_bus.Lpc.batch_transfer_time})
    on the device's own background timeline — once per batch, per byte
    actually moved, rather than per command framing. *)

(** {1 The TPM_HASH_START/DATA/END sequence}

    Issued by CPU microcode during SKINIT/SENTER: resets dynamic PCRs,
    absorbs the measured code a few bytes per LPC transaction (each
    transaction stalled by the vendor's long-wait time — the dominant
    SKINIT cost), and extends the result into PCR 17. *)

val hash_start : t -> caller:caller -> (unit, string) result
val hash_data : t -> string -> (unit, string) result
val hash_end : t -> (string, string) result
(** Returns the new PCR 17 value. *)

(** {1 Sealed storage} *)

val seal :
  t ->
  caller:caller ->
  ?sepcr:Sepcr.handle ->
  pcr_policy:(int * string) list ->
  string ->
  (string, string) result
(** [seal t ~caller ~pcr_policy payload] returns an opaque blob decryptable
    only by this TPM when the PCRs listed in [pcr_policy] hold the given
    values. With [?sepcr] (proposed hardware, §5.4.4), the blob is
    additionally bound to the {e current value} of that sePCR — i.e. to the
    PAL's measurement chain, not its register index — so a future
    instance of the same PAL unseals it regardless of which sePCR it is
    assigned. [?sepcr] requires [caller = Cpu n] matching the binding. *)

val unseal :
  t ->
  caller:caller ->
  ?sepcr:Sepcr.handle ->
  string ->
  (string, string) result
(** Policy-checked decryption; errors on wrong TPM, corrupted blob, or
    policy mismatch (with distinct messages). *)

val max_seal_payload : t -> int

(** {1 Attestation} *)

type quote = {
  selection : (int * string) list;  (** PCR index, value — as signed. *)
  sepcr_value : string option;  (** sePCR value when quoting a sePCR. *)
  nonce : string;
  signature : string;
}

val quote :
  t ->
  caller:caller ->
  ?sepcr:Sepcr.handle ->
  selection:int list ->
  nonce:string ->
  unit ->
  (quote, string) result
(** Sign the selected PCRs (and optionally one sePCR) with the AIK. A sePCR
    may be quoted by untrusted software only in the [Quote] state (after
    the PAL exited); the quote transitions it to [Free] (§5.4.3). *)

val verify_quote : aik:Sea_crypto.Rsa.public -> quote -> bool
(** Pure verifier-side signature check. The verifier must additionally
    judge whether the quoted values correspond to code it trusts. *)

val aik_public : t -> Sea_crypto.Rsa.public
val aik_certificate : t -> string
(** Privacy-CA signature over the AIK public key (§2.1.1). *)

val verify_aik_certificate :
  ca:Sea_crypto.Rsa.public -> aik:Sea_crypto.Rsa.public -> string -> bool

val privacy_ca_public : unit -> Sea_crypto.Rsa.public
(** The (simulated) Privacy CA all TPMs in this process are certified
    by. *)

(** {1 Miscellaneous commands} *)

val get_random : t -> int -> string

(** {1 Monotonic counters}

    TPM v1.2 monotonic counters: values only ever increase and survive
    reboots. The paper's sealed-storage design is replay-prone (a
    malicious OS can feed a PAL an {e old} sealed state); counters are
    the standard fix (later realized by systems like Memoir) and are
    used by {!Sea_core.Rollback}. *)

val counter_create : t -> (int, string) result
(** Allocate a new counter starting at 0; returns its id. A TPM holds at
    most {!max_counters}. *)

val counter_read : t -> int -> (int, string) result
val counter_increment : t -> int -> (int, string) result
(** Increment and return the new value. *)

val max_counters : int

(** {1 Authorization sessions and NVRAM}

    Auth-protected non-volatile storage: an NV index is defined with an
    authorization secret; writes must carry an OIAP-style proof
    ({!Auth}); reads are public. Contents survive reboots. *)

val oiap_open : t -> Auth.session
(** Open an authorization session (the TPM draws the initial rolling
    nonce). *)

val nv_define : t -> index:int -> size:int -> auth_secret:string -> (unit, string) result
(** Define an NV area. Fails if the index exists or [size] exceeds
    {!nv_max_size}. *)

val nv_write :
  t ->
  session:Auth.session ->
  index:int ->
  data:string ->
  nonce_odd:string ->
  auth:string ->
  (unit, string) result
(** Authorized write of the whole area ([data] must fit the defined
    size). [auth] must be {!Auth.client_authorize} over the canonical
    command encoding [nv_write_command ~index ~data]. *)

val nv_read : t -> index:int -> (string, string) result

val nv_write_command : index:int -> data:string -> string
(** The canonical command bytes both sides authorize over. *)

val nv_max_size : int

(** {1 sePCR bank (proposed hardware)} *)

val sepcr_bank : t -> Sepcr.bank option

val sepcr_allocate : t -> caller:caller -> (Sepcr.handle, string) result
(** Allocate-and-reset during SLAUNCH; hardware-path only. Also charges the
    measurement-absorption time (the SLAUNCH TPM traffic). *)

val sepcr_allocate_set :
  t -> caller:caller -> size:int -> (Sepcr.handle list, string) result
(** §6 "sePCR Sets": atomically bind [size] sePCRs to one PAL — all
    allocated and reset together, or none (the failure path rolls back
    any partial allocation). Each member is then driven through the
    ordinary per-handle commands. *)

val sepcr_extend :
  t -> caller:caller -> Sepcr.handle -> string -> (string, string) result

val sepcr_measure :
  t -> caller:caller -> Sepcr.handle -> code:string -> (string, string) result
(** The SLAUNCH measurement path (§5.4.1): the CPU streams the PAL's bytes
    to the TPM over the LPC bus (same per-transaction long-wait stall as
    TPM_HASH_DATA) and the TPM extends the PAL's sePCR with the SHA-1 of
    the code. Returns the new sePCR value. *)

val sepcr_read : t -> caller:caller -> Sepcr.handle -> (string, string) result
val sepcr_rebind :
  t -> caller:caller -> Sepcr.handle -> new_owner:int -> (unit, string) result

val sepcr_release_for_quote :
  t -> caller:caller -> Sepcr.handle -> (unit, string) result

val sepcr_skill : t -> caller:caller -> Sepcr.handle -> (unit, string) result
