(** The TPM capability a session executes against.

    {!Sea_core.Session} and {!Sea_core.Slaunch_session} historically
    closed over the machine's hardware {!Tpm.t} directly. A capability is
    the same set of operations as a record of closures, so the session
    layer can be handed either the hardware TPM ({!of_tpm}) or a
    per-tenant virtual TPM ([Sea_vtpm.Vtpm.cap]) without [Sea_core]
    depending on the vTPM layer. The hardware capability built by
    {!of_tpm} delegates every field 1:1, so a session run against it is
    byte-for-byte what it was before this module existed.

    The measurement path (SKINIT/SLAUNCH, sePCR identity) always stays in
    hardware; a capability only virtualizes the data-path commands —
    seal, unseal, randomness, PCR extends — plus {!launch_measured}, the
    hook that lets a virtual PCR bank mirror the hardware dynamic-PCR
    reset-and-extend a late launch performs. *)

type t = {
  name : string;  (** For traces/debugging; never rendered in reports. *)
  seal :
    caller:Tpm.caller ->
    ?sepcr:Sepcr.handle ->
    ?binding:string ->
    pcr_policy:(int * string) list ->
    string ->
    (string, string) result;
  unseal :
    caller:Tpm.caller ->
    ?sepcr:Sepcr.handle ->
    ?binding:string ->
    string ->
    (string, string) result;
  get_random : int -> string;
  pcr_extend : int -> string -> string;
      (** Extend a (virtual or hardware) PCR; returns the new value. *)
  sepcr_extend :
    caller:Tpm.caller -> Sepcr.handle -> string -> (string, string) result;
      (** Always the hardware sePCR bank — sePCRs {e are} the hardware
          anchor on the proposed hardware. *)
  launch_measured : pcr:int -> measurement:string -> unit;
      (** Called once after a successful late launch: the hardware has
          dynamically reset its PCRs and extended [measurement] into
          [pcr]; a virtual bank mirrors that so identity-bound seal
          policies hold against it. No-op for the hardware capability
          (the TPM_HASH_* sequence already did it). *)
}
(** [?binding] on {!field-t.seal}/{!field-t.unseal} ties a blob to an
    opaque identity string chosen by the caller: unsealing with a
    different (or missing) binding fails. SFI sessions use it to bind
    sealed state to their loader-rooted measurement chain, which has no
    sePCR or hardware PCR to express a policy against. The vTPM
    capability folds it into the blob's binding alongside the sePCR
    value; the hardware capability wraps the payload with a checked
    header (sealing without a binding is byte-for-byte unchanged). *)

val of_tpm : Tpm.t -> t
(** The hardware capability: every operation is the corresponding
    {!Tpm} command on [tpm], unchanged. *)
