(** Low Pin Count (LPC) bus timing model.

    The TPM sits on the LPC bus behind the south bridge (Figure 1 of the
    paper). The bus runs at 33 MHz with a 4-bit data path; its theoretical
    ceiling is 16.67 MB/s, so transferring a 64 KB PAL takes at least
    3.8 ms. Real transfers are slower: each transaction carries a small
    payload (the TPM_HASH_DATA command sends 1–4 bytes) wrapped in framing
    cycles, and the slave device may stall the bus with "long wait"
    sync cycles — the paper identifies exactly this TPM-induced stall as the
    dominant cost of SKINIT (§4.3.1).

    The model is therefore: a transaction moves [data_bytes_per_txn] bytes
    and costs [base_cycles_per_txn] bus cycles plus whatever wait the
    attached device inserts. With the default configuration and zero device
    wait, 64 KB takes 8.8 ms — matching the TPM-less Tyan n3600R row of
    Table 1. *)

type config = {
  cycle : Sea_sim.Time.t;  (** One bus clock period (30 ns at 33 MHz). *)
  data_bytes_per_txn : int;  (** Payload bytes per transaction (4). *)
  base_cycles_per_txn : int;
      (** Framing + data + turnaround cycles per transaction with a
          wait-free device. *)
}

val default_config : config
(** 33 MHz, 4 bytes per transaction, 18 cycles per transaction — calibrated
    so that a 64 KB wait-free transfer costs 8.85 ms (Table 1, Tyan row
    measured 8.82 ms). *)

type t

val create : ?config:config -> Sea_sim.Engine.t -> t

val config : t -> config

val set_faults : t -> Sea_fault.Fault.t option -> unit
(** Install (or remove, with [None]) a fault plan. When installed, each
    non-empty {!transfer} may suffer an injected [Lpc_stall]: extra
    long-wait sync time beyond the configured device wait, drawn from
    the plan's deterministic stream. No plan — the default — means the
    timing model is exactly the fault-free one. *)

val transaction_time : t -> device_wait:Sea_sim.Time.t -> Sea_sim.Time.t
(** Duration of one transaction against a device inserting [device_wait]
    of sync stall. *)

val transfer_time :
  t -> device_wait:Sea_sim.Time.t -> bytes:int -> Sea_sim.Time.t
(** Total duration of moving [bytes] across the bus, one transaction per
    [data_bytes_per_txn] chunk (the final partial chunk still costs a full
    transaction). Zero bytes cost zero time. *)

val transfer : t -> device_wait:Sea_sim.Time.t -> bytes:int -> unit
(** Perform the transfer: advances the engine clock by {!transfer_time} and
    records traffic statistics. *)

val batch_transfer_time :
  t -> device_wait:Sea_sim.Time.t -> chunks:int list -> Sea_sim.Time.t
(** Duration of moving several logical command payloads in {e one}
    coalesced burst: the payload bytes are packed across command
    boundaries, so the whole batch pays [ceil (total / data_bytes_per_txn)]
    transactions — per byte actually moved — instead of each chunk paying
    its own final-partial-transaction framing. Always at most
    [sum (transfer_time chunk)]; equal when every chunk is a multiple of
    [data_bytes_per_txn]. Non-positive chunks contribute nothing. *)

val batch_transfer :
  t -> device_wait:Sea_sim.Time.t -> chunks:int list -> unit
(** Perform the coalesced burst: advances the engine clock by
    {!batch_transfer_time}, records traffic statistics, and draws at most
    one injected [Lpc_stall] for the whole batch (one bus tenure, one
    stall opportunity — same as a single {!transfer}). *)

val total_bytes : t -> int
(** Cumulative payload bytes moved over this bus instance. *)

val total_transactions : t -> int

val peak_bandwidth_bytes_per_s : config -> float
(** Theoretical ceiling implied by the configuration (≈16.67 MB/s for the
    default when only data cycles are counted). *)
