open Sea_sim

type config = {
  cycle : Time.t;
  data_bytes_per_txn : int;
  base_cycles_per_txn : int;
}

let default_config = { cycle = Time.ns 30; data_bytes_per_txn = 4; base_cycles_per_txn = 18 }

type t = {
  config : config;
  engine : Engine.t;
  mutable total_bytes : int;
  mutable total_transactions : int;
  mutable faults : Sea_fault.Fault.t option;
}

let create ?(config = default_config) engine =
  { config; engine; total_bytes = 0; total_transactions = 0; faults = None }

let set_faults t plan = t.faults <- plan

let config t = t.config

let transaction_time t ~device_wait =
  Time.add (Time.scale t.config.cycle t.config.base_cycles_per_txn) device_wait

let transactions_for t bytes =
  (bytes + t.config.data_bytes_per_txn - 1) / t.config.data_bytes_per_txn

let transfer_time t ~device_wait ~bytes =
  if bytes <= 0 then Time.zero
  else Time.scale (transaction_time t ~device_wait) (transactions_for t bytes)

let transfer t ~device_wait ~bytes =
  Sea_trace.Trace.with_span t.engine ~cat:"lpc"
    ~args:(fun () -> [ ("bytes", Sea_trace.Trace.Int (max 0 bytes)) ])
    "transfer"
    (fun () ->
      let d = transfer_time t ~device_wait ~bytes in
      Engine.advance t.engine d;
      (match t.faults with
      | Some plan when bytes > 0 && Sea_fault.Fault.fires plan Lpc_stall ->
          (* The slave holds the bus in long-wait sync beyond its configured
             device wait: pure extra latency, the transfer still completes. *)
          let extra = Sea_fault.Fault.stall plan ~base:d in
          Sea_trace.Trace.instant t.engine ~cat:"fault"
            ~args:(fun () ->
              [ ("stall_ns", Sea_trace.Trace.Int (Time.to_ns extra)) ])
            "lpc-stall";
          Engine.advance t.engine extra
      | _ -> ());
      t.total_bytes <- t.total_bytes + max 0 bytes;
      t.total_transactions <-
        t.total_transactions + transactions_for t (max 0 bytes));
  Sea_trace.Trace.count t.engine "lpc.bytes" (max 0 bytes)

let batch_bytes chunks =
  List.fold_left (fun acc b -> acc + max 0 b) 0 chunks

let batch_transfer_time t ~device_wait ~chunks =
  transfer_time t ~device_wait ~bytes:(batch_bytes chunks)

let batch_transfer t ~device_wait ~chunks =
  let bytes = batch_bytes chunks in
  Sea_trace.Trace.with_span t.engine ~cat:"lpc"
    ~args:(fun () ->
      [
        ("bytes", Sea_trace.Trace.Int bytes);
        ("chunks", Sea_trace.Trace.Int (List.length chunks));
      ])
    "batch-transfer"
    (fun () ->
      let d = transfer_time t ~device_wait ~bytes in
      Engine.advance t.engine d;
      (match t.faults with
      | Some plan when bytes > 0 && Sea_fault.Fault.fires plan Lpc_stall ->
          let extra = Sea_fault.Fault.stall plan ~base:d in
          Sea_trace.Trace.instant t.engine ~cat:"fault"
            ~args:(fun () ->
              [ ("stall_ns", Sea_trace.Trace.Int (Time.to_ns extra)) ])
            "lpc-stall";
          Engine.advance t.engine extra
      | _ -> ());
      t.total_bytes <- t.total_bytes + bytes;
      t.total_transactions <- t.total_transactions + transactions_for t bytes);
  Sea_trace.Trace.count t.engine "lpc.bytes" bytes

let total_bytes t = t.total_bytes
let total_transactions t = t.total_transactions

let peak_bandwidth_bytes_per_s config =
  (* Two data nibbles per cycle on the 4-bit bus: 2 bytes would take one
     cycle each way; the conventional 16.67 MB/s figure is bytes per two
     cycles. We report payload per transaction over transaction time with
     zero framing, i.e. the data-cycle-only ceiling. *)
  let data_cycles = config.data_bytes_per_txn * 2 in
  float_of_int config.data_bytes_per_txn
  /. (float_of_int data_cycles *. Time.to_s config.cycle)
