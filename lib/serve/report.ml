open Sea_sim

type row = {
  tenant : string;
  weight : int;
  offered : int;
  completed : int;
  shed : int;
  timed_out : int;
  failed : int;
  latency_ms : Stats.t;
  queue_high_water : int;
}

type t = {
  mode : string;
  machine : string;
  cores : int;
  discipline : string;
  depth : int;
  window : Time.t;
  rows : row list;
  aggregate : row;
  pal_busy : Time.t;
  legacy_utilization : float;
  stalled : Time.t;
  stall_ms : Stats.t;
  cold_starts : int;
  warm_hits : int;
  evictions : int;
  sepcr_waits : int;
  sepcr_wait_ms : Stats.t;
}

let window_s t = Time.to_ms t.window /. 1000.

let goodput_per_s t row =
  let s = window_s t in
  if s <= 0. then 0. else float_of_int row.completed /. s

let pp_row t fmt row =
  Format.fprintf fmt "%-14s %3d %7d %7d %6d %8d %5d %9.2f  %a %6d"
    row.tenant row.weight row.offered row.completed row.shed row.timed_out
    row.failed (goodput_per_s t row) Stats.pp_percentiles row.latency_ms
    row.queue_high_water

let pp fmt t =
  Format.fprintf fmt
    "@[<v>serve: %s on %s  cores %d  queue %s depth %d  window %a@,"
    t.mode t.machine t.cores t.discipline t.depth Time.pp t.window;
  Format.fprintf fmt
    "%-14s %3s %7s %7s %6s %8s %5s %9s  %-24s %6s@," "tenant" "w" "offered"
    "served" "shed" "timedout" "fail" "goodput/s" "latency (ms)" "q-hwm";
  List.iter (fun row -> Format.fprintf fmt "%a@," (pp_row t) row) t.rows;
  Format.fprintf fmt "%a@," (pp_row t) t.aggregate;
  Format.fprintf fmt
    "PAL cores busy %a  legacy CPU %.1f%%  platform stalled %a (%d stalls, %a)@,"
    Time.pp t.pal_busy
    (100. *. t.legacy_utilization)
    Time.pp t.stalled (Stats.count t.stall_ms) Stats.pp_percentiles t.stall_ms;
  Format.fprintf fmt
    "PAL launches: %d cold, %d warm  evictions %d  sePCR waits %d (%a)@]"
    t.cold_starts t.warm_hits t.evictions t.sepcr_waits Stats.pp_percentiles
    t.sepcr_wait_ms

let render t = Format.asprintf "%a" pp t
