open Sea_sim

type row = {
  tenant : string;
  weight : int;
  offered : int;
  completed : int;
  shed : int;
  timed_out : int;
  failed : int;
  latency_ms : Stats.t;
  queue_high_water : int;
}

type vtpm_stats = {
  instances : int;
  extends : int;
  seals : int;
  unseals : int;
  resets : int;
}

type t = {
  mode : string;
  machine : string;
  cores : int;
  discipline : string;
  depth : int;
  cost_budget : int option;
  cost_shed : int;
  window : Time.t;
  rows : row list;
  aggregate : row;
  pal_busy : Time.t;
  legacy_utilization : float;
  stalled : Time.t;
  stall_ms : Stats.t;
  cold_starts : int;
  warm_hits : int;
  evictions : int;
  sepcr_waits : int;
  sepcr_wait_ms : Stats.t;
  faults_injected : (string * int) list;
  fault_stall : Time.t;
  retries : int;
  retry_give_ups : int;
  breaker_shed : int;
  breaker_transitions : int;
  degraded : Time.t;
  recoveries : int;
  vtpm : vtpm_stats option;
}

let window_s t = Time.to_ms t.window /. 1000.

(* --- merge hooks (used by the fleet layer, [Sea_cluster]) --- *)

let merge_rows ~tenant rows =
  match rows with
  | [] -> invalid_arg "Report.merge_rows: no rows"
  | _ ->
      let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
      {
        tenant;
        weight = sum (fun r -> r.weight);
        offered = sum (fun r -> r.offered);
        completed = sum (fun r -> r.completed);
        shed = sum (fun r -> r.shed);
        timed_out = sum (fun r -> r.timed_out);
        failed = sum (fun r -> r.failed);
        latency_ms = Stats.merge (List.map (fun r -> r.latency_ms) rows);
        queue_high_water =
          List.fold_left (fun acc r -> Stdlib.max acc r.queue_high_water) 0 rows;
      }

(* Sum per-kind fault counts across reports, preserving the kind order
   of the first non-empty list (all reports emit Fault.all_kinds order). *)
let merge_fault_counts lists =
  match List.filter (fun l -> l <> []) lists with
  | [] -> []
  | first :: _ as nonempty ->
      List.map
        (fun (kind, _) ->
          ( kind,
            List.fold_left
              (fun acc l ->
                acc + (match List.assoc_opt kind l with Some c -> c | None -> 0))
              0 nonempty ))
        first

(* Merge reports from consecutive serving windows of ONE machine (the
   churn epochs the cluster cuts a run into): windows add (the epochs
   are sequential in virtual time, unlike the fleet merge where machines
   run concurrently and the longest window wins), counters sum, and each
   tenant's rows are folded by name in order of first appearance — a
   tenant that failed over away and back contributes once. *)
let merge_seq reports =
  match reports with
  | [] -> invalid_arg "Report.merge_seq: no reports"
  | [ r ] -> r
  | first :: _ ->
      let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
      let sum_time f =
        List.fold_left (fun acc r -> Time.add acc (f r)) Time.zero reports
      in
      let names = ref [] in
      List.iter
        (fun r ->
          List.iter
            (fun row ->
              if not (List.mem row.tenant !names) then
                names := row.tenant :: !names)
            r.rows)
        reports;
      let rows =
        List.map
          (fun name ->
            let parts =
              List.concat_map
                (fun r -> List.filter (fun row -> row.tenant = name) r.rows)
                reports
            in
            (* The tenant's weight is a configuration, not a counter:
               keep the first window's value rather than the sum. *)
            { (merge_rows ~tenant:name parts) with
              weight = (List.hd parts).weight })
          (List.rev !names)
      in
      let window = sum_time (fun r -> r.window) in
      let legacy_utilization =
        if Time.compare window Time.zero <= 0 then 0.
        else
          List.fold_left
            (fun acc r ->
              acc +. (r.legacy_utilization *. float_of_int (Time.to_ns r.window)))
            0. reports
          /. float_of_int (Time.to_ns window)
      in
      {
        mode = first.mode;
        machine = first.machine;
        cores = first.cores;
        discipline = first.discipline;
        depth = first.depth;
        cost_budget = first.cost_budget;
        cost_shed = sum (fun r -> r.cost_shed);
        window;
        rows;
        aggregate =
          { (merge_rows ~tenant:first.aggregate.tenant rows) with
            weight = List.fold_left (fun acc row -> acc + row.weight) 0 rows };
        pal_busy = sum_time (fun r -> r.pal_busy);
        legacy_utilization;
        stalled = sum_time (fun r -> r.stalled);
        stall_ms = Stats.merge (List.map (fun r -> r.stall_ms) reports);
        cold_starts = sum (fun r -> r.cold_starts);
        warm_hits = sum (fun r -> r.warm_hits);
        evictions = sum (fun r -> r.evictions);
        sepcr_waits = sum (fun r -> r.sepcr_waits);
        sepcr_wait_ms =
          Stats.merge (List.map (fun r -> r.sepcr_wait_ms) reports);
        faults_injected =
          merge_fault_counts (List.map (fun r -> r.faults_injected) reports);
        fault_stall = sum_time (fun r -> r.fault_stall);
        retries = sum (fun r -> r.retries);
        retry_give_ups = sum (fun r -> r.retry_give_ups);
        breaker_shed = sum (fun r -> r.breaker_shed);
        breaker_transitions = sum (fun r -> r.breaker_transitions);
        degraded = sum_time (fun r -> r.degraded);
        recoveries = sum (fun r -> r.recoveries);
        vtpm =
          (match List.filter_map (fun r -> r.vtpm) reports with
          | [] -> None
          | stats ->
              let sumv f = List.fold_left (fun acc v -> acc + f v) 0 stats in
              Some
                {
                  (* The same multiplexer serves every window: the
                     population is a max, the event counters sum. *)
                  instances =
                    List.fold_left
                      (fun acc v -> Stdlib.max acc v.instances)
                      0 stats;
                  extends = sumv (fun v -> v.extends);
                  seals = sumv (fun v -> v.seals);
                  unseals = sumv (fun v -> v.unseals);
                  resets = sumv (fun v -> v.resets);
                });
      }

let row_consistent row =
  row.offered = row.completed + row.shed + row.timed_out + row.failed

let goodput_per_s t row =
  let s = window_s t in
  if s <= 0. then 0. else float_of_int row.completed /. s

let robustness_active t =
  t.retries > 0 || t.retry_give_ups > 0 || t.breaker_shed > 0
  || t.breaker_transitions > 0 || t.recoveries > 0
  || List.exists (fun (_, c) -> c > 0) t.faults_injected
  || Time.compare t.fault_stall Time.zero > 0
  || Time.compare t.degraded Time.zero > 0

let pp_row t fmt row =
  Format.fprintf fmt "%-14s %3d %7d %7d %6d %8d %5d %9.2f  %a %6d"
    row.tenant row.weight row.offered row.completed row.shed row.timed_out
    row.failed (goodput_per_s t row) Stats.pp_percentiles row.latency_ms
    row.queue_high_water

let pp fmt t =
  Format.fprintf fmt
    "@[<v>serve: %s on %s  cores %d  queue %s depth %d  window %a@,"
    t.mode t.machine t.cores t.discipline t.depth Time.pp t.window;
  Format.fprintf fmt
    "%-14s %3s %7s %7s %6s %8s %5s %9s  %-24s %6s@," "tenant" "w" "offered"
    "served" "shed" "timedout" "fail" "goodput/s" "latency (ms)" "q-hwm";
  List.iter (fun row -> Format.fprintf fmt "%a@," (pp_row t) row) t.rows;
  Format.fprintf fmt "%a@," (pp_row t) t.aggregate;
  Format.fprintf fmt
    "PAL cores busy %a  legacy CPU %.1f%%  platform stalled %a (%d stalls, %a)@,"
    Time.pp t.pal_busy
    (100. *. t.legacy_utilization)
    Time.pp t.stalled (Stats.count t.stall_ms) Stats.pp_percentiles t.stall_ms;
  Format.fprintf fmt
    "PAL launches: %d cold, %d warm  evictions %d  sePCR waits %d (%a)"
    t.cold_starts t.warm_hits t.evictions t.sepcr_waits Stats.pp_percentiles
    t.sepcr_wait_ms;
  (* The vTPM line appears only when a multiplexer was in front of the
     hardware TPM, so non-vTPM reports render exactly as before it
     existed. Only batch-size-invariant counters appear here: flush and
     batch-occupancy counts live in the trace ("vtpm" category), keeping
     the render byte-identical across [--vtpm-batch] settings. *)
  (match t.vtpm with
  | Some v ->
      Format.fprintf fmt
        "@,vtpm: %d instances  extends %d  seals %d  unseals %d  resets %d"
        v.instances v.extends v.seals v.unseals v.resets
  | None -> ());
  (* The cost-admission line appears only under the cost discipline, so
     fifo/weighted reports render exactly as before it existed. *)
  (match t.cost_budget with
  | Some b ->
      Format.fprintf fmt "@,cost admission: budget %d us/tenant  cost shed %d"
        b t.cost_shed
  | None -> ());
  (* The robustness lines appear only when something robustness-related
     actually happened, so fault-free reports render exactly as before
     this machinery existed. *)
  if robustness_active t then begin
    let injected = List.filter (fun (_, c) -> c > 0) t.faults_injected in
    Format.fprintf fmt "@,faults injected: %s  injected bus stall %a"
      (if injected = [] then "none"
       else
         String.concat ", "
           (List.map (fun (k, c) -> Printf.sprintf "%s %d" k c) injected))
      Time.pp t.fault_stall;
    Format.fprintf fmt
      "@,retries %d (gave up %d)  breaker shed %d  breaker transitions %d  \
       degraded %a  recoveries %d"
      t.retries t.retry_give_ups t.breaker_shed t.breaker_transitions Time.pp
      t.degraded t.recoveries
  end;
  Format.fprintf fmt "@]"

let render t = Format.asprintf "%a" pp t
