open Sea_sim

type config = {
  failure_threshold : int;
  cooldown : Time.t;
  half_open_probes : int;
}

let config ?(failure_threshold = 3) ?(cooldown = Time.ms 100.)
    ?(half_open_probes = 1) () =
  if failure_threshold < 1 then
    invalid_arg "Breaker.config: failure_threshold must be >= 1";
  if Time.compare cooldown Time.zero <= 0 then
    invalid_arg "Breaker.config: cooldown must be positive";
  if half_open_probes < 1 then
    invalid_arg "Breaker.config: half_open_probes must be >= 1";
  { failure_threshold; cooldown; half_open_probes }

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type t = {
  cfg : config;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable open_until : Time.t;
  mutable probes_left : int;
  mutable transitions : int;
  mutable rejected : int;
  mutable degraded_since : Time.t option;
  mutable degraded_total : Time.t;
}

let create cfg =
  {
    cfg;
    state = Closed;
    consecutive_failures = 0;
    open_until = Time.zero;
    probes_left = 0;
    transitions = 0;
    rejected = 0;
    degraded_since = None;
    degraded_total = Time.zero;
  }

let transition t ~now next =
  if next <> t.state then begin
    t.transitions <- t.transitions + 1;
    (match (t.state, next) with
    | Closed, (Open | Half_open) -> t.degraded_since <- Some now
    | (Open | Half_open), Closed -> (
        match t.degraded_since with
        | Some since ->
            t.degraded_total <- Time.add t.degraded_total (Time.sub now since);
            t.degraded_since <- None
        | None -> ())
    | _ -> ());
    t.state <- next
  end

let take_probe t =
  if t.probes_left > 0 then begin
    t.probes_left <- t.probes_left - 1;
    true
  end
  else begin
    t.rejected <- t.rejected + 1;
    false
  end

let allow t ~now =
  match t.state with
  | Closed -> true
  | Half_open -> take_probe t
  | Open ->
      if Time.compare now t.open_until >= 0 then begin
        transition t ~now Half_open;
        t.probes_left <- t.cfg.half_open_probes;
        take_probe t
      end
      else begin
        t.rejected <- t.rejected + 1;
        false
      end

let record_success t ~now =
  t.consecutive_failures <- 0;
  transition t ~now Closed

let record_failure t ~now =
  t.consecutive_failures <- t.consecutive_failures + 1;
  match t.state with
  | Half_open ->
      (* The probe failed: reopen for another full cooldown. *)
      t.open_until <- Time.add now t.cfg.cooldown;
      transition t ~now Open
  | Closed ->
      if t.consecutive_failures >= t.cfg.failure_threshold then begin
        t.open_until <- Time.add now t.cfg.cooldown;
        transition t ~now Open
      end
  | Open -> ()

let state t = t.state
let transitions t = t.transitions
let rejected t = t.rejected
let retry_at t = t.open_until

let degraded t ~now =
  match t.degraded_since with
  | None -> t.degraded_total
  | Some since -> Time.add t.degraded_total (Time.sub now since)
