(** Serving workloads: request kinds drawn from the paper's example
    applications ([lib/apps]) and per-tenant arrival processes.

    A {e request kind} couples a real application PAL (its measured
    bytes, its protected compute and its sealed-state discipline) with
    the input framing one request of that application needs:

    - [Ssh_auth] — {!Sea_apps.Ssh_password}: unseal the password record,
      check an attempt, no reseal (8 KB, 1 ms of protected work);
    - [Ca_sign] — {!Sea_apps.Cert_authority}: unseal the signing key,
      sign a CSR, no reseal (16 KB, 2 ms);
    - [Kv_update] — the paper's resealing PAL Use ({!Sea_core.Generic}):
      unseal, update, reseal (64 KB, 5 ms) — the distributed-computing
      pattern, and the heaviest launch in the mix.

    A {e tenant} names a principal sending a weighted mix of request
    kinds under an arrival process: open-loop Poisson (arrivals keep
    coming regardless of service — the overload regime) or closed-loop
    fixed concurrency (each simulated client waits for its response,
    thinks, and sends the next — the interactive regime). All
    randomness is drawn from {!Sea_sim.Rng} streams split off the
    machine engine, so workloads replay bit-identically from a seed. *)

type kind = Ssh_auth | Ca_sign | Kv_update

val kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option
val kind_index : kind -> int

val pal : kind -> Sea_core.Pal.t
(** The application PAL serving this kind — one shared [Pal.t] per kind,
    so every request of a kind carries the same measurement and sealed
    state round-trips between requests. *)

val work : kind -> Sea_sim.Time.t
(** Application-specific protected compute per request (the PAL's
    [compute_time]); what a resident PAL consumes per request on the
    proposed hardware. *)

val init_input : kind -> tenant:string -> string
(** The state-creating command (PAL Gen / [setup] / [init]) run once per
    (tenant, kind) before serving starts on today's hardware. *)

val init_state_of_output : kind -> string -> (string, string) result
(** Extract the sealed state blob the init session returned. *)

val request_input : kind -> tenant:string -> state:string -> seq:int -> string
(** Frame one request against the current sealed state blob. *)

val updates_state : kind -> bool
(** Whether a completed request's output replaces the sealed state blob
    (the resealing pattern). *)

val resident_pal : kind -> Sea_core.Pal.t
(** The same measured bytes with open-ended work, for keeping the PAL
    resident under {!Sea_core.Slaunch_session} on the proposed hardware
    and feeding it one request's compute per resume/yield cycle. *)

val static_cost : kind -> int
(** The static admission cost of one request of this kind:
    {!Sea_analysis.Certificate.admission_cost} of the kind's image
    certificate, in virtual microseconds. Every kind's image is real,
    provably bounded PALVM bytecode, so these are finite and ordered
    [Ssh_auth < Ca_sign < Kv_update]. *)

(** {1 Tenants} *)

type process =
  | Open_loop of { rate_per_s : float }
      (** Poisson arrivals at the given mean rate. *)
  | Closed_loop of { clients : int; think : Sea_sim.Time.t }
      (** [clients] concurrent closed-loop clients; after each response
          (or rejection) a client thinks for an exponentially
          distributed time of the given mean ([Time.zero] = none)
          before its next request. *)

(** {1 Traffic shapes}

    A shape modulates an open-loop tenant's arrival rate over virtual
    time — the millions-of-users traces an autoscaler must ride out.
    Shapes are pure functions of the clock, so a shaped run replays
    bit-identically; the cluster layer samples them at its epoch cuts
    (a closed-loop tenant's concurrency is not modulated). *)

type shape =
  | Steady  (** Constant rate — the historical behavior. *)
  | Diurnal of { period : Sea_sim.Time.t; trough : float }
      (** Sinusoidal day/night cycle: the rate multiplier runs from
          [trough] (at phase 0, "midnight") up to [1.0] at half-period
          and back. Requires [period > 0] and [trough] in (0, 1]. *)
  | Flash of { at : Sea_sim.Time.t; width : Sea_sim.Time.t; spike : float }
      (** Flash crowd: a step to [spike ×] the base rate on
          [\[at, at + width)]. Requires [width > 0] and [spike > 0]. *)

val shape_name : shape -> string
(** [steady], [diurnal] or [flash]. *)

val shape_multiplier : shape -> Sea_sim.Time.t -> float
(** The rate multiplier at a virtual instant. Pure. *)

val shape_instants : shape -> Sea_sim.Time.t list
(** The instants where the multiplier is discontinuous (a flash crowd's
    onset and end) — the cluster adds them to its epoch cuts so steps
    are reproduced exactly rather than smeared. Empty for continuous
    shapes. *)

type tenant = {
  name : string;
  weight : int;  (** Share under weighted-fair admission. *)
  mix : (kind * int) list;  (** Weighted request mix. *)
  process : process;
  deadline : Sea_sim.Time.t option;
      (** Queueing deadline: a request still queued this long after
          arrival is dropped as timed out rather than served. *)
  shape : shape;
      (** Rate modulation over virtual time; [Steady] leaves the
          process untouched. *)
}

val tenant :
  ?weight:int ->
  ?mix:(kind * int) list ->
  ?deadline:Sea_sim.Time.t ->
  ?shape:shape ->
  name:string ->
  process ->
  tenant
(** Validated constructor. Defaults: weight 1, mix 100% [Ssh_auth], no
    deadline, steady shape. Raises [Invalid_argument] on non-positive
    weights, rates, client counts, an empty mix or an ill-formed
    shape. *)

val at_time : Sea_sim.Time.t -> tenant -> tenant
(** [at_time now t] specializes [t]'s open-loop rate to the instant
    [now] under its shape (identity for steady or closed-loop tenants):
    what a cluster epoch starting at [now] serves. *)

val draw_kind : Sea_sim.Rng.t -> tenant -> kind
(** Sample one request kind from the tenant's weighted mix. *)

val preset :
  ?deadline:Sea_sim.Time.t ->
  ?shape:shape ->
  ?popularity:[ `Even | `Zipf of float ] ->
  tenants:int ->
  [ `Open of float | `Closed of int * Sea_sim.Time.t ] ->
  tenant list
(** [preset ~tenants:n (`Open total_rate)] builds [n] single-kind
    tenants cycling through {!kinds} with weights cycling 1–3, the
    total arrival rate split evenly; [`Closed (clients, think)] gives
    every tenant that many closed-loop clients instead. [shape]
    (default steady) applies to every tenant. [popularity] splits the
    open-loop total: [`Even] (default, the historical split) or
    [`Zipf alpha] — tenant [i] gets a share proportional to
    [1/(i+1)^alpha], the heavy-tailed popularity curve (ignored for
    closed-loop tenants; alpha must be positive). *)
