(** A per-(tenant, kind) circuit breaker for the serving loop.

    When a request stream's hardware path starts failing persistently
    (retries exhausted on every attempt), continuing to dispatch only
    burns core time on doomed sessions and inflates everyone else's
    queueing delay. The breaker sheds the stream instead: after
    [failure_threshold] consecutive failures it {e opens} and rejects
    arrivals outright for [cooldown] of virtual time, then lets
    [half_open_probes] requests through — a success closes it, another
    failure reopens it for a fresh cooldown.

    All times are virtual (the caller passes [~now] off the engine
    clock), so breaker behaviour replays deterministically. *)

type config = {
  failure_threshold : int;  (** Consecutive failures before opening. *)
  cooldown : Sea_sim.Time.t;  (** Open interval before probing. *)
  half_open_probes : int;  (** Probe budget per half-open episode. *)
}

val config :
  ?failure_threshold:int ->
  ?cooldown:Sea_sim.Time.t ->
  ?half_open_probes:int ->
  unit ->
  config
(** Defaults: 3 failures, 100 ms cooldown, 1 probe. Raises
    [Invalid_argument] on non-positive values. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type t

val create : config -> t

val allow : t -> now:Sea_sim.Time.t -> bool
(** Whether to admit a request now. [Closed]: always. [Open]: no until
    the cooldown elapses, at which point the breaker moves to
    [Half_open] and spends one probe. [Half_open]: yes while probe
    budget remains. Rejections are counted in {!rejected}. *)

val record_success : t -> now:Sea_sim.Time.t -> unit
(** The dispatched request completed: reset the failure run and close. *)

val record_failure : t -> now:Sea_sim.Time.t -> unit
(** The dispatched request failed: extend the failure run; opens the
    breaker at the threshold (or instantly from [Half_open]). *)

val state : t -> state

val transitions : t -> int
(** State changes so far (a full open/half-open/close cycle counts 3). *)

val rejected : t -> int
(** Arrivals turned away by {!allow}. *)

val retry_at : t -> Sea_sim.Time.t
(** When the current open interval ends (meaningful while [Open]) —
    the earliest instant a shed closed-loop client should retry. *)

val degraded : t -> now:Sea_sim.Time.t -> Sea_sim.Time.t
(** Cumulative virtual time spent outside [Closed] up to [now]. *)
