type discipline = Fifo | Weighted

let discipline_name = function Fifo -> "fifo" | Weighted -> "weighted"

type 'a t = {
  discipline : discipline;
  depth : int;
  tenants : int;
  weights : int array;
  queues : 'a Queue.t array; (* Fifo uses only queues.(0)'s sibling below *)
  fifo : (int * 'a) Queue.t;
  credits : int array;
  mutable cursor : int;
  mutable length : int;
  mutable high_water : int;
  tenant_lengths : int array;
  tenant_high_water : int array;
}

let create ~discipline ~depth ~weights =
  if depth <= 0 then invalid_arg "Admission.create: depth must be positive";
  let tenants = Array.length weights in
  if tenants = 0 then invalid_arg "Admission.create: no tenants";
  Array.iter
    (fun w ->
      if w <= 0 then invalid_arg "Admission.create: weights must be positive")
    weights;
  {
    discipline;
    depth;
    tenants;
    weights = Array.copy weights;
    queues = Array.init tenants (fun _ -> Queue.create ());
    fifo = Queue.create ();
    credits = Array.copy weights;
    cursor = 0;
    length = 0;
    high_water = 0;
    tenant_lengths = Array.make tenants 0;
    tenant_high_water = Array.make tenants 0;
  }

let length t = t.length
let tenant_length t i = t.tenant_lengths.(i)
let high_water t = t.high_water
let tenant_high_water t i = t.tenant_high_water.(i)

let full t ~tenant =
  match t.discipline with
  | Fifo -> t.length >= t.depth
  | Weighted -> t.tenant_lengths.(tenant) >= t.depth

let offer t ~tenant x =
  if tenant < 0 || tenant >= t.tenants then
    invalid_arg "Admission.offer: unknown tenant";
  if full t ~tenant then false
  else begin
    (match t.discipline with
    | Fifo -> Queue.push (tenant, x) t.fifo
    | Weighted -> Queue.push x t.queues.(tenant));
    t.length <- t.length + 1;
    if t.length > t.high_water then t.high_water <- t.length;
    t.tenant_lengths.(tenant) <- t.tenant_lengths.(tenant) + 1;
    if t.tenant_lengths.(tenant) > t.tenant_high_water.(tenant) then
      t.tenant_high_water.(tenant) <- t.tenant_lengths.(tenant);
    true
  end

let took t tenant x =
  t.length <- t.length - 1;
  t.tenant_lengths.(tenant) <- t.tenant_lengths.(tenant) - 1;
  Some (tenant, x)

let take t =
  if t.length = 0 then None
  else
    match t.discipline with
    | Fifo ->
        let tenant, x = Queue.pop t.fifo in
        took t tenant x
    | Weighted ->
        (* Weighted round-robin: the cursor tenant is served while it has
           backlog and credit; otherwise the cursor advances, refilling
           the next tenant's credit from its weight. A tenant with
           weight [w] gets up to [w] consecutive dequeues per visit, so
           service shares follow the weights while empty queues donate
           their turn. Terminates: some queue is non-empty, and
           advancing onto a tenant refills its credit. *)
        let rec find () =
          if t.tenant_lengths.(t.cursor) > 0 && t.credits.(t.cursor) > 0 then
            t.cursor
          else begin
            t.cursor <- (t.cursor + 1) mod t.tenants;
            t.credits.(t.cursor) <- t.weights.(t.cursor);
            find ()
          end
        in
        let i = find () in
        t.credits.(i) <- t.credits.(i) - 1;
        let x = Queue.pop t.queues.(i) in
        took t i x
