type discipline = Fifo | Weighted | Cost of int

let discipline_name = function
  | Fifo -> "fifo"
  | Weighted -> "weighted"
  | Cost _ -> "cost"

type 'a t = {
  discipline : discipline;
  depth : int;
  tenants : int;
  weights : int array;
  queues : 'a Queue.t array; (* Fifo uses only queues.(0)'s sibling below *)
  fifo : (int * 'a) Queue.t;
  credits : int array;
  mutable cursor : int;
  mutable length : int;
  mutable high_water : int;
  tenant_lengths : int array;
  tenant_high_water : int array;
  (* [Cost] bookkeeping: per-request static costs queued in lockstep
     with [queues], the per-tenant total in flight, and how many offers
     the budget (rather than the depth) turned away. *)
  cost_queues : int Queue.t array;
  tenant_cost : int array;
  mutable cost_shed : int;
}

let create ~discipline ~depth ~weights =
  if depth <= 0 then invalid_arg "Admission.create: depth must be positive";
  (match discipline with
  | Cost budget when budget <= 0 ->
      invalid_arg "Admission.create: cost budget must be positive"
  | _ -> ());
  let tenants = Array.length weights in
  if tenants = 0 then invalid_arg "Admission.create: no tenants";
  Array.iter
    (fun w ->
      if w <= 0 then invalid_arg "Admission.create: weights must be positive")
    weights;
  {
    discipline;
    depth;
    tenants;
    weights = Array.copy weights;
    queues = Array.init tenants (fun _ -> Queue.create ());
    fifo = Queue.create ();
    credits = Array.copy weights;
    cursor = 0;
    length = 0;
    high_water = 0;
    tenant_lengths = Array.make tenants 0;
    tenant_high_water = Array.make tenants 0;
    cost_queues = Array.init tenants (fun _ -> Queue.create ());
    tenant_cost = Array.make tenants 0;
    cost_shed = 0;
  }

let length t = t.length
let tenant_length t i = t.tenant_lengths.(i)
let high_water t = t.high_water
let tenant_high_water t i = t.tenant_high_water.(i)
let cost_shed t = t.cost_shed

let full t ~tenant =
  match t.discipline with
  | Fifo -> t.length >= t.depth
  | Weighted | Cost _ -> t.tenant_lengths.(tenant) >= t.depth

let offer ?(cost = 0) t ~tenant x =
  if tenant < 0 || tenant >= t.tenants then
    invalid_arg "Admission.offer: unknown tenant";
  if cost < 0 then invalid_arg "Admission.offer: negative cost";
  if full t ~tenant then false
  else begin
    let over_budget =
      match t.discipline with
      | Cost budget -> t.tenant_cost.(tenant) + cost > budget
      | Fifo | Weighted -> false
    in
    if over_budget then begin
      t.cost_shed <- t.cost_shed + 1;
      false
    end
    else begin
      (match t.discipline with
      | Fifo -> Queue.push (tenant, x) t.fifo
      | Weighted -> Queue.push x t.queues.(tenant)
      | Cost _ ->
          Queue.push x t.queues.(tenant);
          Queue.push cost t.cost_queues.(tenant);
          t.tenant_cost.(tenant) <- t.tenant_cost.(tenant) + cost);
      t.length <- t.length + 1;
      if t.length > t.high_water then t.high_water <- t.length;
      t.tenant_lengths.(tenant) <- t.tenant_lengths.(tenant) + 1;
      if t.tenant_lengths.(tenant) > t.tenant_high_water.(tenant) then
        t.tenant_high_water.(tenant) <- t.tenant_lengths.(tenant);
      true
    end
  end

let took t tenant x =
  t.length <- t.length - 1;
  t.tenant_lengths.(tenant) <- t.tenant_lengths.(tenant) - 1;
  Some (tenant, x)

let take t =
  if t.length = 0 then None
  else
    match t.discipline with
    | Fifo ->
        let tenant, x = Queue.pop t.fifo in
        took t tenant x
    | Weighted ->
        (* Weighted round-robin: the cursor tenant is served while it has
           backlog and credit; otherwise the cursor advances, refilling
           the next tenant's credit from its weight. A tenant with
           weight [w] gets up to [w] consecutive dequeues per visit, so
           service shares follow the weights while empty queues donate
           their turn. Terminates: some queue is non-empty, and
           advancing onto a tenant refills its credit. *)
        let rec find () =
          if t.tenant_lengths.(t.cursor) > 0 && t.credits.(t.cursor) > 0 then
            t.cursor
          else begin
            t.cursor <- (t.cursor + 1) mod t.tenants;
            t.credits.(t.cursor) <- t.weights.(t.cursor);
            find ()
          end
        in
        let i = find () in
        t.credits.(i) <- t.credits.(i) - 1;
        let x = Queue.pop t.queues.(i) in
        took t i x
    | Cost _ ->
        (* Cheapest backlog first: the non-empty tenant with the least
           static cost in flight drains next (ties to the lowest
           index), so tenants queueing expensive work wait behind cheap
           ones instead of starving them. Purely a function of offer
           history — no clock, no randomness. *)
        let best = ref (-1) in
        for i = t.tenants - 1 downto 0 do
          if
            t.tenant_lengths.(i) > 0
            && (!best < 0 || t.tenant_cost.(i) <= t.tenant_cost.(!best))
          then best := i
        done;
        let i = !best in
        let x = Queue.pop t.queues.(i) in
        let c = Queue.pop t.cost_queues.(i) in
        t.tenant_cost.(i) <- t.tenant_cost.(i) - c;
        took t i x
