open Sea_sim
open Sea_tpm
open Sea_hw
open Sea_core

(* Re-exporting the backend's kind keeps [Server.Current]/[Server.Proposed]
   valid everywhere while the actual dispatch lives in one Backend value. *)
type mode = Backend.kind = Current | Proposed | Sfi

let mode_name = Backend.kind_name
let mode_names = List.map Backend.cli_name Backend.all
let mode_of_name = Backend.of_cli_name

type config = {
  mode : mode;
  duration : Time.t;
  queue_depth : int;
  discipline : Admission.discipline;
  analyze : Sea_analysis.Analyzer.gate;
  preemption_timer : Time.t;
  faults : Sea_fault.Fault.spec option;
  retry : Sea_fault.Retry.policy option;
  breaker : Breaker.config option;
  vtpm : int option;
  vtpm_batch : int;
}

let config ?(queue_depth = 16) ?(discipline = Admission.Fifo)
    ?(analyze = Sea_analysis.Analyzer.Off) ?(preemption_timer = Time.ms 10.)
    ?faults ?retry ?breaker ?vtpm ?(vtpm_batch = 16) ~mode ~duration () =
  if Time.compare duration Time.zero <= 0 then
    invalid_arg "Server.config: duration must be positive";
  if queue_depth <= 0 then
    invalid_arg "Server.config: queue depth must be positive";
  if Time.compare preemption_timer Time.zero <= 0 then
    invalid_arg "Server.config: preemption timer must be positive";
  (match vtpm with
  | Some k when k <= 0 ->
      invalid_arg "Server.config: vtpm instances must be positive"
  | _ -> ());
  if vtpm_batch <= 0 then
    invalid_arg "Server.config: vtpm batch must be positive";
  { mode; duration; queue_depth; discipline; analyze; preemption_timer;
    faults; retry; breaker; vtpm; vtpm_batch }

(* One queued request. [client] is the closed-loop client slot that will
   reissue once this request is answered ([None] for open-loop). *)
type req = {
  tenant : int;
  kind : Workload.kind;
  arrival : Time.t;
  client : int option;
}

type ev =
  | Arrival of { tenant : int; kind : Workload.kind; client : int option }
  | Core_free of int

(* A PAL kept hosted between requests on a resident backend (suspended in
   access-controlled memory on the proposed hardware, sandboxed under
   SFI). [busy_until] is virtual time: the moment its current burst of
   requests will have drained. *)
type resident = {
  inst : Backend.instance;
  mutable busy_until : Time.t;
  mutable last_core : int;
  mutable last_used : Time.t;
}

exception Serve_error of string

(* A resident's resume faulted even after retries: recoverable by
   quarantining the resident and cold-starting a replacement, unlike the
   general Serve_error failure paths. *)
exception Resume_failed of string

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let run (m : Machine.t) cfg tenant_list =
  let tenants = Array.of_list tenant_list in
  let n = Array.length tenants in
  if n = 0 then invalid_arg "Server.run: no tenants";
  let engine = m.Machine.engine in
  let* tpm =
    match m.Machine.tpm with
    | Some tpm -> Ok tpm
    | None -> Error "serving requires a TPM (sealed state and attestation)"
  in
  let backend = Backend.of_kind cfg.mode in
  let* () = backend.Backend.check_machine m in
  let nkinds = List.length Workload.kinds in
  let key tenant kind = (tenant * nkinds) + Workload.kind_index kind in
  (* The retry policy is resolved before provisioning so the vTPM layer's
     hardware legs (checkpoints, anchor quotes) share it; building the
     plan touches neither the engine clock nor its generator (it splits
     its own seeded stream), and it is only {e installed} after
     bootstrap, below. *)
  let plan = Option.map Sea_fault.Fault.of_spec cfg.faults in
  let retry =
    match cfg.retry with
    | Some _ as r -> r
    | None -> Option.map (fun _ -> Sea_fault.Retry.policy ()) plan
  in
  (* --- vTPM multiplexer: provisioned before bootstrap (provisioning is
     part of machine setup, like bootstrap itself) so every session in
     the run — bootstrap included — executes against its tenant's
     capability. --- *)
  let* vtpm =
    match cfg.vtpm with
    | None -> Ok None
    | Some count -> (
        match
          Sea_vtpm.Vtpm.create ~batch:cfg.vtpm_batch ?retry ~tpm
            ~instances:count ()
        with
        | Ok v -> Ok (Some v)
        | Error e -> Error e)
  in
  let cap_for tenant =
    Option.map (fun v -> Sea_vtpm.Vtpm.cap v ~tenant) vtpm
  in
  (* A quarantined vTPM is healed on the next request routed to it: the
     repair (hardware checkpoint seal, retried) happens on the request's
     clock, and if it still fails only this tenant's requests fail — its
     breaker opens while every other vTPM keeps serving. *)
  let ensure_healthy tenant =
    match vtpm with
    | None -> true
    | Some v ->
        let inst = Sea_vtpm.Vtpm.for_tenant v ~tenant in
        if Sea_vtpm.Vtpm.broken inst then
          match Sea_vtpm.Vtpm.heal inst with Ok () -> true | Error _ -> false
        else true
  in
  (* --- bootstrap: on today's hardware every (tenant, kind) needs its
     sealed state created by a full init session before serving. On a
     resident backend state lives with the hosted PAL instead. --- *)
  let states : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let bootstrap_one i kind =
    let k = key i kind in
    if Hashtbl.mem states k then Ok ()
    else
      let input =
        Workload.init_input kind ~tenant:tenants.(i).Workload.name
      in
      let* outcome =
        Session.execute m ~cpu:0 ~analyze:cfg.analyze ?tpm_cap:(cap_for i)
          (Workload.pal kind) ~input
      in
      let* state =
        Workload.init_state_of_output kind outcome.Session.output
      in
      Hashtbl.add states k state;
      Ok ()
  in
  let* () =
    match cfg.mode with
    | Proposed | Sfi -> Ok ()
    | Current ->
        let rec boot i =
          if i = n then Ok ()
          else
            let rec kinds = function
              | [] -> boot (i + 1)
              | (kind, _) :: rest ->
                  let* () = bootstrap_one i kind in
                  kinds rest
            in
            kinds tenants.(i).Workload.mix
        in
        boot 0
  in
  (* --- robustness machinery. The fault plan is installed only after
     bootstrap (bootstrap models provisioning, not the serving window)
     and draws from its own seeded stream, so the tenant streams split
     below are unperturbed: a rate-0 or no-fault run replays the exact
     pre-fault-machinery timeline. Retry and breakers default on
     whenever faults are injected. --- *)
  Tpm.set_faults tpm plan;
  let retries0 =
    match retry with Some p -> Sea_fault.Retry.retries p | None -> 0
  and give_ups0 =
    match retry with Some p -> Sea_fault.Retry.give_ups p | None -> 0
  in
  (* The serving window starts after bootstrap, on a clean clock. *)
  let base = Engine.now engine in
  let finish_line = Time.add base cfg.duration in
  let rngs = Array.map (fun _ -> Rng.split (Engine.rng engine)) tenants in
  let events : ev Event_queue.t = Event_queue.create () in
  (* Open-loop tenants: the whole Poisson arrival train is drawn up
     front from the tenant's stream. Closed-loop tenants: one initial
     arrival per client; reissues are scheduled as responses land. *)
  Array.iteri
    (fun i ten ->
      match ten.Workload.process with
      | Workload.Open_loop { rate_per_s } ->
          let mean_ms = 1000. /. rate_per_s in
          let t = ref base in
          let continue = ref true in
          while !continue do
            t :=
              Time.add !t (Time.ms (Rng.exponential rngs.(i) ~mean:mean_ms));
            if Time.compare !t finish_line < 0 then
              Event_queue.push events ~time:!t
                (Arrival
                   { tenant = i; kind = Workload.draw_kind rngs.(i) ten; client = None })
            else continue := false
          done
      | Workload.Closed_loop { clients; _ } ->
          for c = 0 to clients - 1 do
            Event_queue.push events ~time:base
              (Arrival
                 { tenant = i; kind = Workload.draw_kind rngs.(i) ten; client = Some c })
          done)
    tenants;
  (* --- accounting --- *)
  let offered = Array.make n 0
  and completed = Array.make n 0
  and shed = Array.make n 0
  and timed_out = Array.make n 0
  and failed = Array.make n 0 in
  let latency = Array.init n (fun _ -> Stats.create ()) in
  let agg_latency = Stats.create () in
  let seqs = Array.make (n * nkinds) 0 in
  let next_seq k =
    let s = seqs.(k) in
    seqs.(k) <- s + 1;
    s
  in
  let pal_busy = ref Time.zero in
  let stalled = ref Time.zero in
  let stall_ms = Stats.create () in
  let cold_starts = ref 0
  and warm_hits = ref 0
  and evictions = ref 0
  and sepcr_waits = ref 0 in
  let breakers =
    match (cfg.breaker, plan) with
    | Some bc, _ -> Some (Array.init (n * nkinds) (fun _ -> Breaker.create bc))
    | None, Some _ ->
        let bc = Breaker.config () in
        Some (Array.init (n * nkinds) (fun _ -> Breaker.create bc))
    | None, None -> None
  in
  let breaker_shed = ref 0 and recoveries = ref 0 in
  let sepcr_wait_ms = Stats.create () in
  let last_completion = ref base in
  let queue : req Admission.t =
    Admission.create ~discipline:cfg.discipline ~depth:cfg.queue_depth
      ~weights:(Array.map (fun t -> t.Workload.weight) tenants)
  in
  (* Static request costs (certificate admission costs, via the
     content-addressed cache) are priced only when the cost discipline
     is active: other disciplines never consult them. *)
  let request_cost =
    match cfg.discipline with
    | Admission.Cost _ ->
        let costs =
          Array.of_list (List.map Workload.static_cost Workload.kinds)
        in
        fun kind -> costs.(Workload.kind_index kind)
    | Admission.Fifo | Admission.Weighted -> fun _ -> 0
  in
  let cores =
    match cfg.mode with
    | Current -> [ 0 ] (* one server: a session owns the whole platform *)
    | Proposed | Sfi -> List.init (Array.length m.Machine.cpus) Fun.id
  in
  let idle : int Queue.t = Queue.create () in
  List.iter (fun c -> Queue.push c idle) cores;
  (* --- execution on today's hardware: one full SKINIT session per
     request, whole platform stalled for its duration. --- *)
  let serve_current ~t r =
    Engine.elapse_to engine t;
    let t0 = Engine.now engine in
    let k = key r.tenant r.kind in
    let state = Hashtbl.find states k in
    let input =
      Workload.request_input r.kind ~tenant:tenants.(r.tenant).Workload.name
        ~state ~seq:(next_seq k)
    in
    let ok =
      ensure_healthy r.tenant
      &&
      match
        backend.Backend.oneshot m ~cpu:0 ~analyze:cfg.analyze ?retry
          ?tpm_cap:(cap_for r.tenant) (Workload.pal r.kind) ~input
      with
      | Ok output ->
          if Workload.updates_state r.kind then
            Hashtbl.replace states k output;
          true
      | Error _ -> false
    in
    let d = Time.sub (Engine.now engine) t0 in
    stalled := Time.add !stalled d;
    Stats.add_time stall_ms d;
    (d, ok)
  in
  (* --- execution on a resident backend: requests run against a hosted
     PAL (same measured bytes as the application PAL), consuming the
     request's compute in preemption-timer slices. A cold start pays the
     backend's launch (SLAUNCH measurement on proposed hardware, the SFI
     loader hash); the backend's pool bounds how many residents can
     exist — the sePCR bank on proposed hardware, unbounded under SFI —
     so beyond it cold starts evict the resident whose burst drains
     earliest, waiting for it if busy. --- *)
  let residents : (int, resident) Hashtbl.t = Hashtbl.create 16 in
  let durable : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let pool = backend.Backend.pool m in
  let fail e = raise (Serve_error e) in
  let evict ~t =
    let victim =
      Hashtbl.fold
        (fun k res acc ->
          let rank r kk =
            (r.busy_until, r.last_used, kk)
          in
          match acc with
          | None -> Some (k, res)
          | Some (k', res') ->
              if compare (rank res k) (rank res' k') < 0 then Some (k, res)
              else acc)
        residents None
    in
    match victim with
    | None -> Time.zero
    | Some (vkey, vres) ->
        let wait = Time.max Time.zero (Time.sub vres.busy_until t) in
        if Time.compare wait Time.zero > 0 then begin
          incr sepcr_waits;
          Stats.add_time sepcr_wait_ms wait
        end;
        incr evictions;
        (* The state hand-off seal the PAL performs at the end of its
           final burst, accounted at eviction time; the blob is what a
           future cold start of the same code identity will unseal. *)
        (match
           vres.inst.Backend.save_state ~cpu:vres.last_core
             ~tag:("resident-state:" ^ string_of_int vkey)
         with
        | Ok (Some blob) -> Hashtbl.replace durable vkey blob
        | Ok None -> ()
        | Error e -> fail ("sealing resident state: " ^ e));
        (match vres.inst.Backend.kill () with
        | Ok () -> ()
        | Error e -> fail ("evicting resident: " ^ e));
        vres.inst.Backend.release ();
        Hashtbl.remove residents vkey;
        wait
  in
  (* Drop a broken or suspect resident: the next request for this key
     takes a clean cold start instead of warm-hitting a broken session. *)
  let quarantine k =
    match Hashtbl.find_opt residents k with
    | Some res ->
        (match res.inst.Backend.kill () with Ok () -> () | Error _ -> ());
        res.inst.Backend.release ();
        Hashtbl.remove residents k
    | None -> ()
  in
  let serve_resident ~core ~t r =
    Engine.elapse_to engine t;
    let e0 = Engine.now engine in
    let k = key r.tenant r.kind in
    ignore (next_seq k);
    if not (ensure_healthy r.tenant) then
      (Time.sub (Engine.now engine) e0, false)
    else begin
    let virtual_wait = ref Time.zero in
    let rec attempt ~recovering =
      virtual_wait := Time.zero;
      try
        let res =
          match Hashtbl.find_opt residents k with
          | Some res ->
              incr warm_hits;
              (* Requests for the same (tenant, kind) serialize behind the
                 single resident's in-flight burst. *)
              virtual_wait := Time.max Time.zero (Time.sub res.busy_until t);
              res
          | None ->
              incr cold_starts;
              if Hashtbl.length residents >= pool then begin
                virtual_wait := Time.add !virtual_wait (evict ~t);
                assert (Hashtbl.length residents < pool)
              end;
              let inst =
                match
                  backend.Backend.launch m ~cpu:core
                    ~preemption_timer:cfg.preemption_timer
                    ~analyze:cfg.analyze ?retry ?tpm_cap:(cap_for r.tenant)
                    (Workload.resident_pal r.kind) ~input:""
                with
                | Ok i -> i
                | Error e -> fail ("cold start: " ^ e)
              in
              (* A re-launch after eviction unseals the durable state the
                 previous incarnation sealed out — same code identity, so
                 the identity-bound blob opens. *)
              (match Hashtbl.find_opt durable k with
              | Some blob -> (
                  match inst.Backend.load_state ~cpu:core blob with
                  | Ok () -> ()
                  | Error e -> fail ("reloading durable state: " ^ e))
              | None -> ());
              let res =
                { inst; busy_until = t; last_core = core; last_used = t }
              in
              Hashtbl.add residents k res;
              res
        in
        (if res.inst.Backend.suspended () then
           match res.inst.Backend.resume ~cpu:core with
           | Ok () -> ()
           | Error e -> raise (Resume_failed e));
        let rec consume remaining =
          if Time.compare remaining Time.zero > 0 then begin
            let budget = Time.min cfg.preemption_timer remaining in
            match res.inst.Backend.run_slice ~cpu:core ~budget () with
            | Ok `Yielded ->
                let remaining = Time.sub remaining budget in
                if Time.compare remaining Time.zero > 0 then begin
                  (match res.inst.Backend.resume ~cpu:core with
                  | Ok () -> ()
                  | Error e -> fail ("resume: " ^ e));
                  consume remaining
                end
            | Ok `Finished -> fail "resident PAL ran out of work"
            | Error e -> fail ("run slice: " ^ e)
          end
        in
        consume (Workload.work r.kind);
        let d =
          Time.add !virtual_wait (Time.sub (Engine.now engine) e0)
        in
        res.busy_until <- Time.add t d;
        res.last_used <- res.busy_until;
        res.last_core <- core;
        (d, true)
      with
      | Resume_failed _ when not recovering ->
          (* The resident's resume faulted even after retries: instead of
             failing the request, quarantine (SKILL) the resident and
             serve it with a fresh cold start — a full re-measure, so the
             replacement's identity is rebuilt from scratch. *)
          warm_hits := !warm_hits - 1;
          incr recoveries;
          quarantine k;
          attempt ~recovering:true
      | Serve_error _ | Resume_failed _ ->
          quarantine k;
          (Time.add !virtual_wait (Time.sub (Engine.now engine) e0), false)
    in
    attempt ~recovering:false
    end
  in
  (* --- the event loop: virtual-time queueing over real executions --- *)
  (* Closed-loop clients shed with a zero think-time draw cannot reissue
     at the same virtual instant: the queue is still full then (no
     Core_free can interleave), so they would shed and reissue forever.
     Park them and retry when a core frees — the only moment a queue
     slot can have opened. *)
  let parked : (int * int) Queue.t = Queue.create () in
  let push_arrival tenant c time =
    if Time.compare time finish_line < 0 then
      Event_queue.push events ~time
        (Arrival
           {
             tenant;
             kind = Workload.draw_kind rngs.(tenant) tenants.(tenant);
             client = Some c;
           })
  in
  let reissue ?(on_shed = false) tenant client t =
    match client with
    | None -> ()
    | Some c -> (
        match tenants.(tenant).Workload.process with
        | Workload.Open_loop _ -> ()
        | Workload.Closed_loop { think; _ } ->
            let delay =
              if Time.compare think Time.zero > 0 then
                Time.ms
                  (Rng.exponential rngs.(tenant) ~mean:(Time.to_ms think))
              else Time.zero
            in
            if on_shed && Time.compare delay Time.zero <= 0 then
              Queue.push (tenant, c) parked
            else push_arrival tenant c (Time.add t delay))
  in
  let rec try_dispatch t =
    if not (Queue.is_empty idle) then
      match Admission.take queue with
      | None -> ()
      | Some (tenant, r) -> (
          match tenants.(tenant).Workload.deadline with
          | Some d when Time.compare (Time.sub t r.arrival) d > 0 ->
              timed_out.(tenant) <- timed_out.(tenant) + 1;
              reissue tenant r.client t;
              try_dispatch t
          | _ ->
              let core = Queue.pop idle in
              Sea_trace.Trace.complete engine ~cat:"serve"
                ~args:(fun () ->
                  [
                    ( "tenant",
                      Sea_trace.Trace.Str tenants.(tenant).Workload.name );
                  ])
                ~start:r.arrival ~stop:t "queue-wait";
              let d, ok =
                Sea_trace.Trace.with_span engine ~cat:"serve"
                  ~args:(fun () ->
                    [
                      ( "tenant",
                        Sea_trace.Trace.Str tenants.(tenant).Workload.name );
                      ("kind", Sea_trace.Trace.Str (Workload.kind_name r.kind));
                      ("mode", Sea_trace.Trace.Str (mode_name cfg.mode));
                    ])
                  "request"
                  (fun () ->
                    match cfg.mode with
                    | Current -> serve_current ~t r
                    | Proposed | Sfi -> serve_resident ~core ~t r)
              in
              let finish = Time.add t d in
              (match breakers with
              | Some arr ->
                  let b = arr.(key tenant r.kind) in
                  let before = Breaker.state b in
                  if ok then Breaker.record_success b ~now:finish
                  else Breaker.record_failure b ~now:finish;
                  let after = Breaker.state b in
                  if before <> after then begin
                    Sea_trace.Trace.instant engine ~cat:"serve"
                      ~args:(fun () ->
                        [
                          ("from", Sea_trace.Trace.Str (Breaker.state_name before));
                          ("to", Sea_trace.Trace.Str (Breaker.state_name after));
                        ])
                      "breaker-transition";
                    Sea_trace.Trace.count engine "serve.breaker_transitions" 1
                  end
              | None -> ());
              if ok then begin
                completed.(tenant) <- completed.(tenant) + 1;
                Sea_trace.Trace.count engine "serve.completed" 1;
                let l = Time.to_ms (Time.sub finish r.arrival) in
                Stats.add latency.(tenant) l;
                Stats.add agg_latency l
              end
              else begin
                failed.(tenant) <- failed.(tenant) + 1;
                Sea_trace.Trace.count engine "serve.failed" 1
              end;
              let occupied =
                match cfg.mode with
                | Current -> Time.scale d (Array.length m.Machine.cpus)
                | Proposed | Sfi -> d
              in
              pal_busy := Time.add !pal_busy occupied;
              if Time.compare finish !last_completion > 0 then
                last_completion := finish;
              Event_queue.push events ~time:finish (Core_free core);
              reissue tenant r.client finish;
              try_dispatch t)
  in
  let rec loop () =
    match Event_queue.pop events with
    | None -> ()
    | Some (t, ev) ->
        (match ev with
        | Arrival { tenant; kind; client } ->
            offered.(tenant) <- offered.(tenant) + 1;
            let breaker_open =
              match breakers with
              | Some arr ->
                  let b = arr.(key tenant kind) in
                  let before = Breaker.state b in
                  let allowed = Breaker.allow b ~now:t in
                  let after = Breaker.state b in
                  if before <> after then begin
                    Sea_trace.Trace.instant engine ~cat:"serve"
                      ~args:(fun () ->
                        [
                          ("from", Sea_trace.Trace.Str (Breaker.state_name before));
                          ("to", Sea_trace.Trace.Str (Breaker.state_name after));
                        ])
                      "breaker-transition";
                    Sea_trace.Trace.count engine "serve.breaker_transitions" 1
                  end;
                  not allowed
              | None -> false
            in
            if breaker_open then begin
              (* Shed by the breaker: counted as shed so the accounting
                 invariant holds. A closed-loop client comes back when
                 the open interval ends, not instantly. *)
              shed.(tenant) <- shed.(tenant) + 1;
              incr breaker_shed;
              Sea_trace.Trace.instant engine ~cat:"serve"
                ~args:(fun () ->
                  [
                    ( "tenant",
                      Sea_trace.Trace.Str tenants.(tenant).Workload.name );
                  ])
                "breaker-shed";
              Sea_trace.Trace.count engine "serve.shed" 1;
              match client with
              | None -> ()
              | Some c ->
                  let at =
                    match breakers with
                    | Some arr ->
                        Time.max
                          (Breaker.retry_at arr.(key tenant kind))
                          (Time.add t (Time.ms 1.))
                    | None -> Time.add t (Time.ms 1.)
                  in
                  push_arrival tenant c at
            end
            else begin
              let r = { tenant; kind; arrival = t; client } in
              if Admission.offer queue ~cost:(request_cost kind) ~tenant r
              then try_dispatch t
              else begin
                shed.(tenant) <- shed.(tenant) + 1;
                Sea_trace.Trace.instant engine ~cat:"serve"
                  ~args:(fun () ->
                    [
                      ( "tenant",
                        Sea_trace.Trace.Str tenants.(tenant).Workload.name );
                    ])
                  "queue-shed";
                Sea_trace.Trace.count engine "serve.shed" 1;
                reissue ~on_shed:true tenant client t
              end
            end
        | Core_free core ->
            Queue.push core idle;
            try_dispatch t;
            for _ = 1 to Queue.length parked do
              let tenant, c = Queue.pop parked in
              push_arrival tenant c t
            done);
        loop ()
  in
  loop ();
  (* Robustness accounting is cut at the end of serving, before teardown
     advances the clock further. *)
  let serve_end = Engine.now engine in
  let breaker_transitions, degraded =
    match breakers with
    | None -> (0, Time.zero)
    | Some arr ->
        Array.fold_left
          (fun (tr, dg) b ->
            ( tr + Breaker.transitions b,
              Time.add dg (Breaker.degraded b ~now:serve_end) ))
          (0, Time.zero) arr
  in
  (* Tear down: kill any remaining residents so the machine is clean. *)
  Hashtbl.iter
    (fun _ res ->
      (match res.inst.Backend.kill () with Ok () -> () | Error _ -> ());
      res.inst.Backend.release ())
    residents;
  Hashtbl.reset residents;
  (* Drain the anchor pipeline (post-window: accounting is already cut)
     so the hardware PCR covers every state change before the plan is
     removed. *)
  Option.iter Sea_vtpm.Vtpm.sync vtpm;
  Tpm.set_faults tpm None;
  (* --- report --- *)
  let window = Time.max cfg.duration (Time.sub !last_completion base) in
  let row i ten =
    {
      Report.tenant = ten.Workload.name;
      weight = ten.Workload.weight;
      offered = offered.(i);
      completed = completed.(i);
      shed = shed.(i);
      timed_out = timed_out.(i);
      failed = failed.(i);
      latency_ms = latency.(i);
      queue_high_water = Admission.tenant_high_water queue i;
    }
  in
  let rows = Array.to_list (Array.mapi row tenants) in
  let sum f = Array.fold_left (fun acc x -> acc + f x) 0 in
  let aggregate =
    {
      Report.tenant = "aggregate";
      weight = sum (fun t -> t.Workload.weight) tenants;
      offered = sum Fun.id offered;
      completed = sum Fun.id completed;
      shed = sum Fun.id shed;
      timed_out = sum Fun.id timed_out;
      failed = sum Fun.id failed;
      latency_ms = agg_latency;
      queue_high_water = Admission.high_water queue;
    }
  in
  let total_core_time =
    Time.scale window (Array.length m.Machine.cpus)
  in
  let legacy_utilization =
    if Time.compare total_core_time Time.zero <= 0 then 0.
    else
      Float.max 0.
        (Time.to_ms (Time.sub total_core_time !pal_busy)
        /. Time.to_ms total_core_time)
  in
  Ok
    {
      Report.mode = mode_name cfg.mode;
      machine = m.Machine.config.Machine.name;
      cores = List.length cores;
      discipline = Admission.discipline_name cfg.discipline;
      depth = cfg.queue_depth;
      cost_budget =
        (match cfg.discipline with
        | Admission.Cost b -> Some b
        | Admission.Fifo | Admission.Weighted -> None);
      cost_shed = Admission.cost_shed queue;
      window;
      rows;
      aggregate;
      pal_busy = !pal_busy;
      legacy_utilization;
      stalled = !stalled;
      stall_ms;
      cold_starts = !cold_starts;
      warm_hits = !warm_hits;
      evictions = !evictions;
      sepcr_waits = !sepcr_waits;
      sepcr_wait_ms;
      faults_injected =
        (match plan with
        | None -> []
        | Some p ->
            List.map
              (fun (k, c) -> (Sea_fault.Fault.kind_name k, c))
              (Sea_fault.Fault.counts p));
      fault_stall =
        (match plan with
        | None -> Time.zero
        | Some p -> Sea_fault.Fault.stall_injected p);
      retries =
        (match retry with
        | Some p -> Sea_fault.Retry.retries p - retries0
        | None -> 0);
      retry_give_ups =
        (match retry with
        | Some p -> Sea_fault.Retry.give_ups p - give_ups0
        | None -> 0);
      breaker_shed = !breaker_shed;
      breaker_transitions;
      degraded;
      recoveries = !recoveries;
      vtpm =
        Option.map
          (fun v ->
            let c = Sea_vtpm.Vtpm.counters v in
            {
              Report.instances = Sea_vtpm.Vtpm.instances v;
              extends = c.Sea_vtpm.Vtpm.extends;
              seals = c.Sea_vtpm.Vtpm.seals;
              unseals = c.Sea_vtpm.Vtpm.unseals;
              resets = c.Sea_vtpm.Vtpm.resets;
            })
          vtpm;
    }
