open Sea_sim
open Sea_core

type kind = Ssh_auth | Ca_sign | Kv_update

let kinds = [ Ssh_auth; Ca_sign; Kv_update ]

let kind_name = function
  | Ssh_auth -> "ssh-auth"
  | Ca_sign -> "ca-sign"
  | Kv_update -> "kv-update"

let kind_of_name = function
  | "ssh-auth" -> Some Ssh_auth
  | "ca-sign" -> Some Ca_sign
  | "kv-update" -> Some Kv_update
  | _ -> None

let kind_index = function Ssh_auth -> 0 | Ca_sign -> 1 | Kv_update -> 2

(* Each kind's measured bytes are a real PALVM program, zero-padded to
   the kind's historical image size (padding decodes as Halt and is
   unreachable, so the analyzer's view is the program alone). The
   behavior stays the OCaml closure — serving never interprets these
   bytes — but the preflight gate and the cost certificates now see
   decodable, provably-bounded images whose static costs are ordered
   the way the serving costs are: ssh (echo-class) < ca (one Seal) <
   kv (Unseal + checksum loop + re-Seal at the full 64 KB). Padding to
   the historical sizes keeps measurement hashing time, and therefore
   every serving report, byte-identical to the synthetic images. *)

let pad_to size code =
  if String.length code > size then
    invalid_arg "Workload: bytecode exceeds its kind's image size";
  code ^ String.make (size - String.length code) '\000'

let bytecode k =
  let open Sea_isa in
  match k with
  | Ssh_auth ->
      (* Read the credential blob and echo a verdict-sized slice. *)
      Isa.encode_program
        Isa.
          [
            Loadi (0, 1024); Loadi (1, 512); Svc Isa.svc_input_read;
            Mov (1, 0); Loadi (0, 1024); Svc Isa.svc_output; Halt;
          ]
  | Ca_sign ->
      (* Read the CSR, seal the issued certificate, emit the blob. *)
      Isa.encode_program
        Isa.
          [
            Loadi (0, 1024); Loadi (1, 1024); Svc Isa.svc_input_read;
            Mov (1, 0); Loadi (0, 1024); Loadi (2, 8192); Svc Isa.svc_seal;
            Mov (1, 0); Loadi (0, 8192); Svc Isa.svc_output; Halt;
          ]
  | Kv_update ->
      (* The loop-heavy image: checksum the update record byte by byte,
         unseal the store, re-seal, emit the new blob. The loop has a
         provable trip bound (counter r1 steps by 1 to the byte count
         in r2, itself at most 2048), so the certificate stays finite
         while pricing the heaviest TPM traffic in the mix. *)
      Isa.encode_program
        Isa.
          [
            (* 0  *) Loadi (0, 4096); Loadi (1, 2048); Svc Isa.svc_input_read;
            (* 24 *) Mov (2, 0); Loadi (1, 0); Loadi (3, 0);
            (* 48 *) Eq (4, 1, 2); Jnz (4, 104);
            (* 64 *) Ldb (5, 1, 4096); Xor (3, 3, 5); Loadi (6, 1);
            (* 88 *) Add (1, 1, 6); Jmp 48;
            (* 104: blob at 4096 (r2 bytes) -> plaintext at 8192 *)
            Loadi (0, 4096); Mov (1, 2); Loadi (2, 8192); Svc Isa.svc_unseal;
            (* 136: plaintext (r0 bytes) -> new blob at 16384 *)
            Mov (1, 0); Loadi (0, 8192); Loadi (2, 16384); Svc Isa.svc_seal;
            (* 168 *) Mov (1, 0); Loadi (0, 16384); Svc Isa.svc_output; Halt;
          ]

let with_bytecode k p =
  { p with Pal.code = pad_to (String.length p.Pal.code) (bytecode k) }

(* One shared Pal.t per kind: every invocation of a kind must carry the
   same measurement, or sealed state created by one request would refuse
   to unseal in the next. *)
let ssh_pal = lazy (with_bytecode Ssh_auth (Sea_apps.Ssh_password.pal ()))
let ca_pal = lazy (with_bytecode Ca_sign (Sea_apps.Cert_authority.pal ()))

let kv_pal =
  (* The paper's resealing PAL Use at the full 64 KB SKINIT allows — the
     distributed-computing pattern, and the heaviest launch in the mix. *)
  lazy
    (with_bytecode Kv_update
       (Generic.pal_use ~reseal:true ~compute_time:(Time.ms 5.) ()))

let pal = function
  | Ssh_auth -> Lazy.force ssh_pal
  | Ca_sign -> Lazy.force ca_pal
  | Kv_update -> Lazy.force kv_pal

let work k = (pal k).Pal.compute_time

let password tenant = "pw-" ^ tenant

let init_input k ~tenant =
  match k with
  | Ssh_auth -> Sea_apps.Codec.command "setup" [ tenant; password tenant ]
  | Ca_sign -> Sea_apps.Codec.command "init" []
  | Kv_update -> "" (* the Gen entry point of the shared Gen/Use binary *)

let init_state_of_output k output =
  match k with
  | Ssh_auth | Kv_update -> Ok output
  | Ca_sign -> (
      match Sea_apps.Codec.parse_command output with
      | Some ("init-ok", [ _public; blob ]) -> Ok blob
      | _ -> Error "unexpected CA init output")

let request_input k ~tenant ~state ~seq =
  match k with
  | Ssh_auth -> Sea_apps.Codec.command "auth" [ state; tenant; password tenant ]
  | Ca_sign ->
      Sea_apps.Codec.command "sign"
        [ state; Printf.sprintf "CN=%s/%d" tenant seq ]
  | Kv_update -> state

let updates_state = function Kv_update -> true | Ssh_auth | Ca_sign -> false

(* The resident flavour of a kind for the proposed hardware: the same
   measured bytes (so attestation and sealed-state binding are unchanged)
   but open-ended work, letting the serving layer feed it one request's
   worth of compute per SLAUNCH/SYIELD cycle and keep it suspended in
   access-controlled memory between requests. *)
let resident_pal k =
  let p = pal k in
  Pal.of_code ~name:(p.Pal.name ^ "-resident") ~code:p.Pal.code
    ~compute_time:(Time.s 1_000_000.) (fun _ _ -> Ok "resident")

(* Static admission cost of one request of this kind, from the image's
   cost certificate (through the content-addressed cache, so the first
   call per kind analyzes and the rest look up). *)
let static_cost k =
  Sea_analysis.Certificate.admission_cost (Pal.certificate (pal k))

type process =
  | Open_loop of { rate_per_s : float }
  | Closed_loop of { clients : int; think : Time.t }

type shape =
  | Steady
  | Diurnal of { period : Time.t; trough : float }
  | Flash of { at : Time.t; width : Time.t; spike : float }

let shape_name = function
  | Steady -> "steady"
  | Diurnal _ -> "diurnal"
  | Flash _ -> "flash"

let validate_shape = function
  | Steady -> ()
  | Diurnal { period; trough } ->
      if Time.compare period Time.zero <= 0 then
        invalid_arg "Workload: diurnal period must be positive";
      if trough <= 0. || trough > 1. then
        invalid_arg "Workload: diurnal trough must be in (0, 1]"
  | Flash { at; width; spike } ->
      if Time.compare at Time.zero < 0 then
        invalid_arg "Workload: flash start must be non-negative";
      if Time.compare width Time.zero <= 0 then
        invalid_arg "Workload: flash width must be positive";
      if spike <= 0. then invalid_arg "Workload: flash spike must be positive"

let shape_multiplier shape now =
  match shape with
  | Steady -> 1.
  | Diurnal { period; trough } ->
      (* Trough at t = 0 (midnight), peak 1.0 at half-period (midday):
         the classic diurnal curve of a consumer service, sampled at
         whatever instants the cluster's epoch cuts land on. *)
      let phase = Time.to_s now /. Time.to_s period in
      trough +. ((1. -. trough) *. (1. -. cos (2. *. Float.pi *. phase)) /. 2.)
  | Flash { at; width; spike } ->
      (* A step function, so an epoch cut at [at] and [at + width]
         reproduces the crowd exactly rather than smearing it. *)
      if Time.compare now at >= 0 && Time.compare now (Time.add at width) < 0
      then spike
      else 1.

let shape_instants shape =
  match shape with
  | Steady | Diurnal _ -> []
  | Flash { at; width; _ } -> [ at; Time.add at width ]

type tenant = {
  name : string;
  weight : int;
  mix : (kind * int) list;
  process : process;
  deadline : Time.t option;
  shape : shape;
}

let tenant ?(weight = 1) ?(mix = [ (Ssh_auth, 1) ]) ?deadline ?(shape = Steady)
    ~name process =
  if weight <= 0 then invalid_arg "Workload.tenant: weight must be positive";
  if mix = [] then invalid_arg "Workload.tenant: empty request mix";
  List.iter
    (fun (_, w) ->
      if w <= 0 then invalid_arg "Workload.tenant: mix weights must be positive")
    mix;
  validate_shape shape;
  (match process with
  | Open_loop { rate_per_s } ->
      if rate_per_s <= 0. then
        invalid_arg "Workload.tenant: rate must be positive"
  | Closed_loop { clients; _ } ->
      if clients <= 0 then
        invalid_arg "Workload.tenant: clients must be positive");
  { name; weight; mix; process; deadline; shape }

let at_time now t =
  match (t.shape, t.process) with
  | Steady, _ | _, Closed_loop _ -> t
  | shape, Open_loop { rate_per_s } ->
      let m = shape_multiplier shape now in
      if m = 1. then t
      else { t with process = Open_loop { rate_per_s = rate_per_s *. m } }

let draw_kind rng t =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 t.mix in
  let x = Rng.int rng total in
  let rec pick acc = function
    | [] -> fst (List.hd t.mix)
    | (k, w) :: rest -> if x < acc + w then k else pick (acc + w) rest
  in
  pick 0 t.mix

let preset ?deadline ?(shape = Steady) ?(popularity = `Even) ~tenants process =
  if tenants <= 0 then invalid_arg "Workload.preset: tenants must be positive";
  (* Heavy-tailed popularity: tenant [i]'s share of the total arrival
     rate is Zipfian, 1/(i+1)^alpha normalized over the population — a
     handful of head tenants carry most of the traffic, the long tail
     trickles. Even split is the historical behavior. *)
  let rate_of =
    match popularity with
    (* The even split must stay the historical [total /. n] expression
       exactly: the rate seeds Poisson inter-arrival draws, and a
       last-ulp difference would shift every report byte. *)
    | `Even -> fun _ total -> total /. float_of_int tenants
    | `Zipf alpha ->
        if alpha <= 0. then
          invalid_arg "Workload.preset: zipf alpha must be positive";
        let mass i = 1. /. Float.pow (float_of_int (i + 1)) alpha in
        let total_mass = ref 0. in
        for i = 0 to tenants - 1 do
          total_mass := !total_mass +. mass i
        done;
        let total_mass = !total_mass in
        fun i total -> total *. (mass i /. total_mass)
  in
  List.init tenants (fun i ->
      let k = List.nth kinds (i mod List.length kinds) in
      let process =
        match process with
        | `Open total_rate -> Open_loop { rate_per_s = rate_of i total_rate }
        | `Closed (clients, think) -> Closed_loop { clients; think }
      in
      tenant
        ~name:(Printf.sprintf "t%d-%s" i (kind_name k))
        ~weight:(1 + (i mod 3))
        ~mix:[ (k, 1) ]
        ?deadline ~shape process)
