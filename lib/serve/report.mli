(** Serving reports: per-tenant and aggregate accounting of one
    {!Server.run}, with tail latencies.

    Invariant per row: [offered = completed + shed + timed_out + failed]
    plus any requests still queued when the run was cut off (the server
    drains its queue, so normally none). Goodput is completed requests
    over the measurement window; the window extends past the configured
    duration if the backlog drained later. *)

open Sea_sim

type row = {
  tenant : string;
  weight : int;
  offered : int;  (** Requests that arrived (incl. later shed ones). *)
  completed : int;  (** Served successfully: the goodput numerator. *)
  shed : int;  (** Rejected at admission: queue bound hit. *)
  timed_out : int;  (** Dropped at dispatch: queued past the deadline. *)
  failed : int;  (** Session/launch errors (normally zero). *)
  latency_ms : Stats.t;  (** Arrival-to-response, completed requests. *)
  queue_high_water : int;
}

type vtpm_stats = {
  instances : int;  (** Virtual TPMs multiplexed on this machine. *)
  extends : int;  (** Virtual PCR extends (anchor records enqueued). *)
  seals : int;  (** Software seals served by vTPM instances. *)
  unseals : int;
  resets : int;  (** Quarantined vTPMs healed back into service. *)
}
(** Batch-size-invariant vTPM counters: anchor flush/batch-occupancy
    counts depend on the [--vtpm-batch] pipeline setting and live in the
    trace ("vtpm" category) instead, so a report renders byte-identically
    for any batch size. *)

type t = {
  mode : string;
  machine : string;
  cores : int;
  discipline : string;
  depth : int;
  cost_budget : int option;
      (** The per-tenant in-flight cost budget when the cost-aware
          admission discipline ({!Admission.discipline}[.Cost]) was
          active; [None] otherwise (and then no cost line renders). *)
  cost_shed : int;
      (** Offers turned away by the cost budget rather than queue depth
          (a subset of the rows' [shed]). *)
  window : Time.t;
  rows : row list;
  aggregate : row;
  pal_busy : Time.t;  (** Total core-time spent in or stalled on PALs. *)
  legacy_utilization : float;
      (** Fraction of core-time left to the legacy OS, in [0,1]. *)
  stalled : Time.t;  (** Whole-platform stall (today's hardware only). *)
  stall_ms : Stats.t;  (** Per-request stall intervals, ms. *)
  cold_starts : int;  (** Launches that paid full measurement. *)
  warm_hits : int;  (** Requests served by a resident suspended PAL. *)
  evictions : int;  (** Residents SKILLed to free an sePCR. *)
  sepcr_waits : int;  (** Cold starts that blocked on a busy sePCR pool. *)
  sepcr_wait_ms : Stats.t;
  faults_injected : (string * int) list;
      (** Per-kind injected fault counts ([Sea_fault.Fault.kind_name]
          order); empty when no fault plan was installed. *)
  fault_stall : Time.t;  (** Extra bus time injected by LPC stalls. *)
  retries : int;  (** Transient-failure retries performed while serving. *)
  retry_give_ups : int;  (** Operations still failing after all retries. *)
  breaker_shed : int;
      (** Arrivals rejected by an open circuit breaker (a subset of the
          rows' [shed], so the accounting invariant is unchanged). *)
  breaker_transitions : int;  (** Breaker state changes, all breakers. *)
  degraded : Time.t;
      (** Cumulative virtual time breakers spent outside [Closed]. *)
  recoveries : int;
      (** Residents quarantined after a faulted resume and replaced by a
          cold start within the same request. *)
  vtpm : vtpm_stats option;
      (** Present iff a vTPM multiplexer served this run (and then the
          vtpm line renders). *)
}

val merge_rows : tenant:string -> row list -> row
(** Combine accounting rows from independent runs (one machine's
    aggregate each, in a fleet) into one row labelled [tenant]: counters
    and weights sum, latency samples are merged exactly (in list order,
    via {!Sea_sim.Stats.merge}) so percentiles of the result are true
    cross-run percentiles, and the queue high-water mark is the max.
    Raises [Invalid_argument] on an empty list. *)

val merge_fault_counts : (string * int) list list -> (string * int) list
(** Sum per-kind injected-fault counts across reports, preserving the
    kind order of the first non-empty list. *)

val merge_seq : t list -> t
(** Merge reports from {e consecutive} serving windows of one machine
    (the epochs a churn run is cut into): windows and busy times add,
    counters sum, per-tenant rows fold by name in order of first
    appearance (weights are configuration, kept from the first window,
    not summed), and latency samples concatenate exactly. Raises
    [Invalid_argument] on an empty list. *)

val row_consistent : row -> bool
(** The per-row accounting invariant:
    [offered = completed + shed + timed_out + failed]. Preserved by
    {!merge_rows}; exported so fleet-level checks and tests share one
    definition. *)

val robustness_active : t -> bool
(** Whether any robustness counter is non-zero — i.e. whether {!pp}
    appends the fault/retry/breaker lines. Always false for a fault-free
    run, whose render is bit-identical to a build without the fault
    machinery. *)

val goodput_per_s : t -> row -> float
val pp : Format.formatter -> t -> unit
val render : t -> string
(** The full report as a string; identical seeds and configuration give
    bit-identical renders. *)
