(** Serving reports: per-tenant and aggregate accounting of one
    {!Server.run}, with tail latencies.

    Invariant per row: [offered = completed + shed + timed_out + failed]
    plus any requests still queued when the run was cut off (the server
    drains its queue, so normally none). Goodput is completed requests
    over the measurement window; the window extends past the configured
    duration if the backlog drained later. *)

open Sea_sim

type row = {
  tenant : string;
  weight : int;
  offered : int;  (** Requests that arrived (incl. later shed ones). *)
  completed : int;  (** Served successfully: the goodput numerator. *)
  shed : int;  (** Rejected at admission: queue bound hit. *)
  timed_out : int;  (** Dropped at dispatch: queued past the deadline. *)
  failed : int;  (** Session/launch errors (normally zero). *)
  latency_ms : Stats.t;  (** Arrival-to-response, completed requests. *)
  queue_high_water : int;
}

type t = {
  mode : string;
  machine : string;
  cores : int;
  discipline : string;
  depth : int;
  window : Time.t;
  rows : row list;
  aggregate : row;
  pal_busy : Time.t;  (** Total core-time spent in or stalled on PALs. *)
  legacy_utilization : float;
      (** Fraction of core-time left to the legacy OS, in [0,1]. *)
  stalled : Time.t;  (** Whole-platform stall (today's hardware only). *)
  stall_ms : Stats.t;  (** Per-request stall intervals, ms. *)
  cold_starts : int;  (** Launches that paid full measurement. *)
  warm_hits : int;  (** Requests served by a resident suspended PAL. *)
  evictions : int;  (** Residents SKILLed to free an sePCR. *)
  sepcr_waits : int;  (** Cold starts that blocked on a busy sePCR pool. *)
  sepcr_wait_ms : Stats.t;
}

val goodput_per_s : t -> row -> float
val pp : Format.formatter -> t -> unit
val render : t -> string
(** The full report as a string; identical seeds and configuration give
    bit-identical renders. *)
