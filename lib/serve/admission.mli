(** Bounded admission queues for the serving layer.

    Two disciplines:

    - [Fifo] — one global bounded queue, strict arrival order, shared
      [depth]; an arrival finding the queue full is shed.
    - [Weighted] — one bounded queue per tenant ([depth] each) drained
      by weighted round-robin: a tenant with weight [w] gets up to [w]
      dequeues per round while backlogged, so service shares follow the
      weights and one tenant's burst cannot starve the others.

    Purely mechanical (no clock, no randomness): determinism of the
    serving loop rests on [take] order being a function of [offer]
    order alone. High-water marks are tracked for the report. *)

type discipline = Fifo | Weighted

val discipline_name : discipline -> string

type 'a t

val create : discipline:discipline -> depth:int -> weights:int array -> 'a t
(** One slot-count [depth] (global for [Fifo], per-tenant for
    [Weighted]); [weights] gives the tenant count and their
    round-robin shares (ignored by [Fifo]). Raises [Invalid_argument]
    on a non-positive depth or weight, or zero tenants. *)

val offer : 'a t -> tenant:int -> 'a -> bool
(** Enqueue, or return [false] (shed) if the relevant bound is hit. *)

val take : 'a t -> (int * 'a) option
(** Dequeue the next request and its tenant, per the discipline. *)

val length : 'a t -> int
val tenant_length : 'a t -> int -> int
val high_water : 'a t -> int
val tenant_high_water : 'a t -> int -> int
