(** Bounded admission queues for the serving layer.

    Three disciplines:

    - [Fifo] — one global bounded queue, strict arrival order, shared
      [depth]; an arrival finding the queue full is shed.
    - [Weighted] — one bounded queue per tenant ([depth] each) drained
      by weighted round-robin: a tenant with weight [w] gets up to [w]
      dequeues per round while backlogged, so service shares follow the
      weights and one tenant's burst cannot starve the others.
    - [Cost budget] — cost-aware admission driven by static
      certificates ({!Sea_analysis.Certificate}): each offer carries
      the request's static cost, a tenant may keep at most [budget]
      cost units in flight (an offer that would exceed it is shed and
      counted in {!cost_shed}), and [take] drains the non-empty tenant
      with the cheapest queued backlog first — expensive tenants wait
      behind cheap ones instead of starving them.

    Purely mechanical (no clock, no randomness): determinism of the
    serving loop rests on [take] order being a function of [offer]
    order alone. High-water marks are tracked for the report. *)

type discipline = Fifo | Weighted | Cost of int

val discipline_name : discipline -> string

type 'a t

val create : discipline:discipline -> depth:int -> weights:int array -> 'a t
(** One slot-count [depth] (global for [Fifo], per-tenant for
    [Weighted] and [Cost]); [weights] gives the tenant count and their
    round-robin shares (ignored by [Fifo] and [Cost]). Raises
    [Invalid_argument] on a non-positive depth, weight or cost budget,
    or zero tenants. *)

val offer : ?cost:int -> 'a t -> tenant:int -> 'a -> bool
(** Enqueue, or return [false] (shed) if the relevant bound is hit.
    [cost] (default 0) is the request's static cost; only [Cost]
    consults it. Raises [Invalid_argument] on a negative cost. *)

val take : 'a t -> (int * 'a) option
(** Dequeue the next request and its tenant, per the discipline. *)

val cost_shed : 'a t -> int
(** Offers turned away by the [Cost] budget (not by queue depth). *)

val length : 'a t -> int
val tenant_length : 'a t -> int -> int
val high_water : 'a t -> int
val tenant_high_water : 'a t -> int -> int
