(** The serving loop: multi-tenant PAL request service, measured end to
    end on one simulated machine.

    This is the paper's §4.2 observation turned into a systems
    experiment. On {e today's} hardware ([Current]) every request is a
    full {!Sea_core.Session}: SKINIT measurement, TPM Unseal (and Seal
    for resealing kinds), and a whole-platform stall for the duration —
    one request at a time, hundreds of milliseconds each. On the
    {e proposed} hardware ([Proposed]) each (tenant, kind) keeps a
    resident PAL suspended in access-controlled memory
    ({!Sea_core.Slaunch_session}): a warm request is a resume plus
    preemption-timer slices of the request's compute, microseconds of
    overhead, and every core serves concurrently while the legacy OS
    keeps running. The finite sePCR bank bounds the resident set: a
    cold start beyond it must evict (SKILL) another resident — sealing
    its durable state out, to be unsealed by a later re-launch of the
    same code identity — and waits if every resident is mid-burst.
    Under software fault isolation ([Sfi]) residents are likewise kept
    hosted ({!Sea_core.Sfi_session}) but transitions cost a VM-exit
    round trip and the pool is unbounded: no sePCR scarcity, so no
    evictions and no waits.

    All three paths dispatch through one {!Sea_core.Backend.t} value;
    the mode only selects which.

    Mechanically the loop is virtual-time queueing over real
    executions: arrivals, admission and core occupancy are tracked in
    virtual time off the engine clock, while every service interval is
    measured by actually running the session or slices on the machine
    (the engine clock ratchets forward monotonically). All randomness
    comes from streams split off the machine engine, so a given seed
    and configuration replays bit-identically. *)

type mode = Sea_core.Backend.kind = Current | Proposed | Sfi

val mode_name : mode -> string

val mode_names : string list
(** CLI spellings of every mode, for "unknown mode" messages. *)

val mode_of_name : string -> mode option
(** Parse a CLI spelling (case-insensitive); [None] for unknown names. *)

type config = {
  mode : mode;
  duration : Sea_sim.Time.t;  (** How long arrivals keep coming. *)
  queue_depth : int;
  discipline : Admission.discipline;
  analyze : Sea_analysis.Analyzer.gate;
      (** Static-analysis launch gate applied to every session and
          resident launch (default [Off]). Analysis is content-addressed
          through {!Sea_core.Pal}'s certificate cache, so each distinct
          image is analyzed once per process regardless of request
          volume, and the gate costs no virtual time: an admitted run's
          report is byte-identical to the ungated one. *)
  preemption_timer : Sea_sim.Time.t;  (** Slice budget ([Proposed]). *)
  faults : Sea_fault.Fault.spec option;
      (** Deterministic fault plan injected at the TPM/LPC boundary for
          the serving window (installed after bootstrap). *)
  retry : Sea_fault.Retry.policy option;
      (** Retry policy around the hardware path; defaults to
          [Sea_fault.Retry.policy ()] whenever [faults] is set. *)
  breaker : Breaker.config option;
      (** Per-(tenant, kind) circuit breakers; default on (with
          {!Breaker.config} defaults) whenever [faults] is set. *)
  vtpm : int option;
      (** Multiplex this many virtual TPMs over the machine's hardware
          TPM ([Sea_vtpm]); every session — bootstrap included — then
          executes against its tenant's vTPM capability (tenant [i] →
          instance [i mod vtpm]), with the hardware part serving only as
          the integrity anchor. [None] (default): sessions talk to the
          hardware TPM directly, byte-for-byte the historical
          behaviour. *)
  vtpm_batch : int;
      (** Anchor-pipeline batch size (pending state-change records per
          hardware anchor flush; default 16). Affects only the anchor
          pipeline's background lag: reports are byte-identical across
          batch sizes. *)
}

val config :
  ?queue_depth:int ->
  ?discipline:Admission.discipline ->
  ?analyze:Sea_analysis.Analyzer.gate ->
  ?preemption_timer:Sea_sim.Time.t ->
  ?faults:Sea_fault.Fault.spec ->
  ?retry:Sea_fault.Retry.policy ->
  ?breaker:Breaker.config ->
  ?vtpm:int ->
  ?vtpm_batch:int ->
  mode:mode ->
  duration:Sea_sim.Time.t ->
  unit ->
  config
(** Defaults: depth 16, FIFO, analysis gate [Off], 10 ms preemption
    timer, no faults, no vTPM layer, vTPM batch 16. Raises
    [Invalid_argument] on non-positive values. *)

val run :
  Sea_hw.Machine.t ->
  config ->
  Workload.tenant list ->
  (Report.t, string) result
(** Bootstrap sealed state (on [Current]), generate arrivals for
    [duration], serve until the admitted backlog drains, and report.
    The measurement window stretches to the last completion, so slow
    modes cannot hide a backlog. [Error] covers machine/mode mismatch
    (no TPM, or [Proposed] without the proposed hardware) and bootstrap
    failures; per-request errors are counted in the report's [failed]
    column instead. Raises [Invalid_argument] on an empty tenant
    list.

    With [faults] set, the plan is installed on the TPM and LPC bus for
    the serving window only, and the loop degrades gracefully rather
    than failing requests outright: transient errors are retried with
    virtual-time backoff; a resident whose resume still faults is
    quarantined (SKILLed) and the request served by a fresh cold start;
    a (tenant, kind) stream that keeps failing is shed by its circuit
    breaker for a cooldown instead of being dispatched to certain
    failure. Breaker sheds count in the rows' [shed], preserving
    [offered = completed + shed + timed_out + failed].

    With [vtpm] set, faults also reach the vTPM anchor path: background
    anchor extends burn bounded retries against injected busy faults and
    a checkpoint seal can fail permanently — either quarantines only the
    affected vTPM. A quarantined vTPM is healed on the next request
    routed to it; if the repair still fails, only that tenant's requests
    fail (and its breaker opens) while every other vTPM keeps
    serving. *)
