open Sea_sim
open Sea_crypto
module Tpm = Sea_tpm.Tpm
module Timing = Sea_tpm.Timing
module Pcr = Sea_tpm.Pcr
module Event_log = Sea_tpm.Event_log
module Cap = Sea_tpm.Cap
module Lpc = Sea_bus.Lpc
module Fault = Sea_fault.Fault
module Retry = Sea_fault.Retry
module Trace = Sea_trace.Trace

(* CPU-speed command latencies: µs-class hashing/AEAD/DRBG work against
   the hardware part's ms-class commands. Charged as plain means —
   [jitter = 0.0] and no [Timing.draw] — so a vTPM in front of the
   hardware TPM never perturbs the jitter stream the hardware commands
   draw from. *)
let software_profile : Timing.profile =
  {
    pcr_extend = Time.us 1.2;
    seal_base = Time.us 28.0;
    seal_per_byte = Time.ns 12;
    unseal_base = Time.us 24.0;
    unseal_per_byte = Time.ns 12;
    quote = Time.us 160.0;
    get_random_base = Time.us 1.5;
    get_random_per_byte = Time.ns 8;
    pcr_read = Time.ns 90;
    hash_start = Time.us 0.4;
    hash_data_wait = Time.zero;
    hash_end = Time.us 0.8;
    jitter = 0.0;
  }

type counters = {
  seals : int;
  unseals : int;
  extends : int;
  quotes : int;
  resets : int;
}

type instance = {
  idx : int;
  mux : mux;
  pcrs : Pcr.bank;
  log : Event_log.t;
  key : Rsa.private_key;
  drbg : Drbg.t;
  mutable digest : string;
  mutable saved : string option;  (* hardware checkpoint blob *)
  mutable broken : bool;
}

and mux = {
  tpm : Tpm.t;
  engine : Engine.t;
  anchor_pcr : int;
  batch : int;
  retry : Retry.policy option;
  mutable insts : instance array;
  mutable pending : (int * string) list;  (* newest first: index, record *)
  mutable pending_count : int;
  mutable anchor_value : string;
  mutable busy_until : Time.t;  (* the anchor pipeline's own timeline *)
  mutable anchor_time : Time.t;
  mutable flushes : int;
  mutable records_flushed : int;
  mutable anchor_retries : int;
  mutable seals : int;
  mutable unseals : int;
  mutable extends : int;
  mutable quotes : int;
  mutable resets : int;
}

type t = mux

let instances m = Array.length m.insts
let anchor_pcr m = m.anchor_pcr

let instance m i =
  if i < 0 || i >= Array.length m.insts then
    invalid_arg "Vtpm.instance: index out of range";
  m.insts.(i)

let for_tenant m ~tenant =
  let n = Array.length m.insts in
  m.insts.(((tenant mod n) + n) mod n)

let index inst = inst.idx
let broken inst = inst.broken
let pcr_value inst i = Pcr.read inst.pcrs i
let state_digest inst = inst.digest
let event_log inst = inst.log
let key_public inst = inst.key.Rsa.pub
let anchor_value m = m.anchor_value
let flushes m = m.flushes
let records_flushed m = m.records_flushed
let anchor_retries m = m.anchor_retries
let anchor_time m = m.anchor_time

let anchor_lag m =
  Time.max Time.zero (Time.sub m.busy_until (Engine.now m.engine))

let counters m =
  {
    seals = m.seals;
    unseals = m.unseals;
    extends = m.extends;
    quotes = m.quotes;
    resets = m.resets;
  }

let charge m mean = Engine.advance m.engine mean

let traced m name f =
  Trace.with_span m.engine ~cat:"vtpm" name f

let quarantined inst =
  (* Deliberately permanent (no TPM_RETRY tag): a quarantined vTPM stays
     down until somebody heals it. *)
  Printf.sprintf "vTPM %d quarantined" inst.idx

(* --- The batched anchor pipeline --- *)

let record_bytes inst =
  let enc = Wire.encoder () in
  Wire.add_int enc inst.idx;
  Wire.add_string enc inst.digest;
  Wire.contents enc

(* Fold a pending batch into one digest and extend it into the hardware
   anchor PCR. State commits now ([Tpm.pcr_extend_deferred]); cost — one
   coalesced LPC burst for the whole batch plus one extend latency per
   attempt — accrues on the pipeline's own [busy_until] timeline, never
   on the engine clock. Injected busy faults burn attempts (bounded by
   the retry policy); exhaustion quarantines every instance with a
   record in the batch. *)
let flush m =
  if m.pending_count > 0 then begin
    let recs = List.rev m.pending in
    let n = m.pending_count in
    m.pending <- [];
    m.pending_count <- 0;
    let chunks = List.map (fun (_, r) -> String.length r) recs in
    let batch_digest = Sha1.digest (String.concat "" (List.map snd recs)) in
    let profile = Tpm.profile m.tpm in
    let lpc_time =
      Lpc.batch_transfer_time (Tpm.lpc m.tpm)
        ~device_wait:profile.Timing.hash_data_wait ~chunks
    in
    let attempts =
      match m.retry with None -> 1 | Some p -> Retry.max_attempts p
    in
    let rec extend_hw attempt cost =
      let busy =
        match Tpm.faults m.tpm with
        | Some plan -> Fault.fires plan Tpm_busy
        | None -> false
      in
      if busy then begin
        m.anchor_retries <- m.anchor_retries + 1;
        Trace.instant m.engine ~cat:"fault" "vtpm-anchor-busy";
        let cost = Time.add cost profile.Timing.pcr_extend in
        if attempt + 1 >= attempts then Error cost
        else extend_hw (attempt + 1) cost
      end
      else
        let v, extend_cost =
          Tpm.pcr_extend_deferred m.tpm m.anchor_pcr batch_digest
        in
        Ok (v, Time.add cost extend_cost)
    in
    let ok, cost =
      match extend_hw 0 lpc_time with
      | Ok (v, cost) ->
          m.anchor_value <- v;
          (true, cost)
      | Error cost ->
          List.iter (fun (idx, _) -> m.insts.(idx).broken <- true) recs;
          (false, cost)
    in
    let start = Time.max (Engine.now m.engine) m.busy_until in
    m.busy_until <- Time.add start cost;
    m.anchor_time <- Time.add m.anchor_time cost;
    m.flushes <- m.flushes + 1;
    m.records_flushed <- m.records_flushed + n;
    Trace.instant m.engine ~cat:"vtpm"
      ~args:(fun () ->
        [
          ("records", Trace.Int n);
          ("cost_ns", Trace.Int (Time.to_ns cost));
          ("ok", Trace.Bool ok);
        ])
      "anchor-flush";
    Trace.count m.engine "vtpm.anchor_flushes" 1;
    Trace.count m.engine "vtpm.batch_records" n
  end

let note_change inst tag =
  let m = inst.mux in
  inst.digest <- Sha1.digest (inst.digest ^ tag);
  m.pending <- (inst.idx, record_bytes inst) :: m.pending;
  m.pending_count <- m.pending_count + 1;
  if m.pending_count >= m.batch then flush m

let sync m =
  flush m;
  Engine.elapse_to m.engine m.busy_until

(* --- Virtual commands --- *)

let measurement_of msg =
  if String.length msg = Pcr.digest_size then msg else Sha1.digest msg

let extend inst i msg =
  if inst.broken then Error (quarantined inst)
  else if i < 0 || i >= Pcr.count then Error "vPCR index out of range"
  else begin
    let m = inst.mux in
    traced m "extend" @@ fun () ->
    charge m software_profile.Timing.pcr_extend;
    let v = Pcr.extend inst.pcrs i msg in
    ignore
      (Event_log.record_measurement inst.log ~pcr_index:i
         ~description:"vtpm extend" ~measurement:(measurement_of msg));
    m.extends <- m.extends + 1;
    note_change inst (Printf.sprintf "extend:%d:%s" i v);
    Ok v
  end

let launch_measured inst ~pcr ~measurement =
  if not inst.broken then begin
    let m = inst.mux in
    traced m "launch-measured" @@ fun () ->
    charge m software_profile.Timing.pcr_extend;
    Pcr.dynamic_reset inst.pcrs;
    let v = Pcr.extend inst.pcrs pcr measurement in
    ignore
      (Event_log.record_measurement inst.log ~pcr_index:pcr
         ~description:"vtpm late launch"
         ~measurement:(measurement_of measurement));
    note_change inst (Printf.sprintf "launch:%d:%s" pcr v)
  end

let blob_magic = "VSEALv1"

let seal inst ?binding ~pcr_policy payload =
  if inst.broken then Error (quarantined inst)
  else begin
    let m = inst.mux in
    traced m "seal" @@ fun () ->
    charge m
      (Timing.seal_time software_profile
         ~payload_bytes:(String.length payload));
    let enc = Wire.encoder () in
    Wire.add_string enc blob_magic;
    Wire.add_list enc
      (fun (i, v) ->
        Wire.add_int enc i;
        Wire.add_string enc v)
      pcr_policy;
    Wire.add_string enc (match binding with None -> "" | Some b -> b);
    Wire.add_string enc payload;
    let plaintext = Wire.contents enc in
    let sym_key = Drbg.generate_string inst.drbg Aead.key_size in
    let nonce = Drbg.generate_string inst.drbg Aead.nonce_size in
    let wrapped = Rsa.encrypt inst.key.Rsa.pub inst.drbg sym_key in
    let body = Aead.encrypt ~key:sym_key ~nonce plaintext in
    let out = Wire.encoder () in
    Wire.add_string out wrapped;
    Wire.add_string out nonce;
    Wire.add_string out body;
    m.seals <- m.seals + 1;
    Ok (Wire.contents out)
  end

let unseal inst ?binding blob =
  if inst.broken then Error (quarantined inst)
  else begin
    let m = inst.mux in
    traced m "unseal" @@ fun () ->
    charge m
      (Timing.unseal_time software_profile
         ~payload_bytes:(String.length blob));
    let d = Wire.decoder blob in
    match (Wire.read_string d, Wire.read_string d, Wire.read_string d) with
    | Some wrapped, Some nonce, Some body -> (
        match Rsa.decrypt inst.key wrapped with
        | None -> Error "not sealed by this vTPM"
        | Some sym_key when String.length sym_key <> Aead.key_size ->
            Error "corrupted blob"
        | Some sym_key -> (
            match Aead.decrypt ~key:sym_key ~nonce body with
            | None -> Error "blob integrity check failed"
            | Some plaintext -> (
                let d = Wire.decoder plaintext in
                match Wire.read_string d with
                | Some magic when magic = blob_magic -> (
                    let policy =
                      Wire.read_list d (fun () ->
                          match (Wire.read_int d, Wire.read_string d) with
                          | Some i, Some v -> Some (i, v)
                          | _ -> None)
                    in
                    match
                      (policy, Wire.read_string d, Wire.read_string d)
                    with
                    | Some policy, Some bound, Some payload ->
                        let pcr_ok =
                          List.for_all
                            (fun (i, v) ->
                              i >= 0 && i < Pcr.count
                              && Pcr.read inst.pcrs i = v)
                            policy
                        in
                        let binding_ok =
                          bound
                          = (match binding with None -> "" | Some b -> b)
                        in
                        if not pcr_ok then Error "vPCR policy mismatch"
                        else if not binding_ok then
                          Error "binding mismatch"
                        else begin
                          m.unseals <- m.unseals + 1;
                          Ok payload
                        end
                    | _ -> Error "corrupted blob"
                  )
                | _ -> Error "corrupted blob")))
    | _ -> Error "corrupted blob"
  end

let get_random inst n =
  if n <= 0 then ""
  else begin
    let m = inst.mux in
    traced m "get-random" @@ fun () ->
    charge m (Timing.get_random_time software_profile ~bytes:n);
    Drbg.generate_string inst.drbg n
  end

(* --- Quarantine and repair --- *)

let checkpoint inst =
  let m = inst.mux in
  traced m "checkpoint" @@ fun () ->
  let payload = Printf.sprintf "vtpm-state:%d:%s" inst.idx inst.digest in
  match
    Retry.run ?policy:m.retry ~engine:m.engine (fun () ->
        Tpm.seal m.tpm ~caller:Tpm.Software ~pcr_policy:[] payload)
  with
  | Ok blob ->
      inst.saved <- Some blob;
      Ok ()
  | Error e ->
      inst.broken <- true;
      Error ("vTPM checkpoint: " ^ e)

let heal inst =
  let m = inst.mux in
  traced m "heal" @@ fun () ->
  Pcr.reboot inst.pcrs;
  inst.broken <- false;
  note_change inst "heal";
  match checkpoint inst with
  | Error e -> Error e  (* checkpoint re-quarantined it *)
  | Ok () ->
      m.resets <- m.resets + 1;
      Trace.instant m.engine ~cat:"vtpm"
        ~args:(fun () -> [ ("vtpm", Trace.Int inst.idx) ])
        "heal";
      Ok ()

(* --- Attestation --- *)

type quote = {
  vtpm : int;
  selection : (int * string) list;
  state_digest : string;
  anchor_pcr : int;
  anchor : Tpm.quote;
  nonce : string;
  signature : string;
}

let vquote_message ~vtpm ~selection ~digest ~anchor_pcr ~anchor_value ~nonce =
  let enc = Wire.encoder () in
  Wire.add_string enc "VTPM_QUOTE";
  Wire.add_int enc vtpm;
  Wire.add_string enc (Pcr.composite_of_values selection);
  Wire.add_string enc digest;
  Wire.add_int enc anchor_pcr;
  Wire.add_string enc anchor_value;
  Wire.add_string enc nonce;
  Wire.contents enc

let quote inst ~selection ~nonce =
  if inst.broken then Error (quarantined inst)
  else begin
    let m = inst.mux in
    (* Join the pipeline: the anchor quote must cover every state change
       so far, and the device must be free to serve it. *)
    sync m;
    match
      Retry.run ?policy:m.retry ~engine:m.engine (fun () ->
          Tpm.quote m.tpm ~caller:Tpm.Software ~selection:[ m.anchor_pcr ]
            ~nonce ())
    with
    | Error e -> Error ("anchor quote: " ^ e)
    | Ok anchor ->
        traced m "quote" @@ fun () ->
        charge m software_profile.Timing.quote;
        let vals = List.map (fun i -> (i, Pcr.read inst.pcrs i)) selection in
        let anchor_val =
          match List.assoc_opt m.anchor_pcr anchor.Tpm.selection with
          | Some v -> v
          | None -> ""
        in
        let msg =
          vquote_message ~vtpm:inst.idx ~selection:vals ~digest:inst.digest
            ~anchor_pcr:m.anchor_pcr ~anchor_value:anchor_val ~nonce
        in
        m.quotes <- m.quotes + 1;
        Ok
          {
            vtpm = inst.idx;
            selection = vals;
            state_digest = inst.digest;
            anchor_pcr = m.anchor_pcr;
            anchor;
            nonce;
            signature = Rsa.sign inst.key msg;
          }
  end

let verify_quote ~aik ~key q =
  Tpm.verify_quote ~aik q.anchor
  && q.anchor.Tpm.nonce = q.nonce
  &&
  match List.assoc_opt q.anchor_pcr q.anchor.Tpm.selection with
  | None -> false
  | Some anchor_val ->
      let msg =
        vquote_message ~vtpm:q.vtpm ~selection:q.selection
          ~digest:q.state_digest ~anchor_pcr:q.anchor_pcr
          ~anchor_value:anchor_val ~nonce:q.nonce
      in
      Rsa.verify key ~msg ~signature:q.signature

(* --- The session capability --- *)

let cap m ~tenant =
  let inst = for_tenant m ~tenant in
  let binding_of ~caller sepcr extra =
    let joined sepcr_binding =
      match (sepcr_binding, extra) with
      | None, None -> None
      | Some b, None | None, Some b -> Some b
      | Some a, Some b -> Some (a ^ "+" ^ b)
    in
    match sepcr with
    | None -> Ok (joined None)
    | Some h -> (
        match Tpm.sepcr_read m.tpm ~caller h with
        | Ok v -> Ok (joined (Some ("sepcr:" ^ v)))
        | Error e -> Error e)
  in
  {
    Cap.name = Printf.sprintf "vtpm:%d@%s" inst.idx (Tpm.tag m.tpm);
    seal =
      (fun ~caller ?sepcr ?binding:extra ~pcr_policy payload ->
        match binding_of ~caller sepcr extra with
        | Error e -> Error e
        | Ok binding -> seal inst ?binding ~pcr_policy payload);
    unseal =
      (fun ~caller ?sepcr ?binding:extra blob ->
        match binding_of ~caller sepcr extra with
        | Error e -> Error e
        | Ok binding -> unseal inst ?binding blob);
    get_random = (fun n -> get_random inst n);
    pcr_extend =
      (fun i msg ->
        match extend inst i msg with
        | Ok v -> v
        | Error _ -> Pcr.read inst.pcrs i
        (* broken: leave the bank untouched; the session fails at its
           next seal/unseal against the quarantine error instead *));
    sepcr_extend = (fun ~caller h msg -> Tpm.sepcr_extend m.tpm ~caller h msg);
    launch_measured =
      (fun ~pcr ~measurement -> launch_measured inst ~pcr ~measurement);
  }

(* --- Provisioning --- *)

let create ?(anchor_pcr = 23) ?(batch = 16) ?(key_bits = 512) ?retry ~tpm
    ~instances () =
  if instances < 1 then Error "vtpm: instances must be positive"
  else if batch < 1 then Error "vtpm: batch must be positive"
  else if anchor_pcr < 0 || anchor_pcr >= Pcr.count then
    Error "vtpm: anchor PCR out of range"
  else begin
    let m =
      {
        tpm;
        engine = Tpm.engine tpm;
        anchor_pcr;
        batch;
        retry;
        insts = [||];
        pending = [];
        pending_count = 0;
        anchor_value = "";
        busy_until = Time.zero;
        anchor_time = Time.zero;
        flushes = 0;
        records_flushed = 0;
        anchor_retries = 0;
        seals = 0;
        unseals = 0;
        extends = 0;
        quotes = 0;
        resets = 0;
      }
    in
    m.insts <-
      Array.init instances (fun i ->
          {
            idx = i;
            mux = m;
            pcrs = Pcr.create ();
            log = Event_log.create ();
            key = Keyvault.get ~label:("vtpm:" ^ string_of_int i) ~bits:key_bits;
            drbg =
              Drbg.create
                ~seed:(Printf.sprintf "vtpm-drbg:%s:%d" (Tpm.tag tpm) i);
            digest = Sha1.digest (Printf.sprintf "vtpm-genesis:%d" i);
            saved = None;
            broken = false;
          });
    let failure = ref None in
    Array.iter
      (fun inst ->
        note_change inst "provision";
        match checkpoint inst with
        | Ok () -> ()
        | Error e -> if !failure = None then failure := Some e)
      m.insts;
    sync m;
    match !failure with
    | Some e -> Error ("vtpm provision: " ^ e)
    | None -> Ok m
  end
