(** Virtual TPM multiplexing for massive tenant density.

    One hardware TPM serves one command at a time at millisecond-class
    latencies (Figure 3), which caps how many mutually distrusting
    tenants a single machine can attest. A {!t} multiplexes [instances]
    {e virtual} TPMs over one hardware part: each vTPM owns a full
    virtual PCR bank, an event log, a sealing/quoting RSA key and a
    private DRBG, and executes seal/unseal/extend/random at software
    (CPU) speed. Hardware is reserved for what software cannot provide —
    the integrity anchor:

    - every vTPM state change (virtual PCR extend, launch-measured
      reset, heal) appends a record [(index, state digest)] to a pending
      batch; batches are folded to one digest and extended into a
      dedicated hardware {e anchor PCR}, so the hardware PCR value
      commits to the exact sequence of every tenant's vTPM states;
    - a vTPM quote carries a fresh {e hardware} anchor quote (signed by
      the AIK over the anchor PCR and the verifier's nonce) alongside
      the software signature over the virtual PCR composite, the vTPM
      state digest and the anchor value — tampering with either layer
      breaks verification ({!verify_quote});
    - each vTPM's state digest is checkpointed into a hardware sealed
      blob at provisioning and after every {!heal}, so a vTPM can be
      quarantined and re-provisioned without trusting software claims
      about its last good state.

    {2 The batched anchor pipeline}

    Anchor extends do not sit on the request path. They are committed to
    PCR state immediately ({!Sea_tpm.Tpm.pcr_extend_deferred}) but their
    hardware cost — one coalesced LPC burst for the whole batch
    ({!Sea_bus.Lpc.batch_transfer_time}, paying per byte actually moved
    rather than per command framing) plus one PCR-extend latency — is
    accounted on the device's own background timeline ([anchor_lag]).
    Foreground commands never wait for it and never observe it; only
    {!sync} (and hence {!quote}) joins the pipeline, elapsing the engine
    to the anchor timeline before taking the on-clock hardware quote.
    Consequently serve reports are byte-identical for any [batch] size:
    batching changes how far the anchor lags, not what tenants see.

    Background work is also stream-isolated: deferred extends charge the
    unjittered profile mean and fault-free runs draw nothing, so the
    hardware TPM's jitter and fault streams advance exactly as they
    would without a vTPM layer in front. *)

type t
(** The multiplexer: [instances] virtual TPMs anchored in one hardware
    TPM. *)

type instance
(** A handle to one virtual TPM. *)

val software_profile : Sea_tpm.Timing.profile
(** Latency means for vTPM commands executed by the CPU (µs-class SHA-1
    / AEAD / DRBG work, against the TPM's ms-class hardware commands).
    Charged as means — no jitter draw, see the stream-isolation note
    above. *)

val create :
  ?anchor_pcr:int ->
  ?batch:int ->
  ?key_bits:int ->
  ?retry:Sea_fault.Retry.policy ->
  tpm:Sea_tpm.Tpm.t ->
  instances:int ->
  unit ->
  (t, string) result
(** [create ~tpm ~instances ()] provisions [instances] virtual TPMs:
    each gets a fresh virtual PCR bank, an event log, a deterministic
    RSA key (Keyvault label ["vtpm:<index>"], sized by [key_bits],
    default 512 — software keys, not the hardware SRK/AIK) and a DRBG
    seeded from the hardware TPM's {!Sea_tpm.Tpm.tag}, then checkpoints
    its genesis state into a hardware sealed blob and pushes the
    provisioning records through one anchor flush ({!sync}), so the
    anchor PCR commits to the initial population before any command
    runs.

    [anchor_pcr] (default 23, a dynamic PCR no session identity uses)
    is the hardware PCR the anchor chain lives in. [batch] (default 16)
    is how many pending records trigger a background flush. [retry]
    wraps the on-clock hardware legs (checkpoints, anchor quotes) and
    bounds the background extend's internal attempts; without it those
    legs run once.

    Errors (rather than raising) on [instances < 1], [batch < 1], or an
    out-of-range [anchor_pcr]. *)

val instances : t -> int
val anchor_pcr : t -> int

val instance : t -> int -> instance
(** Raises [Invalid_argument] on an out-of-range index. *)

val for_tenant : t -> tenant:int -> instance
(** Tenant-to-vTPM routing: [tenant mod instances t]. Stable under
    sharding — it depends only on the tenant id. *)

val index : instance -> int

(** {1 Virtual TPM commands}

    All software-speed: they advance the engine by the (unjittered)
    {!software_profile} mean and never touch the LPC bus. State-changing
    commands additionally enqueue an anchor record. A broken (see
    {!broken}) instance refuses seal/unseal/extend/quote with a
    permanent error until {!heal}ed. *)

val extend : instance -> int -> string -> (string, string) result
(** Extend virtual PCR [i]; returns the new value and enqueues an anchor
    record. Also appended to the instance's event log. *)

val launch_measured : instance -> pcr:int -> measurement:string -> unit
(** Mirror a hardware late launch into the virtual bank: dynamic-reset
    the virtual PCRs and extend [measurement] into virtual [pcr], so
    identity-bound seal policies hold against the virtual bank exactly
    as they would against hardware. One anchor record for the pair.
    No-op on a broken instance (the session will fail at its first
    seal/unseal instead). *)

val seal :
  instance ->
  ?binding:string ->
  pcr_policy:(int * string) list ->
  string ->
  (string, string) result
(** Software seal under this vTPM's key: the blob binds [pcr_policy]
    (checked against the {e virtual} bank at unseal) and the opaque
    [binding] string (checked for equality at unseal — the capability
    layer stores the current hardware sePCR value here, so proposed-mode
    blobs stay bound to the PAL's hardware measurement chain). Not a
    state change: sealing does not touch the anchor. *)

val unseal :
  instance -> ?binding:string -> string -> (string, string) result

val get_random : instance -> int -> string
(** Per-instance DRBG output; never fails (a broken vTPM can still
    source entropy) and never touches the anchor. *)

val pcr_value : instance -> int -> string
val state_digest : instance -> string
(** The rolling digest chaining every state change of this instance;
    what anchor records and checkpoints commit to. *)

val event_log : instance -> Sea_tpm.Event_log.t
val key_public : instance -> Sea_crypto.Rsa.public

(** {1 Quarantine and repair} *)

val broken : instance -> bool
(** Set when a hardware anchor leg gave up: a background anchor extend
    exhausted its retries (every instance with a record in the failed
    batch is quarantined) or a checkpoint seal failed permanently. Only
    the affected instance is quarantined — its neighbours keep
    serving. *)

val heal : instance -> (unit, string) result
(** Re-provision a broken instance on-clock: reset its virtual bank,
    restart its state chain from a healed genesis, checkpoint the new
    state into a hardware sealed blob (retried per the [create] policy)
    and enqueue the anchor record. Fails — and leaves the instance
    broken — if the checkpoint seal still fails. Counts one reset. *)

val checkpoint : instance -> (unit, string) result
(** Seal the instance's current state digest into a hardware blob
    (on-clock, fault-injectable, retried). Called by [create] and
    {!heal}; exposed for tests. *)

(** {1 Anchoring and attestation} *)

val sync : t -> unit
(** Flush pending anchor records and elapse the engine to the anchor
    timeline: after [sync] the hardware anchor PCR value covers every
    state change so far and the device is idle. *)

val anchor_value : t -> string
(** The hardware anchor PCR value as of the last flush (equal to the
    live hardware PCR — flushes commit state eagerly). *)

type quote = {
  vtpm : int;
  selection : (int * string) list;  (** Virtual PCR index, value. *)
  state_digest : string;
  anchor_pcr : int;
  anchor : Sea_tpm.Tpm.quote;  (** Hardware AIK quote over the anchor PCR. *)
  nonce : string;
  signature : string;  (** This vTPM's key over the virtual composite,
                           state digest, anchor value and nonce. *)
}

val quote :
  instance -> selection:int list -> nonce:string -> (quote, string) result
(** {!sync}, take a fresh on-clock hardware anchor quote (AIK-signed,
    fault-injectable, retried), then sign the virtual composite together
    with the state digest and the quoted anchor value. *)

val verify_quote :
  aik:Sea_crypto.Rsa.public ->
  key:Sea_crypto.Rsa.public ->
  quote ->
  bool
(** Verifier side: the hardware anchor quote must verify under [aik],
    cover the anchor PCR with the value the software signature commits
    to, and carry the same nonce; the software signature must verify
    under [key]. Tampering with either layer — including swapping in a
    different anchor value — fails. *)

(** {1 The session capability} *)

val cap : t -> tenant:int -> Sea_tpm.Cap.t
(** The {!Sea_tpm.Cap.t} routing a session's TPM operations to
    [for_tenant t ~tenant]: seal/unseal/random/extend go to the virtual
    instance (with the hardware sePCR value folded into the blob binding
    in proposed mode), [launch_measured] mirrors the late launch into
    the virtual bank, and [sepcr_extend] passes through to hardware. *)

(** {1 Counters} *)

type counters = {
  seals : int;
  unseals : int;
  extends : int;
  quotes : int;
  resets : int;  (** Quarantine repairs ({!heal} completions). *)
}

val counters : t -> counters

val flushes : t -> int
(** Anchor batches flushed to hardware. *)

val records_flushed : t -> int

val anchor_retries : t -> int
(** Background anchor-extend attempts burned on injected busy faults. *)

val anchor_time : t -> Sea_sim.Time.t
(** Total background hardware time accrued by anchor flushes (coalesced
    LPC bursts + extend latencies, including failed attempts). *)

val anchor_lag : t -> Sea_sim.Time.t
(** How far the anchor pipeline currently lags the engine clock
    ([zero] when idle — e.g. right after {!sync}). *)
