open Sea_sim
open Sea_serve
module Machine_fault = Sea_fault.Machine_fault

type config = {
  machines : int;
  shards : int;
  policy : Router.policy;
}

let config ?(shards = 1) ?(policy = Router.Round_robin) ~machines () =
  if machines < 1 then invalid_arg "--machines must be positive";
  if shards < 1 then invalid_arg "--shards must be positive";
  if shards > machines then
    invalid_arg "--shards must not exceed --machines (idle shards)";
  { machines; shards; policy }

type churn_config = {
  plan : Machine_fault.spec;
  failover : bool;
  heartbeat : Time.t;
  dead_after : int;
}

let churn ?(failover = true) ?(heartbeat = Time.ms 100.) ?(dead_after = 3)
    plan () =
  if Time.compare heartbeat Time.zero <= 0 then
    invalid_arg "Cluster.churn: heartbeat must be positive";
  if dead_after < 1 then invalid_arg "Cluster.churn: dead_after must be >= 1";
  { plan; failover; heartbeat; dead_after }

(* Force every lazily-built shared value (the per-kind application PALs)
   on the calling domain before any shard domain can race to force it:
   concurrent [Lazy.force] of the same suspension is unsafe under
   OCaml 5. Under cost-aware admission the per-kind certificates are
   forced too, so every image is analyzed here, once, rather than by
   whichever shard domain first prices an arrival (the cache is
   mutex-guarded either way; this keeps the work off the serving
   domains entirely). *)
let prewarm ~serve () =
  List.iter
    (fun k ->
      ignore (Workload.pal k : Sea_core.Pal.t);
      ignore (Workload.resident_pal k : Sea_core.Pal.t);
      ignore (Workload.work k : Time.t);
      match serve.Server.discipline with
      | Admission.Cost _ -> ignore (Workload.static_cost k : int)
      | Admission.Fifo | Admission.Weighted -> ())
    Workload.kinds

(* --- the virtual-time heartbeat failure detector --- *)

(* One outage as the detector sees it. All instants are ticks of the
   heartbeat clock or outage endpoints, clamped to the serving horizon;
   everything below is integer arithmetic on Time.t nanoseconds, so the
   detection schedule is exact and wall-clock-free. *)
type outage_view = {
  ov_machine : int;
  ov_kind : Machine_fault.kind;
  ov_start : Time.t;
  ov_until : Time.t;  (** Actual recovery, clamped to the horizon. *)
  ov_detect : Time.t option;
      (** Instant the detector declares the machine dead (the
          [dead_after]'th consecutive missed heartbeat), when that
          happens before the machine recovers; [None] for blips the
          detector never promotes past suspicion. *)
  ov_heal : Time.t;
      (** First heartbeat tick at or after recovery: the machine is
          routed back from here (meaningful only under [ov_detect]). *)
  ov_misses : int;  (** Heartbeat ticks missed, capped at [dead_after]. *)
}

let view_outages ~churn:c ~duration outages_per_machine =
  let hb = Time.to_ns c.heartbeat in
  let tick_after t = ((Time.to_ns t / hb) + 1) * hb in
  let views = ref [] in
  Array.iteri
    (fun m outages ->
      List.iter
        (fun (o : Machine_fault.outage) ->
          if Time.compare o.start duration < 0 then begin
            let until = Time.min o.until duration in
            let first_miss = tick_after o.start in
            let raw_detect = first_miss + ((c.dead_after - 1) * hb) in
            let detect =
              (* The detector fires only if the machine is still silent
                 at the threshold tick and the run is still going. *)
              if raw_detect < Time.to_ns until && raw_detect < Time.to_ns duration
              then Some (Time.ns raw_detect)
              else None
            in
            let heal =
              Time.min duration
                (Time.ns (((Time.to_ns until + hb - 1) / hb) * hb))
            in
            let misses =
              if first_miss >= Time.to_ns until then 0
              else
                Stdlib.min c.dead_after
                  (((Time.to_ns until - first_miss) / hb) + 1)
            in
            views :=
              { ov_machine = m; ov_kind = o.kind; ov_start = o.start;
                ov_until = until; ov_detect = detect; ov_heal = heal;
                ov_misses = misses }
              :: !views
          end)
        outages)
    outages_per_machine;
  List.rev !views

(* Cut [0, duration) at every instant a machine's availability, the
   router's belief about it, the autoscaler's control loop or a
   workload shape changes. Within one epoch all of them are constant,
   so each machine's serve is again a self-contained, shardable run. *)
let epoch_bounds ?(extra = []) ~duration views =
  let add s t = if Time.compare t Time.zero > 0 && Time.compare t duration < 0 then t :: s else s in
  let instants =
    List.fold_left
      (fun acc v ->
        let acc = add acc v.ov_start in
        let acc = add acc v.ov_until in
        let acc =
          match v.ov_detect with Some d -> add (add acc d) v.ov_heal | None -> acc
        in
        acc)
      [] views
  in
  let instants = List.fold_left add instants extra in
  let sorted = List.sort_uniq Time.compare (Time.zero :: duration :: instants) in
  let rec pair = function
    | a :: (b :: _ as rest) -> (a, b) :: pair rest
    | _ -> []
  in
  pair sorted

(* Epoch cuts a tenant's traffic shape needs: a flash crowd's exact
   step instants, plus a sampling grid for the continuous diurnal curve
   (8 cuts per cycle, never finer than duration/64) so the sinusoid is
   approximated by rate steps instead of collapsing to its value at
   zero. *)
let shape_cuts ~duration tenants =
  List.concat_map
    (fun (t : Workload.tenant) ->
      match t.Workload.shape with
      | Workload.Steady -> []
      | Workload.Flash _ -> Workload.shape_instants t.Workload.shape
      | Workload.Diurnal { period; _ } ->
          let step =
            Stdlib.max (Time.to_ns period / 8) (Time.to_ns duration / 64)
          in
          let step = Stdlib.max 1 step in
          let rec go k acc =
            let inst = k * step in
            if inst >= Time.to_ns duration then acc
            else go (k + 1) (Time.ns inst :: acc)
          in
          go 1 [])
    tenants

let run ?(seed = 1L) ?trace ?churn:churn_cfg ?autoscale:auto_cfg cfg
    ~machine_config ~serve tenants =
  if tenants = [] then invalid_arg "Cluster.run: no tenants";
  if Option.is_some serve.Server.retry then
    Error
      "cluster: leave the serve config's retry policy unset — retry \
       counters are per machine and each machine builds its own"
  else if Option.is_some auto_cfg && cfg.policy <> Router.Hash_tenant then
    Error
      "cluster: --autoscale needs --policy hash — ring resizing is \
       consistent-hash based"
  else if Option.is_some auto_cfg && cfg.machines < 2 then
    Error "cluster: --autoscale needs at least 2 machines"
  else begin
    prewarm ~serve ();
    let n = cfg.machines in
    let assignment =
      Router.assign cfg.policy ~machines:n tenants
    in
    (* Per-machine tenant shares, preserving tenant list order. *)
    let shares = Array.make n [] in
    List.iteri
      (fun ti t -> shares.(assignment.(ti)) <- t :: shares.(assignment.(ti)))
      tenants;
    let shares = Array.map List.rev shares in
    (* Everything seed-derived is carved out up front, in index order,
       so machine [i]'s streams depend only on (master seed, i). *)
    let engine_seeds = Array.map Rng.int64 (Rng.split_n (Rng.create ~seed ()) n) in
    let fault_specs =
      match serve.Server.faults with
      | None -> Array.make n None
      | Some spec ->
          let streams =
            Rng.split_n
              (Rng.create ~seed:(Int64.of_int spec.Sea_fault.Fault.seed) ())
              n
          in
          Array.map
            (fun s ->
              Some { spec with Sea_fault.Fault.seed = Rng.int s 0x3FFFFFFF })
            streams
    in
    (* Machines are built sequentially on this domain, by explicit loop
       ([Array.init] order is unspecified): construction touches
       process-wide state (key vault, TPM instance numbering) and must
       happen in a deterministic order. *)
    let machines = Array.make n None in
    for i = 0 to n - 1 do
      machines.(i) <-
        Some
          (Sea_hw.Machine.create
             ~engine:(Engine.create ~seed:engine_seeds.(i) ())
             machine_config)
    done;
    let machines = Array.map Option.get machines in
    (* Run machine [i]'s serve (with config [cfg_i] and tenant share
       [share]) under its trace sink, storing into [results.(i)]. *)
    let serve_into results i cfg_i share =
      match share with
      | [] -> () (* idle machine: the router sent it no tenants *)
      | share ->
          let go () =
            match Server.run machines.(i) cfg_i share with
            | r -> r
            | exception e ->
                Error ("unexpected exception: " ^ Printexc.to_string e)
          in
          let r =
            match trace with
            | None -> go ()
            | Some sink_for -> Sea_trace.Trace.with_sink (sink_for i) go
          in
          results.(i) <- Some r
    in
    let shard_over results cfgs epoch_shares =
      let shard s =
        (* Machine i runs on shard (i mod shards); within a shard,
           machines run in increasing index order. Each machine is
           self-contained, so the partition affects wall-clock only. *)
        let i = ref s in
        while !i < n do
          serve_into results !i cfgs.(!i) epoch_shares.(!i);
          i := !i + cfg.shards
        done
      in
      if cfg.shards = 1 then shard 0
      else begin
        let domains =
          List.init (cfg.shards - 1) (fun s ->
              Domain.spawn (fun () -> shard (s + 1)))
        in
        shard 0;
        List.iter Domain.join domains
      end
    in
    let shaped =
      List.exists
        (fun (t : Workload.tenant) -> t.Workload.shape <> Workload.Steady)
        tenants
    in
    if churn_cfg = None && auto_cfg = None && not shaped then (
      (* Steady, churn-free, static: one serving window per machine,
         exactly the historical path (and the historical render, byte
         for byte). *)
      let results :
          (Sea_serve.Report.t, string) result option array =
        Array.make n None
      in
      let cfgs =
        Array.map (fun spec -> { serve with Server.faults = spec }) fault_specs
      in
      shard_over results cfgs shares;
      (* Collect in machine order; the first failure wins. *)
      let rec collect i acc =
        if i = n then Ok (List.rev acc)
        else
          match results.(i) with
          | None ->
              collect (i + 1)
                ({ Fleet_report.index = i; tenants = 0; report = None;
                   lost = 0 }
                :: acc)
          | Some (Ok r) ->
              collect (i + 1)
                ({
                   Fleet_report.index = i;
                   tenants = List.length shares.(i);
                   report = Some r;
                   lost = 0;
                 }
                :: acc)
          | Some (Error e) -> Error (Printf.sprintf "machine %d: %s" i e)
      in
      match collect 0 [] with
      | Error e -> Error e
      | Ok rows ->
          Ok (Fleet_report.merge ~policy:(Router.policy_name cfg.policy) rows))
    else
      let failover_on =
        match churn_cfg with Some c -> c.failover | None -> false
      in
      if failover_on && n < 2 then
        Error "cluster: --failover on needs at least 2 machines"
      else begin
        let duration = serve.Server.duration in
        let tenant_arr = Array.of_list tenants in
        let nt = Array.length tenant_arr in
        (* The whole fleet's outage schedule, detection instants and
           epoch cuts are precomputed from the plan's seed, the
           autoscale interval and the workload shapes alone —
           independent of workload execution and of the shard count. *)
        let outages, views =
          match churn_cfg with
          | None -> (Array.make n [], [])
          | Some c ->
              let o = Machine_fault.plans c.plan ~duration ~machines:n in
              (o, view_outages ~churn:c ~duration o)
        in
        let ticks =
          match auto_cfg with
          | None -> []
          | Some a -> Autoscale.tick_instants a ~duration
        in
        let tick_ns = List.map Time.to_ns ticks in
        let epochs =
          epoch_bounds ~extra:(ticks @ shape_cuts ~duration tenants)
            ~duration views
        in
        (* Streams for the churn layer's own draws (durable-blob
           survival) and the shared migration link, carved off the plan
           seed under a distinct label so they perturb neither the
           outage walk nor any engine stream. An autoscale-only run
           still needs the link (sealed-state rebalancing crosses it);
           it is lossless then, seeded off the master seed. *)
        let churn_rng =
          match churn_cfg with
          | Some c ->
              Rng.create
                ~seed:(Int64.add (Int64.of_int c.plan.Machine_fault.seed)
                         0x6368_75726eL)
                ()
          | None -> Rng.create ~seed:(Int64.add seed 0x6175_746fL) ()
        in
        let link =
          let loss =
            match churn_cfg with
            | Some c -> c.plan.Machine_fault.link_loss
            | None -> 0.
          in
          Link.create ~loss (Rng.split churn_rng)
        in
        let epoch_reports = Array.make n [] in
        let lost = Array.make n 0 in
        let base_prev = Array.copy assignment in
        let host_prev = Array.copy assignment in
        let failovers = ref 0 and migrations = ref 0 in
        let cold_restarts = ref 0 and torn = ref 0 in
        let link_retries = ref 0 and recovered = ref 0 in
        (* Autoscaler state: ring weights, offered counts accumulated
           since the last control tick, and the stats counters. All of
           it lives on this domain and changes only at epoch barriers. *)
        let weights = Array.make n Router.virtual_points in
        let offered_since = Array.make n 0 in
        let last_tick = ref Time.zero in
        let as_ticks = ref 0 and as_hot = ref 0 and as_resizes = ref 0 in
        let as_moved = ref 0 and as_warm = ref 0 in
        let as_cold = ref 0 and as_respawns = ref 0 in
        let first_err = ref None in
        let reroute_active at v =
          match v.ov_detect with
          | Some d ->
              Time.compare d at <= 0 && Time.compare at v.ov_heal < 0
          | None -> false
        in
        List.iter
          (fun (a, b) ->
            if !first_err = None then begin
              let down m = Machine_fault.down_at outages.(m) a in
              let dead m =
                failover_on
                && List.exists
                     (fun v -> v.ov_machine = m && reroute_active a v)
                     views
              in
              let alive =
                List.filter (fun m -> not (dead m)) (List.init n Fun.id)
              in
              (* Autoscale control tick: sample each machine's measured
                 load since the last tick, detect hot spots against the
                 fleet mean and resize the ring weights. Runs before
                 placement, so this epoch routes on the new ring. *)
              (match auto_cfg with
              | Some acfg when List.mem (Time.to_ns a) tick_ns ->
                  incr as_ticks;
                  let dt = Time.to_s (Time.sub a !last_tick) in
                  let alive_arr =
                    Array.init n (fun m -> not (dead m) && not (down m))
                  in
                  let loads =
                    Array.init n (fun m ->
                        if dt <= 0. then 0.
                        else float_of_int offered_since.(m) /. dt)
                  in
                  let d = Autoscale.decide acfg ~weights ~alive:alive_arr ~loads in
                  as_hot := !as_hot + List.length d.Autoscale.hot;
                  (* Static = sample and detect only: the observability
                     baseline never touches the ring, so its placement
                     (and its capacity) is exactly the no-controller
                     fleet's. *)
                  if acfg.Autoscale.policy <> Autoscale.Static then begin
                    for m = 0 to n - 1 do
                      if d.Autoscale.weights.(m) <> weights.(m) then
                        incr as_resizes
                    done;
                    Array.blit d.Autoscale.weights 0 weights 0 n
                  end;
                  Array.fill offered_since 0 n 0;
                  last_tick := a
              | _ -> ());
              (* Routing for this epoch. [base] is the autoscaler's
                 weighted-ring placement over all machines (the static
                 assignment without a controller); [host] overlays
                 failover — a detected-dead machine's tenants ride the
                 ring minus the dead nodes; everyone else stays home. *)
              let base =
                match auto_cfg with
                | None -> assignment
                | Some _ ->
                    let ring =
                      Router.make_ring ~weights (List.init n Fun.id)
                    in
                    Array.init nt (fun ti ->
                        Router.lookup ring tenant_arr.(ti))
              in
              let host =
                Array.init nt (fun ti ->
                    let home = base.(ti) in
                    if dead home && alive <> [] then
                      Router.reroute
                        ?weights:
                          (match auto_cfg with
                          | None -> None
                          | Some _ -> Some weights)
                        ~alive tenant_arr.(ti)
                    else home)
              in
              (* Barrier work, main domain, machine-index order:
                 heartbeat suspicion for outages starting here, sealed-
                 state failover for machines declared dead here, then
                 autoscale rebalancing for tenants whose arc moved.
                 Trace events land in the affected machine's own
                 sink. *)
              let under_sink m f =
                match trace with
                | None -> f ()
                | Some sink_for -> Sea_trace.Trace.with_sink (sink_for m) f
              in
              List.iter
                (fun v ->
                  if Time.compare v.ov_start a = 0 then
                    under_sink v.ov_machine (fun () ->
                        let engine =
                          Sea_hw.Machine.engine machines.(v.ov_machine)
                        in
                        for j = 1 to v.ov_misses do
                          Sea_trace.Trace.instant engine ~cat:"churn"
                            ~args:(fun () ->
                              [
                                ("machine",
                                 Sea_trace.Trace.Int v.ov_machine);
                                ("miss", Sea_trace.Trace.Int j);
                                ("outage",
                                 Sea_trace.Trace.Str
                                   (Machine_fault.kind_name v.ov_kind));
                              ])
                            "heartbeat-miss"
                        done))
                views;
              List.iter
                (fun v ->
                  if v.ov_detect = Some a && failover_on then
                    let m = v.ov_machine in
                    for ti = 0 to nt - 1 do
                      if host_prev.(ti) = m && host.(ti) <> m then begin
                        incr failovers;
                        let target = host.(ti) in
                        (* Only proposed-hw residents have sealed
                           sePCR-bound state worth moving over the
                           link. Current hw has no residents; an SFI
                           resident cold-relaunches on the survivor at
                           near-zero cost, so nothing crosses the
                           wire for it either. *)
                        let migrates =
                          match serve.Server.mode with
                          | Server.Proposed -> not (down target)
                          | Server.Current | Server.Sfi -> false
                        in
                        if migrates then
                          List.iter
                            (fun (kind, _w) ->
                              let source_alive =
                                v.ov_kind = Machine_fault.Partition
                              in
                              let blob_available =
                                source_alive
                                || Rng.float churn_rng 1.0 < 0.5
                              in
                              under_sink target (fun () ->
                                  match
                                    Migrate.failover ~source:machines.(m)
                                      ~target:machines.(target) ~link
                                      ~source_alive ~blob_available
                                      ~preemption_timer:
                                        serve.Server.preemption_timer
                                      ~tenant:
                                        tenant_arr.(ti).Workload.name
                                      ~kind_name:(Workload.kind_name kind)
                                      (Workload.resident_pal kind) ()
                                  with
                                  | Ok r ->
                                      (match r.Migrate.outcome with
                                      | Migrate.Warm -> incr migrations
                                      | Migrate.Cold -> incr cold_restarts);
                                      if r.Migrate.torn then incr torn;
                                      link_retries :=
                                        !link_retries
                                        + r.Migrate.link_retries;
                                      Migrate.dispose r
                                  | Error _ -> incr cold_restarts))
                            tenant_arr.(ti).Workload.mix
                      end
                    done)
                views;
              (* Autoscale rebalancing: every tenant whose weighted-ring
                 home moved this tick re-homes its residents, by the
                 paper's sealed-state migration on proposed hardware or
                 by kill-and-respawn spreading where launches are cheap
                 (or state-free). Tenants displaced by a machine death
                 are the failover path's job, not ours. *)
              (match auto_cfg with
              | Some acfg when acfg.Autoscale.policy <> Autoscale.Static ->
                  let action kind =
                    match (acfg.Autoscale.policy, serve.Server.mode) with
                    | Autoscale.Static, _ -> `None
                    | (Autoscale.Migrate | Autoscale.Auto), Server.Proposed
                      ->
                        `Migrate kind
                    | Autoscale.Spread, Server.Proposed ->
                        `Spread (kind, `Slaunch)
                    | ( (Autoscale.Migrate | Autoscale.Auto
                        | Autoscale.Spread),
                        Server.Sfi ) ->
                        `Spread (kind, `Software (Time.us 25.))
                    | ( (Autoscale.Migrate | Autoscale.Auto
                        | Autoscale.Spread),
                        Server.Current ) ->
                        (* No residents on current hardware: the move
                           is pure routing. *)
                        `None
                  in
                  for ti = 0 to nt - 1 do
                    let src = base_prev.(ti) and dst = base.(ti) in
                    if dst <> src then begin
                      incr as_moved;
                      if
                        (not (down src)) && (not (dead src))
                        && (not (down dst))
                        && not (dead dst)
                      then
                        List.iter
                          (fun (kind, _w) ->
                            match action kind with
                            | `None -> ()
                            | `Migrate kind ->
                                under_sink dst (fun () ->
                                    match
                                      Migrate.failover
                                        ~source:machines.(src)
                                        ~target:machines.(dst) ~link
                                        ~source_alive:true
                                        ~blob_available:true
                                        ~preemption_timer:
                                          serve.Server.preemption_timer
                                        ~tenant:
                                          tenant_arr.(ti).Workload.name
                                        ~kind_name:
                                          (Workload.kind_name kind)
                                        (Workload.resident_pal kind) ()
                                    with
                                    | Ok r ->
                                        (match r.Migrate.outcome with
                                        | Migrate.Warm -> incr as_warm
                                        | Migrate.Cold -> incr as_cold);
                                        Migrate.dispose r
                                    | Error _ -> incr as_cold)
                            | `Spread (kind, cost) ->
                                under_sink dst (fun () ->
                                    match
                                      Migrate.respawn
                                        ~target:machines.(dst)
                                        ~preemption_timer:
                                          serve.Server.preemption_timer
                                        ~cost
                                        ~tenant:
                                          tenant_arr.(ti).Workload.name
                                        ~kind_name:
                                          (Workload.kind_name kind)
                                        (Workload.resident_pal kind) ()
                                    with
                                    | Ok () -> incr as_respawns
                                    | Error _ -> ()))
                          tenant_arr.(ti).Workload.mix
                    end
                  done
              | _ -> ());
              (* Shares for this epoch, each tenant's open-loop rate
                 specialized to its shape at the epoch's start; a
                 tenant whose host is down (crashed but not yet
                 detected, or failover off) is black-holed: its offered
                 load is charged to the dead machine as
                 offered-and-failed. *)
              let eff =
                Array.map (fun t -> Workload.at_time a t) tenant_arr
              in
              let epoch_shares = Array.make n [] in
              let epoch_len = Time.sub b a in
              for ti = nt - 1 downto 0 do
                let h = host.(ti) in
                if down h then
                  lost.(h) <-
                    lost.(h)
                    + int_of_float
                        (Float.round
                           (Router.offered_rate eff.(ti)
                           *. Time.to_s epoch_len))
                else epoch_shares.(h) <- eff.(ti) :: epoch_shares.(h)
              done;
              let results = Array.make n None in
              let cfgs =
                Array.map
                  (fun spec ->
                    { serve with Server.faults = spec;
                      duration = epoch_len })
                  fault_specs
              in
              shard_over results cfgs epoch_shares;
              (* Collect this epoch in machine order. *)
              for i = 0 to n - 1 do
                match results.(i) with
                | None -> ()
                | Some (Ok r) ->
                    epoch_reports.(i) <- r :: epoch_reports.(i);
                    offered_since.(i) <-
                      offered_since.(i) + r.Report.aggregate.Report.offered;
                    (* Completions by churn-displaced tenants on this
                       survivor are goodput failover recovered (an
                       autoscale move changes [base] itself, so it does
                       not count). *)
                    for ti = 0 to nt - 1 do
                      if host.(ti) = i && base.(ti) <> i then
                        List.iter
                          (fun (row : Report.row) ->
                            if
                              row.Report.tenant
                              = tenant_arr.(ti).Workload.name
                            then
                              recovered := !recovered + row.Report.completed)
                          r.Report.rows
                    done
                | Some (Error e) ->
                    if !first_err = None then
                      first_err :=
                        Some (Printf.sprintf "machine %d: %s" i e)
              done;
              Array.blit host 0 host_prev 0 nt;
              Array.blit base 0 base_prev 0 nt
            end)
          epochs;
        match !first_err with
        | Some e -> Error e
        | None ->
            let rows =
              List.init n (fun i ->
                  {
                    Fleet_report.index = i;
                    tenants = List.length shares.(i);
                    report =
                      (match List.rev epoch_reports.(i) with
                      | [] -> None
                      | rs -> Some (Report.merge_seq rs));
                    lost = lost.(i);
                  })
            in
            let count kind =
              List.length (List.filter (fun v -> v.ov_kind = kind) views)
            in
            let churn_stats =
              Option.map
                (fun (c : churn_config) ->
                  {
                    Fleet_report.failover = c.failover;
                    crashes = count Machine_fault.Crash;
                    partitions = count Machine_fault.Partition;
                    heartbeat_misses =
                      List.fold_left (fun acc v -> acc + v.ov_misses) 0 views;
                    failovers = !failovers;
                    migrations = !migrations;
                    cold_restarts = !cold_restarts;
                    torn_backouts = !torn;
                    link_drops = Link.drops link;
                    link_retries = !link_retries;
                    lost_requests = Array.fold_left ( + ) 0 lost;
                    recovered = !recovered;
                  })
                churn_cfg
            in
            let autoscale_stats =
              Option.map
                (fun (a : Autoscale.config) ->
                  {
                    Fleet_report.as_policy =
                      Autoscale.policy_name a.Autoscale.policy;
                    interval = a.Autoscale.interval;
                    hot_threshold = a.Autoscale.hot_threshold;
                    ticks = !as_ticks;
                    hot_events = !as_hot;
                    resizes = !as_resizes;
                    tenants_moved = !as_moved;
                    warm_moves = !as_warm;
                    cold_moves = !as_cold;
                    respawns = !as_respawns;
                  })
                auto_cfg
            in
            (try
               Ok
                 (Fleet_report.merge ?churn:churn_stats
                    ?autoscale:autoscale_stats
                    ~policy:(Router.policy_name cfg.policy) rows)
             with Invalid_argument _ ->
               Error
                 "cluster: every machine was down for the whole window — \
                  nothing served (raise --mttf or shorten --mttr)")
      end
  end
