open Sea_sim
open Sea_serve

type config = {
  machines : int;
  shards : int;
  policy : Router.policy;
}

let config ?(shards = 1) ?(policy = Router.Round_robin) ~machines () =
  if machines < 1 then invalid_arg "--machines must be positive";
  if shards < 1 then invalid_arg "--shards must be positive";
  if shards > machines then
    invalid_arg "--shards must not exceed --machines (idle shards)";
  { machines; shards; policy }

(* Force every lazily-built shared value (the per-kind application PALs)
   on the calling domain before any shard domain can race to force it:
   concurrent [Lazy.force] of the same suspension is unsafe under
   OCaml 5. Under cost-aware admission the per-kind certificates are
   forced too, so every image is analyzed here, once, rather than by
   whichever shard domain first prices an arrival (the cache is
   mutex-guarded either way; this keeps the work off the serving
   domains entirely). *)
let prewarm ~serve () =
  List.iter
    (fun k ->
      ignore (Workload.pal k : Sea_core.Pal.t);
      ignore (Workload.work k : Time.t);
      match serve.Server.discipline with
      | Admission.Cost _ -> ignore (Workload.static_cost k : int)
      | Admission.Fifo | Admission.Weighted -> ())
    Workload.kinds

let run ?(seed = 1L) ?trace cfg ~machine_config ~serve tenants =
  if tenants = [] then invalid_arg "Cluster.run: no tenants";
  if Option.is_some serve.Server.retry then
    Error
      "cluster: leave the serve config's retry policy unset — retry \
       counters are per machine and each machine builds its own"
  else begin
    prewarm ~serve ();
    let n = cfg.machines in
    let assignment =
      Router.assign cfg.policy ~machines:n tenants
    in
    (* Per-machine tenant shares, preserving tenant list order. *)
    let shares = Array.make n [] in
    List.iteri
      (fun ti t -> shares.(assignment.(ti)) <- t :: shares.(assignment.(ti)))
      tenants;
    let shares = Array.map List.rev shares in
    (* Everything seed-derived is carved out up front, in index order,
       so machine [i]'s streams depend only on (master seed, i). *)
    let engine_seeds = Array.map Rng.int64 (Rng.split_n (Rng.create ~seed ()) n) in
    let fault_specs =
      match serve.Server.faults with
      | None -> Array.make n None
      | Some spec ->
          let streams =
            Rng.split_n
              (Rng.create ~seed:(Int64.of_int spec.Sea_fault.Fault.seed) ())
              n
          in
          Array.map
            (fun s ->
              Some { spec with Sea_fault.Fault.seed = Rng.int s 0x3FFFFFFF })
            streams
    in
    (* Machines are built sequentially on this domain, by explicit loop
       ([Array.init] order is unspecified): construction touches
       process-wide state (key vault, TPM instance numbering) and must
       happen in a deterministic order. *)
    let machines = Array.make n None in
    for i = 0 to n - 1 do
      machines.(i) <-
        Some
          (Sea_hw.Machine.create
             ~engine:(Engine.create ~seed:engine_seeds.(i) ())
             machine_config)
    done;
    let machines = Array.map Option.get machines in
    let results :
        (Sea_serve.Report.t, string) result option array =
      Array.make n None
    in
    let serve_one i =
      match shares.(i) with
      | [] -> () (* idle machine: the router sent it no tenants *)
      | share ->
          let cfg_i = { serve with Server.faults = fault_specs.(i) } in
          let go () =
            match Server.run machines.(i) cfg_i share with
            | r -> r
            | exception e ->
                Error ("unexpected exception: " ^ Printexc.to_string e)
          in
          let r =
            match trace with
            | None -> go ()
            | Some sink_for -> Sea_trace.Trace.with_sink (sink_for i) go
          in
          results.(i) <- Some r
    in
    let shard s =
      (* Machine i runs on shard (i mod shards); within a shard,
         machines run in increasing index order. Each machine is
         self-contained, so the partition affects wall-clock only. *)
      let i = ref s in
      while !i < n do
        serve_one !i;
        i := !i + cfg.shards
      done
    in
    if cfg.shards = 1 then shard 0
    else begin
      let domains =
        List.init (cfg.shards - 1) (fun s -> Domain.spawn (fun () -> shard (s + 1)))
      in
      shard 0;
      List.iter Domain.join domains
    end;
    (* Collect in machine order; the first failure wins. *)
    let rec collect i acc =
      if i = n then Ok (List.rev acc)
      else
        match results.(i) with
        | None ->
            collect (i + 1)
              ({ Fleet_report.index = i; tenants = 0; report = None } :: acc)
        | Some (Ok r) ->
            collect (i + 1)
              ({
                 Fleet_report.index = i;
                 tenants = List.length shares.(i);
                 report = Some r;
               }
              :: acc)
        | Some (Error e) -> Error (Printf.sprintf "machine %d: %s" i e)
    in
    match collect 0 [] with
    | Error e -> Error e
    | Ok rows ->
        Ok (Fleet_report.merge ~policy:(Router.policy_name cfg.policy) rows)
  end
