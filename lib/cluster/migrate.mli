(** Sealed-state PAL failover between fleet machines — the paper's
    §5.4 sePCR seal/unseal run as a real migration protocol.

    A resident SLAUNCH PAL on a failed machine is moved to a survivor:

    + {b SYIELD} — the source resident parks in [Suspend];
    + {b seal} — its hand-off state is TPM-sealed bound to the sePCR
      measurement chain, then the source resident is SKILLed (from this
      instant the blob {e is} the PAL — exactly-once hinges on the
      seal-then-SKILL ordering);
    + {b transfer} — the blob crosses the lossy {!Link} under bounded
      {!Sea_fault.Retry} backoff;
    + {b unseal + resume} — the survivor SLAUNCHes the same code
      identity (its sePCR then carries the same measurement chain), the
      TPM unseals the blob against it, and the PAL resumes warm.

    A transfer the retries cannot save is {e torn}: the target's
    already-claimed pages and sePCR are backed out exactly like a failed
    first SLAUNCH (PR 3's backout), and the PAL is cold re-launched
    without its state. A crashed source never runs the live protocol —
    failover falls back to the pre-crash durable checkpoint when one
    survived, else a cold re-launch. The invariant either way: the PAL
    ends resident on {e exactly one} machine. *)

type outcome = Warm  (** Sealed state resumed on the survivor. *)
             | Cold  (** Re-launched without state. *)

type result_t = {
  outcome : outcome;
  torn : bool;
      (** A mid-protocol failure forced a target claim backout before
          the cold re-launch. *)
  link_retries : int;  (** Link re-transmissions burned. *)
  target : Sea_core.Slaunch_session.t;
      (** The live resident on the target, suspended; the caller owns
          it ({!dispose} when done). *)
}

val failover :
  source:Sea_hw.Machine.t ->
  target:Sea_hw.Machine.t ->
  link:Link.t ->
  ?source_alive:bool ->
  ?blob_available:bool ->
  ?preemption_timer:Sea_sim.Time.t ->
  tenant:string ->
  kind_name:string ->
  Sea_core.Pal.t ->
  unit ->
  (result_t, string) result
(** Fail one resident over. [source_alive] (default true) selects the
    live protocol — a partitioned machine still seals and ships; false
    models a crash, where [blob_available] decides whether the durable
    pre-crash checkpoint survived. [preemption_timer] (default 10 ms)
    governs the SLAUNCH slices that park residents in [Suspend].
    [Error] only when even the cold re-launch cannot claim the target
    (e.g. no proposed hardware). *)

val dispose : result_t -> unit
(** SKILL and release the target resident. *)

val respawn :
  target:Sea_hw.Machine.t ->
  ?preemption_timer:Sea_sim.Time.t ->
  cost:[ `Slaunch | `Software of Sea_sim.Time.t ] ->
  tenant:string ->
  kind_name:string ->
  Sea_core.Pal.t ->
  unit ->
  (unit, string) result
(** Kill-and-respawn rebalancing (the autoscaler's spread policy): no
    state moves — a fresh resident simply launches on the target.
    [`Slaunch] pays a real cold SLAUNCH of [pal] on the target (pages,
    SECB, sePCR, image hash) and backs the claim out so nothing stays
    resident between epochs; [`Software c] charges the target's clock a
    flat [c] (the ~25 µs SFI launch). [Error] only when the SLAUNCH
    cannot claim the target. *)
