open Sea_sim
open Sea_serve

type machine_row = {
  index : int;
  tenants : int;
  report : Report.t option;
  lost : int;
}

type churn_stats = {
  failover : bool;
  crashes : int;
  partitions : int;
  heartbeat_misses : int;
  failovers : int;
  migrations : int;
  cold_restarts : int;
  torn_backouts : int;
  link_drops : int;
  link_retries : int;
  lost_requests : int;
  recovered : int;
}

type autoscale_stats = {
  as_policy : string;
  interval : Time.t;
  hot_threshold : float;
  ticks : int;
  hot_events : int;
  resizes : int;
  tenants_moved : int;
  warm_moves : int;
  cold_moves : int;
  respawns : int;
}

type t = {
  mode : string;
  hw : string;
  machines : int;
  idle : int;
  policy : string;
  discipline : string;
  depth : int;
  cost_budget : int option;
  cost_shed : int;
  window : Time.t;
  per_machine : machine_row list;
  fleet : Report.row;
  pal_busy : Time.t;
  stalled : Time.t;
  cold_starts : int;
  warm_hits : int;
  evictions : int;
  sepcr_waits : int;
  faults_injected : (string * int) list;
  retries : int;
  retry_give_ups : int;
  breaker_shed : int;
  breaker_transitions : int;
  recoveries : int;
  vtpm : Report.vtpm_stats option;
  churn : churn_stats option;
  autoscale : autoscale_stats option;
}

(* Requests black-holed while a machine was down are real offered load
   that failed: fold a row's [lost] into its accounting so the fleet
   invariant [offered = completed + shed + timed_out + failed] survives
   churn. Lost 0 (every churn-free run) leaves the row untouched. *)
let with_lost (row : Report.row) lost =
  if lost = 0 then row
  else { row with Report.offered = row.Report.offered + lost;
         failed = row.Report.failed + lost }

(* A machine that was down for its whole window has no report but still
   black-holed arrivals: account them through an empty row. *)
let down_row lost =
  {
    Report.tenant = "down";
    weight = 0;
    offered = lost;
    completed = 0;
    shed = 0;
    timed_out = 0;
    failed = lost;
    latency_ms = Stats.create ();
    queue_high_water = 0;
  }

let accounted_row row =
  match row.report with
  | Some r -> Some (with_lost r.Report.aggregate row.lost)
  | None -> if row.lost > 0 then Some (down_row row.lost) else None

let merge ?churn ?autoscale ~policy rows =
  if rows = [] then invalid_arg "Fleet_report.merge: no machines";
  let reports = List.filter_map (fun r -> r.report) rows in
  if reports = [] then invalid_arg "Fleet_report.merge: every machine is idle";
  let first = List.hd reports in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let sum_time f =
    List.fold_left (fun acc r -> Time.add acc (f r)) Time.zero reports
  in
  {
    mode = first.Report.mode;
    hw = first.Report.machine;
    machines = List.length rows;
    idle =
      List.length
        (List.filter (fun r -> r.report = None && r.lost = 0) rows);
    policy;
    discipline = first.Report.discipline;
    depth = first.Report.depth;
    cost_budget = first.Report.cost_budget;
    cost_shed = sum (fun r -> r.Report.cost_shed);
    window =
      List.fold_left
        (fun acc r -> Time.max acc r.Report.window)
        Time.zero reports;
    per_machine = rows;
    fleet =
      Report.merge_rows ~tenant:"fleet" (List.filter_map accounted_row rows);
    pal_busy = sum_time (fun r -> r.Report.pal_busy);
    stalled = sum_time (fun r -> r.Report.stalled);
    cold_starts = sum (fun r -> r.Report.cold_starts);
    warm_hits = sum (fun r -> r.Report.warm_hits);
    evictions = sum (fun r -> r.Report.evictions);
    sepcr_waits = sum (fun r -> r.Report.sepcr_waits);
    faults_injected =
      Report.merge_fault_counts
        (List.map (fun r -> r.Report.faults_injected) reports);
    retries = sum (fun r -> r.Report.retries);
    retry_give_ups = sum (fun r -> r.Report.retry_give_ups);
    breaker_shed = sum (fun r -> r.Report.breaker_shed);
    breaker_transitions = sum (fun r -> r.Report.breaker_transitions);
    recoveries = sum (fun r -> r.Report.recoveries);
    vtpm =
      (* Counters sum across machines; [instances] too — the fleet line
         reports the total vTPM population, each machine contributing
         its own multiplexer. *)
      (match List.filter_map (fun r -> r.Report.vtpm) reports with
      | [] -> None
      | stats ->
          let sumv f = List.fold_left (fun acc v -> acc + f v) 0 stats in
          Some
            {
              Report.instances = sumv (fun v -> v.Report.instances);
              extends = sumv (fun v -> v.Report.extends);
              seals = sumv (fun v -> v.Report.seals);
              unseals = sumv (fun v -> v.Report.unseals);
              resets = sumv (fun v -> v.Report.resets);
            });
    churn;
    autoscale;
  }

let window_s t = Time.to_ms t.window /. 1000.

let goodput_per_s t =
  let s = window_s t in
  if s <= 0. then 0. else float_of_int t.fleet.Report.completed /. s

let machine_goodput_per_s row =
  match row.report with
  | None -> 0.
  | Some r -> Report.goodput_per_s r r.Report.aggregate

let recovered_goodput_per_s t =
  match t.churn with
  | None -> 0.
  | Some c ->
      let s = window_s t in
      if s <= 0. then 0. else float_of_int c.recovered /. s

let robustness_active t =
  t.retries > 0 || t.retry_give_ups > 0 || t.breaker_shed > 0
  || t.breaker_transitions > 0 || t.recoveries > 0
  || List.exists (fun (_, c) -> c > 0) t.faults_injected

let pp_counts fmt ((row : Report.row), goodput) =
  Format.fprintf fmt "%7d %7d %6d %8d %5d %9.2f  %a" row.Report.offered
    row.Report.completed row.Report.shed row.Report.timed_out row.Report.failed
    goodput Stats.pp_percentiles row.Report.latency_ms

let pp fmt t =
  Format.fprintf fmt
    "@[<v>cluster: %s on %s  machines %d (%d idle)  policy %s  queue %s \
     depth %d  window %a@,"
    t.mode t.hw t.machines t.idle t.policy t.discipline t.depth Time.pp
    t.window;
  Format.fprintf fmt "%-8s %7s %7s %7s %6s %8s %5s %9s  %-24s@," "machine"
    "tenants" "offered" "served" "shed" "timedout" "fail" "goodput/s"
    "latency (ms)";
  List.iter
    (fun row ->
      match row.report with
      | None when row.lost = 0 ->
          Format.fprintf fmt "m%-7d %7s %s@," row.index "0" "idle"
      | None ->
          (* Down for its whole window: black-holed arrivals, an empty
             completion window, and an explicit n/a latency. *)
          Format.fprintf fmt
            "m%-7d %7d %7d %7d %6d %8d %5d %9.2f  %-24s@," row.index
            row.tenants row.lost 0 0 0 row.lost 0.0 "p50/p95/p99 n/a (down)"
      | Some r ->
          Format.fprintf fmt "m%-7d %7d %a@," row.index row.tenants pp_counts
            (with_lost r.Report.aggregate row.lost, machine_goodput_per_s row))
    t.per_machine;
  let total_tenants =
    List.fold_left (fun acc r -> acc + r.tenants) 0 t.per_machine
  in
  Format.fprintf fmt "%-8s %7d %a@," "fleet" total_tenants pp_counts
    (t.fleet, goodput_per_s t);
  Format.fprintf fmt "PAL cores busy %a  platform stalled %a@," Time.pp
    t.pal_busy Time.pp t.stalled;
  Format.fprintf fmt
    "PAL launches: %d cold, %d warm  evictions %d  sePCR waits %d"
    t.cold_starts t.warm_hits t.evictions t.sepcr_waits;
  (* Like the per-machine report, the vtpm line renders only when a
     multiplexer served the fleet, and carries only batch-size-invariant
     counters. *)
  (match t.vtpm with
  | Some v ->
      Format.fprintf fmt
        "@,vtpm: %d instances  extends %d  seals %d  unseals %d  resets %d"
        v.Report.instances v.Report.extends v.Report.seals v.Report.unseals
        v.Report.resets
  | None -> ());
  (* Like the per-machine report, the cost line renders only when the
     cost discipline was active. *)
  (match t.cost_budget with
  | Some b ->
      Format.fprintf fmt "@,cost admission: budget %d us/tenant  cost shed %d"
        b t.cost_shed
  | None -> ());
  (* The churn lines render only when a machine-fault plan drove the
     run, so churn-free fleet reports are byte-identical to the
     pre-churn layout. *)
  (match t.churn with
  | None -> ()
  | Some c ->
      Format.fprintf fmt
        "@,churn: crashes %d  partitions %d  heartbeat misses %d  lost \
         requests %d"
        c.crashes c.partitions c.heartbeat_misses c.lost_requests;
      Format.fprintf fmt
        "@,failover: %s  tenants moved %d  migrations %d warm / %d cold (%d \
         torn)  link drops %d (retries %d)"
        (if c.failover then "on" else "off")
        c.failovers c.migrations c.cold_restarts c.torn_backouts c.link_drops
        c.link_retries;
      if c.failover then
        Format.fprintf fmt "@,recovered goodput: %.2f req/s on survivors"
          (recovered_goodput_per_s t));
  (* The autoscale lines render only when a controller drove the run,
     so every non-autoscaled fleet report keeps its historical bytes. *)
  (match t.autoscale with
  | None -> ()
  | Some a ->
      Format.fprintf fmt
        "@,autoscale: policy %s  interval %a  hot %.2fx  ticks %d  hot \
         events %d  resizes %d"
        a.as_policy Time.pp a.interval a.hot_threshold a.ticks a.hot_events
        a.resizes;
      Format.fprintf fmt
        "@,rebalance: tenants moved %d  migrations %d warm / %d cold  \
         respawns %d"
        a.tenants_moved a.warm_moves a.cold_moves a.respawns);
  if robustness_active t then begin
    let injected = List.filter (fun (_, c) -> c > 0) t.faults_injected in
    Format.fprintf fmt "@,faults injected: %s"
      (if injected = [] then "none"
       else
         String.concat ", "
           (List.map (fun (k, c) -> Printf.sprintf "%s %d" k c) injected));
    Format.fprintf fmt
      "@,retries %d (gave up %d)  breaker shed %d  breaker transitions %d  \
       recoveries %d"
      t.retries t.retry_give_ups t.breaker_shed t.breaker_transitions
      t.recoveries
  end;
  Format.fprintf fmt "@]"

let render t = Format.asprintf "%a" pp t
