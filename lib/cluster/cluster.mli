(** Fleet simulation: N independent machines, each running the
    {!Sea_serve.Server} virtual-time loop, sharded across OCaml 5
    [Domain]s.

    This is the paper's endgame question made measurable: if minimal-TCB
    execution is to be an everyday OS service, the unit of capacity
    planning is a {e fleet} — how many machines does a tenant population
    need on today's hardware versus the proposed hardware? A cluster run
    routes tenants to machines with a pluggable {!Router.policy}, serves
    every machine's share independently, and merges the per-machine
    reports into one {!Fleet_report.t}.

    {2 Determinism}

    Machine [i]'s entire schedule is a function of the master seed and
    [i] alone: per-machine engine seeds are carved off the master stream
    with {!Sea_sim.Rng.split_n} {e before} any machine runs, per-machine
    fault seeds likewise off the fault spec's own seed, and machines
    share no mutable state (each has its own engine, TPM, memory and
    tenant streams). Shards therefore only decide {e where} a machine's
    loop executes, never {e what} it computes: the merged report is
    byte-identical whether the fleet runs on 1 domain or 8 — asserted in
    CI by diffing [--shards 1] against [--shards 4] output — while
    wall-clock time scales down with the shard count.

    All machines are constructed on the calling domain, in index order,
    before any shard starts serving; shard domains only execute
    already-built machines. Per-machine traces are supported by handing
    each machine its own sink ({!Sea_trace.Trace} installation is
    domain-local).

    {2 Churn}

    With a {!churn_config}, the run injects machine-scoped failures from
    a deterministic {!Sea_fault.Machine_fault} plan and detects them
    with a virtual-time heartbeat detector: a machine that misses
    [dead_after] consecutive heartbeats is declared dead, its queue is
    drained, and its tenants re-route over the consistent-hash ring
    minus the dead node ({!Router.reroute}). In proposed mode each
    displaced tenant's resident PALs fail over by sealed-state migration
    ({!Migrate.failover}); requests offered to a machine that is down
    but not yet (or never, with failover off) detected are black-holed
    and accounted offered-and-failed.

    The serving window is cut into epochs at the instants machine
    availability or routing belief changes; within an epoch every
    machine's serve is self-contained, so the epochs shard across
    domains exactly like a churn-free run and the merged report stays
    byte-identical across shard counts. All cross-machine work
    (detection, migration) happens between epochs on the calling domain
    in machine-index order. A run without [?churn] takes the historical
    code path unchanged. *)

type config = {
  machines : int;
  shards : int;
  policy : Router.policy;
}

val config : ?shards:int -> ?policy:Router.policy -> machines:int -> unit -> config
(** Defaults: 1 shard, round-robin routing. Raises [Invalid_argument]
    unless [machines >= 1], [shards >= 1] and [shards <= machines] —
    messages name the CLI flags, and [sea_cli cluster] turns them into a
    usage error (exit 1). *)

type churn_config = {
  plan : Sea_fault.Machine_fault.spec;
      (** Machine crash/partition/link-loss schedule. *)
  failover : bool;
      (** [true]: detect, re-route and migrate; [false]: machines fail
          in place and their traffic black-holes for the outage. *)
  heartbeat : Sea_sim.Time.t;  (** Heartbeat tick interval. *)
  dead_after : int;
      (** Consecutive missed heartbeats before a machine is declared
          dead. Detection latency is
          [heartbeat * dead_after] (to the next tick). *)
}

val churn :
  ?failover:bool ->
  ?heartbeat:Sea_sim.Time.t ->
  ?dead_after:int ->
  Sea_fault.Machine_fault.spec ->
  unit ->
  churn_config
(** Defaults: failover on, 100 ms heartbeat, dead after 3 misses.
    Raises [Invalid_argument] unless [heartbeat > 0] and
    [dead_after >= 1]. *)

val run :
  ?seed:int64 ->
  ?trace:(int -> Sea_trace.Trace.sink) ->
  ?churn:churn_config ->
  ?autoscale:Autoscale.config ->
  config ->
  machine_config:Sea_hw.Machine.config ->
  serve:Sea_serve.Server.config ->
  Sea_serve.Workload.tenant list ->
  (Fleet_report.t, string) result
(** Route the tenants, build machine [0..machines-1] (each with an
    engine seeded from the master [seed]'s split streams), serve every
    machine's share — distributing machines round-robin over [shards]
    domains — and merge.

    [serve] is the per-machine serving configuration. Its [faults] spec,
    if any, is re-seeded per machine from the spec's own seed so fault
    schedules are machine-independent; its [retry] policy must be unset
    ([Error] otherwise — a retry policy carries mutable counters that
    must not be shared across machines; each machine builds its own).

    [trace], when given, supplies machine [i]'s private sink; the sink
    is installed around that machine's serve only (in whichever domain
    runs it) and can be exported after [run] returns.

    [churn], when given, drives the failure-domain machinery described
    above; [Error] if failover is on with fewer than 2 machines, or if
    the plan downs every machine for the entire window.

    [autoscale], when given, runs the {!Autoscale} closed-loop
    controller at the epoch barriers: load sampling every interval,
    hot-spot detection, ring-weight resizing and tenant rebalancing by
    sealed-state migration or kill-and-respawn spreading. Requires
    [Hash_tenant] routing (the ring is what gets resized) and at least
    2 machines ([Error] otherwise). Composes with [churn]: the epoch
    cuts are the union of both schedules, churn failover runs first at
    a shared barrier, and a tenant displaced by a machine death is the
    failover path's job, never double-moved by the controller.

    A tenant list with non-steady {!Sea_serve.Workload.shape}s also
    takes the epoch path (even without [churn] or [autoscale]): the
    window is cut at each shape's step instants plus a sampling grid
    for continuous shapes, and every epoch serves each tenant's rate
    specialized to the epoch's start instant.

    Raises [Invalid_argument] on an empty tenant list. [Error] surfaces
    the first failing machine by index. *)
