(** Fleet simulation: N independent machines, each running the
    {!Sea_serve.Server} virtual-time loop, sharded across OCaml 5
    [Domain]s.

    This is the paper's endgame question made measurable: if minimal-TCB
    execution is to be an everyday OS service, the unit of capacity
    planning is a {e fleet} — how many machines does a tenant population
    need on today's hardware versus the proposed hardware? A cluster run
    routes tenants to machines with a pluggable {!Router.policy}, serves
    every machine's share independently, and merges the per-machine
    reports into one {!Fleet_report.t}.

    {2 Determinism}

    Machine [i]'s entire schedule is a function of the master seed and
    [i] alone: per-machine engine seeds are carved off the master stream
    with {!Sea_sim.Rng.split_n} {e before} any machine runs, per-machine
    fault seeds likewise off the fault spec's own seed, and machines
    share no mutable state (each has its own engine, TPM, memory and
    tenant streams). Shards therefore only decide {e where} a machine's
    loop executes, never {e what} it computes: the merged report is
    byte-identical whether the fleet runs on 1 domain or 8 — asserted in
    CI by diffing [--shards 1] against [--shards 4] output — while
    wall-clock time scales down with the shard count.

    All machines are constructed on the calling domain, in index order,
    before any shard starts serving; shard domains only execute
    already-built machines. Per-machine traces are supported by handing
    each machine its own sink ({!Sea_trace.Trace} installation is
    domain-local). *)

type config = {
  machines : int;
  shards : int;
  policy : Router.policy;
}

val config : ?shards:int -> ?policy:Router.policy -> machines:int -> unit -> config
(** Defaults: 1 shard, round-robin routing. Raises [Invalid_argument]
    unless [machines >= 1], [shards >= 1] and [shards <= machines] —
    messages name the CLI flags, and [sea_cli cluster] turns them into a
    usage error (exit 1). *)

val run :
  ?seed:int64 ->
  ?trace:(int -> Sea_trace.Trace.sink) ->
  config ->
  machine_config:Sea_hw.Machine.config ->
  serve:Sea_serve.Server.config ->
  Sea_serve.Workload.tenant list ->
  (Fleet_report.t, string) result
(** Route the tenants, build machine [0..machines-1] (each with an
    engine seeded from the master [seed]'s split streams), serve every
    machine's share — distributing machines round-robin over [shards]
    domains — and merge.

    [serve] is the per-machine serving configuration. Its [faults] spec,
    if any, is re-seeded per machine from the spec's own seed so fault
    schedules are machine-independent; its [retry] policy must be unset
    ([Error] otherwise — a retry policy carries mutable counters that
    must not be shared across machines; each machine builds its own).

    [trace], when given, supplies machine [i]'s private sink; the sink
    is installed around that machine's serve only (in whichever domain
    runs it) and can be exported after [run] returns.

    Raises [Invalid_argument] on an empty tenant list. [Error] surfaces
    the first failing machine by index. *)
