(** A simulated lossy point-to-point link: the migration channel between
    fleet machines.

    Sealed-state transfers cross this link during failover. Each
    {!send} charges the receiving machine's engine one transfer time
    (fixed latency plus a bandwidth term) and then either delivers or —
    with the configured loss probability, drawn from the link's own
    stream — loses the message, surfacing the loss as a
    {!Sea_fault.Fault.transient} error so the existing
    {!Sea_fault.Retry} machinery can drive bounded re-transmission. *)

open Sea_sim

type t

val create :
  ?latency:Time.t -> ?bytes_per_us:int -> ?loss:float -> Rng.t -> t
(** Defaults: 50 us one-way latency, 125 bytes/us (~1 Gbit/s), lossless.
    The drop stream is split off the given generator. Raises
    [Invalid_argument] on a negative latency, a non-positive bandwidth
    or a loss outside [0, 1]. *)

val send : t -> Engine.t -> string -> (unit, string) result
(** Ship [payload] over the link, advancing [engine] (the receiving
    side) by the transfer time whether or not the message survives. A
    drop returns a transient error ([Sea_fault.Fault.is_transient]), so
    callers wrap [send] in {!Sea_fault.Retry.run} for bounded backoff. *)

val transfer_time : t -> bytes:int -> Time.t

val sends : t -> int
(** Send attempts, including dropped ones. *)

val drops : t -> int
val bytes : t -> int
(** Payload bytes actually delivered. *)
