open Sea_serve

type policy = Round_robin | Hash_tenant | Least_loaded | Cost_weighted

let policies =
  [
    ("round-robin", Round_robin);
    ("hash", Hash_tenant);
    ("least-loaded", Least_loaded);
    ("cost-weighted", Cost_weighted);
  ]

let policy_name = function
  | Round_robin -> "round-robin"
  | Hash_tenant -> "hash"
  | Least_loaded -> "least-loaded"
  | Cost_weighted -> "cost-weighted"

let policy_of_name name =
  List.assoc_opt (String.lowercase_ascii (String.trim name)) policies

(* FNV-1a, 64-bit: a stable string hash under our control, so routing
   does not shift with the compiler's [Hashtbl.hash] across versions. *)
let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

(* splitmix64 finalizer. FNV-1a diffuses its low bits well but barely
   avalanches the high ones, and ring placement sorts by the FULL hash:
   raw FNV over the structured ["machine:m:v"] keys leaves each
   machine's 32 points in two or three tight clumps, clumps sorted by
   machine index — machine 0 then owns one giant arc that survives any
   weight in [1, 32], so resizes move (almost) nothing and the "ring"
   degenerates to a fixed partition. Finalizing with splitmix64 spreads
   the points (and tenant keys) uniformly over the 64-bit circle, which
   is what both the ≤ 2/N resize-stability bound and load spreading
   assume. *)
let mix h =
  let h = Int64.logxor h (Int64.shift_right_logical h 30) in
  let h = Int64.mul h 0xBF58476D1CE4E5B9L in
  let h = Int64.logxor h (Int64.shift_right_logical h 27) in
  let h = Int64.mul h 0x94D049BB133111EBL in
  Int64.logxor h (Int64.shift_right_logical h 31)

(* Every hash that positions something on the ring goes through the
   finalizer. *)
let ring_key s = mix (fnv1a s)

(* Unsigned comparison of the full 64-bit hash space. *)
let ucompare a b = Int64.unsigned_compare a b

let virtual_points = 32

(* The ring: [virtual_points] positions per machine, sorted by hash. A
   tenant lands on the first point at or clockwise of its own hash. *)
let ring machines =
  let points = Array.make (machines * virtual_points) (0L, 0) in
  for m = 0 to machines - 1 do
    for v = 0 to virtual_points - 1 do
      points.((m * virtual_points) + v) <-
        (ring_key (Printf.sprintf "machine:%d:%d" m v), m)
    done
  done;
  Array.sort
    (fun (h1, m1) (h2, m2) ->
      match ucompare h1 h2 with 0 -> compare m1 m2 | c -> c)
    points;
  points

let ring_lookup points h =
  (* First point with hash >= h, wrapping to the ring's start. *)
  let n = Array.length points in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if ucompare (fst points.(mid)) h < 0 then search (mid + 1) hi
      else search lo mid
  in
  let i = search 0 n in
  snd points.(if i = n then 0 else i)

(* The same ring restricted to the surviving machine indices, each at a
   capacity weight in [1, virtual_points]: machine [m] at weight [w]
   contributes its first [w] canonical point hashes, unchanged. This is
   the consistent-hashing stability both failover and autoscale ring
   resizing depend on: removing a machine, or shrinking one machine's
   weight, perturbs only the arcs owned by the points that disappeared —
   a tenant on any other arc keeps its previous home. (Rehashing points
   as a function of the weight — e.g. "machine:m:w:v" — would reshuffle
   the whole ring on every resize; keeping the canonical prefix is the
   fix that bounds the moved-tenant fraction.) *)
type ring = (int64 * int) array

let make_ring ?weights alive =
  if alive = [] then invalid_arg "Router.make_ring: no machines";
  let weight m =
    match weights with
    | None -> virtual_points
    | Some w ->
        if m < 0 || m >= Array.length w then
          invalid_arg "Router.make_ring: machine index outside weights";
        if w.(m) < 1 || w.(m) > virtual_points then
          invalid_arg "Router.make_ring: weights must be in [1, 32]";
        w.(m)
  in
  let total = List.fold_left (fun acc m -> acc + weight m) 0 alive in
  let points = Array.make total (0L, 0) in
  let next = ref 0 in
  List.iter
    (fun m ->
      for v = 0 to weight m - 1 do
        points.(!next) <- (ring_key (Printf.sprintf "machine:%d:%d" m v), m);
        incr next
      done)
    alive;
  Array.sort
    (fun (h1, m1) (h2, m2) ->
      match ucompare h1 h2 with 0 -> compare m1 m2 | c -> c)
    points;
  points

let lookup ring (t : Workload.tenant) =
  ring_lookup ring (ring_key t.Workload.name)

let reroute ?weights ~alive (t : Workload.tenant) =
  lookup (make_ring ?weights alive) t

let offered_rate (t : Workload.tenant) =
  match t.Workload.process with
  | Workload.Open_loop { rate_per_s } -> rate_per_s
  | Workload.Closed_loop { clients; think } ->
      let think_ms = Sea_sim.Time.to_ms think in
      if think_ms <= 0. then float_of_int clients *. 1000.
      else float_of_int clients *. 1000. /. think_ms

(* Mean static admission cost of one of this tenant's requests under
   its weighted mix, from the kinds' cost certificates (cached, so the
   first tenant prices each kind and the rest look up). *)
let mix_cost (t : Workload.tenant) =
  let num, den =
    List.fold_left
      (fun (num, den) (k, w) ->
        ( num +. (float_of_int w *. float_of_int (Workload.static_cost k)),
          den +. float_of_int w ))
      (0., 0.) t.Workload.mix
  in
  num /. den

let assign policy ~machines tenants =
  if machines < 1 then invalid_arg "Router.assign: machines must be positive";
  match policy with
  | Round_robin -> Array.init (List.length tenants) (fun i -> i mod machines)
  | Hash_tenant ->
      let points = ring machines in
      Array.of_list
        (List.map
           (fun (t : Workload.tenant) ->
             ring_lookup points (ring_key t.Workload.name))
           tenants)
  | Least_loaded | Cost_weighted ->
      let load = Array.make machines 0. in
      let pick () =
        (* Lowest accumulated load, ties to the lowest index. *)
        let best = ref 0 in
        for m = 1 to machines - 1 do
          if load.(m) < load.(!best) then best := m
        done;
        !best
      in
      let contribution t =
        match policy with
        | Cost_weighted ->
            (* Certificate-priced balance: a tenant's load is its offered
               rate scaled by the mean static cost of its request mix, so
               loop-heavy/TPM-heavy tenants spread out even when raw
               request rates are equal. *)
            offered_rate t *. mix_cost t
        | _ -> offered_rate t
      in
      (* fold_left, not map: placement must accumulate in list order
         ([List.map] does not specify its application order). *)
      let rev =
        List.fold_left
          (fun acc t ->
            let m = pick () in
            load.(m) <- load.(m) +. contribution t;
            m :: acc)
          [] tenants
      in
      Array.of_list (List.rev rev)
