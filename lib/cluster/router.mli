(** Front-end routing: which fleet machine serves which tenant.

    The router is the only component that sees the whole tenant
    population; everything downstream of it is per-machine and
    independent. All three policies are pure functions of the tenant
    list and the machine count — no randomness, no global state — so an
    assignment is reproducible and identical no matter how the fleet's
    machines are later sharded across domains. *)

type policy =
  | Round_robin  (** Tenant [i] goes to machine [i mod machines]. *)
  | Hash_tenant
      (** Consistent hashing by tenant name on a ring of virtual points
          per machine: adding or removing one machine only moves the
          tenants whose arc changed, and a tenant's home depends on its
          name alone, not its position in the list. *)
  | Least_loaded
      (** Greedy balance by offered rate: tenants are placed in list
          order, each on the machine with the least accumulated offered
          load (open-loop tenants contribute their arrival rate;
          closed-loop tenants a clients-over-think-time proxy). *)
  | Cost_weighted
      (** [Least_loaded] with each tenant's contribution scaled by the
          mean static admission cost of its request mix
          ({!Sea_analysis.Certificate.admission_cost} of each kind's
          cost certificate, mix-weighted): tenants sending loop-heavy
          or TPM-heavy kinds count as proportionally more load, so
          equal request rates no longer imply equal placement. Still a
          pure function of the tenant list and machine count — the
          certificates are static. *)

val policies : (string * policy) list
(** CLI name/value pairs: round-robin, hash, least-loaded,
    cost-weighted. *)

val policy_name : policy -> string

val policy_of_name : string -> policy option

val offered_rate : Sea_serve.Workload.tenant -> float
(** The load estimate [Least_loaded] balances on: requests/second for an
    open-loop tenant; for a closed-loop tenant, clients divided by mean
    think time (clients × 1000 when think is zero — the saturating
    regime), a proxy for its maximum offered rate. *)

val assign : policy -> machines:int -> Sea_serve.Workload.tenant list -> int array
(** [assign p ~machines tenants] gives each tenant (by list position) a
    machine index in [\[0, machines)]. Raises [Invalid_argument] when
    [machines < 1]. *)

(** {1 The consistent-hash ring, explicitly}

    Failover and the autoscaler both re-place tenants on the ring many
    times per run; building the ring once per (weights, alive) epoch and
    looking tenants up against it avoids rebuilding it per tenant. *)

type ring
(** A materialized consistent-hash ring: virtual points sorted by hash. *)

val virtual_points : int
(** Canonical points per machine at full weight (32) — also the maximum
    ring weight. *)

val make_ring : ?weights:int array -> int list -> ring
(** [make_ring ?weights alive] builds the ring over the [alive] machine
    indices. [weights.(m)] (default [virtual_points], range
    [\[1, virtual_points]]) is machine [m]'s capacity weight: it
    contributes its {e first} [weights.(m)] canonical virtual points,
    with their original hashes. Because shrinking a weight only deletes
    points (and growing only restores them), a resize moves exactly the
    tenants on the affected arcs — the stability bound the autoscaler's
    regression test pins at ≤ 2/N moved per single-machine resize.
    Raises [Invalid_argument] on an empty list, an index outside
    [weights], or a weight outside [\[1, virtual_points]]. *)

val lookup : ring -> Sea_serve.Workload.tenant -> int
(** The tenant's home machine: the first ring point at or clockwise of
    the FNV-1a hash of its name. *)

val reroute :
  ?weights:int array -> alive:int list -> Sea_serve.Workload.tenant -> int
(** Failover routing: the tenant's home on the consistent-hash ring
    restricted to the [alive] machine indices (at the given capacity
    weights, default full). Survivors keep their original virtual
    points, so removing a dead machine moves only the tenants whose
    arcs it owned — regardless of which policy produced the original
    assignment, displaced tenants spread over survivors proportionally
    to ring ownership. Equivalent to
    [lookup (make_ring ?weights alive)]. Raises [Invalid_argument] on
    an empty survivor list. *)
