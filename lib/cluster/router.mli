(** Front-end routing: which fleet machine serves which tenant.

    The router is the only component that sees the whole tenant
    population; everything downstream of it is per-machine and
    independent. All three policies are pure functions of the tenant
    list and the machine count — no randomness, no global state — so an
    assignment is reproducible and identical no matter how the fleet's
    machines are later sharded across domains. *)

type policy =
  | Round_robin  (** Tenant [i] goes to machine [i mod machines]. *)
  | Hash_tenant
      (** Consistent hashing by tenant name on a ring of virtual points
          per machine: adding or removing one machine only moves the
          tenants whose arc changed, and a tenant's home depends on its
          name alone, not its position in the list. *)
  | Least_loaded
      (** Greedy balance by offered rate: tenants are placed in list
          order, each on the machine with the least accumulated offered
          load (open-loop tenants contribute their arrival rate;
          closed-loop tenants a clients-over-think-time proxy). *)
  | Cost_weighted
      (** [Least_loaded] with each tenant's contribution scaled by the
          mean static admission cost of its request mix
          ({!Sea_analysis.Certificate.admission_cost} of each kind's
          cost certificate, mix-weighted): tenants sending loop-heavy
          or TPM-heavy kinds count as proportionally more load, so
          equal request rates no longer imply equal placement. Still a
          pure function of the tenant list and machine count — the
          certificates are static. *)

val policies : (string * policy) list
(** CLI name/value pairs: round-robin, hash, least-loaded,
    cost-weighted. *)

val policy_name : policy -> string

val policy_of_name : string -> policy option

val offered_rate : Sea_serve.Workload.tenant -> float
(** The load estimate [Least_loaded] balances on: requests/second for an
    open-loop tenant; for a closed-loop tenant, clients divided by mean
    think time (clients × 1000 when think is zero — the saturating
    regime), a proxy for its maximum offered rate. *)

val assign : policy -> machines:int -> Sea_serve.Workload.tenant list -> int array
(** [assign p ~machines tenants] gives each tenant (by list position) a
    machine index in [\[0, machines)]. Raises [Invalid_argument] when
    [machines < 1]. *)

val reroute : alive:int list -> Sea_serve.Workload.tenant -> int
(** Failover routing: the tenant's home on the consistent-hash ring
    restricted to the [alive] machine indices. Survivors keep their
    original virtual points, so removing a dead machine moves only the
    tenants whose arcs it owned — regardless of which policy produced
    the original assignment, displaced tenants spread over survivors
    proportionally to ring ownership. Raises [Invalid_argument] on an
    empty survivor list. *)
