open Sea_sim

type t = {
  latency : Time.t;
  bytes_per_us : int;
  loss : float;
  rng : Rng.t;
  mutable sends : int;
  mutable drops : int;
  mutable bytes : int;
}

let create ?(latency = Time.us 50.) ?(bytes_per_us = 125) ?(loss = 0.) rng =
  if Time.compare latency Time.zero < 0 then
    invalid_arg "Link.create: latency must be non-negative";
  if bytes_per_us < 1 then
    invalid_arg "Link.create: bytes_per_us must be positive";
  if not (loss >= 0. && loss <= 1.) then
    invalid_arg "Link.create: loss must be in [0, 1]";
  { latency; bytes_per_us; loss; rng = Rng.split rng; sends = 0; drops = 0;
    bytes = 0 }

let transfer_time t ~bytes =
  Time.add t.latency (Time.us (float_of_int bytes /. float_of_int t.bytes_per_us))

let send t engine payload =
  let bytes = String.length payload in
  t.sends <- t.sends + 1;
  (* A dropped message burns its timeout (one full transfer time) before
     the sender can tell; a delivered one burns the transfer time. Either
     way the receiving engine's clock pays for the attempt. *)
  Engine.advance engine (transfer_time t ~bytes);
  if t.loss > 0. && Rng.float t.rng 1.0 < t.loss then begin
    t.drops <- t.drops + 1;
    Sea_trace.Trace.instant engine ~cat:"churn"
      ~args:(fun () -> [ ("bytes", Sea_trace.Trace.Int bytes) ])
      "link-drop";
    Error (Sea_fault.Fault.transient "link: message lost in transfer")
  end
  else begin
    t.bytes <- t.bytes + bytes;
    Ok ()
  end

let sends t = t.sends
let drops t = t.drops
let bytes t = t.bytes
