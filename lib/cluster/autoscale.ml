open Sea_sim

type policy = Static | Migrate | Spread | Auto

let policies =
  [ ("static", Static); ("migrate", Migrate); ("spread", Spread);
    ("auto", Auto) ]

let policy_name = function
  | Static -> "static"
  | Migrate -> "migrate"
  | Spread -> "spread"
  | Auto -> "auto"

let policy_of_name name =
  List.assoc_opt (String.lowercase_ascii (String.trim name)) policies

type config = {
  policy : policy;
  interval : Time.t;
  hot_threshold : float;
  min_weight : int;
}

let config ?(policy = Auto) ?(interval = Time.s 1.) ?(hot_threshold = 1.5)
    ?(min_weight = 1) () =
  if Time.compare interval Time.zero <= 0 then
    invalid_arg "Autoscale.config: --scale-interval must be positive";
  if hot_threshold <= 1. then
    invalid_arg "Autoscale.config: --hot-threshold must exceed 1";
  if min_weight < 1 || min_weight > Router.virtual_points then
    invalid_arg "Autoscale.config: min_weight must be in [1, 32]";
  { policy; interval; hot_threshold; min_weight }

let tick_instants cfg ~duration =
  let iv = Time.to_ns cfg.interval in
  let rec go k acc =
    let t = k * iv in
    if t >= Time.to_ns duration then List.rev acc
    else go (k + 1) (Time.ns t :: acc)
  in
  go 1 []

type decision = {
  weights : int array;
  hot : int list;
  cooled : int list;
}

let decide cfg ~weights ~alive ~loads =
  let n = Array.length weights in
  if Array.length alive <> n || Array.length loads <> n then
    invalid_arg "Autoscale.decide: array lengths disagree";
  let count = ref 0 and total = ref 0. in
  for m = 0 to n - 1 do
    if alive.(m) then begin
      incr count;
      total := !total +. loads.(m)
    end
  done;
  let mean = if !count = 0 then 0. else !total /. float_of_int !count in
  if mean <= 0. then { weights = Array.copy weights; hot = []; cooled = [] }
  else begin
    let out = Array.copy weights in
    let hot = ref [] and cooled = ref [] in
    (* Index order, so the decision (and every downstream trace and
       counter) is identical no matter how the fleet is sharded. *)
    for m = 0 to n - 1 do
      if alive.(m) then
        if loads.(m) > cfg.hot_threshold *. mean then begin
          hot := m :: !hot;
          out.(m) <- Stdlib.max cfg.min_weight (weights.(m) / 2)
        end
        else if
          loads.(m) < mean /. cfg.hot_threshold
          && weights.(m) < Router.virtual_points
        then begin
          cooled := m :: !cooled;
          out.(m) <- Stdlib.min Router.virtual_points (weights.(m) * 2)
        end
    done;
    { weights = out; hot = List.rev !hot; cooled = List.rev !cooled }
  end
