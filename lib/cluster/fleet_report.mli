(** Fleet reports: deterministic merge of per-machine serving reports.

    The merge is a pure fold over the machine rows {e in machine-index
    order}: counters sum, latency samples concatenate exactly (via
    {!Sea_sim.Stats.merge}, so fleet p50/p95/p99 are true cross-machine
    percentiles, not averages of percentiles), and the fleet window is
    the longest machine window (machines serve concurrently in virtual
    time, so the fleet is done when its slowest machine is).

    Because each machine's report is itself deterministic and the merge
    order is fixed by index, {!render} is byte-identical no matter how
    many domains the fleet was sharded across — deliberately, nothing
    about the shard count or host wall-clock appears in the render; the
    CI determinism gate diffs exactly this string. *)

open Sea_sim
open Sea_serve

type machine_row = {
  index : int;
  tenants : int;  (** Tenants routed to this machine; 0 = idle. *)
  report : Report.t option;  (** [None] iff the machine is idle. *)
}

type t = {
  mode : string;
  hw : string;  (** The per-machine hardware preset's name. *)
  machines : int;
  idle : int;  (** Machines the router left without tenants. *)
  policy : string;
  discipline : string;
  depth : int;
  cost_budget : int option;
      (** The per-tenant cost budget when cost-aware admission was
          active on the machines; [None] otherwise. *)
  cost_shed : int;  (** Summed cost-budget sheds across machines. *)
  window : Time.t;  (** Longest per-machine measurement window. *)
  per_machine : machine_row list;  (** In machine-index order. *)
  fleet : Report.row;  (** Merged aggregate row, named ["fleet"]. *)
  pal_busy : Time.t;
  stalled : Time.t;
  cold_starts : int;
  warm_hits : int;
  evictions : int;
  sepcr_waits : int;
  faults_injected : (string * int) list;  (** Summed per kind. *)
  retries : int;
  retry_give_ups : int;
  breaker_shed : int;
  breaker_transitions : int;
  recoveries : int;
  vtpm : Report.vtpm_stats option;
      (** Summed vTPM counters (including [instances] — the fleet's
          total vTPM population); [None] when no machine multiplexed. *)
}

val merge : policy:string -> machine_row list -> t
(** Fold the rows (already in machine-index order) into a fleet view.
    Raises [Invalid_argument] if the list is empty or no machine has a
    report (the cluster layer guarantees at least one tenant, hence at
    least one serving machine). *)

val goodput_per_s : t -> float
(** Fleet goodput: total completions over the fleet window. *)

val machine_goodput_per_s : machine_row -> float
(** One machine's goodput over its own window; [0.] for an idle row. *)

val robustness_active : t -> bool
(** Whether any fault/retry/breaker counter is non-zero anywhere in the
    fleet; gates the extra report lines exactly like
    {!Sea_serve.Report.robustness_active}. *)

val pp : Format.formatter -> t -> unit

val render : t -> string
(** The whole fleet report as a string. Identical seeds, configuration
    and routing give a byte-identical render regardless of shard
    count. *)
