(** Fleet reports: deterministic merge of per-machine serving reports.

    The merge is a pure fold over the machine rows {e in machine-index
    order}: counters sum, latency samples concatenate exactly (via
    {!Sea_sim.Stats.merge}, so fleet p50/p95/p99 are true cross-machine
    percentiles, not averages of percentiles), and the fleet window is
    the longest machine window (machines serve concurrently in virtual
    time, so the fleet is done when its slowest machine is).

    Because each machine's report is itself deterministic and the merge
    order is fixed by index, {!render} is byte-identical no matter how
    many domains the fleet was sharded across — deliberately, nothing
    about the shard count or host wall-clock appears in the render; the
    CI determinism gate diffs exactly this string.

    Under churn, a machine row additionally carries the requests
    black-holed while the machine was down ([lost]); they fold into the
    row's and the fleet's accounting as offered-and-failed, preserving
    [offered = completed + shed + timed_out + failed]. A machine that
    was down for its entire window has an empty completion window and
    renders an explicit [n/a] latency instead of raising from the empty
    sample set. The churn/failover/recovered-goodput lines render only
    when a machine-fault plan drove the run, so churn-free reports stay
    byte-identical to the pre-churn layout. *)

open Sea_sim
open Sea_serve

type machine_row = {
  index : int;
  tenants : int;  (** Tenants routed to this machine; 0 = idle. *)
  report : Report.t option;
      (** [None] iff the machine is idle or was down for its whole
          window. *)
  lost : int;
      (** Requests black-holed while the machine was down (offered but
          never served); 0 on every churn-free run. *)
}

type churn_stats = {
  failover : bool;  (** Whether sealed-state failover was enabled. *)
  crashes : int;  (** Machine-crash outages across the fleet. *)
  partitions : int;  (** Net-partition outages across the fleet. *)
  heartbeat_misses : int;
      (** Heartbeat ticks the failure detector counted against downed
          machines before declaring them dead. *)
  failovers : int;  (** Tenant relocations performed at detection. *)
  migrations : int;
      (** Warm failovers: sealed state shipped, unsealed and resumed on
          the survivor ({!Migrate.Warm}). *)
  cold_restarts : int;
      (** PALs re-launched without their state (blob lost, source
          crashed mid-seal, or torn transfer). *)
  torn_backouts : int;
      (** Torn transfers whose target page/sePCR claim was backed out
          before the cold re-launch. *)
  link_drops : int;  (** Messages the lossy migration link lost. *)
  link_retries : int;  (** Link re-transmissions burned. *)
  lost_requests : int;  (** Total black-holed requests (sum of [lost]). *)
  recovered : int;
      (** Completions by failed-over tenants on survivor machines — the
          goodput failover recovered that a static fleet would have
          black-holed. *)
}

type autoscale_stats = {
  as_policy : string;  (** static, migrate, spread or auto. *)
  interval : Time.t;  (** Control-loop sampling period. *)
  hot_threshold : float;  (** Hot-spot detection threshold (× mean). *)
  ticks : int;  (** Control-loop ticks that fired inside the window. *)
  hot_events : int;  (** Hot-machine detections summed over ticks. *)
  resizes : int;  (** Ring-weight changes applied (shrinks + regrows). *)
  tenants_moved : int;  (** Tenants re-homed by ring resizes. *)
  warm_moves : int;
      (** Residents that followed their tenant by sealed-state
          migration and resumed warm ({!Migrate.Warm}). *)
  cold_moves : int;
      (** Migrations that degraded to a cold re-launch (torn transfer,
          lost blob). *)
  respawns : int;
      (** Residents re-homed by kill-and-respawn spreading (the SFI
          path, or the spread policy on any backend). *)
}

type t = {
  mode : string;
  hw : string;  (** The per-machine hardware preset's name. *)
  machines : int;
  idle : int;  (** Machines the router left without tenants. *)
  policy : string;
  discipline : string;
  depth : int;
  cost_budget : int option;
      (** The per-tenant cost budget when cost-aware admission was
          active on the machines; [None] otherwise. *)
  cost_shed : int;  (** Summed cost-budget sheds across machines. *)
  window : Time.t;  (** Longest per-machine measurement window. *)
  per_machine : machine_row list;  (** In machine-index order. *)
  fleet : Report.row;  (** Merged aggregate row, named ["fleet"]. *)
  pal_busy : Time.t;
  stalled : Time.t;
  cold_starts : int;
  warm_hits : int;
  evictions : int;
  sepcr_waits : int;
  faults_injected : (string * int) list;  (** Summed per kind. *)
  retries : int;
  retry_give_ups : int;
  breaker_shed : int;
  breaker_transitions : int;
  recoveries : int;
  vtpm : Report.vtpm_stats option;
      (** Summed vTPM counters (including [instances] — the fleet's
          total vTPM population); [None] when no machine multiplexed. *)
  churn : churn_stats option;
      (** Present iff a machine-fault plan drove the run; gates the
          churn report lines. *)
  autoscale : autoscale_stats option;
      (** Present iff the autoscale controller drove the run; gates the
          autoscale report lines. *)
}

val merge :
  ?churn:churn_stats ->
  ?autoscale:autoscale_stats ->
  policy:string ->
  machine_row list ->
  t
(** Fold the rows (already in machine-index order) into a fleet view.
    Raises [Invalid_argument] if the list is empty or no machine has a
    report (the cluster layer guarantees at least one tenant, hence at
    least one serving machine). *)

val goodput_per_s : t -> float
(** Fleet goodput: total completions over the fleet window. *)

val machine_goodput_per_s : machine_row -> float
(** One machine's goodput over its own window; [0.] for an idle row. *)

val recovered_goodput_per_s : t -> float
(** Failed-over tenants' completions on survivors over the fleet
    window; [0.] without churn. *)

val robustness_active : t -> bool
(** Whether any fault/retry/breaker counter is non-zero anywhere in the
    fleet; gates the extra report lines exactly like
    {!Sea_serve.Report.robustness_active}. *)

val pp : Format.formatter -> t -> unit

val render : t -> string
(** The whole fleet report as a string. Identical seeds, configuration
    and routing give a byte-identical render regardless of shard
    count. *)
