open Sea_hw
open Sea_core
open Sea_tpm

type outcome = Warm | Cold

type result_t = {
  outcome : outcome;
  torn : bool;
  link_retries : int;
  target : Slaunch_session.t;
}

(* Launch a fresh suspended resident of [pal] on [m]: SLAUNCH (claims
   pages, SECB and an sePCR) under a preemption timer, then one slice so
   the PAL parks in [Suspend] like any serve-loop resident (without the
   timer the slice would run the image to completion instead of
   yielding). *)
let launch_suspended m ?retry ~preemption_timer pal =
  match Slaunch_session.start m ~cpu:0 ?retry ~preemption_timer pal ~input:"" with
  | Error e -> Error e
  | Ok s -> (
      match Slaunch_session.run_slice s ~cpu:0 () with
      | Ok `Yielded -> Ok s
      | Ok `Finished ->
          (* A resident PAL's work is open-ended; finishing means the
             image is not resident-shaped. Back the claim out. *)
          Slaunch_session.release s;
          Error "migrate: PAL finished instead of suspending"
      | Error e ->
          ignore (Slaunch_session.kill s);
          Slaunch_session.release s;
          Error ("migrate: first slice failed: " ^ e))

(* Back out a half-migrated target claim exactly like a failed first
   SLAUNCH: SKILL erases and releases the pages and frees the sePCR, so
   a torn transfer leaves no residue in the target's access-control
   table or sePCR bank. *)
let backout s =
  ignore (Slaunch_session.kill s);
  Slaunch_session.release s

let failover ~source ~target ~link ?(source_alive = true)
    ?(blob_available = true) ?(preemption_timer = Sea_sim.Time.ms 10.) ~tenant
    ~kind_name:kname pal () =
  let state_payload = Printf.sprintf "pal-state:%s:%s" tenant kname in
  let target_engine = Machine.engine target in
  Sea_trace.Trace.with_span target_engine ~cat:"churn"
    ~args:(fun () ->
      [
        ("tenant", Sea_trace.Trace.Str tenant);
        ("kind", Sea_trace.Trace.Str kname);
        ("source_alive", Sea_trace.Trace.Bool source_alive);
      ])
    "migrate"
  @@ fun () ->
  (* 1. Obtain the sealed hand-off blob. Partitioned source: the live
     protocol — SLAUNCH the resident's code identity, SYIELD it, seal
     its state bound to the sePCR measurement, SKILL it (the blob now
     owns the PAL; exactly-once hinges on this ordering). Crashed
     source: the pre-crash durable checkpoint survived with some luck;
     otherwise there is nothing to transfer. *)
  let blob =
    if (not source_alive) && not blob_available then None
    else
      let retry = Sea_fault.Retry.policy () in
      match launch_suspended source ~retry ~preemption_timer pal with
      | Error _ -> None
      | Ok s -> (
          let sealed =
            match Slaunch_session.sepcr_handle s with
            | None -> None
            | Some h -> (
                match
                  Sea_fault.Retry.run ~policy:retry
                    ~engine:(Machine.engine source) (fun () ->
                      Tpm.seal (Machine.tpm_exn source) ~caller:(Tpm.Cpu 0)
                        ~sepcr:h ~pcr_policy:[] state_payload)
                with
                | Ok blob -> Some blob
                | Error _ -> None)
          in
          (* Source residency ends here on every path: seal-then-SKILL
             on success, plain SKILL (state lost) on a failed seal. *)
          ignore (Slaunch_session.kill s);
          Slaunch_session.release s;
          sealed)
  in
  (* 2. Claim the target: a fresh SLAUNCH of the same code identity.
     Its sePCR now holds the same measurement chain the blob was bound
     to, so a delivered blob unseals against the target's sePCR. *)
  match launch_suspended target ~preemption_timer pal with
  | Error e -> Error ("target launch: " ^ e)
  | Ok tsess -> (
      let cold ~torn ~link_retries =
        if not torn then
          Ok { outcome = Cold; torn; link_retries; target = tsess }
        else begin
          (* Torn transfer: the blob is gone but the target already
             claimed pages and an sePCR for a resident it can never
             warm-resume into a consistent state. Back the claim out,
             then cold re-launch from scratch. *)
          backout tsess;
          Sea_trace.Trace.count target_engine "churn.cold_restarts" 1;
          match launch_suspended target ~preemption_timer pal with
          | Error e -> Error ("cold re-launch: " ^ e)
          | Ok fresh -> Ok { outcome = Cold; torn; link_retries; target = fresh }
        end
      in
      match blob with
      | None ->
          Sea_trace.Trace.count target_engine "churn.cold_restarts" 1;
          Ok { outcome = Cold; torn = false; link_retries = 0; target = tsess }
      | Some blob -> (
          (* 3. Ship the blob over the lossy link with bounded backoff;
             every attempt (dropped or delivered) charges the target's
             clock. *)
          let policy = Sea_fault.Retry.policy () in
          let sent =
            Sea_fault.Retry.run ~policy ~engine:target_engine (fun () ->
                Link.send link target_engine blob)
          in
          let link_retries = Sea_fault.Retry.retries policy in
          match sent with
          | Error _ -> cold ~torn:true ~link_retries
          | Ok () -> (
              (* 4. Unseal against the target's sePCR and resume. The
                 TPM checks the binding: a blob for a different code
                 identity (different measurement chain) is refused. *)
              match Slaunch_session.sepcr_handle tsess with
              | None -> cold ~torn:true ~link_retries
              | Some h -> (
                  match
                    Tpm.unseal (Machine.tpm_exn target) ~caller:(Tpm.Cpu 0)
                      ~sepcr:h blob
                  with
                  | Error _ -> cold ~torn:true ~link_retries
                  | Ok payload when payload <> state_payload ->
                      cold ~torn:true ~link_retries
                  | Ok _ -> (
                      match Slaunch_session.resume tsess ~cpu:0 with
                      | Error _ -> cold ~torn:true ~link_retries
                      | Ok () -> (
                          match Slaunch_session.run_slice tsess ~cpu:0 () with
                          | Ok `Yielded ->
                              Ok { outcome = Warm; torn = false; link_retries;
                                   target = tsess }
                          | Ok `Finished | Error _ ->
                              cold ~torn:true ~link_retries))))))

let dispose r =
  ignore (Slaunch_session.kill r.target);
  Slaunch_session.release r.target

(* Kill-and-respawn rebalancing (the autoscaler's "spread" policy): the
   source resident is simply discarded and a fresh one launches on the
   target — no state crosses the wire. On proposed hardware the respawn
   pays a real cold SLAUNCH (claim pages, SECB, an sePCR, hash the
   image) and immediately backs the claim out, charging the true launch
   cost while leaving the serve loop's sePCR bank untouched between
   epochs. Under a software (SFI) backend the launch is just stub
   patching and a software measurement — a flat ~25 µs charge to the
   target's clock. *)
let respawn ~target ?(preemption_timer = Sea_sim.Time.ms 10.) ~cost ~tenant
    ~kind_name:kname pal () =
  let target_engine = Machine.engine target in
  Sea_trace.Trace.with_span target_engine ~cat:"autoscale"
    ~args:(fun () ->
      [
        ("tenant", Sea_trace.Trace.Str tenant);
        ("kind", Sea_trace.Trace.Str kname);
      ])
    "respawn"
  @@ fun () ->
  match cost with
  | `Software c ->
      Sea_sim.Engine.advance target_engine c;
      Ok ()
  | `Slaunch -> (
      match launch_suspended target ~preemption_timer pal with
      | Error e -> Error ("respawn launch: " ^ e)
      | Ok s ->
          backout s;
          Ok ())
