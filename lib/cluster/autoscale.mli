(** The fleet autoscaler: a closed-loop controller over {!Cluster.run}.

    Machines never migrate work by themselves — the cluster routes
    statically within an epoch. The autoscaler closes the loop {e at
    the epoch barriers}: every [interval] of virtual time it samples
    each machine's measured load (requests offered to it since the
    previous tick), detects hot spots against the fleet mean, resizes
    the consistent-hash ring by halving a hot machine's capacity weight
    (and doubling a cool one's back, with hysteresis), and rebalances
    the tenants whose arcs moved.

    How a moved tenant's resident PALs follow it depends on the policy
    and the isolation backend:

    - {b migrate} — the paper's §5.4 sePCR seal/unseal protocol
      ({!Migrate.failover} with a live source): SYIELD the resident,
      seal its state bound to the sePCR, ship the blob over the
      {!Link}, unseal against the target's sePCR and resume warm. Only
      the proposed hardware has sePCR-bound residents; on other
      backends this policy degrades to spreading.
    - {b spread} — kill-and-respawn: the source resident is discarded
      and a fresh one launches on the target. On [--mode sfi] a
      software launch costs ~25 µs, so spreading beats paying the
      seal/transfer/unseal protocol; on proposed hardware the respawn
      pays a real cold SLAUNCH.
    - {b auto} (the CLI default) — migrate on proposed hardware, spread
      elsewhere.
    - {b static} — sample and report, never rebalance (the bench
      baseline).

    Every decision is a pure function of epoch reports that are
    themselves deterministic and shard-independent, and all rebalance
    work runs at the barrier on the calling domain in machine-index
    order — so fleet reports stay byte-identical for any shard count
    while autoscaling, which CI asserts by diffing [--shards 1] against
    [--shards 4] with [--autoscale] on. *)

type policy = Static | Migrate | Spread | Auto

val policies : (string * policy) list
(** CLI name/value pairs: static, migrate, spread, auto. *)

val policy_name : policy -> string
val policy_of_name : string -> policy option

type config = {
  policy : policy;
  interval : Sea_sim.Time.t;  (** Control-loop sampling period. *)
  hot_threshold : float;
      (** A machine is hot when its measured load exceeds
          [hot_threshold ×] the mean over alive machines; cool (and
          eligible to regrow) below [mean / hot_threshold]. *)
  min_weight : int;
      (** Floor for a machine's ring weight — a hot machine is never
          shed below this many virtual points. *)
}

val config :
  ?policy:policy ->
  ?interval:Sea_sim.Time.t ->
  ?hot_threshold:float ->
  ?min_weight:int ->
  unit ->
  config
(** Defaults: auto policy, 1 s interval, 1.5× hot threshold, min
    weight 1. Raises [Invalid_argument] unless [interval > 0],
    [hot_threshold > 1] (the hysteresis band must be non-empty) and
    [min_weight] in [\[1, Router.virtual_points]]. *)

val tick_instants : config -> duration:Sea_sim.Time.t -> Sea_sim.Time.t list
(** The controller's sampling instants inside the serving window:
    [interval, 2·interval, …] strictly between 0 and [duration]. These
    become cluster epoch cuts. *)

type decision = {
  weights : int array;  (** The resized ring weights. *)
  hot : int list;  (** Machines detected hot this tick (index order). *)
  cooled : int list;  (** Machines whose weight was grown back. *)
}

val decide :
  config -> weights:int array -> alive:bool array -> loads:float array ->
  decision
(** One control-loop tick, pure: given the current ring weights, which
    machines are alive, and each machine's measured load (offered
    requests per second since the last tick), return the new weights.
    A hot machine's weight halves (floored at [min_weight]); an alive
    machine measured below [mean / hot_threshold] doubles back (capped
    at {!Router.virtual_points}). Dead machines keep their weight and
    are excluded from the mean. A fleet with zero mean load makes no
    change. *)
