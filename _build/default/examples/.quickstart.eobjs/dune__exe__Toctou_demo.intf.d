examples/toctou_demo.mli:
