examples/proposed_hardware_demo.mli:
