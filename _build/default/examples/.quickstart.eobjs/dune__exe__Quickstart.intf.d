examples/quickstart.mli:
