examples/cert_authority_demo.mli:
