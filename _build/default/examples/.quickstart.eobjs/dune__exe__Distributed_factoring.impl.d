examples/distributed_factoring.ml: Factoring List Machine Printf Sea_apps Sea_hw Sea_sim String Time
