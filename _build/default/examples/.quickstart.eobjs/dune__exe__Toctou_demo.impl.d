examples/toctou_demo.ml: Asm Char List Machine Pal Printf Result Sea_core Sea_hw Sea_palvm Sea_tpm Session String Toctou
