examples/rootkit_scan.ml: Attestation Machine Printf Rootkit_detector Sea_apps Sea_core Sea_crypto Sea_hw Sea_tpm Session
