examples/quickstart.ml: Attestation Machine Pal Printf Sea_core Sea_hw Sea_sim Sea_tpm Session Time
