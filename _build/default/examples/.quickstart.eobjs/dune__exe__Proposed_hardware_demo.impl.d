examples/proposed_hardware_demo.ml: Array Attestation Format Lifecycle List Machine Memctrl Pal Printf Result Sea_core Sea_hw Sea_os Sea_sim Sea_tpm Secb Slaunch_session Stats Time
