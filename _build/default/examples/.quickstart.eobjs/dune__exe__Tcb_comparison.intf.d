examples/tcb_comparison.mli:
