examples/tcb_comparison.ml: Boot List Machine Printf Sea_core Sea_crypto Sea_hw Sea_os Sea_tpm
