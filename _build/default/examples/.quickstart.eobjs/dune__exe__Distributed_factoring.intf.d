examples/distributed_factoring.mli:
