examples/rootkit_scan.mli:
