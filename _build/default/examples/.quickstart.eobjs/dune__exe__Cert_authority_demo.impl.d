examples/cert_authority_demo.ml: Cert_authority List Machine Printf Sea_apps Sea_crypto Sea_hw Sea_sim Sea_tpm String Time
