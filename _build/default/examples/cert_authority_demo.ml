(* Certificate authority with a minimal TCB (§4.1): the CA's signing key
   is generated inside a PAL, lives sealed between sessions, and signs
   CSRs without the OS ever seeing it — even though the OS stores the
   blob and drives every session.

   Run with: dune exec examples/cert_authority_demo.exe *)

open Sea_sim
open Sea_hw
open Sea_apps

let () =
  let machine = Machine.create Machine.hp_dc5750 in
  Printf.printf "== Minimal-TCB certificate authority on %s ==\n\n"
    machine.Machine.config.Machine.name;

  (* Initialize: one PAL session generates the key pair and seals the
     private half. Only the public key and the opaque blob come out. *)
  let t0 = Machine.now machine in
  let ca =
    match Cert_authority.init machine ~cpu:0 () with
    | Ok ca -> ca
    | Error e -> failwith ("CA init failed: " ^ e)
  in
  Printf.printf "CA initialized in %s (simulated)\n"
    (Time.to_string (Time.sub (Machine.now machine) t0));
  Printf.printf "  public modulus: %d bits\n"
    (Sea_crypto.Bignum.bit_length ca.Cert_authority.public.Sea_crypto.Rsa.n);
  Printf.printf "  sealed private key: %d bytes (opaque to the OS)\n\n"
    (String.length ca.Cert_authority.sealed_key);

  (* Issue certificates: each signing request is one PAL session that
     unseals the key, signs, and erases. *)
  let subjects = [ "CN=alice,O=example"; "CN=bob,O=example"; "CN=carol,O=example" ] in
  List.iter
    (fun csr ->
      let t0 = Machine.now machine in
      match Cert_authority.sign_csr machine ~cpu:0 ca ~csr with
      | Error e -> Printf.printf "  %-24s FAILED: %s\n" csr e
      | Ok signature ->
          let ok = Cert_authority.verify_certificate ca ~csr ~signature in
          Printf.printf "  %-24s signed in %-12s verification: %s\n" csr
            (Time.to_string (Time.sub (Machine.now machine) t0))
            (if ok then "OK" else "FAILED"))
    subjects;

  (* The threat model in action: a compromised OS replays the blob. *)
  Printf.printf "\nCompromised OS attempts to unseal the CA key directly:\n";
  let tpm = Machine.tpm_exn machine in
  (match
     Sea_tpm.Tpm.unseal tpm ~caller:Sea_tpm.Tpm.Software ca.Cert_authority.sealed_key
   with
  | Error e -> Printf.printf "  blocked: %s\n" e
  | Ok _ -> Printf.printf "  SECURITY FAILURE: key recovered!\n");

  (* And a forged certificate. *)
  let forged = String.make (Sea_crypto.Rsa.key_bytes ca.Cert_authority.public) '\x41' in
  Printf.printf "Forged certificate accepted: %b\n"
    (Cert_authority.verify_certificate ca ~csr:"CN=mallory" ~signature:forged)
