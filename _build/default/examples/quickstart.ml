(* Quickstart: run a minimal-TCB PAL on the simulated HP dc5750 (the
   paper's primary test machine), inspect the overhead breakdown, and
   verify an attestation — the whole public API in ~60 lines.

   Run with: dune exec examples/quickstart.exe *)

open Sea_sim
open Sea_hw
open Sea_core

let () =
  (* 1. A simulated platform: 2.2 GHz AMD X2 + Broadcom v1.2 TPM. *)
  let machine = Machine.create Machine.hp_dc5750 in
  Printf.printf "Platform: %s\n\n" machine.Machine.config.Machine.name;

  (* 2. A PAL: 4 KB of measured code whose behaviour seals a secret. *)
  let pal =
    Pal.create ~name:"quickstart" ~code_size:4096 (fun services _input ->
        let secret = "launch code: 00000000" in
        match services.Pal.seal secret with
        | Ok blob -> Ok blob
        | Error e -> Error e)
  in

  (* 3. Execute it in a Flicker-style session: the OS is suspended, the
     PAL late-launched with SKINIT, and the TPM protects its state. *)
  (match Session.execute machine ~cpu:0 pal ~input:"" with
  | Error e -> failwith e
  | Ok outcome ->
      let b = outcome.Session.breakdown in
      Printf.printf "Session complete. Overhead breakdown (cf. Figure 2):\n";
      Printf.printf "  late launch (SKINIT): %s\n" (Time.to_string b.Session.late_launch);
      Printf.printf "  TPM Seal:             %s\n" (Time.to_string b.Session.seal);
      Printf.printf "  TPM Unseal:           %s\n" (Time.to_string b.Session.unseal);
      Printf.printf "  total overhead:       %s\n\n"
        (Time.to_string (Session.overhead b));

      (* 4. Attest the execution to an external verifier. *)
      let nonce = "verifier-chosen-nonce" in
      (match Session.quote machine ~nonce with
      | Error e -> failwith e
      | Ok (quote, quote_time) ->
          Printf.printf "TPM Quote generated in %s\n" (Time.to_string quote_time);
          let evidence = Attestation.gather machine quote in
          let expectation = Attestation.expect_session_exit machine pal in
          (match
             Attestation.verify
               ~ca:(Sea_tpm.Tpm.privacy_ca_public ())
               ~nonce expectation evidence
           with
          | Ok () ->
              Printf.printf
                "Verifier: quote is genuine — PAL '%s' ran under hardware \
                 protection.\n"
                pal.Pal.name
          | Error e -> Printf.printf "Verifier: REJECTED (%s)\n" e));

      (* 5. The sealed blob is useless to the now-resumed untrusted OS. *)
      let tpm = Machine.tpm_exn machine in
      (match
         Sea_tpm.Tpm.unseal tpm ~caller:Sea_tpm.Tpm.Software outcome.Session.output
       with
      | Error e -> Printf.printf "OS tries to unseal the PAL's secret: %s. Good.\n" e
      | Ok _ -> Printf.printf "BUG: the OS unsealed the PAL's secret!\n"))
