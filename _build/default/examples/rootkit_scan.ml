(* Kernel rootkit detection with remote attestation (§4.1): the detector
   PAL measures the kernel from inside the isolated environment; its
   verdict is folded into the measurement chain, so a remote verifier can
   distinguish a genuine "clean" report from anything a compromised
   kernel could fabricate.

   Run with: dune exec examples/rootkit_scan.exe *)

open Sea_hw
open Sea_core
open Sea_apps

let scan_and_attest machine ~whitelist ~kernel_image ~nonce =
  match Rootkit_detector.check machine ~cpu:0 ~whitelist ~kernel_image with
  | Error e -> Error e
  | Ok clean -> (
      match Session.quote machine ~nonce with
      | Error e -> Error e
      | Ok (quote, _) -> Ok (clean, Attestation.gather machine quote))

(* The verifier recomputes the full PCR-17 chain it expects from a clean
   run: detector identity, then the clean-verdict extension, then the
   session exit marker. *)
let expected_clean_chain machine ~image =
  let pal = Rootkit_detector.pal () in
  let verdict_ext =
    Sea_crypto.Sha1.digest ("verdict:clean" ^ Sea_crypto.Sha256.digest image)
  in
  Sea_crypto.Sha1.digest
    (Sea_crypto.Sha1.digest (Session.expected_identity machine pal ^ verdict_ext)
    ^ Session.exit_marker)

let () =
  let image = Rootkit_detector.make_kernel_image ~seed:"vmlinuz-2.6.20-16" () in
  let whitelist = Rootkit_detector.whitelist_digest image in
  let nonce = "attest-me-7421" in

  let run label kernel_image =
    let machine = Machine.create Machine.hp_dc5750 in
    Printf.printf "-- %s --\n" label;
    match scan_and_attest machine ~whitelist ~kernel_image ~nonce with
    | Error e -> Printf.printf "  scan failed: %s\n" e
    | Ok (clean, evidence) ->
        Printf.printf "  detector verdict: %s\n" (if clean then "clean" else "COMPROMISED");
        let expected = expected_clean_chain machine ~image in
        (match
           Attestation.verify
             ~ca:(Sea_tpm.Tpm.privacy_ca_public ())
             ~nonce
             (Attestation.Dynamic_pcrs [ (17, expected) ])
             evidence
         with
        | Ok () -> Printf.printf "  remote verifier: platform attests CLEAN — trusted.\n\n"
        | Error e -> Printf.printf "  remote verifier: NOT trusted (%s).\n\n" e)
  in

  run "Healthy machine" image;
  run "Machine with a 1-byte kernel patch at offset 0x1000"
    (Rootkit_detector.infect image ~at:0x1000);

  (* A compromised kernel cannot skip the detector and lie: without a real
     late launch of the real detector, PCR 17 never contains the expected
     chain, because software cannot reset PCR 17 (§2.1.3). *)
  let machine = Machine.create Machine.hp_dc5750 in
  let tpm = Machine.tpm_exn machine in
  Printf.printf "-- Compromised kernel fabricates a report without running the PAL --\n";
  (match Sea_tpm.Tpm.hash_start tpm ~caller:Sea_tpm.Tpm.Software with
  | Error e -> Printf.printf "  attempt to reset PCR 17 from ring 0: %s\n" e
  | Ok () -> Printf.printf "  SECURITY FAILURE: software reset PCR 17\n");
  match Session.quote machine ~nonce with
  | Error e -> Printf.printf "  quote failed: %s\n" e
  | Ok (quote, _) ->
      let expected = expected_clean_chain machine ~image in
      (match
         Attestation.verify
           ~ca:(Sea_tpm.Tpm.privacy_ca_public ())
           ~nonce
           (Attestation.Dynamic_pcrs [ (17, expected) ])
           (Attestation.gather machine quote)
       with
      | Ok () -> Printf.printf "  SECURITY FAILURE: fabricated report accepted\n"
      | Error e -> Printf.printf "  remote verifier rejects the fabrication: %s\n" e)
