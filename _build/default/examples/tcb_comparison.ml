(* The paper's opening argument, executed: compare what a remote verifier
   must trust under trusted boot (§2.1.1, the layered world of §1) versus
   a late-launch SEA session — the whole boot stack versus one PAL.

   Run with: dune exec examples/tcb_comparison.exe *)

open Sea_hw
open Sea_os

let () =
  let m = Machine.create Machine.hp_dc5750 in

  (* --- World 1: trusted boot. --- *)
  Printf.printf "== Trusted boot (the layered TCB) ==\n";
  let stack = Boot.standard_stack () in
  let log =
    match Boot.boot m stack with Ok l -> l | Error e -> failwith e
  in
  Printf.printf "Measured boot chain:\n";
  List.iter
    (fun e ->
      Printf.printf "  PCR %d <- %-16s\n" e.Sea_tpm.Event_log.pcr_index
        e.Sea_tpm.Event_log.description)
    (Sea_tpm.Event_log.events log);
  let nonce = "tb-demo" in
  let q = match Boot.attest m ~nonce with Ok q -> q | Error e -> failwith e in
  let whitelist =
    List.map (fun c -> (c.Boot.name, Sea_crypto.Sha1.digest c.Boot.image)) stack
  in
  (match
     Boot.verify
       ~ca:(Sea_tpm.Tpm.privacy_ca_public ())
       ~nonce
       ~log:(Sea_tpm.Event_log.events log)
       ~known_good:whitelist
       (Sea_core.Attestation.gather m q)
   with
  | Ok () ->
      Printf.printf
        "Verifier accepted — but only after judging ALL %d components.\n"
        (Boot.tcb_entries log)
  | Error e -> Printf.printf "Verifier rejected: %s\n" e);

  (* One kernel module update and the attestation breaks. *)
  let updated =
    List.map
      (fun c -> if c.Boot.name = "kernel modules" then Boot.compromise c else c)
      stack
  in
  let log2 = match Boot.boot m updated with Ok l -> l | Error e -> failwith e in
  let q2 = match Boot.attest m ~nonce with Ok q -> q | Error e -> failwith e in
  (match
     Boot.verify
       ~ca:(Sea_tpm.Tpm.privacy_ca_public ())
       ~nonce
       ~log:(Sea_tpm.Event_log.events log2)
       ~known_good:whitelist
       (Sea_core.Attestation.gather m q2)
   with
  | Ok () -> Printf.printf "unexpected acceptance\n"
  | Error e ->
      Printf.printf
        "After one routine module update the platform is untrusted again:\n  %s\n\n" e);

  (* --- World 2: a SEA session. --- *)
  Printf.printf "== Late launch (the minimal TCB) ==\n";
  let pal = Sea_core.Generic.pal_gen () in
  (match Sea_core.Session.execute m ~cpu:0 pal ~input:"" with
  | Error e -> failwith e
  | Ok _ -> ());
  let nonce = "ll-demo" in
  let q3, _ =
    match Sea_core.Session.quote m ~nonce with Ok r -> r | Error e -> failwith e
  in
  (match
     Sea_core.Attestation.verify
       ~ca:(Sea_tpm.Tpm.privacy_ca_public ())
       ~nonce
       (Sea_core.Attestation.expect_session_exit m pal)
       (Sea_core.Attestation.gather m q3)
   with
  | Ok () ->
      Printf.printf
        "Verifier accepted after judging exactly 1 measurement: the %d-byte PAL.\n"
        (Sea_core.Pal.code_size pal)
  | Error e -> Printf.printf "rejected: %s\n" e);
  Printf.printf
    "The kernel, modules, bootloader and BIOS — compromised or not — are\n\
     simply absent from the trust decision: that is the paper's minimal TCB.\n"
