(* Distributed factoring (§4.1): a long-running computation split into
   PAL sessions, its intermediate state sealed between them — the
   SETI@Home-style workload whose per-chunk Seal/Unseal cost (Figure 2's
   PAL Use bar, >1 s of overhead per chunk) motivates the paper's
   hardware recommendations.

   Run with: dune exec examples/distributed_factoring.exe *)

open Sea_sim
open Sea_hw
open Sea_apps

let () =
  let machine = Machine.create Machine.hp_dc5750 in
  let n = 922_351 * 920_419 in
  Printf.printf "Factoring n = %d in sealed-state chunks on %s\n\n" n
    machine.Machine.config.Machine.name;

  let range = 250_000 in
  let sessions = ref 0 in
  let t_start = Machine.now machine in
  let rec drive progress =
    incr sessions;
    match progress with
    | Factoring.Factored factors -> factors
    | Factoring.Running blob ->
        Printf.printf "  session %2d: sealed %4d bytes of intermediate state (t = %s)\n"
          !sessions (String.length blob)
          (Time.to_string (Time.sub (Machine.now machine) t_start));
        (match Factoring.step machine ~cpu:0 ~blob ~range with
        | Ok next -> drive next
        | Error e -> failwith e)
  in
  let first =
    match Factoring.start machine ~cpu:0 ~n ~range with
    | Ok p -> p
    | Error e -> failwith e
  in
  let factors = drive first in
  let elapsed = Time.sub (Machine.now machine) t_start in
  Printf.printf "\n%d = %s  (%d sessions, %s simulated)\n" n
    (String.concat " * " (List.map string_of_int factors))
    !sessions (Time.to_string elapsed);

  (* The punchline the paper measures: almost all of that time is TPM
     overhead, not factoring. *)
  let per_session = Time.to_ms elapsed /. float_of_int !sessions in
  Printf.printf
    "Per session: %.0f ms, almost all of it SKINIT + TPM Unseal/Seal \
     overhead rather than factoring (Figure 2, PAL Use pattern).\n"
    per_session;
  Printf.printf
    "The paper's fix: with SLAUNCH + sePCRs, the same state persistence\n\
     costs a VM-exit-scale context switch instead (see \
     examples/proposed_hardware_demo.exe).\n"
