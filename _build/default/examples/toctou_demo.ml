(* Footnote 3 of the paper, live: load-time attestation has a
   time-of-check/time-of-use problem. A PAL whose code is real PALVM
   bytecode is measured by SKINIT, then rewrites itself when fed a
   crafted input — and the attestation cannot tell.

   Run with: dune exec examples/toctou_demo.exe *)

open Sea_hw
open Sea_core
open Sea_palvm

let run_and_quote pal input =
  let m = Machine.create Machine.hp_dc5750 in
  match Session.execute m ~cpu:0 pal ~input with
  | Error e -> failwith e
  | Ok outcome ->
      let quote, _ = Result.get_ok (Session.quote m ~nonce:"demo") in
      (outcome.Session.output, quote.Sea_tpm.Tpm.selection)

let hex s =
  String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
                      (List.init 4 (String.get s)))

let () =
  Printf.printf "The access gate is %d bytes of real PALVM bytecode:\n\n"
    (Pal.code_size (Toctou.vulnerable_gate ()));
  print_string (Asm.disassemble (Toctou.vulnerable_gate ()).Pal.code);

  Printf.printf "\n-- benign request --\n";
  let out1, pcrs1 = run_and_quote (Toctou.vulnerable_gate ()) Toctou.benign_input in
  Printf.printf "gate says: %S; attested PCR17 prefix: %s...\n" out1
    (hex (List.assoc 17 pcrs1));

  Printf.printf "\n-- exploit: input overflows the 16-byte buffer into the code --\n";
  let out2, pcrs2 = run_and_quote (Toctou.vulnerable_gate ()) Toctou.exploit_input in
  Printf.printf "gate says: %S; attested PCR17 prefix: %s...\n" out2
    (hex (List.assoc 17 pcrs2));
  Printf.printf
    "The decision flipped, the attestation DID NOT: %b — the measurement\n\
     was taken before the input arrived (footnote 3's TOCTOU).\n"
    (pcrs1 = pcrs2);

  Printf.printf "\n-- response 1: fix the bug (bound the copy) --\n";
  let out3, _ = run_and_quote (Toctou.hardened_gate ()) Toctou.exploit_input in
  Printf.printf "hardened gate says: %S\n" out3;

  Printf.printf "\n-- response 2: extend the measurement chain with the input --\n";
  let exploit = Toctou.exploit_for ~prologue_insns:6 in
  let out4, pcrs4 = run_and_quote (Toctou.measured_gate ()) exploit in
  let out5, pcrs5 = run_and_quote (Toctou.measured_gate ()) Toctou.benign_input in
  Printf.printf "measured gate says: %S (still exploited at runtime!)\n" out4;
  Printf.printf
    "but now the attestations differ (%b): the verifier sees the malicious\n\
     input in the PCR chain and rejects the run.\n"
    (pcrs4 <> pcrs5);
  ignore out5
