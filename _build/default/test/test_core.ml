(* Core SEA tests: PAL construction and measurement, the Figure 6
   lifecycle state machine (with a qcheck exploration of illegal paths),
   current-hardware sessions (Figure 2 anchors, sealed state across
   sessions, exit-marker semantics, cleanup on failure), proposed-hardware
   sessions (slicing, preemption, kill, sePCR attestation), the generic
   Gen/Use PALs, and the external verifier. *)

open Sea_sim
open Sea_hw
open Sea_core

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let ok = function Ok x -> x | Error e -> Alcotest.fail e
let expect_error = function Error _ -> () | Ok _ -> Alcotest.fail "expected error"

let dc5750 () = Machine.create (Machine.low_fidelity Machine.hp_dc5750)
let tep () = Machine.create (Machine.low_fidelity Machine.intel_tep)
let proposed () =
  Machine.create (Machine.low_fidelity (Machine.proposed_variant Machine.hp_dc5750))

(* --- Pal --- *)

let test_pal_measurement_stability () =
  let p1 = Pal.create ~name:"x" (fun _ _ -> Ok "") in
  let p2 = Pal.create ~name:"x" (fun _ _ -> Ok "ignored") in
  checks "same name+size = same measurement" (Pal.measurement p1) (Pal.measurement p2);
  let p3 = Pal.create ~name:"y" (fun _ _ -> Ok "") in
  checkb "different name differs" true (Pal.measurement p1 <> Pal.measurement p3);
  let p4 = Pal.create ~name:"x" ~version:2 (fun _ _ -> Ok "") in
  checkb "version bump changes measurement" true (Pal.measurement p1 <> Pal.measurement p4)

let test_pal_size_limits () =
  Alcotest.check_raises "zero size"
    (Invalid_argument "Pal.create: code size must be in (0, 64 KB]") (fun () ->
      ignore (Pal.create ~name:"z" ~code_size:0 (fun _ _ -> Ok "")));
  Alcotest.check_raises "too large"
    (Invalid_argument "Pal.create: code size must be in (0, 64 KB]") (fun () ->
      ignore (Pal.create ~name:"z" ~code_size:(65 * 1024) (fun _ _ -> Ok "")));
  let p = Pal.create ~name:"p" ~code_size:5000 (fun _ _ -> Ok "") in
  checki "code size" 5000 (Pal.code_size p);
  checki "pages" 2 (Pal.pages_needed p)

(* --- Lifecycle --- *)

let test_lifecycle_legal_paths () =
  let open Lifecycle in
  let path s evs = List.fold_left (fun s e -> ok (step s e)) s evs in
  checkb "launch-run-exit" true
    (path Start [ Ev_slaunch_first; Ev_protected; Ev_measured; Ev_sfree ] = Done);
  checkb "with suspensions" true
    (path Start
       [
         Ev_slaunch_first; Ev_protected; Ev_measured; Ev_yield; Ev_slaunch_resume;
         Ev_yield; Ev_slaunch_resume; Ev_sfree;
       ]
    = Done);
  checkb "killed while suspended" true
    (path Start [ Ev_slaunch_first; Ev_protected; Ev_measured; Ev_yield; Ev_skill ] = Done);
  checkb "terminal" true (is_terminal Done) ;
  checkb "not terminal" false (is_terminal Execute)

let test_lifecycle_illegal_transitions () =
  let open Lifecycle in
  expect_error (step Start Ev_sfree);
  expect_error (step Start Ev_slaunch_resume);
  expect_error (step Execute Ev_slaunch_first);
  expect_error (step Execute Ev_skill);
  expect_error (step Suspend Ev_sfree);
  expect_error (step Done Ev_slaunch_resume)

let prop_lifecycle_done_is_absorbing =
  let open Lifecycle in
  let arb_event =
    QCheck.oneofl
      [ Ev_slaunch_first; Ev_protected; Ev_measured; Ev_slaunch_resume; Ev_yield;
        Ev_sfree; Ev_skill ]
  in
  QCheck.Test.make ~name:"no event sequence escapes Done" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 0 20) arb_event) (fun evs ->
      let final =
        List.fold_left
          (fun s e -> match step s e with Ok s' -> s' | Error _ -> s)
          Start evs
      in
      (* Reaching Done is fine; the property is that once there, nothing
         moves you out. *)
      if final = Done then
        List.for_all (fun e -> Result.is_error (step Done e))
          [ Ev_slaunch_first; Ev_protected; Ev_measured; Ev_slaunch_resume; Ev_yield;
            Ev_sfree; Ev_skill ]
      else true)

(* --- Session (current hardware) --- *)

let test_session_runs_behavior () =
  let m = dc5750 () in
  let pal =
    Pal.create ~name:"echo" (fun _services input -> Ok ("echo:" ^ input))
  in
  let outcome = ok (Session.execute m ~cpu:0 pal ~input:"hi") in
  checks "output" "echo:hi" outcome.Session.output;
  checks "measurement" (Pal.measurement pal) outcome.Session.measurement;
  checki "identity PCR on AMD" 17 outcome.Session.identity_pcr

let test_session_intel_uses_pcr18 () =
  let m = tep () in
  let pal = Pal.create ~name:"intel-echo" (fun _ i -> Ok i) in
  let outcome = ok (Session.execute m ~cpu:0 pal ~input:"x") in
  checki "identity PCR on Intel" 18 outcome.Session.identity_pcr

let test_session_restores_platform () =
  let m = dc5750 () in
  let pal = Pal.create ~name:"restore" (fun _ _ -> Ok "") in
  ignore (ok (Session.execute m ~cpu:0 pal ~input:""));
  Array.iter
    (fun c -> checkb "cores back to legacy" true (c.Cpu.status = Cpu.Legacy))
    m.Machine.cpus;
  checkb "interrupts back on" true (Machine.cpu m 0).Cpu.interrupts_enabled;
  (* Pages were freed: we can immediately run another 64 KB session. *)
  ignore (ok (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:""))

let test_session_behavior_failure_cleans_up () =
  let m = dc5750 () in
  let pal = Pal.create ~name:"failing" (fun _ _ -> Error "boom") in
  (match Session.execute m ~cpu:0 pal ~input:"" with
  | Error e -> checkb "error propagated" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected failure");
  Array.iter
    (fun c -> checkb "cores recovered" true (c.Cpu.status = Cpu.Legacy))
    m.Machine.cpus

let test_session_no_tpm_fails () =
  let m = Machine.create Machine.tyan_n3600r in
  expect_error (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"")

let test_session_figure2_gen_anchor () =
  let m = dc5750 () in
  let outcome = ok (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"") in
  let b = outcome.Session.breakdown in
  checkb "SKINIT ~177.5 ms" true (abs_float (Time.to_ms b.Session.late_launch -. 177.5) < 3.5);
  checkb "Seal ~20 ms" true (abs_float (Time.to_ms b.Session.seal -. 20.0) < 2.);
  checkb "no unseal in Gen" true (b.Session.unseal = Time.zero);
  let total = Time.to_ms (Session.overhead b) in
  checkb (Printf.sprintf "Gen overhead ~200 ms (got %.1f)" total) true
    (total > 190. && total < 215.)

let test_session_figure2_use_anchor () =
  let m = dc5750 () in
  let gen = ok (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"") in
  let use =
    ok (Session.execute m ~cpu:0 (Generic.pal_use ()) ~input:gen.Session.output)
  in
  let b = use.Session.breakdown in
  checkb "Unseal ~905 ms" true (abs_float (Time.to_ms b.Session.unseal -. 905.) < 25.);
  let total = Time.to_ms (Session.overhead b) in
  checkb (Printf.sprintf "Use overhead > 1 s (got %.1f)" total) true
    (total > 1000. && total < 1200.)

let test_session_state_across_sessions () =
  (* The distributed-computing pattern: seal, unseal+reseal, repeatedly. *)
  let m = dc5750 () in
  let blob0 = (ok (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"")).Session.output in
  let blob1 =
    (ok (Session.execute m ~cpu:0 (Generic.pal_use ()) ~input:blob0)).Session.output
  in
  let blob2 =
    (ok (Session.execute m ~cpu:0 (Generic.pal_use ()) ~input:blob1)).Session.output
  in
  checkb "blobs evolve" true (blob0 <> blob1 && blob1 <> blob2)

let test_session_exit_marker_blocks_os_unseal () =
  let m = dc5750 () in
  let blob = (ok (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"")).Session.output in
  (* After the session the exit marker is in PCR 17: the OS cannot unseal. *)
  let tpm = Machine.tpm_exn m in
  (match Sea_tpm.Tpm.unseal tpm ~caller:Sea_tpm.Tpm.Software blob with
  | Error "PCR policy mismatch" -> ()
  | Error e -> Alcotest.fail ("unexpected error: " ^ e)
  | Ok _ -> Alcotest.fail "OS unsealed PAL state!");
  checks "PCR17 = identity + exit marker"
    (Session.expected_identity_after_exit m (Generic.pal_gen ()))
    (Sea_tpm.Tpm.pcr_read tpm 17)

let test_session_wrong_pal_cannot_unseal () =
  let m = dc5750 () in
  let blob = (ok (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"")).Session.output in
  (* A different PAL (different measurement) tries to unseal the blob. *)
  let thief =
    Pal.create ~name:"thief" ~code_size:(64 * 1024) (fun services input ->
        match services.Pal.unseal input with
        | Ok secret -> Ok ("stolen:" ^ secret)
        | Error e -> Error e)
  in
  (match Session.execute m ~cpu:0 thief ~input:blob with
  | Error e -> checkb "unseal denied" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "thief PAL unsealed foreign state")

let test_session_quote_and_verify () =
  let m = dc5750 () in
  let pal = Generic.pal_gen () in
  ignore (ok (Session.execute m ~cpu:0 pal ~input:""));
  let nonce = "verifier-nonce-1" in
  let q, d = ok (Session.quote m ~nonce) in
  checkb "quote ~953 ms on Broadcom" true (abs_float (Time.to_ms d -. 953.) < 20.);
  let ev = Attestation.gather m q in
  ok
    (Attestation.verify ~ca:(Sea_tpm.Tpm.privacy_ca_public ()) ~nonce
       (Attestation.expect_session_exit m pal) ev);
  (* Wrong expectation (different PAL) must fail. *)
  let other = Pal.create ~name:"other" (fun _ _ -> Ok "") in
  expect_error
    (Attestation.verify ~ca:(Sea_tpm.Tpm.privacy_ca_public ()) ~nonce
       (Attestation.expect_session_exit m other) ev);
  (* Stale nonce must fail. *)
  expect_error
    (Attestation.verify ~ca:(Sea_tpm.Tpm.privacy_ca_public ()) ~nonce:"old"
       (Attestation.expect_session_exit m pal) ev)


let test_session_breakdown_accounting () =
  (* The breakdown components must tile the total exactly. *)
  let m = dc5750 () in
  let check_outcome o =
    let b = o.Session.breakdown in
    let sum =
      Time.add b.Session.late_launch
        (Time.add b.Session.seal
           (Time.add b.Session.unseal (Time.add b.Session.compute b.Session.other)))
    in
    checkb "components tile the total" true (Time.compare sum b.Session.total = 0)
  in
  let gen = ok (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"") in
  check_outcome gen;
  check_outcome (ok (Session.execute m ~cpu:0 (Generic.pal_use ()) ~input:gen.Session.output))

(* --- Slaunch_session (proposed hardware) --- *)

let worker ?(compute = Time.ms 20.) () =
  Pal.create ~name:"worker" ~code_size:8192 ~compute_time:compute (fun services _ ->
      services.Pal.seal "worker state")

let test_slaunch_session_single_slice () =
  let m = proposed () in
  let s = ok (Slaunch_session.start m ~cpu:0 (worker ()) ~input:"") in
  checkb "executing" true (Slaunch_session.state s = Lifecycle.Execute);
  (match ok (Slaunch_session.run_slice s ~cpu:0 ()) with
  | `Finished -> ()
  | `Yielded -> Alcotest.fail "should finish in one unbounded slice");
  checkb "done" true (Slaunch_session.state s = Lifecycle.Done);
  checkb "output available" true (Slaunch_session.output s <> None);
  Slaunch_session.release s

let test_slaunch_session_preemption () =
  let m = proposed () in
  let s =
    ok
      (Slaunch_session.start m ~cpu:0 ~preemption_timer:(Time.ms 5.)
         (worker ~compute:(Time.ms 18.) ())
         ~input:"")
  in
  let yields = ref 0 in
  let rec drive cpu =
    match ok (Slaunch_session.run_slice s ~cpu ()) with
    | `Finished -> ()
    | `Yielded ->
        incr yields;
        checkb "suspended" true (Slaunch_session.state s = Lifecycle.Suspend);
        (* Resume on alternating CPUs: §5.3.1 allows migration. *)
        let next = 1 - cpu in
        ok (Slaunch_session.resume s ~cpu:next);
        drive next
  in
  drive 0;
  checki "18 ms / 5 ms slices = 3 yields" 3 !yields;
  Slaunch_session.release s

let test_slaunch_session_kill () =
  let m = proposed () in
  let s =
    ok
      (Slaunch_session.start m ~cpu:0 ~preemption_timer:(Time.ms 1.)
         (worker ~compute:(Time.ms 10.) ())
         ~input:"")
  in
  (match ok (Slaunch_session.run_slice s ~cpu:0 ()) with
  | `Yielded -> ()
  | `Finished -> Alcotest.fail "should have been preempted");
  checkb "kill works on suspended PAL" true (Slaunch_session.kill s = Ok ());
  checkb "done after kill" true (Slaunch_session.state s = Lifecycle.Done);
  checkb "no output from killed PAL" true (Slaunch_session.output s = None);
  Slaunch_session.release s

let test_slaunch_session_kill_requires_suspend () =
  let m = proposed () in
  let s = ok (Slaunch_session.start m ~cpu:0 (worker ()) ~input:"") in
  expect_error (Slaunch_session.kill s);
  ignore (ok (Slaunch_session.run_slice s ~cpu:0 ()));
  Slaunch_session.release s

let test_slaunch_session_sepcr_attestation () =
  let m = proposed () in
  let pal = worker () in
  let s = ok (Slaunch_session.start m ~cpu:1 pal ~input:"") in
  ignore (ok (Slaunch_session.run_slice s ~cpu:1 ()));
  let nonce = "np" in
  let q, _ = ok (Slaunch_session.quote_after_exit s ~nonce) in
  let ev = Attestation.gather m q in
  ok
    (Attestation.verify ~ca:(Sea_tpm.Tpm.privacy_ca_public ()) ~nonce
       (Attestation.expect_slaunch_exit pal) ev);
  Slaunch_session.release s

let test_slaunch_session_sealed_state_across_instances () =
  (* A PAL seals state in one SLAUNCH session; a later instance of the
     same PAL (new SECB, new sePCR) unseals it — challenge 4 end-to-end. *)
  let m = proposed () in
  let keeper round =
    Pal.create ~name:"state-keeper" ~code_size:8192 (fun services input ->
        if round = 0 then services.Pal.seal "round-zero-state"
        else
          match services.Pal.unseal input with
          | Ok state -> Ok ("recovered:" ^ state)
          | Error e -> Error e)
  in
  let s0 = ok (Slaunch_session.start m ~cpu:0 (keeper 0) ~input:"") in
  ignore (ok (Slaunch_session.run_slice s0 ~cpu:0 ()));
  let blob = Option.get (Slaunch_session.output s0) in
  ignore (Slaunch_session.quote_after_exit s0 ~nonce:"n");
  Slaunch_session.release s0;
  let s1 = ok (Slaunch_session.start m ~cpu:1 (keeper 1) ~input:blob) in
  ignore (ok (Slaunch_session.run_slice s1 ~cpu:1 ()));
  checkb "state recovered" true
    (Slaunch_session.output s1 = Some "recovered:round-zero-state");
  Slaunch_session.release s1

let test_slaunch_session_requires_proposed_hw () =
  let m = dc5750 () in
  expect_error (Slaunch_session.start m ~cpu:0 (worker ()) ~input:"")

let test_slaunch_concurrent_pals () =
  (* Two PALs suspended/executing at once on different cores — impossible
     on current hardware, the core win of the proposal. *)
  let m = proposed () in
  let s1 =
    ok
      (Slaunch_session.start m ~cpu:0 ~preemption_timer:(Time.ms 2.)
         (worker ~compute:(Time.ms 6.) ()) ~input:"")
  in
  ignore (ok (Slaunch_session.run_slice s1 ~cpu:0 ()));
  (* s1 now suspended; start s2 while s1 is mid-flight. *)
  let s2 =
    ok
      (Slaunch_session.start m ~cpu:1 ~preemption_timer:(Time.ms 2.)
         (worker ~compute:(Time.ms 4.) ()) ~input:"")
  in
  ignore (ok (Slaunch_session.run_slice s2 ~cpu:1 ()));
  (* Interleave to completion. *)
  let rec finish s cpu =
    match ok (Slaunch_session.run_slice s ~cpu ()) with
    | `Finished -> ()
    | `Yielded ->
        ok (Slaunch_session.resume s ~cpu);
        finish s cpu
  in
  ok (Slaunch_session.resume s1 ~cpu:0);
  finish s1 0;
  ok (Slaunch_session.resume s2 ~cpu:1);
  finish s2 1;
  checkb "both done" true
    (Slaunch_session.state s1 = Lifecycle.Done && Slaunch_session.state s2 = Lifecycle.Done);
  Slaunch_session.release s1;
  Slaunch_session.release s2

(* --- Generic PALs --- *)

let test_generic_shared_identity () =
  checks "gen and use share a measurement"
    (Pal.measurement (Generic.pal_gen ()))
    (Pal.measurement (Generic.pal_use ()))

let test_generic_use_no_reseal () =
  let m = dc5750 () in
  let blob = (ok (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"")).Session.output in
  let out =
    (ok (Session.execute m ~cpu:0 (Generic.pal_use ~reseal:false ()) ~input:blob))
      .Session.output
  in
  checki "digest output" 20 (String.length out)

let () =
  Alcotest.run "core"
    [
      ( "pal",
        [
          Alcotest.test_case "measurement stability" `Quick test_pal_measurement_stability;
          Alcotest.test_case "size limits" `Quick test_pal_size_limits;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "legal paths" `Quick test_lifecycle_legal_paths;
          Alcotest.test_case "illegal transitions" `Quick test_lifecycle_illegal_transitions;
          QCheck_alcotest.to_alcotest prop_lifecycle_done_is_absorbing;
        ] );
      ( "session",
        [
          Alcotest.test_case "runs behaviour" `Quick test_session_runs_behavior;
          Alcotest.test_case "Intel identity PCR" `Quick test_session_intel_uses_pcr18;
          Alcotest.test_case "restores platform" `Quick test_session_restores_platform;
          Alcotest.test_case "failure cleanup" `Quick test_session_behavior_failure_cleans_up;
          Alcotest.test_case "requires TPM" `Quick test_session_no_tpm_fails;
          Alcotest.test_case "Figure 2: PAL Gen anchor" `Quick test_session_figure2_gen_anchor;
          Alcotest.test_case "Figure 2: PAL Use anchor" `Quick test_session_figure2_use_anchor;
          Alcotest.test_case "state across sessions" `Quick test_session_state_across_sessions;
          Alcotest.test_case "exit marker blocks OS unseal" `Quick
            test_session_exit_marker_blocks_os_unseal;
          Alcotest.test_case "wrong PAL cannot unseal" `Quick test_session_wrong_pal_cannot_unseal;
          Alcotest.test_case "quote and verify" `Quick test_session_quote_and_verify;
          Alcotest.test_case "breakdown accounting" `Quick test_session_breakdown_accounting;
        ] );
      ( "slaunch-session",
        [
          Alcotest.test_case "single slice" `Quick test_slaunch_session_single_slice;
          Alcotest.test_case "preemption slicing" `Quick test_slaunch_session_preemption;
          Alcotest.test_case "kill" `Quick test_slaunch_session_kill;
          Alcotest.test_case "kill requires suspend" `Quick test_slaunch_session_kill_requires_suspend;
          Alcotest.test_case "sePCR attestation" `Quick test_slaunch_session_sepcr_attestation;
          Alcotest.test_case "sealed state across instances" `Quick
            test_slaunch_session_sealed_state_across_instances;
          Alcotest.test_case "requires proposed hw" `Quick test_slaunch_session_requires_proposed_hw;
          Alcotest.test_case "concurrent PALs" `Quick test_slaunch_concurrent_pals;
        ] );
      ( "generic",
        [
          Alcotest.test_case "shared identity" `Quick test_generic_shared_identity;
          Alcotest.test_case "use without reseal" `Quick test_generic_use_no_reseal;
        ] );
    ]
