(* Model-based testing of the SLAUNCH session machinery: random command
   sequences run against both the real implementation (full machine, TPM,
   access-control table) and a tiny reference model of Figure 6 + the §6
   multicore rules. The two must agree on every command's outcome and on
   the lifecycle state throughout — so no interleaving of slice / resume /
   kill / join / leave / quote can drive the hardware model somewhere the
   paper's state machine does not allow. *)

open Sea_sim
open Sea_hw
open Sea_core

(* --- commands --- *)

type cmd =
  | Slice of int (* budget in ms, 1..20 *)
  | Resume of int (* cpu 0..3 *)
  | Kill
  | Join of int
  | Leave of int
  | Quote

let cmd_to_string = function
  | Slice b -> Printf.sprintf "Slice(%dms)" b
  | Resume c -> Printf.sprintf "Resume(cpu%d)" c
  | Kill -> "Kill"
  | Join c -> Printf.sprintf "Join(cpu%d)" c
  | Leave c -> Printf.sprintf "Leave(cpu%d)" c
  | Quote -> "Quote"

let gen_cmd =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun b -> Slice b) (int_range 1 20));
        (3, map (fun c -> Resume c) (int_range 0 3));
        (1, return Kill);
        (2, map (fun c -> Join c) (int_range 0 3));
        (2, map (fun c -> Leave c) (int_range 0 3));
        (1, return Quote);
      ])

let arb_cmds =
  QCheck.make
    ~print:(fun cmds -> String.concat "; " (List.map cmd_to_string cmds))
    QCheck.Gen.(list_size (int_range 1 25) gen_cmd)

(* --- reference model --- *)

type model = {
  mutable m_state : Lifecycle.state;
  mutable m_remaining : int; (* ms of work left *)
  mutable m_primary : int;
  mutable m_joined : int list;
  mutable m_exited_clean : bool; (* SFREE (not SKILL) *)
  mutable m_quoted : bool;
}

let model_apply model cmd =
  (* Returns whether the command should succeed, and updates the model. *)
  match cmd with
  | Slice budget ->
      if model.m_state <> Lifecycle.Execute then false
      else begin
        let rate = 1 + List.length model.m_joined in
        let progress = budget * rate in
        if progress < model.m_remaining then begin
          model.m_remaining <- model.m_remaining - progress;
          model.m_joined <- [];
          model.m_state <- Lifecycle.Suspend;
          true
        end
        else begin
          model.m_remaining <- 0;
          model.m_joined <- [];
          model.m_state <- Lifecycle.Done;
          model.m_exited_clean <- true;
          true
        end
      end
  | Resume cpu ->
      if model.m_state = Lifecycle.Suspend then begin
        model.m_state <- Lifecycle.Execute;
        model.m_primary <- cpu;
        true
      end
      else false
  | Kill ->
      if model.m_state = Lifecycle.Suspend then begin
        model.m_state <- Lifecycle.Done;
        true
      end
      else false
  | Join cpu ->
      if
        model.m_state = Lifecycle.Execute
        && cpu <> model.m_primary
        && not (List.mem cpu model.m_joined)
      then begin
        model.m_joined <- cpu :: model.m_joined;
        true
      end
      else false
  | Leave cpu ->
      if List.mem cpu model.m_joined then begin
        model.m_joined <- List.filter (fun c -> c <> cpu) model.m_joined;
        true
      end
      else false
  | Quote ->
      if model.m_state = Lifecycle.Done && model.m_exited_clean && not model.m_quoted
      then begin
        model.m_quoted <- true;
        true
      end
      else false

(* --- the property --- *)

let work_ms = 60

let run_real session cmd =
  match cmd with
  | Slice budget -> (
      match
        Slaunch_session.run_slice session ~cpu:0 ~budget:(Time.ms (float_of_int budget)) ()
      with
      | Ok _ -> true
      | Error _ -> false)
  | Resume cpu -> Result.is_ok (Slaunch_session.resume session ~cpu)
  | Kill -> Result.is_ok (Slaunch_session.kill session)
  | Join cpu -> Result.is_ok (Slaunch_session.join session ~cpu)
  | Leave cpu -> Result.is_ok (Slaunch_session.leave session ~cpu)
  | Quote -> Result.is_ok (Slaunch_session.quote_after_exit session ~nonce:"model")

(* The real run_slice is driven from the primary CPU; after a resume the
   primary may have moved, so Slice must target the current primary. The
   model tracks it; we thread it through. *)
let run_real_tracked session primary cmd =
  match cmd with
  | Slice budget -> (
      match
        Slaunch_session.run_slice session ~cpu:primary
          ~budget:(Time.ms (float_of_int budget)) ()
      with
      | Ok _ -> true
      | Error _ -> false)
  | _ -> run_real session cmd

let prop_model_agreement =
  QCheck.Test.make ~name:"SLAUNCH sessions agree with the Figure 6 model"
    ~count:120 arb_cmds (fun cmds ->
      let cfg = Machine.low_fidelity (Machine.proposed_variant Machine.hp_dc5750) in
      let m = Machine.create { cfg with Machine.cpu_count = 4 } in
      let pal =
        Pal.create ~name:"model-pal" ~code_size:4096
          ~compute_time:(Time.ms (float_of_int work_ms)) (fun _ _ -> Ok "out")
      in
      match Slaunch_session.start m ~cpu:0 pal ~input:"" with
      | Error _ -> false
      | Ok session ->
          let model =
            {
              m_state = Lifecycle.Execute;
              m_remaining = work_ms;
              m_primary = 0;
              m_joined = [];
              m_exited_clean = false;
              m_quoted = false;
            }
          in
          let ok_so_far =
            List.for_all
              (fun cmd ->
                let primary = model.m_primary in
                let expected = model_apply model cmd in
                let actual = run_real_tracked session primary cmd in
                let states_agree = Slaunch_session.state session = model.m_state in
                let workers_agree =
                  Slaunch_session.worker_count session
                  = (if model.m_state = Lifecycle.Execute then
                       1 + List.length model.m_joined
                     else 0)
                in
                expected = actual && states_agree && workers_agree)
              cmds
          in
          Slaunch_session.release session;
          ok_so_far)

(* A second, adversarial flavour: whatever the command sequence, the PAL's
   pages are never readable by a non-member CPU or by DMA. *)
let prop_isolation_invariant =
  QCheck.Test.make ~name:"no command sequence opens a PAL's pages" ~count:80
    arb_cmds (fun cmds ->
      let cfg = Machine.low_fidelity (Machine.proposed_variant Machine.hp_dc5750) in
      let m = Machine.create { cfg with Machine.cpu_count = 4 } in
      let pal =
        Pal.create ~name:"inv-pal" ~code_size:4096
          ~compute_time:(Time.ms (float_of_int work_ms)) (fun _ _ -> Ok "")
      in
      match Slaunch_session.start m ~cpu:0 pal ~input:"" with
      | Error _ -> false
      | Ok session ->
          let model =
            {
              m_state = Lifecycle.Execute;
              m_remaining = work_ms;
              m_primary = 0;
              m_joined = [];
              m_exited_clean = false;
              m_quoted = false;
            }
          in
          let page = List.nth (Slaunch_session.secb session).Secb.pages 1 in
          let holds = ref true in
          List.iter
            (fun cmd ->
              let primary = model.m_primary in
              ignore (model_apply model cmd);
              ignore (run_real_tracked session primary cmd);
              (* While the PAL is live (not Done), only member CPUs may
                 read; DMA never may. *)
              if model.m_state <> Lifecycle.Done then begin
                let members = model.m_primary :: model.m_joined in
                for c = 0 to 3 do
                  let allowed =
                    model.m_state = Lifecycle.Execute && List.mem c members
                  in
                  let got =
                    Result.is_ok
                      (Memctrl.read m.Machine.memctrl (Memctrl.Cpu c) ~page ~off:0
                         ~len:4)
                  in
                  if got <> allowed then holds := false
                done;
                if
                  Result.is_ok
                    (Memctrl.read m.Machine.memctrl (Memctrl.Device "dma") ~page
                       ~off:0 ~len:4)
                then holds := false
              end)
            cmds;
          Slaunch_session.release session;
          !holds)

let () =
  Alcotest.run "model"
    [
      ( "slaunch-session",
        [
          QCheck_alcotest.to_alcotest prop_model_agreement;
          QCheck_alcotest.to_alcotest prop_isolation_invariant;
        ] );
    ]
