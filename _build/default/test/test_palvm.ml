(* PALVM tests: ISA encode/decode, the assembler, the interpreter (and
   its service bridge through real SEA sessions), and the footnote-3
   TOCTOU demonstration — including the property that makes it dangerous:
   the attestation of the vulnerable gate is IDENTICAL for the benign and
   the exploited run. *)

open Sea_hw
open Sea_core
open Sea_palvm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let ok = function Ok x -> x | Error e -> Alcotest.fail e
let expect_error = function Error _ -> () | Ok _ -> Alcotest.fail "expected error"

(* Null services for pure-VM tests. *)
let null_services =
  {
    Pal.seal = (fun s -> Ok ("SEALED:" ^ s));
    unseal =
      (fun s ->
        if String.length s > 7 && String.sub s 0 7 = "SEALED:" then
          Ok (String.sub s 7 (String.length s - 7))
        else Error "bad blob");
    get_random = (fun n -> String.make n 'r');
    extend_measurement = (fun _ -> ());
    machine_name = "null";
  }

let run_ops ?(input = "") ops =
  Vm.run ~code:(Isa.encode_program ops) ~services:null_services ~input ()

(* --- ISA --- *)

let all_ops =
  Isa.
    [
      Halt; Loadi (3, 0xDEAD); Mov (1, 2); Add (0, 1, 2); Sub (3, 4, 5);
      Mul (6, 7, 0); Xor (1, 1, 1); And (2, 3, 4); Or (5, 6, 7); Shl (0, 1, 2);
      Shr (3, 4, 5); Ldb (0, 1, 100); Stb (2, 3, 200); Ldw (4, 5, 300);
      Stw (6, 7, 400); Jmp 48; Jz (0, 8); Jnz (7, 16); Svc 3; Lt (0, 1, 2);
      Eq (3, 4, 5);
    ]

let test_isa_roundtrip () =
  List.iter
    (fun op ->
      let enc = Isa.encode op in
      checki "8 bytes" Isa.insn_size (String.length enc);
      match Isa.decode enc ~pos:0 with
      | Ok op' -> checkb (Format.asprintf "%a" Isa.pp op) true (op = op')
      | Error e -> Alcotest.fail e)
    all_ops

let test_isa_decode_errors () =
  expect_error (Isa.decode "\xff\x00\x00\x00\x00\x00\x00\x00" ~pos:0);
  expect_error (Isa.decode "\x03\x09\x00\x00\x00\x00\x00\x00" ~pos:0);
  expect_error (Isa.decode "short" ~pos:0);
  expect_error (Isa.decode (Isa.encode Isa.Halt) ~pos:4);
  Alcotest.check_raises "bad register" (Invalid_argument "Isa: register out of range")
    (fun () -> ignore (Isa.encode (Isa.Mov (8, 0))))

(* --- VM basics --- *)

let test_vm_arith () =
  let o =
    ok
      (run_ops
         Isa.[ Loadi (0, 6); Loadi (1, 7); Mul (2, 0, 1); Add (2, 2, 2); Halt ])
  in
  checki "6*7*2" 84 o.Vm.registers.(2);
  checki "steps" 5 o.Vm.steps

let test_vm_wraparound () =
  let o =
    ok
      (run_ops
         Isa.[ Loadi (0, 0xFFFFFFFF); Loadi (1, 1); Add (2, 0, 1); Sub (3, 1, 0); Halt ])
  in
  checki "add wraps to 0" 0 o.Vm.registers.(2);
  checki "sub wraps" 2 o.Vm.registers.(3)

let test_vm_loop () =
  (* Sum 1..10 with a jnz loop. *)
  let src = {|
  loadi r0, 0        ; acc
  loadi r1, 10       ; i
  loadi r2, 1
loop:
  add r0, r0, r1
  sub r1, r1, r2
  jnz r1, loop
  halt
|} in
  let code = ok (Asm.assemble src) in
  let o = ok (Vm.run ~code ~services:null_services ~input:"" ()) in
  checki "sum 1..10" 55 o.Vm.registers.(0)

let test_vm_memory_ops () =
  let o =
    ok
      (run_ops
         Isa.
           [
             Loadi (0, 0xAB); Loadi (1, 2000); Stb (0, 1, 0); Ldb (2, 1, 0);
             Loadi (3, 0x01020304); Stw (3, 1, 8); Ldw (4, 1, 8); Halt;
           ])
  in
  checki "byte roundtrip" 0xAB o.Vm.registers.(2);
  checki "word roundtrip" 0x01020304 o.Vm.registers.(4)

let test_vm_faults () =
  expect_error (run_ops Isa.[ Loadi (1, 1 lsl 20); Ldb (0, 1, 0); Halt ]);
  expect_error (run_ops Isa.[ Jmp 999999 ]);
  expect_error (Vm.run ~fuel:10 ~code:(Isa.encode_program Isa.[ Jmp 0 ])
                  ~services:null_services ~input:"" ());
  (* Running off the end of the program = fetch of zeroed memory; opcode 0
     is Halt, so falling through halts — document that deliberately. *)
  let o = ok (run_ops Isa.[ Loadi (0, 1) ]) in
  checkb "fallthrough halts" true (o.Vm.steps >= 1)

let test_vm_services_io () =
  let src = {|
  loadi r0, 512
  loadi r1, 64
  svc 2              ; input_read -> r0 = bytes copied
  mov r1, r0
  loadi r0, 512
  svc 3              ; output the same bytes
  halt
|} in
  let code = ok (Asm.assemble src) in
  let o = ok (Vm.run ~code ~services:null_services ~input:"echo me" ()) in
  checks "echo" "echo me" o.Vm.output

let test_vm_self_modification () =
  (* The program overwrites its own third instruction (a jump target of
     sorts): store a HALT over the instruction at offset 16, which would
     otherwise set r0 := 7. Self-modification is observable. *)
  let patched =
    Isa.
      [
        Loadi (1, 0) (* r1 := 0, encodes opcode byte 1 at mem[16] below *);
        Stb (1, 1, 16) (* overwrite opcode of next insn with 0 = HALT *);
        Loadi (0, 7);
        Halt;
      ]
  in
  let o = ok (run_ops patched) in
  checki "patched instruction never ran" 0 o.Vm.registers.(0);
  checki "halted early" 3 o.Vm.steps

(* --- assembler --- *)

let test_asm_directives_and_labels () =
  let src = {|
  loadi r0, msg
  loadi r1, 5
  svc 3
  halt
msg:
  .bytes "hello"
|} in
  let code = ok (Asm.assemble src) in
  let o = ok (Vm.run ~code ~services:null_services ~input:"" ()) in
  checks "data labels" "hello" o.Vm.output

let test_asm_align_after_data () =
  let src = {|
  jmp entry
data:
  .bytes "xyz"
entry:
  loadi r0, data
  loadi r1, 3
  svc 3
  halt
|} in
  let code = ok (Asm.assemble src) in
  let o = ok (Vm.run ~code ~services:null_services ~input:"" ()) in
  checks "code after unaligned data" "xyz" o.Vm.output

let test_asm_errors () =
  expect_error (Asm.assemble "loadi r9, 1");
  expect_error (Asm.assemble "jmp nowhere");
  expect_error (Asm.assemble "frobnicate r0");
  expect_error (Asm.assemble "dup:\n dup:\n halt");
  expect_error (Asm.assemble ".zero banana");
  expect_error (Asm.assemble ".bytes unquoted")

let test_disassemble () =
  let code = Isa.encode_program Isa.[ Loadi (0, 42); Halt ] in
  let listing = Asm.disassemble code in
  checkb "mentions loadi" true
    (String.length listing > 0
    && (let re = "loadi r0, 42" in
        let n = String.length re and h = String.length listing in
        let rec go i = i + n <= h && (String.sub listing i n = re || go (i + 1)) in
        go 0))

(* --- integration with real sessions --- *)

let machine () = Machine.create (Machine.low_fidelity Machine.hp_dc5750)

let test_palvm_pal_in_session () =
  (* A PALVM program that seals its input and outputs the blob — the
     PAL Gen pattern, in actual measured bytecode. *)
  let src = {|
  loadi r0, 1024
  loadi r1, 256
  svc 2               ; read input -> r0 = len
  mov r1, r0
  loadi r0, 1024
  loadi r2, 8192
  svc 4               ; seal -> r0 = blob len at 8192
  mov r1, r0
  loadi r0, 8192
  svc 3               ; output the blob
  halt
|} in
  let code = ok (Asm.assemble src) in
  let pal = Vm.to_pal ~name:"bytecode-gen" ~code () in
  let m = machine () in
  let outcome = ok (Session.execute m ~cpu:0 pal ~input:"bytecode secret") in
  checkb "output is a blob" true (String.length outcome.Session.output > 32);
  (* The measured bytes are exactly the program image. *)
  checks "measurement = H(image)" (Sea_crypto.Sha1.digest code)
    outcome.Session.measurement;
  (* And the blob unseals only for the same bytecode identity. *)
  let unsealer_src = {|
  loadi r0, 1024
  loadi r1, 4096
  svc 2
  mov r1, r0
  loadi r0, 1024
  loadi r2, 16384
  svc 5               ; unseal
  mov r1, r0
  loadi r0, 16384
  svc 3
  halt
|} in
  let unsealer_code = ok (Asm.assemble unsealer_src) in
  let thief = Vm.to_pal ~name:"bytecode-thief" ~code:unsealer_code () in
  match Session.execute m ~cpu:0 thief ~input:outcome.Session.output with
  | Ok o ->
      (* unseal refused -> r0 = -1 -> output attempt of length 2^32-1
         faults, or the program outputs nothing; either way it must not
         recover the secret. *)
      checkb "secret not recovered" false (o.Session.output = "bytecode secret")
  | Error _ -> ()

(* --- TOCTOU --- *)

let run_gate pal input =
  let m = machine () in
  let outcome = ok (Session.execute m ~cpu:0 pal ~input) in
  (m, outcome)

let test_toctou_benign () =
  let _, o = run_gate (Toctou.vulnerable_gate ()) Toctou.benign_input in
  checks "benign request denied" "denied" o.Session.output

let test_toctou_exploit_flips_decision () =
  let _, o = run_gate (Toctou.vulnerable_gate ()) Toctou.exploit_input in
  checks "exploit granted itself access" "granted" o.Session.output

let test_toctou_attestation_blind () =
  (* The dangerous part: both runs attest identically — load-time
     measurement cannot see the rewrite. *)
  let m1, _ = run_gate (Toctou.vulnerable_gate ()) Toctou.benign_input in
  let m2, _ = run_gate (Toctou.vulnerable_gate ()) Toctou.exploit_input in
  let q1, _ = ok (Session.quote m1 ~nonce:"n") in
  let q2, _ = ok (Session.quote m2 ~nonce:"n") in
  checkb "identical attestations for benign and exploited runs" true
    (q1.Sea_tpm.Tpm.selection = q2.Sea_tpm.Tpm.selection)

let test_toctou_hardened () =
  let _, o = run_gate (Toctou.hardened_gate ()) Toctou.exploit_input in
  checks "bounded copy: exploit truncated, denied" "denied" o.Session.output

let test_toctou_measured_gate_detected () =
  (* The measured gate is still exploitable at runtime... *)
  let exploit = Toctou.exploit_for ~prologue_insns:6 in
  let m_bad, o = run_gate (Toctou.measured_gate ()) exploit in
  checks "still granted (mitigation is detection, not prevention)" "granted"
    o.Session.output;
  (* ...but the attestation now covers the input: a verifier expecting
     the benign-input chain rejects the exploited run. *)
  let m_good, _ = run_gate (Toctou.measured_gate ()) Toctou.benign_input in
  let q_bad, _ = ok (Session.quote m_bad ~nonce:"n") in
  let q_good, _ = ok (Session.quote m_good ~nonce:"n") in
  checkb "attestations now differ" true
    (q_bad.Sea_tpm.Tpm.selection <> q_good.Sea_tpm.Tpm.selection)

let test_toctou_distinct_gates () =
  checkb "three distinct identities" true (Toctou.gates_share_nothing ())


(* --- fuzzing: arbitrary bytes are a safe program --- *)

let prop_vm_total_on_garbage =
  QCheck.Test.make ~name:"random images never escape the interpreter" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_bound 256))
    (fun image ->
      QCheck.assume (String.length image > 0);
      match
        Vm.run ~fuel:2000 ~code:image ~services:null_services ~input:"fuzz" ()
      with
      | Ok _ | Error _ -> true)

let prop_asm_roundtrip_through_disasm =
  QCheck.Test.make ~name:"encode_program length is 8 bytes per instruction" ~count:100
    QCheck.(int_bound 20)
    (fun n ->
      let ops = List.init n (fun _ -> Isa.Halt) in
      String.length (Isa.encode_program ops) = 8 * List.length ops)

let () =
  Alcotest.run "palvm"
    [
      ( "isa",
        [
          Alcotest.test_case "roundtrip" `Quick test_isa_roundtrip;
          Alcotest.test_case "decode errors" `Quick test_isa_decode_errors;
        ] );
      ( "vm",
        [
          Alcotest.test_case "arithmetic" `Quick test_vm_arith;
          Alcotest.test_case "32-bit wraparound" `Quick test_vm_wraparound;
          Alcotest.test_case "loop" `Quick test_vm_loop;
          Alcotest.test_case "memory ops" `Quick test_vm_memory_ops;
          Alcotest.test_case "faults" `Quick test_vm_faults;
          Alcotest.test_case "service I/O" `Quick test_vm_services_io;
          Alcotest.test_case "self-modification" `Quick test_vm_self_modification;
        ] );
      ( "asm",
        [
          Alcotest.test_case "directives and labels" `Quick test_asm_directives_and_labels;
          Alcotest.test_case "align after data" `Quick test_asm_align_after_data;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          Alcotest.test_case "disassemble" `Quick test_disassemble;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_vm_total_on_garbage;
          QCheck_alcotest.to_alcotest prop_asm_roundtrip_through_disasm;
        ] );
      ( "sessions",
        [ Alcotest.test_case "bytecode PAL end-to-end" `Quick test_palvm_pal_in_session ]
      );
      ( "toctou",
        [
          Alcotest.test_case "benign input denied" `Quick test_toctou_benign;
          Alcotest.test_case "exploit flips the decision" `Quick
            test_toctou_exploit_flips_decision;
          Alcotest.test_case "attestation is blind to it" `Quick test_toctou_attestation_blind;
          Alcotest.test_case "hardened gate immune" `Quick test_toctou_hardened;
          Alcotest.test_case "measured gate: detected" `Quick
            test_toctou_measured_gate_detected;
          Alcotest.test_case "distinct gate identities" `Quick test_toctou_distinct_gates;
        ] );
    ]
