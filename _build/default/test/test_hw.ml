(* Hardware platform tests: paged memory and spans, the access-control
   table state machine (Figure 5(b)), DEV protection, the memory
   controller's decisions, SECB validation, machine presets and the page
   allocator, and the instruction set: SKINIT/SENTER (Table 1 anchors),
   VM transitions (Table 2), and SLAUNCH/SYIELD/SFREE/SKILL semantics. *)

open Sea_sim
open Sea_hw

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let ok = function Ok x -> x | Error e -> Alcotest.fail e
let expect_error = function
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error"

(* --- Memory --- *)

let test_memory_rw () =
  let m = Memory.create ~pages:4 in
  checki "page count" 4 (Memory.page_count m);
  Memory.write m ~page:1 ~off:100 "hello";
  checks "read back" "hello" (Memory.read m ~page:1 ~off:100 ~len:5);
  checks "zero-initialized" (String.make 3 '\000') (Memory.read m ~page:0 ~off:0 ~len:3)

let test_memory_bounds () =
  let m = Memory.create ~pages:2 in
  Alcotest.check_raises "page out of range"
    (Invalid_argument "Memory: page 2 out of range") (fun () ->
      ignore (Memory.read m ~page:2 ~off:0 ~len:1));
  Alcotest.check_raises "cross-page access"
    (Invalid_argument "Memory: access crosses page boundary") (fun () ->
      ignore (Memory.read m ~page:0 ~off:4090 ~len:10))

let test_memory_span () =
  let m = Memory.create ~pages:4 in
  let data = String.init 6000 (fun i -> Char.chr (i mod 256)) in
  Memory.write_span m ~pages:[ 2; 0 ] ~off:100 data;
  checks "span roundtrip" data (Memory.read_span m ~pages:[ 2; 0 ] ~off:100 ~len:6000);
  (* The span is laid over the page list in order: page 2 first. *)
  checks "first page holds the head" (String.sub data 0 10)
    (Memory.read m ~page:2 ~off:100 ~len:10)

let test_memory_zero_page () =
  let m = Memory.create ~pages:1 in
  Memory.write m ~page:0 ~off:0 "secret";
  Memory.zero_page m 0;
  checks "erased" (String.make 6 '\000') (Memory.read m ~page:0 ~off:0 ~len:6)

(* --- Access-control table --- *)

let test_acl_lifecycle () =
  let acl = Access_control.create ~pages:8 in
  checkb "default ALL" true (Access_control.get acl 0 = Access_control.All);
  ok (Access_control.claim acl ~secb_id:1 ~cpu:0 [ 1; 2 ]);
  checkb "claimed exclusive" true
    (Access_control.get acl 1 = Access_control.Cpu_only { cpu = 0; secb_id = 1 });
  ok (Access_control.suspend acl ~secb_id:1 ~cpu:0 [ 1; 2 ]);
  checkb "suspended NONE" true
    (Access_control.get acl 1 = Access_control.None_access { secb_id = 1 });
  ok (Access_control.resume acl ~secb_id:1 ~cpu:3 [ 1; 2 ]);
  checkb "resumed on another CPU" true
    (Access_control.get acl 1 = Access_control.Cpu_only { cpu = 3; secb_id = 1 });
  ok (Access_control.release acl ~secb_id:1 [ 1; 2 ]);
  checkb "released to ALL" true (Access_control.get acl 1 = Access_control.All)

let test_acl_claim_conflicts () =
  let acl = Access_control.create ~pages:8 in
  ok (Access_control.claim acl ~secb_id:1 ~cpu:0 [ 1; 2 ]);
  expect_error (Access_control.claim acl ~secb_id:2 ~cpu:1 [ 2; 3 ]);
  (* All-or-nothing: page 3 must be untouched by the failed claim. *)
  checkb "failed claim has no side effects" true
    (Access_control.get acl 3 = Access_control.All)

let test_acl_resume_requires_owner () =
  let acl = Access_control.create ~pages:8 in
  ok (Access_control.claim acl ~secb_id:1 ~cpu:0 [ 1 ]);
  ok (Access_control.suspend acl ~secb_id:1 ~cpu:0 [ 1 ]);
  expect_error (Access_control.resume acl ~secb_id:99 ~cpu:0 [ 1 ]);
  expect_error (Access_control.resume acl ~secb_id:1 ~cpu:0 [ 1; 2 ]);
  ok (Access_control.resume acl ~secb_id:1 ~cpu:0 [ 1 ])

let test_acl_double_resume_blocked () =
  let acl = Access_control.create ~pages:8 in
  ok (Access_control.claim acl ~secb_id:1 ~cpu:0 [ 1 ]);
  (* Executing on CPU 0: resume on CPU 1 must fail. *)
  expect_error (Access_control.resume acl ~secb_id:1 ~cpu:1 [ 1 ])

let test_acl_access_predicates () =
  let acl = Access_control.create ~pages:4 in
  ok (Access_control.claim acl ~secb_id:7 ~cpu:2 [ 1 ]);
  checkb "owner CPU may access" true (Access_control.cpu_may_access acl ~cpu:2 1);
  checkb "other CPU may not" false (Access_control.cpu_may_access acl ~cpu:0 1);
  checkb "DMA may not" false (Access_control.dma_may_access acl 1);
  checkb "ALL page open to DMA" true (Access_control.dma_may_access acl 0);
  ok (Access_control.suspend acl ~secb_id:7 ~cpu:2 [ 1 ]);
  checkb "suspended: even owner locked out" false (Access_control.cpu_may_access acl ~cpu:2 1);
  Alcotest.(check (list int)) "owned pages" [ 1 ] (Access_control.owned_pages acl ~secb_id:7)

let prop_acl_no_cross_pal_access =
  QCheck.Test.make
    ~name:"claimed pages are never accessible to other CPUs or DMA" ~count:100
    QCheck.(pair (int_bound 7) (int_bound 3))
    (fun (page, cpu) ->
      let acl = Access_control.create ~pages:8 in
      match Access_control.claim acl ~secb_id:1 ~cpu [ page ] with
      | Error _ -> false
      | Ok () ->
          (not (Access_control.dma_may_access acl page))
          && List.for_all
               (fun other ->
                 other = cpu || not (Access_control.cpu_may_access acl ~cpu:other page))
               [ 0; 1; 2; 3 ])

(* --- Memory controller --- *)

let proposed_machine () =
  Machine.create (Machine.low_fidelity (Machine.proposed_variant Machine.hp_dc5750))

let test_memctrl_dev_blocks_dma_only () =
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let ctrl = m.Machine.memctrl in
  Memctrl.dev_protect ctrl [ 5 ];
  checkb "DEV set" true (Memctrl.dev_protected ctrl 5);
  expect_error (Memctrl.read ctrl (Memctrl.Device "nic") ~page:5 ~off:0 ~len:4);
  (* Today's hardware: CPUs are NOT restricted by DEV. *)
  ignore (ok (Memctrl.read ctrl (Memctrl.Cpu 1) ~page:5 ~off:0 ~len:4));
  Memctrl.dev_unprotect ctrl [ 5 ];
  ignore (ok (Memctrl.read ctrl (Memctrl.Device "nic") ~page:5 ~off:0 ~len:4));
  checkb "denials counted" true (Memctrl.denied_accesses ctrl >= 1)

let test_memctrl_acl_blocks_cpus () =
  let m = proposed_machine () in
  let ctrl = m.Machine.memctrl in
  let acl = Option.get (Memctrl.acl ctrl) in
  ok (Access_control.claim acl ~secb_id:1 ~cpu:0 [ 7 ]);
  ignore (ok (Memctrl.read ctrl (Memctrl.Cpu 0) ~page:7 ~off:0 ~len:4));
  expect_error (Memctrl.read ctrl (Memctrl.Cpu 1) ~page:7 ~off:0 ~len:4);
  expect_error (Memctrl.write ctrl (Memctrl.Cpu 1) ~page:7 ~off:0 "x");
  expect_error (Memctrl.read ctrl (Memctrl.Device "nic") ~page:7 ~off:0 ~len:4)

let test_memctrl_span_checks_every_page () =
  let m = proposed_machine () in
  let ctrl = m.Machine.memctrl in
  let acl = Option.get (Memctrl.acl ctrl) in
  ok (Access_control.claim acl ~secb_id:1 ~cpu:0 [ 3 ]);
  expect_error
    (Memctrl.read_span ctrl (Memctrl.Cpu 1) ~pages:[ 2; 3 ] ~off:0 ~len:8000)

(* --- SECB --- *)

let test_secb_validation () =
  let ok_secb =
    Secb.create ~id:1 ~pages:[ 10; 11; 12 ] ~entry_point:0 ~pal_length:8000 ()
  in
  Alcotest.(check (list int)) "data pages" [ 11; 12 ] (Secb.data_pages ok_secb);
  checki "region bytes" 8192 (Secb.region_bytes ok_secb);
  Alcotest.check_raises "PAL too big"
    (Invalid_argument "Secb.create: PAL length exceeds allocated region") (fun () ->
      ignore (Secb.create ~id:1 ~pages:[ 1; 2 ] ~entry_point:0 ~pal_length:8000 ()));
  Alcotest.check_raises "duplicate pages"
    (Invalid_argument "Secb.create: duplicate pages") (fun () ->
      ignore (Secb.create ~id:1 ~pages:[ 1; 1 ] ~entry_point:0 ~pal_length:100 ()));
  Alcotest.check_raises "empty" (Invalid_argument "Secb.create: empty page list")
    (fun () -> ignore (Secb.create ~id:1 ~pages:[] ~entry_point:0 ~pal_length:0 ()))

(* --- Machine --- *)

let test_machine_presets () =
  checki "five presets" 5 (List.length Machine.presets);
  let tyan = Machine.create Machine.tyan_n3600r in
  checkb "tyan has no TPM" true (tyan.Machine.tpm = None);
  checki "tyan is 2x dual-core" 4 (Array.length tyan.Machine.cpus);
  let tep = Machine.create (Machine.low_fidelity Machine.intel_tep) in
  checkb "tep is Intel" true (tep.Machine.config.Machine.arch = Machine.Intel);
  let prop = proposed_machine () in
  checkb "proposed variant flag" true prop.Machine.config.Machine.proposed;
  checkb "proposed has sePCRs" true
    (match prop.Machine.tpm with
    | Some tpm -> Sea_tpm.Tpm.sepcr_bank tpm <> None
    | None -> false)

let test_machine_page_allocator () =
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let a = Machine.alloc_pages m 4 in
  let b = Machine.alloc_pages m 4 in
  checki "distinct pages" 8 (List.length (List.sort_uniq Int.compare (a @ b)));
  Machine.free_pages m a;
  Alcotest.check_raises "double free"
    (Invalid_argument
       (Printf.sprintf "Machine.free_pages: page %d not allocated" (List.hd a)))
    (fun () -> Machine.free_pages m a);
  let c = Machine.alloc_pages m 4 in
  checki "freed pages reusable" 4 (List.length c)

let test_machine_idle_wake () =
  let m = Machine.create (Machine.low_fidelity Machine.tyan_n3600r) in
  Machine.idle_other_cpus m ~except:2;
  Array.iter
    (fun c ->
      if c.Cpu.id = 2 then checkb "kept" true (c.Cpu.status = Cpu.Legacy)
      else checkb "idled" true (c.Cpu.status = Cpu.Idle))
    m.Machine.cpus;
  Machine.wake_cpus m;
  Array.iter (fun c -> checkb "woken" true (c.Cpu.status = Cpu.Legacy)) m.Machine.cpus

(* --- SKINIT / SENTER --- *)

let load_pal m size =
  let pages = Machine.alloc_pages m ((size + Memory.page_size - 1) / Memory.page_size) in
  let drbg = Sea_crypto.Drbg.create ~seed:"hw-test-pal" in
  let code = Sea_crypto.Drbg.generate_string drbg size in
  Memory.write_span (Memctrl.memory m.Machine.memctrl) ~pages ~off:0 code;
  (pages, code)

let test_skinit_requires_idle_cpus () =
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let pages, _ = load_pal m 4096 in
  expect_error (Insn.skinit m ~cpu:0 ~pages ~length:4096);
  Machine.idle_other_cpus m ~except:0;
  ignore (ok (Insn.skinit m ~cpu:0 ~pages ~length:4096))

let test_skinit_measures_and_protects () =
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let pages, code = load_pal m 4096 in
  Machine.idle_other_cpus m ~except:0;
  let measurement = ok (Insn.skinit m ~cpu:0 ~pages ~length:4096) in
  checks "returns H(code)" (Sea_crypto.Sha1.digest code) measurement;
  let tpm = Machine.tpm_exn m in
  checks "PCR17 extended"
    (Sea_crypto.Sha1.digest (String.make 20 '\000' ^ measurement))
    (Sea_tpm.Tpm.pcr_read tpm 17);
  checkb "DEV protects SLB" true (Memctrl.dev_protected m.Machine.memctrl (List.hd pages));
  checkb "interrupts disabled" false (Machine.cpu m 0).Cpu.interrupts_enabled

let test_skinit_size_limit () =
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  Machine.idle_other_cpus m ~except:0;
  expect_error (Insn.skinit m ~cpu:0 ~pages:[ 1 ] ~length:(65 * 1024))

let test_skinit_wrong_arch () =
  let m = Machine.create (Machine.low_fidelity Machine.intel_tep) in
  Machine.idle_other_cpus m ~except:0;
  expect_error (Insn.skinit m ~cpu:0 ~pages:[ 1 ] ~length:1024);
  let m2 = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  Machine.idle_other_cpus m2 ~except:0;
  expect_error (Insn.senter m2 ~cpu:0 ~pages:[ 1 ] ~length:1024)

let test_table1_dc5750_timing () =
  (* The headline row: 64 KB SKINIT on the HP dc5750 took 177.52 ms. *)
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let pages, _ = load_pal m (64 * 1024) in
  Machine.idle_other_cpus m ~except:0;
  let t0 = Machine.now m in
  ignore (ok (Insn.skinit m ~cpu:0 ~pages ~length:(64 * 1024)));
  let ms = Time.to_ms (Time.sub (Machine.now m) t0) in
  checkb (Printf.sprintf "within 2%% of 177.52 (got %.2f)" ms) true
    (abs_float (ms -. 177.52) < 3.5)

let test_table1_tyan_timing () =
  let m = Machine.create Machine.tyan_n3600r in
  let pages, _ = load_pal m (64 * 1024) in
  Machine.idle_other_cpus m ~except:0;
  let t0 = Machine.now m in
  ignore (ok (Insn.skinit m ~cpu:0 ~pages ~length:(64 * 1024)));
  let ms = Time.to_ms (Time.sub (Machine.now m) t0) in
  checkb (Printf.sprintf "within 2%% of 8.82 (got %.2f)" ms) true
    (abs_float (ms -. 8.82) < 0.18)

let test_table1_senter_timing () =
  let m = Machine.create (Machine.low_fidelity Machine.intel_tep) in
  let run size =
    let pages, _ = load_pal m (max size 4096) in
    Machine.idle_other_cpus m ~except:0;
    let t0 = Machine.now m in
    ignore (ok (Insn.senter m ~cpu:0 ~pages ~length:size));
    let ms = Time.to_ms (Time.sub (Machine.now m) t0) in
    Machine.free_pages m pages;
    ms
  in
  let t0k = run 0 and t64k = run (64 * 1024) in
  checkb (Printf.sprintf "0 KB ~26.4 ms (got %.2f)" t0k) true (abs_float (t0k -. 26.39) < 1.0);
  checkb (Printf.sprintf "64 KB ~34.35 ms (got %.2f)" t64k) true
    (abs_float (t64k -. 34.35) < 1.0);
  checkb "slow linear growth" true (t64k -. t0k > 7. && t64k -. t0k < 9.)

let test_senter_extends_pcr17_and_18 () =
  let m = Machine.create (Machine.low_fidelity Machine.intel_tep) in
  let pages, code = load_pal m 4096 in
  Machine.idle_other_cpus m ~except:0;
  let measurement = ok (Insn.senter m ~cpu:0 ~pages ~length:4096) in
  checks "returns PAL hash" (Sea_crypto.Sha1.digest code) measurement;
  let tpm = Machine.tpm_exn m in
  checkb "PCR17 holds ACMod chain (not -1, not 0)" true
    (let v = Sea_tpm.Tpm.pcr_read tpm 17 in
     v <> String.make 20 '\000' && v <> String.make 20 '\xff');
  checks "PCR18 holds the PAL"
    (Sea_crypto.Sha1.digest (String.make 20 '\000' ^ measurement))
    (Sea_tpm.Tpm.pcr_read tpm 18)

(* --- VM transitions (Table 2) --- *)

let test_table2_vm_costs () =
  let amd = Machine.create Machine.tyan_n3600r in
  let intel = Machine.create (Machine.low_fidelity Machine.intel_tep) in
  let sample m f =
    let s = Stats.create () in
    for _ = 1 to 200 do
      let t0 = Machine.now m in
      f ();
      Stats.add s (Time.to_us (Time.sub (Machine.now m) t0))
    done;
    s
  in
  let amd_enter = sample amd (fun () -> Insn.vm_enter amd ~cpu:0) in
  let amd_exit = sample amd (fun () -> Insn.vm_exit amd ~cpu:0) in
  let intel_enter = sample intel (fun () -> Insn.vm_enter intel ~cpu:0) in
  checkb "AMD enter ~0.558 us" true (abs_float (Stats.mean amd_enter -. 0.558) < 0.01);
  checkb "AMD exit ~0.519 us" true (abs_float (Stats.mean amd_exit -. 0.519) < 0.01);
  checkb "Intel enter ~0.446 us" true (abs_float (Stats.mean intel_enter -. 0.446) < 0.01);
  checkb "jitter present but small" true
    (Stats.stdev amd_enter > 0. && Stats.stdev amd_enter < 0.02)

(* --- SLAUNCH family --- *)

let make_secb m size =
  let pages = Machine.alloc_pages m (1 + ((size + Memory.page_size - 1) / Memory.page_size)) in
  let secb = Secb.create ~id:(Machine.fresh_secb_id m) ~pages ~entry_point:0 ~pal_length:size () in
  let drbg = Sea_crypto.Drbg.create ~seed:"hw-slaunch-pal" in
  let code = Sea_crypto.Drbg.generate_string drbg size in
  Memory.write_span (Memctrl.memory m.Machine.memctrl) ~pages:(Secb.data_pages secb) ~off:0 code;
  (secb, code)

let test_slaunch_requires_proposed_hw () =
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let secb, _ = make_secb m 4096 in
  expect_error (Insn.slaunch m ~cpu:0 secb)

let test_slaunch_lifecycle () =
  let m = proposed_machine () in
  let secb, code = make_secb m 4096 in
  (match ok (Insn.slaunch m ~cpu:0 secb) with
  | Insn.Launched meas -> checks "measured" (Sea_crypto.Sha1.digest code) meas
  | Insn.Resumed -> Alcotest.fail "fresh SECB resumed");
  checkb "measured flag set" true secb.Secb.measured;
  checkb "sePCR bound" true (secb.Secb.sepcr <> None);
  checkb "CPU in PAL" true ((Machine.cpu m 0).Cpu.status = Cpu.In_pal secb.Secb.id);
  (* Yield, then resume on a different CPU. *)
  ignore (ok (Insn.syield m ~cpu:0 secb));
  checkb "CPU back to legacy" true ((Machine.cpu m 0).Cpu.status = Cpu.Legacy);
  (match ok (Insn.slaunch m ~cpu:1 secb) with
  | Insn.Resumed -> ()
  | Insn.Launched _ -> Alcotest.fail "resume re-measured");
  checkb "now on CPU 1" true ((Machine.cpu m 1).Cpu.status = Cpu.In_pal secb.Secb.id);
  (* Exit. *)
  ignore (ok (Insn.sfree m ~cpu:1 secb));
  checkb "freed" true secb.Secb.freed;
  let acl = Option.get (Memctrl.acl m.Machine.memctrl) in
  List.iter
    (fun p -> checkb "pages returned to ALL" true (Access_control.get acl p = Access_control.All))
    secb.Secb.pages

let test_slaunch_page_conflict () =
  let m = proposed_machine () in
  let secb1, _ = make_secb m 4096 in
  ignore (ok (Insn.slaunch m ~cpu:0 secb1));
  (* Another SECB overlapping the same pages must fail to launch. *)
  let secb2 =
    Secb.create ~id:(Machine.fresh_secb_id m) ~pages:secb1.Secb.pages ~entry_point:0
      ~pal_length:4096 ()
  in
  expect_error (Insn.slaunch m ~cpu:1 secb2)

let test_slaunch_sepcr_exhaustion_backs_out () =
  let cfg =
    { (Machine.proposed_variant ~sepcr_count:1 Machine.hp_dc5750) with
      Machine.tpm_key_bits = 512 }
  in
  let m = Machine.create cfg in
  let secb1, _ = make_secb m 4096 in
  ignore (ok (Insn.slaunch m ~cpu:0 secb1));
  let secb2, _ = make_secb m 4096 in
  expect_error (Insn.slaunch m ~cpu:1 secb2);
  (* Failure must back out the page protections (§5.1.1 failure code). *)
  let acl = Option.get (Memctrl.acl m.Machine.memctrl) in
  List.iter
    (fun p -> checkb "backed out to ALL" true (Access_control.get acl p = Access_control.All))
    secb2.Secb.pages

let test_syield_saves_state_and_isolates () =
  let m = proposed_machine () in
  let secb, _ = make_secb m 4096 in
  ignore (ok (Insn.slaunch m ~cpu:0 secb));
  ignore (ok (Insn.syield m ~cpu:0 secb));
  checkb "state snapshot saved" true (secb.Secb.saved_state <> None);
  (* Suspended pages are inaccessible to everyone, even the old CPU. *)
  expect_error
    (Memctrl.read m.Machine.memctrl (Memctrl.Cpu 0) ~page:(List.hd secb.Secb.pages)
       ~off:0 ~len:4)

let test_sfree_only_from_inside () =
  let m = proposed_machine () in
  let secb, _ = make_secb m 4096 in
  ignore (ok (Insn.slaunch m ~cpu:0 secb));
  expect_error (Insn.sfree m ~cpu:1 secb);
  ignore (ok (Insn.syield m ~cpu:0 secb));
  expect_error (Insn.sfree m ~cpu:0 secb)

let test_skill_erases_and_frees () =
  let m = proposed_machine () in
  let secb, _ = make_secb m 4096 in
  ignore (ok (Insn.slaunch m ~cpu:0 secb));
  (* SKILL must not work while executing. *)
  expect_error (Insn.skill m secb);
  ignore (ok (Insn.syield m ~cpu:0 secb));
  ignore (ok (Insn.skill m secb));
  checkb "freed" true secb.Secb.freed;
  (* Pages are zeroed and public again. *)
  let data =
    ok
      (Memctrl.read m.Machine.memctrl (Memctrl.Cpu 1)
         ~page:(List.nth secb.Secb.pages 1) ~off:0 ~len:64)
  in
  checks "erased" (String.make 64 '\000') data;
  (* The sePCR was extended with the SKILL constant and freed. *)
  (match Sea_tpm.Tpm.sepcr_bank (Machine.tpm_exn m) with
  | Some bank -> checki "sePCR free" (Sea_tpm.Sepcr.size bank) (Sea_tpm.Sepcr.free_count bank)
  | None -> assert false)

let test_slaunch_resume_cost_is_vm_scale () =
  (* §5.7: context-switch cost on the proposed hardware should be on the
     order of a VM entry (~0.6 us), six orders below the TPM-based path. *)
  let m = proposed_machine () in
  let secb, _ = make_secb m 4096 in
  ignore (ok (Insn.slaunch m ~cpu:0 secb));
  let s = Stats.create () in
  for _ = 1 to 50 do
    ignore (ok (Insn.syield m ~cpu:0 secb));
    let t0 = Machine.now m in
    ignore (ok (Insn.slaunch m ~cpu:0 secb));
    Stats.add s (Time.to_us (Time.sub (Machine.now m) t0))
  done;
  checkb (Printf.sprintf "resume ~0.6 us (got %.3f)" (Stats.mean s)) true
    (Stats.mean s < 1.0)

let () =
  Alcotest.run "hw"
    [
      ( "memory",
        [
          Alcotest.test_case "read/write" `Quick test_memory_rw;
          Alcotest.test_case "bounds" `Quick test_memory_bounds;
          Alcotest.test_case "spans" `Quick test_memory_span;
          Alcotest.test_case "zero page" `Quick test_memory_zero_page;
        ] );
      ( "access-control",
        [
          Alcotest.test_case "lifecycle (Figure 5b)" `Quick test_acl_lifecycle;
          Alcotest.test_case "claim conflicts" `Quick test_acl_claim_conflicts;
          Alcotest.test_case "resume requires owner" `Quick test_acl_resume_requires_owner;
          Alcotest.test_case "double resume blocked" `Quick test_acl_double_resume_blocked;
          Alcotest.test_case "access predicates" `Quick test_acl_access_predicates;
          QCheck_alcotest.to_alcotest prop_acl_no_cross_pal_access;
        ] );
      ( "memctrl",
        [
          Alcotest.test_case "DEV blocks DMA only" `Quick test_memctrl_dev_blocks_dma_only;
          Alcotest.test_case "ACL blocks CPUs" `Quick test_memctrl_acl_blocks_cpus;
          Alcotest.test_case "span checks every page" `Quick test_memctrl_span_checks_every_page;
        ] );
      ("secb", [ Alcotest.test_case "validation" `Quick test_secb_validation ]);
      ( "machine",
        [
          Alcotest.test_case "presets" `Quick test_machine_presets;
          Alcotest.test_case "page allocator" `Quick test_machine_page_allocator;
          Alcotest.test_case "idle/wake" `Quick test_machine_idle_wake;
        ] );
      ( "late-launch",
        [
          Alcotest.test_case "requires idle CPUs" `Quick test_skinit_requires_idle_cpus;
          Alcotest.test_case "measures and protects" `Quick test_skinit_measures_and_protects;
          Alcotest.test_case "64 KB limit" `Quick test_skinit_size_limit;
          Alcotest.test_case "architecture dispatch" `Quick test_skinit_wrong_arch;
          Alcotest.test_case "Table 1: dc5750 64 KB" `Quick test_table1_dc5750_timing;
          Alcotest.test_case "Table 1: Tyan 64 KB" `Quick test_table1_tyan_timing;
          Alcotest.test_case "Table 1: SENTER" `Quick test_table1_senter_timing;
          Alcotest.test_case "SENTER PCR 17+18" `Quick test_senter_extends_pcr17_and_18;
        ] );
      ("vm", [ Alcotest.test_case "Table 2 costs" `Quick test_table2_vm_costs ]);
      ( "slaunch",
        [
          Alcotest.test_case "requires proposed hw" `Quick test_slaunch_requires_proposed_hw;
          Alcotest.test_case "full lifecycle" `Quick test_slaunch_lifecycle;
          Alcotest.test_case "page conflict" `Quick test_slaunch_page_conflict;
          Alcotest.test_case "sePCR exhaustion backs out" `Quick
            test_slaunch_sepcr_exhaustion_backs_out;
          Alcotest.test_case "SYIELD saves and isolates" `Quick test_syield_saves_state_and_isolates;
          Alcotest.test_case "SFREE only from inside" `Quick test_sfree_only_from_inside;
          Alcotest.test_case "SKILL erases and frees" `Quick test_skill_erases_and_frees;
          Alcotest.test_case "resume at VM-entry cost (§5.7)" `Quick
            test_slaunch_resume_cost_is_vm_scale;
        ] );
    ]
