(* Integration tests spanning the whole stack: the complete remote
   attestation protocol (verifier ↔ platform), sealed-state workflows on
   every modelled machine, cross-machine seal isolation, reboot semantics,
   the §5.7 context-switch comparison, and the faster-TPM ablation. *)

open Sea_sim
open Sea_hw
open Sea_core

let checkb = Alcotest.(check bool)

let ok = function Ok x -> x | Error e -> Alcotest.fail e
let expect_error = function Error _ -> () | Ok _ -> Alcotest.fail "expected error"

(* --- The full remote-attestation protocol of §2.1.1 / §3.1 --- *)

let test_remote_attestation_protocol () =
  (* A verifier wants proof that the rootkit detector ran, with hardware
     protection, on the challenged platform, and saw a clean kernel. *)
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let pal = Sea_apps.Rootkit_detector.pal () in
  let image = Sea_apps.Rootkit_detector.make_kernel_image ~seed:"good" () in
  let whitelist = Sea_apps.Rootkit_detector.whitelist_digest image in
  (* 1. Verifier issues a fresh nonce. *)
  let nonce = "freshly-drawn-nonce" in
  (* 2. Platform runs the PAL and produces a quote. *)
  checkb "detector ran clean" true
    (ok (Sea_apps.Rootkit_detector.check m ~cpu:0 ~whitelist ~kernel_image:image));
  let q, _ = ok (Session.quote m ~nonce) in
  let evidence = Attestation.gather m q in
  (* 3. Verifier recomputes the expected chain: identity, then the clean
     verdict extension, then the exit marker. *)
  let verdict_ext =
    Sea_crypto.Sha1.digest ("verdict:clean" ^ Sea_crypto.Sha256.digest image)
  in
  let expected =
    Sea_crypto.Sha1.digest
      (Sea_crypto.Sha1.digest (Session.expected_identity m pal ^ verdict_ext)
      ^ Session.exit_marker)
  in
  ok
    (Attestation.verify ~ca:(Sea_tpm.Tpm.privacy_ca_public ()) ~nonce
       (Attestation.Dynamic_pcrs [ (17, expected) ])
       evidence);
  (* 4. An infected platform cannot produce that chain. *)
  let m2 = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let infected = Sea_apps.Rootkit_detector.infect image ~at:99 in
  checkb "detector flagged rootkit" false
    (ok (Sea_apps.Rootkit_detector.check m2 ~cpu:0 ~whitelist ~kernel_image:infected));
  let q2, _ = ok (Session.quote m2 ~nonce) in
  expect_error
    (Attestation.verify ~ca:(Sea_tpm.Tpm.privacy_ca_public ()) ~nonce
       (Attestation.Dynamic_pcrs [ (17, expected) ])
       (Attestation.gather m2 q2))

let test_attestation_across_architectures () =
  (* The same PAL attests on AMD (PCR 17) and Intel (PCR 18). *)
  List.iter
    (fun preset ->
      let m = Machine.create (Machine.low_fidelity preset) in
      let pal = Generic.pal_gen () in
      ignore (ok (Session.execute m ~cpu:0 pal ~input:""));
      let q, _ = ok (Session.quote m ~nonce:"n") in
      ok
        (Attestation.verify ~ca:(Sea_tpm.Tpm.privacy_ca_public ()) ~nonce:"n"
           (Attestation.expect_session_exit m pal)
           (Attestation.gather m q)))
    [ Machine.hp_dc5750; Machine.intel_tep; Machine.lenovo_t60; Machine.amd_infineon ]

(* --- Sealed state is platform-bound --- *)

let test_seal_does_not_travel_across_machines () =
  let m1 = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let m2 = Machine.create (Machine.low_fidelity Machine.amd_infineon) in
  let blob =
    (ok (Session.execute m1 ~cpu:0 (Generic.pal_gen ()) ~input:"")).Session.output
  in
  (* The same PAL on a different machine (different SRK) cannot unseal. *)
  expect_error (Session.execute m2 ~cpu:0 (Generic.pal_use ()) ~input:blob)

let test_seal_survives_reboot_same_pal () =
  (* Dynamic PCR policies are reconstructed by a fresh late launch, so a
     reboot between Gen and Use is harmless — the whole point of sealed
     storage for long-running computations. *)
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let blob =
    (ok (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"")).Session.output
  in
  Sea_tpm.Tpm.reboot (Machine.tpm_exn m);
  let out =
    (ok (Session.execute m ~cpu:0 (Generic.pal_use ()) ~input:blob)).Session.output
  in
  checkb "unsealed after reboot" true (String.length out > 0)

let test_reboot_distinguishable_by_verifier () =
  (* After a reboot (no late launch yet), PCR 17 is -1: a verifier can
     tell no PAL has run since boot (§2.1.3). *)
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  ignore (ok (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"")) ;
  Sea_tpm.Tpm.reboot (Machine.tpm_exn m);
  let q, _ = ok (Session.quote m ~nonce:"n") in
  let pcr17 = List.assoc 17 q.Sea_tpm.Tpm.selection in
  checkb "PCR17 reads -1 after reboot" true (pcr17 = String.make 20 '\xff')

(* --- §5.7: the context-switch comparison, end to end --- *)

let test_context_switch_six_orders () =
  (* Current hardware: a context switch of PAL state = Seal + (SKINIT +
     Unseal). Proposed hardware: SYIELD + SLAUNCH(resume). *)
  let mc = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let gen = (ok (Session.execute mc ~cpu:0 (Generic.pal_gen ()) ~input:"")) in
  let t0 = Machine.now mc in
  ignore (ok (Session.execute mc ~cpu:0 (Generic.pal_use ()) ~input:gen.Session.output));
  let current = Time.sub (Machine.now mc) t0 in
  let mp =
    Machine.create (Machine.low_fidelity (Machine.proposed_variant Machine.hp_dc5750))
  in
  let pal =
    Pal.create ~name:"switcher" ~code_size:8192 ~compute_time:(Time.ms 10.)
      (fun _ _ -> Ok "")
  in
  let s = ok (Slaunch_session.start mp ~cpu:0 ~preemption_timer:(Time.ms 5.) pal ~input:"") in
  (match ok (Slaunch_session.run_slice s ~cpu:0 ()) with
  | `Yielded -> ()
  | `Finished -> Alcotest.fail "expected a yield");
  let t0 = Machine.now mp in
  ok (Slaunch_session.resume s ~cpu:0);
  let proposed = Time.sub (Machine.now mp) t0 in
  ignore (ok (Slaunch_session.run_slice s ~cpu:0 ()));
  Slaunch_session.release s;
  let ratio = Time.to_s current /. Time.to_s proposed in
  checkb
    (Printf.sprintf "≥5 orders of magnitude (ratio %.2e)" ratio)
    true
    (ratio > 1e5)

let test_faster_tpm_ablation () =
  (* §5.7's alternative: just speed the TPM up. Even a 1000x faster
     Broadcom leaves PAL Use near a millisecond — still ~3 orders above
     the proposed hardware's switch cost. *)
  let profile = Sea_tpm.Timing.scaled (Sea_tpm.Timing.profile Sea_tpm.Vendor.Broadcom)
      ~factor:0.001 in
  let cfg =
    { (Machine.low_fidelity Machine.hp_dc5750) with Machine.tpm_profile = Some profile }
  in
  let m = Machine.create cfg in
  let gen = ok (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"") in
  let use = ok (Session.execute m ~cpu:0 (Generic.pal_use ()) ~input:gen.Session.output) in
  let overhead = Time.to_ms (Session.overhead use.Session.breakdown) in
  checkb (Printf.sprintf "1000x TPM still ~1 ms overhead (got %.3f)" overhead) true
    (overhead > 0.5);
  checkb "but far below stock" true (overhead < 50.)

(* --- Long-running workflow: factoring with interleaved reboots --- *)

let test_factoring_survives_reboot () =
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  match Sea_apps.Factoring.start m ~cpu:0 ~n:(101 * 103) ~range:20 with
  | Error e -> Alcotest.fail e
  | Ok (Sea_apps.Factoring.Factored _) -> Alcotest.fail "too fast for this test"
  | Ok (Sea_apps.Factoring.Running blob) ->
      Sea_tpm.Tpm.reboot (Machine.tpm_exn m);
      let rec drive blob n =
        if n > 50 then Alcotest.fail "did not converge"
        else
          match Sea_apps.Factoring.step m ~cpu:0 ~blob ~range:20 with
          | Error e -> Alcotest.fail e
          | Ok (Sea_apps.Factoring.Running b) -> drive b (n + 1)
          | Ok (Sea_apps.Factoring.Factored fs) -> fs
      in
      Alcotest.(check (list int)) "factors survive reboot" [ 101; 103 ] (drive blob 0)

(* --- Whole-stack determinism --- *)

let test_simulation_deterministic () =
  (* Two fresh machines with the same configuration produce identical
     timing for the same workload — the property every benchmark in this
     repository rests on. *)
  let run () =
    let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
    ignore (ok (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:""));
    Time.to_ns (Machine.now m)
  in
  Alcotest.(check int) "identical simulated timelines" (run ()) (run ())

let () =
  Alcotest.run "integration"
    [
      ( "attestation",
        [
          Alcotest.test_case "remote attestation protocol" `Quick
            test_remote_attestation_protocol;
          Alcotest.test_case "across architectures" `Slow test_attestation_across_architectures;
        ] );
      ( "sealed-state",
        [
          Alcotest.test_case "platform-bound" `Quick test_seal_does_not_travel_across_machines;
          Alcotest.test_case "survives reboot" `Quick test_seal_survives_reboot_same_pal;
          Alcotest.test_case "reboot visible to verifier" `Quick
            test_reboot_distinguishable_by_verifier;
          Alcotest.test_case "factoring across a reboot" `Quick test_factoring_survives_reboot;
        ] );
      ( "impact",
        [
          Alcotest.test_case "§5.7 six-orders comparison" `Quick test_context_switch_six_orders;
          Alcotest.test_case "faster-TPM ablation" `Quick test_faster_tpm_ablation;
        ] );
      ( "determinism",
        [ Alcotest.test_case "simulation deterministic" `Quick test_simulation_deterministic ] );
    ]
