(* Tests for the from-scratch crypto substrate: SHA-1/SHA-256 against
   published vectors, HMAC vectors, bignum ring laws (qcheck), RSA
   roundtrips and negative cases, DRBG determinism, AEAD tamper
   resistance, and Wire codec totality. *)

open Sea_crypto

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* --- SHA-1: RFC 3174 / FIPS vectors --- *)

let test_sha1_vectors () =
  checks "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (Sha1.hex "");
  checks "abc" "a9993e364706816aba3e25717850c26c9cd0d89d" (Sha1.hex "abc");
  checks "two-block"
    "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (Sha1.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  checks "million a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Sha1.hex (String.make 1_000_000 'a'))

let test_sha1_streaming_equivalence () =
  let msg = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  (* Feed in awkward chunk sizes across block boundaries. *)
  List.iter
    (fun chunk ->
      let ctx = Sha1.init () in
      let rec go off =
        if off < String.length msg then begin
          let len = min chunk (String.length msg - off) in
          Sha1.update ctx (String.sub msg off len);
          go (off + len)
        end
      in
      go 0;
      checks
        (Printf.sprintf "chunk=%d" chunk)
        (Sha1.digest msg) (Sha1.finalize ctx))
    [ 1; 3; 63; 64; 65; 127; 1000 ]

let test_sha1_length_padding_edges () =
  (* 55/56/64 bytes straddle the padding boundary. *)
  List.iter
    (fun n ->
      let m = String.make n 'x' in
      checkb
        (Printf.sprintf "len %d consistent" n)
        true
        (Sha1.digest m = Sha1.digest m && String.length (Sha1.digest m) = 20))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 119; 120 ]

(* --- SHA-256: FIPS 180-4 vectors --- *)

let test_sha256_vectors () =
  checks "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex "");
  checks "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex "abc");
  checks "two-block"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

(* --- HMAC: RFC 2202 / RFC 4231 vectors --- *)

let hex_of s =
  let buf = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let test_hmac_sha1_vectors () =
  checks "rfc2202 case 1" "b617318655057264e28bc0b6fb378c8ef146be00"
    (hex_of (Hmac.sha1 ~key:(String.make 20 '\x0b') "Hi There"));
  checks "rfc2202 case 2" "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    (hex_of (Hmac.sha1 ~key:"Jefe" "what do ya want for nothing?"))

let test_hmac_sha256_vector () =
  checks "rfc4231 case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex_of (Hmac.sha256 ~key:(String.make 20 '\x0b') "Hi There"))

let test_hmac_long_key () =
  (* Keys longer than the block size must be hashed first. *)
  let k = String.make 131 '\xaa' in
  checks "rfc4231 case 6 (sha256)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (hex_of
       (Hmac.sha256 ~key:k "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_constant_time_equal () =
  checkb "equal" true (Hmac.equal_constant_time "abc" "abc");
  checkb "different" false (Hmac.equal_constant_time "abc" "abd");
  checkb "length mismatch" false (Hmac.equal_constant_time "abc" "abcd");
  checkb "empty" true (Hmac.equal_constant_time "" "")

(* --- Bignum: unit tests --- *)

let bn = Alcotest.testable Bignum.pp Bignum.equal

let test_bignum_of_to_int () =
  check bn "zero" Bignum.zero (Bignum.of_int 0);
  checkb "to_int roundtrip" true
    (Bignum.to_int_opt (Bignum.of_int 123456789) = Some 123456789);
  checkb "to_int max_int" true (Bignum.to_int_opt (Bignum.of_int max_int) = Some max_int);
  checkb "to_int overflow" true
    (Bignum.to_int_opt (Bignum.mul (Bignum.of_int max_int) (Bignum.of_int 2)) = None);
  Alcotest.check_raises "negative" (Invalid_argument "Bignum.of_int: negative")
    (fun () -> ignore (Bignum.of_int (-1)))

let test_bignum_hex_roundtrip () =
  let cases = [ "0"; "1"; "ff"; "deadbeef"; "123456789abcdef0123456789abcdef" ] in
  List.iter
    (fun h ->
      checks ("hex " ^ h) h (Bignum.to_hex (Bignum.of_hex h)))
    cases;
  check bn "leading zeros" (Bignum.of_hex "ff") (Bignum.of_hex "00ff")

let test_bignum_bytes_roundtrip () =
  let v = Bignum.of_hex "0102030405060708090a" in
  checks "to_bytes" "\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a" (Bignum.to_bytes_be v);
  check bn "of_bytes" v (Bignum.of_bytes_be (Bignum.to_bytes_be v));
  checks "padded" "\x00\x00\x01" (Bignum.to_bytes_be ~pad_to:3 Bignum.one);
  Alcotest.check_raises "pad too small"
    (Invalid_argument "Bignum.to_bytes_be: value exceeds pad_to") (fun () ->
      ignore (Bignum.to_bytes_be ~pad_to:1 (Bignum.of_hex "ffff")))

let test_bignum_sub_negative () =
  Alcotest.check_raises "negative result"
    (Invalid_argument "Bignum.sub: negative result") (fun () ->
      ignore (Bignum.sub Bignum.one Bignum.two))

let test_bignum_division_cases () =
  let a = Bignum.of_hex "ffffffffffffffffffffffffffffffffff" in
  let q, r = Bignum.divmod a (Bignum.of_int 1) in
  check bn "div by 1" a q;
  check bn "rem by 1" Bignum.zero r;
  let q, r = Bignum.divmod Bignum.one a in
  check bn "small / large" Bignum.zero q;
  check bn "small mod large" Bignum.one r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bignum.divmod a Bignum.zero))

let test_bignum_shifts () =
  let v = Bignum.of_hex "1234" in
  check bn "shl 0" v (Bignum.shift_left v 0);
  check bn "shl 4" (Bignum.of_hex "12340") (Bignum.shift_left v 4);
  check bn "shr 4" (Bignum.of_hex "123") (Bignum.shift_right v 4);
  check bn "shr beyond" Bignum.zero (Bignum.shift_right v 100);
  check bn "shl across limbs"
    (Bignum.of_hex "48d000000000000000")
    (Bignum.shift_left v 58)

let test_bignum_bit_ops () =
  Alcotest.(check int) "bitlen 0" 0 (Bignum.bit_length Bignum.zero);
  Alcotest.(check int) "bitlen 1" 1 (Bignum.bit_length Bignum.one);
  Alcotest.(check int) "bitlen 0x100" 9 (Bignum.bit_length (Bignum.of_hex "100"));
  checkb "testbit" true (Bignum.test_bit (Bignum.of_int 5) 0);
  checkb "testbit clear" false (Bignum.test_bit (Bignum.of_int 5) 1);
  checkb "testbit high" true (Bignum.test_bit (Bignum.of_int 5) 2)

let test_bignum_modpow_known () =
  let m = Bignum.of_int 1000000007 in
  (* Fermat: 2^(p-1) = 1 mod p for prime p (odd -> Montgomery path). *)
  check bn "fermat"
    Bignum.one
    (Bignum.mod_pow ~base:Bignum.two ~exp:(Bignum.sub m Bignum.one) ~m);
  (* Even modulus exercises the non-Montgomery path. *)
  check bn "even modulus"
    (Bignum.of_int 6)
    (Bignum.mod_pow ~base:(Bignum.of_int 6) ~exp:Bignum.one ~m:(Bignum.of_int 10));
  check bn "exp zero" Bignum.one
    (Bignum.mod_pow ~base:(Bignum.of_int 12345) ~exp:Bignum.zero ~m);
  check bn "mod one" Bignum.zero
    (Bignum.mod_pow ~base:Bignum.two ~exp:Bignum.two ~m:Bignum.one)

let test_bignum_mod_inverse () =
  (match Bignum.mod_inverse (Bignum.of_int 3) ~m:(Bignum.of_int 7) with
  | Some i -> check bn "3^-1 mod 7" (Bignum.of_int 5) i
  | None -> Alcotest.fail "inverse should exist");
  checkb "no inverse when gcd > 1" true
    (Bignum.mod_inverse (Bignum.of_int 4) ~m:(Bignum.of_int 8) = None);
  checkb "mod 1" true (Bignum.mod_inverse Bignum.two ~m:Bignum.one = None)

let test_bignum_gcd () =
  check bn "gcd(12,18)" (Bignum.of_int 6)
    (Bignum.gcd (Bignum.of_int 12) (Bignum.of_int 18));
  check bn "gcd with zero" (Bignum.of_int 5) (Bignum.gcd (Bignum.of_int 5) Bignum.zero)

(* --- Bignum: qcheck ring laws --- *)

let gen_bignum =
  (* Random naturals up to ~256 bits, built from hex strings. *)
  QCheck.Gen.(
    map
      (fun digits ->
        let s = String.concat "" (List.map (Printf.sprintf "%x") digits) in
        Bignum.of_hex (if s = "" then "0" else s))
      (list_size (int_range 1 64) (int_bound 15)))

let arb_bignum = QCheck.make ~print:Bignum.to_hex gen_bignum

let prop_add_comm =
  QCheck.Test.make ~name:"bignum add commutes" ~count:300
    (QCheck.pair arb_bignum arb_bignum) (fun (a, b) ->
      Bignum.equal (Bignum.add a b) (Bignum.add b a))

let prop_add_assoc =
  QCheck.Test.make ~name:"bignum add associates" ~count:300
    (QCheck.triple arb_bignum arb_bignum arb_bignum) (fun (a, b, c) ->
      Bignum.equal
        (Bignum.add (Bignum.add a b) c)
        (Bignum.add a (Bignum.add b c)))

let prop_mul_comm =
  QCheck.Test.make ~name:"bignum mul commutes" ~count:200
    (QCheck.pair arb_bignum arb_bignum) (fun (a, b) ->
      Bignum.equal (Bignum.mul a b) (Bignum.mul b a))

let prop_distributive =
  QCheck.Test.make ~name:"bignum mul distributes over add" ~count:200
    (QCheck.triple arb_bignum arb_bignum arb_bignum) (fun (a, b, c) ->
      Bignum.equal
        (Bignum.mul a (Bignum.add b c))
        (Bignum.add (Bignum.mul a b) (Bignum.mul a c)))

let prop_divmod_identity =
  QCheck.Test.make ~name:"a = (a/b)*b + a mod b, with a mod b < b" ~count:300
    (QCheck.pair arb_bignum arb_bignum) (fun (a, b) ->
      QCheck.assume (not (Bignum.is_zero b));
      let q, r = Bignum.divmod a b in
      Bignum.equal a (Bignum.add (Bignum.mul q b) r) && Bignum.compare r b < 0)

let prop_sub_add_roundtrip =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:300
    (QCheck.pair arb_bignum arb_bignum) (fun (a, b) ->
      Bignum.equal a (Bignum.sub (Bignum.add a b) b))

let prop_shift_mul =
  QCheck.Test.make ~name:"a << k = a * 2^k" ~count:200
    (QCheck.pair arb_bignum (QCheck.int_bound 100)) (fun (a, k) ->
      Bignum.equal (Bignum.shift_left a k)
        (Bignum.mul a (Bignum.mod_pow ~base:Bignum.two ~exp:(Bignum.of_int k)
                         ~m:(Bignum.shift_left Bignum.one 200))))

let prop_modpow_matches_naive =
  QCheck.Test.make ~name:"Montgomery mod_pow matches naive square-multiply"
    ~count:100
    (QCheck.triple (QCheck.int_range 2 10_000) (QCheck.int_range 0 50)
       (QCheck.int_range 3 10_000))
    (fun (base, e, m) ->
      let m = if m mod 2 = 0 then m + 1 else m in
      let naive =
        let rec go acc k = if k = 0 then acc else go (acc * base mod m) (k - 1) in
        go 1 e
      in
      let fast =
        Bignum.mod_pow ~base:(Bignum.of_int base) ~exp:(Bignum.of_int e)
          ~m:(Bignum.of_int m)
      in
      Bignum.to_int_opt fast = Some naive)

let prop_mod_inverse_correct =
  QCheck.Test.make ~name:"mod_inverse: a * a^-1 = 1 (mod m)" ~count:200
    (QCheck.pair (QCheck.int_range 1 100_000) (QCheck.int_range 3 100_000))
    (fun (a, m) ->
      let a = Bignum.of_int a and m = Bignum.of_int m in
      match Bignum.mod_inverse a ~m with
      | None -> not (Bignum.equal (Bignum.gcd a m) Bignum.one)
      | Some inv -> Bignum.equal (Bignum.mod_mul a inv ~m) (Bignum.rem Bignum.one m))

(* --- RSA --- *)

let drbg () = Drbg.create ~seed:"test-crypto-rsa"

let test_rsa_sign_verify () =
  let key = Rsa.generate ~bits:512 (drbg ()) in
  let msg = "attestation payload" in
  let s = Rsa.sign key msg in
  Alcotest.(check int) "signature length" (Rsa.key_bytes key.Rsa.pub) (String.length s);
  checkb "verifies" true (Rsa.verify key.Rsa.pub ~msg ~signature:s);
  checkb "wrong message" false (Rsa.verify key.Rsa.pub ~msg:"other" ~signature:s);
  let tampered = String.mapi (fun i c -> if i = 5 then Char.chr (Char.code c lxor 1) else c) s in
  checkb "tampered signature" false (Rsa.verify key.Rsa.pub ~msg ~signature:tampered);
  checkb "wrong length" false (Rsa.verify key.Rsa.pub ~msg ~signature:"short")

let test_rsa_encrypt_decrypt () =
  let d = drbg () in
  let key = Rsa.generate ~bits:512 d in
  let pt = "seal me" in
  let ct = Rsa.encrypt key.Rsa.pub d pt in
  checkb "decrypts" true (Rsa.decrypt key ct = Some pt);
  let other = Rsa.generate ~bits:512 d in
  checkb "wrong key fails" true (Rsa.decrypt other ct = None);
  let tampered =
    String.mapi (fun i c -> if i = 10 then Char.chr (Char.code c lxor 1) else c) ct
  in
  (* Tampered ciphertext: padding check almost surely fails, and even if it
     decodes, the plaintext must differ. *)
  checkb "tampered ciphertext" true (Rsa.decrypt key tampered <> Some pt)

let test_rsa_encrypt_limits () =
  let d = drbg () in
  let key = Rsa.generate ~bits:512 d in
  let max = Rsa.max_plaintext key.Rsa.pub in
  Alcotest.(check int) "max payload" (64 - 11) max;
  let big = String.make (max + 1) 'x' in
  Alcotest.check_raises "too long" (Invalid_argument "Rsa.encrypt: plaintext too long")
    (fun () -> ignore (Rsa.encrypt key.Rsa.pub d big));
  let edge = String.make max 'x' in
  checkb "exactly max roundtrips" true
    (Rsa.decrypt key (Rsa.encrypt key.Rsa.pub d edge) = Some edge);
  checkb "empty roundtrips" true (Rsa.decrypt key (Rsa.encrypt key.Rsa.pub d "") = Some "")

let test_rsa_deterministic_from_seed () =
  let k1 = Rsa.generate ~bits:256 (Drbg.create ~seed:"same") in
  let k2 = Rsa.generate ~bits:256 (Drbg.create ~seed:"same") in
  checkb "same seed, same key" true (Bignum.equal k1.Rsa.pub.Rsa.n k2.Rsa.pub.Rsa.n);
  let k3 = Rsa.generate ~bits:256 (Drbg.create ~seed:"different") in
  checkb "different seed, different key" false
    (Bignum.equal k1.Rsa.pub.Rsa.n k3.Rsa.pub.Rsa.n)

let test_rsa_modulus_size () =
  List.iter
    (fun bits ->
      let k = Rsa.generate ~bits (drbg ()) in
      Alcotest.(check int)
        (Printf.sprintf "%d-bit modulus" bits)
        bits
        (Bignum.bit_length k.Rsa.pub.Rsa.n))
    [ 64; 128; 512 ]

let test_miller_rabin () =
  let d = drbg () in
  let prime p = Rsa.is_probable_prime (Bignum.of_int p) ~rounds:10 d in
  List.iter (fun p -> checkb (Printf.sprintf "%d prime" p) true (prime p))
    [ 2; 3; 5; 101; 251; 257; 65537; 1000003 ];
  List.iter (fun c -> checkb (Printf.sprintf "%d composite" c) false (prime c))
    [ 1; 4; 100; 255; 65535; 1000001; 561 (* Carmichael *); 8911 ]

(* --- DRBG --- *)

let test_drbg_deterministic () =
  let a = Drbg.create ~seed:"s" and b = Drbg.create ~seed:"s" in
  checks "same stream" (Drbg.generate_string a 64) (Drbg.generate_string b 64);
  checkb "stream advances" true
    (Drbg.generate_string a 16 <> Drbg.generate_string a 16)

let test_drbg_seed_and_reseed () =
  let a = Drbg.create ~seed:"s1" and b = Drbg.create ~seed:"s2" in
  checkb "different seeds" true
    (Drbg.generate_string a 32 <> Drbg.generate_string b 32);
  let c = Drbg.create ~seed:"s1" and d = Drbg.create ~seed:"s1" in
  ignore (Drbg.generate_string c 32);
  ignore (Drbg.generate_string d 32);
  Drbg.reseed c "extra entropy";
  checkb "reseed diverges" true
    (Drbg.generate_string c 32 <> Drbg.generate_string d 32)

let test_drbg_output_sizes () =
  let d = Drbg.create ~seed:"sz" in
  List.iter
    (fun n -> Alcotest.(check int) (Printf.sprintf "%d bytes" n) n
        (String.length (Drbg.generate_string d n)))
    [ 1; 31; 32; 33; 100; 1000 ]

(* --- AEAD --- *)

let test_aead_roundtrip () =
  let key = String.make Aead.key_size 'k' and nonce = String.make Aead.nonce_size 'n' in
  let pt = "PAL state to protect across a context switch" in
  let ct = Aead.encrypt ~key ~nonce pt in
  Alcotest.(check int) "overhead" (String.length pt + Aead.overhead) (String.length ct);
  checkb "roundtrip" true (Aead.decrypt ~key ~nonce ct = Some pt);
  checkb "empty plaintext" true
    (Aead.decrypt ~key ~nonce (Aead.encrypt ~key ~nonce "") = Some "")

let test_aead_tamper_detect () =
  let key = String.make Aead.key_size 'k' and nonce = String.make Aead.nonce_size 'n' in
  let ct = Aead.encrypt ~key ~nonce "secret" in
  for i = 0 to String.length ct - 1 do
    let t = String.mapi (fun j c -> if i = j then Char.chr (Char.code c lxor 1) else c) ct in
    checkb (Printf.sprintf "bit flip at %d detected" i) true
      (Aead.decrypt ~key ~nonce t = None)
  done

let test_aead_wrong_key_nonce () =
  let key = String.make Aead.key_size 'k' and nonce = String.make Aead.nonce_size 'n' in
  let ct = Aead.encrypt ~key ~nonce "secret" in
  checkb "wrong key" true
    (Aead.decrypt ~key:(String.make Aead.key_size 'x') ~nonce ct = None);
  checkb "wrong nonce" true
    (Aead.decrypt ~key ~nonce:(String.make Aead.nonce_size 'x') ct = None);
  checkb "truncated" true (Aead.decrypt ~key ~nonce "short" = None);
  Alcotest.check_raises "bad key size" (Invalid_argument "Aead: bad key size")
    (fun () -> ignore (Aead.encrypt ~key:"short" ~nonce "x"))

let prop_aead_roundtrip =
  QCheck.Test.make ~name:"AEAD roundtrips arbitrary payloads" ~count:100
    QCheck.(string_of_size (QCheck.Gen.int_bound 2048))
    (fun pt ->
      let key = Sha256.digest "k" and nonce = String.sub (Sha256.digest "n") 0 16 in
      Aead.decrypt ~key ~nonce (Aead.encrypt ~key ~nonce pt) = Some pt)

(* --- Wire --- *)

let test_wire_roundtrip () =
  let enc = Wire.encoder () in
  Wire.add_string enc "hello";
  Wire.add_int enc 123456789;
  Wire.add_list enc (fun x -> Wire.add_string enc x) [ "a"; "bb"; "" ];
  let d = Wire.decoder (Wire.contents enc) in
  checkb "string" true (Wire.read_string d = Some "hello");
  checkb "int" true (Wire.read_int d = Some 123456789);
  checkb "list" true (Wire.read_list d (fun () -> Wire.read_string d) = Some [ "a"; "bb"; "" ]);
  checkb "at end" true (Wire.at_end d)

let test_wire_malformed_is_total () =
  (* Arbitrary junk must decode to None, never raise. *)
  List.iter
    (fun junk ->
      let d = Wire.decoder junk in
      ignore (Wire.read_string d);
      let d = Wire.decoder junk in
      ignore (Wire.read_int d);
      let d = Wire.decoder junk in
      ignore (Wire.read_list d (fun () -> Wire.read_string d)))
    [ ""; "\xff"; "\xff\xff\xff\xff"; "\x00\x00\x00\x10abc"; String.make 3 '\x00' ];
  checkb "truncated string" true (Wire.read_string (Wire.decoder "\x00\x00\x00\x05ab") = None);
  checkb "short int" true (Wire.read_int (Wire.decoder "\x00\x00\x00") = None);
  checkb "huge count rejected" true
    (Wire.read_list (Wire.decoder "\x7f\xff\xff\xff") (fun () -> Some ()) = None)

let prop_wire_string_roundtrip =
  QCheck.Test.make ~name:"wire string roundtrip" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_bound 300))
    (fun s ->
      let enc = Wire.encoder () in
      Wire.add_string enc s;
      Wire.read_string (Wire.decoder (Wire.contents enc)) = Some s)

(* --- Keyvault --- *)

let test_keyvault_memoizes () =
  let a = Keyvault.get ~label:"test-kv" ~bits:256 in
  let b = Keyvault.get ~label:"test-kv" ~bits:256 in
  checkb "same object" true (a == b);
  let c = Keyvault.get ~label:"test-kv-2" ~bits:256 in
  checkb "distinct labels distinct keys" false
    (Bignum.equal a.Rsa.pub.Rsa.n c.Rsa.pub.Rsa.n)

let test_keyvault_embedded () =
  (* The embedded 2048-bit keys must load fast and be valid signing keys. *)
  let t0 = Unix.gettimeofday () in
  let k = Keyvault.get ~label:"privacy-ca" ~bits:2048 in
  let elapsed = Unix.gettimeofday () -. t0 in
  checkb "loads without generation" true (elapsed < 1.0);
  Alcotest.(check int) "2048 bits" 2048 (Bignum.bit_length k.Rsa.pub.Rsa.n);
  let s = Rsa.sign k "check" in
  checkb "valid key" true (Rsa.verify k.Rsa.pub ~msg:"check" ~signature:s)

let () =
  Alcotest.run "crypto"
    [
      ( "sha1",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha1_vectors;
          Alcotest.test_case "streaming equivalence" `Quick test_sha1_streaming_equivalence;
          Alcotest.test_case "padding edge lengths" `Quick test_sha1_length_padding_edges;
        ] );
      ("sha256", [ Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors ]);
      ( "hmac",
        [
          Alcotest.test_case "HMAC-SHA1 RFC2202" `Quick test_hmac_sha1_vectors;
          Alcotest.test_case "HMAC-SHA256 RFC4231" `Quick test_hmac_sha256_vector;
          Alcotest.test_case "long key" `Quick test_hmac_long_key;
          Alcotest.test_case "constant-time equality" `Quick test_constant_time_equal;
        ] );
      ( "bignum",
        [
          Alcotest.test_case "of/to int" `Quick test_bignum_of_to_int;
          Alcotest.test_case "hex roundtrip" `Quick test_bignum_hex_roundtrip;
          Alcotest.test_case "bytes roundtrip" `Quick test_bignum_bytes_roundtrip;
          Alcotest.test_case "sub underflow" `Quick test_bignum_sub_negative;
          Alcotest.test_case "division cases" `Quick test_bignum_division_cases;
          Alcotest.test_case "shifts" `Quick test_bignum_shifts;
          Alcotest.test_case "bit operations" `Quick test_bignum_bit_ops;
          Alcotest.test_case "mod_pow known values" `Quick test_bignum_modpow_known;
          Alcotest.test_case "mod_inverse" `Quick test_bignum_mod_inverse;
          Alcotest.test_case "gcd" `Quick test_bignum_gcd;
          QCheck_alcotest.to_alcotest prop_add_comm;
          QCheck_alcotest.to_alcotest prop_add_assoc;
          QCheck_alcotest.to_alcotest prop_mul_comm;
          QCheck_alcotest.to_alcotest prop_distributive;
          QCheck_alcotest.to_alcotest prop_divmod_identity;
          QCheck_alcotest.to_alcotest prop_sub_add_roundtrip;
          QCheck_alcotest.to_alcotest prop_shift_mul;
          QCheck_alcotest.to_alcotest prop_modpow_matches_naive;
          QCheck_alcotest.to_alcotest prop_mod_inverse_correct;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "sign/verify" `Quick test_rsa_sign_verify;
          Alcotest.test_case "encrypt/decrypt" `Quick test_rsa_encrypt_decrypt;
          Alcotest.test_case "payload limits" `Quick test_rsa_encrypt_limits;
          Alcotest.test_case "deterministic from seed" `Quick test_rsa_deterministic_from_seed;
          Alcotest.test_case "modulus size" `Quick test_rsa_modulus_size;
          Alcotest.test_case "Miller-Rabin" `Quick test_miller_rabin;
        ] );
      ( "drbg",
        [
          Alcotest.test_case "deterministic" `Quick test_drbg_deterministic;
          Alcotest.test_case "seed and reseed" `Quick test_drbg_seed_and_reseed;
          Alcotest.test_case "output sizes" `Quick test_drbg_output_sizes;
        ] );
      ( "aead",
        [
          Alcotest.test_case "roundtrip" `Quick test_aead_roundtrip;
          Alcotest.test_case "tamper detection" `Quick test_aead_tamper_detect;
          Alcotest.test_case "wrong key/nonce" `Quick test_aead_wrong_key_nonce;
          QCheck_alcotest.to_alcotest prop_aead_roundtrip;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "malformed input is total" `Quick test_wire_malformed_is_total;
          QCheck_alcotest.to_alcotest prop_wire_string_roundtrip;
        ] );
      ( "keyvault",
        [
          Alcotest.test_case "memoization" `Quick test_keyvault_memoizes;
          Alcotest.test_case "embedded 2048-bit keys" `Quick test_keyvault_embedded;
        ] );
    ]
