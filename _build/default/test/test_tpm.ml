(* TPM model tests: PCR bank semantics (static vs dynamic, reboot vs
   dynamic reset), extend chaining, composites, the TPM_HASH_* locality
   rules, sealed-storage policy enforcement, quote signatures, GetRandom,
   the Figure 3 timing anchors per vendor, sePCR state machine and access
   control, and the multi-CPU command lock. *)

open Sea_sim
open Sea_crypto
open Sea_tpm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let fresh ?(vendor = Vendor.Broadcom) ?(sepcr_count = 0) () =
  let e = Engine.create () in
  (e, Tpm.create ~vendor ~key_bits:512 ~sepcr_count e)

let zero20 = String.make 20 '\000'
let ones20 = String.make 20 '\xff'

(* --- PCR bank --- *)

let test_pcr_reset_semantics () =
  let bank = Pcr.create () in
  checks "static PCR boots to zero" zero20 (Pcr.read bank 0);
  checks "dynamic PCR boots to -1" ones20 (Pcr.read bank 17);
  Pcr.dynamic_reset bank;
  checks "dynamic reset to zero" zero20 (Pcr.read bank 17);
  ignore (Pcr.extend bank 0 "m");
  ignore (Pcr.extend bank 17 "m");
  Pcr.reboot bank;
  checks "reboot clears static" zero20 (Pcr.read bank 0);
  checks "reboot sets dynamic to -1" ones20 (Pcr.read bank 17)

let test_pcr_extend_chain () =
  let bank = Pcr.create () in
  Pcr.dynamic_reset bank;
  let m = Sha1.digest "code" in
  let v1 = Pcr.extend bank 17 m in
  checks "extend formula" (Sha1.digest (zero20 ^ m)) v1;
  let v2 = Pcr.extend bank 17 m in
  checks "chains on previous" (Sha1.digest (v1 ^ m)) v2;
  checkb "order matters" true
    (let b1 = Pcr.create () and b2 = Pcr.create () in
     ignore (Pcr.extend b1 0 "a");
     ignore (Pcr.extend b1 0 "b");
     ignore (Pcr.extend b2 0 "b");
     ignore (Pcr.extend b2 0 "a");
     Pcr.read b1 0 <> Pcr.read b2 0)

let test_pcr_extend_hashes_long_input () =
  let bank = Pcr.create () in
  let long = String.make 1000 'x' in
  let v = Pcr.extend bank 0 long in
  checks "non-digest input hashed first" (Sha1.digest (zero20 ^ Sha1.digest long)) v

let test_pcr_bounds () =
  let bank = Pcr.create () in
  Alcotest.check_raises "read out of range" (Invalid_argument "Pcr: index 24 out of range")
    (fun () -> ignore (Pcr.read bank 24));
  Alcotest.check_raises "negative index" (Invalid_argument "Pcr: index -1 out of range")
    (fun () -> ignore (Pcr.read bank (-1)))

let test_pcr_composite () =
  let bank = Pcr.create () in
  ignore (Pcr.extend bank 3 "x");
  let c1 = Pcr.composite bank [ 3; 17 ] in
  let c2 = Pcr.composite bank [ 17; 3 ] in
  checks "selection order canonicalized" c1 c2;
  let c3 = Pcr.composite_of_values [ (3, Pcr.read bank 3); (17, Pcr.read bank 17) ] in
  checks "verifier-side computation matches" c1 c3;
  checkb "different values different composite" true
    (ignore (Pcr.extend bank 3 "y");
     Pcr.composite bank [ 3; 17 ] <> c1);
  Alcotest.check_raises "duplicate index"
    (Invalid_argument "Pcr.composite: duplicate index") (fun () ->
      ignore (Pcr.composite bank [ 3; 3 ]))

let prop_pcr_commits_to_history =
  QCheck.Test.make ~name:"distinct extension histories give distinct PCR values"
    ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 5) small_string)
              (list_of_size (QCheck.Gen.int_range 0 5) small_string))
    (fun (h1, h2) ->
      QCheck.assume (h1 <> h2);
      let run h =
        let bank = Pcr.create () in
        List.iter (fun m -> ignore (Pcr.extend bank 0 m)) h;
        Pcr.read bank 0
      in
      run h1 <> run h2)

(* --- TPM_HASH_* sequence --- *)

let test_hash_sequence_locality () =
  let _, tpm = fresh () in
  checkb "software cannot HASH_START" true
    (Tpm.hash_start tpm ~caller:Tpm.Software = Error "TPM_HASH_START is a hardware-only command");
  checkb "hardware can" true (Tpm.hash_start tpm ~caller:(Tpm.Cpu 0) = Ok ());
  checkb "data accepted in session" true (Tpm.hash_data tpm "abc" = Ok ());
  (match Tpm.hash_end tpm with
  | Ok v -> checks "PCR17 = extend(0, H(abc))" (Sha1.digest (zero20 ^ Sha1.digest "abc")) v
  | Error e -> Alcotest.fail e);
  checkb "data outside session rejected" true
    (Tpm.hash_data tpm "x" = Error "no open hash session");
  checkb "end outside session rejected" true
    (match Tpm.hash_end tpm with Error _ -> true | Ok _ -> false)

let test_hash_start_resets_dynamic () =
  let _, tpm = fresh () in
  checks "PCR17 = -1 after boot" ones20 (Tpm.pcr_read tpm 17);
  ignore (Tpm.hash_start tpm ~caller:(Tpm.Cpu 0));
  checks "PCR17 reset to 0" zero20 (Tpm.pcr_read tpm 17);
  checks "PCR23 reset too" zero20 (Tpm.pcr_read tpm 23);
  checkb "static PCR untouched" true (Tpm.pcr_read tpm 0 = zero20)

let test_hash_chunked_equals_whole () =
  let _, tpm1 = fresh () in
  let _, tpm2 = fresh () in
  let code = String.init 300 (fun i -> Char.chr (i mod 251)) in
  ignore (Tpm.hash_start tpm1 ~caller:(Tpm.Cpu 0));
  ignore (Tpm.hash_data tpm1 code);
  let v1 = Result.get_ok (Tpm.hash_end tpm1) in
  ignore (Tpm.hash_start tpm2 ~caller:(Tpm.Cpu 0));
  String.iter (fun c -> ignore (Tpm.hash_data tpm2 (String.make 1 c))) code;
  let v2 = Result.get_ok (Tpm.hash_end tpm2) in
  checks "chunking irrelevant to measurement" v1 v2

(* --- Sealed storage --- *)

let test_seal_unseal_roundtrip () =
  let _, tpm = fresh () in
  let caller = Tpm.Cpu 0 in
  let policy = [ (17, Tpm.pcr_read tpm 17) ] in
  let blob = Result.get_ok (Tpm.seal tpm ~caller ~pcr_policy:policy "secret") in
  checkb "blob is opaque" true (blob <> "secret");
  checkb "unseals under matching policy" true
    (Tpm.unseal tpm ~caller blob = Ok "secret")

let test_unseal_policy_mismatch () =
  let _, tpm = fresh () in
  let caller = Tpm.Cpu 0 in
  let policy = [ (17, Tpm.pcr_read tpm 17) ] in
  let blob = Result.get_ok (Tpm.seal tpm ~caller ~pcr_policy:policy "secret") in
  ignore (Tpm.pcr_extend tpm 17 "different code");
  checkb "policy mismatch refused" true
    (Tpm.unseal tpm ~caller blob = Error "PCR policy mismatch")

let test_unseal_wrong_tpm () =
  let _, tpm1 = fresh ~vendor:Vendor.Broadcom () in
  let _, tpm2 = fresh ~vendor:Vendor.Infineon () in
  let caller = Tpm.Cpu 0 in
  let blob = Result.get_ok (Tpm.seal tpm1 ~caller ~pcr_policy:[] "secret") in
  (match Tpm.unseal tpm2 ~caller blob with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign TPM unsealed the blob")

let test_unseal_corrupted_blob () =
  let _, tpm = fresh () in
  let caller = Tpm.Cpu 0 in
  let blob = Result.get_ok (Tpm.seal tpm ~caller ~pcr_policy:[] "secret") in
  let t = String.mapi (fun i c -> if i = String.length blob - 1 then Char.chr (Char.code c lxor 1) else c) blob in
  (match Tpm.unseal tpm ~caller t with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted blob unsealed");
  (match Tpm.unseal tpm ~caller "garbage" with
  | Error "corrupted blob" -> ()
  | _ -> Alcotest.fail "garbage should be rejected as corrupt")

let test_seal_large_payload () =
  let _, tpm = fresh () in
  let caller = Tpm.Cpu 0 in
  let payload = String.make 8192 'p' in
  let blob = Result.get_ok (Tpm.seal tpm ~caller ~pcr_policy:[] payload) in
  checkb "8 KB payload roundtrips" true (Tpm.unseal tpm ~caller blob = Ok payload);
  checkb "oversized refused" true
    (Tpm.seal tpm ~caller ~pcr_policy:[] (String.make (65 * 1024) 'x')
    = Error "payload too large")

let test_seal_multi_pcr_policy () =
  let _, tpm = fresh () in
  let caller = Tpm.Cpu 0 in
  let policy = [ (17, Tpm.pcr_read tpm 17); (18, Tpm.pcr_read tpm 18) ] in
  let blob = Result.get_ok (Tpm.seal tpm ~caller ~pcr_policy:policy "s") in
  checkb "both match" true (Tpm.unseal tpm ~caller blob = Ok "s");
  ignore (Tpm.pcr_extend tpm 18 "x");
  checkb "one mismatch suffices to refuse" true
    (Tpm.unseal tpm ~caller blob = Error "PCR policy mismatch")

(* --- Quote --- *)

let test_quote_verifies () =
  let _, tpm = fresh () in
  let q =
    Result.get_ok
      (Tpm.quote tpm ~caller:Tpm.Software ~selection:[ 17; 18 ] ~nonce:"n1" ())
  in
  checkb "verifies under AIK" true (Tpm.verify_quote ~aik:(Tpm.aik_public tpm) q);
  checki "selection size" 2 (List.length q.Tpm.selection);
  checks "nonce embedded" "n1" q.Tpm.nonce

let test_quote_tamper_detected () =
  let _, tpm = fresh () in
  let q = Result.get_ok (Tpm.quote tpm ~caller:Tpm.Software ~selection:[ 17 ] ~nonce:"n" ()) in
  let bad_nonce = { q with Tpm.nonce = "other" } in
  checkb "nonce swap detected" false (Tpm.verify_quote ~aik:(Tpm.aik_public tpm) bad_nonce);
  let bad_pcr =
    { q with Tpm.selection = List.map (fun (i, _) -> (i, zero20)) q.Tpm.selection }
  in
  checkb "value swap detected" false (Tpm.verify_quote ~aik:(Tpm.aik_public tpm) bad_pcr);
  let _, other = fresh ~vendor:Vendor.Infineon () in
  checkb "wrong AIK" false (Tpm.verify_quote ~aik:(Tpm.aik_public other) q)

let test_aik_certificate () =
  let _, tpm = fresh () in
  let ca = Tpm.privacy_ca_public () in
  checkb "certificate chains" true
    (Tpm.verify_aik_certificate ~ca ~aik:(Tpm.aik_public tpm) (Tpm.aik_certificate tpm));
  let _, other = fresh ~vendor:Vendor.Infineon () in
  checkb "cert bound to key" false
    (Tpm.verify_aik_certificate ~ca ~aik:(Tpm.aik_public other) (Tpm.aik_certificate tpm))

(* --- GetRandom --- *)

let test_get_random () =
  let _, tpm = fresh () in
  let a = Tpm.get_random tpm 128 in
  let b = Tpm.get_random tpm 128 in
  checki "length" 128 (String.length a);
  checkb "stream advances" true (a <> b)

(* --- Timing anchors (Figure 3) --- *)

let op_time tpm f =
  let e = Tpm.engine tpm in
  let t0 = Engine.now e in
  f ();
  Time.to_ms (Time.sub (Engine.now e) t0)

let test_figure3_anchors () =
  (* The text's hard anchors: Broadcom Seal small-payload 11.39 ms,
     Infineon Unseal 390.98 ms, Broadcom slowest Quote, and the 1132 ms
     (quote+unseal) gap between Broadcom and Infineon. *)
  let _, broadcom = fresh ~vendor:Vendor.Broadcom () in
  let _, infineon = fresh ~vendor:Vendor.Infineon () in
  let caller = Tpm.Cpu 0 in
  let seal_b = op_time broadcom (fun () ->
      ignore (Tpm.seal broadcom ~caller ~pcr_policy:[] "")) in
  checkb "Broadcom seal ~11.39 ms" true (abs_float (seal_b -. 11.39) < 1.0);
  let blob = Result.get_ok (Tpm.seal infineon ~caller ~pcr_policy:[] "") in
  let unseal_i = op_time infineon (fun () -> ignore (Tpm.unseal infineon ~caller blob)) in
  checkb "Infineon unseal ~391+ ms" true (abs_float (unseal_i -. 399.) < 15.);
  let quote_b = op_time broadcom (fun () ->
      ignore (Tpm.quote broadcom ~caller:Tpm.Software ~selection:[ 17 ] ~nonce:"n" ())) in
  let quote_i = op_time infineon (fun () ->
      ignore (Tpm.quote infineon ~caller:Tpm.Software ~selection:[ 17 ] ~nonce:"n" ())) in
  checkb "Broadcom quote ~953 ms" true (abs_float (quote_b -. 953.) < 20.);
  checkb "Broadcom slowest quote" true (quote_b > quote_i)

let test_vendor_profiles_ordered () =
  (* Sanity of the calibration table: seal spans 20-500 ms and unseal
     290-900 ms across vendors (§5.7). *)
  let profiles = List.map Timing.profile Vendor.measured in
  let seal_ms p = Time.to_ms (Timing.seal_time p ~payload_bytes:256) in
  let unseal_ms p = Time.to_ms (Timing.unseal_time p ~payload_bytes:256) in
  let seals = List.map seal_ms profiles and unseals = List.map unseal_ms profiles in
  checkb "min seal ~20 ms" true (List.fold_left min infinity seals < 25.);
  checkb "max seal ~500 ms" true (List.fold_left max 0. seals > 450.);
  checkb "min unseal >= ~290 ms" true (List.fold_left min infinity unseals > 280.);
  checkb "max unseal ~900 ms" true (List.fold_left max 0. unseals > 850.)

let test_scaled_profile () =
  let p = Timing.profile Vendor.Broadcom in
  let fast = Timing.scaled p ~factor:0.1 in
  checkb "10x faster seal" true
    (Time.to_ms fast.Timing.seal_base < Time.to_ms p.Timing.seal_base /. 9.)

let test_ideal_profile_fast () =
  let _, tpm = fresh ~vendor:Vendor.Ideal () in
  let t = op_time tpm (fun () ->
      ignore (Tpm.seal tpm ~caller:(Tpm.Cpu 0) ~pcr_policy:[] "x")) in
  checkb "ideal TPM sub-ms" true (t < 1.

)

(* --- Reboot --- *)

let test_reboot_semantics () =
  let _, tpm = fresh ~sepcr_count:2 () in
  ignore (Tpm.hash_start tpm ~caller:(Tpm.Cpu 0));
  ignore (Tpm.hash_data tpm "x");
  let h = Result.get_ok (Tpm.sepcr_allocate tpm ~caller:(Tpm.Cpu 0)) in
  ignore h;
  Tpm.reboot tpm;
  checks "dynamic PCRs back to -1" ones20 (Tpm.pcr_read tpm 17);
  checkb "hash session dropped" true (Tpm.hash_data tpm "x" = Error "no open hash session");
  (match Tpm.sepcr_bank tpm with
  | Some bank -> checki "sePCRs all free after reboot" 2 (Sepcr.free_count bank)
  | None -> Alcotest.fail "expected sePCR bank")

(* --- sePCR bank --- *)

let test_sepcr_allocation_exhaustion () =
  let _, tpm = fresh ~sepcr_count:2 () in
  let caller = Tpm.Cpu 0 in
  let h1 = Result.get_ok (Tpm.sepcr_allocate tpm ~caller) in
  let h2 = Result.get_ok (Tpm.sepcr_allocate tpm ~caller) in
  checkb "distinct handles" true (h1 <> h2);
  checkb "exhausted" true (Tpm.sepcr_allocate tpm ~caller = Error "no free sePCR");
  checkb "software cannot allocate" true
    (match Tpm.sepcr_allocate tpm ~caller:Tpm.Software with Error _ -> true | Ok _ -> false)

let test_sepcr_binding_enforced () =
  let _, tpm = fresh ~sepcr_count:2 () in
  let h = Result.get_ok (Tpm.sepcr_allocate tpm ~caller:(Tpm.Cpu 0)) in
  checkb "owner extends" true
    (match Tpm.sepcr_extend tpm ~caller:(Tpm.Cpu 0) h "m" with Ok _ -> true | Error _ -> false);
  checkb "other CPU blocked" true
    (Tpm.sepcr_extend tpm ~caller:(Tpm.Cpu 1) h "m" = Error "sePCR bound to a different CPU");
  checkb "software blocked" true
    (match Tpm.sepcr_extend tpm ~caller:Tpm.Software h "m" with Error _ -> true | Ok _ -> false);
  checkb "owner reads" true
    (match Tpm.sepcr_read tpm ~caller:(Tpm.Cpu 0) h with Ok _ -> true | Error _ -> false)

let test_sepcr_measure_chain () =
  let _, tpm = fresh ~sepcr_count:1 () in
  let caller = Tpm.Cpu 0 in
  let h = Result.get_ok (Tpm.sepcr_allocate tpm ~caller) in
  let code = "some PAL code" in
  let v = Result.get_ok (Tpm.sepcr_measure tpm ~caller h ~code) in
  checks "measure = extend(0, H(code))" (Sha1.digest (zero20 ^ Sha1.digest code)) v

let test_sepcr_quote_state_machine () =
  let _, tpm = fresh ~sepcr_count:1 () in
  let caller = Tpm.Cpu 0 in
  let h = Result.get_ok (Tpm.sepcr_allocate tpm ~caller) in
  ignore (Tpm.sepcr_measure tpm ~caller h ~code:"code");
  (* While Exclusive, software cannot quote it. *)
  checkb "software quote in Exclusive blocked" true
    (Tpm.quote tpm ~caller:Tpm.Software ~sepcr:h ~selection:[] ~nonce:"n" ()
    = Error "sePCR bound to an executing PAL");
  ignore (Tpm.sepcr_release_for_quote tpm ~caller h);
  let q =
    Result.get_ok (Tpm.quote tpm ~caller:Tpm.Software ~sepcr:h ~selection:[] ~nonce:"n" ())
  in
  checkb "quote carries sePCR value" true (q.Tpm.sepcr_value <> None);
  checkb "verifies" true (Tpm.verify_quote ~aik:(Tpm.aik_public tpm) q);
  (* After the quote the sePCR is Free again. *)
  (match Tpm.sepcr_bank tpm with
  | Some bank -> checki "freed after quote" 1 (Sepcr.free_count bank)
  | None -> assert false);
  checkb "second quote fails (already free)" true
    (Tpm.quote tpm ~caller:Tpm.Software ~sepcr:h ~selection:[] ~nonce:"n" ()
    = Error "sePCR is free")

let test_sepcr_seal_binds_to_measurement () =
  (* Challenge 4 (§5.4.4): state sealed under one sePCR must unseal for
     the same PAL later even on a different sePCR/CPU. *)
  let _, tpm = fresh ~sepcr_count:2 () in
  let h1 = Result.get_ok (Tpm.sepcr_allocate tpm ~caller:(Tpm.Cpu 0)) in
  ignore (Tpm.sepcr_measure tpm ~caller:(Tpm.Cpu 0) h1 ~code:"PAL-A");
  let blob =
    Result.get_ok (Tpm.seal tpm ~caller:(Tpm.Cpu 0) ~sepcr:h1 ~pcr_policy:[] "state")
  in
  (* PAL exits; sePCR freed. *)
  ignore (Tpm.sepcr_release_for_quote tpm ~caller:(Tpm.Cpu 0) h1);
  ignore (Tpm.quote tpm ~caller:Tpm.Software ~sepcr:h1 ~selection:[] ~nonce:"n" ());
  (* Relaunch the same code on another CPU: same measurement chain. *)
  let h2 = Result.get_ok (Tpm.sepcr_allocate tpm ~caller:(Tpm.Cpu 1)) in
  ignore (Tpm.sepcr_measure tpm ~caller:(Tpm.Cpu 1) h2 ~code:"PAL-A");
  checkb "same PAL unseals on a different sePCR" true
    (Tpm.unseal tpm ~caller:(Tpm.Cpu 1) ~sepcr:h2 blob = Ok "state");
  (* A different PAL must not. *)
  ignore (Tpm.sepcr_release_for_quote tpm ~caller:(Tpm.Cpu 1) h2);
  ignore (Tpm.quote tpm ~caller:Tpm.Software ~sepcr:h2 ~selection:[] ~nonce:"n" ());
  let h3 = Result.get_ok (Tpm.sepcr_allocate tpm ~caller:(Tpm.Cpu 0)) in
  ignore (Tpm.sepcr_measure tpm ~caller:(Tpm.Cpu 0) h3 ~code:"PAL-B");
  checkb "different PAL blocked" true
    (Tpm.unseal tpm ~caller:(Tpm.Cpu 0) ~sepcr:h3 blob = Error "sePCR binding mismatch")

let test_sepcr_skill () =
  let _, tpm = fresh ~sepcr_count:1 () in
  let caller = Tpm.Cpu 0 in
  let h = Result.get_ok (Tpm.sepcr_allocate tpm ~caller) in
  ignore (Tpm.sepcr_measure tpm ~caller h ~code:"code");
  checkb "skill succeeds" true (Tpm.sepcr_skill tpm ~caller h = Ok ());
  (match Tpm.sepcr_bank tpm with
  | Some bank -> checki "freed by skill" 1 (Sepcr.free_count bank)
  | None -> assert false)

let test_sepcr_rebind () =
  let _, tpm = fresh ~sepcr_count:1 () in
  let h = Result.get_ok (Tpm.sepcr_allocate tpm ~caller:(Tpm.Cpu 0)) in
  checkb "owner rebinds to new CPU" true
    (Tpm.sepcr_rebind tpm ~caller:(Tpm.Cpu 0) h ~new_owner:1 = Ok ());
  checkb "new owner can extend" true
    (match Tpm.sepcr_extend tpm ~caller:(Tpm.Cpu 1) h "m" with Ok _ -> true | Error _ -> false);
  checkb "old owner locked out" true
    (match Tpm.sepcr_extend tpm ~caller:(Tpm.Cpu 0) h "m" with Error _ -> true | Ok _ -> false)

(* --- Lock --- *)

let test_lock_arbitration () =
  let _, tpm = fresh () in
  checkb "cpu0 acquires" true (Tpm.try_lock tpm ~cpu:0);
  checkb "cpu0 reentrant" true (Tpm.try_lock tpm ~cpu:0);
  checkb "cpu1 blocked" false (Tpm.try_lock tpm ~cpu:1);
  checki "contention counted" 1 (Tpm.lock_contentions tpm);
  Tpm.unlock tpm ~cpu:0;
  checkb "cpu1 acquires after release" true (Tpm.try_lock tpm ~cpu:1);
  Alcotest.check_raises "foreign unlock"
    (Invalid_argument "Tpm.unlock: lock not held by this CPU") (fun () ->
      Tpm.unlock tpm ~cpu:0)

let () =
  Alcotest.run "tpm"
    [
      ( "pcr",
        [
          Alcotest.test_case "reset semantics" `Quick test_pcr_reset_semantics;
          Alcotest.test_case "extend chain" `Quick test_pcr_extend_chain;
          Alcotest.test_case "long input hashed" `Quick test_pcr_extend_hashes_long_input;
          Alcotest.test_case "bounds" `Quick test_pcr_bounds;
          Alcotest.test_case "composite" `Quick test_pcr_composite;
          QCheck_alcotest.to_alcotest prop_pcr_commits_to_history;
        ] );
      ( "hash-sequence",
        [
          Alcotest.test_case "locality rules" `Quick test_hash_sequence_locality;
          Alcotest.test_case "resets dynamic PCRs" `Quick test_hash_start_resets_dynamic;
          Alcotest.test_case "chunking equivalence" `Quick test_hash_chunked_equals_whole;
        ] );
      ( "sealed-storage",
        [
          Alcotest.test_case "roundtrip" `Quick test_seal_unseal_roundtrip;
          Alcotest.test_case "policy mismatch" `Quick test_unseal_policy_mismatch;
          Alcotest.test_case "wrong TPM" `Quick test_unseal_wrong_tpm;
          Alcotest.test_case "corrupted blob" `Quick test_unseal_corrupted_blob;
          Alcotest.test_case "large payload" `Quick test_seal_large_payload;
          Alcotest.test_case "multi-PCR policy" `Quick test_seal_multi_pcr_policy;
        ] );
      ( "quote",
        [
          Alcotest.test_case "verifies" `Quick test_quote_verifies;
          Alcotest.test_case "tamper detection" `Quick test_quote_tamper_detected;
          Alcotest.test_case "AIK certificate" `Quick test_aik_certificate;
        ] );
      ("random", [ Alcotest.test_case "GetRandom" `Quick test_get_random ]);
      ( "timing",
        [
          Alcotest.test_case "Figure 3 anchors" `Quick test_figure3_anchors;
          Alcotest.test_case "vendor ranges (§5.7)" `Quick test_vendor_profiles_ordered;
          Alcotest.test_case "scaled profile" `Quick test_scaled_profile;
          Alcotest.test_case "ideal TPM" `Quick test_ideal_profile_fast;
        ] );
      ("reboot", [ Alcotest.test_case "reset semantics" `Quick test_reboot_semantics ]);
      ( "sepcr",
        [
          Alcotest.test_case "allocation and exhaustion" `Quick test_sepcr_allocation_exhaustion;
          Alcotest.test_case "CPU binding enforced" `Quick test_sepcr_binding_enforced;
          Alcotest.test_case "measurement chain" `Quick test_sepcr_measure_chain;
          Alcotest.test_case "quote state machine" `Quick test_sepcr_quote_state_machine;
          Alcotest.test_case "seal binds to measurement (challenge 4)" `Quick
            test_sepcr_seal_binds_to_measurement;
          Alcotest.test_case "skill" `Quick test_sepcr_skill;
          Alcotest.test_case "rebind across CPUs" `Quick test_sepcr_rebind;
        ] );
      ("lock", [ Alcotest.test_case "multi-CPU arbitration" `Quick test_lock_arbitration ]);
    ]
