(* LPC bus model tests: transaction arithmetic, the Table 1 calibration
   anchors (wait-free 64 KB ≈ 8.85 ms; the Broadcom long-wait transfer
   ≈ 177 ms), traffic accounting, and qcheck monotonicity properties. *)

open Sea_sim
open Sea_bus

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-6))

let fresh () =
  let e = Engine.create () in
  (e, Lpc.create e)

let test_default_config () =
  let cfg = Lpc.default_config in
  checki "33 MHz cycle" 30 (Time.to_ns cfg.Lpc.cycle);
  checki "4 bytes per txn" 4 cfg.Lpc.data_bytes_per_txn;
  (* Data-cycle-only ceiling is the canonical 16.67 MB/s figure. *)
  checkb "peak bandwidth ~16.67 MB/s" true
    (abs_float (Lpc.peak_bandwidth_bytes_per_s cfg -. 16.67e6) < 0.1e6)

let test_transaction_time () =
  let _, lpc = fresh () in
  checki "wait-free txn = 18 cycles" 540
    (Time.to_ns (Lpc.transaction_time lpc ~device_wait:Time.zero));
  checki "device wait adds" 1540
    (Time.to_ns (Lpc.transaction_time lpc ~device_wait:(Time.ns 1000)))

let test_transfer_time_rounding () =
  let _, lpc = fresh () in
  let t1 = Lpc.transfer_time lpc ~device_wait:Time.zero ~bytes:1 in
  let t4 = Lpc.transfer_time lpc ~device_wait:Time.zero ~bytes:4 in
  let t5 = Lpc.transfer_time lpc ~device_wait:Time.zero ~bytes:5 in
  checkb "partial chunk costs a full txn" true (t1 = t4);
  checkb "5 bytes = 2 txns" true (t5 = Time.scale t4 2);
  checki "zero bytes free" 0 (Time.to_ns (Lpc.transfer_time lpc ~device_wait:Time.zero ~bytes:0))

let test_table1_tyan_anchor () =
  (* 64 KB wait-free: the Tyan n3600R row of Table 1 measured 8.82 ms. *)
  let _, lpc = fresh () in
  let t = Lpc.transfer_time lpc ~device_wait:Time.zero ~bytes:(64 * 1024) in
  checkb "within 2% of 8.82 ms" true (abs_float (Time.to_ms t -. 8.82) < 0.18)

let test_table1_broadcom_anchor () =
  (* 64 KB against the Broadcom's 10.246 us long wait: ≈ 176.7 ms of bus
     time (the remaining ~0.8 ms of the 177.52 ms SKINIT is TPM command
     processing). *)
  let _, lpc = fresh () in
  let wait = Time.us 10.246 in
  let t = Lpc.transfer_time lpc ~device_wait:wait ~bytes:(64 * 1024) in
  checkb "within 1% of 176.7 ms" true (abs_float (Time.to_ms t -. 176.7) < 1.8)

let test_transfer_advances_clock_and_counts () =
  let e, lpc = fresh () in
  Lpc.transfer lpc ~device_wait:Time.zero ~bytes:100;
  checki "clock advanced" (25 * 540) (Time.to_ns (Engine.now e));
  checki "bytes counted" 100 (Lpc.total_bytes lpc);
  checki "transactions counted" 25 (Lpc.total_transactions lpc);
  Lpc.transfer lpc ~device_wait:Time.zero ~bytes:4;
  checki "accumulates" 104 (Lpc.total_bytes lpc)

let test_custom_config () =
  let e = Engine.create () in
  let config = { Lpc.cycle = Time.ns 10; data_bytes_per_txn = 8; base_cycles_per_txn = 10 } in
  let lpc = Lpc.create ~config e in
  checki "custom txn time" 100 (Time.to_ns (Lpc.transaction_time lpc ~device_wait:Time.zero));
  checkf "config stored" 10. (float_of_int (Lpc.config lpc).Lpc.base_cycles_per_txn)

let prop_transfer_monotone_in_bytes =
  QCheck.Test.make ~name:"transfer time monotone in byte count" ~count:200
    QCheck.(pair (int_bound 100_000) (int_bound 100_000))
    (fun (a, b) ->
      let _, lpc = fresh () in
      let lo = min a b and hi = max a b in
      Lpc.transfer_time lpc ~device_wait:Time.zero ~bytes:lo
      <= Lpc.transfer_time lpc ~device_wait:Time.zero ~bytes:hi)

let prop_transfer_linear_in_txns =
  QCheck.Test.make ~name:"transfer time = txns × txn time" ~count:200
    QCheck.(pair (int_range 1 100_000) (int_bound 20_000))
    (fun (bytes, wait_ns) ->
      let _, lpc = fresh () in
      let wait = Time.ns wait_ns in
      let txns = (bytes + 3) / 4 in
      Lpc.transfer_time lpc ~device_wait:wait ~bytes
      = Time.scale (Lpc.transaction_time lpc ~device_wait:wait) txns)

let () =
  Alcotest.run "bus"
    [
      ( "lpc",
        [
          Alcotest.test_case "default configuration" `Quick test_default_config;
          Alcotest.test_case "transaction time" `Quick test_transaction_time;
          Alcotest.test_case "chunk rounding" `Quick test_transfer_time_rounding;
          Alcotest.test_case "Table 1 anchor: Tyan (no TPM)" `Quick test_table1_tyan_anchor;
          Alcotest.test_case "Table 1 anchor: Broadcom wait" `Quick test_table1_broadcom_anchor;
          Alcotest.test_case "clock and traffic accounting" `Quick
            test_transfer_advances_clock_and_counts;
          Alcotest.test_case "custom configuration" `Quick test_custom_config;
          QCheck_alcotest.to_alcotest prop_transfer_monotone_in_bytes;
          QCheck_alcotest.to_alcotest prop_transfer_linear_in_txns;
        ] );
    ]
