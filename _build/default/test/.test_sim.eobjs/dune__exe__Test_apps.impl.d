test/test_apps.ml: Alcotest Bgp_attest Cert_authority Char Codec Factoring List Machine Printf Rootkit_detector Sea_apps Sea_core Sea_crypto Sea_hw Sea_tpm Ssh_password String
