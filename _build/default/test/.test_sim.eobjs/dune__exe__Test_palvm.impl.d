test/test_palvm.ml: Alcotest Array Asm Format Isa List Machine Pal QCheck QCheck_alcotest Sea_core Sea_crypto Sea_hw Sea_palvm Sea_tpm Session String Toctou Vm
