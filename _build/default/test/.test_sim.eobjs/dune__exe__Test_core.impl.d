test/test_core.ml: Alcotest Array Attestation Cpu Generic Lifecycle List Machine Option Pal Printf QCheck QCheck_alcotest Result Sea_core Sea_hw Sea_sim Sea_tpm Session Slaunch_session String Time
