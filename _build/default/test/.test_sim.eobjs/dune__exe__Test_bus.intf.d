test/test_bus.mli:
