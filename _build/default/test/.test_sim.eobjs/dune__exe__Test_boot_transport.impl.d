test/test_boot_transport.ml: Alcotest Boot Char List Machine Printf Sea_core Sea_crypto Sea_hw Sea_os Sea_tpm String
