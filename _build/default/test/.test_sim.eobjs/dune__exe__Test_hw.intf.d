test/test_hw.mli:
