test/test_integration.ml: Alcotest Attestation Generic List Machine Pal Printf Sea_apps Sea_core Sea_crypto Sea_hw Sea_sim Sea_tpm Session Slaunch_session String Time
