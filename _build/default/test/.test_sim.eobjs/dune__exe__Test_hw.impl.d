test/test_hw.ml: Access_control Alcotest Array Char Cpu Insn Int List Machine Memctrl Memory Option Printf QCheck QCheck_alcotest Sea_crypto Sea_hw Sea_sim Sea_tpm Secb Stats String Time
