test/test_tis_auth.mli:
