test/test_crypto.ml: Aead Alcotest Bignum Buffer Char Drbg Hmac Keyvault List Printf QCheck QCheck_alcotest Rsa Sea_crypto Sha1 Sha256 String Unix Wire
