test/test_sim.ml: Alcotest Bytes Engine Event_queue Fun List Option QCheck QCheck_alcotest Rng Sea_sim Stats Time
