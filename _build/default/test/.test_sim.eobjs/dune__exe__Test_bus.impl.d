test/test_bus.ml: Alcotest Engine Lpc QCheck QCheck_alcotest Sea_bus Sea_sim Time
