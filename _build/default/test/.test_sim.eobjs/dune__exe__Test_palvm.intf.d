test/test_palvm.mli:
