test/test_os.ml: Adversary Alcotest Generic List Machine Memctrl Netload Option Pal Printf Scheduler Sea_core Sea_hw Sea_os Sea_sim Secb Session Slaunch_session Stats String Time
