test/test_tpm.ml: Alcotest Char Engine List Pcr QCheck QCheck_alcotest Result Sea_crypto Sea_sim Sea_tpm Sepcr Sha1 String Time Timing Tpm Vendor
