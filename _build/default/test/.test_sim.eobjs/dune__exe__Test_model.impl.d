test/test_model.ml: Alcotest Lifecycle List Machine Memctrl Pal Printf QCheck QCheck_alcotest Result Sea_core Sea_hw Sea_sim Secb Slaunch_session String Time
