test/test_boot_transport.mli:
