test/test_tis_auth.ml: Alcotest Auth Engine QCheck QCheck_alcotest Sea_sim Sea_tpm String Tis Tpm
