(* Tests for the TIS locality model (the hardware basis of §2.1.3's
   "only a hardware command from the CPU can reset PCR 17") and for
   OIAP-style authorization sessions with auth-protected NVRAM. *)

open Sea_sim
open Sea_tpm

let checkb = Alcotest.(check bool)

let ok = function Ok x -> x | Error e -> Alcotest.fail e
let expect_error = function Error _ -> () | Ok _ -> Alcotest.fail "expected error"

let fresh () =
  let e = Engine.create () in
  Tpm.create ~key_bits:512 e

(* --- TIS localities --- *)

let test_locality_software_range () =
  let tis = Tis.create (fresh ()) in
  ok (Tis.request tis ~locality:0 ~hardware:false);
  checkb "active 0" true (Tis.active tis = Some 0);
  ok (Tis.relinquish tis ~locality:0);
  ok (Tis.request tis ~locality:2 ~hardware:false);
  ok (Tis.relinquish tis ~locality:2);
  expect_error (Tis.request tis ~locality:5 ~hardware:false);
  expect_error (Tis.request tis ~locality:(-1) ~hardware:true)

let test_locality_hardware_reserved () =
  let tis = Tis.create (fresh ()) in
  expect_error (Tis.request tis ~locality:4 ~hardware:false);
  expect_error (Tis.request tis ~locality:3 ~hardware:false);
  ok (Tis.request tis ~locality:4 ~hardware:true);
  checkb "hardware holds 4" true (Tis.active tis = Some 4)

let test_locality_exclusion_and_preemption () =
  let tis = Tis.create (fresh ()) in
  ok (Tis.request tis ~locality:1 ~hardware:false);
  expect_error (Tis.request tis ~locality:0 ~hardware:false);
  (* The late-launch path seizes the interface. *)
  ok (Tis.request tis ~locality:4 ~hardware:true);
  checkb "hardware preempted software" true (Tis.active tis = Some 4);
  expect_error (Tis.relinquish tis ~locality:1);
  ok (Tis.relinquish tis ~locality:4)

let test_locality_hash_start_gate () =
  let tpm = fresh () in
  let tis = Tis.create tpm in
  expect_error (Tis.hash_start tis ~cpu:0);
  ok (Tis.request tis ~locality:2 ~hardware:false);
  expect_error (Tis.hash_start tis ~cpu:0);
  ok (Tis.request tis ~locality:4 ~hardware:true);
  ok (Tis.hash_start tis ~cpu:0);
  checkb "dynamic PCRs reset" true
    (Tpm.pcr_read tpm 17 = String.make 20 '\000')

let test_locality_as_caller () =
  let tis = Tis.create (fresh ()) in
  expect_error (Tis.as_caller tis ~cpu:0);
  ok (Tis.request tis ~locality:1 ~hardware:false);
  checkb "software locality = Software" true
    (Tis.as_caller tis ~cpu:0 = Ok Tpm.Software);
  ok (Tis.request tis ~locality:4 ~hardware:true);
  checkb "hardware locality = Cpu" true (Tis.as_caller tis ~cpu:3 = Ok (Tpm.Cpu 3))

(* --- OIAP / NVRAM --- *)

let test_auth_roundtrip () =
  let tpm = fresh () in
  let session = Tpm.oiap_open tpm in
  ok (Tpm.nv_define tpm ~index:1 ~size:64 ~auth_secret:"s3cret");
  let data = "important persistent state" in
  let command = Tpm.nv_write_command ~index:1 ~data in
  let auth =
    Auth.client_authorize session ~secret:"s3cret" ~command ~nonce_odd:"odd1"
  in
  ok (Tpm.nv_write tpm ~session ~index:1 ~data ~nonce_odd:"odd1" ~auth);
  let stored = ok (Tpm.nv_read tpm ~index:1) in
  checkb "data stored (zero-padded)" true
    (String.sub stored 0 (String.length data) = data
    && String.length stored = 64)

let test_auth_wrong_secret_rejected () =
  let tpm = fresh () in
  let session = Tpm.oiap_open tpm in
  ok (Tpm.nv_define tpm ~index:1 ~size:16 ~auth_secret:"right");
  let data = "x" in
  let command = Tpm.nv_write_command ~index:1 ~data in
  let auth = Auth.client_authorize session ~secret:"wrong" ~command ~nonce_odd:"o" in
  expect_error (Tpm.nv_write tpm ~session ~index:1 ~data ~nonce_odd:"o" ~auth)

let test_auth_replay_rejected () =
  (* The rolling nonce makes each auth value single-use: a bus observer
     replaying a captured write fails. *)
  let tpm = fresh () in
  let session = Tpm.oiap_open tpm in
  ok (Tpm.nv_define tpm ~index:1 ~size:16 ~auth_secret:"s");
  let data = "v1" in
  let command = Tpm.nv_write_command ~index:1 ~data in
  let auth = Auth.client_authorize session ~secret:"s" ~command ~nonce_odd:"o" in
  ok (Tpm.nv_write tpm ~session ~index:1 ~data ~nonce_odd:"o" ~auth);
  expect_error (Tpm.nv_write tpm ~session ~index:1 ~data ~nonce_odd:"o" ~auth)

let test_auth_binds_command () =
  (* An auth value computed for one write cannot authorize a different
     one (e.g. the bridge swapping the data). *)
  let tpm = fresh () in
  let session = Tpm.oiap_open tpm in
  ok (Tpm.nv_define tpm ~index:1 ~size:16 ~auth_secret:"s");
  let auth =
    Auth.client_authorize session ~secret:"s"
      ~command:(Tpm.nv_write_command ~index:1 ~data:"good")
      ~nonce_odd:"o"
  in
  expect_error (Tpm.nv_write tpm ~session ~index:1 ~data:"evil" ~nonce_odd:"o" ~auth)

let test_nv_definition_rules () =
  let tpm = fresh () in
  ok (Tpm.nv_define tpm ~index:1 ~size:16 ~auth_secret:"s");
  expect_error (Tpm.nv_define tpm ~index:1 ~size:16 ~auth_secret:"s");
  expect_error (Tpm.nv_define tpm ~index:2 ~size:0 ~auth_secret:"s");
  expect_error (Tpm.nv_define tpm ~index:3 ~size:(Tpm.nv_max_size + 1) ~auth_secret:"s");
  expect_error (Tpm.nv_read tpm ~index:99);
  (* Oversized write. *)
  let session = Tpm.oiap_open tpm in
  let data = String.make 17 'x' in
  let auth =
    Auth.client_authorize session ~secret:"s"
      ~command:(Tpm.nv_write_command ~index:1 ~data)
      ~nonce_odd:"o"
  in
  expect_error (Tpm.nv_write tpm ~session ~index:1 ~data ~nonce_odd:"o" ~auth)

let test_nv_survives_reboot () =
  let tpm = fresh () in
  let session = Tpm.oiap_open tpm in
  ok (Tpm.nv_define tpm ~index:1 ~size:8 ~auth_secret:"s");
  let data = "persist" in
  let auth =
    Auth.client_authorize session ~secret:"s"
      ~command:(Tpm.nv_write_command ~index:1 ~data)
      ~nonce_odd:"o"
  in
  ok (Tpm.nv_write tpm ~session ~index:1 ~data ~nonce_odd:"o" ~auth);
  Tpm.reboot tpm;
  checkb "NV survives power cycle" true
    (match Tpm.nv_read tpm ~index:1 with
    | Ok s -> String.sub s 0 7 = "persist"
    | Error _ -> false)

let prop_auth_requires_secret =
  QCheck.Test.make ~name:"auth forged without the secret never verifies" ~count:100
    QCheck.(pair small_string small_string)
    (fun (guess, nonce_odd) ->
      QCheck.assume (guess <> "the-real-secret");
      let session = Auth.create ~nonce_even:"even" in
      let command = "cmd" in
      let forged = Auth.client_authorize session ~secret:guess ~command ~nonce_odd in
      not
        (Auth.tpm_verify session ~secret:"the-real-secret" ~command ~nonce_odd
           ~auth:forged))

let () =
  Alcotest.run "tis-auth"
    [
      ( "locality",
        [
          Alcotest.test_case "software range" `Quick test_locality_software_range;
          Alcotest.test_case "hardware reserved" `Quick test_locality_hardware_reserved;
          Alcotest.test_case "exclusion and preemption" `Quick
            test_locality_exclusion_and_preemption;
          Alcotest.test_case "HASH_START gate" `Quick test_locality_hash_start_gate;
          Alcotest.test_case "as_caller" `Quick test_locality_as_caller;
        ] );
      ( "oiap-nvram",
        [
          Alcotest.test_case "authorized write roundtrip" `Quick test_auth_roundtrip;
          Alcotest.test_case "wrong secret rejected" `Quick test_auth_wrong_secret_rejected;
          Alcotest.test_case "replay rejected" `Quick test_auth_replay_rejected;
          Alcotest.test_case "auth binds the command" `Quick test_auth_binds_command;
          Alcotest.test_case "definition rules" `Quick test_nv_definition_rules;
          Alcotest.test_case "NV survives reboot" `Quick test_nv_survives_reboot;
          QCheck_alcotest.to_alcotest prop_auth_requires_secret;
        ] );
    ]
