(* Tests for the §6 extensions and the rollback-protection feature:
   multicore PALs (join/leave at the access-control, instruction and
   session levels), sePCR sets, PAL interrupt handling, TPM monotonic
   counters, and replay-protected sealed storage. *)

open Sea_sim
open Sea_hw
open Sea_core

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ok = function Ok x -> x | Error e -> Alcotest.fail e
let expect_error = function Error _ -> () | Ok _ -> Alcotest.fail "expected error"

let proposed ?(cpu_count = 4) () =
  let cfg = Machine.low_fidelity (Machine.proposed_variant Machine.hp_dc5750) in
  Machine.create { cfg with Machine.cpu_count }

(* --- Access-control join/leave --- *)

let test_acl_join_leave () =
  let acl = Access_control.create ~pages:8 in
  ok (Access_control.claim acl ~secb_id:1 ~cpu:0 [ 1; 2 ]);
  ok (Access_control.join acl ~secb_id:1 ~cpu:2 [ 1; 2 ]);
  checkb "shared state" true
    (Access_control.get acl 1 = Access_control.Shared { cpus = [ 0; 2 ]; secb_id = 1 });
  checkb "both CPUs access" true
    (Access_control.cpu_may_access acl ~cpu:0 1
    && Access_control.cpu_may_access acl ~cpu:2 1);
  checkb "third CPU still blocked" false (Access_control.cpu_may_access acl ~cpu:1 1);
  checkb "DMA still blocked" false (Access_control.dma_may_access acl 1);
  ok (Access_control.join acl ~secb_id:1 ~cpu:3 [ 1; 2 ]);
  ok (Access_control.leave acl ~secb_id:1 ~cpu:0 [ 1; 2 ]);
  checkb "primary may leave at the table level" true
    (Access_control.get acl 1 = Access_control.Shared { cpus = [ 2; 3 ]; secb_id = 1 });
  ok (Access_control.leave acl ~secb_id:1 ~cpu:3 [ 1; 2 ]);
  checkb "back to exclusive" true
    (Access_control.get acl 1 = Access_control.Cpu_only { cpu = 2; secb_id = 1 })

let test_acl_join_errors () =
  let acl = Access_control.create ~pages:8 in
  ok (Access_control.claim acl ~secb_id:1 ~cpu:0 [ 1 ]);
  expect_error (Access_control.join acl ~secb_id:1 ~cpu:0 [ 1 ]);
  expect_error (Access_control.join acl ~secb_id:2 ~cpu:1 [ 1 ]);
  expect_error (Access_control.leave acl ~secb_id:1 ~cpu:0 [ 1 ]);
  ok (Access_control.suspend acl ~secb_id:1 ~cpu:0 [ 1 ]);
  expect_error (Access_control.join acl ~secb_id:1 ~cpu:1 [ 1 ]);
  expect_error (Access_control.join acl ~secb_id:1 ~cpu:1 [])

let test_acl_suspend_requires_single_owner () =
  let acl = Access_control.create ~pages:8 in
  ok (Access_control.claim acl ~secb_id:1 ~cpu:0 [ 1 ]);
  ok (Access_control.join acl ~secb_id:1 ~cpu:1 [ 1 ]);
  expect_error (Access_control.suspend acl ~secb_id:1 ~cpu:0 [ 1 ]);
  ok (Access_control.leave acl ~secb_id:1 ~cpu:1 [ 1 ]);
  ok (Access_control.suspend acl ~secb_id:1 ~cpu:0 [ 1 ])

let prop_join_leave_roundtrip =
  QCheck.Test.make ~name:"join then leave restores exclusive ownership" ~count:100
    QCheck.(pair (int_bound 3) (int_bound 3))
    (fun (owner, joiner) ->
      QCheck.assume (owner <> joiner);
      let acl = Access_control.create ~pages:4 in
      match Access_control.claim acl ~secb_id:9 ~cpu:owner [ 0; 1 ] with
      | Error _ -> false
      | Ok () -> (
          match Access_control.join acl ~secb_id:9 ~cpu:joiner [ 0; 1 ] with
          | Error _ -> false
          | Ok () -> (
              match Access_control.leave acl ~secb_id:9 ~cpu:joiner [ 0; 1 ] with
              | Error _ -> false
              | Ok () ->
                  Access_control.get acl 0
                  = Access_control.Cpu_only { cpu = owner; secb_id = 9 })))

(* --- SJOIN / SLEAVE instructions --- *)

let launch_worker m ~cpu ?(compute = Time.ms 40.) ?timer () =
  let pal =
    Pal.create ~name:"mc-worker" ~code_size:8192 ~compute_time:compute
      (fun services _ -> services.Pal.seal "state")
  in
  (pal, ok (Slaunch_session.start m ~cpu ?preemption_timer:timer pal ~input:""))

let test_sjoin_sleave_instructions () =
  let m = proposed () in
  let _, s = launch_worker m ~cpu:0 () in
  let secb = Slaunch_session.secb s in
  ok (Insn.sjoin m ~cpu:1 secb);
  checkb "joined CPU in PAL" true ((Machine.cpu m 1).Cpu.status = Cpu.In_pal secb.Secb.id);
  checkb "joined CPU interrupts off" false (Machine.cpu m 1).Cpu.interrupts_enabled;
  (* Joined CPU can read the PAL's pages through the controller. *)
  ignore
    (ok (Memctrl.read m.Machine.memctrl (Memctrl.Cpu 1)
           ~page:(List.nth secb.Secb.pages 1) ~off:0 ~len:4));
  expect_error (Insn.sjoin m ~cpu:1 secb);
  ok (Insn.sleave m ~cpu:1 secb);
  checkb "left CPU back to legacy" true ((Machine.cpu m 1).Cpu.status = Cpu.Legacy);
  expect_error
    (Memctrl.read m.Machine.memctrl (Memctrl.Cpu 1)
       ~page:(List.nth secb.Secb.pages 1) ~off:0 ~len:4);
  (* Cleanup: drive the PAL to completion. *)
  ignore (ok (Slaunch_session.run_slice s ~cpu:0 ()));
  Slaunch_session.release s

let test_sjoin_requires_executing () =
  let m = proposed () in
  let _, s = launch_worker m ~cpu:0 ~timer:(Time.ms 5.) () in
  (match ok (Slaunch_session.run_slice s ~cpu:0 ()) with
  | `Yielded -> ()
  | `Finished -> Alcotest.fail "expected preemption");
  (* Suspended PAL: the adversary's uninvited join must fail. *)
  (match Sea_os.Adversary.join_uninvited_cpu m ~cpu:1 (Slaunch_session.secb s) with
  | Sea_os.Adversary.Blocked _ -> ()
  | Sea_os.Adversary.Succeeded w -> Alcotest.fail w);
  ok (Slaunch_session.kill s);
  Slaunch_session.release s

(* --- Multicore sessions --- *)

let test_multicore_speedup () =
  (* 40 ms of work, 10 ms slices: single-core needs 4 slices; with one
     helper joined the rate doubles. *)
  let m1 = proposed () in
  let _, s1 = launch_worker m1 ~cpu:0 ~timer:(Time.ms 10.) () in
  let count_slices s cpu =
    let n = ref 1 in
    let rec go () =
      match ok (Slaunch_session.run_slice s ~cpu ()) with
      | `Finished -> ()
      | `Yielded ->
          incr n;
          ok (Slaunch_session.resume s ~cpu);
          go ()
    in
    go ();
    !n
  in
  let single = count_slices s1 0 in
  Slaunch_session.release s1;
  let m2 = proposed () in
  let _, s2 = launch_worker m2 ~cpu:0 ~timer:(Time.ms 10.) () in
  checki "no workers when created alone" 1 (Slaunch_session.worker_count s2);
  ok (Slaunch_session.join s2 ~cpu:1);
  checki "two workers" 2 (Slaunch_session.worker_count s2);
  (* Helpers shed on yield; re-join after each resume. *)
  let n = ref 1 in
  let rec go () =
    match ok (Slaunch_session.run_slice s2 ~cpu:0 ()) with
    | `Finished -> ()
    | `Yielded ->
        incr n;
        ok (Slaunch_session.resume s2 ~cpu:0);
        ok (Slaunch_session.join s2 ~cpu:1);
        go ()
  in
  go ();
  let dual = !n in
  Slaunch_session.release s2;
  checki "single-core slice count" 4 single;
  checki "dual-core halves the slices" 2 dual

let test_multicore_shed_on_yield () =
  let m = proposed () in
  let _, s = launch_worker m ~cpu:0 ~timer:(Time.ms 5.) () in
  ok (Slaunch_session.join s ~cpu:1);
  ok (Slaunch_session.join s ~cpu:2);
  checki "three workers" 3 (Slaunch_session.worker_count s);
  (match ok (Slaunch_session.run_slice s ~cpu:0 ()) with
  | `Yielded -> ()
  | `Finished -> Alcotest.fail "expected yield");
  checki "suspended: no workers" 0 (Slaunch_session.worker_count s);
  Array.iter
    (fun c -> checkb "all cores back to legacy" true (c.Cpu.status = Cpu.Legacy))
    m.Machine.cpus;
  ok (Slaunch_session.kill s);
  Slaunch_session.release s

let test_multicore_primary_cannot_leave () =
  let m = proposed () in
  let _, s = launch_worker m ~cpu:0 () in
  expect_error (Slaunch_session.leave s ~cpu:0);
  ok (Slaunch_session.join s ~cpu:1);
  expect_error (Slaunch_session.leave s ~cpu:0);
  ok (Slaunch_session.leave s ~cpu:1);
  ignore (ok (Slaunch_session.run_slice s ~cpu:0 ()));
  Slaunch_session.release s

(* --- Interrupt handling --- *)

let test_interrupt_routing () =
  let m = proposed () in
  let pages = Machine.alloc_pages m 3 in
  let secb =
    Secb.create ~id:(Machine.fresh_secb_id m) ~pages ~entry_point:0 ~pal_length:4096
      ~idt:[ 0x21; 0x40 ] ()
  in
  Memory.write_span (Memctrl.memory m.Machine.memctrl) ~pages:(Secb.data_pages secb)
    ~off:0 (String.make 4096 'c');
  checkb "no PAL: to OS" true
    (Insn.deliver_interrupt m ~secbs:[ secb ] ~vector:0x21 = Insn.To_os);
  (match ok (Insn.slaunch m ~cpu:0 secb) with
  | Insn.Launched _ -> ()
  | Insn.Resumed -> Alcotest.fail "fresh SECB resumed");
  checkb "registered vector to PAL" true
    (Insn.deliver_interrupt m ~secbs:[ secb ] ~vector:0x21
    = Insn.To_pal secb.Secb.id);
  checkb "unregistered vector to OS" true
    (Insn.deliver_interrupt m ~secbs:[ secb ] ~vector:0x22 = Insn.To_os);
  ok (Insn.syield m ~cpu:0 secb);
  checkb "suspended PAL: to OS" true
    (Insn.deliver_interrupt m ~secbs:[ secb ] ~vector:0x21 = Insn.To_os)

let test_interrupt_reprogram_cost_charged () =
  let launch_and_cycle idt =
    let m = proposed () in
    let pages = Machine.alloc_pages m 3 in
    let secb =
      Secb.create ~id:(Machine.fresh_secb_id m) ~pages ~entry_point:0 ~pal_length:4096
        ~idt ()
    in
    Memory.write_span (Memctrl.memory m.Machine.memctrl)
      ~pages:(Secb.data_pages secb) ~off:0 (String.make 4096 'c');
    ignore (ok (Insn.slaunch m ~cpu:0 secb));
    ok (Insn.syield m ~cpu:0 secb);
    let t0 = Machine.now m in
    ignore (ok (Insn.slaunch m ~cpu:0 secb));
    Time.to_us (Time.sub (Machine.now m) t0)
  in
  let bare = launch_and_cycle [] in
  let with_idt = launch_and_cycle [ 1; 2; 3 ] in
  checkb
    (Printf.sprintf "IDT adds ~3 us per dispatch (%.2f vs %.2f)" bare with_idt)
    true
    (with_idt -. bare > 2.5 && with_idt -. bare < 3.5);
  checkb "cost helper agrees" true
    (let secb =
       Secb.create ~id:0 ~pages:[ 1 ] ~entry_point:0 ~pal_length:0 ~idt:[ 1; 2; 3 ] ()
     in
     Insn.interrupt_reprogram_cost secb = Time.us 3.)

let test_idt_validation () =
  Alcotest.check_raises "vector out of range"
    (Invalid_argument "Secb.create: interrupt vector out of range") (fun () ->
      ignore (Secb.create ~id:0 ~pages:[ 1 ] ~entry_point:0 ~pal_length:0 ~idt:[ 256 ] ()))

(* --- sePCR sets --- *)

let test_sepcr_set_allocation () =
  let e = Engine.create () in
  let tpm = Sea_tpm.Tpm.create ~key_bits:512 ~sepcr_count:4 e in
  let caller = Sea_tpm.Tpm.Cpu 0 in
  let set = ok (Sea_tpm.Tpm.sepcr_allocate_set tpm ~caller ~size:3) in
  checki "three members" 3 (List.length set);
  checki "distinct members" 3
    (List.length (List.sort_uniq compare (List.map Sea_tpm.Sepcr.handle_to_int set)));
  (* Each member behaves as an ordinary sePCR. *)
  List.iter
    (fun h ->
      match Sea_tpm.Tpm.sepcr_extend tpm ~caller h "m" with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    set

let test_sepcr_set_atomic_failure () =
  let e = Engine.create () in
  let tpm = Sea_tpm.Tpm.create ~key_bits:512 ~sepcr_count:4 e in
  let caller = Sea_tpm.Tpm.Cpu 0 in
  ignore (ok (Sea_tpm.Tpm.sepcr_allocate tpm ~caller));
  ignore (ok (Sea_tpm.Tpm.sepcr_allocate tpm ~caller));
  (* Only 2 free; a set of 3 must fail AND roll back. *)
  expect_error (Sea_tpm.Tpm.sepcr_allocate_set tpm ~caller ~size:3);
  (match Sea_tpm.Tpm.sepcr_bank tpm with
  | Some bank -> checki "partial allocation rolled back" 2 (Sea_tpm.Sepcr.free_count bank)
  | None -> assert false);
  expect_error (Sea_tpm.Tpm.sepcr_allocate_set tpm ~caller ~size:0);
  checkb "software blocked" true
    (match Sea_tpm.Tpm.sepcr_allocate_set tpm ~caller:Sea_tpm.Tpm.Software ~size:1 with
    | Error _ -> true
    | Ok _ -> false)

(* --- Monotonic counters --- *)

let test_counters_basic () =
  let e = Engine.create () in
  let tpm = Sea_tpm.Tpm.create ~key_bits:512 e in
  let c1 = ok (Sea_tpm.Tpm.counter_create tpm) in
  let c2 = ok (Sea_tpm.Tpm.counter_create tpm) in
  checkb "distinct ids" true (c1 <> c2);
  checki "starts at zero" 0 (ok (Sea_tpm.Tpm.counter_read tpm c1));
  checki "increments" 1 (ok (Sea_tpm.Tpm.counter_increment tpm c1));
  checki "monotone" 2 (ok (Sea_tpm.Tpm.counter_increment tpm c1));
  checki "independent" 0 (ok (Sea_tpm.Tpm.counter_read tpm c2));
  expect_error (Sea_tpm.Tpm.counter_read tpm 99)

let test_counters_survive_reboot () =
  let e = Engine.create () in
  let tpm = Sea_tpm.Tpm.create ~key_bits:512 e in
  let c = ok (Sea_tpm.Tpm.counter_create tpm) in
  ignore (ok (Sea_tpm.Tpm.counter_increment tpm c));
  Sea_tpm.Tpm.reboot tpm;
  checki "value survives power cycle" 1 (ok (Sea_tpm.Tpm.counter_read tpm c))

let test_counters_exhaustion () =
  let e = Engine.create () in
  let tpm = Sea_tpm.Tpm.create ~key_bits:512 e in
  for _ = 1 to Sea_tpm.Tpm.max_counters do
    ignore (ok (Sea_tpm.Tpm.counter_create tpm))
  done;
  expect_error (Sea_tpm.Tpm.counter_create tpm)

(* --- Rollback-protected sealed storage --- *)

let test_rollback_roundtrip () =
  let m = proposed ~cpu_count:2 () in
  let tpm = Machine.tpm_exn m in
  let caller = Sea_tpm.Tpm.Cpu 0 in
  let counter = ok (Rollback.create_counter tpm) in
  let blob = ok (Rollback.seal tpm ~caller ~pcr_policy:[] ~counter "v1") in
  checkb "latest unseals" true (Rollback.unseal tpm ~caller blob = Ok "v1")

let test_rollback_detects_replay () =
  let m = proposed ~cpu_count:2 () in
  let tpm = Machine.tpm_exn m in
  let caller = Sea_tpm.Tpm.Cpu 0 in
  let counter = ok (Rollback.create_counter tpm) in
  let v1 = ok (Rollback.seal tpm ~caller ~pcr_policy:[] ~counter "v1") in
  let v2 = ok (Rollback.seal tpm ~caller ~pcr_policy:[] ~counter "v2") in
  checkb "v2 live" true (Rollback.unseal tpm ~caller v2 = Ok "v2");
  checkb "v1 now stale" true
    (Rollback.unseal tpm ~caller v1 = Error "stale sealed state (rollback detected)");
  (* As an adversary action. *)
  (match Sea_os.Adversary.replay_stale_sealed_state m ~cpu:0 ~stale_blob:v1 with
  | Sea_os.Adversary.Blocked _ -> ()
  | Sea_os.Adversary.Succeeded w -> Alcotest.fail w)

let test_rollback_plain_blob_rejected () =
  let m = proposed ~cpu_count:2 () in
  let tpm = Machine.tpm_exn m in
  let caller = Sea_tpm.Tpm.Cpu 0 in
  let plain = ok (Sea_tpm.Tpm.seal tpm ~caller ~pcr_policy:[] "not framed") in
  checkb "plain blob rejected" true
    (Rollback.unseal tpm ~caller plain = Error "not a rollback-protected blob")

let test_rollback_composes_with_sepcr () =
  (* The full discipline on proposed hardware: seal under both the PAL's
     sePCR identity and a counter; a different PAL is blocked by the
     sePCR and a stale blob by the counter. *)
  let m = proposed ~cpu_count:2 () in
  let tpm = Machine.tpm_exn m in
  let counter = ok (Rollback.create_counter tpm) in
  let h = ok (Sea_tpm.Tpm.sepcr_allocate tpm ~caller:(Sea_tpm.Tpm.Cpu 0)) in
  ignore (ok (Sea_tpm.Tpm.sepcr_measure tpm ~caller:(Sea_tpm.Tpm.Cpu 0) h ~code:"PAL-X"));
  let v1 =
    ok
      (Rollback.seal tpm ~caller:(Sea_tpm.Tpm.Cpu 0) ~sepcr:h ~pcr_policy:[] ~counter
         "gen1")
  in
  let v2 =
    ok
      (Rollback.seal tpm ~caller:(Sea_tpm.Tpm.Cpu 0) ~sepcr:h ~pcr_policy:[] ~counter
         "gen2")
  in
  checkb "latest + right PAL" true
    (Rollback.unseal tpm ~caller:(Sea_tpm.Tpm.Cpu 0) ~sepcr:h v2 = Ok "gen2");
  checkb "stale + right PAL blocked" true
    (Rollback.unseal tpm ~caller:(Sea_tpm.Tpm.Cpu 0) ~sepcr:h v1
    = Error "stale sealed state (rollback detected)");
  checkb "latest + no sePCR blocked" true
    (match Rollback.unseal tpm ~caller:(Sea_tpm.Tpm.Cpu 0) v2 with
    | Error _ -> true
    | Ok _ -> false)

let () =
  Alcotest.run "extensions"
    [
      ( "multicore-acl",
        [
          Alcotest.test_case "join/leave lifecycle" `Quick test_acl_join_leave;
          Alcotest.test_case "join errors" `Quick test_acl_join_errors;
          Alcotest.test_case "suspend needs single owner" `Quick
            test_acl_suspend_requires_single_owner;
          QCheck_alcotest.to_alcotest prop_join_leave_roundtrip;
        ] );
      ( "multicore-insn",
        [
          Alcotest.test_case "SJOIN/SLEAVE" `Quick test_sjoin_sleave_instructions;
          Alcotest.test_case "SJOIN requires executing PAL" `Quick test_sjoin_requires_executing;
        ] );
      ( "multicore-session",
        [
          Alcotest.test_case "speedup" `Quick test_multicore_speedup;
          Alcotest.test_case "helpers shed on yield" `Quick test_multicore_shed_on_yield;
          Alcotest.test_case "primary cannot leave" `Quick test_multicore_primary_cannot_leave;
        ] );
      ( "interrupts",
        [
          Alcotest.test_case "routing" `Quick test_interrupt_routing;
          Alcotest.test_case "reprogram cost" `Quick test_interrupt_reprogram_cost_charged;
          Alcotest.test_case "IDT validation" `Quick test_idt_validation;
        ] );
      ( "sepcr-sets",
        [
          Alcotest.test_case "allocation" `Quick test_sepcr_set_allocation;
          Alcotest.test_case "atomic failure" `Quick test_sepcr_set_atomic_failure;
        ] );
      ( "counters",
        [
          Alcotest.test_case "basic" `Quick test_counters_basic;
          Alcotest.test_case "survive reboot" `Quick test_counters_survive_reboot;
          Alcotest.test_case "exhaustion" `Quick test_counters_exhaustion;
        ] );
      ( "rollback",
        [
          Alcotest.test_case "roundtrip" `Quick test_rollback_roundtrip;
          Alcotest.test_case "replay detected" `Quick test_rollback_detects_replay;
          Alcotest.test_case "plain blob rejected" `Quick test_rollback_plain_blob_rejected;
          Alcotest.test_case "composes with sePCRs" `Quick test_rollback_composes_with_sepcr;
        ] );
    ]
