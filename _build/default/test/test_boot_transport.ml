(* Tests for the measured-boot event log + trusted-boot verifier (the
   layered-TCB world of §1/§2.1.1 the paper contrasts against) and for
   TPM secure transport sessions (§3.3's argument for excluding the
   south bridge from the TCB). *)

open Sea_hw
open Sea_os

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ok = function Ok x -> x | Error e -> Alcotest.fail e
let expect_error = function Error _ -> () | Ok _ -> Alcotest.fail "expected error"

let machine () = Machine.create (Machine.low_fidelity Machine.hp_dc5750)

(* --- Event log --- *)

let test_log_replay_matches_pcrs () =
  let m = machine () in
  let tpm = Machine.tpm_exn m in
  let log = ok (Boot.boot m (Boot.standard_stack ())) in
  let replayed = Sea_tpm.Event_log.replay (Sea_tpm.Event_log.events log) in
  List.iter
    (fun (idx, value) ->
      Alcotest.(check string)
        (Printf.sprintf "PCR %d matches replay" idx)
        value (Sea_tpm.Tpm.pcr_read tpm idx))
    replayed;
  checki "seven components logged" 7 (Sea_tpm.Event_log.length log)

let test_log_rejects_dynamic_pcrs () =
  let log = Sea_tpm.Event_log.create () in
  ignore (Sea_tpm.Event_log.record log ~pcr_index:17 ~description:"bad" ~data:"x");
  Alcotest.check_raises "dynamic PCR in boot log"
    (Invalid_argument "Event_log.replay: dynamic PCRs are not boot-log rooted")
    (fun () -> ignore (Sea_tpm.Event_log.replay (Sea_tpm.Event_log.events log)))

let test_log_order_sensitive () =
  let mk order =
    let log = Sea_tpm.Event_log.create () in
    List.iter
      (fun d -> ignore (Sea_tpm.Event_log.record log ~pcr_index:0 ~description:d ~data:d))
      order;
    Sea_tpm.Event_log.replay (Sea_tpm.Event_log.events log)
  in
  checkb "order changes the chain" true (mk [ "a"; "b" ] <> mk [ "b"; "a" ])

(* --- Trusted boot end-to-end --- *)

let whitelist_of stack =
  List.map
    (fun c -> (c.Boot.name, Sea_crypto.Sha1.digest c.Boot.image))
    stack

let test_trusted_boot_accepts_known_stack () =
  let m = machine () in
  let stack = Boot.standard_stack () in
  let log = ok (Boot.boot m stack) in
  let nonce = "tb1" in
  let q = ok (Boot.attest m ~nonce) in
  ok
    (Boot.verify
       ~ca:(Sea_tpm.Tpm.privacy_ca_public ())
       ~nonce
       ~log:(Sea_tpm.Event_log.events log)
       ~known_good:(whitelist_of stack)
       (Sea_core.Attestation.gather m q))

let test_trusted_boot_catches_bootkit () =
  let m = machine () in
  let stack = Boot.standard_stack () in
  let compromised =
    List.map (fun c -> if c.Boot.name = "MBR bootloader" then Boot.compromise c else c) stack
  in
  let log = ok (Boot.boot m compromised) in
  let nonce = "tb2" in
  let q = ok (Boot.attest m ~nonce) in
  (match
     Boot.verify
       ~ca:(Sea_tpm.Tpm.privacy_ca_public ())
       ~nonce
       ~log:(Sea_tpm.Event_log.events log)
       ~known_good:(whitelist_of stack)
       (Sea_core.Attestation.gather m q)
   with
  | Error e -> checkb "names the component" true (String.length e > 0)
  | Ok () -> Alcotest.fail "bootkit accepted")

let test_trusted_boot_catches_log_lies () =
  (* The OS cannot hide a loaded component by editing the log: the
     replayed chain stops matching the signed PCRs. *)
  let m = machine () in
  let stack = Boot.standard_stack () in
  let compromised = List.map Boot.compromise stack in
  let _log = ok (Boot.boot m compromised) in
  (* Present the log of the CLEAN stack instead. *)
  let clean_log = Sea_tpm.Event_log.create () in
  List.iter
    (fun c ->
      ignore
        (Sea_tpm.Event_log.record clean_log ~pcr_index:c.Boot.pcr_index
           ~description:c.Boot.name ~data:c.Boot.image))
    stack;
  let nonce = "tb3" in
  let q = ok (Boot.attest m ~nonce) in
  (match
     Boot.verify
       ~ca:(Sea_tpm.Tpm.privacy_ca_public ())
       ~nonce
       ~log:(Sea_tpm.Event_log.events clean_log)
       ~known_good:(whitelist_of stack)
       (Sea_core.Attestation.gather m q)
   with
  | Error e -> checkb "log/PCR mismatch detected" true (String.length e > 0)
  | Ok () -> Alcotest.fail "forged log accepted")

let test_tcb_contrast () =
  (* The paper's headline motivation, quantified: the trusted-boot
     verifier judges the whole stack; the late-launch verifier judges
     one PAL. *)
  let m = machine () in
  let log = ok (Boot.boot m (Boot.standard_stack ())) in
  let trusted_boot_tcb = Boot.tcb_entries log in
  let late_launch_tcb = 1 (* the PAL measurement *) in
  checkb
    (Printf.sprintf "trusted boot trusts %d components, late launch %d"
       trusted_boot_tcb late_launch_tcb)
    true
    (trusted_boot_tcb > late_launch_tcb)

(* --- Transport sessions --- *)

let session () =
  let m = machine () in
  let tpm = Machine.tpm_exn m in
  (m, tpm, ok (Sea_tpm.Transport.establish tpm ~client_entropy:"pal-entropy"))

let test_transport_commands () =
  let _, tpm, s = session () in
  (match ok (Sea_tpm.Transport.execute tpm s (Sea_tpm.Transport.Get_random 32)) with
  | Sea_tpm.Transport.Random_bytes b -> checki "32 random bytes" 32 (String.length b)
  | _ -> Alcotest.fail "wrong response");
  (match
     ok (Sea_tpm.Transport.execute tpm s (Sea_tpm.Transport.Pcr_extend (10, "m")))
   with
  | Sea_tpm.Transport.New_pcr_value v ->
      Alcotest.(check string) "extend through the channel is real" v
        (Sea_tpm.Tpm.pcr_read tpm 10)
  | _ -> Alcotest.fail "wrong response");
  match ok (Sea_tpm.Transport.execute tpm s (Sea_tpm.Transport.Pcr_read 10)) with
  | Sea_tpm.Transport.Pcr_value v ->
      Alcotest.(check string) "read matches" v (Sea_tpm.Tpm.pcr_read tpm 10)
  | _ -> Alcotest.fail "wrong response"

let test_transport_confidentiality () =
  (* A south-bridge eavesdropper sees the wire form; the plaintext
     command must not appear in it. *)
  let _, _, s = session () in
  let secret_data = "super-secret-extend-value" in
  let wire =
    Sea_tpm.Transport.seal_request s (Sea_tpm.Transport.Pcr_extend (10, secret_data))
  in
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  checkb "plaintext invisible on the bus" false (contains ~needle:secret_data wire)

let test_transport_tamper_rejected () =
  let _, tpm, s = session () in
  let wire = Sea_tpm.Transport.seal_request s (Sea_tpm.Transport.Get_random 8) in
  let tampered =
    String.mapi
      (fun i c -> if i = String.length wire / 2 then Char.chr (Char.code c lxor 1) else c)
      wire
  in
  expect_error (Sea_tpm.Transport.tpm_execute tpm s tampered)

let test_transport_replay_rejected () =
  let _, tpm, s = session () in
  let wire = Sea_tpm.Transport.seal_request s (Sea_tpm.Transport.Get_random 8) in
  ignore (ok (Sea_tpm.Transport.tpm_execute tpm s wire));
  (* The bridge replays the captured request. *)
  expect_error (Sea_tpm.Transport.tpm_execute tpm s wire)

let test_transport_cross_session_isolated () =
  let m = machine () in
  let tpm = Machine.tpm_exn m in
  let s1 = ok (Sea_tpm.Transport.establish tpm ~client_entropy:"one") in
  let s2 = ok (Sea_tpm.Transport.establish tpm ~client_entropy:"two") in
  let wire = Sea_tpm.Transport.seal_request s1 (Sea_tpm.Transport.Get_random 8) in
  expect_error (Sea_tpm.Transport.tpm_execute tpm s2 wire)

let () =
  Alcotest.run "boot-transport"
    [
      ( "event-log",
        [
          Alcotest.test_case "replay matches PCRs" `Quick test_log_replay_matches_pcrs;
          Alcotest.test_case "dynamic PCRs rejected" `Quick test_log_rejects_dynamic_pcrs;
          Alcotest.test_case "order sensitive" `Quick test_log_order_sensitive;
        ] );
      ( "trusted-boot",
        [
          Alcotest.test_case "accepts known stack" `Quick test_trusted_boot_accepts_known_stack;
          Alcotest.test_case "catches a bootkit" `Quick test_trusted_boot_catches_bootkit;
          Alcotest.test_case "catches log lies" `Quick test_trusted_boot_catches_log_lies;
          Alcotest.test_case "TCB contrast with late launch" `Quick test_tcb_contrast;
        ] );
      ( "transport",
        [
          Alcotest.test_case "commands through the channel" `Quick test_transport_commands;
          Alcotest.test_case "confidentiality on the bus" `Quick test_transport_confidentiality;
          Alcotest.test_case "tampering rejected" `Quick test_transport_tamper_rejected;
          Alcotest.test_case "replay rejected" `Quick test_transport_replay_rejected;
          Alcotest.test_case "sessions isolated" `Quick test_transport_cross_session_isolated;
        ] );
    ]
