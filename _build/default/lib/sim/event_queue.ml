type 'a entry = { time : Time.t; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array option; (* None when capacity 0 *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = None; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t dummy =
  match t.heap with
  | None -> t.heap <- Some (Array.make 16 dummy)
  | Some h when t.size = Array.length h ->
      let bigger = Array.make (2 * Array.length h) dummy in
      Array.blit h 0 bigger 0 t.size;
      t.heap <- Some bigger
  | Some _ -> ()

let push t ~time payload =
  let e = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t e;
  let h = match t.heap with Some h -> h | None -> assert false in
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  h.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if entry_lt h.(!i) h.(parent) then begin
      let tmp = h.(parent) in
      h.(parent) <- h.(!i);
      h.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let sift_down h size i0 =
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < size && entry_lt h.(l) h.(!smallest) then smallest := l;
    if r < size && entry_lt h.(r) h.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = h.(!smallest) in
      h.(!smallest) <- h.(!i);
      h.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else
    let h = match t.heap with Some h -> h | None -> assert false in
    let top = h.(0) in
    t.size <- t.size - 1;
    h.(0) <- h.(t.size);
    sift_down h t.size 0;
    Some (top.time, top.payload)

let peek_time t =
  if t.size = 0 then None
  else
    let h = match t.heap with Some h -> h | None -> assert false in
    Some h.(0).time

let clear t =
  t.size <- 0;
  t.heap <- None
