lib/sim/engine.ml: Event_queue Rng Time
