lib/sim/rng.mli:
