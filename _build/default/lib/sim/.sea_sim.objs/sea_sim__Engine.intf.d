lib/sim/engine.mli: Rng Time
