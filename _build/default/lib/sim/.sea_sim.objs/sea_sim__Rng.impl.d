lib/sim/rng.ml: Bytes Char Float Int64
