lib/sim/stats.mli: Format Time
