(** Simulated time.

    All simulated durations and instants in the library are expressed in
    nanoseconds, stored in a native OCaml [int] (63-bit on 64-bit platforms,
    enough for ~146 years of simulated time). This module provides smart
    constructors, arithmetic and pretty-printing so that call sites never
    manipulate raw unit conversions. *)

type t = int
(** A duration or an instant, in nanoseconds. *)

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : float -> t
(** [us x] is [x] microseconds, rounded to the nearest nanosecond. *)

val ms : float -> t
(** [ms x] is [x] milliseconds, rounded to the nearest nanosecond. *)

val s : float -> t
(** [s x] is [x] seconds, rounded to the nearest nanosecond. *)

val to_ns : t -> int
val to_us : t -> float
val to_ms : t -> float
val to_s : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val scale : t -> int -> t

val scale_f : t -> float -> t
(** [scale_f t x] is [t] scaled by the float factor [x], rounded. *)

val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit, e.g. ["177.52 ms"],
    ["0.558 us"]. *)

val to_string : t -> string
