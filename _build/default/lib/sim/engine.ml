type t = {
  mutable clock : Time.t;
  queue : (t -> unit) Event_queue.t;
  rng : Rng.t;
}

let create ?seed () =
  { clock = Time.zero; queue = Event_queue.create (); rng = Rng.create ?seed () }

let now t = t.clock
let rng t = t.rng

let advance t d =
  if d < 0 then invalid_arg "Engine.advance: negative duration";
  t.clock <- Time.add t.clock d

let elapse_to t instant = if instant > t.clock then t.clock <- instant

let schedule_at t ~time f = Event_queue.push t.queue ~time f
let schedule t ~after f = schedule_at t ~time:(Time.add t.clock after) f

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
      elapse_to t time;
      f t;
      true

let run ?until t =
  let continue = ref true in
  while !continue do
    match (Event_queue.peek_time t.queue, until) with
    | None, _ -> continue := false
    | Some time, Some limit when time > limit ->
        elapse_to t limit;
        continue := false
    | Some _, _ -> ignore (step t)
  done

let pending t = Event_queue.length t.queue
