type t = int

let zero = 0
let ns n = n
let us x = int_of_float (Float.round (x *. 1e3))
let ms x = int_of_float (Float.round (x *. 1e6))
let s x = int_of_float (Float.round (x *. 1e9))
let to_ns t = t
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_s t = float_of_int t /. 1e9
let add = ( + )
let sub = ( - )
let scale t k = t * k
let scale_f t x = int_of_float (Float.round (float_of_int t *. x))
let compare = Int.compare
let min = Stdlib.min
let max = Stdlib.max

let pp fmt t =
  let f = float_of_int (abs t) in
  if f >= 1e9 then Format.fprintf fmt "%.3f s" (to_s t)
  else if f >= 1e6 then Format.fprintf fmt "%.2f ms" (to_ms t)
  else if f >= 1e3 then Format.fprintf fmt "%.3f us" (to_us t)
  else Format.fprintf fmt "%d ns" t

let to_string t = Format.asprintf "%a" pp t
