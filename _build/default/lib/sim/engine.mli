(** Discrete-event simulation engine.

    The engine owns the simulated clock and an event queue. Two usage styles
    coexist:

    - {b Synchronous}: sequential hardware models (a late launch, a TPM
      command) simply {!advance} the clock by the duration of the modelled
      operation. This is how all latency measurements are produced.
    - {b Event-driven}: concurrent models (multicore scheduling, preemption
      timers, DMA devices) {!schedule} callbacks and drive them with {!run}.

    Both styles share the same clock, so an event-driven scheduler can invoke
    synchronous device models and time composes correctly. *)

type t

val create : ?seed:int64 -> unit -> t
(** Fresh engine with the clock at {!Time.zero} and a deterministic RNG. *)

val now : t -> Time.t
val rng : t -> Rng.t

val advance : t -> Time.t -> unit
(** [advance t d] moves the clock forward by duration [d] (synchronous
    style). Raises [Invalid_argument] on a negative duration. *)

val elapse_to : t -> Time.t -> unit
(** [elapse_to t instant] moves the clock to [instant] if it is in the
    future; a no-op otherwise. *)

val schedule : t -> after:Time.t -> (t -> unit) -> unit
(** [schedule t ~after f] runs [f] when the clock reaches [now t + after]. *)

val schedule_at : t -> time:Time.t -> (t -> unit) -> unit
(** Absolute-time variant of {!schedule}. Events scheduled in the past fire
    immediately on the next {!run} or {!step} without moving the clock
    backwards. *)

val step : t -> bool
(** Fire the earliest pending event, moving the clock to its timestamp.
    Returns [false] if no event is pending. *)

val run : ?until:Time.t -> t -> unit
(** Fire events in order until the queue is empty, or until the first event
    later than [until] (which stays queued; the clock is left at [until]). *)

val pending : t -> int
(** Number of queued events. *)
