lib/bus/lpc.ml: Engine Sea_sim Time
