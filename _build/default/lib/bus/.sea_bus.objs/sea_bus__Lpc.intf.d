lib/bus/lpc.mli: Sea_sim
