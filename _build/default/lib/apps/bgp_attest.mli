(** BIND-style attested BGP processing (related work, §7: Shi et al.
    used "a trusted kernel with late launch technology to attest the
    correctness of BGP update messages" — but "the secure kernel they
    rely upon was never built"). Here it runs on the SEA instead.

    Each router's update-processing logic is a PAL. Its signing key is
    generated inside the PAL and sealed to the PAL's measurement, so a
    compromised router OS cannot sign bogus updates: only the genuine
    logic — which validates the predecessor's signature and prepends its
    own AS number — ever holds the key. A chain of per-hop signatures
    then proves an update traversed genuine processing at every hop. *)

type update = {
  prefix : string;  (** e.g. "10.0.0.0/8" *)
  as_path : int list;  (** Most recent AS first. *)
  signatures : string list;  (** One per hop, most recent first. *)
}

type router = {
  asn : int;
  public : Sea_crypto.Rsa.public;
  sealed_key : string;  (** Held by the untrusted router OS. *)
}

val pal : unit -> Sea_core.Pal.t
(** The update-processing PAL (same code identity for every router, so
    sealed keys stay PAL-bound). *)

val init_router : Sea_hw.Machine.t -> cpu:int -> asn:int -> (router, string) result
(** Key ceremony: one PAL session generates and seals the router's
    signing key. *)

val originate :
  Sea_hw.Machine.t -> cpu:int -> router -> prefix:string -> (update, string) result
(** The origin AS announces a prefix. *)

val forward :
  Sea_hw.Machine.t ->
  cpu:int ->
  router ->
  update ->
  predecessor:Sea_crypto.Rsa.public ->
  (update, string) result
(** Process an incoming update: the PAL verifies the predecessor hop's
    signature before signing the extended path. Fails inside the PAL if
    the update is forged. *)

val verify_chain : update -> publics:(int * Sea_crypto.Rsa.public) list -> bool
(** Anyone (e.g. a route collector) checks every hop's signature against
    the announced AS path. *)

val wire_of_update : update -> string
val update_of_wire : string -> update option
