open Sea_crypto
open Sea_core

let whitelist_digest image = Sha256.digest image

let behavior services input =
  match Codec.parse_command input with
  | Some ("check", [ whitelist; kernel_image ]) ->
      let measured = Sha256.digest kernel_image in
      let verdict =
        if Hmac.equal_constant_time measured whitelist then "clean" else "COMPROMISED"
      in
      (* Fold the observation into the measurement chain: the attestation
         then covers both the detector's identity and its verdict. *)
      services.Pal.extend_measurement (Sha1.digest ("verdict:" ^ verdict ^ measured));
      Ok verdict
  | Some _ | None -> Error "unknown detector command"

let pal () =
  Pal.create ~name:"rootkit-detector" ~code_size:(8 * 1024)
    ~compute_time:(Sea_sim.Time.ms 10.) behavior

let make_kernel_image ?(size = 256 * 1024) ~seed () =
  let drbg = Drbg.create ~seed:("kernel-image:" ^ seed) in
  Drbg.generate_string drbg size

let infect image ~at =
  if at < 0 || at >= String.length image then invalid_arg "Rootkit_detector.infect";
  String.mapi
    (fun i c -> if i = at then Char.chr (Char.code c lxor 0xCC) else c)
    image

let check machine ~cpu ~whitelist ~kernel_image =
  match
    Exec.run machine ~cpu (pal ())
      ~input:(Codec.command "check" [ whitelist; kernel_image ])
  with
  | Error e -> Error e
  | Ok output -> (
      match output with
      | "clean" -> Ok true
      | "COMPROMISED" -> Ok false
      | other -> Error ("unexpected verdict: " ^ other))
