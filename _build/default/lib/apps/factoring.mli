(** Distributed factoring application (§4.1): the paper's example of a
    long-running computation (like SETI\@Home) that "performs a limited
    amount of work and then seals its intermediate state so that it can
    later resume".

    Trial division of a composite is split into per-session divisor
    ranges; the integrity-protected intermediate state (current divisor,
    factors found) is sealed between sessions, so a malicious OS can
    neither corrupt the computation nor observe/forge its progress. This
    is the workload whose per-chunk Seal+Unseal cost motivates the whole
    paper. *)

val pal : unit -> Sea_core.Pal.t
(** Commands: [start n range] → sealed state; [step blob range] → sealed
    state or final answer. *)

type progress =
  | Running of string  (** Sealed intermediate state for the next session. *)
  | Factored of int list  (** Prime factorization, ascending. *)

val start :
  Sea_hw.Machine.t -> cpu:int -> n:int -> range:int -> (progress, string) result
(** Begin factoring [n], testing [range] divisors per session. *)

val step :
  Sea_hw.Machine.t -> cpu:int -> blob:string -> range:int -> (progress, string) result

val run_to_completion :
  Sea_hw.Machine.t ->
  cpu:int ->
  n:int ->
  range:int ->
  ?max_sessions:int ->
  unit ->
  (int list * int, string) result
(** Drive sessions until the factorization completes; returns the factors
    and the number of sessions used. *)
