lib/apps/rootkit_detector.ml: Char Codec Drbg Exec Hmac Pal Sea_core Sea_crypto Sea_sim Sha1 Sha256 String
