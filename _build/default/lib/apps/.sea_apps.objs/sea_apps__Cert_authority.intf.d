lib/apps/cert_authority.mli: Sea_core Sea_crypto Sea_hw
