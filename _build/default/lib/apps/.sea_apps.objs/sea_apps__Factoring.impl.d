lib/apps/factoring.ml: Codec Exec List Option Pal Sea_core Sea_crypto Sea_sim Wire
