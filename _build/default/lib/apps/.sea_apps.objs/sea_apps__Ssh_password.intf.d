lib/apps/ssh_password.mli: Sea_core Sea_hw
