lib/apps/bgp_attest.ml: Codec Drbg Exec List Pal Rsa Sea_core Sea_crypto Sea_sim Wire
