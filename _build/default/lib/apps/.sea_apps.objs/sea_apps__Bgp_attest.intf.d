lib/apps/bgp_attest.mli: Sea_core Sea_crypto Sea_hw
