lib/apps/codec.mli: Sea_crypto
