lib/apps/factoring.mli: Sea_core Sea_hw
