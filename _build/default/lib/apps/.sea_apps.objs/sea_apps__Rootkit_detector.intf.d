lib/apps/rootkit_detector.mli: Sea_core Sea_hw
