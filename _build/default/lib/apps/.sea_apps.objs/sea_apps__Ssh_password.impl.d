lib/apps/ssh_password.ml: Codec Exec Hmac Pal Printf Sea_core Sea_crypto Sea_sim Sha256 String
