lib/apps/cert_authority.ml: Codec Drbg Exec Pal Rsa Sea_core Sea_crypto Sea_sim
