lib/apps/codec.ml: Bignum List Option Rsa Sea_crypto Wire
