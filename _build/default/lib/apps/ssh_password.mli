(** SSH password-handling application (§4.1): "secure an SSH server's
    password handling routines".

    The password database record (salt + salted hash) is created inside a
    PAL, sealed to the PAL's measurement, and every authentication check
    runs inside a PAL session — the untrusted OS (and hence any
    compromised SSH daemon) never sees the password file contents, only
    an accept/reject verdict. *)

val pal : unit -> Sea_core.Pal.t
(** Commands: [setup user password] → sealed record;
    [auth record attempt] → verdict. *)

type account = {
  user : string;
  sealed_record : string;  (** Stored by the untrusted OS. *)
}

val setup :
  Sea_hw.Machine.t ->
  cpu:int ->
  user:string ->
  password:string ->
  (account, string) result

val authenticate :
  Sea_hw.Machine.t ->
  cpu:int ->
  account ->
  password:string ->
  (bool, string) result
(** [Ok true] = access granted. Wrong passwords are [Ok false], not an
    error: the PAL ran fine and rejected the attempt. *)
