open Sea_crypto

let command verb args =
  let enc = Wire.encoder () in
  Wire.add_string enc verb;
  Wire.add_list enc (fun a -> Wire.add_string enc a) args;
  Wire.contents enc

let parse_command s =
  let d = Wire.decoder s in
  match Wire.read_string d with
  | None -> None
  | Some verb -> (
      match Wire.read_list d (fun () -> Wire.read_string d) with
      | Some args -> Some (verb, args)
      | None -> None)

let rsa_private_to_string (key : Rsa.private_key) =
  let enc = Wire.encoder () in
  List.iter
    (fun v -> Wire.add_string enc (Bignum.to_bytes_be v))
    [ key.Rsa.pub.Rsa.n; key.Rsa.pub.Rsa.e; key.Rsa.d; key.Rsa.p; key.Rsa.q ];
  Wire.contents enc

let rsa_private_of_string s =
  let d = Wire.decoder s in
  let read () = Option.map Bignum.of_bytes_be (Wire.read_string d) in
  match (read (), read (), read (), read (), read ()) with
  | Some n, Some e, Some dd, Some p, Some q ->
      Some { Rsa.pub = { Rsa.n; e }; d = dd; p; q }
  | _ -> None

let rsa_public_to_string (pub : Rsa.public) =
  let enc = Wire.encoder () in
  Wire.add_string enc (Bignum.to_bytes_be pub.Rsa.n);
  Wire.add_string enc (Bignum.to_bytes_be pub.Rsa.e);
  Wire.contents enc

let rsa_public_of_string s =
  let d = Wire.decoder s in
  let read () = Option.map Bignum.of_bytes_be (Wire.read_string d) in
  match (read (), read ()) with
  | Some n, Some e -> Some { Rsa.n; e }
  | _ -> None
