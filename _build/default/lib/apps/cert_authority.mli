(** Certificate-authority application (§4.1): "protect the confidentiality
    of a certificate authority's private signing key".

    The CA's RSA signing key is generated {e inside} a PAL and only ever
    exists in cleartext within PAL execution; between sessions it lives in
    a TPM-sealed blob bound to the PAL's measurement. The untrusted OS
    stores the blob and ferries certificate-signing requests in and out.

    This mirrors the paper's PAL Gen (key generation + seal) / PAL Use
    (unseal + sign, no reseal — the unsealed key is simply erased)
    pattern. *)

val pal : ?key_bits:int -> unit -> Sea_core.Pal.t
(** The CA PAL. Commands (framed by {!Codec}): [init], and
    [sign blob csr]. [key_bits] defaults to 512 — small enough to keep
    RSA generation inside the simulated PAL fast in tests. *)

type t = {
  pal : Sea_core.Pal.t;
  public : Sea_crypto.Rsa.public;
  sealed_key : string;  (** Stored by the untrusted OS. *)
}

val init :
  Sea_hw.Machine.t -> cpu:int -> ?key_bits:int -> unit -> (t, string) result
(** Run the init session: generates the CA key in a PAL, returns the
    public key and the sealed private key. *)

val sign_csr :
  Sea_hw.Machine.t -> cpu:int -> t -> csr:string -> (string, string) result
(** Run a signing session: unseals the key inside the PAL and signs
    [csr]. *)

val verify_certificate : t -> csr:string -> signature:string -> bool
(** Anyone can check an issued certificate against the CA public key. *)
