open Sea_crypto
open Sea_core

let behavior ~key_bits services input =
  match Codec.parse_command input with
  | Some ("init", []) -> (
      (* The key is born inside the PAL: seed the generator from the TPM's
         RNG so distinct platforms get distinct CAs. *)
      let seed = services.Pal.get_random 32 in
      let drbg = Drbg.create ~seed in
      let key = Rsa.generate ~bits:key_bits drbg in
      match services.Pal.seal (Codec.rsa_private_to_string key) with
      | Error e -> Error ("seal: " ^ e)
      | Ok blob ->
          Ok (Codec.command "init-ok" [ Codec.rsa_public_to_string key.Rsa.pub; blob ]))
  | Some ("sign", [ blob; csr ]) -> (
      match services.Pal.unseal blob with
      | Error e -> Error ("unseal: " ^ e)
      | Ok key_bytes -> (
          match Codec.rsa_private_of_string key_bytes with
          | None -> Error "sealed key is corrupt"
          | Some key ->
              (* Sign and erase: no reseal needed (§4.1). *)
              Ok (Rsa.sign key csr)))
  | Some _ | None -> Error "unknown CA command"

let pal ?(key_bits = 512) () =
  Pal.create ~name:"cert-authority" ~code_size:(16 * 1024)
    ~compute_time:(Sea_sim.Time.ms 2.) (behavior ~key_bits)

type t = { pal : Pal.t; public : Rsa.public; sealed_key : string }

let init machine ~cpu ?key_bits () =
  let p = pal ?key_bits () in
  match Exec.run machine ~cpu p ~input:(Codec.command "init" []) with
  | Error e -> Error e
  | Ok output -> (
      match Codec.parse_command output with
      | Some ("init-ok", [ pub; blob ]) -> (
          match Codec.rsa_public_of_string pub with
          | Some public -> Ok { pal = p; public; sealed_key = blob }
          | None -> Error "bad public key from CA PAL")
      | _ -> Error "unexpected CA init output")

let sign_csr machine ~cpu t ~csr =
  match
    Exec.run machine ~cpu t.pal
      ~input:(Codec.command "sign" [ t.sealed_key; csr ])
  with
  | Error e -> Error e
  | Ok output -> Ok output

let verify_certificate t ~csr ~signature = Rsa.verify t.public ~msg:csr ~signature
