(** Kernel rootkit detector (§4.1): a PAL that measures the (untrusted)
    kernel's text from inside the isolated environment and reports whether
    it matches a known-good whitelist — trustworthy even when the kernel
    itself is compromised, because the verdict is produced under late
    launch and folded into the PAL's measurement chain for attestation.

    The "kernel image" is a synthetic byte string in this reproduction;
    {!infect} models a rootkit patching the text. *)

val pal : unit -> Sea_core.Pal.t
(** Command: [check whitelist_digest kernel_image] → ["clean"] or
    ["COMPROMISED"]. The verdict is also extended into the measurement
    chain so a quote attests to what the detector saw. *)

val make_kernel_image : ?size:int -> seed:string -> unit -> string
(** A deterministic synthetic kernel text section. *)

val whitelist_digest : string -> string
(** The digest an administrator records for a known-good image. *)

val infect : string -> at:int -> string
(** A rootkit: patch the image at byte offset [at]. *)

val check :
  Sea_hw.Machine.t ->
  cpu:int ->
  whitelist:string ->
  kernel_image:string ->
  (bool, string) result
(** Run the detector session; [Ok true] = kernel clean. *)
