open Sea_crypto
open Sea_core

(* Sealed state: remaining composite, next divisor to try, factors found. *)
let encode_state ~remaining ~next ~factors =
  let enc = Wire.encoder () in
  Wire.add_int enc remaining;
  Wire.add_int enc next;
  Wire.add_list enc (fun f -> Wire.add_int enc f) factors;
  Wire.contents enc

let decode_state s =
  let d = Wire.decoder s in
  match (Wire.read_int d, Wire.read_int d) with
  | Some remaining, Some next -> (
      match Wire.read_list d (fun () -> Wire.read_int d) with
      | Some factors -> Some (remaining, next, factors)
      | None -> None)
  | _ -> None

(* Trial-divide [remaining] by divisors in [next, next+range). *)
let work ~remaining ~next ~factors ~range =
  let remaining = ref remaining and d = ref next and factors = ref factors in
  let limit = next + range in
  while !d < limit && !d * !d <= !remaining && !remaining > 1 do
    if !remaining mod !d = 0 then begin
      factors := !d :: !factors;
      remaining := !remaining / !d
    end
    else incr d
  done;
  if !remaining = 1 then `Done (List.rev !factors)
  else if !d * !d > !remaining then `Done (List.rev (!remaining :: !factors))
  else `More (!remaining, !d, !factors)

let finish_output factors =
  Codec.command "factored" (List.map string_of_int factors)

let continue_state services ~remaining ~next ~factors =
  match services.Pal.seal (encode_state ~remaining ~next ~factors) with
  | Error e -> Error ("seal: " ^ e)
  | Ok blob -> Ok (Codec.command "running" [ blob ])

let behavior services input =
  match Codec.parse_command input with
  | Some ("start", [ n; range ]) -> (
      match (int_of_string_opt n, int_of_string_opt range) with
      | Some n, Some range when n > 1 && range > 0 -> (
          match work ~remaining:n ~next:2 ~factors:[] ~range with
          | `Done factors -> Ok (finish_output factors)
          | `More (remaining, next, factors) ->
              continue_state services ~remaining ~next ~factors)
      | _ -> Error "bad start arguments")
  | Some ("step", [ blob; range ]) -> (
      match int_of_string_opt range with
      | None -> Error "bad range"
      | Some range -> (
          match services.Pal.unseal blob with
          | Error e -> Error ("unseal: " ^ e)
          | Ok state -> (
              match decode_state state with
              | None -> Error "sealed state is corrupt"
              | Some (remaining, next, factors) -> (
                  match work ~remaining ~next ~factors ~range with
                  | `Done factors -> Ok (finish_output factors)
                  | `More (remaining, next, factors) ->
                      continue_state services ~remaining ~next ~factors))))
  | Some _ | None -> Error "unknown factoring command"

let pal () =
  Pal.create ~name:"distributed-factoring" ~code_size:(8 * 1024)
    ~compute_time:(Sea_sim.Time.ms 5.) behavior

type progress = Running of string | Factored of int list

let parse_progress output =
  match Codec.parse_command output with
  | Some ("running", [ blob ]) -> Ok (Running blob)
  | Some ("factored", factors) -> (
      match List.map int_of_string_opt factors with
      | fs when List.for_all Option.is_some fs ->
          Ok (Factored (List.map Option.get fs))
      | _ -> Error "bad factor list")
  | _ -> Error "unexpected factoring output"

let start machine ~cpu ~n ~range =
  match
    Exec.run machine ~cpu (pal ())
      ~input:(Codec.command "start" [ string_of_int n; string_of_int range ])
  with
  | Error e -> Error e
  | Ok output -> parse_progress output

let step machine ~cpu ~blob ~range =
  match
    Exec.run machine ~cpu (pal ())
      ~input:(Codec.command "step" [ blob; string_of_int range ])
  with
  | Error e -> Error e
  | Ok output -> parse_progress output

let run_to_completion machine ~cpu ~n ~range ?(max_sessions = 10_000) () =
  match start machine ~cpu ~n ~range with
  | Error e -> Error e
  | Ok first ->
      let rec drive sessions = function
        | Factored fs -> Ok (fs, sessions)
        | Running blob ->
            if sessions >= max_sessions then Error "session budget exhausted"
            else (
              match step machine ~cpu ~blob ~range with
              | Error e -> Error e
              | Ok next -> drive (sessions + 1) next)
      in
      drive 1 first
