open Sea_crypto
open Sea_core

let hash_attempt ~salt ~user ~password =
  Sha256.digest (Printf.sprintf "ssh:%s:%s:%s" salt user password)

let behavior services input =
  match Codec.parse_command input with
  | Some ("setup", [ user; password ]) -> (
      let salt = services.Pal.get_random 16 in
      let record = Codec.command "record" [ user; salt; hash_attempt ~salt ~user ~password ] in
      match services.Pal.seal record with
      | Error e -> Error ("seal: " ^ e)
      | Ok blob -> Ok blob)
  | Some ("auth", [ blob; user; attempt ]) -> (
      match services.Pal.unseal blob with
      | Error e -> Error ("unseal: " ^ e)
      | Ok record -> (
          match Codec.parse_command record with
          | Some ("record", [ stored_user; salt; digest ]) ->
              let ok =
                String.equal stored_user user
                && Hmac.equal_constant_time digest
                     (hash_attempt ~salt ~user ~password:attempt)
              in
              Ok (if ok then "granted" else "denied")
          | _ -> Error "sealed record is corrupt"))
  | Some _ | None -> Error "unknown SSH command"

let pal () =
  Pal.create ~name:"ssh-password" ~code_size:(8 * 1024)
    ~compute_time:(Sea_sim.Time.ms 1.) behavior

type account = { user : string; sealed_record : string }

let setup machine ~cpu ~user ~password =
  match
    Exec.run machine ~cpu (pal ())
      ~input:(Codec.command "setup" [ user; password ])
  with
  | Error e -> Error e
  | Ok output -> Ok { user; sealed_record = output }

let authenticate machine ~cpu account ~password =
  match
    Exec.run machine ~cpu (pal ())
      ~input:(Codec.command "auth" [ account.sealed_record; account.user; password ])
  with
  | Error e -> Error e
  | Ok output -> (
      match output with
      | "granted" -> Ok true
      | "denied" -> Ok false
      | other -> Error ("unexpected verdict: " ^ other))
