open Sea_crypto
open Sea_core

type update = { prefix : string; as_path : int list; signatures : string list }
type router = { asn : int; public : Rsa.public; sealed_key : string }

let wire_of_update u =
  let enc = Wire.encoder () in
  Wire.add_string enc u.prefix;
  Wire.add_list enc (fun a -> Wire.add_int enc a) u.as_path;
  Wire.add_list enc (fun s -> Wire.add_string enc s) u.signatures;
  Wire.contents enc

let update_of_wire s =
  let d = Wire.decoder s in
  match Wire.read_string d with
  | None -> None
  | Some prefix -> (
      match
        ( Wire.read_list d (fun () -> Wire.read_int d),
          Wire.read_list d (fun () -> Wire.read_string d) )
      with
      | Some as_path, Some signatures -> Some { prefix; as_path; signatures }
      | _ -> None)

(* What hop signatures cover: the prefix and the path as of that hop. *)
let signed_payload ~prefix ~as_path =
  let enc = Wire.encoder () in
  Wire.add_string enc "BGP-HOP";
  Wire.add_string enc prefix;
  Wire.add_list enc (fun a -> Wire.add_int enc a) as_path;
  Wire.contents enc

let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

let verify_chain u ~publics =
  List.length u.signatures = List.length u.as_path
  &&
  let rec check i sigs =
    match sigs with
    | [] -> true
    | signature :: rest -> (
        let path_at_hop = drop i u.as_path in
        match path_at_hop with
        | [] -> false
        | asn :: _ -> (
            match List.assoc_opt asn publics with
            | None -> false
            | Some pub ->
                Rsa.verify pub
                  ~msg:(signed_payload ~prefix:u.prefix ~as_path:path_at_hop)
                  ~signature
                && check (i + 1) rest))
  in
  check 0 u.signatures

let behavior services input =
  match Codec.parse_command input with
  | Some ("init", [ asn ]) -> (
      match int_of_string_opt asn with
      | None -> Error "bad ASN"
      | Some _ -> (
          let seed = services.Pal.get_random 32 in
          let key = Rsa.generate ~bits:512 (Drbg.create ~seed) in
          match services.Pal.seal (Codec.rsa_private_to_string key) with
          | Error e -> Error ("seal: " ^ e)
          | Ok blob ->
              Ok (Codec.command "init-ok" [ Codec.rsa_public_to_string key.Rsa.pub; blob ])))
  | Some ("originate", [ blob; asn; prefix ]) -> (
      match (int_of_string_opt asn, services.Pal.unseal blob) with
      | None, _ -> Error "bad ASN"
      | _, Error e -> Error ("unseal: " ^ e)
      | Some asn, Ok key_bytes -> (
          match Codec.rsa_private_of_string key_bytes with
          | None -> Error "sealed key corrupt"
          | Some key ->
              let as_path = [ asn ] in
              let signature =
                Rsa.sign key (signed_payload ~prefix ~as_path)
              in
              Ok (wire_of_update { prefix; as_path; signatures = [ signature ] })))
  | Some ("forward", [ blob; asn; pred_pub; update_wire ]) -> (
      match
        ( int_of_string_opt asn,
          Codec.rsa_public_of_string pred_pub,
          update_of_wire update_wire,
          services.Pal.unseal blob )
      with
      | None, _, _, _ -> Error "bad ASN"
      | _, None, _, _ -> Error "bad predecessor key"
      | _, _, None, _ -> Error "malformed update"
      | _, _, _, Error e -> Error ("unseal: " ^ e)
      | Some asn, Some pred, Some u, Ok key_bytes -> (
          (* The protected logic: refuse to extend an update whose last
             hop does not verify — this check is what the attestation of
             this PAL vouches for. *)
          match (u.signatures, u.as_path) with
          | last_sig :: _, _ :: _
            when Rsa.verify pred
                   ~msg:(signed_payload ~prefix:u.prefix ~as_path:u.as_path)
                   ~signature:last_sig -> (
              match Codec.rsa_private_of_string key_bytes with
              | None -> Error "sealed key corrupt"
              | Some key ->
                  let as_path = asn :: u.as_path in
                  let signature =
                    Rsa.sign key (signed_payload ~prefix:u.prefix ~as_path)
                  in
                  Ok
                    (wire_of_update
                       {
                         prefix = u.prefix;
                         as_path;
                         signatures = signature :: u.signatures;
                       }))
          | _ -> Error "predecessor signature invalid: refusing to propagate"))
  | Some _ | None -> Error "unknown BGP command"

let pal () =
  Pal.create ~name:"bind-bgp" ~code_size:(16 * 1024)
    ~compute_time:(Sea_sim.Time.ms 3.) behavior

let init_router machine ~cpu ~asn =
  match
    Exec.run machine ~cpu (pal ())
      ~input:(Codec.command "init" [ string_of_int asn ])
  with
  | Error e -> Error e
  | Ok output -> (
      match Codec.parse_command output with
      | Some ("init-ok", [ pub; blob ]) -> (
          match Codec.rsa_public_of_string pub with
          | Some public -> Ok { asn; public; sealed_key = blob }
          | None -> Error "bad router key")
      | _ -> Error "unexpected init output")

let originate machine ~cpu router ~prefix =
  match
    Exec.run machine ~cpu (pal ())
      ~input:
        (Codec.command "originate"
           [ router.sealed_key; string_of_int router.asn; prefix ])
  with
  | Error e -> Error e
  | Ok output -> (
      match update_of_wire output with
      | Some u -> Ok u
      | None -> Error "malformed update from PAL")

let forward machine ~cpu router update ~predecessor =
  match
    Exec.run machine ~cpu (pal ())
      ~input:
        (Codec.command "forward"
           [
             router.sealed_key;
             string_of_int router.asn;
             Codec.rsa_public_to_string predecessor;
             wire_of_update update;
           ])
  with
  | Error e -> Error e
  | Ok output -> (
      match update_of_wire output with
      | Some u -> Ok u
      | None -> Error "malformed update from PAL")
