(** Serialization helpers shared by the application PALs.

    PAL inputs and outputs are single strings crossing the OS/PAL
    boundary; these helpers frame commands and RSA keys on top of
    {!Sea_crypto.Wire}. *)

val command : string -> string list -> string
(** [command verb args] frames a PAL request. *)

val parse_command : string -> (string * string list) option

val rsa_private_to_string : Sea_crypto.Rsa.private_key -> string
val rsa_private_of_string : string -> Sea_crypto.Rsa.private_key option
val rsa_public_to_string : Sea_crypto.Rsa.public -> string
val rsa_public_of_string : string -> Sea_crypto.Rsa.public option
