(** The proposed per-page access-control table (§5.2, Figure 5(b)).

    The paper recommends that the memory controller keep one entry per
    physical page recording which CPUs may access it. A page is in one of
    three states:

    - [All] — accessible to every CPU and to DMA devices (default);
    - [Cpu_only] — exclusive to one CPU (a PAL is executing there);
    - [None_access] — inaccessible to everything (the PAL is suspended).

    We additionally record which SECB owns a non-[All] page. The real
    hardware derives this from the SECB's page list when SLAUNCH runs; the
    explicit owner field lets the model verify exactly the checks §5.2 and
    Figure 7 require ("if ∃ p ∈ SECB.pages s.t. p.accessible = NONE,
    FAIL") and makes tampering attempts detectable in tests. *)

type state =
  | All
  | Cpu_only of { cpu : int; secb_id : int }
  | Shared of { cpus : int list; secb_id : int }
      (** Multicore PAL (§6 "Multicore PALs"): two or more CPUs joined to
          one PAL's pages. The list is sorted and duplicate-free. *)
  | None_access of { secb_id : int }

type t

val create : pages:int -> t
(** All pages initially [All]. *)

val page_count : t -> int
val get : t -> int -> state

val claim : t -> secb_id:int -> cpu:int -> int list -> (unit, string) result
(** First launch: every listed page must currently be [All]; afterwards
    all are [Cpu_only] for [cpu]. On failure nothing changes. *)

val suspend : t -> secb_id:int -> cpu:int -> int list -> (unit, string) result
(** Context-switch out: [Cpu_only {cpu; secb_id}] → [None_access]. *)

val resume : t -> secb_id:int -> cpu:int -> int list -> (unit, string) result
(** Context-switch in: [None_access {secb_id}] → [Cpu_only] for the (new)
    CPU. Fails if any page is not suspended state owned by [secb_id] —
    this is the check that makes a forged Measured Flag useless (§5.3.1). *)

val release : t -> secb_id:int -> int list -> (unit, string) result
(** SFREE/SKILL: owned pages (either executing or suspended) → [All]. *)

val join : t -> secb_id:int -> cpu:int -> int list -> (unit, string) result
(** §6 "Multicore PALs": add [cpu] to the set of CPUs allowed on the
    PAL's pages. The pages must be executing ([Cpu_only] or [Shared])
    and owned by [secb_id]; joining a CPU already present fails. *)

val leave : t -> secb_id:int -> cpu:int -> int list -> (unit, string) result
(** Remove [cpu] from a [Shared] page set; with one CPU left the pages
    return to [Cpu_only]. The last CPU cannot leave (it must SYIELD or
    SFREE instead). *)

val cpu_may_access : t -> cpu:int -> int -> bool
val dma_may_access : t -> int -> bool
(** DMA is permitted only to [All] pages. *)

val owned_pages : t -> secb_id:int -> int list
(** For diagnostics and invariant checks. *)
