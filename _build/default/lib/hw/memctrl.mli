(** The memory controller (north bridge): the single gateway to RAM.

    Mediates every access from CPUs and DMA-capable devices. Two protection
    mechanisms are modelled:

    - The {b Device Exclusion Vector} (DEV): today's AMD mechanism, one bit
      per page; a set bit blocks {e device} (DMA) access but not other
      CPUs. SKINIT sets DEV bits for the SLB (§2.2.1). Intel's Memory
      Protection Table is modelled identically.
    - The proposed {b per-page access-control table} (§5.2), present when
      the machine is built with the paper's recommended hardware; it
      restricts CPUs as well as devices.

    All accesses return [Result] — a denied access is an ordinary outcome
    the threat-model tests assert on, not an exception. *)

type initiator =
  | Cpu of int
  | Device of string  (** A DMA-capable peripheral, e.g. a NIC. *)

type t

val create : memory:Memory.t -> proposed:bool -> t
(** [proposed] enables the per-page access-control table. *)

val memory : t -> Memory.t
(** Backdoor used only by machine setup (loading code before protection)
    and by tests; runtime accesses must go through {!read}/{!write}. *)

val acl : t -> Access_control.t option

val dev_protect : t -> int list -> unit
val dev_unprotect : t -> int list -> unit
val dev_protected : t -> int -> bool

val permitted : t -> initiator -> int -> bool
(** Access decision for one page. *)

val read :
  t -> initiator -> page:int -> off:int -> len:int -> (string, string) result

val write : t -> initiator -> page:int -> off:int -> string -> (unit, string) result

val read_span :
  t -> initiator -> pages:int list -> off:int -> len:int -> (string, string) result

val write_span :
  t -> initiator -> pages:int list -> off:int -> string -> (unit, string) result

val denied_accesses : t -> int
(** Count of refused requests since creation (isolation diagnostics). *)
