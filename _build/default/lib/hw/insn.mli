(** The instruction set of the execution model.

    Today's instructions — SKINIT (AMD, §2.2.1), SENTER (Intel, §2.2.2),
    VM entry/exit (Table 2) — and the paper's proposed instructions —
    SLAUNCH (§5.1), SYIELD (§5.3), SFREE and SKILL (§5.5).

    Every instruction advances the machine's simulated clock by its
    modelled cost and performs its functional effect (protection updates,
    TPM traffic, real measurement of the bytes in memory). Failures are
    returned, mirroring the failure codes the paper specifies. *)

module Costs : sig
  val cpu_init : Sea_sim.Time.t
  (** Putting the CPU into the clean protected state (Table 1's 0 KB rows:
      ≈ microseconds). *)

  val vm_enter : Machine.arch -> Sea_sim.Time.t
  val vm_exit : Machine.arch -> Sea_sim.Time.t
  (** Table 2: AMD 0.5580 / 0.5193 µs; Intel 0.4457 / 0.4491 µs. *)

  val vm_jitter : float
  (** Relative std-dev of VM transitions (Table 2's ~0.5% dispersion). *)

  val senter_acmod_bytes : int
  (** Size of the Intel Authenticated Code Module ("just over 10 KB"). *)

  val senter_sig_verify : Sea_sim.Time.t
  (** Chipset RSA verification of the ACMod signature. *)

  val cpu_hash_per_byte : Sea_sim.Time.t
  (** Rate at which the ACMod hashes the PAL on the main CPU — the slow
      linear growth of SENTER in Table 1 (≈ 121 ns/byte). *)

  val state_clear : Sea_sim.Time.t
  (** Scrubbing microarchitectural state on SYIELD/SFREE (§5.3.1). *)

  val page_erase : Sea_sim.Time.t
  (** Zeroing one 4 KB page during SKILL. *)
end

(** {1 Today's hardware} *)

val skinit :
  Machine.t -> cpu:int -> pages:int list -> length:int -> (string, string) result
(** AMD late launch. [pages] hold the Secure Loader Block; [length] bytes
    (≤ 64 KB) are measured. Requires a TPM, ring-0 (modelled as: no PAL
    currently on this CPU) and {e every other core idle} (§4.2). Effects:
    DEV-protects the pages, disables interrupts, resets dynamic PCRs and
    extends PCR 17 with the SLB measurement — streaming the SLB to the TPM
    over the LPC bus, which is where the time goes. Returns the SLB
    measurement (= new PCR 17 preimage). *)

val skinit_max_bytes : int
(** 64 KB — the DEV-covered SLB limit. *)

val senter :
  Machine.t -> cpu:int -> pages:int list -> length:int -> (string, string) result
(** Intel late launch: the chipset-verified ACMod is streamed to the TPM
    and extended into PCR 17; the ACMod then hashes the PAL on the main
    CPU and extends it into PCR 18 (§2.2.2). Returns the PAL measurement. *)

val senter_max_bytes : int
(** 512 KB — the default MPT coverage. *)

val late_launch :
  Machine.t -> cpu:int -> pages:int list -> length:int -> (string, string) result
(** Dispatches to {!skinit} or {!senter} per the machine's architecture. *)

val vm_enter : Machine.t -> cpu:int -> unit
val vm_exit : Machine.t -> cpu:int -> unit
(** Pure timing reference points (Table 2); used as the context-switch
    cost target for the proposed hardware (§5.7). *)

(** {1 Proposed hardware} *)

type slaunch_outcome =
  | Launched of string  (** First launch; the PAL's measurement. *)
  | Resumed  (** Measured Flag honored; state reloaded. *)

val slaunch : Machine.t -> cpu:int -> Secb.t -> (slaunch_outcome, string) result
(** Figure 7. First launch: claims the SECB's pages in the access-control
    table, allocates a sePCR, streams the PAL to the TPM for measurement,
    sets the Measured Flag, and enters the PAL. Resume: honors the
    Measured Flag {e only} if the pages are in the suspended state owned
    by this SECB, rebinds the sePCR to this CPU, reloads state, and enters
    at VM-entry cost. Fails (without side effects on the protection state)
    on: missing proposed hardware, a freed SECB, pages in use, no free
    sePCR, or a busy CPU. *)

val syield : Machine.t -> cpu:int -> Secb.t -> (unit, string) result
(** Voluntary yield or preemption-timer expiry: hardware saves the CPU
    state into the SECB, suspends the pages to the no-access state, scrubs
    microarchitectural state and returns the CPU to the untrusted OS. *)

val sfree : Machine.t -> cpu:int -> Secb.t -> (unit, string) result
(** Clean PAL exit. Must execute from within the PAL (the model checks
    the CPU is running this SECB's PAL — the paper's "SFREE executed by
    other code must fail", §5.5). Releases pages to ALL and moves the
    sePCR to the Quote state. The PAL is responsible for erasing its own
    secrets first. *)

val skill : Machine.t -> Secb.t -> (unit, string) result
(** Kill a misbehaving, {e suspended} PAL from untrusted code: hardware
    erases the PAL's pages, releases them to ALL, extends the sePCR with
    the SKILL constant and frees it (§5.5). *)

(** {1 §6 extensions} *)

val sjoin : Machine.t -> cpu:int -> Secb.t -> (unit, string) result
(** Multicore PALs: join an additional CPU to an executing PAL — the
    join "serves to add the new CPU to the memory controller's access
    control table for the PAL's pages" (§6). The joining CPU must be
    running legacy code; costs a VM entry. *)

val sleave : Machine.t -> cpu:int -> Secb.t -> (unit, string) result
(** The joined CPU leaves the PAL and returns to the untrusted OS after
    a secure state clear. The last CPU cannot leave — it exits via
    SYIELD or SFREE. *)

val interrupt_reprogram_cost : Secb.t -> Sea_sim.Time.t
(** Cost of reprogramming the interrupt-routing logic for this PAL's IDT
    on each dispatch — zero for the recommended empty IDT, and the
    "undesirable overhead" of §6 otherwise. Charged by SLAUNCH. *)

type interrupt_destination =
  | To_os  (** Routed to the untrusted OS (default). *)
  | To_pal of int  (** Delivered to the PAL owning this SECB id. *)

val deliver_interrupt :
  Machine.t -> secbs:Secb.t list -> vector:int -> interrupt_destination
(** §6 "PAL Interrupt Handling": a device raises [vector]. If some PAL is
    currently executing on a CPU and registered [vector] in its IDT, the
    interrupt is routed to it; in every other case (unregistered vector,
    PAL suspended, no PAL at all) it goes to the OS. *)
