type status = Idle | Legacy | In_pal of int

type t = { id : int; mutable status : status; mutable interrupts_enabled : bool }

let create ~id = { id; status = Legacy; interrupts_enabled = true }

let pp_status fmt = function
  | Idle -> Format.pp_print_string fmt "idle"
  | Legacy -> Format.pp_print_string fmt "legacy"
  | In_pal id -> Format.fprintf fmt "PAL(secb %d)" id
