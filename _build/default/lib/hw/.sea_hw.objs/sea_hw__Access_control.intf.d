lib/hw/access_control.mli:
