lib/hw/memctrl.mli: Access_control Memory
