lib/hw/memctrl.ml: Access_control Array List Memory Printf
