lib/hw/secb.mli: Sea_sim Sea_tpm
