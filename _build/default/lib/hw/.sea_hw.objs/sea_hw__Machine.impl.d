lib/hw/machine.ml: Array Cpu Engine Hashtbl List Memctrl Memory Printf Sea_sim Sea_tpm
