lib/hw/secb.ml: Int List Memory Sea_sim Sea_tpm
