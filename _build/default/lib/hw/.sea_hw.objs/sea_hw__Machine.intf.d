lib/hw/machine.mli: Cpu Hashtbl Memctrl Sea_sim Sea_tpm
