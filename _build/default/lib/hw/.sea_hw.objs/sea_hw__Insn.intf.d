lib/hw/insn.mli: Machine Sea_sim Secb
