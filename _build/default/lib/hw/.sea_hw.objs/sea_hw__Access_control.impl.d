lib/hw/access_control.ml: Array Int List Printf
