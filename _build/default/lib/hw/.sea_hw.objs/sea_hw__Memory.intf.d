lib/hw/memory.mli:
