lib/hw/cpu.mli: Format
