lib/hw/memory.ml: Array Bytes Printf String
