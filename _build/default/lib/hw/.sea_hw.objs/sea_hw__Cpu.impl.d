lib/hw/cpu.ml: Format
