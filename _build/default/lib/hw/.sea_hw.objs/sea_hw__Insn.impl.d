lib/hw/insn.ml: Access_control Array Buffer Cpu Engine Float Lazy List Machine Memctrl Memory Rng Sea_bus Sea_crypto Sea_sim Sea_tpm Secb Sha1 Time
