type state =
  | All
  | Cpu_only of { cpu : int; secb_id : int }
  | Shared of { cpus : int list; secb_id : int }
  | None_access of { secb_id : int }

type t = { table : state array }

let create ~pages =
  if pages <= 0 then invalid_arg "Access_control.create: page count must be positive";
  { table = Array.make pages All }

let page_count t = Array.length t.table

let get t page =
  if page < 0 || page >= Array.length t.table then
    invalid_arg (Printf.sprintf "Access_control: page %d out of range" page);
  t.table.(page)

let transition t pages ~check ~next =
  (* All-or-nothing: verify every page before mutating any. *)
  let rec verify = function
    | [] -> Ok ()
    | p :: rest -> (
        match check (get t p) with
        | Ok () -> verify rest
        | Error e -> Error (Printf.sprintf "page %d: %s" p e))
  in
  match verify pages with
  | Error e -> Error e
  | Ok () ->
      List.iter (fun p -> t.table.(p) <- next) pages;
      Ok ()

let claim t ~secb_id ~cpu pages =
  transition t pages
    ~check:(function
      | All -> Ok ()
      | Cpu_only _ | Shared _ -> Error "already exclusive to a CPU"
      | None_access _ -> Error "held by a suspended PAL")
    ~next:(Cpu_only { cpu; secb_id })

let suspend t ~secb_id ~cpu pages =
  transition t pages
    ~check:(function
      | Cpu_only o when o.cpu = cpu && o.secb_id = secb_id -> Ok ()
      | Cpu_only _ -> Error "exclusive to a different CPU or PAL"
      | Shared _ -> Error "multicore PAL: other CPUs must leave first"
      | All -> Error "not protected"
      | None_access _ -> Error "already suspended")
    ~next:(None_access { secb_id })

let resume t ~secb_id ~cpu pages =
  transition t pages
    ~check:(function
      | None_access o when o.secb_id = secb_id -> Ok ()
      | None_access _ -> Error "suspended but owned by another PAL"
      | All -> Error "not in suspended state"
      | Cpu_only _ | Shared _ -> Error "PAL already executing on a CPU")
    ~next:(Cpu_only { cpu; secb_id })

let release t ~secb_id pages =
  transition t pages
    ~check:(function
      | Cpu_only o when o.secb_id = secb_id -> Ok ()
      | Shared o when o.secb_id = secb_id -> Ok ()
      | None_access o when o.secb_id = secb_id -> Ok ()
      | All -> Error "not owned"
      | Cpu_only _ | Shared _ | None_access _ -> Error "owned by another PAL")
    ~next:All

(* Current executing CPU set of a page owned by [secb_id], if any. *)
let executing_cpus state ~secb_id =
  match state with
  | Cpu_only o when o.secb_id = secb_id -> Some [ o.cpu ]
  | Shared o when o.secb_id = secb_id -> Some o.cpus
  | _ -> None

let join t ~secb_id ~cpu pages =
  (* All pages of one SECB share a state, so inspecting the first page
     suffices to compute the joined set; the transition still checks every
     page before mutating. *)
  match pages with
  | [] -> Error "no pages"
  | first :: _ -> (
      let st = get t first in
      match executing_cpus st ~secb_id with
      | Some cpus when List.mem cpu cpus -> Error "CPU already joined"
      | Some cpus ->
          let next = Shared { cpus = List.sort Int.compare (cpu :: cpus); secb_id } in
          transition t pages
            ~check:(fun s ->
              if s = st then Ok ()
              else Error "inconsistent page states for this SECB")
            ~next
      | None -> (
          match st with
          | Cpu_only _ | Shared _ -> Error "owned by another PAL"
          | All -> Error "PAL not executing"
          | None_access _ -> Error "PAL is suspended"))

let leave t ~secb_id ~cpu pages =
  match pages with
  | [] -> Error "no pages"
  | first :: _ -> (
      let st = get t first in
      match st with
      | Shared o when o.secb_id = secb_id && List.mem cpu o.cpus ->
          let remaining = List.filter (fun c -> c <> cpu) o.cpus in
          let next =
            match remaining with
            | [ last ] -> Cpu_only { cpu = last; secb_id }
            | _ -> Shared { cpus = remaining; secb_id }
          in
          transition t pages
            ~check:(fun s ->
              if s = st then Ok ()
              else Error "inconsistent page states for this SECB")
            ~next
      | Shared _ -> Error "CPU not joined to this PAL"
      | Cpu_only _ -> Error "last CPU cannot leave; use SYIELD or SFREE"
      | All -> Error "PAL not executing"
      | None_access _ -> Error "PAL is suspended")

let cpu_may_access t ~cpu page =
  match get t page with
  | All -> true
  | Cpu_only o -> o.cpu = cpu
  | Shared o -> List.mem cpu o.cpus
  | None_access _ -> false

let dma_may_access t page = match get t page with All -> true | _ -> false

let owned_pages t ~secb_id =
  let acc = ref [] in
  Array.iteri
    (fun p s ->
      match s with
      | Cpu_only o when o.secb_id = secb_id -> acc := p :: !acc
      | Shared o when o.secb_id = secb_id -> acc := p :: !acc
      | None_access o when o.secb_id = secb_id -> acc := p :: !acc
      | _ -> ())
    t.table;
  List.rev !acc
