(** One CPU core.

    Tracks only what the execution model needs: what the core is currently
    doing and whether interrupts are enabled. Architectural register state
    that crosses context switches is snapshotted into the SECB
    ({!Secb.cpu_snapshot}); it has no behavioural content in the model. *)

type status =
  | Idle  (** Halted — the state SKINIT requires of all other cores. *)
  | Legacy  (** Running the untrusted OS / applications. *)
  | In_pal of int  (** Executing the PAL owned by SECB [id]. *)

type t = {
  id : int;
  mutable status : status;
  mutable interrupts_enabled : bool;
}

val create : id:int -> t
(** Fresh core, [Legacy] with interrupts enabled. *)

val pp_status : Format.formatter -> status -> unit
