(** Secure Execution Control Block (§5.1, Figure 5(a)).

    The in-memory structure the untrusted OS allocates to describe a PAL:
    its pages, entry point and length, the preemption-timer budget, and —
    once launched — the saved CPU state, the Measured Flag and the sePCR
    handle. Mirrors AMD's VMCB / Intel's VMCS as the paper suggests
    (§5.1.2).

    The model keeps the SECB as an OCaml record whose first page in
    [pages] stands for the physical page holding the structure itself, so
    the access-control table protects the SECB exactly as it protects the
    PAL (§5.2.1: "memory isolation ... for the memory region defined in
    the SECB and for the SECB itself"). *)

type cpu_snapshot = {
  eip : int;  (** Saved instruction pointer (simulated program counter). *)
  esp : int;
  registers : string;  (** Opaque architectural state. *)
}

type t = {
  id : int;
  pages : int list;  (** SECB page first, then PAL code/data pages. *)
  entry_point : int;  (** Offset into the PAL region. *)
  pal_length : int;  (** Measured code length in bytes. *)
  preemption_timer : Sea_sim.Time.t option;
      (** OS-configured execution budget per dispatch (§5.3.1). *)
  idt : int list;
      (** Interrupt vectors the PAL registered to receive (§6 "PAL
          Interrupt Handling"); empty for the recommended
          no-interrupts configuration. Routing these vectors to the PAL
          costs interrupt-logic reprogramming on every dispatch. *)
  mutable measured : bool;  (** The Measured Flag. *)
  mutable sepcr : Sea_tpm.Sepcr.handle option;
  mutable saved_state : cpu_snapshot option;
  mutable freed : bool;  (** Set by SFREE/SKILL; the SECB is then dead. *)
}

val create :
  id:int ->
  pages:int list ->
  entry_point:int ->
  pal_length:int ->
  ?preemption_timer:Sea_sim.Time.t ->
  ?idt:int list ->
  unit ->
  t
(** Validates that the page list is non-empty and duplicate-free, that
    [pal_length] fits in the region after the SECB page, and that IDT
    vectors are in [0, 255]. *)

val data_pages : t -> int list
(** Pages after the SECB page: where PAL code and data live. *)

val region_bytes : t -> int
(** Capacity of {!data_pages} in bytes. *)
