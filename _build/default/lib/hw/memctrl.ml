type initiator = Cpu of int | Device of string

type t = {
  memory : Memory.t;
  acl : Access_control.t option;
  dev : bool array; (* true = DMA blocked *)
  mutable denied : int;
}

let create ~memory ~proposed =
  let pages = Memory.page_count memory in
  {
    memory;
    acl = (if proposed then Some (Access_control.create ~pages) else None);
    dev = Array.make pages false;
    denied = 0;
  }

let memory t = t.memory
let acl t = t.acl

let check_page t page =
  if page < 0 || page >= Memory.page_count t.memory then
    invalid_arg (Printf.sprintf "Memctrl: page %d out of range" page)

let dev_protect t pages = List.iter (fun p -> check_page t p; t.dev.(p) <- true) pages
let dev_unprotect t pages = List.iter (fun p -> check_page t p; t.dev.(p) <- false) pages

let dev_protected t page =
  check_page t page;
  t.dev.(page)

let permitted t initiator page =
  check_page t page;
  match initiator with
  | Cpu cpu -> (
      match t.acl with
      | None -> true (* today's hardware does not restrict CPU accesses *)
      | Some acl -> Access_control.cpu_may_access acl ~cpu page)
  | Device _ ->
      (not t.dev.(page))
      && (match t.acl with None -> true | Some acl -> Access_control.dma_may_access acl page)

let deny t initiator page =
  t.denied <- t.denied + 1;
  let who = match initiator with Cpu i -> Printf.sprintf "CPU %d" i | Device d -> d in
  Error (Printf.sprintf "access to page %d denied for %s" page who)

let read t initiator ~page ~off ~len =
  if permitted t initiator page then Ok (Memory.read t.memory ~page ~off ~len)
  else deny t initiator page

let write t initiator ~page ~off data =
  if permitted t initiator page then Ok (Memory.write t.memory ~page ~off data)
  else deny t initiator page

let check_span t initiator pages =
  let rec go = function
    | [] -> Ok ()
    | p :: rest -> if permitted t initiator p then go rest else deny t initiator p
  in
  go pages

let read_span t initiator ~pages ~off ~len =
  match check_span t initiator pages with
  | Error e -> Error e
  | Ok () -> Ok (Memory.read_span t.memory ~pages ~off ~len)

let write_span t initiator ~pages ~off data =
  match check_span t initiator pages with
  | Error e -> Error e
  | Ok () -> Ok (Memory.write_span t.memory ~pages ~off data)

let denied_accesses t = t.denied
