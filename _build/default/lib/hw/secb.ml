type cpu_snapshot = { eip : int; esp : int; registers : string }

type t = {
  id : int;
  pages : int list;
  entry_point : int;
  pal_length : int;
  preemption_timer : Sea_sim.Time.t option;
  idt : int list;
  mutable measured : bool;
  mutable sepcr : Sea_tpm.Sepcr.handle option;
  mutable saved_state : cpu_snapshot option;
  mutable freed : bool;
}

let create ~id ~pages ~entry_point ~pal_length ?preemption_timer ?(idt = []) () =
  if pages = [] then invalid_arg "Secb.create: empty page list";
  let sorted = List.sort_uniq Int.compare pages in
  if List.length sorted <> List.length pages then
    invalid_arg "Secb.create: duplicate pages";
  let data_capacity = (List.length pages - 1) * Memory.page_size in
  if pal_length < 0 || pal_length > data_capacity then
    invalid_arg "Secb.create: PAL length exceeds allocated region";
  if entry_point < 0 || (pal_length > 0 && entry_point >= pal_length) then
    invalid_arg "Secb.create: entry point outside PAL code";
  if List.exists (fun v -> v < 0 || v > 255) idt then
    invalid_arg "Secb.create: interrupt vector out of range";
  {
    id;
    pages;
    entry_point;
    pal_length;
    preemption_timer;
    idt = List.sort_uniq Int.compare idt;
    measured = false;
    sepcr = None;
    saved_state = None;
    freed = false;
  }

let data_pages t = match t.pages with [] -> [] | _ :: rest -> rest
let region_bytes t = List.length (data_pages t) * Memory.page_size
