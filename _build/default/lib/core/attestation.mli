(** External verification (§3.1's third requirement, §2.1.1's protocol).

    The verifier holds the Privacy CA's public key and an expectation of
    what code should have run. Given a fresh nonce it issued, evidence
    gathered from the platform convinces it that a specific PAL executed
    under hardware protection:

    + the AIK certificate chains to the Privacy CA;
    + the quote's signature verifies under that AIK;
    + the quote covers the verifier's nonce (freshness);
    + the quoted PCR/sePCR values equal the chain a genuine late launch /
      SLAUNCH of the expected PAL produces — values software cannot forge
      because only the hardware path can reset those registers. *)

type evidence = {
  quote : Sea_tpm.Tpm.quote;
  aik : Sea_crypto.Rsa.public;
  aik_cert : string;
}

val gather : Sea_hw.Machine.t -> Sea_tpm.Tpm.quote -> evidence
(** Package a quote with the platform's AIK credentials. *)

type expectation =
  | Dynamic_pcrs of (int * string) list
      (** Today's hardware: expected values of the quoted dynamic PCRs. *)
  | Sepcr of string  (** Proposed hardware: expected sePCR value. *)

val expect_session_exit : Sea_hw.Machine.t -> Pal.t -> expectation
(** What a post-{!Session} quote must show: the identity PCR carrying the
    PAL's measurement followed by the exit marker (and, on Intel, PCR 17
    carrying the ACMod chain is ignored — only the PAL register is
    checked). *)

val expect_slaunch_exit : Pal.t -> expectation
(** What a post-{!Slaunch_session} quote must show for the PAL's sePCR. *)

val verify :
  ca:Sea_crypto.Rsa.public ->
  nonce:string ->
  expectation ->
  evidence ->
  (unit, string) result
(** All four checks; the error names the first that failed. *)
