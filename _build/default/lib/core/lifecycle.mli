(** The PAL life cycle of Figure 6, as an explicit state machine.

    Used by {!Slaunch_session} to track each PAL and by property tests to
    check that no illegal transition is reachable. [Protect] and [Measure]
    are transient inside SLAUNCH; they appear here because the paper's
    figure names them and the tests assert the path taken. *)

type state =
  | Start  (** SECB allocated, nothing launched. *)
  | Protect  (** Pages being claimed in the access-control table. *)
  | Measure  (** TPM measuring the PAL (first launch only). *)
  | Execute  (** Running on some CPU. *)
  | Suspend  (** Preempted or yielded; pages inaccessible to all. *)
  | Done  (** SFREE'd or SKILL'ed; resources returned to the OS. *)

type event =
  | Ev_slaunch_first
  | Ev_protected
  | Ev_measured
  | Ev_slaunch_resume
  | Ev_yield  (** SYIELD or preemption-timer expiry. *)
  | Ev_sfree
  | Ev_skill

val step : state -> event -> (state, string) result
(** The transition relation of Figure 6; illegal combinations are
    errors. *)

val is_terminal : state -> bool
val to_string : state -> string
val event_to_string : event -> string
val pp : Format.formatter -> state -> unit
