let architecture (m : Sea_hw.Machine.t) =
  if m.Sea_hw.Machine.config.Sea_hw.Machine.proposed then `Proposed else `Current

let run m ~cpu pal ~input =
  match architecture m with
  | `Current -> (
      match Session.execute m ~cpu pal ~input with
      | Error e -> Error e
      | Ok outcome -> Ok outcome.Session.output)
  | `Proposed -> (
      match Slaunch_session.start m ~cpu pal ~input with
      | Error e -> Error e
      | Ok session -> (
          let result = Slaunch_session.run_slice session ~cpu () in
          let output = Slaunch_session.output session in
          Slaunch_session.release session;
          match (result, output) with
          | Error e, _ -> Error e
          | Ok `Finished, Some out -> Ok out
          | Ok `Finished, None -> Error "PAL finished without output"
          | Ok `Yielded, _ -> Error "unsliced session unexpectedly yielded"))
