(** Rollback-protected sealed storage.

    The paper's sealed-storage pattern has a known gap it does not
    address: the untrusted OS stores the blobs, so it can feed a PAL a
    {e stale} blob — replaying yesterday's password database or an
    earlier factoring checkpoint. The standard fix (adopted by the
    follow-on literature, e.g. Memoir) binds each sealed state to a TPM
    monotonic counter: sealing increments the counter and embeds the new
    value; unsealing succeeds only if the embedded value equals the
    counter's current value, so exactly the latest blob is live.

    This module implements that discipline over {!Sea_tpm.Tpm}'s
    counters. It composes with both PCR policies (today's hardware) and
    sePCR bindings (proposed hardware). *)

type counter = int

val create_counter : Sea_tpm.Tpm.t -> (counter, string) result
(** A fresh monotonic counter dedicated to one protected state
    lineage. *)

val seal :
  Sea_tpm.Tpm.t ->
  caller:Sea_tpm.Tpm.caller ->
  ?sepcr:Sea_tpm.Sepcr.handle ->
  pcr_policy:(int * string) list ->
  counter:counter ->
  string ->
  (string, string) result
(** Increment the counter and seal [payload] bound to its new value
    (plus the given PCR/sePCR policy). Sealing invalidates every earlier
    blob of this lineage. *)

val unseal :
  Sea_tpm.Tpm.t ->
  caller:Sea_tpm.Tpm.caller ->
  ?sepcr:Sea_tpm.Sepcr.handle ->
  string ->
  (string, string) result
(** Fails with ["stale sealed state (rollback detected)"] when the OS
    presents anything but the most recent blob. *)
