type state = Start | Protect | Measure | Execute | Suspend | Done

type event =
  | Ev_slaunch_first
  | Ev_protected
  | Ev_measured
  | Ev_slaunch_resume
  | Ev_yield
  | Ev_sfree
  | Ev_skill

let to_string = function
  | Start -> "Start"
  | Protect -> "Protect"
  | Measure -> "Measure"
  | Execute -> "Execute"
  | Suspend -> "Suspend"
  | Done -> "Done"

let event_to_string = function
  | Ev_slaunch_first -> "SLAUNCH(MF=0)"
  | Ev_protected -> "protections-in-place"
  | Ev_measured -> "measurement-complete"
  | Ev_slaunch_resume -> "SLAUNCH(MF=1)"
  | Ev_yield -> "SYIELD/preempt"
  | Ev_sfree -> "SFREE"
  | Ev_skill -> "SKILL"

let step state event =
  match (state, event) with
  | Start, Ev_slaunch_first -> Ok Protect
  | Protect, Ev_protected -> Ok Measure
  | Measure, Ev_measured -> Ok Execute
  | Suspend, Ev_slaunch_resume -> Ok Execute
  | Execute, Ev_yield -> Ok Suspend
  | Execute, Ev_sfree -> Ok Done
  | Suspend, Ev_skill -> Ok Done
  | s, e ->
      Error
        (Printf.sprintf "illegal transition: %s on %s" (to_string s)
           (event_to_string e))

let is_terminal = function Done -> true | _ -> false
let pp fmt s = Format.pp_print_string fmt (to_string s)
