open Sea_crypto

(* Gen and Use are two entry commands of the SAME binary, exactly as in the
   Flicker-style applications of §4.1: the sealed state must unseal in a
   later session, which requires the later session to carry the same
   measurement — so the code identity has to be shared. *)
let shared_behavior ~secret_size ~reseal services input =
  if String.length input = 0 then begin
    (* Gen: create application data and seal it for later use. Key material
       is derived on the CPU (cheap) rather than via TPM GetRandom, as the
       paper's applications do. *)
    let drbg = Drbg.create ~seed:("pal-gen-secret:" ^ services.Pal.machine_name) in
    let secret = Drbg.generate_string drbg secret_size in
    services.Pal.seal secret
  end
  else begin
    (* Use: retrieve state sealed by a previous session and operate on it. *)
    match services.Pal.unseal input with
    | Error e -> Error ("unseal: " ^ e)
    | Ok secret ->
        let updated =
          if String.length secret < 32 then Sha256.digest secret
          else Sha256.digest secret ^ String.sub secret 32 (String.length secret - 32)
        in
        if reseal then services.Pal.seal updated else Ok (Sha1.digest secret)
  end

let make ~code_size ~secret_size ~reseal ~compute_time =
  (* One name + size = one measurement for both entry points. *)
  Pal.create ~name:"generic-gen-use" ~code_size ?compute_time
    (shared_behavior ~secret_size ~reseal)

let pal_gen ?(code_size = 64 * 1024) ?(secret_size = 256) () =
  make ~code_size ~secret_size ~reseal:false ~compute_time:None

let pal_use ?(code_size = 64 * 1024) ?(reseal = true) ?compute_time () =
  make ~code_size ~secret_size:256 ~reseal ~compute_time

let secret_of_use_output secret = Sha1.digest secret
