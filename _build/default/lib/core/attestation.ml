open Sea_crypto

type evidence = {
  quote : Sea_tpm.Tpm.quote;
  aik : Rsa.public;
  aik_cert : string;
}

let gather (m : Sea_hw.Machine.t) quote =
  let tpm = Sea_hw.Machine.tpm_exn m in
  {
    quote;
    aik = Sea_tpm.Tpm.aik_public tpm;
    aik_cert = Sea_tpm.Tpm.aik_certificate tpm;
  }

type expectation = Dynamic_pcrs of (int * string) list | Sepcr of string

let expect_session_exit m pal =
  let pcr = Session.identity_pcr_for m in
  Dynamic_pcrs [ (pcr, Session.expected_identity_after_exit m pal) ]

let expect_slaunch_exit pal = Sepcr (Slaunch_session.expected_sepcr pal)

let verify ~ca ~nonce expectation evidence =
  if not (Sea_tpm.Tpm.verify_aik_certificate ~ca ~aik:evidence.aik evidence.aik_cert)
  then Error "AIK certificate does not chain to the Privacy CA"
  else if not (Sea_tpm.Tpm.verify_quote ~aik:evidence.aik evidence.quote) then
    Error "quote signature invalid"
  else if not (String.equal evidence.quote.Sea_tpm.Tpm.nonce nonce) then
    Error "stale or replayed quote (nonce mismatch)"
  else begin
    match expectation with
    | Dynamic_pcrs expected ->
        let quoted = evidence.quote.Sea_tpm.Tpm.selection in
        let check (idx, value) =
          match List.assoc_opt idx quoted with
          | None -> Some (Printf.sprintf "PCR %d missing from quote" idx)
          | Some v when String.equal v value -> None
          | Some _ -> Some (Printf.sprintf "PCR %d does not match expected code" idx)
        in
        (match List.filter_map check expected with
        | [] -> Ok ()
        | e :: _ -> Error e)
    | Sepcr expected -> (
        match evidence.quote.Sea_tpm.Tpm.sepcr_value with
        | None -> Error "quote carries no sePCR value"
        | Some v when String.equal v expected -> Ok ()
        | Some _ -> Error "sePCR does not match expected PAL measurement")
  end
