(** The two generic PALs of §4.1, representative of "nearly every practical
    application built on SEA".

    - {b PAL Gen} launches, generates application-specific data (e.g. a
      key), seals it for later use, and exits returning the sealed blob.
    - {b PAL Use} launches, unseals state sealed by a previous session,
      operates on it, optionally reseals it, and exits.

    Figure 2's bars are exactly the overhead breakdowns of running these
    two PALs (plus a Quote). *)

val pal_gen : ?code_size:int -> ?secret_size:int -> unit -> Pal.t
(** Output: the sealed blob (to be stored by the untrusted OS and fed to a
    later PAL Use). [secret_size] defaults to 256 bytes — the working-state
    size at which the paper's Broadcom Seal anchor (20.01 ms) sits. *)

val pal_use :
  ?code_size:int ->
  ?reseal:bool ->
  ?compute_time:Sea_sim.Time.t ->
  unit ->
  Pal.t
(** Input: a blob sealed by {!pal_gen} (or a previous resealing PAL Use).
    Output: the new sealed blob when [reseal] (default [true] — the
    distributed-computing pattern), else the SHA-1 of the secret (the
    signing-CA pattern, where the unsealed key is simply erased). *)

val secret_of_use_output : string -> string
(** For tests: the digest a non-resealing {!pal_use} returns. *)
