lib/core/slaunch_session.mli: Lifecycle Pal Sea_hw Sea_sim Sea_tpm
