lib/core/pal.mli: Sea_sim
