lib/core/attestation.mli: Pal Sea_crypto Sea_hw Sea_tpm
