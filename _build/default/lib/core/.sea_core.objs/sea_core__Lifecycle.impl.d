lib/core/lifecycle.ml: Format Printf
