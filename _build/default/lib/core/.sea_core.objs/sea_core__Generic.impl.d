lib/core/generic.ml: Drbg Pal Sea_crypto Sha1 Sha256 String
