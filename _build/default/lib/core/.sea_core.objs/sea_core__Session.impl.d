lib/core/session.ml: Array Cpu Engine Insn Machine Memctrl Memory Pal Sea_crypto Sea_hw Sea_sim Sea_tpm Sha1 String Time
