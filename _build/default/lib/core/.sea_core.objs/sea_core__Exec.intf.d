lib/core/exec.mli: Pal Sea_hw
