lib/core/attestation.ml: List Printf Rsa Sea_crypto Sea_hw Sea_tpm Session Slaunch_session String
