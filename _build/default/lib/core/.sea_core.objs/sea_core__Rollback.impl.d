lib/core/rollback.ml: Sea_crypto Sea_tpm Wire
