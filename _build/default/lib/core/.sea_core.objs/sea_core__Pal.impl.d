lib/core/pal.ml: Drbg Printf Sea_crypto Sea_hw Sea_sim Sha1 String
