lib/core/generic.mli: Pal Sea_sim
