lib/core/exec.ml: Sea_hw Session Slaunch_session
