lib/core/rollback.mli: Sea_tpm
