lib/core/session.mli: Pal Sea_hw Sea_sim Sea_tpm
