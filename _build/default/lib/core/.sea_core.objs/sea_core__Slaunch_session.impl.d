lib/core/slaunch_session.ml: Engine Insn Lifecycle List Machine Memctrl Memory Pal Sea_crypto Sea_hw Sea_sim Sea_tpm Secb Sha1 String Time
