open Sea_crypto

type counter = int

let create_counter tpm = Sea_tpm.Tpm.counter_create tpm

let frame ~counter ~version payload =
  let enc = Wire.encoder () in
  Wire.add_string enc "ROLLBACKv1";
  Wire.add_int enc counter;
  Wire.add_int enc version;
  Wire.add_string enc payload;
  Wire.contents enc

let unframe s =
  let d = Wire.decoder s in
  match (Wire.read_string d, Wire.read_int d, Wire.read_int d, Wire.read_string d) with
  | Some "ROLLBACKv1", Some counter, Some version, Some payload ->
      Some (counter, version, payload)
  | _ -> None

let seal tpm ~caller ?sepcr ~pcr_policy ~counter payload =
  match Sea_tpm.Tpm.counter_increment tpm counter with
  | Error e -> Error e
  | Ok version ->
      Sea_tpm.Tpm.seal tpm ~caller ?sepcr ~pcr_policy
        (frame ~counter ~version payload)

let unseal tpm ~caller ?sepcr blob =
  match Sea_tpm.Tpm.unseal tpm ~caller ?sepcr blob with
  | Error e -> Error e
  | Ok framed -> (
      match unframe framed with
      | None -> Error "not a rollback-protected blob"
      | Some (counter, version, payload) -> (
          match Sea_tpm.Tpm.counter_read tpm counter with
          | Error e -> Error e
          | Ok current ->
              if current = version then Ok payload
              else Error "stale sealed state (rollback detected)"))
