(** One entry point for "run this PAL, whatever the machine is".

    Applications written against {!Sea_core.Pal.services} are
    architecture-agnostic; what differs is how the platform hosts them:
    a Flicker-style {!Session} on today's hardware (whole-platform
    freeze, TPM-bound state) or a {!Slaunch_session} on the proposed
    hardware (concurrent, sePCR-bound state). This facade dispatches on
    the machine's configuration so application drivers need not care —
    the same CA or SSH workflow runs on either, with the sealed state
    correctly bound in both cases. *)

val run :
  Sea_hw.Machine.t -> cpu:int -> Pal.t -> input:string -> (string, string) result
(** Execute the PAL to completion and return its output. On proposed
    hardware the session runs unsliced (no preemption timer) and its
    pages are released afterwards; use {!Slaunch_session} directly for
    scheduling control. *)

val architecture : Sea_hw.Machine.t -> [ `Current | `Proposed ]
