(** Trusted (measured) boot, §1 / §2.1.1 / related work.

    The layered-TCB world the paper argues against: every boot component
    — BIOS, option ROMs, bootloader, kernel, initrd, drivers — is
    measured into the static PCRs as it loads, and an attestation covers
    the whole stack. The verifier must then judge {e every} entry in the
    log ("assess a list of all software loaded since boot ... and decide
    whether the platform should be trusted").

    This module exists to quantify that contrast: {!tcb_entries} of a
    trusted-boot attestation vs. the single PAL measurement of a
    late-launch attestation. *)

type component = {
  name : string;
  pcr_index : int;  (** Static PCR this component class extends (0–7). *)
  image : string;  (** The bytes that get measured. *)
}

val component : name:string -> pcr_index:int -> seed:string -> size:int -> component
(** Deterministic synthetic component image. *)

val standard_stack : unit -> component list
(** A representative 2007-era boot chain: BIOS, option ROM, MBR
    bootloader, kernel, initrd, kernel modules, plus an application —
    seven measured components across PCRs 0–7. *)

val compromise : component -> component
(** The same component with a patched image (a bootkit/rootkit). *)

val boot :
  Sea_hw.Machine.t -> component list -> (Sea_tpm.Event_log.t, string) result
(** Reboot the platform's TPM and measure the stack in order, extending
    the static PCRs and recording the log the OS keeps in ordinary
    memory. *)

val attest :
  Sea_hw.Machine.t ->
  nonce:string ->
  (Sea_tpm.Tpm.quote, string) result
(** Quote over the static PCRs 0–7. *)

val verify :
  ca:Sea_crypto.Rsa.public ->
  nonce:string ->
  log:Sea_tpm.Event_log.event list ->
  known_good:(string * string) list ->
  Sea_core.Attestation.evidence ->
  (unit, string) result
(** The trusted-boot verifier: checks the AIK chain and quote signature,
    replays the log against the quoted PCRs, and then requires {e every}
    logged component to appear in the [known_good] whitelist of
    (name, measurement) pairs — the per-component trust decision the
    paper wants to spare application developers. *)

val tcb_entries : Sea_tpm.Event_log.t -> int
(** Number of distinct software components the verifier must trust. *)
