(** Multiprogramming experiment driver (§4.4's first bottleneck vs §5's
    goal of concurrent PALs).

    Models the OS's view of a batch of PAL jobs arriving over a time
    window on a multicore machine, under either architecture:

    - {b Current hardware}: a job needing [chunks] units of protected work
      runs as [chunks] complete SEA sessions (late launch + TPM Unseal +
      work + TPM Seal each time, per §5.7), and every session stalls the
      {e entire} platform — all other cores idle, OS suspended.
    - {b Proposed hardware}: the same job is one SLAUNCH session whose
      work is sliced by the preemption timer; it occupies a single core,
      context switches cost ~VM-exit, and the remaining cores run legacy
      work throughout.

    The report compares platform throughput left for legacy software and
    the latency of the protected jobs themselves. *)

type mode = Current | Proposed

type job = {
  label : string;
  arrival : Sea_sim.Time.t;
  chunks : int;  (** Units of protected work requiring state to persist
                     across context switches. *)
  chunk_work : Sea_sim.Time.t;  (** Application compute per unit. *)
  code_size : int;
}

val job :
  ?label:string ->
  ?arrival:Sea_sim.Time.t ->
  ?chunks:int ->
  ?chunk_work:Sea_sim.Time.t ->
  ?code_size:int ->
  unit ->
  job
(** Defaults: arrival 0, 8 chunks of 5 ms, 16 KB of code. *)

type report = {
  mode : mode;
  window : Sea_sim.Time.t;  (** max(requested window, last completion). *)
  cpu_count : int;
  completed : int;
  failed : int;
  pal_latency_ms : Sea_sim.Stats.t;  (** Arrival → completion, per job. *)
  pal_busy : Sea_sim.Time.t;  (** CPU-time consumed by PAL execution
                                  including all overheads. *)
  stalled : Sea_sim.Time.t;
      (** Wall-clock during which {e every} core was unavailable to legacy
          software (always 0 under [Proposed]). *)
  stall_intervals_ms : Sea_sim.Stats.t;
      (** Each contiguous whole-platform freeze, in ms — the
          responsiveness view of §4.2's complaint that "most of the
          computer's processing power and responsiveness vanish for over
          a second". Empty under [Proposed]. *)
  legacy_cpu_time : Sea_sim.Time.t;  (** CPU-time left for legacy work. *)
  legacy_utilization : float;  (** [legacy_cpu_time / (window × cores)]. *)
}

val run :
  Sea_hw.Machine.t -> mode:mode -> jobs:job list -> window:Sea_sim.Time.t -> report
(** Execute the batch. The machine must match the mode (a TPM for
    [Current]; proposed hardware for [Proposed]). Raises [Failure] on
    machine/mode mismatch; individual job failures are counted. *)

val pp_report : Format.formatter -> report -> unit
