lib/os/adversary.mli: Sea_core Sea_hw Sea_tpm
