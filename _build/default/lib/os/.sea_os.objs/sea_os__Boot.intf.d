lib/os/boot.mli: Sea_core Sea_crypto Sea_hw Sea_tpm
