lib/os/scheduler.mli: Format Sea_hw Sea_sim
