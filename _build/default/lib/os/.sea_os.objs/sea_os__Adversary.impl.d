lib/os/adversary.ml: Attestation Char Insn List Machine Memctrl Memory Option Pal Printf Rollback Sea_core Sea_hw Sea_tpm Secb String
