lib/os/netload.mli: Sea_core Sea_hw Sea_sim Stdlib
