lib/os/boot.ml: Char Drbg List Machine Printf Sea_core Sea_crypto Sea_hw Sea_tpm String
