lib/os/scheduler.ml: Array Engine Format Generic List Machine Option Pal Sea_core Sea_hw Sea_sim Session Slaunch_session Stats Time
