lib/os/netload.ml: Engine List Sea_core Sea_hw Sea_sim Session Time
