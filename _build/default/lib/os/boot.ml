open Sea_crypto
open Sea_hw

type component = { name : string; pcr_index : int; image : string }

let component ~name ~pcr_index ~seed ~size =
  if pcr_index < 0 || pcr_index >= Sea_tpm.Pcr.first_dynamic then
    invalid_arg "Boot.component: boot components extend static PCRs";
  let drbg = Drbg.create ~seed:(Printf.sprintf "boot:%s:%s" name seed) in
  { name; pcr_index; image = Drbg.generate_string drbg size }

let standard_stack () =
  [
    component ~name:"BIOS" ~pcr_index:0 ~seed:"ami-2006" ~size:(128 * 1024);
    component ~name:"NIC option ROM" ~pcr_index:2 ~seed:"bcm5751" ~size:(32 * 1024);
    component ~name:"MBR bootloader" ~pcr_index:4 ~seed:"grub-0.97" ~size:446;
    component ~name:"kernel" ~pcr_index:4 ~seed:"vmlinuz-2.6.20" ~size:(512 * 1024);
    component ~name:"initrd" ~pcr_index:5 ~seed:"initrd-2.6.20" ~size:(256 * 1024);
    component ~name:"kernel modules" ~pcr_index:5 ~seed:"modules" ~size:(128 * 1024);
    component ~name:"application" ~pcr_index:7 ~seed:"sshd-4.3" ~size:(64 * 1024);
  ]

let compromise c =
  {
    c with
    image =
      String.mapi
        (fun i ch -> if i = String.length c.image / 2 then Char.chr (Char.code ch lxor 0x55) else ch)
        c.image;
  }

let boot (m : Machine.t) components =
  match m.Machine.tpm with
  | None -> Error "trusted boot requires a TPM"
  | Some tpm ->
      Sea_tpm.Tpm.reboot tpm;
      let log = Sea_tpm.Event_log.create () in
      List.iter
        (fun c ->
          let event =
            Sea_tpm.Event_log.record log ~pcr_index:c.pcr_index ~description:c.name
              ~data:c.image
          in
          ignore
            (Sea_tpm.Tpm.pcr_extend tpm c.pcr_index
               event.Sea_tpm.Event_log.measurement))
        components;
      Ok log

let static_selection = [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let attest (m : Machine.t) ~nonce =
  match m.Machine.tpm with
  | None -> Error "no TPM"
  | Some tpm ->
      Sea_tpm.Tpm.quote tpm ~caller:Sea_tpm.Tpm.Software ~selection:static_selection
        ~nonce ()

let verify ~ca ~nonce ~log ~known_good (evidence : Sea_core.Attestation.evidence) =
  let quote = evidence.Sea_core.Attestation.quote in
  if
    not
      (Sea_tpm.Tpm.verify_aik_certificate ~ca ~aik:evidence.Sea_core.Attestation.aik
         evidence.Sea_core.Attestation.aik_cert)
  then Error "AIK certificate does not chain to the Privacy CA"
  else if not (Sea_tpm.Tpm.verify_quote ~aik:evidence.Sea_core.Attestation.aik quote)
  then Error "quote signature invalid"
  else if not (String.equal quote.Sea_tpm.Tpm.nonce nonce) then
    Error "stale or replayed quote (nonce mismatch)"
  else begin
    match
      Sea_tpm.Event_log.verify_against_quote log ~quoted:quote.Sea_tpm.Tpm.selection
    with
    | Error e -> Error e
    | Ok () ->
        (* Now the per-component trust decision: every logged component
           must be known-good. *)
        let rec check = function
          | [] -> Ok ()
          | e :: rest -> (
              match List.assoc_opt e.Sea_tpm.Event_log.description known_good with
              | Some m when String.equal m e.Sea_tpm.Event_log.measurement ->
                  check rest
              | Some _ ->
                  Error
                    (Printf.sprintf "component %S does not match its known-good version"
                       e.Sea_tpm.Event_log.description)
              | None ->
                  Error
                    (Printf.sprintf "component %S is not in the verifier's whitelist"
                       e.Sea_tpm.Event_log.description))
        in
        check log
  end

let tcb_entries log = Sea_tpm.Event_log.length log
