open Sea_sim
open Sea_hw
open Sea_core

type mode = Current | Proposed

type job = {
  label : string;
  arrival : Time.t;
  chunks : int;
  chunk_work : Time.t;
  code_size : int;
}

let job ?(label = "job") ?(arrival = Time.zero) ?(chunks = 8)
    ?(chunk_work = Time.ms 5.) ?(code_size = 16 * 1024) () =
  if chunks <= 0 then invalid_arg "Scheduler.job: chunks must be positive";
  { label; arrival; chunks; chunk_work; code_size }

type report = {
  mode : mode;
  window : Time.t;
  cpu_count : int;
  completed : int;
  failed : int;
  pal_latency_ms : Stats.t;
  pal_busy : Time.t;
  stalled : Time.t;
  stall_intervals_ms : Stats.t;
  legacy_cpu_time : Time.t;
  legacy_utilization : float;
}

(* One protected-work chunk as a full SEA session on today's hardware:
   the first chunk is a PAL Gen (creates the state), later chunks are
   resealing PAL Uses threading the blob. *)
let run_current (m : Machine.t) jobs window =
  let engine = m.Machine.engine in
  let base = Engine.now engine in
  let latencies = Stats.create () in
  let completed = ref 0 and failed = ref 0 in
  let platform_free = ref base in
  let stalled = ref Time.zero in
  let stall_intervals = Stats.create () in
  let sorted = List.sort (fun a b -> Time.compare a.arrival b.arrival) jobs in
  List.iter
    (fun j ->
      let arrival = Time.add base j.arrival in
      let start = Time.max arrival !platform_free in
      Engine.elapse_to engine start;
      let gen = Generic.pal_gen ~code_size:j.code_size () in
      let use =
        Generic.pal_use ~code_size:j.code_size ~reseal:true
          ~compute_time:j.chunk_work ()
      in
      let rec chunks_left n blob =
        if n = 0 then Ok ()
        else
          let pal, input = if blob = None then (gen, "") else (use, Option.get blob) in
          let t0 = Engine.now engine in
          match Session.execute m ~cpu:0 pal ~input with
          | Error e -> Error e
          | Ok outcome ->
              Stats.add_time stall_intervals (Time.sub (Engine.now engine) t0);
              chunks_left (n - 1) (Some outcome.Session.output)
      in
      (match chunks_left j.chunks None with
      | Ok () ->
          incr completed;
          Stats.add latencies (Time.to_ms (Time.sub (Engine.now engine) arrival))
      | Error _ -> incr failed);
      let finish = Engine.now engine in
      stalled := Time.add !stalled (Time.sub finish start);
      platform_free := finish)
    sorted;
  let cpu_count = Array.length m.Machine.cpus in
  let window = Time.max window (Time.sub !platform_free base) in
  let pal_busy = Time.scale !stalled cpu_count in
  let legacy = Time.sub (Time.scale window cpu_count) pal_busy in
  {
    mode = Current;
    window;
    cpu_count;
    completed = !completed;
    failed = !failed;
    pal_latency_ms = latencies;
    pal_busy;
    stalled = !stalled;
    stall_intervals_ms = stall_intervals;
    legacy_cpu_time = legacy;
    legacy_utilization =
      Time.to_s legacy /. (Time.to_s window *. float_of_int cpu_count);
  }

(* One job = one SLAUNCH session sliced by the preemption timer, pinned to
   the least-loaded core; other cores never see it. *)
let run_proposed (m : Machine.t) jobs window =
  let engine = m.Machine.engine in
  let latencies = Stats.create () in
  let completed = ref 0 and failed = ref 0 in
  let cpu_count = Array.length m.Machine.cpus in
  let base = Engine.now engine in
  let cpu_free = Array.make cpu_count base in
  let pal_busy = ref Time.zero in
  let last_finish = ref base in
  let sorted = List.sort (fun a b -> Time.compare a.arrival b.arrival) jobs in
  List.iter
    (fun j ->
      let arrival = Time.add base j.arrival in
      (* Pick the core that can start this job earliest. *)
      let cpu = ref 0 in
      for c = 1 to cpu_count - 1 do
        if Time.max arrival cpu_free.(c) < Time.max arrival cpu_free.(!cpu) then
          cpu := c
      done;
      let cpu = !cpu in
      let start = Time.max arrival cpu_free.(cpu) in
      Engine.elapse_to engine start;
      let t0 = Engine.now engine in
      let total_work = Time.scale j.chunk_work j.chunks in
      let pal =
        Pal.create ~name:("sched-" ^ j.label) ~code_size:j.code_size
          ~compute_time:total_work (fun services _ ->
            match services.Pal.seal "final-state" with
            | Error e -> Error e
            | Ok blob -> Ok blob)
      in
      let outcome =
        match
          Slaunch_session.start m ~cpu ~preemption_timer:j.chunk_work pal ~input:""
        with
        | Error e -> Error e
        | Ok session ->
            let rec drive () =
              match Slaunch_session.run_slice session ~cpu () with
              | Error e -> Error e
              | Ok `Finished -> Ok ()
              | Ok `Yielded -> (
                  (* The OS runs legacy work on this core between slices;
                     the PAL's own cost is just the switch pair. *)
                  match Slaunch_session.resume session ~cpu with
                  | Error e -> Error e
                  | Ok () -> drive ())
            in
            let r = drive () in
            Slaunch_session.release session;
            r
      in
      (match outcome with
      | Ok () ->
          incr completed;
          Stats.add latencies (Time.to_ms (Time.sub (Engine.now engine) arrival))
      | Error _ -> incr failed);
      let finish = Engine.now engine in
      let busy = Time.sub finish t0 in
      pal_busy := Time.add !pal_busy busy;
      cpu_free.(cpu) <- Time.add start busy;
      if cpu_free.(cpu) > !last_finish then last_finish := cpu_free.(cpu))
    sorted;
  let window = Time.max window (Time.sub !last_finish base) in
  let legacy = Time.sub (Time.scale window cpu_count) !pal_busy in
  {
    mode = Proposed;
    window;
    cpu_count;
    completed = !completed;
    failed = !failed;
    pal_latency_ms = latencies;
    pal_busy = !pal_busy;
    stalled = Time.zero;
    stall_intervals_ms = Stats.create ();
    legacy_cpu_time = legacy;
    legacy_utilization =
      Time.to_s legacy /. (Time.to_s window *. float_of_int cpu_count);
  }

let run (m : Machine.t) ~mode ~jobs ~window =
  match mode with
  | Current ->
      if m.Machine.tpm = None then failwith "Current mode requires a TPM";
      run_current m jobs window
  | Proposed ->
      if not m.Machine.config.Machine.proposed then
        failwith "Proposed mode requires the proposed hardware";
      run_proposed m jobs window

let mode_name = function Current -> "current hw" | Proposed -> "proposed hw"

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%s: %d/%d jobs done, latency %a ms, legacy CPU %.1f%%, stalled %a@]"
    (mode_name r.mode) r.completed (r.completed + r.failed) Stats.pp_summary
    r.pal_latency_ms
    (100. *. r.legacy_utilization)
    Time.pp r.stalled
