(** Per-vendor TPM latency profiles.

    Calibrated against the paper's measurements:

    - Figure 3 (TPM microbenchmarks, 20 trials each) fixes the base latency
      of PCR Extend, Seal, Quote, Unseal and GetRandom for each vendor.
    - Table 1 fixes the per-transaction LPC long-wait stall each TPM inserts
      while absorbing a PAL via TPM_HASH_DATA (the Broadcom part stalls
      ~10.8 µs per 4-byte transaction, which is what inflates a 64 KB
      SKINIT from 8.8 ms to 177.5 ms).
    - §5.7's cross-checks pin Seal payload sensitivity: the same Broadcom
      part is quoted at 11.39 ms and 20.01 ms for different payloads, which
      we model with a per-byte Seal cost.

    Latencies are means; [draw] adds the per-vendor Gaussian dispersion
    observed in Figure 3's error bars. *)

type profile = {
  pcr_extend : Sea_sim.Time.t;
  seal_base : Sea_sim.Time.t;
  seal_per_byte : Sea_sim.Time.t;
  unseal_base : Sea_sim.Time.t;
  unseal_per_byte : Sea_sim.Time.t;
  quote : Sea_sim.Time.t;
  get_random_base : Sea_sim.Time.t;
  get_random_per_byte : Sea_sim.Time.t;
  pcr_read : Sea_sim.Time.t;
  hash_start : Sea_sim.Time.t;  (** TPM_HASH_START command processing. *)
  hash_data_wait : Sea_sim.Time.t;
      (** LPC long-wait stall the TPM inserts per TPM_HASH_DATA
          transaction. This is the dominant SKINIT cost (§4.3.1). *)
  hash_end : Sea_sim.Time.t;
      (** TPM_HASH_END processing, including the internal PCR 17 extend. *)
  jitter : float;  (** Relative std-dev applied by {!draw}. *)
}

val profile : Vendor.t -> profile

val draw : Sea_sim.Rng.t -> profile -> Sea_sim.Time.t -> Sea_sim.Time.t
(** [draw rng p mean] samples one operation latency: Gaussian around
    [mean] with std-dev [p.jitter ×  mean], truncated at zero. *)

val scaled : profile -> factor:float -> profile
(** Uniformly speed up (factor < 1) or slow down (factor > 1) a profile.
    Used by the "just make the TPM faster" ablation (§5.7, last
    paragraph). *)

val seal_time : profile -> payload_bytes:int -> Sea_sim.Time.t
val unseal_time : profile -> payload_bytes:int -> Sea_sim.Time.t
val get_random_time : profile -> bytes:int -> Sea_sim.Time.t
