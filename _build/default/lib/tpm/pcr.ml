open Sea_crypto

let count = 24
let digest_size = 20
let first_dynamic = 17
let is_dynamic i = i >= first_dynamic && i < count

type bank = { values : string array }

let zeroes = String.make digest_size '\000'
let ones = String.make digest_size '\xff'

let reboot bank =
  for i = 0 to count - 1 do
    bank.values.(i) <- (if is_dynamic i then ones else zeroes)
  done

let create () =
  let bank = { values = Array.make count zeroes } in
  reboot bank;
  bank

let dynamic_reset bank =
  for i = first_dynamic to count - 1 do
    bank.values.(i) <- zeroes
  done

let check_index i =
  if i < 0 || i >= count then invalid_arg (Printf.sprintf "Pcr: index %d out of range" i)

let read bank i =
  check_index i;
  bank.values.(i)

let as_measurement m = if String.length m = digest_size then m else Sha1.digest m

let extend bank i m =
  check_index i;
  let m = as_measurement m in
  let v = Sha1.digest (bank.values.(i) ^ m) in
  bank.values.(i) <- v;
  v

let composite_of_values pairs =
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) pairs in
  let rec check_dups = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if a = b then invalid_arg "Pcr.composite: duplicate index";
        check_dups rest
    | _ -> ()
  in
  check_dups sorted;
  List.iter (fun (i, _) -> check_index i) sorted;
  let enc = Wire.encoder () in
  Wire.add_list enc
    (fun (i, v) ->
      Wire.add_int enc i;
      Wire.add_string enc v)
    sorted;
  Sha1.digest ("TPM_COMPOSITE" ^ Wire.contents enc)

let composite bank selection =
  composite_of_values (List.map (fun i -> (i, read bank i)) selection)
