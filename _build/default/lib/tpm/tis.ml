type locality = int

type t = { tpm : Tpm.t; mutable active : locality option }

let create tpm = { tpm; active = None }
let tpm t = t.tpm
let active t = t.active

let valid l = l >= 0 && l <= 4

let request t ~locality ~hardware =
  if not (valid locality) then Error "no such locality"
  else if locality >= 3 && not hardware then
    Error "localities 3-4 are reserved for the CPU hardware"
  else begin
    match t.active with
    | None ->
        t.active <- Some locality;
        Ok ()
    | Some current when current = locality -> Ok ()
    | Some _ when locality = 4 && hardware ->
        (* The late-launch path preempts whatever software held. *)
        t.active <- Some 4;
        Ok ()
    | Some current ->
        Error (Printf.sprintf "locality %d is active" current)
  end

let relinquish t ~locality =
  match t.active with
  | Some current when current = locality ->
      t.active <- None;
      Ok ()
  | Some current -> Error (Printf.sprintf "locality %d is active, not %d" current locality)
  | None -> Error "no active locality"

let as_caller t ~cpu =
  match t.active with
  | None -> Error "no active locality"
  | Some l when l >= 3 -> Ok (Tpm.Cpu cpu)
  | Some _ -> Ok Tpm.Software

let hash_start t ~cpu =
  match t.active with
  | Some 4 -> Tpm.hash_start t.tpm ~caller:(Tpm.Cpu cpu)
  | Some l -> Error (Printf.sprintf "TPM_HASH_START requires locality 4 (active: %d)" l)
  | None -> Error "no active locality"
