open Sea_sim

type profile = {
  pcr_extend : Time.t;
  seal_base : Time.t;
  seal_per_byte : Time.t;
  unseal_base : Time.t;
  unseal_per_byte : Time.t;
  quote : Time.t;
  get_random_base : Time.t;
  get_random_per_byte : Time.t;
  pcr_read : Time.t;
  hash_start : Time.t;
  hash_data_wait : Time.t;
  hash_end : Time.t;
  jitter : float;
}

(* Figure 3 calibration. Anchors from the text:
   - PAL Gen on the Broadcom = 177 ms SKINIT + 20.01 ms Seal (§4.3.3), and
     the same part seals a small payload in 11.39 ms, giving the per-byte
     Seal slope.
   - Best-case PAL Use = 177 (SKINIT) + 390.98 (Infineon Unseal)
     + 11.39 (Broadcom Seal) = 579.37 ms.
   - Infineon minus Broadcom Seal = 213 ms; Broadcom minus Infineon
     (Quote + Unseal) = 1132 ms.
   - Seal spans 20–500 ms and Unseal 290–900 ms across vendors (§5.7).
   - The Broadcom part is the slowest at Quote and Unseal; the Infineon has
     the best average across the five operations. *)
let broadcom =
  {
    pcr_extend = Time.ms 1.2;
    seal_base = Time.ms 11.39;
    seal_per_byte = Time.us 33.7; (* 11.39 ms -> 20.01 ms over a 256-byte payload *)
    unseal_base = Time.ms 900.;
    unseal_per_byte = Time.us 20.;
    quote = Time.ms 953.;
    get_random_base = Time.ms 35.;
    get_random_per_byte = Time.us 40.;
    pcr_read = Time.ms 2.;
    hash_start = Time.ms 0.4;
    hash_data_wait = Time.us 10.246;
    hash_end = Time.ms 0.4;
    jitter = 0.004;
  }

let atmel_t60 =
  {
    pcr_extend = Time.ms 1.0;
    seal_base = Time.ms 200.;
    seal_per_byte = Time.us 25.;
    unseal_base = Time.ms 520.;
    unseal_per_byte = Time.us 18.;
    quote = Time.ms 700.;
    get_random_base = Time.ms 22.;
    get_random_per_byte = Time.us 30.;
    pcr_read = Time.ms 1.5;
    hash_start = Time.ms 0.5;
    hash_data_wait = Time.us 8.2;
    hash_end = Time.ms 0.5;
    jitter = 0.012;
  }

let atmel_tep =
  {
    pcr_extend = Time.ms 1.5;
    seal_base = Time.ms 500.;
    seal_per_byte = Time.us 28.;
    unseal_base = Time.ms 290.;
    unseal_per_byte = Time.us 18.;
    quote = Time.ms 800.;
    get_random_base = Time.ms 25.;
    get_random_per_byte = Time.us 30.;
    pcr_read = Time.ms 1.5;
    hash_start = Time.ms 0.5;
    hash_data_wait = Time.us 2.0;
    hash_end = Time.ms 0.5;
    jitter = 0.01;
  }

let infineon =
  {
    pcr_extend = Time.ms 2.0;
    seal_base = Time.ms 224.39; (* Broadcom + 213 ms (§4.3.3) *)
    seal_per_byte = Time.us 25.;
    unseal_base = Time.ms 390.98;
    unseal_per_byte = Time.us 15.;
    quote = Time.ms 331.;
    get_random_base = Time.ms 28.;
    get_random_per_byte = Time.us 25.;
    pcr_read = Time.ms 1.8;
    hash_start = Time.ms 0.4;
    hash_data_wait = Time.us 7.5;
    hash_end = Time.ms 0.4;
    jitter = 0.008;
  }

(* A future TPM able to run at LPC line rate (§4.3.1's closing remark) with
   microsecond-class command handling. *)
let ideal =
  {
    pcr_extend = Time.us 5.;
    seal_base = Time.us 50.;
    seal_per_byte = Time.ns 10;
    unseal_base = Time.us 50.;
    unseal_per_byte = Time.ns 10;
    quote = Time.us 100.;
    get_random_base = Time.us 5.;
    get_random_per_byte = Time.ns 10;
    pcr_read = Time.us 2.;
    hash_start = Time.us 2.;
    hash_data_wait = Time.zero;
    hash_end = Time.us 2.;
    jitter = 0.;
  }

let profile = function
  | Vendor.Broadcom -> broadcom
  | Vendor.Atmel_t60 -> atmel_t60
  | Vendor.Atmel_tep -> atmel_tep
  | Vendor.Infineon -> infineon
  | Vendor.Ideal -> ideal

let draw rng p mean =
  if p.jitter = 0. || mean = Time.zero then mean
  else begin
    let m = float_of_int (Time.to_ns mean) in
    let sample = Rng.gaussian rng ~mean:m ~stdev:(p.jitter *. m) in
    Time.ns (int_of_float (Float.max 0. sample))
  end

let scaled p ~factor =
  let s t = Time.scale_f t factor in
  {
    pcr_extend = s p.pcr_extend;
    seal_base = s p.seal_base;
    seal_per_byte = s p.seal_per_byte;
    unseal_base = s p.unseal_base;
    unseal_per_byte = s p.unseal_per_byte;
    quote = s p.quote;
    get_random_base = s p.get_random_base;
    get_random_per_byte = s p.get_random_per_byte;
    pcr_read = s p.pcr_read;
    hash_start = s p.hash_start;
    hash_data_wait = s p.hash_data_wait;
    hash_end = s p.hash_end;
    jitter = p.jitter;
  }

let seal_time p ~payload_bytes =
  Time.add p.seal_base (Time.scale p.seal_per_byte payload_bytes)

let unseal_time p ~payload_bytes =
  Time.add p.unseal_base (Time.scale p.unseal_per_byte payload_bytes)

let get_random_time p ~bytes =
  Time.add p.get_random_base (Time.scale p.get_random_per_byte bytes)
