(** The TPM implementations benchmarked in the paper.

    Section 4.3.3 measures four v1.2 TPMs and finds that "different TPM
    implementations optimize different operations". Each vendor below maps
    to a calibrated timing profile in {!Timing}. [Ideal] models the paper's
    hypothetical future TPM that can operate at full LPC bus speed with
    negligible command latency (end of §4.3.1 and §5.7's "faster TPM"
    alternative). *)

type t =
  | Broadcom  (** HP dc5750 — fastest Seal, slowest Quote/Unseal. *)
  | Atmel_t60  (** Lenovo T60 laptop. *)
  | Atmel_tep  (** Intel TXT Technology Enabling Platform (different model
                   from the T60 part). *)
  | Infineon  (** AMD workstation — best average performance. *)
  | Ideal  (** Hypothetical wait-free TPM. *)

val all : t list
(** The four real vendors, in the paper's presentation order, then
    [Ideal]. *)

val measured : t list
(** Just the four vendors of Figure 3. *)

val name : t -> string
val machine : t -> string
(** Host machine each TPM was measured in (Figure 3 caption). *)

val pp : Format.formatter -> t -> unit
