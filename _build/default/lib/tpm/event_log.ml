open Sea_crypto

type event = { pcr_index : int; description : string; measurement : string }

type t = { mutable rev_events : event list; mutable count : int }

let create () = { rev_events = []; count = 0 }
let events t = List.rev t.rev_events
let length t = t.count

let append t e =
  t.rev_events <- e :: t.rev_events;
  t.count <- t.count + 1;
  e

let record_measurement t ~pcr_index ~description ~measurement =
  if String.length measurement <> Pcr.digest_size then
    invalid_arg "Event_log.record_measurement: not a digest";
  append t { pcr_index; description; measurement }

let record t ~pcr_index ~description ~data =
  append t { pcr_index; description; measurement = Sha1.digest data }

let replay events =
  let zero = String.make Pcr.digest_size '\000' in
  let table = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if Pcr.is_dynamic e.pcr_index then
        invalid_arg "Event_log.replay: dynamic PCRs are not boot-log rooted";
      let prev =
        match Hashtbl.find_opt table e.pcr_index with Some v -> v | None -> zero
      in
      Hashtbl.replace table e.pcr_index (Sha1.digest (prev ^ e.measurement)))
    events;
  Hashtbl.fold (fun i v acc -> (i, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let verify_against_quote events ~quoted =
  let expected = replay events in
  let rec check = function
    | [] -> Ok ()
    | (idx, value) :: rest -> (
        match List.assoc_opt idx quoted with
        | None -> Error (Printf.sprintf "PCR %d missing from the quote" idx)
        | Some q when String.equal q value -> check rest
        | Some _ ->
            Error
              (Printf.sprintf
                 "PCR %d does not match the log (tampered log or omitted event)"
                 idx))
  in
  check expected
