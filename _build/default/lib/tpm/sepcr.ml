open Sea_crypto

type handle = int
type state = Free | Exclusive | Quote

type slot = { mutable state : state; mutable owner : int; mutable value : string }

type bank = { slots : slot array }

let zeroes = String.make Pcr.digest_size '\000'
let skill_constant = Sha1.digest "TPM_SEPCR_SKILL"

let create ~size =
  if size <= 0 then invalid_arg "Sepcr.create: size must be positive";
  { slots = Array.init size (fun _ -> { state = Free; owner = -1; value = zeroes }) }

let size bank = Array.length bank.slots

let free_count bank =
  Array.fold_left (fun acc s -> if s.state = Free then acc + 1 else acc) 0 bank.slots

let state bank h = bank.slots.(h).state
let handle_to_int h = h

let handle_of_int bank i =
  if i >= 0 && i < Array.length bank.slots then Some i else None

let allocate bank ~owner =
  let rec find i =
    if i >= Array.length bank.slots then None
    else if bank.slots.(i).state = Free then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let s = bank.slots.(i) in
      s.state <- Exclusive;
      s.owner <- owner;
      s.value <- zeroes;
      Some i

let with_exclusive bank h ~owner f =
  let s = bank.slots.(h) in
  match s.state with
  | Exclusive when s.owner = owner -> f s
  | Exclusive -> Error "sePCR bound to a different CPU"
  | Free -> Error "sePCR is free"
  | Quote -> Error "sePCR awaiting quote"

let extend bank h ~owner m =
  with_exclusive bank h ~owner (fun s ->
      let m = if String.length m = Pcr.digest_size then m else Sha1.digest m in
      s.value <- Sha1.digest (s.value ^ m);
      Ok s.value)

let read bank h ~owner = with_exclusive bank h ~owner (fun s -> Ok s.value)
let value_unchecked bank h = bank.slots.(h).value

(* Rebinding happens inside SLAUNCH *after* the access-control table has
   verified that the resuming CPU presents the suspended SECB that owns
   the pages (§5.3.1) — the hardware path is the authority here, so the
   TPM only requires the slot to be live. The [owner] parameter is the
   CPU executing the SLAUNCH, which becomes meaningful when it equals
   [new_owner]. *)
let rebind bank h ~owner:_ ~new_owner =
  let s = bank.slots.(h) in
  match s.state with
  | Exclusive ->
      s.owner <- new_owner;
      Ok ()
  | Free -> Error "sePCR is free"
  | Quote -> Error "sePCR awaiting quote"

let release_for_quote bank h ~owner =
  with_exclusive bank h ~owner (fun s ->
      s.state <- Quote;
      s.owner <- -1;
      Ok ())

let skill bank h =
  let s = bank.slots.(h) in
  match s.state with
  | Free -> Error "sePCR is free"
  | Quote -> Error "sePCR awaiting quote"
  | Exclusive ->
      s.value <- Sha1.digest (s.value ^ skill_constant);
      s.state <- Free;
      s.owner <- -1;
      Ok ()

let finish_quote bank h =
  let s = bank.slots.(h) in
  match s.state with
  | Quote ->
      s.state <- Free;
      s.value <- zeroes;
      Ok ()
  | Free -> Error "sePCR is free"
  | Exclusive -> Error "sePCR still bound to a PAL"
