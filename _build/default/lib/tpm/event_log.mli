(** The measurement event log of §2.1.1.

    A TPM-based attestation signs PCR values; the platform additionally
    keeps an (untrusted, unprotected) log of {e what} was extended —
    "software events, such as applications started or configuration
    files used". The verifier recomputes the PCR chain from the log and
    compares it with the quoted values: the log entries are thereby
    authenticated even though the log itself lives in ordinary memory.

    The paper's argument starts here: with trusted boot, this log names
    the BIOS, bootloader, OS and everything else — all of which the
    verifier must judge — whereas a late-launch attestation covers only
    the PAL. *)

type event = {
  pcr_index : int;
  description : string;  (** Human-readable: what was measured. *)
  measurement : string;  (** SHA-1 of the measured data. *)
}

type t

val create : unit -> t
val events : t -> event list
(** In extension order. *)

val length : t -> int

val record : t -> pcr_index:int -> description:string -> data:string -> event
(** Append an event measuring [data] (the caller extends the PCR with
    the same measurement). *)

val record_measurement :
  t -> pcr_index:int -> description:string -> measurement:string -> event
(** Append an event whose measurement is already a digest. *)

val replay : event list -> (int * string) list
(** Recompute the final value of every PCR touched by the events,
    starting from the post-boot all-zeroes state of static PCRs.
    Raises [Invalid_argument] on a dynamic-PCR index — dynamic PCRs are
    rooted in a late launch, not in the boot-time log. *)

val verify_against_quote :
  event list -> quoted:(int * string) list -> (unit, string) result
(** The verifier-side check: the replayed chain must equal the quoted
    value for every PCR the events touch, and every touched PCR must
    appear in the quote. *)
