lib/tpm/timing.mli: Sea_sim Vendor
