lib/tpm/sepcr.mli:
