lib/tpm/auth.mli:
