lib/tpm/tis.mli: Tpm
