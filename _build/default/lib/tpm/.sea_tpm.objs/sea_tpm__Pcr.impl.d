lib/tpm/pcr.ml: Array Int List Printf Sea_crypto Sha1 String Wire
