lib/tpm/event_log.mli:
