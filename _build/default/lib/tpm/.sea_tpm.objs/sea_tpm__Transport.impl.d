lib/tpm/transport.ml: Aead Bignum Bytes Char Hmac Option Rsa Sea_crypto Sha256 Tpm Wire
