lib/tpm/sepcr.ml: Array Pcr Sea_crypto Sha1 String
