lib/tpm/event_log.ml: Hashtbl Int List Pcr Printf Sea_crypto Sha1 String
