lib/tpm/auth.ml: Hmac Sea_crypto Sha1
