lib/tpm/tpm.ml: Aead Auth Bignum Drbg Engine Hashtbl Keyvault List Pcr Printf Rng Rsa Sea_bus Sea_crypto Sea_sim Sepcr Sha1 String Time Timing Vendor Wire
