lib/tpm/tis.ml: Printf Tpm
