lib/tpm/tpm.mli: Auth Sea_bus Sea_crypto Sea_sim Sepcr Timing Vendor
