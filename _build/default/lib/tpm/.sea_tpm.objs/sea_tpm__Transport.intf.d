lib/tpm/transport.mli: Tpm
