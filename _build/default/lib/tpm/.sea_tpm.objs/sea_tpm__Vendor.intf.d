lib/tpm/vendor.mli: Format
