lib/tpm/timing.ml: Float Rng Sea_sim Time Vendor
