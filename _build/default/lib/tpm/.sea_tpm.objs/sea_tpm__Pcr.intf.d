lib/tpm/pcr.mli:
