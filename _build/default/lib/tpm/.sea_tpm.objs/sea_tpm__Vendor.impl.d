lib/tpm/vendor.ml: Format
