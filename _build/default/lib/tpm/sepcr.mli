(** Secure-execution PCRs — the paper's proposed TPM extension (§5.4).

    A bank of additional resettable PCRs, each of which can be dynamically
    bound to one executing PAL. The bank size limits how many PALs can
    execute concurrently (§5.4.1: "the number of sePCRs present in a TPM
    establishes the limit for the number of concurrently executing PALs").

    Each sePCR is in one of three states (§5.4.3):
    - [Free]: available for allocation by SLAUNCH.
    - [Exclusive]: bound to a PAL (executing or context-switched out). Only
      the owning CPU — on behalf of that PAL — may extend, read, seal or
      unseal against it.
    - [Quote]: the PAL has terminated; untrusted code may generate a
      TPM_Quote over it, after which it transitions to [Free].

    Owner identity is the CPU that executed the SLAUNCH; the hardware
    (CPU + memory controller) keeps the handle with the SECB, so the TPM
    only needs to match the requesting CPU against the binding. *)

type handle
(** Opaque sePCR handle; travels in the SECB and is returned to untrusted
    code for quote generation. Handles need not be secret (§5.4.2). *)

type state = Free | Exclusive | Quote

type bank

val create : size:int -> bank
(** All sePCRs initially [Free]. *)

val size : bank -> int
val free_count : bank -> int
val state : bank -> handle -> state
val handle_to_int : handle -> int
val handle_of_int : bank -> int -> handle option
(** Untrusted code supplies handles as integers (PAL output); this
    validates the range. *)

val allocate : bank -> owner:int -> handle option
(** Bind a free sePCR to a PAL being launched on CPU [owner]: resets the
    register to zeroes and moves it to [Exclusive]. [None] when no sePCR is
    free — SLAUNCH must then fail (§5.4.1). *)

val extend : bank -> handle -> owner:int -> string -> (string, string) result
(** Extend, permitted only in [Exclusive] state by the bound owner.
    Returns the new value or an access-control error. *)

val read : bank -> handle -> owner:int -> (string, string) result
(** Read, same access rule as {!extend}. *)

val value_unchecked : bank -> handle -> string
(** Internal TPM access for quote/seal paths that enforce their own state
    rules. *)

val rebind : bank -> handle -> owner:int -> new_owner:int -> (unit, string) result
(** Resume on a different CPU: the SECB carries the handle and SLAUNCH
    re-binds it to the resuming CPU (§5.3.1: "the PAL may execute on a
    different CPU each time it is resumed"). *)

val release_for_quote : bank -> handle -> owner:int -> (unit, string) result
(** SFREE path: [Exclusive] → [Quote] (§5.4.3). *)

val skill : bank -> handle -> (unit, string) result
(** SKILL path (§5.5): extend with the well-known SKILL constant, then
    [Exclusive] → [Free]. *)

val finish_quote : bank -> handle -> (unit, string) result
(** After a successful quote: [Quote] → [Free] (TPM_SEPCR_Free). *)

val skill_constant : string
(** The well-known 20-byte constant SKILL extends before freeing. *)
