open Sea_crypto

type session = { mutable nonce_even : string }

let create ~nonce_even = { nonce_even }

let compute ~secret ~command ~nonce_even ~nonce_odd =
  Hmac.sha1 ~key:secret (Sha1.digest command ^ nonce_even ^ nonce_odd)

let client_authorize session ~secret ~command ~nonce_odd =
  compute ~secret ~command ~nonce_even:session.nonce_even ~nonce_odd

let roll nonce_even = Sha1.digest (nonce_even ^ "nonce-roll")

let tpm_verify session ~secret ~command ~nonce_odd ~auth =
  let expected =
    compute ~secret ~command ~nonce_even:session.nonce_even ~nonce_odd
  in
  if Hmac.equal_constant_time auth expected then begin
    session.nonce_even <- roll session.nonce_even;
    true
  end
  else false
