type t = Broadcom | Atmel_t60 | Atmel_tep | Infineon | Ideal

let measured = [ Atmel_t60; Broadcom; Infineon; Atmel_tep ]
let all = measured @ [ Ideal ]

let name = function
  | Broadcom -> "Broadcom"
  | Atmel_t60 -> "T60 Atmel"
  | Atmel_tep -> "TEP Atmel"
  | Infineon -> "Infineon"
  | Ideal -> "Ideal"

let machine = function
  | Broadcom -> "HP dc5750"
  | Atmel_t60 -> "Lenovo T60"
  | Atmel_tep -> "Intel TEP (MPC ClientPro 385)"
  | Infineon -> "AMD workstation"
  | Ideal -> "hypothetical"

let pp fmt t = Format.pp_print_string fmt (name t)
