(** Platform Configuration Registers.

    A v1.2 TPM has 24 PCRs of one SHA-1 digest each. PCRs 0–16 are static:
    only a platform reboot resets them (to all-zeroes). PCRs 17–23 are
    dynamic: a reboot sets them to all-ones (-1) so a verifier can
    distinguish "since boot" from "since late launch", and the CPU's
    TPM_HASH_START hardware command — issued only during a late launch —
    resets them to all-zeroes (§2.1.3).

    Extending computes [v ← SHA1(v ∥ m)]: a PCR value commits to every
    value extended into it and their order. *)

val count : int
(** 24. *)

val digest_size : int
(** 20. *)

val first_dynamic : int
(** 17. *)

val is_dynamic : int -> bool

type bank

val create : unit -> bank
(** Fresh bank in post-reboot state. *)

val reboot : bank -> unit
(** Static PCRs to all-zeroes, dynamic PCRs to all-ones. *)

val dynamic_reset : bank -> unit
(** Dynamic PCRs to all-zeroes — only reachable via the hardware
    TPM_HASH_START path. *)

val read : bank -> int -> string
(** Raises [Invalid_argument] on an out-of-range index. *)

val extend : bank -> int -> string -> string
(** [extend bank i m] extends PCR [i] with measurement [m] (any length;
    non-digest inputs are hashed first, matching the convention of
    extending with SHA-1 measurements) and returns the new value. *)

val composite : bank -> int list -> string
(** [composite bank selection] is the TPM_COMPOSITE_HASH over the selected
    PCR indices: SHA1 of the sorted selection and the concatenated values.
    This is what Quote signs and Seal stores. Raises on out-of-range or
    duplicate indices. *)

val composite_of_values : (int * string) list -> string
(** Verifier-side computation of the same composite from expected values
    (no TPM needed). *)
