(** TPM v1.2 authorization sessions (OIAP-style).

    Commands that touch auth-protected objects prove knowledge of the
    object's authorization secret without sending it: the requester
    HMACs the command digest together with a TPM-chosen rolling nonce
    ([nonce_even]) and a requester-chosen nonce ([nonce_odd]). The TPM
    verifies with its stored secret and rolls [nonce_even], so every
    authorization value is single-use — an observer on the LPC bus can
    neither learn the secret nor replay the exchange.

    This module holds the protocol computation; {!Tpm.oiap_open} creates
    sessions and the NVRAM commands consume them. *)

type session = {
  mutable nonce_even : string;  (** TPM-chosen, rolled after each use. *)
}

val create : nonce_even:string -> session

val compute :
  secret:string -> command:string -> nonce_even:string -> nonce_odd:string -> string
(** The authorization HMAC both sides compute:
    HMAC-SHA1(secret, SHA1(command) ∥ nonce_even ∥ nonce_odd). *)

val client_authorize :
  session -> secret:string -> command:string -> nonce_odd:string -> string
(** Requester side: the auth value to attach to [command]. *)

val tpm_verify :
  session -> secret:string -> command:string -> nonce_odd:string -> auth:string -> bool
(** TPM side: constant-time check; on success the session's
    [nonce_even] rolls forward so the same auth value can never be
    accepted twice. *)
