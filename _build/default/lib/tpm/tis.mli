(** The TPM Interface Specification (TIS) locality model.

    The PC-client TIS (referenced as [24] in the paper) maps the TPM at
    memory addresses whose page determines the {e locality} (0–4) of the
    requester. Locality is a hardware-enforced statement about who is
    talking:

    - locality 4: the CPU microcode itself — the SKINIT/SENTER path;
      the only locality allowed to issue TPM_HASH_START (reset the
      dynamic PCRs);
    - locality 3: an ACMod / trusted code launched by it;
    - localities 0–2: ordinary software strata.

    This module arbitrates locality ownership the way the memory-mapped
    interface does: software can request/relinquish localities 0–2, only
    the hardware path can hold 3–4, and one locality is active at a
    time. {!as_caller} converts an active locality into the
    {!Tpm.caller} evidence the command layer checks, so the two views of
    authority stay consistent. *)

type locality = int
(** 0–4. *)

type t

val create : Tpm.t -> t
val tpm : t -> Tpm.t

val active : t -> locality option
(** The locality currently driving the TPM, if any. *)

val request : t -> locality:locality -> hardware:bool -> (unit, string) result
(** Claim a locality. [hardware] asserts the request originates from CPU
    microcode (SKINIT/SENTER); localities 3–4 require it. Fails when
    another locality is active — the TIS has a single active-locality
    register — except that a {e hardware} request for locality 4 seizes
    the interface (the CPU's late-launch path preempts software, as
    SKINIT does). *)

val relinquish : t -> locality:locality -> (unit, string) result

val as_caller : t -> cpu:int -> (Tpm.caller, string) result
(** The command-layer identity of the active locality: [Cpu cpu] for
    localities 3–4, [Software] for 0–2, error when none is active. *)

val hash_start : t -> cpu:int -> (unit, string) result
(** TPM_HASH_START through the interface: requires active locality 4
    (the check the paper cites from the TIS spec, §2.1.3). *)
