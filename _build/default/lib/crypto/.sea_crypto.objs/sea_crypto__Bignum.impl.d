lib/crypto/bignum.ml: Array Buffer Bytes Char Format Int String
