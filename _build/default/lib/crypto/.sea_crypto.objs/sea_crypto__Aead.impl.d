lib/crypto/aead.ml: Buffer Bytes Char Hmac Sha256 String
