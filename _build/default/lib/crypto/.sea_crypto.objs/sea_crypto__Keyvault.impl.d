lib/crypto/keyvault.ml: Bignum Drbg Embedded_keys Hashtbl List Printf Rsa
