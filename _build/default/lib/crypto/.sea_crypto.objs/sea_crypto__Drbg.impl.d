lib/crypto/drbg.ml: Buffer Bytes Hmac String
