lib/crypto/sha256.mli:
