lib/crypto/hmac.mli:
