lib/crypto/rsa.ml: Bignum Bytes Drbg Hmac List Sha1 String
