lib/crypto/sha256.ml: Array Buffer Bytes Char Printf String
