lib/crypto/aead.mli:
