lib/crypto/embedded_keys.ml:
