lib/crypto/wire.mli:
