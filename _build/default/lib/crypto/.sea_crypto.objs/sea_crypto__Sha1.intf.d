lib/crypto/sha1.mli:
