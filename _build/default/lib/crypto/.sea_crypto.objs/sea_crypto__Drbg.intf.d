lib/crypto/drbg.mli:
