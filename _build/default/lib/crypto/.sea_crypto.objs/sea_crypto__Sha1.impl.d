lib/crypto/sha1.ml: Array Buffer Bytes Char Printf String
