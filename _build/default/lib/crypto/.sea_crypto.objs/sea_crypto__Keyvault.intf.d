lib/crypto/keyvault.mli: Rsa
