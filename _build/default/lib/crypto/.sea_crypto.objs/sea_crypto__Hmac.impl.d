lib/crypto/hmac.ml: Char Sha1 Sha256 String
