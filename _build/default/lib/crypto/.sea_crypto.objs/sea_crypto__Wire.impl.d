lib/crypto/wire.ml: Buffer Char List String
