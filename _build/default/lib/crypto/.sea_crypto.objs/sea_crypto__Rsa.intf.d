lib/crypto/rsa.mli: Bignum Drbg
