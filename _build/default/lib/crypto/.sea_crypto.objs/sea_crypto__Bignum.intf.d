lib/crypto/bignum.mli: Format
