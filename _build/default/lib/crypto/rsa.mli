(** RSA, from scratch, for the TPM model.

    Provides key generation (Miller–Rabin), PKCS#1 v1.5 signatures with a
    SHA-1 DigestInfo (what a v1.2 TPM's Quote produces), and PKCS#1 v1.5
    type-2 encryption (used for Seal blobs). Sizes up to 2048 bits are
    practical with the [Bignum] substrate.

    This is a faithful-mechanism model, not hardened production crypto: no
    blinding, no constant-time guarantees — the "hardware" it runs inside is
    itself simulated. *)

type public = { n : Bignum.t; e : Bignum.t }

type private_key = {
  pub : public;
  d : Bignum.t;
  p : Bignum.t;
  q : Bignum.t;
}

val generate : ?e:int -> bits:int -> Drbg.t -> private_key
(** [generate ~bits drbg] creates a key with a modulus of exactly [bits]
    bits ([bits >= 32]). The default public exponent is 65537. *)

val key_bytes : public -> int
(** Modulus length in bytes. *)

val sign : private_key -> string -> string
(** [sign key msg] is a PKCS#1 v1.5 signature over SHA-1([msg]), of length
    [key_bytes key.pub]. *)

val verify : public -> msg:string -> signature:string -> bool

val encrypt : public -> Drbg.t -> string -> string
(** PKCS#1 v1.5 type-2 encryption. The plaintext must be at most
    [key_bytes pub - 11] bytes; raises [Invalid_argument] otherwise. *)

val decrypt : private_key -> string -> string option
(** [None] if the padding is invalid (wrong key or corrupted blob). *)

val max_plaintext : public -> int
(** Largest payload [encrypt] accepts. *)

val is_probable_prime : Bignum.t -> rounds:int -> Drbg.t -> bool
(** Miller–Rabin with the given number of random rounds (plus small-prime
    trial division). Exposed for tests. *)
