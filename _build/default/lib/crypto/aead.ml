let key_size = 32
let nonce_size = 16
let tag_size = 32
let overhead = tag_size

let check_sizes ~key ~nonce =
  if String.length key <> key_size then invalid_arg "Aead: bad key size";
  if String.length nonce <> nonce_size then invalid_arg "Aead: bad nonce size"

(* Keystream block i = SHA-256(key || nonce || i_be32). *)
let keystream ~key ~nonce len =
  let out = Buffer.create (len + 32) in
  let block = ref 0 in
  while Buffer.length out < len do
    let ctr =
      let b = Bytes.create 4 in
      for i = 0 to 3 do
        Bytes.set b i (Char.chr ((!block lsr (8 * (3 - i))) land 0xff))
      done;
      Bytes.to_string b
    in
    Buffer.add_string out (Sha256.digest (key ^ nonce ^ ctr));
    incr block
  done;
  Buffer.sub out 0 len

let xor_into s ks = String.mapi (fun i c -> Char.chr (Char.code c lxor Char.code ks.[i])) s

let mac_key key = Sha256.digest ("mac" ^ key)
let enc_key key = Sha256.digest ("enc" ^ key)

let encrypt ~key ~nonce plaintext =
  check_sizes ~key ~nonce;
  let ks = keystream ~key:(enc_key key) ~nonce (String.length plaintext) in
  let ct = xor_into plaintext ks in
  let tag = Hmac.sha256 ~key:(mac_key key) (nonce ^ ct) in
  ct ^ tag

let decrypt ~key ~nonce data =
  check_sizes ~key ~nonce;
  let n = String.length data in
  if n < tag_size then None
  else begin
    let ct = String.sub data 0 (n - tag_size) in
    let tag = String.sub data (n - tag_size) tag_size in
    let expected = Hmac.sha256 ~key:(mac_key key) (nonce ^ ct) in
    if not (Hmac.equal_constant_time tag expected) then None
    else begin
      let ks = keystream ~key:(enc_key key) ~nonce (String.length ct) in
      Some (xor_into ct ks)
    end
  end
