(** HMAC (RFC 2104) over the hashes in this library.

    The TPM uses HMAC-SHA1 for authorization sessions; the DRBG uses
    HMAC-SHA256 internally. *)

val sha1 : key:string -> string -> string
(** [sha1 ~key msg] is HMAC-SHA1(key, msg), 20 bytes. *)

val sha256 : key:string -> string -> string
(** [sha256 ~key msg] is HMAC-SHA256(key, msg), 32 bytes. *)

val equal_constant_time : string -> string -> bool
(** Comparison that does not leak the position of the first mismatch.
    The simulation has no real timing side channel, but model code that
    verifies MACs uses this for fidelity. *)
