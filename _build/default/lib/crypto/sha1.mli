(** SHA-1 (RFC 3174), implemented from scratch.

    SHA-1 is the hash the TPM v1.2 specification mandates for PCR extension
    and PAL measurement, which is why the paper (and this reproduction) use
    it. Collisions are known today; we reproduce the paper's mechanism, not
    its cryptographic advice. *)

val digest_size : int
(** 20 bytes. *)

val digest : string -> string
(** [digest msg] is the 20-byte SHA-1 digest of [msg]. *)

val digest_bytes : bytes -> string

val hex : string -> string
(** [hex msg] is the lowercase hex rendering of [digest msg]. *)

type ctx
(** Streaming interface, used by the TPM's TPM_HASH_START/DATA/END command
    sequence which receives a PAL a few bytes per bus transaction. *)

val init : unit -> ctx
val update : ctx -> string -> unit
val finalize : ctx -> string
(** May be called once; the context must not be reused afterwards. *)
