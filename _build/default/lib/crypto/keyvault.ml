let cache : (string * int, Rsa.private_key) Hashtbl.t = Hashtbl.create 7

(* Rebuild a key from its stored prime pair (e is always 65537). *)
let of_primes p_hex q_hex =
  let open Bignum in
  let p = of_hex p_hex and q = of_hex q_hex in
  let n = mul p q in
  let e = of_int 65537 in
  let phi = mul (sub p one) (sub q one) in
  match mod_inverse e ~m:phi with
  | Some d -> { Rsa.pub = { Rsa.n; e }; d; p; q }
  | None -> invalid_arg "Keyvault: embedded primes do not admit e = 65537"

let embedded ~label ~bits =
  List.find_map
    (fun (l, b, (p, q)) -> if l = label && b = bits then Some (of_primes p q) else None)
    Embedded_keys.table

let get ~label ~bits =
  match Hashtbl.find_opt cache (label, bits) with
  | Some key -> key
  | None ->
      let key =
        match embedded ~label ~bits with
        | Some key -> key
        | None ->
            let drbg =
              Drbg.create ~seed:(Printf.sprintf "sea-keyvault:%s:%d" label bits)
            in
            Rsa.generate ~bits drbg
      in
      Hashtbl.add cache (label, bits) key;
      key

let clear () = Hashtbl.reset cache
