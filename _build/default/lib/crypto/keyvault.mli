(** Process-wide cache of deterministic RSA keys.

    RSA-2048 generation with the from-scratch bignum takes seconds, and the
    benchmark harness instantiates several TPMs (one per simulated machine).
    Every TPM key is deterministic in its label, so generating it twice is
    pure waste; this vault generates each (label, bits) key once per process
    and returns the cached key afterwards.

    Keys for distinct labels are independent (the label seeds the DRBG). *)

val get : label:string -> bits:int -> Rsa.private_key
(** Return the cached key for [(label, bits)], generating it on first use. *)

val clear : unit -> unit
(** Drop the cache (used by tests that measure generation itself). *)
