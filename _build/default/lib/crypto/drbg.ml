(* HMAC-DRBG (SP 800-90A) with HMAC-SHA256, without personalization strings
   or prediction resistance; update/generate follow the standard K,V dance. *)

type t = { mutable k : string; mutable v : string }

let update t provided =
  t.k <- Hmac.sha256 ~key:t.k (t.v ^ "\x00" ^ provided);
  t.v <- Hmac.sha256 ~key:t.k t.v;
  if provided <> "" then begin
    t.k <- Hmac.sha256 ~key:t.k (t.v ^ "\x01" ^ provided);
    t.v <- Hmac.sha256 ~key:t.k t.v
  end

let create ~seed =
  let t = { k = String.make 32 '\000'; v = String.make 32 '\001' } in
  update t seed;
  t

let reseed t entropy = update t entropy

let generate t n =
  let out = Buffer.create n in
  while Buffer.length out < n do
    t.v <- Hmac.sha256 ~key:t.k t.v;
    Buffer.add_string out t.v
  done;
  update t "";
  Bytes.of_string (Buffer.sub out 0 n)

let generate_string t n = Bytes.to_string (generate t n)
