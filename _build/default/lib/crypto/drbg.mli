(** Deterministic random bit generator.

    A simplified HMAC-DRBG (in the spirit of NIST SP 800-90A) built on
    HMAC-SHA256. The TPM's GetRandom command and RSA key generation draw
    from an instance of this generator, so the whole platform's
    cryptographic randomness is reproducible from the instantiation seed —
    which is what makes the simulated experiments repeatable. *)

type t

val create : seed:string -> t
(** Instantiate from arbitrary seed material. *)

val generate : t -> int -> bytes
(** [generate t n] produces [n] fresh pseudo-random bytes and advances the
    state. *)

val generate_string : t -> int -> string

val reseed : t -> string -> unit
(** Mix additional entropy into the state. *)
