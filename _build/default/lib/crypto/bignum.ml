(* Little-endian arrays of 31-bit limbs, canonical (no trailing zero limb).
   Base 2^31 keeps every intermediate product below 2^63 on 64-bit ints:
   limb*limb < 2^62 and the schoolbook inner loop adds at most 2^32 more. *)

let limb_bits = 31
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let is_zero a = Array.length a = 0

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  if n = 0 then zero
  else begin
    let rec count acc v = if v = 0 then acc else count (acc + 1) (v lsr limb_bits) in
    let len = count 0 n in
    Array.init len (fun i -> (n lsr (i * limb_bits)) land limb_mask)
  end

let to_int_opt a =
  (* max_int is 2^62-1: values of up to three limbs may fit (3*31 = 93 > 62),
     so accumulate carefully and detect overflow. *)
  let rec go acc shift i =
    if i >= Array.length a then Some acc
    else if shift >= 63 then None
    else
      let limb = a.(i) in
      if shift + limb_bits > 62 && limb lsr (62 - shift) > 0 then None
      else go (acc lor (limb lsl shift)) (shift + limb_bits) (i + 1)
  in
  go 0 0 0

let equal a b = a = b

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let bit_length a =
  let l = Array.length a in
  if l = 0 then 0
  else
    let top = a.(l - 1) in
    let rec msb n v = if v = 0 then n else msb (n + 1) (v lsr 1) in
    ((l - 1) * limb_bits) + msb 0 top

let test_bit a i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let s = av + bv + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let d = a.(i) - bv - !borrow in
    if d < 0 then begin
      r.(i) <- d + limb_base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur land limb_mask;
        carry := cur lsr limb_bits
      done;
      (* Propagate the final carry, which may itself overflow one limb. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur land limb_mask;
        carry := cur lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let shift_left a n =
  if n < 0 then invalid_arg "Bignum.shift_left: negative shift";
  if is_zero a || n = 0 then a
  else begin
    let limbs = n / limb_bits and bits = n mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right a n =
  if n < 0 then invalid_arg "Bignum.shift_right: negative shift";
  if is_zero a || n = 0 then a
  else begin
    let limbs = n / limb_bits and bits = n mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi =
          if bits = 0 || i + limbs + 1 >= la then 0
          else (a.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    (* Binary long division: walk the divisor down from the top bit. *)
    let shift = bit_length a - bit_length b in
    let q = Array.make (shift / limb_bits + 1) 0 in
    let r = ref a in
    let d = ref (shift_left b shift) in
    for i = shift downto 0 do
      if compare !r !d >= 0 then begin
        r := sub !r !d;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end;
      d := shift_right !d 1
    done;
    (normalize q, !r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let mod_add a b ~m = rem (add a b) m

let mod_sub a b ~m =
  let a = rem a m and b = rem b m in
  if compare a b >= 0 then sub a b else sub (add a m) b

let mod_mul a b ~m = rem (mul a b) m

(* --- Montgomery machinery for odd moduli --- *)

(* Inverse of [x] modulo 2^31 by Newton iteration; [x] must be odd. *)
let inv_limb x =
  let y = ref x in
  (* Each iteration doubles the number of correct low bits; 5 iterations
     exceed 31 bits starting from the 3 bits correct in x itself. *)
  for _ = 1 to 5 do
    y := !y * (2 - (x * !y)) land limb_mask
  done;
  !y land limb_mask

type mont = { m : t; k : int; m0' : int }

let mont_of_modulus m =
  let k = Array.length m in
  let m0' = limb_base - inv_limb m.(0) in
  { m; k; m0' }

(* REDC: given t < m * base^k (as a (2k+1)-limb buffer), compute
   t * base^(-k) mod m in place, returning a fresh canonical value. *)
let mont_redc ctx (t : int array) =
  let { m; k; m0' } = ctx in
  for i = 0 to k - 1 do
    let u = t.(i) * m0' land limb_mask in
    let carry = ref 0 in
    for j = 0 to k - 1 do
      let cur = t.(i + j) + (u * m.(j)) + !carry in
      t.(i + j) <- cur land limb_mask;
      carry := cur lsr limb_bits
    done;
    let idx = ref (i + k) in
    while !carry <> 0 do
      let cur = t.(!idx) + !carry in
      t.(!idx) <- cur land limb_mask;
      carry := cur lsr limb_bits;
      incr idx
    done
  done;
  let r = normalize (Array.sub t k (Array.length t - k)) in
  if compare r m >= 0 then sub r m else r

let mont_mul ctx a b =
  let buf = Array.make ((2 * ctx.k) + 1) 0 in
  let la = Array.length a and lb = Array.length b in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    let ai = a.(i) in
    for j = 0 to lb - 1 do
      let cur = buf.(i + j) + (ai * b.(j)) + !carry in
      buf.(i + j) <- cur land limb_mask;
      carry := cur lsr limb_bits
    done;
    let idx = ref (i + lb) in
    while !carry <> 0 do
      let cur = buf.(!idx) + !carry in
      buf.(!idx) <- cur land limb_mask;
      carry := cur lsr limb_bits;
      incr idx
    done
  done;
  mont_redc ctx buf

let mod_pow_mont ~base ~exp ~m =
  let ctx = mont_of_modulus m in
  let k = ctx.k in
  (* R mod m and base*R mod m via division (setup cost only). *)
  let r_mod_m = rem (shift_left one (k * limb_bits)) m in
  let base_m = rem (mul (rem base m) (rem (shift_left one (k * limb_bits)) m)) m in
  let acc = ref r_mod_m in
  let nbits = bit_length exp in
  for i = nbits - 1 downto 0 do
    acc := mont_mul ctx !acc !acc;
    if test_bit exp i then acc := mont_mul ctx !acc base_m
  done;
  (* Convert out of Montgomery form: multiply by 1. *)
  let buf = Array.make ((2 * k) + 1) 0 in
  Array.blit !acc 0 buf 0 (Array.length !acc);
  mont_redc ctx buf

let mod_pow ~base ~exp ~m =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else if is_zero exp then one
  else if m.(0) land 1 = 1 then mod_pow_mont ~base ~exp ~m
  else begin
    let acc = ref one in
    let b = ref (rem base m) in
    let nbits = bit_length exp in
    for i = 0 to nbits - 1 do
      if test_bit exp i then acc := mod_mul !acc !b ~m;
      b := mod_mul !b !b ~m
    done;
    !acc
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let mod_inverse a ~m =
  if is_zero m || equal m one then None
  else begin
    (* Iterative extended Euclid keeping Bezout coefficients reduced mod m,
       which keeps everything in the naturals. *)
    let t = ref zero and newt = ref one in
    let r = ref m and newr = ref (rem a m) in
    while not (is_zero !newr) do
      let q, r' = divmod !r !newr in
      let t' = mod_sub !t (mod_mul q !newt ~m) ~m in
      t := !newt;
      newt := t';
      r := !newr;
      newr := r'
    done;
    if equal !r one then Some !t else None
  end

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let to_bytes_be ?pad_to a =
  let nbytes = (bit_length a + 7) / 8 in
  let nbytes = if nbytes = 0 then 1 else nbytes in
  let width =
    match pad_to with
    | None -> nbytes
    | Some w ->
        if w < nbytes then invalid_arg "Bignum.to_bytes_be: value exceeds pad_to";
        w
  in
  let b = Bytes.make width '\000' in
  let v = ref a in
  for i = width - 1 downto 0 do
    let byte =
      match to_int_opt (rem !v (of_int 256)) with Some x -> x | None -> assert false
    in
    Bytes.set b i (Char.chr byte);
    v := shift_right !v 8
  done;
  Bytes.to_string b

let of_hex s =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bignum.of_hex: invalid character"
  in
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 4) (of_int (digit c))) s;
  !acc

let to_hex a =
  if is_zero a then "0"
  else begin
    let digits = Buffer.create 32 in
    let v = ref a in
    while not (is_zero !v) do
      let d =
        match to_int_opt (rem !v (of_int 16)) with Some x -> x | None -> assert false
      in
      Buffer.add_char digits "0123456789abcdef".[d];
      v := shift_right !v 4
    done;
    let s = Buffer.contents digits in
    String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
  end

let of_random_bits gen bits =
  if bits <= 0 then zero
  else begin
    let nbytes = (bits + 7) / 8 in
    let b = gen nbytes in
    let excess = (nbytes * 8) - bits in
    if excess > 0 then
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land (0xff lsr excess)));
    of_bytes_be (Bytes.to_string b)
  end

let pp fmt a = Format.pp_print_string fmt (to_hex a)
