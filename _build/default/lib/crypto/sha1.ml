(* 32-bit arithmetic carried out in native ints, masked to 32 bits. *)

let digest_size = 20
let mask32 = 0xFFFFFFFF
let rotl32 x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* total bytes absorbed *)
  w : int array; (* message schedule scratch *)
}

let init () =
  {
    h0 = 0x67452301;
    h1 = 0xEFCDAB89;
    h2 = 0x98BADCFE;
    h3 = 0x10325476;
    h4 = 0xC3D2E1F0;
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    w = Array.make 80 0;
  }

let process_block ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    let j = off + (4 * i) in
    w.(i) <-
      (Char.code (Bytes.get block j) lsl 24)
      lor (Char.code (Bytes.get block (j + 1)) lsl 16)
      lor (Char.code (Bytes.get block (j + 2)) lsl 8)
      lor Char.code (Bytes.get block (j + 3))
  done;
  for i = 16 to 79 do
    w.(i) <- rotl32 (w.(i - 3) lxor w.(i - 8) lxor w.(i - 14) lxor w.(i - 16)) 1
  done;
  let a = ref ctx.h0
  and b = ref ctx.h1
  and c = ref ctx.h2
  and d = ref ctx.h3
  and e = ref ctx.h4 in
  for i = 0 to 79 do
    let f, k =
      if i < 20 then ((!b land !c) lor (lnot !b land !d) land mask32, 0x5A827999)
      else if i < 40 then (!b lxor !c lxor !d, 0x6ED9EBA1)
      else if i < 60 then ((!b land !c) lor (!b land !d) lor (!c land !d), 0x8F1BBCDC)
      else (!b lxor !c lxor !d, 0xCA62C1D6)
    in
    let tmp = (rotl32 !a 5 + (f land mask32) + !e + k + w.(i)) land mask32 in
    e := !d;
    d := !c;
    c := rotl32 !b 30;
    b := !a;
    a := tmp
  done;
  ctx.h0 <- (ctx.h0 + !a) land mask32;
  ctx.h1 <- (ctx.h1 + !b) land mask32;
  ctx.h2 <- (ctx.h2 + !c) land mask32;
  ctx.h3 <- (ctx.h3 + !d) land mask32;
  ctx.h4 <- (ctx.h4 + !e) land mask32

let update ctx s =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  (* Top up a partial block first. *)
  if ctx.buf_len > 0 then begin
    let take = min (64 - ctx.buf_len) len in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = 64 then begin
      process_block ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while len - !pos >= 64 do
    Bytes.blit_string s !pos ctx.buf 0 64;
    process_block ctx ctx.buf 0;
    pos := !pos + 64
  done;
  if !pos < len then begin
    Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let finalize ctx =
  let bit_len = ctx.total * 8 in
  (* Padding: 0x80, zeros, 64-bit big-endian length. *)
  let pad_len =
    let rem = (ctx.total + 1 + 8) mod 64 in
    if rem = 0 then 1 else 1 + (64 - rem)
  in
  let pad = Bytes.make (pad_len + 8) '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (pad_len + i) (Char.chr ((bit_len lsr (8 * (7 - i))) land 0xff))
  done;
  update ctx (Bytes.to_string pad);
  assert (ctx.buf_len = 0);
  let out = Bytes.create 20 in
  let put i v =
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xff))
  in
  put 0 ctx.h0;
  put 1 ctx.h1;
  put 2 ctx.h2;
  put 3 ctx.h3;
  put 4 ctx.h4;
  Bytes.to_string out

let digest msg =
  let ctx = init () in
  update ctx msg;
  finalize ctx

let digest_bytes b = digest (Bytes.to_string b)

let hex msg =
  let d = digest msg in
  let buf = Buffer.create 40 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf
