(** Arbitrary-precision natural numbers.

    Built from scratch (no Zarith) to support the TPM's RSA operations.
    Values are immutable. Only naturals are represented; subtraction of a
    larger value from a smaller one raises. The sizes involved (≤ 4096 bits)
    make schoolbook algorithms entirely adequate; modular exponentiation
    uses Montgomery multiplication for odd moduli.

    Internal representation: little-endian array of 31-bit limbs, with no
    most-significant zero limb (canonical form). *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int_opt : t -> int option
(** [None] if the value exceeds [max_int]. *)

val of_bytes_be : string -> t
(** Big-endian byte-string decoding; leading zero bytes are accepted. *)

val to_bytes_be : ?pad_to:int -> t -> string
(** Big-endian encoding with no leading zero byte, or left-zero-padded to
    exactly [pad_to] bytes. Raises [Invalid_argument] if the value does not
    fit in [pad_to] bytes. *)

val of_hex : string -> t
(** Parses a hexadecimal string (no prefix, case-insensitive).
    Raises [Invalid_argument] on non-hex characters. *)

val to_hex : t -> string

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val bit_length : t -> int
(** Number of significant bits; [0] for zero. *)

val test_bit : t -> int -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** Raises [Invalid_argument] if the result would be negative. *)

val mul : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]. Raises [Division_by_zero]. *)

val div : t -> t -> t
val rem : t -> t -> t

val mod_add : t -> t -> m:t -> t
val mod_sub : t -> t -> m:t -> t
val mod_mul : t -> t -> m:t -> t

val mod_pow : base:t -> exp:t -> m:t -> t
(** Modular exponentiation. Uses Montgomery multiplication when [m] is odd,
    and plain square-and-multiply with division otherwise. Raises
    [Division_by_zero] if [m] is zero. *)

val gcd : t -> t -> t

val mod_inverse : t -> m:t -> t option
(** Multiplicative inverse modulo [m], or [None] if it does not exist. *)

val of_random_bits : (int -> bytes) -> int -> t
(** [of_random_bits gen bits] draws a uniformly random value in
    [\[0, 2^bits)] using [gen n] to obtain [n] random bytes. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering. *)
