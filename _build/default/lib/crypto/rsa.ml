type public = { n : Bignum.t; e : Bignum.t }
type private_key = { pub : public; d : Bignum.t; p : Bignum.t; q : Bignum.t }

let small_primes =
  [
    2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71;
    73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139; 149; 151;
    157; 163; 167; 173; 179; 181; 191; 193; 197; 199; 211; 223; 227; 229; 233;
    239; 241; 251;
  ]

let is_probable_prime n ~rounds drbg =
  let open Bignum in
  if compare n two < 0 then false
  else if List.exists (fun p -> equal n (of_int p)) small_primes then true
  else if
    List.exists (fun p -> is_zero (rem n (of_int p))) small_primes
  then false
  else if compare n (of_int (251 * 251)) < 0 then
    (* No factor among the tested primes and below 251²: certainly prime. *)
    true
  else begin
    begin
      (* n - 1 = d * 2^s with d odd *)
      let n1 = sub n one in
      let rec split d s = if test_bit d 0 then (d, s) else split (shift_right d 1) (s + 1) in
      let d, s = split n1 0 in
      let nbits = bit_length n in
      let random_base () =
        (* Uniform a in [2, n-2]: rejection sample below n, retry on edges. *)
        let rec go () =
          let a = of_random_bits (fun k -> Drbg.generate drbg k) nbits in
          if compare a two < 0 || compare a (sub n two) > 0 then go () else a
        in
        go ()
      in
      let witness a =
        let x = ref (mod_pow ~base:a ~exp:d ~m:n) in
        if equal !x one || equal !x n1 then false
        else begin
          let composite = ref true in
          (try
             for _ = 1 to s - 1 do
               x := mod_mul !x !x ~m:n;
               if equal !x n1 then begin
                 composite := false;
                 raise Exit
               end
             done
           with Exit -> ());
          !composite
        end
      in
      let rec rounds_left k = if k = 0 then true else if witness (random_base ()) then false else rounds_left (k - 1) in
      rounds_left rounds
    end
  end

let random_prime ~bits drbg =
  let open Bignum in
  let rec go () =
    let cand = of_random_bits (fun k -> Drbg.generate drbg k) bits in
    (* Force the top bit (exact bit length) and the low bit (odd). *)
    let cand = shift_left (shift_right cand 1) 1 in
    let cand = add cand one in
    let cand =
      if test_bit cand (bits - 1) then cand
      else add cand (shift_left one (bits - 1))
    in
    if is_probable_prime cand ~rounds:12 drbg then cand else go ()
  in
  go ()

let generate ?(e = 65537) ~bits drbg =
  if bits < 32 then invalid_arg "Rsa.generate: modulus too small";
  let open Bignum in
  let e_big = of_int e in
  let half = bits / 2 in
  let rec go () =
    let p = random_prime ~bits:half drbg in
    let q = random_prime ~bits:(bits - half) drbg in
    if equal p q then go ()
    else begin
      let n = mul p q in
      if bit_length n <> bits then go ()
      else begin
        let phi = mul (sub p one) (sub q one) in
        match mod_inverse e_big ~m:phi with
        | None -> go ()
        | Some d -> { pub = { n; e = e_big }; d; p; q }
      end
    end
  in
  go ()

let key_bytes pub = (Bignum.bit_length pub.n + 7) / 8
let max_plaintext pub = key_bytes pub - 11

(* PKCS#1 v1.5 DigestInfo prefix for SHA-1 (RFC 8017 §9.2 notes). *)
let sha1_digest_info =
  "\x30\x21\x30\x09\x06\x05\x2b\x0e\x03\x02\x1a\x05\x00\x04\x14"

let emsa_pkcs1_v15 ~em_len digest =
  let t = sha1_digest_info ^ digest in
  let t_len = String.length t in
  if em_len < t_len + 11 then invalid_arg "Rsa: key too small for signature";
  let ps = String.make (em_len - t_len - 3) '\xff' in
  "\x00\x01" ^ ps ^ "\x00" ^ t

let sign key msg =
  let em_len = key_bytes key.pub in
  let em = emsa_pkcs1_v15 ~em_len (Sha1.digest msg) in
  let m = Bignum.of_bytes_be em in
  let s = Bignum.mod_pow ~base:m ~exp:key.d ~m:key.pub.n in
  Bignum.to_bytes_be ~pad_to:em_len s

let verify pub ~msg ~signature =
  let em_len = key_bytes pub in
  if String.length signature <> em_len then false
  else begin
    let s = Bignum.of_bytes_be signature in
    if Bignum.compare s pub.n >= 0 then false
    else begin
      let m = Bignum.mod_pow ~base:s ~exp:pub.e ~m:pub.n in
      let em = Bignum.to_bytes_be ~pad_to:em_len m in
      let expected = emsa_pkcs1_v15 ~em_len (Sha1.digest msg) in
      Hmac.equal_constant_time em expected
    end
  end

let encrypt pub drbg plaintext =
  let k = key_bytes pub in
  let m_len = String.length plaintext in
  if m_len > k - 11 then invalid_arg "Rsa.encrypt: plaintext too long";
  (* Type-2 padding: 00 02 <nonzero random> 00 <plaintext>. *)
  let ps_len = k - m_len - 3 in
  let ps = Bytes.create ps_len in
  for i = 0 to ps_len - 1 do
    let rec nonzero () =
      let b = Bytes.get (Drbg.generate drbg 1) 0 in
      if b = '\000' then nonzero () else b
    in
    Bytes.set ps i (nonzero ())
  done;
  let em = "\x00\x02" ^ Bytes.to_string ps ^ "\x00" ^ plaintext in
  let m = Bignum.of_bytes_be em in
  let c = Bignum.mod_pow ~base:m ~exp:pub.e ~m:pub.n in
  Bignum.to_bytes_be ~pad_to:k c

let decrypt key ciphertext =
  let k = key_bytes key.pub in
  if String.length ciphertext <> k then None
  else begin
    let c = Bignum.of_bytes_be ciphertext in
    if Bignum.compare c key.pub.n >= 0 then None
    else begin
      let m = Bignum.mod_pow ~base:c ~exp:key.d ~m:key.pub.n in
      let em = Bignum.to_bytes_be ~pad_to:k m in
      if String.length em < 11 || em.[0] <> '\000' || em.[1] <> '\002' then None
      else begin
        (* Find the 00 separator after at least 8 padding bytes. *)
        let rec find i =
          if i >= String.length em then None
          else if em.[i] = '\000' then if i >= 10 then Some i else None
          else find (i + 1)
        in
        match find 2 with
        | None -> None
        | Some sep -> Some (String.sub em (sep + 1) (String.length em - sep - 1))
      end
    end
  end
