(** Authenticated symmetric encryption for sealed blobs.

    A real v1.2 TPM wraps sealed data with its storage hierarchy; we model
    the same confidentiality+integrity contract with an encrypt-then-MAC
    scheme built from the primitives in this library: a SHA-256 counter-mode
    keystream for encryption and HMAC-SHA256 for integrity. Key and nonce
    are caller-supplied; each (key, nonce) pair must be used at most once. *)

val key_size : int
(** 32 bytes. *)

val nonce_size : int
(** 16 bytes. *)

val overhead : int
(** Ciphertext expansion in bytes (the MAC tag). *)

val encrypt : key:string -> nonce:string -> string -> string
(** [encrypt ~key ~nonce plaintext] returns [ciphertext ^ tag]. Raises
    [Invalid_argument] on wrong key or nonce size. *)

val decrypt : key:string -> nonce:string -> string -> string option
(** Authenticated decryption; [None] when the tag does not verify. *)
