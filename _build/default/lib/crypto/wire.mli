(** Minimal binary serialization helpers.

    Length-prefixed, big-endian framing used for TPM blobs, quotes and
    SECB snapshots. Deliberately tiny: strings, ints and lists compose into
    everything the models need. Decoding is total — malformed input yields
    [None], never an exception — because sealed blobs and attestation
    payloads cross a trust boundary. *)

type encoder

val encoder : unit -> encoder
val add_string : encoder -> string -> unit
(** 4-byte big-endian length prefix, then the bytes. *)

val add_int : encoder -> int -> unit
(** 8-byte big-endian two's-complement. *)

val add_list : encoder -> ('a -> unit) -> 'a list -> unit
(** 4-byte count, then each element via the callback (which should use the
    same encoder). *)

val contents : encoder -> string

type decoder

val decoder : string -> decoder
val read_string : decoder -> string option
val read_int : decoder -> int option
val read_list : decoder -> (unit -> 'a option) -> 'a list option
val at_end : decoder -> bool
