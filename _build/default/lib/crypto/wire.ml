type encoder = Buffer.t

let encoder () = Buffer.create 64

let add_be buf width v =
  for i = width - 1 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let add_string e s =
  add_be e 4 (String.length s);
  Buffer.add_string e s

let add_int e v = add_be e 8 v

let add_list e f items =
  add_be e 4 (List.length items);
  List.iter f items

let contents = Buffer.contents

type decoder = { data : string; mutable pos : int }

let decoder data = { data; pos = 0 }

let take d n =
  if n < 0 || d.pos + n > String.length d.data then None
  else begin
    let s = String.sub d.data d.pos n in
    d.pos <- d.pos + n;
    Some s
  end

let read_be d width =
  match take d width with
  | None -> None
  | Some s ->
      let v = ref 0 in
      String.iter (fun c -> v := (!v lsl 8) lor Char.code c) s;
      Some !v

let read_string d =
  match read_be d 4 with None -> None | Some len -> take d len

let read_int d =
  (* 8 bytes could overflow 63-bit int for adversarial input; reject values
     with a set top bit beyond OCaml's range rather than wrapping. *)
  match take d 8 with
  | None -> None
  | Some s ->
      if Char.code s.[0] land 0x80 <> 0 then None
      else begin
        let v = ref 0 in
        String.iter (fun c -> v := (!v lsl 8) lor Char.code c) s;
        Some !v
      end

let read_list d f =
  match read_be d 4 with
  | None -> None
  | Some count ->
      if count > String.length d.data - d.pos then None
      else begin
        let rec go n acc =
          if n = 0 then Some (List.rev acc)
          else match f () with None -> None | Some x -> go (n - 1) (x :: acc)
        in
        go count []
      end

let at_end d = d.pos = String.length d.data
