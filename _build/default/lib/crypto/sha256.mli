(** SHA-256 (FIPS 180-4), implemented from scratch.

    Not used by the TPM v1.2 model (which is SHA-1 based per the spec), but
    provided for the DRBG and for sealed-blob integrity tags where we are
    free to use a modern hash. *)

val digest_size : int
(** 32 bytes. *)

val digest : string -> string
val digest_bytes : bytes -> string
val hex : string -> string

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit
val finalize : ctx -> string
