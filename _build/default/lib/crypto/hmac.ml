let hmac ~block_size ~hash ~key msg =
  let key = if String.length key > block_size then hash key else key in
  let key =
    if String.length key < block_size then
      key ^ String.make (block_size - String.length key) '\000'
    else key
  in
  let xor_with pad = String.map (fun c -> Char.chr (Char.code c lxor pad)) key in
  let inner = hash (xor_with 0x36 ^ msg) in
  hash (xor_with 0x5c ^ inner)

let sha1 ~key msg = hmac ~block_size:64 ~hash:Sha1.digest ~key msg
let sha256 ~key msg = hmac ~block_size:64 ~hash:Sha256.digest ~key msg

let equal_constant_time a b =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
    !acc = 0
  end
