open Isa

(* Gate layout after an optional prologue of [p] instructions
   (offsets in bytes; one instruction per 8 bytes):
     p+0 : loadi r0, BUF        input destination
     p+8 : loadi r1, LIMIT      copy limit — 256 in the vulnerable gates
     p+16: svc INPUT_READ
     p+24: jmp CHECK
     p+32: BUF (16 bytes reserved)
     p+48: CHECK: loadi r0, MSG
     p+56: loadi r1, 6
     p+64: svc OUTPUT           "denied"
     p+72: halt
     p+80: MSG: "denied"
   The 16-byte buffer sits directly below the decision code: a copy
   limit above 16 lets input overwrite CHECK onwards. *)

let buf_rel = 32
let check_rel = 48
let msg_rel = 80

let measuring_prologue =
  (* Read the input to a scratch area high in memory and extend the
     measurement chain with it before any processing. *)
  [
    Loadi (0, 4096);
    Loadi (1, 256);
    Svc svc_input_read;
    Mov (1, 0);
    Loadi (0, 4096);
    Svc svc_extend;
  ]

let gate_image ~limit ~measure_input =
  let prologue = if measure_input then measuring_prologue else [] in
  let p = List.length prologue * insn_size in
  encode_program prologue
  ^ encode_program
      [
        Loadi (0, p + buf_rel);
        Loadi (1, limit);
        Svc svc_input_read;
        Jmp (p + check_rel);
      ]
  ^ String.make 16 '\000'
  ^ encode_program
      [ Loadi (0, p + msg_rel); Loadi (1, 6); Svc svc_output; Halt ]
  ^ "denied"

let vulnerable_gate () =
  Vm.to_pal ~name:"toctou-vulnerable" ~code:(gate_image ~limit:256 ~measure_input:false) ()

let hardened_gate () =
  Vm.to_pal ~name:"toctou-hardened" ~code:(gate_image ~limit:16 ~measure_input:false) ()

let measured_gate () =
  Vm.to_pal ~name:"toctou-measured" ~code:(gate_image ~limit:256 ~measure_input:true) ()

let benign_input = "open sesame"

(* The payload: fill the 16-byte buffer, then replacement instructions
   that land exactly on CHECK, then the attacker's message. [p] is the
   size of the target gate's prologue, which shifts every absolute
   address the payload must reference. *)
let exploit_for ~prologue_insns =
  let p = prologue_insns * insn_size in
  let payload_msg = p + check_rel + (4 * insn_size) in
  String.make 16 '\xcc'
  ^ encode_program
      [ Loadi (0, payload_msg); Loadi (1, 7); Svc svc_output; Halt ]
  ^ "granted"

let exploit_input = exploit_for ~prologue_insns:0

let gates_share_nothing () =
  let ms =
    List.map
      (fun p -> Sea_core.Pal.measurement p)
      [ vulnerable_gate (); hardened_gate (); measured_gate () ]
  in
  List.length (List.sort_uniq String.compare ms) = 3
