let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokenize line =
  line
  |> String.map (fun c -> if c = ',' || c = '\t' then ' ' else c)
  |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")

type stmt =
  | Label of string
  | Insn of string list (* mnemonic :: operands *)
  | Bytes of string
  | Zero of int
  | Align

let parse_string_literal s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then Some (String.sub s 1 (n - 2))
  else None

let parse_line line =
  let line = String.trim (strip_comment line) in
  if line = "" then Ok []
  else if String.length line > 1 && line.[String.length line - 1] = ':' then
    Ok [ Label (String.sub line 0 (String.length line - 1)) ]
  else begin
    match tokenize line with
    | [] -> Ok []
    | ".bytes" :: rest -> (
        match parse_string_literal (String.trim (String.concat " " rest)) with
        | Some s -> Ok [ Bytes s ]
        | None -> Error "malformed .bytes literal")
    | [ ".zero"; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> Ok [ Zero n ]
        | _ -> Error "malformed .zero count")
    | [ ".align" ] -> Ok [ Align ]
    | tokens -> Ok [ Insn tokens ]
  end

let align8 n = (n + 7) / 8 * 8

let reg_of_token tok =
  if String.length tok = 2 && tok.[0] = 'r' then
    match int_of_string_opt (String.sub tok 1 1) with
    | Some r when r >= 0 && r <= 7 -> Some r
    | _ -> None
  else None

let imm_of_token labels tok =
  match int_of_string_opt tok (* handles 0x.. too *) with
  | Some v -> Some v
  | None -> Hashtbl.find_opt labels tok

let encode_insn labels tokens =
  let reg t = match reg_of_token t with Some r -> Ok r | None -> Error ("bad register " ^ t) in
  let imm t =
    match imm_of_token labels t with
    | Some v -> Ok v
    | None -> Error ("bad immediate or unknown label " ^ t)
  in
  let open Isa in
  let ( let* ) = Result.bind in
  match tokens with
  | [ "halt" ] -> Ok Halt
  | [ "loadi"; a; v ] ->
      let* a = reg a in
      let* v = imm v in
      Ok (Loadi (a, v))
  | [ "mov"; a; b ] ->
      let* a = reg a in
      let* b = reg b in
      Ok (Mov (a, b))
  | [ op; a; b; c ]
    when List.mem op [ "add"; "sub"; "mul"; "xor"; "and"; "or"; "shl"; "shr"; "lt"; "eq" ]
    -> (
      let* a = reg a in
      match (reg_of_token b, reg_of_token c) with
      | Some b, Some c ->
          Ok
            (match op with
            | "add" -> Add (a, b, c)
            | "sub" -> Sub (a, b, c)
            | "mul" -> Mul (a, b, c)
            | "xor" -> Xor (a, b, c)
            | "and" -> And (a, b, c)
            | "or" -> Or (a, b, c)
            | "shl" -> Shl (a, b, c)
            | "shr" -> Shr (a, b, c)
            | "lt" -> Lt (a, b, c)
            | _ -> Eq (a, b, c))
      | _ -> Error "bad register operand")
  | [ op; a; b; off ] when List.mem op [ "ldb"; "stb"; "ldw"; "stw" ] ->
      let* a = reg a in
      let* b = reg b in
      let* off = imm off in
      Ok
        (match op with
        | "ldb" -> Ldb (a, b, off)
        | "stb" -> Stb (a, b, off)
        | "ldw" -> Ldw (a, b, off)
        | _ -> Stw (a, b, off))
  | [ "jmp"; t ] ->
      let* t = imm t in
      Ok (Jmp t)
  | [ "jz"; a; t ] ->
      let* a = reg a in
      let* t = imm t in
      Ok (Jz (a, t))
  | [ "jnz"; a; t ] ->
      let* a = reg a in
      let* t = imm t in
      Ok (Jnz (a, t))
  | [ "svc"; n ] ->
      let* n = imm n in
      Ok (Svc n)
  | toks -> Error ("unknown instruction: " ^ String.concat " " toks)

let assemble source =
  let lines = String.split_on_char '\n' source in
  (* Pass 0: parse. *)
  let parsed = ref [] in
  let parse_error = ref None in
  List.iteri
    (fun lineno line ->
      if !parse_error = None then
        match parse_line line with
        | Ok stmts -> parsed := !parsed @ List.map (fun s -> (lineno + 1, s)) stmts
        | Error e -> parse_error := Some (Printf.sprintf "line %d: %s" (lineno + 1) e))
    lines;
  match !parse_error with
  | Some e -> Error e
  | None ->
      let stmts = !parsed in
      (* Layout pass: assign every statement its emission offset — code is
         aligned to the 8-byte instruction grid; labels bind to the offset
         of whatever is emitted next. One pass fixes both the label table
         and the emission plan, so the two can never disagree. *)
      let labels = Hashtbl.create 16 in
      let plan = ref [] (* (lineno, stmt, offset), reversed *) in
      let offset = ref 0 in
      let pending = ref [] (* labels awaiting a position *) in
      let dup = ref None in
      let bind_pending at =
        List.iter
          (fun (lineno, name) ->
            if Hashtbl.mem labels name then
              dup := Some (Printf.sprintf "line %d: duplicate label %s" lineno name)
            else Hashtbl.replace labels name at)
          !pending;
        pending := []
      in
      List.iter
        (fun (lineno, stmt) ->
          match stmt with
          | Label name -> pending := (lineno, name) :: !pending
          | Align ->
              offset := align8 !offset;
              bind_pending !offset
          | Bytes s ->
              bind_pending !offset;
              plan := (lineno, stmt, !offset) :: !plan;
              offset := !offset + String.length s
          | Zero n ->
              bind_pending !offset;
              plan := (lineno, stmt, !offset) :: !plan;
              offset := !offset + n
          | Insn _ ->
              offset := align8 !offset;
              bind_pending !offset;
              plan := (lineno, stmt, !offset) :: !plan;
              offset := !offset + Isa.insn_size)
        stmts;
      bind_pending !offset;
      (match !dup with
      | Some e -> Error e
      | None ->
          let image = Bytes.make !offset '\000' in
          let err = ref None in
          List.iter
            (fun (lineno, stmt, at) ->
              if !err = None then
                match stmt with
                | Label _ | Align -> ()
                | Bytes s -> Bytes.blit_string s 0 image at (String.length s)
                | Zero _ -> ()
                | Insn tokens -> (
                    match encode_insn labels tokens with
                    | Ok op -> Bytes.blit_string (Isa.encode op) 0 image at Isa.insn_size
                    | Error e -> err := Some (Printf.sprintf "line %d: %s" lineno e)))
            (List.rev !plan);
          (match !err with Some e -> Error e | None -> Ok (Bytes.to_string image)))

let disassemble image =
  let buf = Buffer.create 256 in
  let pos = ref 0 in
  while !pos + Isa.insn_size <= String.length image do
    (match Isa.decode image ~pos:!pos with
    | Ok op -> Buffer.add_string buf (Format.asprintf "%6d: %a\n" !pos Isa.pp op)
    | Error _ ->
        Buffer.add_string buf
          (Printf.sprintf "%6d: .bytes %S\n" !pos
             (String.sub image !pos Isa.insn_size)));
    pos := !pos + Isa.insn_size
  done;
  Buffer.contents buf
