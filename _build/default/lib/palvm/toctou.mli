(** The load-time-attestation TOCTOU problem, executed (footnote 3).

    The paper notes: "If the code accepts input parameters and contains
    a vulnerability, it may be possible to overwrite some of the code
    after measurement and before execution completes. This is a
    well-known time-of-check, time-of-use problem with load-time
    attestation."

    PALVM makes the attack concrete. {!vulnerable_gate} is an access
    gate whose input-copy loop can overflow a 16-byte buffer straight
    into the instructions that follow it. The SKINIT measurement (and
    hence the attestation) covers the {e original} bytes; a crafted
    input rewrites the decision logic after measurement, so the platform
    attests to code that is not what ran.

    Two standard responses, both implemented:

    - {!hardened_gate}: fix the bug (bound the copy) — the PAL's small
      size is what makes this auditable, the paper's §3.2 point about
      formal analysis of small PALs;
    - {!measured_gate}: keep the bug but extend the measurement chain
      with the input {e before} using it — the attack still corrupts
      execution, but the attestation now covers the malicious input, so
      the verifier refuses the result. *)

val vulnerable_gate : unit -> Sea_core.Pal.t
val hardened_gate : unit -> Sea_core.Pal.t
val measured_gate : unit -> Sea_core.Pal.t

val benign_input : string
(** An ordinary request; every gate answers ["denied"]. *)

val exploit_input : string
(** Overflow payload carrying replacement instructions; makes
    {!vulnerable_gate} answer ["granted"]. *)

val exploit_for : prologue_insns:int -> string
(** Layout-aware payload builder: {!measured_gate} prepends a six-
    instruction prologue, so its exploit is [exploit_for
    ~prologue_insns:6]. The attack corrupts it just the same — the
    difference is that the attestation then exposes it. *)

val gates_share_nothing : unit -> bool
(** Sanity: the three gates have distinct measurements. *)
