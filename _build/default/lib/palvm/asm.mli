(** A small two-pass assembler for PALVM programs.

    Syntax (one statement per line; [;] starts a comment):

    {v
    start:                      ; labels end with ':'
      loadi r0, 0x40            ; immediates: decimal, hex, or a label
      svc 1                     ; service call
      jz r0, done
      jmp start
    done:
      halt
      .zero 16                  ; directives: reserve zeroed bytes
      .bytes "granted"          ;   emit literal bytes
      .align                    ;   pad to the 8-byte instruction grid
    v}

    Instruction mnemonics are the lowercase constructor names of
    {!Isa.op}. Labels assemble to absolute byte offsets, usable anywhere
    an immediate is. Code emitted after data directives is re-aligned to
    the instruction grid automatically. *)

val assemble : string -> (string, string) result
(** Source text to program image. Errors carry a line number. *)

val disassemble : string -> string
(** Best-effort listing of an image (data bytes show as [.bytes]). *)
