lib/palvm/asm.ml: Buffer Bytes Format Hashtbl Isa List Printf Result String
