lib/palvm/isa.mli: Format
