lib/palvm/isa.ml: Bytes Char Format List Printf String
