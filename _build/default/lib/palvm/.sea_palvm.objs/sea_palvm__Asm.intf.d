lib/palvm/asm.mli:
