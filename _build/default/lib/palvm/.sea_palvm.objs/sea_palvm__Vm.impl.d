lib/palvm/vm.ml: Array Buffer Bytes Char Isa Pal Printf Sea_core Sea_crypto String
