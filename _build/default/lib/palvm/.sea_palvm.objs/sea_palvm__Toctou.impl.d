lib/palvm/toctou.ml: Isa List Sea_core String Vm
