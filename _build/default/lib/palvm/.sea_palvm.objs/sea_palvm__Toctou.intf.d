lib/palvm/toctou.mli: Sea_core
