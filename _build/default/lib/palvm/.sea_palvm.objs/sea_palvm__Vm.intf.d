lib/palvm/vm.mli: Sea_core Sea_sim
