(** The PALVM interpreter.

    Executes a program image in a flat memory of [mem_size] bytes with
    the image loaded at offset 0. Code and data share that memory:
    stores may overwrite instructions and the fetch path reads whatever
    is there now — self-modifying code works, which is the point (see
    {!Toctou}).

    Service calls bridge to the hosting environment's
    {!Sea_core.Pal.services}:

    - [svc 1] INPUT_LEN: r0 := input length
    - [svc 2] INPUT_READ: copy min(r1, input length) input bytes to
      mem\[r0\]
    - [svc 3] OUTPUT: append mem\[r0 .. r0+r1) to the PAL output
    - [svc 4] SEAL: seal mem\[r0 .. r0+r1); blob to mem\[r2\];
      r0 := blob length (0xFFFFFFFF on refusal)
    - [svc 5] UNSEAL: unseal mem\[r0 .. r0+r1) to mem\[r2\];
      r0 := payload length (0xFFFFFFFF on refusal)
    - [svc 6] RANDOM: r1 fresh bytes to mem\[r0\]
    - [svc 7] EXTEND: extend the measurement chain with
      mem\[r0 .. r0+r1)
    - [svc 8] SHA256: digest of mem\[r0 .. r0+r1) to mem\[r2\] *)

type outcome = {
  output : string;  (** Everything the program OUTPUT'd. *)
  steps : int;  (** Instructions retired. *)
  registers : int array;  (** Final register file. *)
}

val run :
  ?mem_size:int ->
  ?fuel:int ->
  code:string ->
  services:Sea_core.Pal.services ->
  input:string ->
  unit ->
  (outcome, string) result
(** Execute until [Halt]. Errors: out-of-bounds fetch/access, unknown
    opcode (i.e. the program crashed), or fuel exhaustion ([fuel]
    defaults to 1,000,000 retired instructions — a hung PAL is an error
    here; under SLAUNCH it would be preempted and SKILLed). *)

val to_pal :
  name:string ->
  ?mem_size:int ->
  ?fuel:int ->
  ?compute_time:Sea_sim.Time.t ->
  code:string ->
  unit ->
  Sea_core.Pal.t
(** Wrap a program image as a {!Sea_core.Pal}: the PAL's measured bytes
    {e are} the image, and its behaviour is this interpreter run over
    those very bytes. Runs unchanged under both {!Sea_core.Session} and
    {!Sea_core.Slaunch_session}. *)
