(* Untrusted-OS layer tests: every attack in the §3.2 threat model must
   come back Blocked, and the multiprogramming scheduler must reproduce
   the paper's qualitative claims (whole-platform stall today, ~full
   legacy throughput with the proposed hardware). *)

open Sea_sim
open Sea_hw
open Sea_core
open Sea_os

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ok = function Ok x -> x | Error e -> Alcotest.fail e

let blocked name = function
  | Adversary.Blocked _ -> ()
  | Adversary.Succeeded what -> Alcotest.fail (name ^ ": " ^ what)

let proposed () =
  Machine.create (Machine.low_fidelity (Machine.proposed_variant Machine.hp_dc5750))

let running_session m =
  let pal =
    Pal.create ~name:"victim" ~code_size:8192 ~compute_time:(Time.ms 10.)
      (fun services _ -> services.Pal.seal "victim secret")
  in
  ok (Slaunch_session.start m ~cpu:0 ~preemption_timer:(Time.ms 2.) pal ~input:"")

(* --- Attacks against an executing PAL --- *)

let test_dma_read_blocked_current_hw () =
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  (* Put an SLB under DEV protection, as SKINIT does. *)
  let pages = Machine.alloc_pages m 2 in
  Memctrl.dev_protect m.Machine.memctrl pages;
  blocked "DMA vs DEV"
    (Adversary.dma_read_protected_page m ~device:"evil-nic" ~page:(List.hd pages))

let test_dma_read_blocked_proposed_hw () =
  let m = proposed () in
  let s = running_session m in
  let page = List.hd (Slaunch_session.secb s).Secb.pages in
  blocked "DMA vs ACL" (Adversary.dma_read_protected_page m ~device:"evil-nic" ~page)

let test_cpu_read_blocked_while_executing () =
  let m = proposed () in
  let s = running_session m in
  let page = List.nth (Slaunch_session.secb s).Secb.pages 1 in
  blocked "cross-CPU read" (Adversary.cpu_read_pal_page m ~cpu:1 ~page)

let test_cpu_read_blocked_while_suspended () =
  let m = proposed () in
  let s = running_session m in
  (match ok (Slaunch_session.run_slice s ~cpu:0 ()) with
  | `Yielded -> ()
  | `Finished -> Alcotest.fail "expected preemption");
  let page = List.nth (Slaunch_session.secb s).Secb.pages 1 in
  (* Even the CPU that was running it is locked out now. *)
  blocked "read of suspended PAL" (Adversary.cpu_read_pal_page m ~cpu:0 ~page);
  blocked "other-CPU read of suspended PAL" (Adversary.cpu_read_pal_page m ~cpu:1 ~page)

let test_forge_measured_flag () =
  let m = proposed () in
  let pal = Pal.create ~name:"forged" ~code_size:4096 (fun _ _ -> Ok "") in
  blocked "forged Measured Flag" (Adversary.forge_measured_flag m ~cpu:0 pal)

let test_double_resume () =
  let m = proposed () in
  let s = running_session m in
  (* PAL executing on CPU 0; adversary SLAUNCHes the same SECB on CPU 1. *)
  blocked "double resume" (Adversary.double_resume m ~cpu:1 (Slaunch_session.secb s))

let test_software_pcr17_reset () =
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  blocked "software PCR 17 reset" (Adversary.software_pcr17_reset m)

let test_unseal_after_exit () =
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let outcome = ok (Session.execute m ~cpu:0 (Generic.pal_gen ()) ~input:"") in
  blocked "post-exit unseal" (Adversary.unseal_after_pal_exit m ~blob:outcome.Session.output)

let test_tamper_quote () =
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let pal = Generic.pal_gen () in
  ignore (ok (Session.execute m ~cpu:0 pal ~input:""));
  let q, _ = ok (Session.quote m ~nonce:"n") in
  blocked "tampered quote" (Adversary.tamper_quote m q ~nonce:"n" pal)

let test_extend_foreign_sepcr () =
  let m = proposed () in
  let s = running_session m in
  let handle = Option.get (Slaunch_session.sepcr_handle s) in
  blocked "foreign sePCR extend" (Adversary.extend_foreign_sepcr m ~cpu:1 handle)

let test_sfree_from_outside () =
  let m = proposed () in
  let s = running_session m in
  blocked "external SFREE" (Adversary.sfree_from_outside m ~cpu:1 (Slaunch_session.secb s))

let test_skinit_retry_remeasures () =
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  blocked "retried SKINIT skips measurement"
    (Adversary.skinit_retry_skips_measurement m ~cpu:0 (Generic.pal_gen ())
       ~input:"")

let test_skill_left_no_secrets () =
  (* After SKILL, no residue of the PAL's memory is observable. *)
  let m = proposed () in
  let s = running_session m in
  (match ok (Slaunch_session.run_slice s ~cpu:0 ()) with
  | `Yielded -> ()
  | `Finished -> Alcotest.fail "expected preemption");
  ok (Slaunch_session.kill s);
  List.iter
    (fun page ->
      let data = ok (Memctrl.read m.Machine.memctrl (Memctrl.Cpu 1) ~page ~off:0 ~len:256) in
      checkb "page zeroed" true (String.for_all (fun c -> c = '\000') data))
    (Slaunch_session.secb s).Secb.pages

(* --- Scheduler --- *)

let jobs n =
  List.init n (fun i ->
      Scheduler.job
        ~label:(Printf.sprintf "j%d" i)
        ~arrival:(Time.ms (10. *. float_of_int i))
        ~chunks:4 ~chunk_work:(Time.ms 5.) ~code_size:8192 ())

let test_scheduler_current_stalls_platform () =
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let r = Scheduler.run m ~mode:Scheduler.Current ~jobs:(jobs 3) ~window:(Time.s 15.) in
  checki "all jobs complete" 3 r.Scheduler.completed;
  checki "none fail" 0 r.Scheduler.failed;
  (* Every chunk pays a late launch + unseal/seal: ~1.1 s per chunk. *)
  checkb "platform stalled for seconds" true (Time.to_s r.Scheduler.stalled > 5.);
  checkb "legacy throughput crushed" true (r.Scheduler.legacy_utilization < 0.7)

let test_scheduler_proposed_keeps_legacy_running () =
  let m = proposed () in
  let r = Scheduler.run m ~mode:Scheduler.Proposed ~jobs:(jobs 3) ~window:(Time.s 15.) in
  checki "all jobs complete" 3 r.Scheduler.completed;
  checkb "no whole-platform stall" true (r.Scheduler.stalled = Time.zero);
  checkb "legacy keeps >99% of the platform" true (r.Scheduler.legacy_utilization > 0.99)

let test_scheduler_latency_gap () =
  (* The same batch finishes orders of magnitude sooner per job under the
     proposed hardware. *)
  let mc = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let rc = Scheduler.run mc ~mode:Scheduler.Current ~jobs:(jobs 2) ~window:(Time.s 30.) in
  let mp = proposed () in
  let rp = Scheduler.run mp ~mode:Scheduler.Proposed ~jobs:(jobs 2) ~window:(Time.s 30.) in
  let mean_c = Stats.mean rc.Scheduler.pal_latency_ms in
  let mean_p = Stats.mean rp.Scheduler.pal_latency_ms in
  checkb
    (Printf.sprintf "latency gap >10x (current %.0f ms, proposed %.0f ms)" mean_c mean_p)
    true
    (mean_c > 10. *. mean_p)

let test_scheduler_mode_mismatch () =
  let tyan = Machine.create Machine.tyan_n3600r in
  (try
     ignore (Scheduler.run tyan ~mode:Scheduler.Current ~jobs:[] ~window:Time.zero);
     Alcotest.fail "expected failure"
   with Failure _ -> ());
  let plain = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  (try
     ignore (Scheduler.run plain ~mode:Scheduler.Proposed ~jobs:[] ~window:Time.zero);
     Alcotest.fail "expected failure"
   with Failure _ -> ())

let test_scheduler_job_validation () =
  (try
     ignore (Scheduler.job ~chunks:0 ());
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ())


(* --- Netload: packet loss during platform stalls --- *)

let test_netload_no_stall_no_loss () =
  let r =
    Netload.simulate ~rate_pps:1000 ~duration:(Time.s 1.) ~ring_slots:64
      ~stall_windows:[]
  in
  checki "offered" 1000 r.Netload.offered;
  checki "no drops" 0 r.Netload.dropped;
  checki "ring never fills" 0 r.Netload.peak_occupancy

let test_netload_stall_overflows_ring () =
  (* One 500 ms stall at 1000 pps with a 100-slot ring: 500 arrivals in
     the window, 100 absorbed, 400 dropped. *)
  let r =
    Netload.simulate ~rate_pps:1000 ~duration:(Time.s 1.) ~ring_slots:100
      ~stall_windows:[ (Time.ms 100., Time.ms 600.) ]
  in
  checki "drops" 400 r.Netload.dropped;
  checki "peak = ring size" 100 r.Netload.peak_occupancy;
  checki "delivered" 600 r.Netload.delivered

let test_netload_short_stall_absorbed () =
  (* A 50 ms stall fits in the ring: zero loss, visible occupancy. *)
  let r =
    Netload.simulate ~rate_pps:1000 ~duration:(Time.s 1.) ~ring_slots:100
      ~stall_windows:[ (Time.ms 100., Time.ms 150.) ]
  in
  checki "no drops" 0 r.Netload.dropped;
  checkb "ring absorbed the burst" true (r.Netload.peak_occupancy = 50)

let test_netload_validation () =
  (try
     ignore (Netload.simulate ~rate_pps:0 ~duration:(Time.s 1.) ~ring_slots:1
               ~stall_windows:[]);
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ());
  (try
     ignore (Netload.simulate ~rate_pps:1 ~duration:(Time.s 1.) ~ring_slots:0
               ~stall_windows:[]);
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ())

let test_netload_rejects_overlapping_windows () =
  (* Two platform stalls cannot coexist in wall-clock time; a malformed
     window list must be rejected, not silently double-counted. *)
  Alcotest.check_raises "overlap"
    (Invalid_argument "Netload.simulate: stall windows overlap") (fun () ->
      ignore
        (Netload.simulate ~rate_pps:1000 ~duration:(Time.s 1.) ~ring_slots:8
           ~stall_windows:
             [ (Time.ms 100., Time.ms 300.); (Time.ms 200., Time.ms 400.) ]));
  Alcotest.check_raises "negative-length window"
    (Invalid_argument "Netload.simulate: stall window ends before it starts")
    (fun () ->
      ignore
        (Netload.simulate ~rate_pps:1000 ~duration:(Time.s 1.) ~ring_slots:8
           ~stall_windows:[ (Time.ms 300., Time.ms 100.) ]));
  (* Order independence and shared boundaries stay legal. *)
  let r =
    Netload.simulate ~rate_pps:1000 ~duration:(Time.s 1.) ~ring_slots:1000
      ~stall_windows:
        [ (Time.ms 500., Time.ms 600.); (Time.ms 400., Time.ms 500.) ]
  in
  checki "contiguous windows accepted" 0 r.Netload.dropped

let test_netload_collect_windows () =
  let m = Machine.create (Machine.low_fidelity Machine.hp_dc5750) in
  let windows =
    ok
      (Netload.collect_stall_windows m ~sessions:3 ~period:(Time.s 2.)
         (Generic.pal_use ()))
  in
  checki "three windows" 3 (List.length windows);
  List.iter
    (fun (s, e) -> checkb "window has positive width" true (e > s))
    windows;
  (* The Use sessions stall for over a second (Figure 2). *)
  let _, last = List.nth windows 2 in
  let s2, e2 = List.nth windows 2 in
  checkb "Use session stalls > 1 s" true (Time.to_ms (Time.sub e2 s2) > 1000.);
  ignore last

let () =
  Alcotest.run "os"
    [
      ( "threat-model",
        [
          Alcotest.test_case "DMA blocked (DEV, current hw)" `Quick test_dma_read_blocked_current_hw;
          Alcotest.test_case "DMA blocked (ACL, proposed hw)" `Quick test_dma_read_blocked_proposed_hw;
          Alcotest.test_case "cross-CPU read blocked (executing)" `Quick
            test_cpu_read_blocked_while_executing;
          Alcotest.test_case "reads blocked (suspended)" `Quick
            test_cpu_read_blocked_while_suspended;
          Alcotest.test_case "forged Measured Flag" `Quick test_forge_measured_flag;
          Alcotest.test_case "double resume" `Quick test_double_resume;
          Alcotest.test_case "software PCR 17 reset" `Quick test_software_pcr17_reset;
          Alcotest.test_case "unseal after PAL exit" `Quick test_unseal_after_exit;
          Alcotest.test_case "tampered quote" `Quick test_tamper_quote;
          Alcotest.test_case "foreign sePCR extend" `Quick test_extend_foreign_sepcr;
          Alcotest.test_case "SFREE from outside" `Quick test_sfree_from_outside;
          Alcotest.test_case "retried SKINIT re-measures" `Quick
            test_skinit_retry_remeasures;
          Alcotest.test_case "SKILL leaves no secrets" `Quick test_skill_left_no_secrets;
        ] );
      ( "netload",
        [
          Alcotest.test_case "no stall, no loss" `Quick test_netload_no_stall_no_loss;
          Alcotest.test_case "stall overflows the ring" `Quick test_netload_stall_overflows_ring;
          Alcotest.test_case "short stall absorbed" `Quick test_netload_short_stall_absorbed;
          Alcotest.test_case "validation" `Quick test_netload_validation;
          Alcotest.test_case "overlapping windows rejected" `Quick
            test_netload_rejects_overlapping_windows;
          Alcotest.test_case "window collection" `Quick test_netload_collect_windows;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "current hw stalls the platform" `Slow
            test_scheduler_current_stalls_platform;
          Alcotest.test_case "proposed hw keeps legacy running" `Quick
            test_scheduler_proposed_keeps_legacy_running;
          Alcotest.test_case "latency gap" `Slow test_scheduler_latency_gap;
          Alcotest.test_case "mode/machine mismatch" `Quick test_scheduler_mode_mismatch;
          Alcotest.test_case "job validation" `Quick test_scheduler_job_validation;
        ] );
    ]
